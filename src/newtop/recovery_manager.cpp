#include "newtop/recovery_manager.hpp"

#include "obs/names.hpp"
#include "util/check.hpp"

namespace newtop {

RecoveryManager::RecoveryManager(Network& network, Directory& directory, SiteId site,
                                 GenerationFactory factory)
    : net_(&network), directory_(&directory), factory_(std::move(factory)) {
    NEWTOP_EXPECTS(factory_ != nullptr, "recovery manager needs a generation factory");
    node_ = net_->add_node(site);
    // The hook runs inside Node::restart(), after the node revived with a
    // bumped incarnation — every timer of the previous life is already
    // defunct by the time we rebuild.
    net_->node(node_).set_restart_hook([this] { on_restart(); });
    spawn_generation(/*after_crash=*/false);
}

bool RecoveryManager::recovered() const {
    if (net_->node(node_).crashed()) return false;
    const Gen& gen = *generations_.back();
    return gen.app.ready == nullptr || gen.app.ready();
}

void RecoveryManager::on_restart() {
    // The previous life's endpoint is gone for good: tombstone its
    // directory registration so clients and joiners stop courting it.
    // (Survivors that already suspected it evict it independently.)
    directory_->evict_endpoint(generations_.back()->nso->id());
    spawn_generation(/*after_crash=*/true);
}

void RecoveryManager::spawn_generation(bool after_crash) {
    auto gen = std::make_unique<Gen>();
    if (after_crash) gen->crashed_at = net_->node(node_).crashed_at();
    // The ORB constructor re-wires the node's message receiver; the NSO
    // registers a fresh endpoint (new EndpointId) with the directory.
    gen->orb = std::make_unique<Orb>(*net_, node_);
    gen->nso = std::make_unique<NewTopService>(*gen->orb, *directory_);

    const std::size_t index = generations_.size();
    Gen* raw = gen.get();
    generations_.push_back(std::move(gen));
    // The factory may invoke note_recovered synchronously (an app with no
    // sync protocol is recovered the moment it serves), so the generation
    // must already be registered.
    raw->app = factory_(*raw->nso, [this, index] { note_recovered(index); });
}

void RecoveryManager::note_recovered(std::size_t index) {
    Gen& gen = *generations_[index];
    // Stale generations (superseded by a later restart) and repeat
    // notifications are no-ops; so is the founding generation, which never
    // crashed.
    if (gen.recovery_noted || index + 1 != generations_.size()) return;
    gen.recovery_noted = true;
    if (gen.crashed_at < 0) return;
    net_->metrics().observe(obs::metric::kRecoveryMttr, net_->scheduler().now() - gen.crashed_at);
}

}  // namespace newtop
