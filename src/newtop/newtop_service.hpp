// NewTopService — the NewTop Service Object (NSO) of §3.
//
// One NSO serves one application process (client, server, or peer — or all
// at once).  It bundles the group-communication endpoint with the
// invocation layer and exposes the public API of the system:
//
//   NewTopService nso(orb, directory);
//   // server:
//   nso.serve("random", config, servant);
//   // client:
//   GroupProxy proxy = nso.bind("random", {.mode = BindMode::kOpen});
//   proxy.invoke(kDraw, args, InvocationMode::kWaitFirst, handler);
//   // peer participation:
//   PeerGroup chat = nso.join_peer_group("room1", peer_config, on_message);
//   chat.publish(payload);
//
// The NSO is colocated with its application in these experiments (the most
// efficient configuration, §3); the local hand-offs still pay CPU cost as
// in fig. 9.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "gcs/directory.hpp"
#include "gcs/endpoint.hpp"
#include "invocation/service.hpp"

namespace newtop {

class NewTopService;

/// Client-side handle to a bound server group.  Thin and copyable; the
/// binding lives in the NSO.
class GroupProxy {
public:
    GroupProxy() = default;

    /// Invoke `method`; `handler` fires once with the gathered replies.
    void invoke(std::uint32_t method, Bytes args, InvocationMode mode,
                GroupReplyHandler handler);

    /// One-way send: no replies, returns immediately.
    void one_way(std::uint32_t method, Bytes args);

    /// True once the binding can carry calls (calls made earlier are queued).
    [[nodiscard]] bool ready() const;

    /// The current request manager (open bindings).
    [[nodiscard]] std::optional<EndpointId> manager() const;

    /// Times the binding has re-bound to a new request manager.
    [[nodiscard]] std::uint64_t rebinds() const;

    /// Release the binding.
    void unbind();

private:
    friend class NewTopService;
    GroupProxy(InvocationService* service, BindingId id) : service_(service), id_(id) {}

    InvocationService* service_{nullptr};
    BindingId id_{0};
};

/// Handle for peer-participation groups (§2.1(iii)): every member
/// multicasts one-way and receives everyone's messages in group order.
class PeerGroup {
public:
    PeerGroup() = default;

    /// One-way multicast to all members (including this one).
    void publish(Bytes payload);

    /// Propose a runtime configuration change (view-synchronous: applied at
    /// an agreed view boundary at every member; see
    /// GroupCommEndpoint::reconfigure).  Asynchronous — poll config_epoch().
    void reconfigure(const GroupConfig& next);

    /// Configurations installed since creation (see
    /// GroupCommEndpoint::config_epoch).
    [[nodiscard]] ConfigEpoch config_epoch() const;

    [[nodiscard]] GroupId id() const { return group_; }
    [[nodiscard]] const View* view() const;
    [[nodiscard]] bool joined() const;

private:
    friend class NewTopService;
    PeerGroup(GroupCommEndpoint* endpoint, GroupId group)
        : endpoint_(endpoint), group_(group) {}

    GroupCommEndpoint* endpoint_{nullptr};
    GroupId group_;
};

class NewTopService {
public:
    /// A peer-group message: sender and raw payload.
    struct PeerMessage {
        GroupId group;
        EndpointId sender;
        Bytes payload;
    };
    using PeerHandler = std::function<void(const PeerMessage&)>;
    using PeerViewHandler = std::function<void(const View&)>;

    NewTopService(Orb& orb, Directory& directory);

    NewTopService(const NewTopService&) = delete;
    NewTopService& operator=(const NewTopService&) = delete;

    [[nodiscard]] EndpointId id() const { return endpoint_.id(); }
    GroupCommEndpoint& group_comm() { return endpoint_; }
    InvocationService& invocation() { return invocation_; }
    Orb& orb() { return *orb_; }
    Directory& directory() { return *directory_; }

    /// The simulated world's metrics registry (owned by the Network; shared
    /// by every node and NSO in this world).
    [[nodiscard]] obs::MetricsRegistry& metrics() { return orb_->network().metrics(); }
    [[nodiscard]] const obs::MetricsRegistry& metrics() const {
        return orb_->network().metrics();
    }

    // -- request/reply ---------------------------------------------------------

    /// Serve `service` (create or join its server group).
    void serve(const std::string& service, const GroupConfig& config,
               std::shared_ptr<GroupServant> servant);

    /// Propose a view-synchronous runtime reconfiguration of a group this
    /// NSO participates in (server group or peer group).  The proposal is
    /// agreed through the group's own total order and applied at a flush-
    /// delimited view boundary; no in-flight invocation is dropped,
    /// duplicated or reordered by the switch.
    void reconfigure(GroupId group, const GroupConfig& next) {
        endpoint_.reconfigure(group, next);
    }

    /// Number of reconfigurations the local member has installed for
    /// `group` (0 = still on the creation-time config).
    [[nodiscard]] ConfigEpoch config_epoch(GroupId group) const {
        return endpoint_.config_epoch(group);
    }

    /// Bind to a service as a client.
    GroupProxy bind(const std::string& service, const BindOptions& options = {});

    /// Bind an entire client group to a service (§4.3); call from every
    /// member of `client_group`.
    GroupProxy bind_group(GroupId client_group, const std::string& service,
                          const BindOptions& options = {});

    // -- peer participation ------------------------------------------------------

    /// Join (creating if needed) a peer group.  `handler` receives every
    /// member's messages in the group's agreed order.
    PeerGroup join_peer_group(const std::string& name, const GroupConfig& config,
                              PeerHandler handler, PeerViewHandler view_handler = nullptr);

    /// Observe every view change seen by this NSO (all groups); observers
    /// run before the event is routed to the invocation layer.  Used by
    /// subsystems layered on top (e.g. replication state transfer).
    using ViewObserver = std::function<void(const GroupCommEndpoint::ViewChangeEvent&)>;
    void add_view_observer(ViewObserver observer);

    /// Build an IOGR over a service's replicas for ORB-level transparent
    /// failover (§2.2) — invoke it with Orb::invoke_group.  Plain direct
    /// access to one replica: no ordering, no reply gathering.
    [[nodiscard]] Iogr service_iogr(const std::string& service) const {
        return InvocationService::service_iogr(*directory_, service);
    }

private:
    class ManagementServant;

    void route_delivery(const GroupCommEndpoint::Delivery& delivery);
    void route_view_change(const GroupCommEndpoint::ViewChangeEvent& event);
    void route_removed(GroupId group);
    Bytes handle_management(std::uint32_t method, BytesView args);

    Orb* orb_;
    Directory* directory_;
    GroupCommEndpoint endpoint_;
    InvocationService invocation_;
    Ior management_ior_;

    struct Peer {
        PeerHandler handler;
        PeerViewHandler view_handler;
    };
    std::map<GroupId, Peer> peers_;
    std::vector<ViewObserver> view_observers_;
};

}  // namespace newtop
