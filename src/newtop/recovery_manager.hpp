// RecoveryManager — crash-recovery for a NewTop process.
//
// A crashed node loses every layer above the hardware: its ORB, its GCS
// endpoint, its NSO and its servants are gone.  When the node restarts
// (Network::restart) it comes back with a bumped incarnation and *nothing*
// running.  The RecoveryManager owns that rebuild, end-to-end:
//
//   restart -> evict the dead endpoint's stale directory registrations
//           -> fresh ORB (re-wires the node's receiver)
//           -> fresh GCS endpoint + NSO (fresh EndpointId; old ids are
//              never reused, so survivors can tell the new life apart)
//           -> the application-supplied GenerationFactory re-registers
//              servants, rejoins server/peer groups and, when layered with
//              replication, drives state transfer
//           -> serve.
//
// Each life of the process is one *generation*.  Old generations are kept
// alive (but defunct — their timers all no-op via Orb::process_defunct) for
// the run's lifetime, because scheduler timers armed before the crash may
// still reference them.
//
// MTTR accounting: the factory receives a `note_recovered` callback; the
// application fires it at the first *correct* post-recovery service action
// (e.g. the first request executed after state transfer completes).  The
// manager records the crash -> recovered interval into the
// `recovery.mttr` sim-time histogram, once per restart.
//
// The manager is replication-agnostic: replication glue lives in
// src/replication/recoverable.hpp and plugs in through the factory.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "gcs/directory.hpp"
#include "invocation/group_servant.hpp"
#include "newtop/newtop_service.hpp"
#include "orb/orb.hpp"

namespace newtop {

class RecoveryManager {
public:
    /// What one life of the application amounts to: opaque state kept alive
    /// for the generation's lifetime, plus a readiness probe.
    struct Generation {
        /// Owns the application objects of this life (replica handles,
        /// servants, ...).  Opaque to the manager.
        std::shared_ptr<void> keepalive;
        /// True once this life serves correctly (e.g. replica synced and in
        /// the server group's view).  Null means "ready immediately".
        std::function<bool()> ready;
    };

    /// Builds the application on top of a (possibly brand-new) NSO.  Called
    /// once at construction and again after every restart.  The factory
    /// must fire `note_recovered` at the first correct post-recovery
    /// service action; the call is idempotent and a no-op for the founding
    /// generation.
    using GenerationFactory =
        std::function<Generation(NewTopService&, std::function<void()> note_recovered)>;

    /// Creates the node at `site` and spawns the founding generation.
    RecoveryManager(Network& network, Directory& directory, SiteId site,
                    GenerationFactory factory);

    RecoveryManager(const RecoveryManager&) = delete;
    RecoveryManager& operator=(const RecoveryManager&) = delete;

    [[nodiscard]] NodeId node_id() const { return node_; }

    /// The current life's NSO (defunct while the node is crashed).
    NewTopService& nso() { return *generations_.back()->nso; }
    [[nodiscard]] const NewTopService& nso() const { return *generations_.back()->nso; }

    /// The current life's endpoint id (changes across restarts).
    [[nodiscard]] EndpointId endpoint() const { return generations_.back()->nso->id(); }

    /// Which life is current: 0 for the founding generation.
    [[nodiscard]] std::uint64_t generation() const { return generations_.size() - 1; }

    /// True when the node is up and the current life reports ready.  The
    /// chaos oracle uses this as the resync-liveness predicate.
    [[nodiscard]] bool recovered() const;

    /// Fault-injection conveniences (same semantics as the Network calls).
    void crash() { net_->crash(node_); }
    void restart_after(SimDuration delay) { net_->restart(node_, delay); }

private:
    struct Gen {
        std::unique_ptr<Orb> orb;
        std::unique_ptr<NewTopService> nso;
        Generation app;
        SimTime crashed_at{-1};  // crash that this life recovered from
        bool recovery_noted{false};
    };

    void spawn_generation(bool after_crash);
    void on_restart();
    void note_recovered(std::size_t index);

    Network* net_;
    Directory* directory_;
    GenerationFactory factory_;
    NodeId node_;
    std::vector<std::unique_ptr<Gen>> generations_;
};

/// Wraps a GroupServant and fires `on_first_serve` once, at the first
/// successfully handled request.  Wire its callback to the factory's
/// `note_recovered` to measure MTTR as crash -> first correct execution at
/// the recovered replica.
class RecoveryProbeServant : public GroupServant {
public:
    RecoveryProbeServant(std::shared_ptr<GroupServant> inner,
                         std::function<void()> on_first_serve)
        : inner_(std::move(inner)), on_first_serve_(std::move(on_first_serve)) {}

    Bytes handle(std::uint32_t method, const Bytes& args) override {
        Bytes reply = inner_->handle(method, args);
        if (on_first_serve_) {
            auto fire = std::move(on_first_serve_);
            on_first_serve_ = nullptr;
            fire();
        }
        return reply;
    }

    [[nodiscard]] SimDuration execution_cost(std::uint32_t method) const override {
        return inner_->execution_cost(method);
    }

private:
    std::shared_ptr<GroupServant> inner_;
    std::function<void()> on_first_serve_;
};

}  // namespace newtop
