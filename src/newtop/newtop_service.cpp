#include "newtop/newtop_service.hpp"

#include "util/check.hpp"
#include "util/log.hpp"

namespace newtop {

// -- GroupProxy / PeerGroup ---------------------------------------------------------

void GroupProxy::invoke(std::uint32_t method, Bytes args, InvocationMode mode,
                        GroupReplyHandler handler) {
    NEWTOP_EXPECTS(service_ != nullptr, "empty proxy");
    service_->invoke(id_, method, std::move(args), mode, std::move(handler));
}

void GroupProxy::one_way(std::uint32_t method, Bytes args) {
    NEWTOP_EXPECTS(service_ != nullptr, "empty proxy");
    service_->one_way(id_, method, std::move(args));
}

bool GroupProxy::ready() const { return service_ != nullptr && service_->binding_ready(id_); }

std::optional<EndpointId> GroupProxy::manager() const {
    return service_ == nullptr ? std::nullopt : service_->binding_manager(id_);
}

std::uint64_t GroupProxy::rebinds() const {
    return service_ == nullptr ? 0 : service_->binding_rebinds(id_);
}

void GroupProxy::unbind() {
    if (service_ != nullptr) service_->unbind(id_);
    service_ = nullptr;
}

void PeerGroup::publish(Bytes payload) {
    NEWTOP_EXPECTS(endpoint_ != nullptr, "empty peer group handle");
    endpoint_->multicast(group_, std::move(payload));
}

void PeerGroup::reconfigure(const GroupConfig& next) {
    NEWTOP_EXPECTS(endpoint_ != nullptr, "empty peer group handle");
    endpoint_->reconfigure(group_, next);
}

ConfigEpoch PeerGroup::config_epoch() const {
    return endpoint_ == nullptr ? 0 : endpoint_->config_epoch(group_);
}

const View* PeerGroup::view() const {
    return endpoint_ == nullptr ? nullptr : endpoint_->current_view(group_);
}

bool PeerGroup::joined() const { return endpoint_ != nullptr && endpoint_->is_member(group_); }

// -- NSO management servant ----------------------------------------------------------

/// The NSO's ORB-visible object: join-this-client/server-group invitations
/// (two-way) and closed-mode direct replies (oneway).
class NewTopService::ManagementServant : public Servant {
public:
    explicit ManagementServant(NewTopService* owner) : owner_(owner) {}

    Bytes dispatch(std::uint32_t method, BytesView args) override {
        return owner_->handle_management(method, args);
    }

    [[nodiscard]] SimDuration execution_cost(std::uint32_t) const override {
        return calibration::kProtocolCost;
    }

private:
    NewTopService* owner_;
};

NewTopService::NewTopService(Orb& orb, Directory& directory)
    : orb_(&orb),
      directory_(&directory),
      endpoint_(orb, directory),
      invocation_(orb, endpoint_, directory) {
    management_ior_ =
        orb_->adapter().activate(std::make_shared<ManagementServant>(this), "NewTopNSO");
    directory_->register_nso(endpoint_.id(), management_ior_);

    endpoint_.set_deliver_handler(
        [this](const GroupCommEndpoint::Delivery& d) { route_delivery(d); });
    endpoint_.set_view_handler(
        [this](const GroupCommEndpoint::ViewChangeEvent& e) { route_view_change(e); });
    endpoint_.set_removed_handler([this](GroupId g) { route_removed(g); });
}

Bytes NewTopService::handle_management(std::uint32_t method, BytesView args) {
    switch (method) {
        case kNsoJoinCsMethod: {
            Decoder d(args);
            std::string cs_name;
            GroupId server_group;
            EndpointId owner;
            decode(d, cs_name);
            decode(d, server_group);
            decode(d, owner);
            if (!invocation_.on_join_cs_request(cs_name, server_group, owner)) {
                throw ServantError("not serving the requested group");
            }
            return {};
        }
        default:
            throw ServantError("unknown NSO method");
    }
}

// -- API --------------------------------------------------------------------------

void NewTopService::serve(const std::string& service, const GroupConfig& config,
                          std::shared_ptr<GroupServant> servant) {
    invocation_.serve(service, config, std::move(servant));
}

GroupProxy NewTopService::bind(const std::string& service, const BindOptions& options) {
    return GroupProxy(&invocation_, invocation_.bind(service, options));
}

GroupProxy NewTopService::bind_group(GroupId client_group, const std::string& service,
                                     const BindOptions& options) {
    return GroupProxy(&invocation_, invocation_.bind_group(client_group, service, options));
}

PeerGroup NewTopService::join_peer_group(const std::string& name, const GroupConfig& config,
                                         PeerHandler handler, PeerViewHandler view_handler) {
    NEWTOP_EXPECTS(handler != nullptr, "peer group needs a message handler");
    GroupId group;
    if (directory_->find_group(name) == nullptr) {
        group = endpoint_.create_group(name, config);
    } else {
        group = endpoint_.join_group(name);
    }
    peers_[group] = Peer{std::move(handler), std::move(view_handler)};
    return PeerGroup(&endpoint_, group);
}

// -- routing ----------------------------------------------------------------------

void NewTopService::route_delivery(const GroupCommEndpoint::Delivery& delivery) {
    if (const auto peer = peers_.find(delivery.group); peer != peers_.end()) {
        peer->second.handler(PeerMessage{delivery.group, delivery.sender, delivery.payload});
        return;
    }
    invocation_.on_deliver(delivery);
}

void NewTopService::add_view_observer(ViewObserver observer) {
    NEWTOP_EXPECTS(observer != nullptr, "null view observer");
    view_observers_.push_back(std::move(observer));
}

void NewTopService::route_view_change(const GroupCommEndpoint::ViewChangeEvent& event) {
    // Re-assert our NSO registration: directory eviction is suspicion-
    // based and advisory, so a falsely evicted (partitioned, lossy-link)
    // NSO heals itself the next time it proves liveness by installing a
    // view.
    directory_->register_nso(endpoint_.id(), management_ior_);
    for (const auto& observer : view_observers_) observer(event);
    if (const auto peer = peers_.find(event.view.group); peer != peers_.end()) {
        if (peer->second.view_handler) peer->second.view_handler(event.view);
        return;
    }
    invocation_.on_view_change(event);
}

void NewTopService::route_removed(GroupId group) {
    if (peers_.erase(group) > 0) return;
    invocation_.on_removed(group);
}

}  // namespace newtop
