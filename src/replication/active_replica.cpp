#include "replication/active_replica.hpp"

#include <utility>

#include "obs/names.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace newtop {

using namespace sim_literals;

namespace {

constexpr SimDuration kStateRetry = 3_s;

std::string transfer_object_name(const std::string& service, EndpointId member) {
    return "state:" + service + ":" + std::to_string(member.value());
}

Bytes encode_marker(EndpointId donor, const std::vector<EndpointId>& joiners) {
    Encoder e;
    encode(e, donor);
    encode(e, joiners);
    return std::move(e).take();
}

void decode_marker(const Bytes& args, EndpointId& donor, std::vector<EndpointId>& joiners) {
    Decoder d(args);
    decode(d, donor);
    decode(d, joiners);
}

}  // namespace

/// The servant handed to serve(): forwards to the application servant while
/// synced, buffers and refuses while a joiner awaits its snapshot, and
/// intercepts sync markers travelling in the ordered request stream.
class ActiveReplica::Shim : public GroupServant,
                            public std::enable_shared_from_this<ActiveReplica::Shim> {
public:
    Shim(NewTopService& nso, std::string service, std::shared_ptr<StatefulServant> app,
         bool founding)
        : nso_(&nso), service_(std::move(service)), app_(std::move(app)), synced_(founding) {}

    Bytes handle(std::uint32_t method, const Bytes& args) override {
        if (method == kSyncMarkerMethod) {
            on_marker(args);
            return {};
        }
        if (synced_) {
            ++executed_;
            return app_->handle(method, args);
        }
        buffered_.push_back({method, args});
        throw ServantError("replica state transfer in progress");
    }

    [[nodiscard]] SimDuration execution_cost(std::uint32_t method) const override {
        return method == kSyncMarkerMethod ? SimDuration{1} : app_->execution_cost(method);
    }

    // -- state transfer ---------------------------------------------------------

    void install_snapshot(const Bytes& snapshot) {
        if (synced_) return;
        app_->restore(snapshot);
        // Replay everything ordered after the marker; the snapshot covers
        // the prefix before it.
        for (auto& [method, args] : buffered_) {
            try {
                ++executed_;
                app_->handle(method, args);
            } catch (const ServantError&) {
                // the originating client saw the failure; state-wise a
                // throwing request is a no-op by contract
            }
        }
        buffered_.clear();
        synced_ = true;
        nso_->orb().scheduler().cancel(retry_timer_);
        retry_timer_ = 0;
    }

    /// A joiner asks us (directly) to run a state round for it: multicast a
    /// fresh marker so the snapshot cut is well defined.
    void send_marker_for(std::vector<EndpointId> joiners) {
        const GroupId group = server_group();
        if (!nso_->group_comm().is_member(group)) return;
        ForwardEnv marker;
        // group_origin bypasses the invocation layer's per-client reply
        // cache (markers are not client calls).
        marker.call = CallId{nso_->id().value(), marker_seq_++, true};
        marker.mode = InvocationMode::kOneWay;
        marker.manager = nso_->id();
        marker.method = kSyncMarkerMethod;
        marker.args = encode_marker(nso_->id(), joiners);
        nso_->group_comm().multicast(group, encode_envelope(marker));
    }

    void on_view(const GroupCommEndpoint::ViewChangeEvent& event) {
        if (event.view.group != server_group()) return;
        if (!synced_ && event.view.members.size() == 1 &&
            event.view.members.front() == nso_->id()) {
            // Re-founded lineage after whole-group death: nobody survived to
            // donate state, so the service restarts from this replica's
            // fresh state.  Requests refused while we waited already failed
            // at their clients; they are not part of the new history.
            buffered_.clear();
            install_snapshot(app_->snapshot());
            nso_->metrics().add(obs::metric::kReplicationStateRefounds);
            return;
        }
        // The senior continuing member becomes the snapshot donor for every
        // joiner in the new view.
        std::vector<EndpointId> continuing;
        for (const EndpointId m : event.view.members) {
            if (std::find(event.joined.begin(), event.joined.end(), m) == event.joined.end()) {
                continuing.push_back(m);
            }
        }
        if (continuing.empty() || event.joined.empty()) return;
        if (continuing.front() == nso_->id()) send_marker_for(event.joined);
    }

    void arm_retry() {
        if (synced_ || retry_timer_ != 0) return;
        retry_timer_ = nso_->orb().scheduler().schedule_after(kStateRetry, [self =
                                                                                shared_from_this()] {
            // The retry loop dies with its process: after a node restart a
            // fresh replica (new NSO, new shim) owns the recovery.
            if (self->nso_->orb().process_defunct()) return;
            self->retry_timer_ = 0;
            if (self->synced_) return;
            self->request_state();
            self->arm_retry();
        });
    }

    [[nodiscard]] bool synced() const { return synced_; }
    [[nodiscard]] std::uint64_t executed() const { return executed_; }
    [[nodiscard]] const std::string& service_name() const { return service_; }
    NewTopService& nso() { return *nso_; }

private:
    struct Buffered {
        std::uint32_t method;
        Bytes args;
    };

    [[nodiscard]] GroupId server_group() const {
        const Directory::GroupInfo* info = nullptr;
        // The NSO's directory is reachable through the group-comm endpoint's
        // registration; the facade guarantees the group exists by now.
        info = directory().find_group(service_);
        NEWTOP_ENSURES(info != nullptr, "server group vanished from the directory");
        return info->id;
    }

    [[nodiscard]] const Directory& directory() const { return *directory_; }

    void on_marker(const Bytes& args) {
        EndpointId donor;
        std::vector<EndpointId> joiners;
        try {
            decode_marker(args, donor, joiners);
        } catch (const DecodeError& err) {
            NEWTOP_WARN("active replica: bad sync marker: " << err.what());
            return;
        }
        const bool for_us =
            std::find(joiners.begin(), joiners.end(), nso_->id()) != joiners.end();
        if (!synced_ && for_us) {
            // Everything buffered so far was ordered before the marker and
            // is covered by the incoming snapshot.
            buffered_.clear();
            return;
        }
        if (donor == nso_->id() && synced_) {
            const Bytes snapshot = app_->snapshot();
            for (const EndpointId joiner : joiners) {
                if (joiner == nso_->id()) continue;
                const Ior* target =
                    directory().find_object(transfer_object_name(service_, joiner));
                if (target == nullptr) continue;
                nso_->orb().invoke_oneway(*target, kStateInstallMethod, snapshot);
            }
        }
    }

    void request_state() {
        const View* view = nso_->group_comm().current_view(server_group());
        if (view == nullptr) return;
        for (const EndpointId member : view->members) {
            if (member == nso_->id()) continue;
            const Ior* target = directory().find_object(transfer_object_name(service_, member));
            if (target != nullptr) {
                nso_->orb().invoke_oneway(*target, kStateRequestMethod,
                                          encode_to_bytes(nso_->id()));
                return;
            }
        }
    }

    friend class ActiveReplica;

    NewTopService* nso_;
    const Directory* directory_{nullptr};
    std::string service_;
    std::shared_ptr<StatefulServant> app_;
    bool synced_;
    std::uint64_t executed_{0};
    std::uint64_t marker_seq_{0};
    std::deque<Buffered> buffered_;
    TimerId retry_timer_{0};
};

/// The replica's ORB-visible state-transfer object.
class ActiveReplica::TransferServant : public Servant {
public:
    explicit TransferServant(std::shared_ptr<Shim> shim) : shim_(std::move(shim)) {}

    Bytes dispatch(std::uint32_t method, BytesView args) override {
        switch (method) {
            case kStateInstallMethod:
                // State transfer is cold; materialize the snapshot out of
                // the borrowed wire buffer.
                shim_->install_snapshot(Bytes(args.begin(), args.end()));
                return {};
            case kStateRequestMethod: {
                const auto joiner = decode_from_bytes<EndpointId>(args);
                if (shim_->synced()) shim_->send_marker_for({joiner});
                return {};
            }
            default:
                throw ServantError("unknown state-transfer method");
        }
    }

private:
    std::shared_ptr<Shim> shim_;
};

ActiveReplica::ActiveReplica(NewTopService& nso, std::string service, const GroupConfig& config,
                             std::shared_ptr<StatefulServant> app)
    : nso_(&nso), service_(std::move(service)) {
    NEWTOP_EXPECTS(app != nullptr, "active replica needs an application servant");

    // Reach the directory the same way the facade does.
    Directory* directory = nullptr;
    // NewTopService does not expose the directory directly; register via a
    // back-channel: the group-comm endpoint carries it.  (Friend-free
    // workaround: the facade re-exposes what we need below.)
    directory = &nso_->directory();

    const bool founding = directory->find_group(service_) == nullptr;
    shim_ = std::make_shared<Shim>(*nso_, service_, std::move(app), founding);
    shim_->directory_ = directory;

    // Publish the state-transfer object before joining so a donor can find
    // it the moment the join view installs.
    const Ior transfer_ior = nso_->orb().adapter().activate(
        std::make_shared<TransferServant>(shim_), "ReplicaStateTransfer");
    directory->register_object(transfer_object_name(service_, nso_->id()), transfer_ior);

    nso_->add_view_observer(
        [shim = shim_](const GroupCommEndpoint::ViewChangeEvent& event) { shim->on_view(event); });

    nso_->serve(service_, config, shim_);
    if (!founding) shim_->arm_retry();
}

bool ActiveReplica::synced() const { return shim_->synced(); }

std::uint64_t ActiveReplica::executed() const { return shim_->executed(); }

}  // namespace newtop
