#include "replication/recoverable.hpp"

#include <utility>

#include "util/check.hpp"

namespace newtop {

namespace {

/// Forwards to the wrapped application servant and fires `on_first_execute`
/// at the first successful execution.  Under active replication the shim
/// only reaches the application once state transfer completed, so the
/// probe marks the first *correct* post-recovery execution; under passive
/// replication it fires when this member first executes as primary.
class ProbedStatefulServant : public StatefulServant {
public:
    ProbedStatefulServant(std::shared_ptr<StatefulServant> inner,
                          std::function<void()> on_first_execute)
        : inner_(std::move(inner)), on_first_execute_(std::move(on_first_execute)) {}

    Bytes handle(std::uint32_t method, const Bytes& args) override {
        Bytes reply = inner_->handle(method, args);
        if (on_first_execute_) {
            auto fire = std::move(on_first_execute_);
            on_first_execute_ = nullptr;
            fire();
        }
        return reply;
    }

    [[nodiscard]] SimDuration execution_cost(std::uint32_t method) const override {
        return inner_->execution_cost(method);
    }

    [[nodiscard]] Bytes snapshot() const override { return inner_->snapshot(); }

    void restore(const Bytes& snapshot) override { inner_->restore(snapshot); }

private:
    std::shared_ptr<StatefulServant> inner_;
    std::function<void()> on_first_execute_;
};

}  // namespace

RecoveryManager::GenerationFactory make_active_generation(std::string service,
                                                          GroupConfig config,
                                                          StatefulServantFactory make_app) {
    NEWTOP_EXPECTS(make_app != nullptr, "active generation needs a servant factory");
    return [service = std::move(service), config, make_app = std::move(make_app)](
               NewTopService& nso, std::function<void()> note_recovered) {
        auto probed =
            std::make_shared<ProbedStatefulServant>(make_app(), std::move(note_recovered));
        auto replica = std::make_shared<ActiveReplica>(nso, service, config, probed);
        RecoveryManager::Generation gen;
        gen.keepalive = replica;
        gen.ready = [replica, &nso, service] {
            return replica->synced() && nso.invocation().serving(service);
        };
        return gen;
    };
}

RecoveryManager::GenerationFactory make_passive_generation(std::string service,
                                                           GroupConfig config,
                                                           StatefulServantFactory make_app,
                                                           PassiveOptions options) {
    NEWTOP_EXPECTS(make_app != nullptr, "passive generation needs a servant factory");
    return [service = std::move(service), config, make_app = std::move(make_app), options](
               NewTopService& nso, std::function<void()> note_recovered) {
        auto probed =
            std::make_shared<ProbedStatefulServant>(make_app(), std::move(note_recovered));
        auto replica = std::make_shared<PassiveReplica>(nso, service, config, probed, options);
        RecoveryManager::Generation gen;
        gen.keepalive = replica;
        gen.ready = [&nso, service] { return nso.invocation().serving(service); };
        return gen;
    };
}

}  // namespace newtop
