// Glue between the crash-recovery subsystem and the replication styles.
//
// RecoveryManager is replication-agnostic: it rebuilds the NSO after a
// restart and delegates the application rebuild to a GenerationFactory.
// The helpers here produce factories for the two replication styles:
//
//   RecoveryManager server(net, directory, site,
//       make_active_generation("random", config,
//                              [] { return std::make_shared<Counter>(); }));
//
// Each restart builds a *fresh* replica (new ActiveReplica / PassiveReplica
// over a fresh application servant); the replica joins the surviving group
// and pulls authoritative state through the normal state-transfer /
// checkpoint machinery.  `ready` reports synced-and-serving, and the first
// request executed after that fires the manager's MTTR probe.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "newtop/recovery_manager.hpp"
#include "replication/active_replica.hpp"
#include "replication/passive_replica.hpp"

namespace newtop {

/// Makes fresh application servants, one per life of the process.
using StatefulServantFactory = std::function<std::shared_ptr<StatefulServant>()>;

/// A generation factory serving `service` as an actively-replicated member.
/// Ready once state transfer completed and the member is in the server
/// group's installed view.
RecoveryManager::GenerationFactory make_active_generation(std::string service,
                                                          GroupConfig config,
                                                          StatefulServantFactory make_app);

/// A generation factory serving `service` as a passive (primary-backup)
/// member.  Ready once the member is in the server group's installed view
/// (a rejoining backup is consistent from its first checkpoint onwards).
RecoveryManager::GenerationFactory make_passive_generation(std::string service,
                                                           GroupConfig config,
                                                           StatefulServantFactory make_app,
                                                           PassiveOptions options = {});

}  // namespace newtop
