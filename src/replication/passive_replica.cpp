#include "replication/passive_replica.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"
#include "util/log.hpp"

namespace newtop {

namespace {

std::string checkpoint_object_name(const std::string& service, EndpointId member) {
    return "pstate:" + service + ":" + std::to_string(member.value());
}

/// A position in the totally-ordered request stream: (view epoch, index of
/// the request within that epoch).  Identical at every member because all
/// members deliver the same requests in the same order per view.
struct StreamPos {
    ViewEpoch epoch{0};
    std::uint64_t index{0};

    friend auto operator<=>(const StreamPos&, const StreamPos&) = default;
};

}  // namespace

class PassiveReplica::Shim : public GroupServant {
public:
    Shim(NewTopService& nso, std::string service, std::shared_ptr<StatefulServant> app,
         PassiveOptions options, bool founding)
        : nso_(&nso),
          service_(std::move(service)),
          app_(std::move(app)),
          options_(options),
          primary_(founding) {}

    Bytes handle(std::uint32_t method, const Bytes& args) override {
        const StreamPos pos{epoch_, next_index_++};
        if (primary_) {
            ++executed_;
            Bytes result = app_->handle(method, args);  // may throw to the client
            // Checkpoints are tagged with the *count* of requests covered
            // ({epoch, index + 1}), so they strictly supersede each other.
            if (executed_ % options_.checkpoint_every == 0) {
                send_checkpoint(StreamPos{pos.epoch, pos.index + 1});
            }
            return result;
        }
        // Backup: log only; with asynchronous forwarding the reply is never
        // used (the primary answered the client already).
        log_.push_back(LogEntry{pos, method, args});
        return {};
    }

    [[nodiscard]] SimDuration execution_cost(std::uint32_t method) const override {
        // Backups only log; the real execution cost is paid by the primary.
        return primary_ ? app_->execution_cost(method) : SimDuration{5};
    }

    void install_checkpoint(BytesView body) {
        Decoder d(body);
        StreamPos pos;
        decode(d, pos.epoch);
        decode(d, pos.index);
        const Bytes snapshot = d.get_blob();
        if (has_applied_ && pos <= applied_) return;  // stale checkpoint
        if (primary_) return;  // we are authoritative
        app_->restore(snapshot);
        applied_ = pos;
        has_applied_ = true;
        // The checkpoint covers all requests with index < pos.index in its
        // epoch (and everything from earlier epochs).
        std::erase_if(log_, [&](const LogEntry& entry) {
            return entry.pos.epoch < pos.epoch ||
                   (entry.pos.epoch == pos.epoch && entry.pos.index < pos.index);
        });
    }

    void on_view(const GroupCommEndpoint::ViewChangeEvent& event) {
        const Directory::GroupInfo* info = nso_->directory().find_group(service_);
        if (info == nullptr || event.view.group != info->id) return;
        epoch_ = event.view.epoch;
        next_index_ = 0;
        members_ = event.view.members;

        const bool should_lead = event.view.leader() == nso_->id();
        if (should_lead && !primary_) {
            // Failover: replay the logged suffix past our last checkpoint,
            // then take over as primary (the restricted-group clients will
            // rebind to us, and their retries hit the reply caches).
            NEWTOP_INFO("passive replica " << nso_->id() << " takes over " << service_
                                           << " (replaying " << log_.size() << " requests)");
            for (const LogEntry& entry : log_) {
                try {
                    ++executed_;
                    app_->handle(entry.method, entry.args);
                } catch (const ServantError&) {
                    // a request that failed at the old primary fails here too
                }
            }
            log_.clear();
            primary_ = true;
            send_checkpoint(StreamPos{epoch_, 0});
        } else if (!should_lead && primary_) {
            primary_ = false;  // partitioned minority side demotes itself
        }
    }

    [[nodiscard]] bool is_primary() const { return primary_; }
    [[nodiscard]] std::uint64_t executed() const { return executed_; }
    [[nodiscard]] std::size_t log_size() const { return log_.size(); }

private:
    struct LogEntry {
        StreamPos pos;
        std::uint32_t method;
        Bytes args;
    };

    void send_checkpoint(StreamPos pos) {
        Encoder e;
        encode(e, pos.epoch);
        encode(e, pos.index);
        e.put_blob(app_->snapshot());
        const Bytes body = std::move(e).take();
        for (const EndpointId member : members_) {
            if (member == nso_->id()) continue;
            const Ior* target =
                nso_->directory().find_object(checkpoint_object_name(service_, member));
            if (target != nullptr) {
                nso_->orb().invoke_oneway(*target, kCheckpointInstallMethod, body);
            }
        }
    }

    NewTopService* nso_;
    std::string service_;
    std::shared_ptr<StatefulServant> app_;
    PassiveOptions options_;
    bool primary_;
    ViewEpoch epoch_{0};
    std::uint64_t next_index_{0};
    std::uint64_t executed_{0};
    std::vector<EndpointId> members_;
    std::deque<LogEntry> log_;
    StreamPos applied_;
    bool has_applied_{false};
};

class PassiveReplica::CheckpointServant : public Servant {
public:
    explicit CheckpointServant(std::shared_ptr<Shim> shim) : shim_(std::move(shim)) {}

    Bytes dispatch(std::uint32_t method, BytesView args) override {
        if (method != kCheckpointInstallMethod) throw ServantError("unknown method");
        try {
            shim_->install_checkpoint(args);
        } catch (const DecodeError& err) {
            NEWTOP_WARN("passive replica: bad checkpoint: " << err.what());
        }
        return {};
    }

private:
    std::shared_ptr<Shim> shim_;
};

PassiveReplica::PassiveReplica(NewTopService& nso, std::string service,
                               const GroupConfig& config,
                               std::shared_ptr<StatefulServant> app, PassiveOptions options)
    : nso_(&nso), service_(std::move(service)) {
    NEWTOP_EXPECTS(app != nullptr, "passive replica needs an application servant");
    NEWTOP_EXPECTS(options.checkpoint_every > 0, "checkpoint interval must be positive");

    const bool founding = nso_->directory().find_group(service_) == nullptr;
    shim_ = std::make_shared<Shim>(*nso_, service_, std::move(app), options, founding);

    const Ior checkpoint_ior = nso_->orb().adapter().activate(
        std::make_shared<CheckpointServant>(shim_), "PassiveCheckpoint");
    nso_->directory().register_object(checkpoint_object_name(service_, nso_->id()),
                                      checkpoint_ior);

    nso_->add_view_observer(
        [shim = shim_](const GroupCommEndpoint::ViewChangeEvent& event) { shim->on_view(event); });

    nso_->serve(service_, config, shim_);
}

bool PassiveReplica::is_primary() const { return shim_->is_primary(); }

std::uint64_t PassiveReplica::executed() const { return shim_->executed(); }

std::size_t PassiveReplica::log_size() const { return shim_->log_size(); }

}  // namespace newtop
