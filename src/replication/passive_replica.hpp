// Passive (primary-backup) replication on top of the invocation layer.
//
// The paper's recipe (§4.2): bind clients with the *restricted group* +
// *asynchronous message forwarding* optimisations so the request manager,
// the sequencer and the primary are all the same member.  The primary
// executes and answers; the backups receive every request through the
// ordered channel but only log it.  The primary periodically ships
// checkpoints (full state snapshots tagged with a position in the request
// stream); a backup applies a checkpoint and discards the covered prefix
// of its log.  On primary failure the next-ranked member replays its log
// past its last checkpoint and takes over.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "newtop/newtop_service.hpp"
#include "replication/stateful_servant.hpp"

namespace newtop {

/// ORB method id of the checkpoint receiver object.
inline constexpr std::uint32_t kCheckpointInstallMethod = 311;

struct PassiveOptions {
    /// Ship a checkpoint to the backups after every N executed requests.
    std::uint32_t checkpoint_every{4};
};

class PassiveReplica {
public:
    /// Serve `service` passively.  The group config should use the
    /// asymmetric ordering protocol (sequencer = primary); clients should
    /// bind with {restricted = true, async_forwarding = true}.
    PassiveReplica(NewTopService& nso, std::string service, const GroupConfig& config,
                   std::shared_ptr<StatefulServant> app, PassiveOptions options = {});

    PassiveReplica(const PassiveReplica&) = delete;
    PassiveReplica& operator=(const PassiveReplica&) = delete;

    /// True while this member is the executing primary.
    [[nodiscard]] bool is_primary() const;

    /// Requests executed by this member (as primary, including failover
    /// replay).
    [[nodiscard]] std::uint64_t executed() const;

    /// Requests currently logged, awaiting a checkpoint (backups only).
    [[nodiscard]] std::size_t log_size() const;

    [[nodiscard]] const std::string& service() const { return service_; }

private:
    class Shim;
    class CheckpointServant;

    NewTopService* nso_;
    std::string service_;
    std::shared_ptr<Shim> shim_;
};

}  // namespace newtop
