// Stateful servants: the state-transfer contract replication needs.
#pragma once

#include "invocation/group_servant.hpp"

namespace newtop {

/// A group servant whose full state can be captured and restored — the
/// "state transfer facility" the paper notes is required on top of the
/// object group service to support replication of stateful objects (§2.2).
class StatefulServant : public GroupServant {
public:
    /// Serialize the complete application state.
    [[nodiscard]] virtual Bytes snapshot() const = 0;

    /// Replace the application state with a previously captured snapshot.
    virtual void restore(const Bytes& snapshot) = 0;
};

}  // namespace newtop
