// Active replication with state transfer for joining members.
//
// The invocation layer already provides active replication for replicas
// that are present from the start: totally-ordered forwards + deterministic
// servants keep copies identical.  What it does not provide is *growth*: a
// member joining a running group starts with empty state.  ActiveReplica
// adds the missing state transfer:
//
//   * every replica wraps its application servant in a shim that counts
//     executions and intercepts sync markers,
//   * when a view with joiners installs, the senior continuing member (the
//     donor) multicasts a sync marker through the ordered channel; because
//     the marker is executed in-stream, the donor's snapshot at the marker
//     reflects exactly the requests ordered before it,
//   * joiners buffer executions, discard those ordered before the marker
//     (the snapshot covers them), apply the snapshot when it arrives, then
//     replay the rest — exactly-once, no gaps,
//   * while unsynced, a joiner answers with an exception rather than a
//     wrong value.
#pragma once

#include <deque>
#include <memory>
#include <string>

#include "newtop/newtop_service.hpp"
#include "replication/stateful_servant.hpp"

namespace newtop {

/// ORB method ids of the replica's state-transfer servant.
inline constexpr std::uint32_t kStateInstallMethod = 301;
inline constexpr std::uint32_t kStateRequestMethod = 302;

/// Reserved invocation-method id carrying sync markers through the
/// ordered request stream (applications must not use it).
inline constexpr std::uint32_t kSyncMarkerMethod = 0xffffffff;

class ActiveReplica {
public:
    /// Serve `service` with `app`, joining the replica group (creating it
    /// if this is the first member).  A joiner synchronises its state from
    /// the group before answering.
    ActiveReplica(NewTopService& nso, std::string service, const GroupConfig& config,
                  std::shared_ptr<StatefulServant> app);

    ActiveReplica(const ActiveReplica&) = delete;
    ActiveReplica& operator=(const ActiveReplica&) = delete;

    /// True once this replica holds authoritative state (immediately for
    /// founding members; after state transfer for joiners).
    [[nodiscard]] bool synced() const;

    /// Requests executed against the application servant so far.
    [[nodiscard]] std::uint64_t executed() const;

    [[nodiscard]] const std::string& service() const { return service_; }

private:
    class Shim;
    class TransferServant;

    NewTopService* nso_;
    std::string service_;
    std::shared_ptr<Shim> shim_;
};

}  // namespace newtop
