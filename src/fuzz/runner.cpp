#include "fuzz/runner.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "newtop/newtop_service.hpp"
#include "newtop/recovery_manager.hpp"
#include "util/check.hpp"

namespace newtop::fuzz {

using namespace sim_literals;

namespace {

/// Deterministic stateless servant: replies echo the request payload, so
/// execution order across replicas never changes reply values and any
/// reply-set disagreement the oracle sees is the protocol's fault.
class EchoServant : public GroupServant {
public:
    Bytes handle(std::uint32_t, const Bytes& args) override { return args; }
};

LinkParams to_params(const LinkSpec& link) {
    return LinkParams{.latency = static_cast<SimDuration>(link.latency_us),
                      .jitter = static_cast<SimDuration>(link.jitter_us),
                      .loss = link.loss,
                      .bytes_per_us = link.bytes_per_us};
}

std::string service_name(int j) { return "svc" + std::to_string(j); }

}  // namespace

std::vector<std::string> check_call_liveness(const std::vector<obs::TraceEvent>& events,
                                             const std::set<std::uint64_t>& exempt) {
    // (trace, actor) -> sim time the call was first seen; erased on any
    // terminal event.  Per-actor keys keep group-origin calls (one trace,
    // many issuing clients) individually accountable.
    std::map<std::pair<std::uint64_t, std::uint64_t>, SimTime> open;
    for (const obs::TraceEvent& e : events) {
        const std::pair<std::uint64_t, std::uint64_t> key{e.trace, e.actor};
        switch (e.kind) {
            case obs::TraceKind::kRequestQueued:
            case obs::TraceKind::kRequestSent:
                open.try_emplace(key, e.at);
                break;
            case obs::TraceKind::kCallCompleted:
            case obs::TraceKind::kCallFailed:
            case obs::TraceKind::kCallTimedOut:
                open.erase(key);
                break;
            default: break;
        }
    }
    std::vector<std::string> failures;
    for (const auto& [key, at] : open) {
        if (exempt.contains(key.second)) continue;
        failures.push_back("call trace " + std::to_string(key.first) + " issued by endpoint " +
                           std::to_string(key.second) + " at t=" + std::to_string(at) +
                           "us never completed, failed or timed out");
    }
    return failures;
}

std::string RunResult::report() const {
    std::string out;
    if (trace_dropped > 0) {
        out += "trace_overflow: ring dropped " + std::to_string(trace_dropped) +
               " events; verdict unreliable, raise RunOptions::trace_capacity\n";
    }
    out += obs::ProtocolOracle::report(violations);
    for (const std::string& failure : liveness_failures) {
        out += "liveness: " + failure + "\n";
    }
    return out;
}

RunResult run_scenario(const Scenario& scenario, const RunOptions& options) {
    NEWTOP_EXPECTS(!scenario.services.empty(), "scenario needs at least one service");
    NEWTOP_EXPECTS(scenario.sites >= 1, "scenario needs at least one site");

    // -- world ---------------------------------------------------------------
    Scheduler scheduler;
    Topology topology;
    for (int sidx = 0; sidx < scenario.sites; ++sidx) {
        topology.add_site("site" + std::to_string(sidx), to_params(scenario.lan));
    }
    for (int a = 0; a < scenario.sites; ++a) {
        for (int b = a + 1; b < scenario.sites; ++b) {
            topology.set_link(SiteId(static_cast<SiteId::rep_type>(a)),
                              SiteId(static_cast<SiteId::rep_type>(b)),
                              to_params(scenario.wan));
        }
    }
    Network net(scheduler, std::move(topology), scenario.seed);
    obs::RingTraceSink sink(options.trace_capacity);
    net.metrics().set_trace_sink(&sink);
    Directory directory;

    struct Actor {
        std::unique_ptr<Orb> orb;
        std::unique_ptr<NewTopService> nso;
    };
    auto spawn = [&](int site) {
        Actor actor;
        actor.orb = std::make_unique<Orb>(
            net, net.add_node(SiteId(static_cast<SiteId::rep_type>(site))));
        actor.nso = std::make_unique<NewTopService>(*actor.orb, directory);
        return actor;
    };

    // -- servers -------------------------------------------------------------
    // Every server replica runs under a RecoveryManager so kRestart faults
    // exercise the real recovery pipeline: fresh NSO, re-serve, peer-group
    // rejoin, and (for joiners) the normal membership state machine.
    struct PeerJoin {
        std::string name;
        GroupConfig config;
    };
    struct ServerRt {
        std::unique_ptr<RecoveryManager> mgr;
        /// Peer groups this actor belongs to; the generation factory
        /// replays these joins after every restart.
        std::vector<PeerJoin> peer_specs;
        /// Current-generation peer handles (replaced on restart).
        std::map<std::string, PeerGroup> peer_by_name;
        bool restarted{false};  // targeted by a kRestart fault
    };
    std::vector<std::unique_ptr<ServerRt>> servers;  // Scenario::server_actor order
    for (std::size_t j = 0; j < scenario.services.size(); ++j) {
        const ServiceSpec& svc = scenario.services[j];
        GroupConfig config;
        config.order = svc.order;
        config.liveness = svc.liveness;
        const std::string name = service_name(static_cast<int>(j));
        for (const int site : svc.server_sites) {
            auto rt = std::make_unique<ServerRt>();
            ServerRt* raw = rt.get();
            auto factory = [raw, name, config](NewTopService& nso,
                                               std::function<void()> note_recovered) {
                nso.serve(name, config,
                          std::make_shared<RecoveryProbeServant>(
                              std::make_shared<EchoServant>(), std::move(note_recovered)));
                raw->peer_by_name.clear();
                for (const PeerJoin& peer : raw->peer_specs) {
                    raw->peer_by_name.emplace(
                        peer.name, nso.join_peer_group(peer.name, peer.config,
                                                       [](const NewTopService::PeerMessage&) {}));
                }
                RecoveryManager::Generation gen;
                gen.ready = [&nso, name] { return nso.invocation().serving(name); };
                return gen;
            };
            rt->mgr = std::make_unique<RecoveryManager>(
                net, directory, SiteId(static_cast<SiteId::rep_type>(site)),
                std::move(factory));
            servers.push_back(std::move(rt));
            scheduler.run_until(scheduler.now() + 300_ms);
        }
    }

    // -- clients -------------------------------------------------------------
    struct ClientRt {
        Actor actor;
        GroupProxy proxy;
        const ClientSpec* spec{nullptr};
        std::map<std::string, PeerGroup> peers;
        int issued{0};
        int done{0};
    };
    std::vector<std::unique_ptr<ClientRt>> clients;
    for (const ClientSpec& spec : scenario.clients) {
        auto rt = std::make_unique<ClientRt>();
        rt->actor = spawn(spec.site);
        rt->spec = &spec;
        BindOptions bind;
        bind.mode = spec.bind;
        bind.restricted = spec.restricted;
        bind.async_forwarding = spec.async_forwarding;
        bind.cs_order = spec.cs_order;
        bind.call_timeout = static_cast<SimDuration>(spec.call_timeout_us);
        rt->proxy = rt->actor.nso->bind(service_name(spec.service), bind);
        clients.push_back(std::move(rt));
    }
    scheduler.run_until(scheduler.now() + static_cast<SimDuration>(scenario.settle_us));

    // -- overlapping peer groups ----------------------------------------------
    const int total_servers = scenario.total_servers();
    for (std::size_t p = 0; p < scenario.peers.size(); ++p) {
        const PeerSpec& peer = scenario.peers[p];
        GroupConfig config;
        config.order = peer.order;
        config.liveness = LivenessMode::kLively;
        const std::string name = "peer" + std::to_string(p);
        for (const int member : peer.members) {
            const auto noop = [](const NewTopService::PeerMessage&) {};
            if (member < total_servers) {
                ServerRt& rt = *servers[static_cast<std::size_t>(member)];
                rt.peer_specs.push_back({name, config});
                rt.peer_by_name.emplace(name,
                                        rt.mgr->nso().join_peer_group(name, config, noop));
            } else {
                ClientRt& rt = *clients[static_cast<std::size_t>(member - total_servers)];
                rt.peers.emplace(name, rt.actor.nso->join_peer_group(name, config, noop));
            }
            scheduler.run_until(scheduler.now() + 300_ms);
        }
    }
    scheduler.run_until(scheduler.now() + 500_ms);

    // -- workload ------------------------------------------------------------
    const SimTime start = scheduler.now();
    std::function<void(std::size_t)> issue = [&](std::size_t i) {
        ClientRt& rt = *clients[i];
        if (rt.issued >= rt.spec->calls) return;
        ++rt.issued;
        Bytes payload(rt.spec->payload_bytes,
                      static_cast<std::uint8_t>(rt.issued & 0xff));
        rt.proxy.invoke(1, std::move(payload), rt.spec->mode, [&, i](const GroupReply&) {
            ++rt.done;
            scheduler.schedule_after(static_cast<SimDuration>(rt.spec->think_us),
                                     [&, i] { issue(i); });
        });
    };
    for (std::size_t i = 0; i < clients.size(); ++i) {
        // Deterministic stagger so clients don't all fire on one tick.
        scheduler.schedule_after(static_cast<SimDuration>(i) * 7'000, [&, i] { issue(i); });
    }
    // Peer publishes spread evenly over the workload window.  Handles are
    // resolved at fire time: a restarted server publishes through its
    // current generation's handle (and skips the publish while its rejoin
    // is still in flight).
    auto publish_as = [&](int member, const std::string& name, int k) {
        PeerGroup* group = nullptr;
        if (member < total_servers) {
            auto& by_name = servers[static_cast<std::size_t>(member)]->peer_by_name;
            if (const auto it = by_name.find(name); it != by_name.end()) group = &it->second;
        } else {
            auto& peers = clients[static_cast<std::size_t>(member - total_servers)]->peers;
            if (const auto it = peers.find(name); it != peers.end()) group = &it->second;
        }
        if (group == nullptr || !group->joined()) return;
        const std::string text = "chaos" + std::to_string(k);
        group->publish(Bytes(text.begin(), text.end()));
    };
    for (std::size_t p = 0; p < scenario.peers.size(); ++p) {
        const PeerSpec& peer = scenario.peers[p];
        const std::string name = "peer" + std::to_string(p);
        for (const int member : peer.members) {
            for (int k = 0; k < peer.publishes_per_member; ++k) {
                const SimDuration at = static_cast<SimDuration>(
                    (static_cast<std::uint64_t>(k) + 1) * scenario.run_us /
                    (static_cast<std::uint64_t>(peer.publishes_per_member) + 1));
                scheduler.schedule_at(start + at,
                                      [&publish_as, member, name, k] { publish_as(member, name, k); });
            }
        }
    }

    // -- fault plan -----------------------------------------------------------
    std::set<std::uint64_t> exempt;  // endpoint ids of crashed clients
    for (const FaultSpec& fault : scenario.faults) {
        const SimTime at = start + static_cast<SimDuration>(fault.at_us);
        switch (fault.kind) {
            case FaultSpec::Kind::kCrashServer: {
                ServerRt& server = *servers[static_cast<std::size_t>(
                    scenario.server_actor(fault.a, fault.b))];
                NodeId node = server.mgr->node_id();
                scheduler.schedule_at(at, [&net, node] { net.crash(node); });
                break;
            }
            case FaultSpec::Kind::kRestart: {
                ServerRt& server = *servers[static_cast<std::size_t>(
                    scenario.server_actor(fault.a, fault.b))];
                server.restarted = true;
                NodeId node = server.mgr->node_id();
                scheduler.schedule_at(at, [&net, node] { net.restart(node, 0); });
                break;
            }
            case FaultSpec::Kind::kCrashClient: {
                ClientRt& rt = *clients[static_cast<std::size_t>(fault.a)];
                exempt.insert(rt.actor.nso->id().value());
                NodeId node = rt.actor.orb->node_id();
                scheduler.schedule_at(at, [&net, node] { net.crash(node); });
                break;
            }
            case FaultSpec::Kind::kPartitionSite: {
                const SiteId site(static_cast<SiteId::rep_type>(fault.a));
                const int cell = fault.b;
                scheduler.schedule_at(at, [&net, site, cell] { net.partition_site(site, cell); });
                break;
            }
            case FaultSpec::Kind::kHeal:
                scheduler.schedule_at(at, [&net] { net.heal(); });
                break;
            case FaultSpec::Kind::kLossBurst: {
                const double loss = fault.loss;
                scheduler.schedule_at(at, [&net, loss] { net.set_extra_loss(loss); });
                scheduler.schedule_at(at + static_cast<SimDuration>(fault.duration_us),
                                      [&net] { net.set_extra_loss(0.0); });
                break;
            }
            case FaultSpec::Kind::kSlowNode: {
                ServerRt& server = *servers[static_cast<std::size_t>(
                    scenario.server_actor(fault.a, fault.b))];
                NodeId node = server.mgr->node_id();
                const double factor = fault.loss;
                scheduler.schedule_at(at,
                                      [&net, node, factor] { net.set_cpu_slowdown(node, factor); });
                scheduler.schedule_at(at + static_cast<SimDuration>(fault.duration_us),
                                      [&net, node] { net.set_cpu_slowdown(node, 1.0); });
                break;
            }
            case FaultSpec::Kind::kLinkDegrade: {
                const SiteId sa(static_cast<SiteId::rep_type>(fault.a));
                const SiteId sb(static_cast<SiteId::rep_type>(fault.b));
                LinkDegrade degrade;
                degrade.extra_latency = static_cast<SimDuration>(fault.extra_us);
                degrade.extra_jitter = static_cast<SimDuration>(fault.extra_us / 4);
                degrade.extra_loss = fault.loss;
                scheduler.schedule_at(
                    at, [&net, sa, sb, degrade] { net.set_link_degrade(sa, sb, degrade); });
                scheduler.schedule_at(at + static_cast<SimDuration>(fault.duration_us),
                                      [&net, sa, sb] { net.clear_link_degrade(sa, sb); });
                break;
            }
            case FaultSpec::Kind::kFlap:
                // schedule_flap lays out every transition up front; the last
                // one always rejoins the site, so flaps are self-healing.
                net.schedule_flap(SiteId(static_cast<SiteId::rep_type>(fault.a)), at, fault.b,
                                  static_cast<SimDuration>(fault.extra_us),
                                  static_cast<SimDuration>(fault.extra_us), /*cell=*/9);
                break;
            case FaultSpec::Kind::kReconfigure: {
                // Resolved at fire time: the first live, installed replica of
                // the service proposes a runtime switch of the group's
                // total-order protocol through the group's own ordered
                // stream.  If every replica is down or mid-rejoin the fault
                // is a no-op — exactly what a real operator's request would
                // be against an unreachable group.
                const int j = fault.a;
                const OrderMode target = fault.b == 0 ? OrderMode::kTotalAsymmetric
                                                      : OrderMode::kTotalSymmetric;
                scheduler.schedule_at(at, [&, j, target] {
                    const auto* info = directory.find_group(service_name(j));
                    if (info == nullptr) return;
                    const int replicas = static_cast<int>(
                        scenario.services[static_cast<std::size_t>(j)].server_sites.size());
                    for (int k = 0; k < replicas; ++k) {
                        ServerRt& server = *servers[static_cast<std::size_t>(
                            scenario.server_actor(j, k))];
                        if (net.node(server.mgr->node_id()).crashed()) continue;
                        GroupCommEndpoint& gc = server.mgr->nso().group_comm();
                        if (!gc.is_member(info->id)) continue;
                        const GroupConfig* current = gc.group_config(info->id);
                        if (current == nullptr || current->order == target) return;
                        GroupConfig next = *current;
                        next.order = target;
                        gc.reconfigure(info->id, next);
                        return;
                    }
                });
                break;
            }
        }
    }

    // -- run + drain -----------------------------------------------------------
    scheduler.run_until(start + static_cast<SimDuration>(scenario.run_us));
    scheduler.run_until(scheduler.now() + static_cast<SimDuration>(scenario.drain_us));
    // Bounded extra windows: a still-working scenario (slow rebind chains,
    // a restarted replica mid-resync) gets time to finish; a genuine hang
    // survives them and is reported.
    auto recovery_pending = [&] {
        for (const auto& rt : servers) {
            if (rt->restarted && !net.node(rt->mgr->node_id()).crashed() &&
                !rt->mgr->recovered()) {
                return true;
            }
        }
        return false;
    };
    for (int guard = 0; guard < 8; ++guard) {
        bool all_done = !recovery_pending();
        for (const auto& rt : clients) {
            if (exempt.contains(rt->actor.nso->id().value())) continue;
            all_done &= rt->done >= rt->spec->calls;
        }
        if (all_done) break;
        scheduler.run_until(scheduler.now() + 5_s);
    }

    net.metrics().set_trace_sink(nullptr);
    std::vector<obs::TraceEvent> events = sink.snapshot();
    if (options.mutator) options.mutator(events);

    // -- checks ----------------------------------------------------------------
    obs::OracleOptions oracle_options;
    for (std::size_t j = 0; j < scenario.services.size(); ++j) {
        if (scenario.services[j].order != OrderMode::kCausal) continue;
        const auto* info = directory.find_group(service_name(static_cast<int>(j)));
        if (info != nullptr) oracle_options.causal_groups.insert(info->id.value());
    }
    for (std::size_t p = 0; p < scenario.peers.size(); ++p) {
        if (scenario.peers[p].order != OrderMode::kCausal) continue;
        const auto* info = directory.find_group("peer" + std::to_string(p));
        if (info != nullptr) oracle_options.causal_groups.insert(info->id.value());
    }

    RunResult result;
    result.seed = scenario.seed;
    result.trace_events = static_cast<std::uint64_t>(events.size());
    result.trace_dropped = sink.dropped();
    result.violations = obs::ProtocolOracle(oracle_options).check(events);
    result.liveness_failures = check_call_liveness(events, exempt);
    // Resync liveness: every replica a kRestart fault brought back must end
    // the run recovered (rejoined its server group and serving), unless a
    // later crash took it down again.
    for (std::size_t idx = 0; idx < servers.size(); ++idx) {
        const ServerRt& rt = *servers[idx];
        if (!rt.restarted) continue;
        if (net.node(rt.mgr->node_id()).crashed()) continue;
        if (!rt.mgr->recovered()) {
            result.liveness_failures.push_back(
                "recovery: server actor " + std::to_string(idx) + " (endpoint " +
                std::to_string(rt.mgr->endpoint().value()) +
                ") restarted but never rejoined its server group");
        }
    }
    // Gray-failure stability: slowdowns, sick links and flaps all end, and
    // none of them kills a process — so after the drain every service with
    // a live replica must still have at least one replica serving.  A
    // suspicion/rejoin livelock (the detector ejecting slow-but-alive
    // members faster than they can come back) shows up here.
    const bool has_gray = std::any_of(
        scenario.faults.begin(), scenario.faults.end(), [](const FaultSpec& f) {
            return f.kind == FaultSpec::Kind::kSlowNode ||
                   f.kind == FaultSpec::Kind::kLinkDegrade || f.kind == FaultSpec::Kind::kFlap;
        });
    if (has_gray) {
        for (std::size_t j = 0; j < scenario.services.size(); ++j) {
            const std::string name = service_name(static_cast<int>(j));
            const int replicas =
                static_cast<int>(scenario.services[j].server_sites.size());
            bool any_live = false;
            bool any_serving = false;
            for (int k = 0; k < replicas; ++k) {
                const ServerRt& rt = *servers[static_cast<std::size_t>(
                    scenario.server_actor(static_cast<int>(j), k))];
                if (net.node(rt.mgr->node_id()).crashed()) continue;
                any_live = true;
                if (rt.mgr->nso().invocation().serving(name)) any_serving = true;
            }
            if (any_live && !any_serving) {
                result.liveness_failures.push_back(
                    "gray: service " + name +
                    " has live replicas but none serving after the faults cleared");
            }
        }
    }
    if (options.keep_trace) result.trace = std::move(events);
    return result;
}

}  // namespace newtop::fuzz
