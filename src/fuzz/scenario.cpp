#include "fuzz/scenario.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace newtop::fuzz {

namespace {

const char* order_name(OrderMode order) {
    switch (order) {
        case OrderMode::kTotalSymmetric: return "total_symmetric";
        case OrderMode::kTotalAsymmetric: return "total_asymmetric";
        case OrderMode::kCausal: return "causal";
    }
    return "?";
}

const char* mode_name(InvocationMode mode) {
    switch (mode) {
        case InvocationMode::kOneWay: return "one_way";
        case InvocationMode::kWaitFirst: return "wait_first";
        case InvocationMode::kWaitMajority: return "wait_majority";
        case InvocationMode::kWaitAll: return "wait_all";
    }
    return "?";
}

void append_link(std::string& out, const LinkSpec& link) {
    out += "{\"latency_us\":" + std::to_string(link.latency_us) +
           ",\"jitter_us\":" + std::to_string(link.jitter_us) +
           ",\"loss\":" + std::to_string(link.loss) +
           ",\"bytes_per_us\":" + std::to_string(link.bytes_per_us) + "}";
}

}  // namespace

const char* fault_kind_name(FaultSpec::Kind kind) {
    switch (kind) {
        case FaultSpec::Kind::kCrashServer: return "crash_server";
        case FaultSpec::Kind::kCrashClient: return "crash_client";
        case FaultSpec::Kind::kPartitionSite: return "partition_site";
        case FaultSpec::Kind::kHeal: return "heal";
        case FaultSpec::Kind::kLossBurst: return "loss_burst";
        case FaultSpec::Kind::kRestart: return "restart_server";
        case FaultSpec::Kind::kReconfigure: return "reconfigure";
        case FaultSpec::Kind::kSlowNode: return "slow_node";
        case FaultSpec::Kind::kLinkDegrade: return "link_degrade";
        case FaultSpec::Kind::kFlap: return "flap";
    }
    return "?";
}

int Scenario::total_servers() const {
    int n = 0;
    for (const ServiceSpec& s : services) n += static_cast<int>(s.server_sites.size());
    return n;
}

int Scenario::server_actor(int service, int replica) const {
    int base = 0;
    for (int j = 0; j < service; ++j) {
        base += static_cast<int>(services[static_cast<std::size_t>(j)].server_sites.size());
    }
    return base + replica;
}

std::string to_json(const Scenario& scenario) {
    std::string out = "{\"seed\":" + std::to_string(scenario.seed);
    out += ",\"sites\":" + std::to_string(scenario.sites);
    out += ",\"lan\":";
    append_link(out, scenario.lan);
    out += ",\"wan\":";
    append_link(out, scenario.wan);

    out += ",\"services\":[";
    for (std::size_t j = 0; j < scenario.services.size(); ++j) {
        const ServiceSpec& svc = scenario.services[j];
        if (j > 0) out += ',';
        out += std::string("{\"order\":\"") + order_name(svc.order) + "\",\"liveness\":\"" +
               (svc.liveness == LivenessMode::kLively ? "lively" : "event_driven") +
               "\",\"server_sites\":[";
        for (std::size_t k = 0; k < svc.server_sites.size(); ++k) {
            if (k > 0) out += ',';
            out += std::to_string(svc.server_sites[k]);
        }
        out += "]}";
    }

    out += "],\"clients\":[";
    for (std::size_t i = 0; i < scenario.clients.size(); ++i) {
        const ClientSpec& c = scenario.clients[i];
        if (i > 0) out += ',';
        out += "{\"site\":" + std::to_string(c.site) +
               ",\"service\":" + std::to_string(c.service) + ",\"bind\":\"" +
               (c.bind == BindMode::kClosed ? "closed" : "open") +
               "\",\"restricted\":" + (c.restricted ? "true" : "false") +
               ",\"async_forwarding\":" + (c.async_forwarding ? "true" : "false") +
               ",\"cs_order\":\"" + order_name(c.cs_order) + "\",\"mode\":\"" +
               mode_name(c.mode) + "\",\"calls\":" + std::to_string(c.calls) +
               ",\"think_us\":" + std::to_string(c.think_us) +
               ",\"payload_bytes\":" + std::to_string(c.payload_bytes) +
               ",\"call_timeout_us\":" + std::to_string(c.call_timeout_us) + "}";
    }

    out += "],\"peers\":[";
    for (std::size_t p = 0; p < scenario.peers.size(); ++p) {
        const PeerSpec& peer = scenario.peers[p];
        if (p > 0) out += ',';
        out += std::string("{\"order\":\"") + order_name(peer.order) + "\",\"members\":[";
        for (std::size_t k = 0; k < peer.members.size(); ++k) {
            if (k > 0) out += ',';
            out += std::to_string(peer.members[k]);
        }
        out += "],\"publishes_per_member\":" + std::to_string(peer.publishes_per_member) + "}";
    }

    out += "],\"faults\":[";
    for (std::size_t f = 0; f < scenario.faults.size(); ++f) {
        const FaultSpec& fault = scenario.faults[f];
        if (f > 0) out += ',';
        out += std::string("{\"kind\":\"") + fault_kind_name(fault.kind) +
               "\",\"at_us\":" + std::to_string(fault.at_us) +
               ",\"a\":" + std::to_string(fault.a) + ",\"b\":" + std::to_string(fault.b) +
               ",\"loss\":" + std::to_string(fault.loss) +
               ",\"duration_us\":" + std::to_string(fault.duration_us) +
               ",\"extra_us\":" + std::to_string(fault.extra_us) + "}";
    }

    out += "],\"settle_us\":" + std::to_string(scenario.settle_us) +
           ",\"run_us\":" + std::to_string(scenario.run_us) +
           ",\"drain_us\":" + std::to_string(scenario.drain_us) + "}";
    return out;
}

Scenario ScenarioGenerator::generate(std::uint64_t seed) const {
    NEWTOP_EXPECTS(limits_.max_sites >= 1 && limits_.max_services >= 1 &&
                       limits_.max_servers >= 1 && limits_.max_clients >= 1 &&
                       limits_.max_calls >= 2,
                   "degenerate scenario limits");
    Rng rng(seed);
    Scenario s;
    s.seed = seed;

    // -- topology -----------------------------------------------------------
    s.sites = static_cast<int>(rng.next_in(1, static_cast<std::uint64_t>(limits_.max_sites)));
    s.lan.latency_us = rng.next_in(150, 400);
    s.lan.jitter_us = rng.next_in(0, 60);
    s.lan.loss = rng.next_bool(0.2) ? static_cast<double>(rng.next_in(1, 10)) / 1000.0 : 0.0;
    s.lan.bytes_per_us = 12.5;
    s.wan.latency_us = rng.next_in(2000, 8000);
    s.wan.jitter_us = rng.next_in(100, 600);
    s.wan.loss = rng.next_bool(0.3) ? static_cast<double>(rng.next_in(1, 20)) / 1000.0 : 0.0;
    s.wan.bytes_per_us = 1.0;

    auto random_site = [&] { return static_cast<int>(rng.next_in(0, static_cast<std::uint64_t>(s.sites - 1))); };

    // -- group layout -------------------------------------------------------
    const int services =
        static_cast<int>(rng.next_in(1, static_cast<std::uint64_t>(limits_.max_services)));
    for (int j = 0; j < services; ++j) {
        ServiceSpec svc;
        const double roll = rng.next_double();
        svc.order = roll < 0.45   ? OrderMode::kTotalAsymmetric
                    : roll < 0.90 ? OrderMode::kTotalSymmetric
                                  : OrderMode::kCausal;
        svc.liveness = rng.next_bool(0.5) ? LivenessMode::kLively : LivenessMode::kEventDriven;
        const int replicas =
            static_cast<int>(rng.next_in(1, static_cast<std::uint64_t>(limits_.max_servers)));
        for (int k = 0; k < replicas; ++k) svc.server_sites.push_back(random_site());
        s.services.push_back(std::move(svc));
    }

    // -- workload -----------------------------------------------------------
    s.run_us = rng.next_in(5, 10) * 1'000'000;
    const int clients =
        static_cast<int>(rng.next_in(1, static_cast<std::uint64_t>(limits_.max_clients)));
    std::uint64_t max_timeout = 0;
    for (int i = 0; i < clients; ++i) {
        ClientSpec c;
        c.site = random_site();
        c.service = static_cast<int>(rng.next_in(0, s.services.size() - 1));
        c.bind = rng.next_bool(0.5) ? BindMode::kClosed : BindMode::kOpen;
        if (c.bind == BindMode::kOpen) {
            c.restricted = rng.next_bool(0.5);
            c.async_forwarding = c.restricted && rng.next_bool(0.5);
        }
        c.cs_order =
            rng.next_bool(0.5) ? OrderMode::kTotalAsymmetric : OrderMode::kTotalSymmetric;
        const double roll = rng.next_double();
        c.mode = roll < 0.15   ? InvocationMode::kOneWay
                 : roll < 0.50 ? InvocationMode::kWaitFirst
                 : roll < 0.75 ? InvocationMode::kWaitMajority
                               : InvocationMode::kWaitAll;
        c.calls = static_cast<int>(rng.next_in(2, static_cast<std::uint64_t>(limits_.max_calls)));
        c.think_us = rng.next_in(0, 80) * 1000;
        c.payload_bytes = static_cast<std::uint32_t>(rng.next_in(0, 256));
        c.call_timeout_us = rng.next_in(2000, 6000) * 1000;
        max_timeout = std::max(max_timeout, c.call_timeout_us);
        s.clients.push_back(std::move(c));
    }

    // -- overlapping peer group ---------------------------------------------
    const int actors = s.total_servers() + static_cast<int>(s.clients.size());
    if (limits_.allow_peer_group && actors >= 2 && rng.next_bool(0.5)) {
        PeerSpec peer;
        const double roll = rng.next_double();
        peer.order = roll < 0.40   ? OrderMode::kTotalSymmetric
                     : roll < 0.80 ? OrderMode::kTotalAsymmetric
                                   : OrderMode::kCausal;
        const int size = static_cast<int>(
            rng.next_in(2, static_cast<std::uint64_t>(std::min(actors, 4))));
        std::vector<int> pool;
        for (int k = 0; k < actors; ++k) pool.push_back(k);
        for (int k = 0; k < size; ++k) {
            const auto pick = rng.next_in(0, pool.size() - 1);
            peer.members.push_back(pool[pick]);
            pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
        }
        std::sort(peer.members.begin(), peer.members.end());
        peer.publishes_per_member = static_cast<int>(rng.next_in(1, 4));
        s.peers.push_back(std::move(peer));
    }

    // -- fault plan ---------------------------------------------------------
    if (limits_.allow_faults && limits_.max_faults > 0) {
        const int faults =
            static_cast<int>(rng.next_in(0, static_cast<std::uint64_t>(limits_.max_faults)));
        std::vector<int> crashed_per_service(s.services.size(), 0);
        bool crashed_client = false;
        for (int f = 0; f < faults; ++f) {
            FaultSpec fault;
            fault.at_us = rng.next_in(0, s.run_us);
            const double roll = rng.next_double();
            if (roll < 0.35) {
                // Crash a server replica, keeping at least one alive per
                // service so most scenarios still complete calls.
                const int j = static_cast<int>(rng.next_in(0, s.services.size() - 1));
                const int replicas =
                    static_cast<int>(s.services[static_cast<std::size_t>(j)].server_sites.size());
                if (crashed_per_service[static_cast<std::size_t>(j)] >= replicas - 1) continue;
                fault.kind = FaultSpec::Kind::kCrashServer;
                fault.a = j;
                fault.b = static_cast<int>(
                    rng.next_in(0, static_cast<std::uint64_t>(replicas - 1)));
                ++crashed_per_service[static_cast<std::size_t>(j)];
                // Sometimes the crashed replica comes back: a crash/restart
                // pair exercising the recovery pipeline.  The crash still
                // counts against the per-service budget — the restart only
                // adds recovery, it never licenses an extra crash.
                const bool paired = rng.next_bool(0.5);
                const std::uint64_t restart_delay = rng.next_in(500, 4000) * 1000;
                if (paired && limits_.allow_restarts) {
                    FaultSpec restart;
                    restart.kind = FaultSpec::Kind::kRestart;
                    restart.a = fault.a;
                    restart.b = fault.b;
                    restart.at_us =
                        std::min(fault.at_us + restart_delay, s.run_us + 2'000'000);
                    s.faults.push_back(restart);
                }
            } else if (roll < 0.60 && s.sites >= 2) {
                // Partition one site away, healing before the drain phase.
                fault.kind = FaultSpec::Kind::kPartitionSite;
                fault.a = random_site();
                fault.b = 1;
                FaultSpec heal;
                heal.kind = FaultSpec::Kind::kHeal;
                heal.at_us = std::min(fault.at_us + rng.next_in(1000, 4000) * 1000,
                                      s.run_us + 1'000'000);
                s.faults.push_back(heal);
            } else if (roll < 0.85) {
                fault.kind = FaultSpec::Kind::kLossBurst;
                fault.loss = static_cast<double>(rng.next_in(50, 250)) / 1000.0;
                fault.duration_us = rng.next_in(200, 1500) * 1000;
            } else {
                if (crashed_client || s.clients.size() < 2) continue;
                fault.kind = FaultSpec::Kind::kCrashClient;
                fault.a = static_cast<int>(rng.next_in(0, s.clients.size() - 1));
                crashed_client = true;
            }
            s.faults.push_back(fault);
        }
        std::stable_sort(s.faults.begin(), s.faults.end(),
                         [](const FaultSpec& x, const FaultSpec& y) { return x.at_us < y.at_us; });
    }

    // -- runtime reconfigurations -------------------------------------------
    // Drawn strictly after the fault plan and gated by the flag, so every
    // pre-existing seed generates a byte-identical scenario with the flag
    // off.  Total-order services only: the oracle's causal-group exemptions
    // come from the static layout, so the fuzzer never switches a group
    // into or out of causal mode.
    if (limits_.allow_reconfigs && limits_.max_reconfigs > 0) {
        std::vector<int> candidates;
        for (std::size_t j = 0; j < s.services.size(); ++j) {
            if (s.services[j].order != OrderMode::kCausal) {
                candidates.push_back(static_cast<int>(j));
            }
        }
        if (!candidates.empty()) {
            const int reconfigs = static_cast<int>(
                rng.next_in(0, static_cast<std::uint64_t>(limits_.max_reconfigs)));
            for (int r = 0; r < reconfigs; ++r) {
                FaultSpec fault;
                fault.kind = FaultSpec::Kind::kReconfigure;
                fault.at_us = rng.next_in(0, s.run_us);
                fault.a = candidates[rng.next_in(0, candidates.size() - 1)];
                fault.b = rng.next_bool(0.5) ? 0 : 1;
                s.faults.push_back(fault);
            }
            std::stable_sort(s.faults.begin(), s.faults.end(), [](const FaultSpec& x,
                                                                  const FaultSpec& y) {
                return x.at_us < y.at_us;
            });
        }
    }

    // -- gray failures -------------------------------------------------------
    // Degraded-but-alive faults, drawn after everything else (and gated by
    // the flag) so legacy seeds stay byte-identical with the flag off.
    if (limits_.allow_gray && limits_.max_gray > 0) {
        const int grays =
            static_cast<int>(rng.next_in(0, static_cast<std::uint64_t>(limits_.max_gray)));
        bool any_gray = false;
        for (int f = 0; f < grays; ++f) {
            FaultSpec fault;
            fault.at_us = rng.next_in(0, s.run_us);
            const double roll = rng.next_double();
            if (roll < 0.40) {
                // Slow-but-alive replica: 1.5x .. 8x CPU slowdown.  The φ
                // detector should keep it in the view; the fixed detector
                // would have ejected it at the high end.
                const int j = static_cast<int>(rng.next_in(0, s.services.size() - 1));
                const int replicas =
                    static_cast<int>(s.services[static_cast<std::size_t>(j)].server_sites.size());
                fault.kind = FaultSpec::Kind::kSlowNode;
                fault.a = j;
                fault.b = static_cast<int>(
                    rng.next_in(0, static_cast<std::uint64_t>(replicas - 1)));
                fault.loss = static_cast<double>(rng.next_in(15, 80)) / 10.0;
                fault.duration_us = rng.next_in(1000, 5000) * 1000;
            } else if (roll < 0.75) {
                // Sick link: added latency + jitter + loss between two sites
                // (possibly the same site's LAN).
                fault.kind = FaultSpec::Kind::kLinkDegrade;
                fault.a = random_site();
                fault.b = random_site();
                fault.extra_us = rng.next_in(500, 20'000);
                fault.loss = static_cast<double>(rng.next_in(0, 150)) / 1000.0;
                fault.duration_us = rng.next_in(500, 4000) * 1000;
            } else {
                if (s.sites < 2) continue;
                // Flapping connectivity: the site bounces in and out a few
                // times, always ending connected.
                fault.kind = FaultSpec::Kind::kFlap;
                fault.a = random_site();
                fault.b = static_cast<int>(rng.next_in(2, 5));
                fault.extra_us = rng.next_in(300, 1500) * 1000;
            }
            s.faults.push_back(fault);
            any_gray = true;
        }
        if (any_gray) {
            std::stable_sort(s.faults.begin(), s.faults.end(), [](const FaultSpec& x,
                                                                  const FaultSpec& y) {
                return x.at_us < y.at_us;
            });
        }
    }

    s.settle_us = 2'000'000;
    s.drain_us = max_timeout + 20'000'000;
    return s;
}

}  // namespace newtop::fuzz
