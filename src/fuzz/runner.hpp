// Scenario execution: one fuzz scenario -> one fresh simulated world ->
// one checked trace.
//
// run_scenario() builds the scenario's topology, starts every server
// replica, binds every client, runs the closed-loop workloads while the
// fault plan fires, then drains until all calls have terminated.  The
// whole run is recorded through a RingTraceSink and swept by the
// ProtocolOracle plus the campaign's own liveness check: every call a
// surviving client issued must reach a terminal event (completed, failed
// or timed out) — a call that silently hangs is a protocol bug even when
// ordering and virtual synchrony hold.
//
// Every run owns a fresh Scheduler, Network (and with it a fresh
// MetricsRegistry) and trace sink, so consecutive runs cannot bleed state
// into each other's verdicts — the property the cross-run regression test
// in tests/fuzz_test.cpp pins down.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "fuzz/scenario.hpp"
#include "obs/oracle.hpp"
#include "obs/trace.hpp"

namespace newtop::fuzz {

/// Test hook: corrupt the recorded trace before the checkers run (used to
/// prove the campaign catches — and shrinks — injected protocol bugs
/// without patching the protocol itself).
using TraceMutator = std::function<void(std::vector<obs::TraceEvent>&)>;

struct RunOptions {
    /// Ring capacity; a wrapped ring would make the oracle's view partial,
    /// so an overflow is reported as a failure instead of checked anyway.
    std::size_t trace_capacity{std::size_t{1} << 19};
    /// Keep the full (post-mutation) event stream in the result — needed by
    /// the replay-determinism test; off by default to keep campaigns lean.
    bool keep_trace{false};
    TraceMutator mutator;
};

struct RunResult {
    std::uint64_t seed{0};
    std::vector<obs::Violation> violations;
    std::vector<std::string> liveness_failures;
    std::uint64_t trace_events{0};
    std::uint64_t trace_dropped{0};
    std::vector<obs::TraceEvent> trace;

    [[nodiscard]] bool ok() const {
        return violations.empty() && liveness_failures.empty() && trace_dropped == 0;
    }
    /// One line per problem (oracle violations, liveness hangs, overflow).
    [[nodiscard]] std::string report() const;
};

/// The campaign's liveness invariant over a recorded stream: every
/// (trace, client) that queued or sent a request must later complete,
/// fail or time out.  `exempt` lists endpoint ids whose process the fault
/// plan crashed — their calls are allowed to vanish.
[[nodiscard]] std::vector<std::string> check_call_liveness(
    const std::vector<obs::TraceEvent>& events, const std::set<std::uint64_t>& exempt);

/// Execute `scenario` in a fresh world and check its trace.  Deterministic:
/// same scenario (and mutator), byte-identical trace and verdict.
[[nodiscard]] RunResult run_scenario(const Scenario& scenario, const RunOptions& options = {});

}  // namespace newtop::fuzz
