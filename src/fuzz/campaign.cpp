#include "fuzz/campaign.hpp"

#include <algorithm>

namespace newtop::fuzz {

namespace {

/// Remove peer-group member references to flattened actor `index` and
/// shift the ones above it down (used when a server replica or client is
/// removed from the scenario).
void remove_actor_from_peers(Scenario& s, int index) {
    for (PeerSpec& peer : s.peers) {
        std::erase(peer.members, index);
        for (int& member : peer.members) {
            if (member > index) --member;
        }
    }
    std::erase_if(s.peers, [](const PeerSpec& peer) { return peer.members.size() < 2; });
}

/// Faults addressed by (service, replica) — crash/restart pairs must be
/// erased and renumbered together when the shrinker drops replicas.
bool targets_replica(const FaultSpec& fault) {
    return fault.kind == FaultSpec::Kind::kCrashServer ||
           fault.kind == FaultSpec::Kind::kRestart;
}

/// Faults whose `a` operand is a service index.  kReconfigure has no
/// replica operand, so it only participates in service-level erasure and
/// renumbering, never in without_replica's `b` adjustments.
bool targets_service(const FaultSpec& fault) {
    return targets_replica(fault) || fault.kind == FaultSpec::Kind::kReconfigure;
}

Scenario without_fault(Scenario s, std::size_t f) {
    s.faults.erase(s.faults.begin() + static_cast<std::ptrdiff_t>(f));
    return s;
}

Scenario without_client(Scenario s, std::size_t i) {
    remove_actor_from_peers(s, s.total_servers() + static_cast<int>(i));
    s.clients.erase(s.clients.begin() + static_cast<std::ptrdiff_t>(i));
    std::erase_if(s.faults, [&](const FaultSpec& fault) {
        return fault.kind == FaultSpec::Kind::kCrashClient &&
               fault.a == static_cast<int>(i);
    });
    for (FaultSpec& fault : s.faults) {
        if (fault.kind == FaultSpec::Kind::kCrashClient && fault.a > static_cast<int>(i)) {
            --fault.a;
        }
    }
    return s;
}

Scenario without_peer(Scenario s, std::size_t p) {
    s.peers.erase(s.peers.begin() + static_cast<std::ptrdiff_t>(p));
    return s;
}

Scenario without_replica(Scenario s, std::size_t j, std::size_t k) {
    remove_actor_from_peers(
        s, s.server_actor(static_cast<int>(j), static_cast<int>(k)));
    ServiceSpec& svc = s.services[j];
    svc.server_sites.erase(svc.server_sites.begin() + static_cast<std::ptrdiff_t>(k));
    std::erase_if(s.faults, [&](const FaultSpec& fault) {
        return targets_replica(fault) && fault.a == static_cast<int>(j) &&
               fault.b == static_cast<int>(k);
    });
    for (FaultSpec& fault : s.faults) {
        if (targets_replica(fault) && fault.a == static_cast<int>(j) &&
            fault.b > static_cast<int>(k)) {
            --fault.b;
        }
    }
    return s;
}

Scenario without_service(Scenario s, std::size_t j) {
    // Only valid when no client references service j.
    for (int k = static_cast<int>(s.services[j].server_sites.size()) - 1; k >= 0; --k) {
        remove_actor_from_peers(s, s.server_actor(static_cast<int>(j), k));
    }
    s.services.erase(s.services.begin() + static_cast<std::ptrdiff_t>(j));
    for (ClientSpec& client : s.clients) {
        if (client.service > static_cast<int>(j)) --client.service;
    }
    std::erase_if(s.faults, [&](const FaultSpec& fault) {
        return targets_service(fault) && fault.a == static_cast<int>(j);
    });
    for (FaultSpec& fault : s.faults) {
        if (targets_service(fault) && fault.a > static_cast<int>(j)) {
            --fault.a;
        }
    }
    return s;
}

}  // namespace

bool CampaignRunner::fails(const Scenario& scenario) const {
    return !run_scenario(scenario, options_.run).ok();
}

RunResult CampaignRunner::run_seed(std::uint64_t seed) const {
    const ScenarioGenerator generator(options_.limits);
    return run_scenario(generator.generate(seed), options_.run);
}

Scenario CampaignRunner::shrink(const Scenario& failing) const {
    Scenario current = failing;
    bool progress = true;
    while (progress) {
        progress = false;

        for (std::size_t f = 0; f < current.faults.size();) {
            Scenario candidate = without_fault(current, f);
            if (fails(candidate)) {
                current = std::move(candidate);
                progress = true;
            } else {
                ++f;
            }
        }

        for (std::size_t i = 0; i < current.clients.size();) {
            if (current.clients.size() == 1) break;  // keep a workload
            Scenario candidate = without_client(current, i);
            if (fails(candidate)) {
                current = std::move(candidate);
                progress = true;
            } else {
                ++i;
            }
        }

        for (std::size_t p = 0; p < current.peers.size();) {
            Scenario candidate = without_peer(current, p);
            if (fails(candidate)) {
                current = std::move(candidate);
                progress = true;
            } else {
                ++p;
            }
        }

        for (std::size_t j = 0; j < current.services.size(); ++j) {
            for (std::size_t k = 0; k < current.services[j].server_sites.size();) {
                if (current.services[j].server_sites.size() == 1) break;
                Scenario candidate = without_replica(current, j, k);
                if (fails(candidate)) {
                    current = std::move(candidate);
                    progress = true;
                } else {
                    ++k;
                }
            }
        }

        for (std::size_t j = 0; j < current.services.size();) {
            const bool referenced = std::any_of(
                current.clients.begin(), current.clients.end(),
                [&](const ClientSpec& c) { return c.service == static_cast<int>(j); });
            if (referenced || current.services.size() == 1) {
                ++j;
                continue;
            }
            Scenario candidate = without_service(current, j);
            if (fails(candidate)) {
                current = std::move(candidate);
                progress = true;
            } else {
                ++j;
            }
        }

        for (ClientSpec& client : current.clients) {
            while (client.calls > 1) {
                Scenario candidate = current;
                // Edit through the candidate copy, not `client` itself.
                const std::size_t index =
                    static_cast<std::size_t>(&client - current.clients.data());
                candidate.clients[index].calls = std::max(1, client.calls / 2);
                if (!fails(candidate)) break;
                client.calls = candidate.clients[index].calls;
                progress = true;
            }
        }
    }
    return current;
}

CampaignResult CampaignRunner::run() const {
    CampaignResult result;
    const ScenarioGenerator generator(options_.limits);
    for (int r = 0; r < options_.runs; ++r) {
        const std::uint64_t seed = options_.base_seed + static_cast<std::uint64_t>(r);
        const Scenario scenario = generator.generate(seed);
        RunResult run = run_scenario(scenario, options_.run);
        ++result.runs;
        if (options_.on_run) options_.on_run(run);
        if (run.ok()) continue;
        ++result.failures;
        result.first_failure = std::move(run);
        result.failing_scenario = scenario;
        if (options_.shrink) result.shrunk = shrink(scenario);
        break;
    }
    return result;
}

std::string CampaignResult::report() const {
    if (ok()) {
        return "campaign ok: " + std::to_string(runs) + " runs, 0 failures\n";
    }
    std::string out = "campaign FAILED: seed " + std::to_string(first_failure->seed) +
                      " (run " + std::to_string(runs) + ")\n";
    out += "replay: NEWTOP_FUZZ_SEED=" + std::to_string(first_failure->seed) +
           " newtop_fuzz\n";
    out += first_failure->report();
    out += "scenario: " + to_json(*failing_scenario) + "\n";
    if (shrunk.has_value()) {
        out += "shrunk (" + std::to_string(shrunk->clients.size()) + " clients, " +
               std::to_string(shrunk->faults.size()) + " faults): " + to_json(*shrunk) + "\n";
    }
    return out;
}

}  // namespace newtop::fuzz
