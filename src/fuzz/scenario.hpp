// Randomized chaos-campaign scenarios (the deterministic fuzzer's input
// model).
//
// A Scenario is a complete, self-contained experiment description: the
// topology (sites and link characteristics), the group layout (server
// groups, their replica placement and ordering protocols, an optional
// peer group overlapping them), one workload spec per client (bind mode,
// invocation mode, the §4.2 optimisations, call count, think time,
// payload size, call timeout) and a fault plan (timed crashes, partitions
// and heals, loss bursts).  ScenarioGenerator samples the whole thing from
// one Rng seed, so a seed *is* a scenario — any campaign failure replays
// from the seed alone (NEWTOP_FUZZ_SEED, tools/newtop_fuzz).
//
// Scenarios are plain data: the shrinker (src/fuzz/campaign.hpp) edits
// them structurally (drop faults, clients, replicas, services) and re-runs
// the result, and to_json() prints them for failure reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gcs/types.hpp"
#include "invocation/types.hpp"

namespace newtop::fuzz {

/// One directionless link's characteristics (mirrors net::LinkParams, but
/// in plain integers so scenarios serialize deterministically).
struct LinkSpec {
    std::uint64_t latency_us{250};
    std::uint64_t jitter_us{30};
    double loss{0.0};
    double bytes_per_us{12.5};
};

/// One replicated service: a server group with `server_sites.size()`
/// replicas, replica k living at site `server_sites[k]`.
struct ServiceSpec {
    OrderMode order{OrderMode::kTotalAsymmetric};
    LivenessMode liveness{LivenessMode::kEventDriven};
    std::vector<int> server_sites;
};

/// One client's bind + workload configuration.
struct ClientSpec {
    int site{0};
    int service{0};  // index into Scenario::services
    BindMode bind{BindMode::kOpen};
    bool restricted{false};
    bool async_forwarding{false};
    OrderMode cs_order{OrderMode::kTotalAsymmetric};
    InvocationMode mode{InvocationMode::kWaitFirst};
    int calls{4};
    std::uint64_t think_us{0};
    std::uint32_t payload_bytes{8};
    /// Always non-zero: the timeout is what turns "servers unreachable"
    /// into a clean failure instead of a liveness hang.
    std::uint64_t call_timeout_us{4'000'000};
};

/// An optional peer-participation group whose members are drawn from the
/// scenario's server/client endpoints — deliberate group overlap.
/// Member index k < total servers means "server replica k (flattened over
/// services)"; otherwise "client k - total_servers".
struct PeerSpec {
    OrderMode order{OrderMode::kTotalSymmetric};
    std::vector<int> members;
    int publishes_per_member{2};
};

/// One timed fault.  `a`/`b` are kind-specific:
///   kCrashServer   : a = service index, b = replica index
///   kCrashClient   : a = client index
///   kPartitionSite : a = site, b = partition cell
///   kHeal          : (no operands) merge all cells
///   kLossBurst     : extra drop probability `loss` for `duration_us`
///   kRestart       : a = service index, b = replica index — restart the
///                    (crashed) replica; its node comes back with a bumped
///                    incarnation and the recovery pipeline rejoins it
///   kReconfigure   : a = service index, b = target order (0 = asymmetric,
///                    1 = symmetric) — a live replica proposes a runtime
///                    reconfiguration of its server group mid-run
///   kSlowNode      : a = service index, b = replica index — gray failure:
///                    the replica's host runs all CPU work `loss`× slower
///                    (slowdown factor, >= 1) for `duration_us`, then
///                    returns to nominal speed.  The process never dies.
///   kLinkDegrade   : a, b = sites (a == b degrades the intra-site LAN) —
///                    `extra_us` added latency (plus a quarter of it as
///                    jitter) and `loss` extra drop probability on that
///                    link for `duration_us`
///   kFlap          : a = site, b = flap cycles — the site repeatedly
///                    partitions away for `extra_us` and rejoins for
///                    `extra_us`, ending connected
struct FaultSpec {
    enum class Kind : std::uint8_t {
        kCrashServer = 0,
        kCrashClient = 1,
        kPartitionSite = 2,
        kHeal = 3,
        kLossBurst = 4,
        kRestart = 5,
        kReconfigure = 6,
        kSlowNode = 7,
        kLinkDegrade = 8,
        kFlap = 9,
    };
    Kind kind{Kind::kCrashServer};
    std::uint64_t at_us{0};  // relative to workload start
    int a{0};
    int b{0};
    /// kLossBurst / kLinkDegrade: extra drop probability.
    /// kSlowNode: CPU slowdown factor (>= 1.0).
    double loss{0.0};
    std::uint64_t duration_us{0};
    /// kLinkDegrade: added one-way latency; kFlap: half-period.
    std::uint64_t extra_us{0};
};

[[nodiscard]] const char* fault_kind_name(FaultSpec::Kind kind);

struct Scenario {
    std::uint64_t seed{0};
    int sites{1};
    LinkSpec lan;
    LinkSpec wan;
    std::vector<ServiceSpec> services;
    std::vector<ClientSpec> clients;
    std::vector<PeerSpec> peers;
    std::vector<FaultSpec> faults;
    /// Sim-time phases: bindings settle, the workload (and fault plan)
    /// runs, then the world drains until every call has terminated.
    std::uint64_t settle_us{2'000'000};
    std::uint64_t run_us{8'000'000};
    std::uint64_t drain_us{15'000'000};

    [[nodiscard]] int total_servers() const;
    /// Flatten {service, replica} to the scenario-wide actor index used by
    /// PeerSpec::members.
    [[nodiscard]] int server_actor(int service, int replica) const;
};

/// Deterministic JSON rendering of a scenario, for failure reports.
[[nodiscard]] std::string to_json(const Scenario& scenario);

/// Bounds on the sampled configuration space.  The defaults match the CLI
/// campaign; tests use smaller limits for a faster inner loop.
struct ScenarioLimits {
    int max_sites{3};
    int max_services{2};
    int max_servers{4};  // per service
    int max_clients{4};
    int max_calls{10};   // per client
    int max_faults{3};
    bool allow_faults{true};
    bool allow_peer_group{true};
    /// Pair some server crashes with a later restart of the same replica
    /// (crash -> restart inside the survivable envelope); the runner then
    /// also checks the resync-liveness property for restarted replicas.
    bool allow_restarts{true};
    /// Sprinkle kReconfigure faults (mid-run total-order protocol switches
    /// on non-causal server groups).  Off by default so pre-existing seeds
    /// keep generating byte-identical scenarios; campaigns opt in.
    bool allow_reconfigs{false};
    int max_reconfigs{3};
    /// Sprinkle gray failures (kSlowNode / kLinkDegrade / kFlap): hosts
    /// that are slow but alive, links that are sick but up, connectivity
    /// that flaps.  Off by default for the same seed-stability reason as
    /// allow_reconfigs; the gray campaign opts in.
    bool allow_gray{false};
    int max_gray{3};
};

/// Samples one full Scenario from a seed.  Pure function of
/// (seed, limits): same inputs, byte-identical scenario.
class ScenarioGenerator {
public:
    explicit ScenarioGenerator(ScenarioLimits limits = {}) : limits_(limits) {}

    [[nodiscard]] Scenario generate(std::uint64_t seed) const;

    [[nodiscard]] const ScenarioLimits& limits() const { return limits_; }

private:
    ScenarioLimits limits_;
};

}  // namespace newtop::fuzz
