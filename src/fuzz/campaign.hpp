// Chaos campaigns: drive N seeded scenarios through run_scenario() and,
// on the first failing seed, replay and shrink the scenario to a minimal
// reproducer before reporting.
//
// Shrinking is greedy structural reduction on the Scenario itself: drop
// fault events, clients, peer groups, server replicas and unused services
// one at a time, then halve call counts — keeping each edit only while
// the failure still reproduces — and repeat to a fixpoint.  Because a
// run's verdict is a pure function of (scenario, mutator), every shrink
// probe is an exact replay, not a statistical one.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "fuzz/runner.hpp"
#include "fuzz/scenario.hpp"

namespace newtop::fuzz {

struct CampaignOptions {
    std::uint64_t base_seed{1};
    int runs{50};
    ScenarioLimits limits{};
    RunOptions run{};
    bool shrink{true};
    /// Progress hook, called after every (non-shrink) run.
    std::function<void(const RunResult&)> on_run;
};

struct CampaignResult {
    int runs{0};
    int failures{0};
    std::optional<RunResult> first_failure;
    std::optional<Scenario> failing_scenario;
    std::optional<Scenario> shrunk;

    [[nodiscard]] bool ok() const { return failures == 0; }
    /// Human-readable verdict; on failure leads with the seed and the
    /// one-command replay line.
    [[nodiscard]] std::string report() const;
};

class CampaignRunner {
public:
    explicit CampaignRunner(CampaignOptions options) : options_(std::move(options)) {}

    /// Run seeds [base_seed, base_seed + runs); stops at the first failing
    /// seed (shrinking it if enabled).
    [[nodiscard]] CampaignResult run() const;

    /// Generate + execute + check one seed.
    [[nodiscard]] RunResult run_seed(std::uint64_t seed) const;

    /// Greedy structural minimisation of a failing scenario.
    [[nodiscard]] Scenario shrink(const Scenario& failing) const;

    [[nodiscard]] const CampaignOptions& options() const { return options_; }

private:
    [[nodiscard]] bool fails(const Scenario& scenario) const;

    CampaignOptions options_;
};

}  // namespace newtop::fuzz
