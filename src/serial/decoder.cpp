#include "serial/decoder.hpp"

#include <cstring>

namespace newtop {

void Decoder::require(std::size_t n) const {
    if (size_ - pos_ < n) throw DecodeError("truncated input");
}

std::uint8_t Decoder::get_u8() {
    require(1);
    return data_[pos_++];
}

std::uint64_t Decoder::get_le(std::size_t n) {
    require(n);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
        v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += n;
    return v;
}

bool Decoder::get_bool() {
    const std::uint8_t v = get_u8();
    if (v > 1) throw DecodeError("invalid bool encoding");
    return v == 1;
}

double Decoder::get_double() {
    const std::uint64_t bits = get_u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

// newtop-lint: allow(hot-path-alloc): string fields appear only in cold control-plane messages
std::string Decoder::get_string() {
    const std::uint32_t n = get_u32();
    require(n);
    // newtop-lint: allow(hot-path-alloc): same — invocation payloads travel as blob views, not strings
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
}

Bytes Decoder::get_blob() {
    const std::uint32_t n = get_u32();
    require(n);
    Bytes b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
}

BytesView Decoder::get_blob_view() {
    const std::uint32_t n = get_u32();
    require(n);
    const BytesView v{data_ + pos_, n};
    pos_ += n;
    return v;
}

}  // namespace newtop
