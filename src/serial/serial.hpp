// Convenience umbrella for the serialization layer, plus adapters for
// library-wide vocabulary types (strong ids).
#pragma once

#include "serial/decoder.hpp"
#include "serial/encoder.hpp"
#include "util/strong_id.hpp"

namespace newtop {

template <typename Tag, typename Rep>
void encode(Encoder& e, StrongId<Tag, Rep> id) {
    encode(e, id.value());
}

template <typename Tag, typename Rep>
void decode(Decoder& d, StrongId<Tag, Rep>& id) {
    Rep value{};
    decode(d, value);
    id = StrongId<Tag, Rep>(value);
}

}  // namespace newtop
