#include "serial/encoder.hpp"

#include <bit>
#include <cstring>

namespace newtop {

void Encoder::put_double(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
}

void Encoder::put_bytes(const std::uint8_t* data, std::size_t n) {
    if (counting_) {
        count_ += n;
        return;
    }
    buf_.insert(buf_.end(), data, data + n);
}

void Encoder::put_string(std::string_view v) {
    put_u32(static_cast<std::uint32_t>(v.size()));
    put_bytes(reinterpret_cast<const std::uint8_t*>(v.data()), v.size());
}

void Encoder::put_blob(const Bytes& v) {
    put_u32(static_cast<std::uint32_t>(v.size()));
    put_bytes(v.data(), v.size());
}

void Encoder::put_blob(BytesView v) {
    put_u32(static_cast<std::uint32_t>(v.size()));
    put_bytes(v.data(), v.size());
}

}  // namespace newtop
