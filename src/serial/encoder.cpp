#include "serial/encoder.hpp"

#include <bit>
#include <cstring>

namespace newtop {

void Encoder::put_double(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
}

void Encoder::put_string(std::string_view v) {
    put_u32(static_cast<std::uint32_t>(v.size()));
    buf_.insert(buf_.end(), v.begin(), v.end());
}

void Encoder::put_blob(const Bytes& v) {
    put_u32(static_cast<std::uint32_t>(v.size()));
    buf_.insert(buf_.end(), v.begin(), v.end());
}

}  // namespace newtop
