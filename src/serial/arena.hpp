// A recycling pool of wire buffers.
//
// Encoding a message is the hottest allocation site in the data plane: every
// ORB request, reply, and GCS protocol message builds a fresh Bytes.  The
// arena breaks that pattern by keeping a small stack of retired buffers
// (typically the wire buffers of *received* messages, returned here after
// dispatch) whose capacity the next encode reuses.  Under a steady
// request/reply load the same few buffers circulate and the encode path
// allocates nothing.
//
// The pool is deliberately bounded, in count and in per-buffer capacity, so
// a single pathological message cannot pin a large allocation forever.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/bytes.hpp"

namespace newtop {

class EncodeArena {
public:
    /// A cleared buffer with at least `reserve_hint` capacity — recycled
    /// when possible, freshly reserved otherwise.
    [[nodiscard]] Bytes acquire(std::size_t reserve_hint) {
        Bytes b;
        if (!pool_.empty()) {
            b = std::move(pool_.back());
            pool_.pop_back();
            b.clear();
        }
        if (b.capacity() < reserve_hint) b.reserve(reserve_hint);
        return b;
    }

    /// Return a retired buffer's storage to the pool.  Oversized or surplus
    /// buffers are dropped (freed) instead of pooled.
    void recycle(Bytes b) {
        if (pool_.size() >= kMaxPooled || b.capacity() > kMaxPooledCapacity) return;
        // newtop-lint: allow(hot-path-alloc): pool is bounded at kMaxPooled; growth stops after warm-up
        pool_.push_back(std::move(b));
    }

    [[nodiscard]] std::size_t pooled() const { return pool_.size(); }

private:
    static constexpr std::size_t kMaxPooled = 16;
    static constexpr std::size_t kMaxPooledCapacity = std::size_t{1} << 20;  // 1 MiB

    std::vector<Bytes> pool_;
};

}  // namespace newtop
