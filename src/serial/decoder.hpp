// Wire decoding, the inverse of Encoder.
//
// Every read is bounds-checked; malformed or truncated input raises
// DecodeError rather than reading out of range (Core Guidelines P.7: catch
// run-time errors early).  Decoders never copy the input buffer.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/bytes.hpp"

namespace newtop {

/// Thrown when the input is truncated or structurally invalid.
class DecodeError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

class Decoder {
public:
    /// The decoder borrows `buf`; the caller keeps it alive while decoding.
    explicit Decoder(const Bytes& buf) : data_(buf.data()), size_(buf.size()) {}

    /// Decode out of a borrowed view (e.g. a slice of a received wire
    /// buffer); the view's owner keeps the storage alive while decoding.
    explicit Decoder(BytesView buf) : data_(buf.data()), size_(buf.size()) {}

    std::uint8_t get_u8();
    std::uint16_t get_u16() { return static_cast<std::uint16_t>(get_le(2)); }
    std::uint32_t get_u32() { return static_cast<std::uint32_t>(get_le(4)); }
    std::uint64_t get_u64() { return get_le(8); }
    std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
    std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
    bool get_bool();
    double get_double();
    // newtop-lint: allow(hot-path-alloc): control-plane only; data-plane payload reads use get_blob_view
    std::string get_string();
    Bytes get_blob();

    /// Zero-copy blob read: a view into the decoder's underlying buffer,
    /// valid only as long as that buffer.  Use for payloads consumed before
    /// the wire message is released.
    BytesView get_blob_view();

    /// True when the whole buffer has been consumed.
    [[nodiscard]] bool exhausted() const { return pos_ == size_; }

    /// Bytes remaining.
    [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

private:
    std::uint64_t get_le(std::size_t n);
    void require(std::size_t n) const;

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_{0};
};

// ---------------------------------------------------------------------------
// decode(): mirror of encode().  Types provide `decode(Decoder&, T&)`.
// ---------------------------------------------------------------------------

inline void decode(Decoder& d, std::uint8_t& v) { v = d.get_u8(); }
inline void decode(Decoder& d, std::uint16_t& v) { v = d.get_u16(); }
inline void decode(Decoder& d, std::uint32_t& v) { v = d.get_u32(); }
inline void decode(Decoder& d, std::uint64_t& v) { v = d.get_u64(); }
inline void decode(Decoder& d, std::int32_t& v) { v = d.get_i32(); }
inline void decode(Decoder& d, std::int64_t& v) { v = d.get_i64(); }
inline void decode(Decoder& d, bool& v) { v = d.get_bool(); }
inline void decode(Decoder& d, double& v) { v = d.get_double(); }
inline void decode(Decoder& d, std::string& v) { v = d.get_string(); }
inline void decode(Decoder& d, Bytes& v) { v = d.get_blob(); }

template <typename T>
void decode(Decoder& d, std::vector<T>& v) {
    const std::uint32_t n = d.get_u32();
    // Guard against hostile lengths: each element needs at least one byte.
    if (n > d.remaining()) throw DecodeError("sequence length exceeds input");
    v.clear();
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        T item;
        decode(d, item);
        v.push_back(std::move(item));
    }
}

template <typename T>
void decode(Decoder& d, std::optional<T>& v) {
    if (d.get_bool()) {
        T item;
        decode(d, item);
        v = std::move(item);
    } else {
        v.reset();
    }
}

template <typename A, typename B>
void decode(Decoder& d, std::pair<A, B>& v) {
    decode(d, v.first);
    decode(d, v.second);
}

template <typename K, typename V>
void decode(Decoder& d, std::map<K, V>& v) {
    const std::uint32_t n = d.get_u32();
    if (n > d.remaining()) throw DecodeError("map length exceeds input");
    v.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
        K key;
        V value;
        decode(d, key);
        decode(d, value);
        v.emplace(std::move(key), std::move(value));
    }
}

/// Decode a whole buffer into one value; throws if bytes are left over.
template <typename T>
T decode_from_bytes(BytesView buf) {
    Decoder d(buf);
    T value;
    decode(d, value);
    if (!d.exhausted()) throw DecodeError("trailing bytes after value");
    return value;
}

}  // namespace newtop
