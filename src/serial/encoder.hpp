// Wire encoding (CDR-inspired).
//
// Every protocol message in the system — ORB requests, group-communication
// control traffic, invocation-layer envelopes — is serialized to bytes with
// this encoder before it touches the network model, so message sizes (and
// hence transmission delays) are realistic.
//
// Format: little-endian fixed-width integers, length-prefixed strings and
// sequences, one byte per bool.  There is no alignment padding; the format
// is private to this library.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/bytes.hpp"

namespace newtop {

class Encoder {
public:
    Encoder() = default;

    void put_u8(std::uint8_t v) { buf_.push_back(v); }
    void put_u16(std::uint16_t v) { put_le(v); }
    void put_u32(std::uint32_t v) { put_le(v); }
    void put_u64(std::uint64_t v) { put_le(v); }
    void put_i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
    void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
    void put_bool(bool v) { put_u8(v ? 1 : 0); }
    void put_double(double v);
    void put_string(std::string_view v);
    void put_blob(const Bytes& v);

    /// Finish and take the encoded buffer.
    [[nodiscard]] Bytes take() && { return std::move(buf_); }

    /// Bytes written so far.
    [[nodiscard]] std::size_t size() const { return buf_.size(); }

private:
    template <typename T>
    void put_le(T v) {
        for (std::size_t i = 0; i < sizeof(T); ++i) {
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
        }
    }

    Bytes buf_;
};

// ---------------------------------------------------------------------------
// encode(): the extension point.  Types become wire-encodable by providing a
// free function `encode(Encoder&, const T&)` findable by ADL; the overloads
// below cover primitives and standard containers of encodable types.
// ---------------------------------------------------------------------------

inline void encode(Encoder& e, std::uint8_t v) { e.put_u8(v); }
inline void encode(Encoder& e, std::uint16_t v) { e.put_u16(v); }
inline void encode(Encoder& e, std::uint32_t v) { e.put_u32(v); }
inline void encode(Encoder& e, std::uint64_t v) { e.put_u64(v); }
inline void encode(Encoder& e, std::int32_t v) { e.put_i32(v); }
inline void encode(Encoder& e, std::int64_t v) { e.put_i64(v); }
inline void encode(Encoder& e, bool v) { e.put_bool(v); }
inline void encode(Encoder& e, double v) { e.put_double(v); }
inline void encode(Encoder& e, const std::string& v) { e.put_string(v); }
inline void encode(Encoder& e, const Bytes& v) { e.put_blob(v); }

template <typename T>
void encode(Encoder& e, const std::vector<T>& v) {
    e.put_u32(static_cast<std::uint32_t>(v.size()));
    for (const auto& item : v) encode(e, item);
}

template <typename T>
void encode(Encoder& e, const std::optional<T>& v) {
    e.put_bool(v.has_value());
    if (v) encode(e, *v);
}

template <typename A, typename B>
void encode(Encoder& e, const std::pair<A, B>& v) {
    encode(e, v.first);
    encode(e, v.second);
}

template <typename K, typename V>
void encode(Encoder& e, const std::map<K, V>& v) {
    e.put_u32(static_cast<std::uint32_t>(v.size()));
    for (const auto& [key, value] : v) {
        encode(e, key);
        encode(e, value);
    }
}

/// Encode a single value to a standalone buffer.
template <typename T>
Bytes encode_to_bytes(const T& value) {
    Encoder e;
    encode(e, value);
    return std::move(e).take();
}

}  // namespace newtop
