// Wire encoding (CDR-inspired).
//
// Every protocol message in the system — ORB requests, group-communication
// control traffic, invocation-layer envelopes — is serialized to bytes with
// this encoder before it touches the network model, so message sizes (and
// hence transmission delays) are realistic.
//
// Format: little-endian fixed-width integers, length-prefixed strings and
// sequences, one byte per bool.  There is no alignment padding; the format
// is private to this library.
//
// Allocation discipline: the hot encode paths run once per simulated wire
// message, so the encoder supports exact pre-sizing.  A *counting* encoder
// (Encoder::counter()) runs the same encode() functions but only tallies
// bytes; a real encoder then reserves that size up front and appends with
// bulk writes, so one encode costs at most one allocation — zero when it
// adopts a recycled buffer with enough capacity (see serial/arena.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/bytes.hpp"

namespace newtop {

class Encoder {
public:
    Encoder() = default;

    /// Adopt `buf`'s storage (cleared, capacity kept) so encoding reuses a
    /// recycled buffer instead of allocating a fresh one.
    explicit Encoder(Bytes buf) : buf_(std::move(buf)) { buf_.clear(); }

    /// A counting encoder: runs every put_* but only tallies the byte
    /// count.  Drive the same encode() calls through it to learn a
    /// message's exact wire size before encoding for real.
    [[nodiscard]] static Encoder counter() { return Encoder(CountingTag{}); }

    void put_u8(std::uint8_t v) {
        if (counting_) { ++count_; return; }
        // newtop-lint: allow(hot-path-alloc): counting pass + reserve() pre-size buf_, so steady-state pushes never reallocate
        buf_.push_back(v);
    }
    void put_u16(std::uint16_t v) { put_le(v); }
    void put_u32(std::uint32_t v) { put_le(v); }
    void put_u64(std::uint64_t v) { put_le(v); }
    void put_i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
    void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
    void put_bool(bool v) { put_u8(v ? 1 : 0); }
    void put_double(double v);
    void put_string(std::string_view v);
    void put_blob(const Bytes& v);
    void put_blob(BytesView v);

    /// Append `n` raw bytes in one bulk write.
    void put_bytes(const std::uint8_t* data, std::size_t n);

    /// Pre-size the output buffer (no-op while counting).
    void reserve(std::size_t n) {
        if (!counting_) buf_.reserve(n);
    }

    /// Finish and take the encoded buffer.
    [[nodiscard]] Bytes take() && { return std::move(buf_); }

    /// Bytes written (or, for a counting encoder, tallied) so far.
    [[nodiscard]] std::size_t size() const { return counting_ ? count_ : buf_.size(); }

    /// Output buffer capacity (allocation diagnostics in tests).
    [[nodiscard]] std::size_t capacity() const { return buf_.capacity(); }

    /// Address of the output storage (allocation diagnostics in tests).
    [[nodiscard]] const std::uint8_t* data() const { return buf_.data(); }

private:
    struct CountingTag {};
    explicit Encoder(CountingTag) : counting_(true) {}

    template <typename T>
    void put_le(T v) {
        if (counting_) {
            count_ += sizeof(T);
            return;
        }
        const std::size_t at = buf_.size();
        buf_.resize(at + sizeof(T));
        for (std::size_t i = 0; i < sizeof(T); ++i) {
            buf_[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
        }
    }

    Bytes buf_;
    std::size_t count_{0};
    bool counting_{false};
};

// ---------------------------------------------------------------------------
// encode(): the extension point.  Types become wire-encodable by providing a
// free function `encode(Encoder&, const T&)` findable by ADL; the overloads
// below cover primitives and standard containers of encodable types.
// ---------------------------------------------------------------------------

inline void encode(Encoder& e, std::uint8_t v) { e.put_u8(v); }
inline void encode(Encoder& e, std::uint16_t v) { e.put_u16(v); }
inline void encode(Encoder& e, std::uint32_t v) { e.put_u32(v); }
inline void encode(Encoder& e, std::uint64_t v) { e.put_u64(v); }
inline void encode(Encoder& e, std::int32_t v) { e.put_i32(v); }
inline void encode(Encoder& e, std::int64_t v) { e.put_i64(v); }
inline void encode(Encoder& e, bool v) { e.put_bool(v); }
inline void encode(Encoder& e, double v) { e.put_double(v); }
inline void encode(Encoder& e, const std::string& v) { e.put_string(v); }
inline void encode(Encoder& e, const Bytes& v) { e.put_blob(v); }

template <typename T>
void encode(Encoder& e, const std::vector<T>& v) {
    e.put_u32(static_cast<std::uint32_t>(v.size()));
    for (const auto& item : v) encode(e, item);
}

template <typename T>
void encode(Encoder& e, const std::optional<T>& v) {
    e.put_bool(v.has_value());
    if (v) encode(e, *v);
}

template <typename A, typename B>
void encode(Encoder& e, const std::pair<A, B>& v) {
    encode(e, v.first);
    encode(e, v.second);
}

template <typename K, typename V>
void encode(Encoder& e, const std::map<K, V>& v) {
    e.put_u32(static_cast<std::uint32_t>(v.size()));
    for (const auto& [key, value] : v) {
        encode(e, key);
        encode(e, value);
    }
}

/// Exact wire size of a value, via a counting pass.
template <typename T>
std::size_t encoded_size(const T& value) {
    Encoder c = Encoder::counter();
    encode(c, value);
    return c.size();
}

/// Encode a single value to a standalone buffer, sized exactly.
template <typename T>
Bytes encode_to_bytes(const T& value) {
    Encoder e;
    e.reserve(encoded_size(value));
    encode(e, value);
    return std::move(e).take();
}

}  // namespace newtop
