// Time-silence, failure suspicion and stability tracking (§3 of the paper).
//
// A group's "mechanisms" (null heartbeats + suspicion) are always on for
// lively groups and on only while messages are outstanding for event-driven
// groups.  Nulls serve three purposes at once: they advance the symmetric
// total order, they carry stability vectors (pruning retransmission
// buffers), and they are the "I am alive" signal the suspector watches.
#include "gcs/endpoint.hpp"

#include <algorithm>
#include <cmath>

#include "obs/names.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace newtop {

bool GroupCommEndpoint::mechanisms_active(const Group& g) const {
    if (!g.installed) return false;
    if (g.config.liveness == LivenessMode::kLively) return true;
    if (g.state == Group::State::kViewChange) return true;
    // A pending membership trigger must be able to make progress even in an
    // otherwise quiet group: if the lowest-ranked member is dead but was
    // never suspected (no traffic since the crash), the failure detector
    // has to run to unseat it — otherwise a joiner waits forever for a
    // coordinator that no longer exists.
    if (!g.suspects.empty() || !g.pending_joiners.empty() || !g.pending_leavers.empty()) {
        return true;
    }
    if (!g.unstable.empty() || !g.release_queue.empty()) return true;
    switch (g.config.order) {
        case OrderMode::kTotalSymmetric:
            if (g.symmetric.has_pending()) return true;
            break;
        case OrderMode::kTotalAsymmetric:
            if (g.sequencer.has_pending()) return true;
            break;
        case OrderMode::kCausal:
            if (g.causal.has_pending()) return true;
            break;
    }
    for (const auto& [member, stream] : g.inbound) {
        if (!stream.out_of_order.empty()) return true;
    }
    return false;
}

void GroupCommEndpoint::stop_liveness(Group& g) {
    Scheduler& sched = orb_->scheduler();
    sched.cancel(g.silence_timer);
    sched.cancel(g.progress_timer);
    sched.cancel(g.suspicion_timer);
    sched.cancel(g.stability_timer);
    g.silence_timer = g.progress_timer = g.suspicion_timer = g.stability_timer = 0;
}

void GroupCommEndpoint::kick_liveness(Group& g) {
    if (!mechanisms_active(g)) {
        stop_liveness(g);
        if (g.liveness_active) {
            g.liveness_active = false;
            // Parting report: we just learned everything is stable, but the
            // other members may still be waiting on *our* received counts to
            // prune their stores (and would otherwise suspect us once we go
            // quiet).  One last null carries them over the line.
            if (g.installed && g.state == Group::State::kNormal &&
                g.view.members.size() > 1) {
                send_null(g);
            }
        }
        return;
    }
    if (!g.liveness_active) {
        g.liveness_active = true;
        g.active_since = orb_->scheduler().now();
    }
    // Heartbeats are pointless when alone in the group.
    if (g.view.members.size() < 2) return;

    Scheduler& sched = orb_->scheduler();
    const GroupId id = g.id;
    const SimTime base = g.ever_sent ? g.last_send_time : g.view_installed_at;

    if (g.silence_timer == 0) {
        g.silence_timer = sched.schedule_at(std::max(sched.now(), base + g.config.time_silence),
                                            [this, id] { on_silence_timer(id); });
    }
    // Progress nulls are armed only when they can actually unblock the
    // order: something arrived since our last send AND our own timestamp
    // still lags the held-back head (once we have spoken past the head,
    // everyone already has what they need from us).  This caps protocol
    // chatter at roughly one null per member per ordering round.
    const auto head = g.symmetric.head_ts();
    if (g.progress_timer == 0 && g.config.order == OrderMode::kTotalSymmetric &&
        head.has_value() && g.received_since_send && g.last_sent_ts < *head) {
        g.progress_timer = sched.schedule_at(std::max(sched.now(), base + g.config.ack_delay),
                                             [this, id] { on_progress_timer(id); });
    }
    if (g.suspicion_timer == 0) {
        g.suspicion_timer = sched.schedule_after(g.config.suspicion_timeout / 2,
                                                 [this, id] { on_suspicion_scan(id); });
    }
    if (g.stability_timer == 0) {
        g.stability_timer = sched.schedule_after(g.config.stability_period,
                                                 [this, id] { on_stability_tick(id); });
    }
}

void GroupCommEndpoint::send_null(Group& g) {
    NEWTOP_TRACE("ep " << id_ << " null in group " << g.id << " at " << orb_->scheduler().now()
                       << " unstable=" << g.unstable.size());
    send_data(g, DataKind::kNull, {});
}

void GroupCommEndpoint::on_silence_timer(GroupId id) {
    if (process_crashed()) return;
    Group* g = find_group(id);
    if (g == nullptr) return;
    g->silence_timer = 0;
    if (!mechanisms_active(*g)) return;
    Scheduler& sched = orb_->scheduler();
    if (sched.now() >= g->last_send_time + g->config.time_silence || !g->ever_sent) {
        send_null(*g);
    }
    kick_liveness(*g);
}

void GroupCommEndpoint::on_progress_timer(GroupId id) {
    if (process_crashed()) return;
    Group* g = find_group(id);
    if (g == nullptr) return;
    g->progress_timer = 0;
    if (!mechanisms_active(*g) || g->config.order != OrderMode::kTotalSymmetric) return;
    if (!g->symmetric.has_pending()) return;
    Scheduler& sched = orb_->scheduler();
    // Our timestamp is what other members' held-back messages wait for; a
    // null advances it without application traffic.  Self-clocking: only
    // null when something arrived since our last send and our timestamp
    // still lags the ordering head — otherwise a repeat null could not
    // unblock anyone.  (The time-silence heartbeat remains the fallback.)
    const auto head = g->symmetric.head_ts();
    if (head.has_value() && g->received_since_send && g->last_sent_ts < *head &&
        sched.now() >= g->last_send_time + g->config.ack_delay) {
        send_null(*g);
    }
    kick_liveness(*g);
}

// -- φ-accrual failure detection (Hayashibara et al., SRDS 2004) ----------------
//
// Instead of one fixed silence deadline for every peer, the detector models
// each peer's inter-arrival history and asks how improbable the current
// silence is under it.  The suspicion level φ = -log10 P(silence this long
// | history); crossing the configured threshold raises the suspicion.  Two
// bounds keep it sane: the fixed suspicion_timeout stays the *floor* (tight
// histories detect a crash exactly as fast as the paper's fixed detector),
// and a ceiling caps how long a chaotic history can defer detection.

double GroupCommEndpoint::phi_of(const InboundStream& stream, SimDuration silence) {
    if (stream.intervals.size() < kPhiMinSamples) return 0.0;
    double sum = 0.0;
    for (const SimDuration gap : stream.intervals) sum += static_cast<double>(gap);
    const double mean = sum / static_cast<double>(stream.intervals.size());
    double var = 0.0;
    for (const SimDuration gap : stream.intervals) {
        const double d = static_cast<double>(gap) - mean;
        var += d * d;
    }
    var /= static_cast<double>(stream.intervals.size());
    // Keep the deviation from collapsing on metronomic histories: a floor
    // of mean/8 (and 1 ms absolute) keeps φ finite and sensibly sharp.
    const double sigma = std::max({std::sqrt(var), mean / 8.0, 1000.0});
    const double y = (static_cast<double>(silence) - mean) / sigma;
    if (y <= 0.0) return 0.0;
    // Logistic approximation of the normal tail (the one Akka's accrual
    // detector uses): monotone in y and accurate to the precision φ needs.
    const double e = std::exp(-y * (1.5976 + 0.070566 * y * y));
    return -std::log10(e / (1.0 + e));
}

bool GroupCommEndpoint::suspicion_due(const GroupConfig& config, const InboundStream* stream,
                                      SimDuration silence) {
    const SimDuration floor =
        config.phi_floor > 0 ? config.phi_floor : config.suspicion_timeout;
    if (silence <= floor) return false;
    // Accrual disabled, or not enough history to model the peer: the floor
    // is the whole deadline — the paper's fixed-timeout detector.
    if (config.phi_threshold_milli == 0 || stream == nullptr ||
        stream->intervals.size() < kPhiMinSamples) {
        return true;
    }
    const SimDuration ceiling =
        config.phi_ceiling > 0 ? config.phi_ceiling : 10 * config.suspicion_timeout;
    if (silence > ceiling) return true;
    return phi_of(*stream, silence) * 1000.0 >=
           static_cast<double>(config.phi_threshold_milli);
}

std::uint64_t GroupCommEndpoint::sample_phi_milli(EndpointId peer, SimTime at) const {
    // A peer can be watched in several groups; report the most alarmed view
    // of it (groups share the wire, so the histories rarely disagree much).
    double max_phi = 0.0;
    for (const auto& [id, g] : groups_) {
        if (!g.installed || !g.view.contains(peer)) continue;
        const auto it = g.inbound.find(peer);
        if (it == g.inbound.end()) continue;
        const SimTime last =
            std::max({it->second.last_heard, g.view_installed_at, g.active_since});
        if (at <= last) continue;
        max_phi = std::max(max_phi, phi_of(it->second, at - last));
    }
    return static_cast<std::uint64_t>(max_phi * 1000.0);
}

void GroupCommEndpoint::on_suspicion_scan(GroupId id) {
    if (process_crashed()) return;
    Group* g = find_group(id);
    if (g == nullptr) return;
    g->suspicion_timer = 0;
    if (!mechanisms_active(*g)) return;
    const SimTime now = orb_->scheduler().now();
    if (g->state == Group::State::kNormal) {
        for (const EndpointId member : g->view.members) {
            if (member == id_ || g->suspects.contains(member)) continue;
            const auto it = g->inbound.find(member);
            const InboundStream* stream = it == g->inbound.end() ? nullptr : &it->second;
            const SimTime last =
                std::max({stream == nullptr ? 0 : stream->last_heard,
                          g->view_installed_at, g->active_since});
            if (suspicion_due(g->config, stream, now - last)) {
                NEWTOP_DEBUG("suspicion scan: ep " << id_ << " group " << g->id << " member "
                                                   << member << " now=" << now << " last=" << last
                                                   << " active_since=" << g->active_since
                                                   << " unstable=" << g->unstable.size()
                                                   << " holdback=" << g->release_queue.size());
                metrics().observe(obs::metric::kGcsDetectionLatencyUs, now - last);
                note_suspect(*g, member, /*broadcast=*/true);
            }
        }
        maybe_start_view_change(*g);
        // The round may have completed synchronously and removed us from
        // the group (erasing it); never touch the old pointer again.
        g = find_group(id);
        if (g == nullptr) return;
    }
    kick_liveness(*g);
}

void GroupCommEndpoint::on_stability_tick(GroupId id) {
    if (process_crashed()) return;
    Group* g = find_group(id);
    if (g == nullptr) return;
    g->stability_timer = 0;
    if (!mechanisms_active(*g)) return;
    // Gossip our received counts even while application traffic keeps the
    // silence timer from ever firing.
    send_null(*g);
    kick_liveness(*g);
}

std::vector<std::pair<EndpointId, Seqno>> GroupCommEndpoint::received_counts(
    const Group& g) const {
    std::vector<std::pair<EndpointId, Seqno>> out;
    out.reserve(g.view.members.size());
    for (const EndpointId member : g.view.members) {
        if (member == id_) {
            out.emplace_back(member, g.next_send_seq);
        } else {
            const auto it = g.inbound.find(member);
            out.emplace_back(member, it == g.inbound.end() ? 0 : it->second.next_expected);
        }
    }
    return out;
}

void GroupCommEndpoint::apply_stability_report(
    Group& g, EndpointId reporter, const std::vector<std::pair<EndpointId, Seqno>>& counts) {
    auto& slot = g.stability_reports[reporter];
    for (const auto& [member, count] : counts) {
        auto& entry = slot[member];
        entry = std::max(entry, count);
    }
    recompute_stability(g);
}

void GroupCommEndpoint::recompute_stability(Group& g) {
    if (g.view.members.size() < 2) return;
    // A message (sender m, seq s) is stable once every member has received
    // m's stream contiguously past s; then nobody can ever NACK it and it
    // need not appear in a view-change flush.
    const auto own = received_counts(g);
    for (const EndpointId sender : g.view.members) {
        Seqno floor = ~Seqno{0};
        for (const EndpointId member : g.view.members) {
            Seqno count = 0;
            if (member == id_) {
                for (const auto& [m, c] : own) {
                    if (m == sender) count = c;
                }
            } else {
                const auto rit = g.stability_reports.find(member);
                if (rit != g.stability_reports.end()) {
                    const auto cit = rit->second.find(sender);
                    if (cit != rit->second.end()) count = cit->second;
                }
            }
            floor = std::min(floor, count);
        }
        if (floor == 0) continue;
        const auto begin = g.unstable.lower_bound(MsgRef{sender, 0});
        const auto end = g.unstable.lower_bound(MsgRef{sender, floor});
        g.unstable.erase(begin, end);
    }
}

}  // namespace newtop
