// Message-ordering engines.
//
// Each group runs one engine chosen at creation time (§3 of the paper):
//
//  * SymmetricOrder — causality-preserving total order by (Lamport ts,
//    sender id).  A message is deliverable once every other member has been
//    heard from with a later timestamp; idle members keep the order
//    advancing with time-silence nulls.
//  * SequencerOrder — the asymmetric protocol: the lowest-ranked view
//    member assigns global order numbers and multicasts them.
//  * CausalOrder — causal delivery only, via per-group dependency vectors.
//
// Engines are pure ordering state machines: they are fed FIFO-contiguous
// messages (gap recovery happens upstream) and emit batches of deliverable
// messages.  Keeping them free of I/O makes them directly unit-testable.
#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "gcs/messages.hpp"
#include "gcs/types.hpp"

namespace newtop {

/// Symmetric total order.  Deterministic rule shared by all members:
/// deliver pending messages in (ts, sender) order, releasing the head once
/// no member can still produce an earlier-ordered message.
class SymmetricOrder {
public:
    /// Install membership (resets all ordering state).
    void reset(std::vector<EndpointId> members);

    /// Feed one FIFO-contiguous message (application or null) from a
    /// current member.  Nulls advance the order but are not delivered.
    void on_data(const DataMsg& msg);

    /// Messages now deliverable, in delivery order.
    std::vector<DataMsg> take_deliverable();

    /// True if application messages are still waiting to be ordered —
    /// drives the event-driven time-silence mechanism: while someone's
    /// message is held back, everyone must keep nulling.
    [[nodiscard]] bool has_pending() const { return !holdback_.empty(); }

    /// Number of application messages currently held back (diagnostics).
    [[nodiscard]] std::size_t pending_count() const { return holdback_.size(); }

    /// Lowest timestamp this engine still considers undeliverable (for
    /// diagnostics/tests).
    [[nodiscard]] std::optional<Lamport> head_ts() const;

    /// Remove and return everything still held back (view-change flush).
    std::vector<DataMsg> drain_pending();

private:
    struct Key {
        Lamport ts;
        EndpointId sender;
        friend auto operator<=>(const Key&, const Key&) = default;
    };

    [[nodiscard]] bool deliverable(const Key& key) const;

    std::map<Key, DataMsg> holdback_;
    std::map<EndpointId, Lamport> latest_ts_;
};

/// Asymmetric total order.  The sequencer assigns consecutive order
/// numbers to application messages as it receives them; everyone delivers
/// in order-number sequence once both the data and its order record are
/// present.  The sequencer's own messages are ordered with zero extra hops
/// — the property the restricted-group optimisation (§4.2) exploits.
class SequencerOrder {
public:
    /// Install membership; `self` determines the sequencer role.
    void reset(std::vector<EndpointId> members, EndpointId self);

    [[nodiscard]] bool is_sequencer() const { return self_ == sequencer_; }
    [[nodiscard]] EndpointId sequencer() const { return sequencer_; }

    /// Feed one FIFO-contiguous message.  Nulls bypass ordering.
    void on_data(const DataMsg& msg);

    /// Feed an order record from the sequencer.
    void on_order(const OrderMsg& msg);

    /// If this member is the sequencer and new assignments were made,
    /// returns the order record to multicast, covering at most `max_refs`
    /// fresh assignments (0 = all of them).  Call repeatedly to drain.
    std::optional<OrderMsg> take_order_to_send(std::size_t max_refs = 0);

    /// Assignments made but not yet handed out for broadcast — the batch an
    /// ORDER flush would cover.
    [[nodiscard]] std::size_t fresh_count() const { return fresh_assignments_.size(); }

    /// Messages now deliverable, in global order.
    std::vector<DataMsg> take_deliverable();

    [[nodiscard]] bool has_pending() const {
        return !data_store_.empty() || !assignment_.empty();
    }

    /// Number of distinct application messages awaiting order or data
    /// (diagnostics).  The two pending sets can be disjoint — data waiting
    /// for its order record, and assigned order numbers whose data has not
    /// arrived — so this counts their union, not the larger of the two.
    [[nodiscard]] std::size_t pending_count() const {
        std::size_t n = data_store_.size();
        for (const auto& [order, ref] : assignment_) {
            if (!data_store_.contains(ref)) ++n;
        }
        return n;
    }

    /// All *broadcast* assignments learned this epoch (including delivered
    /// ones) — the view-change flush reports these so the cut preserves
    /// sequencer order.  Assignments whose order record was never taken for
    /// sending are deliberately absent: no other member can have delivered
    /// by them, and the cut's (ts, sender) fallback must win instead.
    [[nodiscard]] const std::map<std::uint64_t, MsgRef>& assignment_log() const { return log_; }

    /// Remove and return everything still held back (view-change flush).
    std::vector<DataMsg> drain_pending();

private:
    EndpointId self_;
    EndpointId sequencer_;
    std::uint64_t next_assign_{0};   // sequencer: next order number to hand out
    std::uint64_t next_deliver_{0};  // everyone: next order number to deliver
    std::vector<MsgRef> fresh_assignments_;
    std::map<std::uint64_t, MsgRef> assignment_;  // order number -> undelivered message
    std::map<std::uint64_t, MsgRef> log_;         // order number -> message (whole epoch)
    std::map<MsgRef, DataMsg> data_store_;        // undelivered data
    /// Every ref ever fed to on_data this epoch — including delivered ones,
    /// whose data/assignment entries are already gone.  Duplicates (e.g. a
    /// redundant retransmission) must not reach the assignment path: a
    /// second order slot for the same ref can never be satisfied once the
    /// first delivery consumed the data, wedging delivery forever.
    std::set<MsgRef> seen_refs_;
};

/// Causal order via dependency vectors: message m carries, per member, how
/// many of that member's messages the sender had delivered; m is delivered
/// once the local count matches.
class CausalOrder {
public:
    void reset(std::vector<EndpointId> members);

    void on_data(const DataMsg& msg);

    std::vector<DataMsg> take_deliverable();

    /// Snapshot of delivered counts, to stamp onto outgoing messages.
    [[nodiscard]] std::vector<std::pair<EndpointId, Seqno>> delivered_vector() const;

    [[nodiscard]] bool has_pending() const { return !pending_.empty(); }

    /// Number of messages whose causal dependencies are unmet (diagnostics).
    [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }

    /// Remove and return everything still held back (view-change flush).
    std::vector<DataMsg> drain_pending();

private:
    [[nodiscard]] bool satisfied(const DataMsg& msg) const;

    std::map<EndpointId, Seqno> delivered_count_;
    std::vector<DataMsg> pending_;
};

}  // namespace newtop
