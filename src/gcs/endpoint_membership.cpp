// Membership agreement: coordinator-driven view changes with a flush phase
// providing virtual synchrony — every member that installs view v+1 has
// delivered the same set of messages in view v, in the same total order.
//
// Round structure (per group):
//   trigger (suspicion / join / leave)
//     -> coordinator PROPOSEs (new_epoch, membership)
//     -> old members reply FLUSH (their unstable messages + order records)
//     -> coordinator INSTALLs (view + the union cut)
//     -> members deliver the cut deterministically, reset, resume.
// A stalled round times out; the next-ranked unsuspected member takes over
// with a higher epoch.  Concurrent rounds are resolved by (epoch,
// coordinator) precedence.  Partitions yield disjoint successor views on
// each side (the partitionable model of NewTop).
#include "gcs/endpoint.hpp"

#include <algorithm>

#include "obs/names.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace newtop {

namespace {

/// Deterministic delivery order for a view-change cut: sequencer-assigned
/// messages first (in assignment order), the rest by (ts, sender).  All
/// members compute the same cut, so all deliver in the same order.
std::vector<DataMsg> sort_cut(std::map<MsgRef, DataMsg> pending,
                              const std::vector<std::pair<std::uint64_t, MsgRef>>& orders) {
    std::vector<DataMsg> out;
    std::map<std::uint64_t, MsgRef> assigned(orders.begin(), orders.end());
    for (const auto& [order, ref] : assigned) {
        const auto it = pending.find(ref);
        if (it == pending.end()) continue;
        out.push_back(std::move(it->second));
        pending.erase(it);
    }
    std::vector<DataMsg> rest;
    rest.reserve(pending.size());
    for (auto& [ref, msg] : pending) rest.push_back(std::move(msg));
    std::sort(rest.begin(), rest.end(), [](const DataMsg& a, const DataMsg& b) {
        return std::tie(a.ts, a.sender) < std::tie(b.ts, b.sender);
    });
    out.insert(out.end(), std::make_move_iterator(rest.begin()),
               std::make_move_iterator(rest.end()));
    return out;
}

}  // namespace

GroupCommEndpoint::Group& GroupCommEndpoint::ensure_skeleton(GroupId id) {
    if (Group* g = find_group(id)) return *g;
    const Directory::GroupInfo* info = directory_->find_group(id);
    NEWTOP_ENSURES(info != nullptr, "group message for a group the directory never saw");
    Group& g = groups_[id];
    g.id = id;
    g.name = info->name;
    g.config = info->config;
    return g;
}

void GroupCommEndpoint::install_first_view(Group& g) {
    InstallMsg self_install;
    self_install.group = g.id;
    self_install.view = View{g.id, 1, {id_}};
    self_install.coordinator = id_;
    // The install always carries the authoritative config.  For a refound
    // this is the *current* config from the directory (kept fresh by
    // update_group_config), so a lineage restarted after a reconfiguration
    // resumes under the reconfigured policies, not the creation-time ones.
    self_install.config = g.config;
    self_install.config_epoch = g.config_epoch;
    handle_install(self_install);
}

// -- join / leave ----------------------------------------------------------------

void GroupCommEndpoint::on_join_retry(const std::string& name) {
    if (process_crashed()) return;
    const auto pending = pending_joins_.find(name);
    if (pending == pending_joins_.end()) return;
    const Directory::GroupInfo* info = directory_->find_group(name);
    if (info == nullptr) {
        pending_joins_.erase(pending);
        return;
    }
    if (is_member(info->id)) {
        pending_joins_.erase(pending);
        return;
    }
    // If every contact the directory remembers has been evicted as dead
    // (and never re-registered), nobody is left to admit us: the whole
    // group crashed.  Re-found it as a fresh single-member lineage — other
    // recovered replicas then join through the normal path.  The check is
    // deterministic and race-free because the directory is shared
    // bootstrap state: the first re-founder's install refreshes the
    // contact hint synchronously, so a second reborn member sees a live
    // contact and joins instead of founding a rival lineage.
    bool any_live_contact = false;
    for (const EndpointId contact : info->contact_hint) {
        if (contact != id_ && !directory_->known_defunct(contact)) {
            any_live_contact = true;
            break;
        }
    }
    if (!any_live_contact) {
        metrics().add(obs::metric::kGcsGroupRefounds);
        pending_joins_.erase(pending);
        Group& g = ensure_skeleton(info->id);
        install_first_view(g);
        return;
    }
    const JoinReq req{info->id, id_};
    for (const EndpointId contact : info->contact_hint) {
        if (contact != id_) send_wire(contact, req);
    }
    pending->second = orb_->scheduler().schedule_after(
        2 * info->config.view_change_timeout, [this, name] { on_join_retry(name); });
}

void GroupCommEndpoint::handle_join(const JoinReq& msg) {
    Group* g = find_group(msg.group);
    if (g == nullptr || !g->installed || !g->view.contains(id_)) return;
    if (g->view.contains(msg.joiner)) {
        // The joiner is already in — it must have missed the install; any
        // member may re-send it (no cut: the joiner delivers nothing old).
        send_wire(msg.joiner,
                  InstallMsg{g->id, g->view, id_, {}, {}, g->config, g->config_epoch, 0});
        return;
    }
    if (g->pending_joiners.insert(msg.joiner).second) {
        // First time we hear of this joiner: gossip so the coordinator
        // learns even if the joiner's directory hint was stale.
        multicast_wire(*g, msg);
    }
    maybe_start_view_change(*g);
    // The pending join makes the liveness mechanisms active even for a
    // quiet event-driven group (see mechanisms_active): if the would-be
    // coordinator is dead, the suspicion scan unseats it.
    g = find_group(msg.group);
    if (g != nullptr) kick_liveness(*g);
}

void GroupCommEndpoint::handle_leave(const LeaveReq& msg) {
    Group* g = find_group(msg.group);
    if (g == nullptr || !g->installed) return;
    if (!g->view.contains(msg.leaver)) return;
    g->pending_leavers.insert(msg.leaver);
    maybe_start_view_change(*g);
    g = find_group(msg.group);
    if (g != nullptr) kick_liveness(*g);
}

// -- suspicion -------------------------------------------------------------------

void GroupCommEndpoint::note_suspect(Group& g, EndpointId suspect, bool broadcast) {
    if (suspect == id_ || !g.view.contains(suspect)) return;
    if (!g.suspects.insert(suspect).second) return;
    const SimTime now = orb_->scheduler().now();
    g.suspected_at.emplace(suspect, now);
    metrics().trace(obs::TraceKind::kSuspected, now, id_.value(), g.id.value(),
                    suspect.value());
    NEWTOP_DEBUG("endpoint " << id_ << " suspects " << suspect << " in group " << g.id);
    if (broadcast) {
        multicast_wire(g, SuspectMsg{g.id, g.view.epoch, id_, {suspect}});
    }
}

void GroupCommEndpoint::handle_suspect(const SuspectMsg& msg) {
    Group* g = find_group(msg.group);
    if (g == nullptr || !g->installed || msg.epoch != g->view.epoch) return;
    for (const EndpointId suspect : msg.suspects) note_suspect(*g, suspect, false);
    maybe_start_view_change(*g);
}

// -- round orchestration ------------------------------------------------------------

void GroupCommEndpoint::maybe_start_view_change(Group& g) {
    if (!g.installed || !g.view.contains(id_)) return;
    const bool need = !g.suspects.empty() || !g.pending_joiners.empty() ||
                      !g.pending_leavers.empty() || g.pending_config.has_value();
    if (!need) return;

    // Deterministic coordinator: lowest-ranked member we do not suspect.
    EndpointId coordinator;
    bool found = false;
    for (const EndpointId member : g.view.members) {
        if (!g.suspects.contains(member)) {
            coordinator = member;
            found = true;
            break;
        }
    }
    NEWTOP_ENSURES(found, "self is never suspected, so a coordinator exists");
    if (coordinator != id_) return;  // the trigger was gossiped to everyone

    if (g.state == Group::State::kViewChange) {
        if (!g.leading) return;  // a higher round owns the group right now
        // Restart only if the running round can no longer finish (a member
        // we are waiting on got suspected) — otherwise let it complete and
        // handle the new trigger in a follow-up round.
        const bool stalled = std::any_of(
            g.vc_expected_flush.begin(), g.vc_expected_flush.end(),
            [&](EndpointId m) { return g.suspects.contains(m) && !g.vc_flushed.contains(m); });
        if (!stalled) return;
    }
    begin_round(g);
}

void GroupCommEndpoint::begin_round(Group& g) {
    g.state = Group::State::kViewChange;
    park_coalesced(g);
    g.leading = true;
    g.vc_epoch = std::max(g.view.epoch, g.vc_epoch) + 1;
    g.vc_coordinator = id_;
    metrics().trace(obs::TraceKind::kViewChangeBegun, orb_->scheduler().now(), id_.value(),
                    g.id.value(), g.vc_epoch);
    g.vc_flushed.clear();
    g.vc_cut.clear();
    g.vc_orders.clear();

    // Proposed membership: survivors minus leavers plus joiners.
    g.vc_members.clear();
    for (const EndpointId member : g.view.members) {
        if (!g.suspects.contains(member) && !g.pending_leavers.contains(member)) {
            g.vc_members.push_back(member);
        }
    }
    for (const EndpointId joiner : g.pending_joiners) {
        if (!g.suspects.contains(joiner)) g.vc_members.push_back(joiner);
    }
    std::sort(g.vc_members.begin(), g.vc_members.end());
    g.vc_members.erase(std::unique(g.vc_members.begin(), g.vc_members.end()),
                       g.vc_members.end());

    // Everyone that was in the old view and isn't suspected must flush —
    // including leavers (their messages are part of the cut).
    g.vc_expected_flush.clear();
    for (const EndpointId member : g.view.members) {
        if (!g.suspects.contains(member)) g.vc_expected_flush.insert(member);
    }

    ProposeMsg propose{g.id, g.view.epoch, g.vc_epoch, id_, g.vc_members};
    for (const EndpointId member : g.vc_expected_flush) {
        if (member != id_) send_wire(member, propose);
    }
    for (const EndpointId joiner : g.vc_members) {
        if (joiner != id_ && !g.vc_expected_flush.contains(joiner)) {
            send_wire(joiner, propose);
        }
    }

    // Our own flush, locally.
    std::vector<DataMsg> own;
    own.reserve(g.unstable.size());
    for (const auto& [ref, msg] : g.unstable) own.push_back(msg);
    std::vector<std::pair<std::uint64_t, MsgRef>> own_orders;
    if (g.config.order == OrderMode::kTotalAsymmetric) {
        const auto& log = g.sequencer.assignment_log();
        own_orders.assign(log.begin(), log.end());
    }
    add_flush(g, id_, std::move(own), own_orders);

    orb_->scheduler().cancel(g.vc_timer);
    const GroupId id = g.id;
    g.vc_timer = orb_->scheduler().schedule_after(g.config.view_change_timeout,
                                                  [this, id] { on_vc_timeout(id); });
    finish_if_flushes_complete(g);
}

void GroupCommEndpoint::enter_view_change(Group& g, ViewEpoch new_epoch,
                                          EndpointId coordinator) {
    g.state = Group::State::kViewChange;
    park_coalesced(g);
    g.leading = false;
    g.vc_epoch = new_epoch;
    g.vc_coordinator = coordinator;
    metrics().trace(obs::TraceKind::kViewChangeBegun, orb_->scheduler().now(), id_.value(),
                    g.id.value(), new_epoch);
    orb_->scheduler().cancel(g.vc_timer);
    const GroupId id = g.id;
    // Followers wait noticeably longer than the coordinator's own retry
    // period: a round stalled on a *third* member makes the coordinator
    // re-propose (resetting this timer) — suspecting the healthy
    // coordinator at the same instant would splinter the group.
    g.vc_timer = orb_->scheduler().schedule_after(5 * g.config.view_change_timeout / 2,
                                                  [this, id] { on_vc_timeout(id); });
}

void GroupCommEndpoint::handle_propose(const ProposeMsg& msg) {
    Group& g = ensure_skeleton(msg.group);
    if (g.installed && msg.new_epoch <= g.view.epoch) return;  // stale round
    if (g.state == Group::State::kViewChange) {
        const auto current = std::pair{g.vc_epoch, g.vc_coordinator};
        const auto offered = std::pair{msg.new_epoch, msg.coordinator};
        if (offered <= current) return;  // our round has precedence
    }
    enter_view_change(g, msg.new_epoch, msg.coordinator);

    if (g.installed && g.view.contains(id_)) {
        FlushMsg flush;
        flush.group = g.id;
        flush.new_epoch = msg.new_epoch;
        flush.coordinator = msg.coordinator;
        flush.sender = id_;
        flush.unstable.reserve(g.unstable.size());
        for (const auto& [ref, data] : g.unstable) flush.unstable.push_back(data);
        if (g.config.order == OrderMode::kTotalAsymmetric) {
            const auto& log = g.sequencer.assignment_log();
            flush.orders.assign(log.begin(), log.end());
        }
        metrics().add(obs::metric::kGcsFlushesSent);
        metrics().trace(obs::TraceKind::kFlushSent, orb_->scheduler().now(), id_.value(),
                        g.id.value(), msg.new_epoch);
        send_wire(msg.coordinator, flush);
    }
}

void GroupCommEndpoint::handle_flush(const FlushMsg& msg) {
    Group* g = find_group(msg.group);
    if (g == nullptr || g->state != Group::State::kViewChange) return;
    if (!g->leading || msg.new_epoch != g->vc_epoch || msg.coordinator != id_) return;
    add_flush(*g, msg.sender, msg.unstable, msg.orders);
    finish_if_flushes_complete(*g);
}

void GroupCommEndpoint::add_flush(Group& g, EndpointId sender, std::vector<DataMsg> unstable,
                                  const std::vector<std::pair<std::uint64_t, MsgRef>>& orders) {
    g.vc_flushed.insert(sender);
    for (auto& data : unstable) {
        const MsgRef ref{data.sender, data.seq};
        g.vc_cut.try_emplace(ref, std::move(data));
    }
    for (const auto& [order, ref] : orders) g.vc_orders.emplace(order, ref);
}

void GroupCommEndpoint::finish_if_flushes_complete(Group& g) {
    if (!g.leading) return;
    for (const EndpointId member : g.vc_expected_flush) {
        if (!g.vc_flushed.contains(member)) return;
    }

    InstallMsg install;
    install.group = g.id;
    install.view = View{g.id, g.vc_epoch, g.vc_members};
    install.coordinator = id_;
    // Configuration decision for the new view.  The coordinator's pending
    // proposal speaks for every survivor: proposals travel the totally-
    // ordered stream, so all members that flushed hold the same last-wins
    // pending value.  A proposal that is only *in the cut* (not yet
    // delivered here) is deliberately not honoured now — its delivery during
    // deliver_cut re-arms pending_config and a follow-up round applies it.
    if (g.pending_config.has_value()) {
        install.config = g.pending_config->next;
        install.config_epoch = g.config_epoch + 1;
        install.applied_nonce = g.pending_config->nonce;
    } else {
        install.config = g.config;
        install.config_epoch = g.config_epoch;
    }
    install.cut.reserve(g.vc_cut.size());
    for (const auto& [ref, data] : g.vc_cut) install.cut.push_back(data);
    install.orders.assign(g.vc_orders.begin(), g.vc_orders.end());

    std::set<EndpointId> recipients(g.vc_expected_flush.begin(), g.vc_expected_flush.end());
    recipients.insert(g.vc_members.begin(), g.vc_members.end());
    for (const EndpointId member : recipients) {
        if (member != id_) send_wire(member, install);
    }
    handle_install(install);
}

// -- install ------------------------------------------------------------------------

void GroupCommEndpoint::deliver_cut(Group& g, const InstallMsg& msg) {
    // Everything still held locally plus everything in the cut, minus what
    // we already delivered, in the agreed order.
    std::map<MsgRef, DataMsg> pending;
    auto absorb = [&](std::vector<DataMsg> batch) {
        for (auto& data : batch) {
            if (!orders_like_app(data.kind)) continue;
            if (data.epoch != g.view.epoch) continue;
            const MsgRef ref{data.sender, data.seq};
            if (g.delivered_refs.contains(ref)) continue;
            pending.try_emplace(ref, std::move(data));
        }
    };
    switch (g.config.order) {
        case OrderMode::kTotalSymmetric: absorb(g.symmetric.drain_pending()); break;
        case OrderMode::kTotalAsymmetric: absorb(g.sequencer.drain_pending()); break;
        case OrderMode::kCausal: absorb(g.causal.drain_pending()); break;
    }
    absorb({std::make_move_iterator(g.release_queue.begin()),
            std::make_move_iterator(g.release_queue.end())});
    g.release_queue.clear();
    absorb(msg.cut);

    // Cut delivery ignores cross-group barriers: blocking the flush on
    // another group's progress could deadlock two concurrent view changes.
    // Causality across groups is re-established from the new view onwards.
    std::uint64_t flushed = 0;
    for (DataMsg& data : sort_cut(std::move(pending), msg.orders)) {
        deliver_to_app(g, std::move(data));
        ++flushed;
    }
    // detail = messages the cut flushed; marks the virtual-synchrony
    // boundary of the closing view in the event stream.
    metrics().trace(obs::TraceKind::kCutDelivered, orb_->scheduler().now(), id_.value(),
                    g.id.value(), flushed);
}

void GroupCommEndpoint::install_view(Group& g, const InstallMsg& msg) {
    const GroupId group_id = g.id;
    const std::vector<EndpointId> old_members = g.installed ? g.view.members
                                                            : std::vector<EndpointId>{};
    const bool was_member = g.installed && g.view.contains(id_);

    stop_liveness(g);
    orb_->scheduler().cancel(g.vc_timer);
    g.vc_timer = 0;
    orb_->scheduler().cancel(g.order_flush_timer);
    g.order_flush_timer = 0;
    for (auto& [member, stream] : g.inbound) {
        orb_->scheduler().cancel(stream.nack_timer);
        stream.nack_timer = 0;
    }

    if (!msg.view.contains(id_)) {
        // We left, were ejected, or this is a stray install: drop the group.
        groups_.erase(group_id);
        if (was_member && removed_handler_) removed_handler_(group_id);
        return;
    }

    g.view = msg.view;
    g.installed = true;
    g.view_installed_at = orb_->scheduler().now();
    metrics().add(obs::metric::kGcsViewsInstalled);
    // detail packs {membership digest, epoch}: two sides of a partition
    // installing the same epoch number stay distinguishable for the
    // oracle's consecutive-shared-view comparison.
    std::uint64_t digest = obs::kFnvOffsetBasis;
    for (const EndpointId member : g.view.members) digest = obs::fnv1a64(digest, member.value());
    metrics().trace(obs::TraceKind::kViewInstalled, g.view_installed_at, id_.value(),
                    group_id.value(), obs::pack_view_detail(g.view.epoch, digest));

    // The configuration switch point.  deliver_cut has already drained
    // every pre-cut message under the old config (old OrderMode, old
    // policies); from here on the group runs the new one.  The engine
    // resets below start the new mode from clean state, which is exactly
    // what a kTotalSymmetric <-> kTotalAsymmetric switch needs: sequencer
    // assignments never straddle the cut.
    if (msg.config_epoch != g.config_epoch) {
        g.config = msg.config;
        g.config_epoch = msg.config_epoch;
        directory_->update_group_config(group_id, g.config);
        if (was_member) {
            metrics().add(obs::metric::kGcsReconfigs);
            if (g.pending_config.has_value() &&
                g.pending_config->nonce == msg.applied_nonce) {
                metrics().observe(obs::metric::kGcsReconfigStallUs,
                                  g.view_installed_at - g.pending_config->delivered_at);
            }
            metrics().trace(obs::TraceKind::kConfigSwitched, g.view_installed_at, id_.value(),
                            group_id.value(),
                            obs::pack_config_detail(g.config_epoch, g.view.epoch));
        }
    }
    // Pending proposal honoured by this install?  Then it is done; anything
    // else (a proposal delivered in the cut just now, or a newer last-wins
    // value) stays armed and triggers a follow-up round from handle_install.
    if (g.pending_config.has_value() && g.pending_config->nonce == msg.applied_nonce) {
        g.pending_config.reset();
    }

    g.state = Group::State::kNormal;
    g.leading = false;
    g.next_send_seq = 0;
    g.ever_sent = false;
    g.inflight_sends = 0;  // the old epoch's in-flight sends died with it
    g.inbound.clear();
    g.delivered_refs.clear();
    g.release_queue.clear();
    g.unstable.clear();
    g.stability_reports.clear();
    g.vc_flushed.clear();
    g.vc_cut.clear();
    g.vc_orders.clear();
    g.vc_members.clear();
    g.vc_expected_flush.clear();
    g.symmetric.reset(g.view.members);
    g.sequencer.reset(g.view.members, id_);
    g.causal.reset(g.view.members);

    // Members this view removed *because we suspected them* are reported
    // dead to the directory, so rebinding clients stop selecting them as
    // request managers (voluntary leavers are not suspects and keep their
    // registrations).  Advisory, like the contact hint: a falsely
    // suspected member re-registers on its own next view install.
    for (const EndpointId m : old_members) {
        if (!g.view.contains(m) && g.suspects.contains(m)) directory_->evict_endpoint(m);
    }

    // Detector scoreboard: a suspect this view removed that was never heard
    // from after the suspicion was a real failure (a later message would
    // have refuted the entry in handle_data).
    for (const EndpointId m : old_members) {
        if (!g.view.contains(m) && g.suspected_at.contains(m)) {
            metrics().add(obs::metric::kGcsSuspicionTrue);
        }
    }
    std::erase_if(g.suspected_at,
                  [&](const auto& entry) { return !g.view.contains(entry.first); });

    // Suspicions and requests that the new view resolved are cleared.
    std::erase_if(g.suspects, [&](EndpointId m) { return !g.view.contains(m); });
    std::erase_if(g.pending_joiners, [&](EndpointId m) { return g.view.contains(m); });
    std::erase_if(g.pending_leavers, [&](EndpointId m) { return !g.view.contains(m); });

    directory_->update_contact_hint(group_id, g.view.members);

    // A join we were waiting on may have just completed.
    const auto join_it = pending_joins_.find(g.name);
    if (join_it != pending_joins_.end()) {
        orb_->scheduler().cancel(join_it->second);
        pending_joins_.erase(join_it);
    }

    if (view_handler_) {
        ViewChangeEvent event;
        event.view = g.view;
        for (const EndpointId m : g.view.members) {
            if (std::find(old_members.begin(), old_members.end(), m) == old_members.end()) {
                event.joined.push_back(m);
            }
        }
        for (const EndpointId m : old_members) {
            if (!g.view.contains(m)) event.departed.push_back(m);
        }
        view_handler_(event);
    }
}

void GroupCommEndpoint::resubmit_undelivered(Group& g, const std::set<MsgRef>& delivered) {
    // Our messages that made it into nobody's delivery (they were not in
    // the cut) would otherwise vanish; atomicity lets us resubmit them in
    // the new view (the paper's client-retry discussion, §4.1).
    std::vector<PendingSend> payloads;
    for (const auto& [ref, data] : g.unstable) {
        if (data.sender != id_ || !orders_like_app(data.kind)) continue;
        if (delivered.contains(ref)) continue;
        // A coalesced message resubmits every payload it carried, in their
        // original submission order.  Spans stay attached: a resubmitted
        // payload still belongs to its original invocation.  An undelivered
        // config proposal resubmits too (kind preserved) — reconfiguration
        // requests are never silently lost to a view change.
        payloads.push_back(PendingSend{data.payload, data.span, data.kind});
        for (std::size_t i = 0; i < data.batch.size(); ++i) {
            payloads.push_back(PendingSend{
                data.batch[i],
                i < data.batch_spans.size() ? data.batch_spans[i] : obs::SpanContext{}});
        }
    }
    for (PendingSend& pending : payloads) g.blocked_sends.push_back(std::move(pending));
}

void GroupCommEndpoint::handle_install(const InstallMsg& msg) {
    Group& g = ensure_skeleton(msg.group);
    if (g.installed && msg.view.epoch <= g.view.epoch) return;  // duplicate/stale

    if (g.installed && g.view.contains(id_)) {
        deliver_cut(g, msg);
        resubmit_undelivered(g, g.delivered_refs);
    }

    install_view(g, msg);

    Group* gp = find_group(msg.group);
    if (gp == nullptr) return;  // we were removed

    // Send what queued up during the change (and any resubmissions),
    // through the flow-control gate so a large backlog coalesces instead
    // of flooding the new view.
    std::vector<PendingSend> sends = std::move(gp->blocked_sends);
    gp->blocked_sends.clear();
    for (PendingSend& pending : sends) {
        submit_send(*gp, std::move(pending.payload), pending.span, pending.kind);
    }

    maybe_start_view_change(*gp);
    // A follow-up round may have run to completion synchronously and erased
    // the group; re-resolve before touching it again.
    gp = find_group(msg.group);
    if (gp != nullptr) {
        maybe_adapt_order(*gp);
        kick_liveness(*gp);
    }
    try_release_all();
}

// -- adaptive ordering policy ------------------------------------------------------

void GroupCommEndpoint::maybe_adapt_order(Group& g) {
    if (g.config.adaptive_asym_threshold == 0) return;
    if (g.config.order == OrderMode::kCausal) return;
    if (!g.installed || g.view.leader() != id_) return;
    if (g.pending_config.has_value()) return;
    const OrderMode desired = g.view.members.size() >= g.config.adaptive_asym_threshold
                                  ? OrderMode::kTotalAsymmetric
                                  : OrderMode::kTotalSymmetric;
    if (desired == g.config.order) return;
    // Defer one event step: we are inside the install path, and reconfigure
    // sends through the data machinery the install is still settling.
    const GroupId id = g.id;
    orb_->scheduler().schedule_after(0, [this, id] { on_adapt_order(id); });
}

void GroupCommEndpoint::on_adapt_order(GroupId id) {
    if (process_crashed()) return;
    Group* g = find_group(id);
    // Re-validate everything: membership, leadership or the config may all
    // have moved since the install that scheduled us.
    if (g == nullptr || !g->installed || g->state != Group::State::kNormal) return;
    if (g->config.adaptive_asym_threshold == 0 || g->config.order == OrderMode::kCausal) return;
    if (g->view.leader() != id_ || g->pending_config.has_value()) return;
    const OrderMode desired = g->view.members.size() >= g->config.adaptive_asym_threshold
                                  ? OrderMode::kTotalAsymmetric
                                  : OrderMode::kTotalSymmetric;
    if (desired == g->config.order) return;
    GroupConfig next = g->config;
    next.order = desired;
    reconfigure(id, next);
}

void GroupCommEndpoint::on_vc_timeout(GroupId id) {
    if (process_crashed()) return;
    Group* g = find_group(id);
    if (g == nullptr || g->state != Group::State::kViewChange) return;
    g->vc_timer = 0;

    if (g->leading) {
        // Members that never flushed are presumed gone; go again without them.
        for (const EndpointId member : g->vc_expected_flush) {
            if (!g->vc_flushed.contains(member)) note_suspect(*g, member, true);
        }
        begin_round(*g);
        return;
    }

    // The coordinator went quiet; the next-ranked survivor takes over.
    note_suspect(*g, g->vc_coordinator, true);
    if (!g->installed || !g->view.contains(id_)) {
        // Joiner waiting on a dead coordinator: rely on the join retry.
        return;
    }
    EndpointId next;
    bool found = false;
    for (const EndpointId member : g->view.members) {
        if (!g->suspects.contains(member)) {
            next = member;
            found = true;
            break;
        }
    }
    NEWTOP_ENSURES(found, "self is never suspected");
    if (next == id_) {
        begin_round(*g);
    } else {
        const GroupId gid = g->id;
        g->vc_timer = orb_->scheduler().schedule_after(5 * g->config.view_change_timeout / 2,
                                                       [this, gid] { on_vc_timeout(gid); });
    }
}

}  // namespace newtop
