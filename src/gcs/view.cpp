#include "gcs/view.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace newtop {

bool View::contains(EndpointId member) const {
    return std::binary_search(members.begin(), members.end(), member);
}

std::optional<std::size_t> View::rank_of(EndpointId member) const {
    const auto it = std::lower_bound(members.begin(), members.end(), member);
    if (it == members.end() || *it != member) return std::nullopt;
    return static_cast<std::size_t>(it - members.begin());
}

EndpointId View::leader() const {
    NEWTOP_EXPECTS(!members.empty(), "view has no members");
    return members.front();
}

void View::normalize() {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
}

void encode(Encoder& e, const View& view) {
    encode(e, view.group);
    encode(e, view.epoch);
    encode(e, view.members);
}

void decode(Decoder& d, View& view) {
    decode(d, view.group);
    decode(d, view.epoch);
    decode(d, view.members);
    // Defend downstream rank logic against malformed input.
    if (!std::is_sorted(view.members.begin(), view.members.end())) {
        throw DecodeError("view members not sorted");
    }
}

}  // namespace newtop
