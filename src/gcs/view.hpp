// Group views.
//
// A view is the membership of a group as agreed at one point in time.  All
// members that install a view have delivered the same set of messages in
// the preceding view (virtual synchrony); ranks within a view are the basis
// for deterministic role election (coordinator, sequencer).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "gcs/types.hpp"
#include "serial/serial.hpp"

namespace newtop {

struct View {
    GroupId group;
    ViewEpoch epoch{0};
    /// Members in ascending EndpointId order; the position of a member is
    /// its rank.
    std::vector<EndpointId> members;

    [[nodiscard]] bool contains(EndpointId member) const;

    /// Rank (0-based) of `member`, or nullopt if absent.
    [[nodiscard]] std::optional<std::size_t> rank_of(EndpointId member) const;

    /// The deterministic-election winner: the lowest-id member.  Used for
    /// both the membership coordinator and the asymmetric-order sequencer
    /// (electing a new one after a view change is trivial because every
    /// member has the identical view — §3 of the paper).
    [[nodiscard]] EndpointId leader() const;

    /// Canonicalise: sort members and drop duplicates.
    void normalize();

    friend bool operator==(const View&, const View&) = default;
};

void encode(Encoder& e, const View& view);
void decode(Decoder& d, View& view);

}  // namespace newtop
