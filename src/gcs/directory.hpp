// Bootstrap directory (naming service).
//
// Endpoints register their service IORs here and groups are named here.
// This stands in for the out-of-band configuration a deployment would use
// (a CORBA naming service, config files): it is consulted only to find an
// endpoint's IOR and a group's id/config/contact hint — every protocol
// interaction (join, membership agreement, multicast) then travels through
// the simulated network.  The membership hint is advisory and may be stale;
// the join protocol tolerates that by contacting several hint members.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "gcs/types.hpp"
#include "orb/ior.hpp"

namespace newtop {

class Directory {
public:
    struct GroupInfo {
        GroupId id;
        std::string name;
        GroupConfig config;
        /// Last membership reported by an installer; advisory only.
        std::vector<EndpointId> contact_hint;
    };

    /// Register an endpoint's GCS servant reference; returns its identity.
    EndpointId register_endpoint(Ior service_ior);

    /// IOR of a registered endpoint's GCS servant.
    [[nodiscard]] const Ior& endpoint_ior(EndpointId id) const;

    /// Register the NewTop service object (NSO) management reference that
    /// fronts an endpoint (used for client/server group invitations and
    /// closed-mode direct replies).
    void register_nso(EndpointId id, Ior nso_ior);
    [[nodiscard]] const Ior& nso_ior(EndpointId id) const;

    /// Register a new group.  Throws if the name is taken.
    GroupId register_group(const std::string& name, const GroupConfig& config,
                           EndpointId creator);

    [[nodiscard]] const GroupInfo* find_group(const std::string& name) const;
    [[nodiscard]] const GroupInfo* find_group(GroupId id) const;

    /// Called by members when they install a view, to refresh the hint.
    void update_contact_hint(GroupId id, std::vector<EndpointId> members);

    /// Generic named-object registry (a tiny naming service) used by
    /// subsystems that need to find each other's auxiliary objects, e.g.
    /// replication state-transfer servants.
    void register_object(const std::string& name, Ior ior);
    [[nodiscard]] const Ior* find_object(const std::string& name) const;

private:
    std::vector<Ior> endpoint_iors_;
    std::map<EndpointId, Ior> nso_iors_;
    std::map<std::string, Ior> objects_;
    std::map<std::string, GroupInfo> groups_by_name_;
    std::map<GroupId, std::string> names_by_id_;
    GroupId::rep_type next_group_{1};
};

}  // namespace newtop
