// Bootstrap directory (naming service).
//
// Endpoints register their service IORs here and groups are named here.
// This stands in for the out-of-band configuration a deployment would use
// (a CORBA naming service, config files): it is consulted only to find an
// endpoint's IOR and a group's id/config/contact hint — every protocol
// interaction (join, membership agreement, multicast) then travels through
// the simulated network.  The membership hint is advisory and may be stale;
// the join protocol tolerates that by contacting several hint members.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "gcs/types.hpp"
#include "orb/ior.hpp"

namespace newtop {

namespace obs {
class MetricsRegistry;
}  // namespace obs

class Directory {
public:
    struct GroupInfo {
        GroupId id;
        std::string name;
        GroupConfig config;
        /// Last membership reported by an installer; advisory only.
        std::vector<EndpointId> contact_hint;
    };

    /// Register an endpoint's GCS servant reference; returns its identity.
    EndpointId register_endpoint(Ior service_ior);

    /// IOR of a registered endpoint's GCS servant.
    [[nodiscard]] const Ior& endpoint_ior(EndpointId id) const;

    /// Register the NewTop service object (NSO) management reference that
    /// fronts an endpoint (used for client/server group invitations and
    /// closed-mode direct replies).
    void register_nso(EndpointId id, Ior nso_ior);
    [[nodiscard]] const Ior& nso_ior(EndpointId id) const;

    /// Whether `id` currently has a live NSO registration.  Callers that
    /// pick invitation targets from contact hints must filter on this —
    /// evicted endpoints have no NSO and nso_ior() refuses them.
    [[nodiscard]] bool has_nso(EndpointId id) const;

    /// Drop a (suspected or provably) dead endpoint's NSO registration so
    /// rebinding clients stop selecting it as a request manager.  Eviction
    /// is advisory, like the contact hint: a falsely suspected endpoint
    /// re-registers the next time it installs a view.  Counted as
    /// directory.evictions when a registration was actually removed.
    void evict_endpoint(EndpointId id);

    /// True if `id` was evicted and never re-registered — i.e. the rest of
    /// the system has concluded this process is dead.  Deliberately
    /// distinct from !has_nso(): worlds running the bare GCS layer never
    /// register NSOs, and nothing there is ever *known* defunct.
    [[nodiscard]] bool known_defunct(EndpointId id) const;

    Directory() = default;
    ~Directory();
    Directory(const Directory&) = delete;
    Directory& operator=(const Directory&) = delete;

    /// Attach a metrics registry (the directory is world-global and built
    /// before the network, so this is wired explicitly after construction).
    /// Also registers the directory.size gauge; re-attaching the same
    /// registry (every endpoint constructor calls this) is idempotent.
    void attach_metrics(obs::MetricsRegistry* metrics);

    /// Register a new group.  Throws if the name is taken.
    GroupId register_group(const std::string& name, const GroupConfig& config,
                           EndpointId creator);

    [[nodiscard]] const GroupInfo* find_group(const std::string& name) const;
    [[nodiscard]] const GroupInfo* find_group(GroupId id) const;

    /// Called by members when they install a view, to refresh the hint.
    void update_contact_hint(GroupId id, std::vector<EndpointId> members);

    /// Called by members when a view install applies a reconfiguration, so
    /// late joiners, recovering replicas and rebinding clients resolve the
    /// group's *current* policies instead of its creation-time ones.  Like
    /// the contact hint this copy is advisory — the authoritative config
    /// always travels in the InstallMsg — but keeping it fresh is what lets
    /// bootstrap paths (ensure_skeleton, client cs-group construction) start
    /// from the right place.
    void update_group_config(GroupId id, const GroupConfig& config);

    /// Generic named-object registry (a tiny naming service) used by
    /// subsystems that need to find each other's auxiliary objects, e.g.
    /// replication state-transfer servants.
    void register_object(const std::string& name, Ior ior);
    [[nodiscard]] const Ior* find_object(const std::string& name) const;

private:
    obs::MetricsRegistry* metrics_{nullptr};
    std::uint64_t size_gauge_{0};
    std::vector<Ior> endpoint_iors_;
    std::map<EndpointId, Ior> nso_iors_;
    std::set<EndpointId> evicted_;
    std::map<std::string, Ior> objects_;
    std::map<std::string, GroupInfo> groups_by_name_;
    std::map<GroupId, std::string> names_by_id_;
    GroupId::rep_type next_group_{1};
};

}  // namespace newtop
