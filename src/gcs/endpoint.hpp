// GroupCommEndpoint: one process's group-communication runtime — the lower
// half of a NewTop service object (NSO).
//
// One endpoint per NSO, regardless of how many groups the NSO's client
// participates in (§3).  The endpoint provides:
//
//  * group create / join / leave with a consistent membership (view)
//    service driven by a failure suspector,
//  * atomic multicast with causal + total order delivery (symmetric or
//    asymmetric per group), virtual synchrony across view changes,
//  * overlapping groups: one Lamport clock and one causal-knowledge store
//    span all of the endpoint's groups, so causally-related messages in
//    different groups are delivered in causal order (the fig. 7 property),
//  * the time-silence mechanism in lively and event-driven flavours.
//
// All protocol traffic travels as oneway ORB invocations between endpoint
// servants, mirroring the paper's architecture.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "gcs/directory.hpp"
#include "gcs/messages.hpp"
#include "obs/metrics.hpp"
#include "gcs/ordering.hpp"
#include "gcs/types.hpp"
#include "gcs/view.hpp"
#include "orb/orb.hpp"

namespace newtop {

/// ORB method id of the GCS servant's single "deliver" operation.
inline constexpr std::uint32_t kGcsDeliverMethod = 100;

class GroupCommEndpoint {
public:
    /// An application message delivered in agreed order.
    struct Delivery {
        GroupId group;
        EndpointId sender;
        Lamport ts{0};
        Bytes payload;
    };
    using DeliverHandler = std::function<void(const Delivery&)>;

    /// A new view was installed at this member.
    struct ViewChangeEvent {
        View view;
        std::vector<EndpointId> joined;
        std::vector<EndpointId> departed;
    };
    using ViewHandler = std::function<void(const ViewChangeEvent&)>;

    /// This member is no longer part of the group (it left, was ejected,
    /// or the group disbanded around it).
    using RemovedHandler = std::function<void(GroupId)>;

    GroupCommEndpoint(Orb& orb, Directory& directory);
    ~GroupCommEndpoint();

    GroupCommEndpoint(const GroupCommEndpoint&) = delete;
    GroupCommEndpoint& operator=(const GroupCommEndpoint&) = delete;

    [[nodiscard]] EndpointId id() const { return id_; }
    [[nodiscard]] const Ior& service_ior() const { return service_ior_; }
    Orb& orb() { return *orb_; }

    // -- Group management ----------------------------------------------------

    /// Create a group with this endpoint as sole member.  The first view
    /// installs immediately.
    GroupId create_group(const std::string& name, const GroupConfig& config);

    /// Join an existing group (asynchronous: membership is effective when
    /// the view including this endpoint is installed — watch the view
    /// handler).  Returns the group id.
    GroupId join_group(const std::string& name);

    /// Leave a group (asynchronous; the removed handler fires once the
    /// view excluding this endpoint installs).
    void leave_group(GroupId group);

    /// Atomic multicast to the group with the group's configured ordering.
    /// During a view change the message is queued and sent in the next view.
    /// `span` ties the payload to the invocation it belongs to for latency
    /// attribution; a zero span gets a deterministic per-endpoint synthetic
    /// trace so bare GCS traffic is profilable too.
    void multicast(GroupId group, Bytes payload, obs::SpanContext span = {});

    /// Propose a runtime configuration change for the group (must be a
    /// member).  The proposal rides the group's own ordered stream as a
    /// DataKind::kConfig message; its agreed delivery arms a
    /// flush-delimited view change whose install applies `next` at every
    /// member simultaneously.  View-synchronous: everything ordered before
    /// the cut is delivered under the old config (old OrderMode, old
    /// policies), everything after runs the new one, and in-flight sends —
    /// including coalesced batches and credit-blocked payloads — survive
    /// the switch.  Asynchronous; watch the view handler or config_epoch()
    /// for completion.
    void reconfigure(GroupId group, const GroupConfig& next);

    /// Monotonic count of configurations this member has installed for the
    /// group (0 = still on the creation-time config).
    [[nodiscard]] ConfigEpoch config_epoch(GroupId group) const;

    [[nodiscard]] bool knows_group(GroupId group) const { return groups_.contains(group); }
    [[nodiscard]] bool is_member(GroupId group) const;

    /// The current installed view ("groupdetails"), or nullptr before the
    /// first install / after removal.
    [[nodiscard]] const View* current_view(GroupId group) const;
    [[nodiscard]] const GroupConfig* group_config(GroupId group) const;

    void set_deliver_handler(DeliverHandler h) { deliver_handler_ = std::move(h); }
    void set_view_handler(ViewHandler h) { view_handler_ = std::move(h); }
    void set_removed_handler(RemovedHandler h) { removed_handler_ = std::move(h); }

    // -- Diagnostics (tests, benches) -----------------------------------------

    struct GroupStats {
        ViewEpoch epoch{0};
        bool in_view_change{false};
        std::size_t holdback{0};
        std::size_t unstable{0};
        std::uint64_t nulls_sent{0};
        std::uint64_t delivered{0};
    };
    [[nodiscard]] GroupStats group_stats(GroupId group) const;

    /// Total queued work across all of this endpoint's groups: ordering
    /// holdback plus payloads parked behind view changes or window credits.
    /// The invocation layer reads it as an overload signal when deciding
    /// whether to admit new client/server-group bindings.
    [[nodiscard]] std::size_t pending_load() const;

private:
    /// A payload waiting for a send credit (coalesce queue) or for a view
    /// change to finish (blocked_sends), with the span it keeps carrying.
    /// `kind` is kApplication for ordinary multicasts and kConfig for a
    /// parked reconfiguration proposal (config sends bypass coalescing but
    /// still block across a view change).
    struct PendingSend {
        Bytes payload;
        obs::SpanContext span;
        DataKind kind{DataKind::kApplication};
    };

    struct InboundStream {
        Seqno next_expected{0};
        std::map<Seqno, DataMsg> out_of_order;
        SimTime last_heard{0};
        /// Count form of "delivered app prefix": last delivered application
        /// message's seq + 1 (for cross-group knowledge barriers).
        Seqno delivered_app_count{0};
        TimerId nack_timer{0};
        /// φ-accrual inter-arrival history: the most recent positive gaps
        /// between this sender's messages (bounded ring, microseconds).
        /// Cleared with the rest of the stream at each view install, so φ
        /// always describes the current view's traffic pattern.
        std::vector<SimDuration> intervals;
        std::size_t interval_next{0};
    };

    /// φ-accrual history bounds: how many inter-arrival gaps the detector
    /// remembers per peer, and how many it needs before trusting the model
    /// (below the minimum it falls back to the fixed suspicion_timeout).
    static constexpr std::size_t kPhiWindow = 32;
    static constexpr std::size_t kPhiMinSamples = 3;

    struct Group {
        GroupId id;
        std::string name;
        GroupConfig config;

        View view;  // installed view; empty members + epoch 0 => skeleton
        bool installed{false};
        SimTime view_installed_at{0};
        enum class State : std::uint8_t { kNormal, kViewChange } state{State::kNormal};

        /// How many reconfigurations this member has installed (0 = the
        /// creation-time config).  Advances only at view installs, never at
        /// proposal delivery — the install *is* the switch point.
        ConfigEpoch config_epoch{0};
        /// A totally-ordered ConfigChangeMsg delivered but not yet honoured
        /// by a view install.  Virtual synchrony makes this agree across
        /// surviving members: all of them delivered the same proposals in
        /// the same order, so all hold the same pending value (last wins)
        /// and the coordinator's copy speaks for everyone.
        struct PendingConfig {
            GroupConfig next;
            std::uint64_t nonce{0};
            SimTime delivered_at{0};  // for the flush-stall histogram
        };
        std::optional<PendingConfig> pending_config;

        // send side
        Seqno next_send_seq{0};
        SimTime last_send_time{0};
        bool ever_sent{false};
        /// Self-clocking for progress nulls: we only null when we have new
        /// information (something arrived since our last send), so two
        /// members waiting on a dead peer ping-pong at network pace instead
        /// of flooding their CPUs.
        bool received_since_send{false};
        /// Timestamp of our latest send in this group.  A progress null is
        /// useful only while this lags the ordering head — once we have
        /// spoken past the head, further nulls cannot unblock anyone.
        Lamport last_sent_ts{0};
        std::vector<PendingSend> blocked_sends;
        /// Flow control: own application DataMsgs in flight (sent but not
        /// yet self-delivered).  Credit-based — bounded by
        /// config.order_window; each send consumes a credit, each
        /// self-delivery returns one.
        std::size_t inflight_sends{0};
        /// Multicast payloads awaiting a window credit; drained (coalesced
        /// up to config.order_max_batch per DataMsg) as credits return.
        std::deque<PendingSend> coalesce_queue;

        // receive side
        std::map<EndpointId, InboundStream> inbound;
        std::set<MsgRef> delivered_refs;   // app messages delivered this epoch
        std::deque<DataMsg> release_queue;  // ordered, awaiting cross-group barrier
        std::map<MsgRef, DataMsg> unstable;  // own + received, this epoch

        // ordering engines (one active, per config.order)
        SymmetricOrder symmetric;
        SequencerOrder sequencer;
        CausalOrder causal;

        // stability
        std::map<EndpointId, std::map<EndpointId, Seqno>> stability_reports;

        /// Pending end-of-event-step ORDER flush (sequencer only): all data
        /// refs assigned while this is armed ride one multi-assignment ORDER
        /// broadcast instead of one broadcast each.
        TimerId order_flush_timer{0};

        // liveness timers
        TimerId silence_timer{0};
        TimerId progress_timer{0};
        TimerId suspicion_timer{0};
        TimerId stability_timer{0};
        /// Event-driven groups shut the mechanisms down while idle; when
        /// they wake up, suspicion must not look at silence accumulated
        /// while they were off.
        bool liveness_active{false};
        SimTime active_since{0};

        // membership
        std::set<EndpointId> suspects;
        std::set<EndpointId> pending_joiners;
        std::set<EndpointId> pending_leavers;
        /// Ground truth for the detector's scoreboard: when each live
        /// suspicion was raised.  A later message from the suspect refutes
        /// it (gcs.suspicion_false); a view removing a suspect still listed
        /// here confirms it (gcs.suspicion_true).
        std::map<EndpointId, SimTime> suspected_at;

        // view-change round
        ViewEpoch vc_epoch{0};
        EndpointId vc_coordinator;
        bool leading{false};
        std::vector<EndpointId> vc_members;      // proposed membership
        std::set<EndpointId> vc_expected_flush;  // old members we await
        std::set<EndpointId> vc_flushed;
        std::map<MsgRef, DataMsg> vc_cut;
        std::map<std::uint64_t, MsgRef> vc_orders;
        TimerId vc_timer{0};

        // counters
        std::uint64_t nulls_sent{0};
        std::uint64_t delivered_count{0};
    };

    class GcsServant;

    // -- wiring (endpoint.cpp) -------------------------------------------------
    /// Crash-stop: a dead process executes nothing.  Timer callbacks and
    /// message handlers bail out through this so a crashed node can never
    /// mutate shared state (e.g. the directory) again.  Incarnation-aware:
    /// stays true for this endpoint after its node restarts, because the
    /// reborn process is a fresh endpoint and this one is gone for good.
    [[nodiscard]] bool process_crashed() const;
    /// The world's metrics registry (owned by the Network).
    [[nodiscard]] obs::MetricsRegistry& metrics() const;
    void on_wire(BytesView payload);
    void send_wire(EndpointId to, const GcsMessage& msg);
    void multicast_wire(const Group& g, const GcsMessage& msg);
    Group* find_group(GroupId id);
    const Group* find_group(GroupId id) const;
    Group& ensure_skeleton(GroupId id);

    // -- data path (endpoint.cpp) -----------------------------------------------
    void submit_send(Group& g, Bytes payload, obs::SpanContext span,
                     DataKind kind = DataKind::kApplication);
    void drain_coalesced(Group& g);
    void park_coalesced(Group& g);
    void send_data(Group& g, DataKind kind, Bytes payload, obs::SpanContext span = {},
                   std::vector<Bytes> batch = {}, std::vector<obs::SpanContext> batch_spans = {});
    void handle_data(DataMsg msg);
    void handle_nack(const NackMsg& msg);
    void note_payload_arrival(const DataMsg& msg);
    void ingest_in_order(Group& g, DataMsg msg);
    void pump(Group& g);
    void schedule_order_flush(Group& g);
    void flush_order(Group& g);
    void on_order_flush(GroupId id);
    void release_ordered(Group& g, std::vector<DataMsg> ordered);
    void try_release(Group& g);
    void try_release_all();
    [[nodiscard]] bool barrier_satisfied(const DataMsg& msg) const;
    void deliver_to_app(Group& g, DataMsg msg);
    /// Agreed delivery of a DataKind::kConfig message: decode the proposal,
    /// arm pending_config (last-wins across the totally-ordered stream) and
    /// trigger the flush-delimited view change that will honour it.
    void apply_config_delivery(Group& g, const DataMsg& msg);
    void note_knowledge(GroupId group, ViewEpoch epoch, EndpointId sender, Seqno count);
    void merge_knowledge(const std::vector<KnowledgeEntry>& entries);
    [[nodiscard]] std::vector<KnowledgeEntry> knowledge_snapshot(GroupId excluding) const;
    void schedule_nack(Group& g, EndpointId sender);
    void send_nack(GroupId group_id, EndpointId sender);

    // -- liveness (endpoint_liveness.cpp) ----------------------------------------
    [[nodiscard]] bool mechanisms_active(const Group& g) const;
    void kick_liveness(Group& g);
    void stop_liveness(Group& g);
    void send_null(Group& g);
    void on_silence_timer(GroupId id);
    void on_progress_timer(GroupId id);
    void on_suspicion_scan(GroupId id);
    void on_stability_tick(GroupId id);
    void apply_stability_report(Group& g, EndpointId reporter,
                                const std::vector<std::pair<EndpointId, Seqno>>& counts);
    void recompute_stability(Group& g);
    [[nodiscard]] std::vector<std::pair<EndpointId, Seqno>> received_counts(const Group& g) const;
    /// φ-accrual suspicion level of `silence` against the stream's history
    /// (0 when the history is too thin to model).
    [[nodiscard]] static double phi_of(const InboundStream& stream, SimDuration silence);
    /// The detector's verdict for one peer: fixed-timeout when accrual is
    /// disabled or the history too thin, otherwise the φ rule bounded by
    /// the floor (= suspicion_timeout by default) and ceiling.
    [[nodiscard]] static bool suspicion_due(const GroupConfig& config,
                                            const InboundStream* stream, SimDuration silence);
    /// Lazily register the sampled "gcs.phi.<peer>" gauge for a peer.
    void ensure_phi_gauge(EndpointId peer);
    /// Max milli-φ for `peer` across this endpoint's groups at time `at`.
    [[nodiscard]] std::uint64_t sample_phi_milli(EndpointId peer, SimTime at) const;

    // -- membership (endpoint_membership.cpp) -------------------------------------
    void install_first_view(Group& g);
    void handle_join(const JoinReq& msg);
    void handle_leave(const LeaveReq& msg);
    void handle_suspect(const SuspectMsg& msg);
    void handle_propose(const ProposeMsg& msg);
    void handle_flush(const FlushMsg& msg);
    void handle_install(const InstallMsg& msg);
    void note_suspect(Group& g, EndpointId suspect, bool broadcast);
    void maybe_start_view_change(Group& g);
    void begin_round(Group& g);
    void enter_view_change(Group& g, ViewEpoch new_epoch, EndpointId coordinator);
    void add_flush(Group& g, EndpointId sender, std::vector<DataMsg> unstable,
                   const std::vector<std::pair<std::uint64_t, MsgRef>>& orders);
    void finish_if_flushes_complete(Group& g);
    void deliver_cut(Group& g, const InstallMsg& msg);
    void install_view(Group& g, const InstallMsg& msg);
    void resubmit_undelivered(Group& g, const std::set<MsgRef>& delivered_in_cut);
    /// Adaptive ordering policy: after an install, the leader of a group
    /// with adaptive_asym_threshold > 0 proposes a switch to the sequencer
    /// protocol when membership reaches the threshold (and back to the
    /// symmetric protocol below it).  No-op for causal groups, non-leaders,
    /// or when a proposal is already pending.
    void maybe_adapt_order(Group& g);
    void on_adapt_order(GroupId id);
    void on_vc_timeout(GroupId id);
    void on_join_retry(const std::string& name);

    Orb* orb_;
    Directory* directory_;
    EndpointId id_;
    Ior service_ior_;
    Lamport clock_{0};
    /// Counts bare multicasts (no caller span) for synthetic trace ids.
    std::uint64_t multicast_seq_{0};
    /// Per-proposer reconfiguration counter; combined with the endpoint id
    /// it makes every ConfigChangeMsg nonce unique group-wide, so members
    /// can tell exactly which pending proposal an install honoured.
    std::uint64_t reconfig_seq_{0};
    /// Registry the gauges below registered with, cached so the destructor
    /// can unregister without reaching through the orb (the registry, owned
    /// by the network, outlives every endpoint generation).
    obs::MetricsRegistry* gauge_registry_{nullptr};
    std::vector<obs::GaugeHandle> gauges_;
    /// Peers whose "gcs.phi.<peer>" gauge is already registered (handles
    /// live in gauges_ and unregister with the rest).
    std::set<EndpointId> phi_gauge_peers_;

    std::map<GroupId, Group> groups_;
    /// Cross-group causal knowledge: (group, sender) -> (epoch, count).
    std::map<std::pair<GroupId, EndpointId>, std::pair<ViewEpoch, Seqno>> knowledge_;
    /// Joins awaiting completion: group name -> retry timer.
    std::map<std::string, TimerId> pending_joins_;

    /// Re-entrancy guard for drain_coalesced: a drained send can deliver
    /// synchronously (single-member group), returning a credit and
    /// re-triggering the drain mid-loop.
    bool draining_coalesced_{false};

    DeliverHandler deliver_handler_;
    ViewHandler view_handler_;
    RemovedHandler removed_handler_;
};

}  // namespace newtop
