// Identifier and configuration vocabulary for the group communication
// service (the lower half of the NewTop service, §3 of the paper).
#pragma once

#include <cstdint>

#include "util/time.hpp"
#include "util/strong_id.hpp"

namespace newtop {

struct GroupIdTag {};
struct EndpointIdTag {};

/// A group of communicating endpoints.
using GroupId = StrongId<GroupIdTag, std::uint64_t>;

/// One NewTop service object's group-communication identity.  An endpoint
/// may belong to many groups simultaneously (overlapping groups).
using EndpointId = StrongId<EndpointIdTag, std::uint64_t>;

/// Monotonic view number within a group; each installed view increments it.
using ViewEpoch = std::uint64_t;

/// Per-(group, sender, epoch) message sequence number, starting at 0.
using Seqno = std::uint64_t;

/// Lamport logical timestamp.  One clock per endpoint, shared across all of
/// its groups — the property that keeps delivery order consistent for
/// members of overlapping groups.
using Lamport = std::uint64_t;

/// How messages in a group are ordered before delivery.
enum class OrderMode : std::uint8_t {
    /// Causality-preserving total order, symmetric protocol: all members
    /// run the same deterministic Lamport-timestamp ordering rule and
    /// exchange null messages (time-silence) to advance it.
    kTotalSymmetric = 0,
    /// Causality-preserving total order, asymmetric protocol: the lowest-
    /// ranked view member acts as sequencer.
    kTotalAsymmetric = 1,
    /// Causal (vector-style) order only; concurrent messages may be
    /// delivered in different orders at different members.
    kCausal = 2,
};

/// When the time-silence and failure-suspicion machinery runs (§3).
enum class LivenessMode : std::uint8_t {
    /// Mechanisms active for the whole lifetime of the group — appropriate
    /// for peer groups.
    kLively = 0,
    /// Mechanisms active only while application messages are outstanding —
    /// appropriate for request-reply groups.
    kEventDriven = 1,
};

/// Monotonic configuration number within a group: each view-synchronous
/// reconfiguration (a ConfigChangeMsg agreed through the group's own total
/// order and applied at a flush-delimited view install) increments it.
using ConfigEpoch = std::uint64_t;

/// Per-group configuration.  Set at creation time and changed at runtime
/// only through the view-synchronous reconfiguration protocol
/// (GroupCommEndpoint::reconfigure): every member switches at the same
/// flush-delimited view cut, so no two members ever run one message stream
/// under different policies.
struct GroupConfig {
    OrderMode order{OrderMode::kTotalSymmetric};
    LivenessMode liveness{LivenessMode::kEventDriven};
    /// A member that has sent nothing for this long emits an "I am alive"
    /// null (while the mechanism is active).  Its job is liveness, so it
    /// only needs to beat the suspicion timeout comfortably; ordering
    /// progress is driven by the (much faster) ack_delay nulls below.
    SimDuration time_silence{100'000};  // 100 ms
    /// Symmetric-order progress nulls: while a message is held back waiting
    /// for other members' timestamps, idle members null after this much
    /// silence so the order advances promptly (the "protocol specific
    /// messages ... to enable message ordering" of §1).
    SimDuration ack_delay{500};  // 0.5 ms
    /// A member heard nothing from for this long is suspected to have
    /// failed (while the mechanism is active).
    SimDuration suspicion_timeout{200'000};  // 200 ms
    /// A view-change round that has not completed within this long is
    /// restarted by the next-ranked coordinator.
    SimDuration view_change_timeout{400'000};  // 400 ms
    /// How often the stability vector is gossiped while active, to prune
    /// retransmission buffers.
    SimDuration stability_period{100'000};  // 100 ms
    /// Data-plane flow control: how many of this member's own application
    /// messages may be in flight (sent, not yet self-delivered) before
    /// further multicasts coalesce instead of going straight to the wire.
    /// Coalesced payloads ride one DataMsg — one marshalling pass, one
    /// stream slot, one ordering decision — so a saturated sender batches
    /// under load instead of stalling.  0 disables the window (every
    /// multicast ships immediately, the pre-flow-control behaviour).
    std::size_t order_window{16};
    /// Maximum application payloads coalesced into a single DataMsg once
    /// the window is full.
    std::size_t order_max_batch{64};
    /// Adaptive-policy hook: when non-zero, the view leader proposes a
    /// reconfiguration to the asymmetric sequencer once the installed view
    /// reaches this many members, and back to the symmetric protocol below
    /// it (the OptSCORE-style adaptation; §2's flexibility made view-time).
    /// 0 disables the hook.  Ignored for kCausal groups.
    std::size_t adaptive_asym_threshold{0};
    /// φ-accrual failure detection (Hayashibara et al., SRDS 2004): the
    /// suspicion level φ of a peer's current silence, computed against the
    /// peer's own inter-arrival history, must reach this threshold
    /// (milli-φ; 8000 = φ 8.0) before a suspicion is raised.  The fixed
    /// suspicion_timeout stays the *floor* — a peer is never suspected
    /// earlier than it, so crash detection is never slower than the fixed
    /// detector — and φ only extends the deadline for peers whose history
    /// shows them slow-but-alive.  0 disables accrual: suspicion falls back
    /// to the fixed timeout alone (the paper's original detector).
    std::uint64_t phi_threshold_milli{8000};
    /// Minimum silence before any suspicion, regardless of φ.  0 means
    /// "use suspicion_timeout" (the compatible default).
    SimDuration phi_floor{0};
    /// Maximum silence tolerated however chaotic the history: at this much
    /// silence the peer is suspected even if φ never crossed the threshold.
    /// 0 means "use 10 x suspicion_timeout".
    SimDuration phi_ceiling{0};

    friend bool operator==(const GroupConfig&, const GroupConfig&) = default;
};

}  // namespace newtop
