#include "gcs/messages.hpp"

#include "util/check.hpp"

namespace newtop {

namespace {

enum class Tag : std::uint8_t {
    kData = 1,
    kNack = 2,
    kOrder = 3,
    kJoin = 4,
    kLeave = 5,
    kSuspect = 6,
    kPropose = 7,
    kFlush = 8,
    kInstall = 9,
};

}  // namespace

void encode(Encoder& e, const obs::SpanContext& v) {
    e.put_u64(v.trace);
    e.put_u64(v.span);
}
void decode(Decoder& d, obs::SpanContext& v) {
    v.trace = d.get_u64();
    v.span = d.get_u64();
}

void encode(Encoder& e, const MsgRef& v) {
    encode(e, v.sender);
    encode(e, v.seq);
}
void decode(Decoder& d, MsgRef& v) {
    decode(d, v.sender);
    decode(d, v.seq);
}

void encode(Encoder& e, const KnowledgeEntry& v) {
    encode(e, v.group);
    encode(e, v.epoch);
    encode(e, v.sender);
    encode(e, v.count);
}
void decode(Decoder& d, KnowledgeEntry& v) {
    decode(d, v.group);
    decode(d, v.epoch);
    decode(d, v.sender);
    decode(d, v.count);
}

void encode(Encoder& e, const DataMsg& v) {
    encode(e, v.group);
    encode(e, v.epoch);
    encode(e, v.sender);
    encode(e, v.seq);
    encode(e, v.ts);
    e.put_u8(static_cast<std::uint8_t>(v.kind));
    encode(e, v.knowledge);
    encode(e, v.payload);
    encode(e, v.batch);
    encode(e, v.received_counts);
    encode(e, v.causal_vc);
    e.put_i64(v.sent_at);
    encode(e, v.span);
    encode(e, v.batch_spans);
}
void decode(Decoder& d, DataMsg& v) {
    decode(d, v.group);
    decode(d, v.epoch);
    decode(d, v.sender);
    decode(d, v.seq);
    decode(d, v.ts);
    const std::uint8_t kind = d.get_u8();
    if (kind > static_cast<std::uint8_t>(DataKind::kConfig)) throw DecodeError("bad DataKind");
    v.kind = static_cast<DataKind>(kind);
    decode(d, v.knowledge);
    decode(d, v.payload);
    decode(d, v.batch);
    decode(d, v.received_counts);
    decode(d, v.causal_vc);
    v.sent_at = d.get_i64();
    decode(d, v.span);
    decode(d, v.batch_spans);
}

void encode(Encoder& e, const GroupConfig& v) {
    e.put_u8(static_cast<std::uint8_t>(v.order));
    e.put_u8(static_cast<std::uint8_t>(v.liveness));
    e.put_i64(v.time_silence);
    e.put_i64(v.ack_delay);
    e.put_i64(v.suspicion_timeout);
    e.put_i64(v.view_change_timeout);
    e.put_i64(v.stability_period);
    e.put_u64(v.order_window);
    e.put_u64(v.order_max_batch);
    e.put_u64(v.adaptive_asym_threshold);
    e.put_u64(v.phi_threshold_milli);
    e.put_i64(v.phi_floor);
    e.put_i64(v.phi_ceiling);
}
void decode(Decoder& d, GroupConfig& v) {
    const std::uint8_t order = d.get_u8();
    if (order > static_cast<std::uint8_t>(OrderMode::kCausal)) {
        throw DecodeError("bad OrderMode");
    }
    v.order = static_cast<OrderMode>(order);
    const std::uint8_t liveness = d.get_u8();
    if (liveness > static_cast<std::uint8_t>(LivenessMode::kEventDriven)) {
        throw DecodeError("bad LivenessMode");
    }
    v.liveness = static_cast<LivenessMode>(liveness);
    v.time_silence = d.get_i64();
    v.ack_delay = d.get_i64();
    v.suspicion_timeout = d.get_i64();
    v.view_change_timeout = d.get_i64();
    v.stability_period = d.get_i64();
    v.order_window = static_cast<std::size_t>(d.get_u64());
    v.order_max_batch = static_cast<std::size_t>(d.get_u64());
    v.adaptive_asym_threshold = static_cast<std::size_t>(d.get_u64());
    v.phi_threshold_milli = d.get_u64();
    v.phi_floor = d.get_i64();
    v.phi_ceiling = d.get_i64();
}

void encode(Encoder& e, const ConfigChangeMsg& v) {
    encode(e, v.group);
    encode(e, v.next);
    e.put_u64(v.nonce);
}
void decode(Decoder& d, ConfigChangeMsg& v) {
    decode(d, v.group);
    decode(d, v.next);
    v.nonce = d.get_u64();
}

namespace {

void encode_body(Encoder& e, const NackMsg& v) {
    encode(e, v.group);
    encode(e, v.epoch);
    encode(e, v.requester);
    encode(e, v.missing);
}
void decode_body(Decoder& d, NackMsg& v) {
    decode(d, v.group);
    decode(d, v.epoch);
    decode(d, v.requester);
    decode(d, v.missing);
}

void encode_body(Encoder& e, const OrderMsg& v) {
    encode(e, v.group);
    encode(e, v.epoch);
    encode(e, v.first_order);
    encode(e, v.refs);
}
void decode_body(Decoder& d, OrderMsg& v) {
    decode(d, v.group);
    decode(d, v.epoch);
    decode(d, v.first_order);
    decode(d, v.refs);
}

void encode_body(Encoder& e, const JoinReq& v) {
    encode(e, v.group);
    encode(e, v.joiner);
}
void decode_body(Decoder& d, JoinReq& v) {
    decode(d, v.group);
    decode(d, v.joiner);
}

void encode_body(Encoder& e, const LeaveReq& v) {
    encode(e, v.group);
    encode(e, v.leaver);
}
void decode_body(Decoder& d, LeaveReq& v) {
    decode(d, v.group);
    decode(d, v.leaver);
}

void encode_body(Encoder& e, const SuspectMsg& v) {
    encode(e, v.group);
    encode(e, v.epoch);
    encode(e, v.reporter);
    encode(e, v.suspects);
}
void decode_body(Decoder& d, SuspectMsg& v) {
    decode(d, v.group);
    decode(d, v.epoch);
    decode(d, v.reporter);
    decode(d, v.suspects);
}

void encode_body(Encoder& e, const ProposeMsg& v) {
    encode(e, v.group);
    encode(e, v.old_epoch);
    encode(e, v.new_epoch);
    encode(e, v.coordinator);
    encode(e, v.proposed_members);
}
void decode_body(Decoder& d, ProposeMsg& v) {
    decode(d, v.group);
    decode(d, v.old_epoch);
    decode(d, v.new_epoch);
    decode(d, v.coordinator);
    decode(d, v.proposed_members);
}

void encode_body(Encoder& e, const FlushMsg& v) {
    encode(e, v.group);
    encode(e, v.new_epoch);
    encode(e, v.coordinator);
    encode(e, v.sender);
    encode(e, v.unstable);
    encode(e, v.orders);
}
void decode_body(Decoder& d, FlushMsg& v) {
    decode(d, v.group);
    decode(d, v.new_epoch);
    decode(d, v.coordinator);
    decode(d, v.sender);
    decode(d, v.unstable);
    decode(d, v.orders);
}

void encode_body(Encoder& e, const InstallMsg& v) {
    encode(e, v.group);
    encode(e, v.view);
    encode(e, v.coordinator);
    encode(e, v.cut);
    encode(e, v.orders);
    encode(e, v.config);
    encode(e, v.config_epoch);
    e.put_u64(v.applied_nonce);
}
void decode_body(Decoder& d, InstallMsg& v) {
    decode(d, v.group);
    decode(d, v.view);
    decode(d, v.coordinator);
    decode(d, v.cut);
    decode(d, v.orders);
    decode(d, v.config);
    decode(d, v.config_epoch);
    v.applied_nonce = d.get_u64();
}

template <typename T>
GcsMessage decode_as(Decoder& d) {
    T v;
    if constexpr (std::is_same_v<T, DataMsg>) {
        decode(d, v);
    } else {
        decode_body(d, v);
    }
    if (!d.exhausted()) throw DecodeError("trailing bytes in GCS message");
    return v;
}

}  // namespace

namespace {

void write_gcs_message(Encoder& e, const GcsMessage& msg) {
    std::visit(
        [&e](const auto& body) {
            using T = std::decay_t<decltype(body)>;
            Tag tag{};
            if constexpr (std::is_same_v<T, DataMsg>) tag = Tag::kData;
            else if constexpr (std::is_same_v<T, NackMsg>) tag = Tag::kNack;
            else if constexpr (std::is_same_v<T, OrderMsg>) tag = Tag::kOrder;
            else if constexpr (std::is_same_v<T, JoinReq>) tag = Tag::kJoin;
            else if constexpr (std::is_same_v<T, LeaveReq>) tag = Tag::kLeave;
            else if constexpr (std::is_same_v<T, SuspectMsg>) tag = Tag::kSuspect;
            else if constexpr (std::is_same_v<T, ProposeMsg>) tag = Tag::kPropose;
            else if constexpr (std::is_same_v<T, FlushMsg>) tag = Tag::kFlush;
            else tag = Tag::kInstall;
            e.put_u8(static_cast<std::uint8_t>(tag));
            if constexpr (std::is_same_v<T, DataMsg>) {
                encode(e, body);
            } else {
                encode_body(e, body);
            }
        },
        msg);
}

}  // namespace

Bytes encode_gcs_message(const GcsMessage& msg) {
    // Counting pass first, so the real encode reserves the exact size and
    // performs at most one allocation regardless of message size.
    Encoder counter = Encoder::counter();
    write_gcs_message(counter, msg);
    Encoder e;
    e.reserve(counter.size());
    write_gcs_message(e, msg);
    return std::move(e).take();
}

GcsMessage decode_gcs_message(BytesView wire) {
    Decoder d(wire);
    const auto tag = static_cast<Tag>(d.get_u8());
    switch (tag) {
        case Tag::kData: return decode_as<DataMsg>(d);
        case Tag::kNack: return decode_as<NackMsg>(d);
        case Tag::kOrder: return decode_as<OrderMsg>(d);
        case Tag::kJoin: return decode_as<JoinReq>(d);
        case Tag::kLeave: return decode_as<LeaveReq>(d);
        case Tag::kSuspect: return decode_as<SuspectMsg>(d);
        case Tag::kPropose: return decode_as<ProposeMsg>(d);
        case Tag::kFlush: return decode_as<FlushMsg>(d);
        case Tag::kInstall: return decode_as<InstallMsg>(d);
    }
    throw DecodeError("unknown GCS message tag");
}

}  // namespace newtop
