// Wire messages of the group communication protocol.
//
// Every message is serialized and shipped as a oneway ORB invocation to the
// peer endpoint's GCS servant, reproducing the paper's architecture where
// NewTop-internal traffic itself travels as CORBA invocations (fig. 2).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "gcs/types.hpp"
#include "gcs/view.hpp"
#include "obs/trace.hpp"
#include "serial/serial.hpp"

namespace newtop {

/// A (group, sender, seqno) coordinate naming one data message.
struct MsgRef {
    EndpointId sender;
    Seqno seq{0};

    friend auto operator<=>(const MsgRef&, const MsgRef&) = default;
};

/// One entry of a causal-knowledge vector: "I know (directly or
/// transitively) that in epoch `epoch` of `group`, `sender` has sent at
/// least `count` stream messages, the last of which was an application
/// message".  Receivers that are members of `group` must not deliver a
/// message carrying this entry before having delivered that prefix — this
/// is what preserves causality *across* overlapping groups (the fig. 7
/// guarantee).
struct KnowledgeEntry {
    GroupId group;
    ViewEpoch epoch{0};
    EndpointId sender;
    Seqno count{0};

    friend auto operator<=>(const KnowledgeEntry&, const KnowledgeEntry&) = default;
};

enum class DataKind : std::uint8_t {
    kApplication = 0,
    /// Time-silence "I am alive" null; carries the sender's stability
    /// vector instead of an application payload.  Nulls are ephemeral:
    /// they consume no stream seqno and are never retransmitted (their
    /// information is monotone, so losing one is harmless).
    kNull = 1,
    /// An asymmetric-order record from the sequencer (an encoded OrderMsg
    /// as payload).  Rides the sequencer's reliable stream so order records
    /// inherit FIFO delivery and NACK-based recovery.
    kOrder = 2,
    /// A reconfiguration proposal (an encoded ConfigChangeMsg as payload).
    /// Ordered exactly like application data — it consumes a stream seqno,
    /// is retransmitted, held back and cut-delivered — so every member
    /// agrees on its position in the total order; its delivery arms the
    /// flush-delimited configuration view change.
    kConfig = 3,
};

/// Returns true for kinds the ordering engines hold back and deliver in
/// the agreed total order (application payloads and in-stream config
/// proposals); false for nulls and sequencer order records, which are
/// consumed by the protocol itself at ingest.
[[nodiscard]] constexpr bool orders_like_app(DataKind kind) {
    return kind == DataKind::kApplication || kind == DataKind::kConfig;
}

/// An application multicast or a time-silence null.
struct DataMsg {
    GroupId group;
    ViewEpoch epoch{0};
    EndpointId sender;
    Seqno seq{0};
    Lamport ts{0};
    DataKind kind{DataKind::kApplication};
    /// Cross-group causal barriers (only entries for groups other than
    /// `group`; in-group causality is covered by FIFO channels + ts).
    std::vector<KnowledgeEntry> knowledge;
    /// Application payload (kApplication) — empty for nulls.
    Bytes payload;
    /// Additional application payloads coalesced under this message's one
    /// stream slot while the sender's flow-control window was full.  Each
    /// is delivered as its own application message, in order, immediately
    /// after `payload`; the batch shares the message's (sender, seq) ref,
    /// so ordering, stability and view-change cuts treat it atomically.
    std::vector<Bytes> batch;
    /// Stability piggyback: per member of the current view, how many of
    /// that member's stream messages this sender has received contiguously
    /// from 0.  Carried on nulls; empty on application data.
    std::vector<std::pair<EndpointId, Seqno>> received_counts;
    /// Causal dependency vector (kCausal groups only): per member, how many
    /// of that member's application messages the sender had delivered when
    /// it sent this one.
    std::vector<std::pair<EndpointId, Seqno>> causal_vc;
    /// Simulated send time, stamped by the sender; the receiver's delivery
    /// latency histogram (gcs.delivery_latency_us) is deliver-time minus
    /// this.  Sim time is global, so no clock-skew correction is needed.
    SimTime sent_at{0};
    /// Causal span of `payload` (zero trace outside any profiled chain).
    /// Riding the wire lets receivers tie arrival/delivery phase events to
    /// the originating invocation — the backbone of latency attribution.
    obs::SpanContext span;
    /// Span of each coalesced payload in `batch` (same length, or empty
    /// when no batch entry carries a span).
    std::vector<obs::SpanContext> batch_spans;
};

/// A runtime reconfiguration proposal, shipped as the payload of a
/// DataKind::kConfig stream message so it is totally ordered against the
/// application traffic it delimits.  Delivery does not switch anything by
/// itself: it records the proposal and triggers a flush-delimited view
/// change whose InstallMsg carries the agreed config — the switch point is
/// the view cut, never the proposal's own delivery.
struct ConfigChangeMsg {
    GroupId group;
    /// The complete requested configuration (absolute, not a delta).
    GroupConfig next;
    /// Proposer-unique token; the InstallMsg that applies this proposal
    /// echoes it so members can retire exactly the pending proposal that
    /// was honoured (a proposal delivered inside the cut of an unrelated
    /// view change stays pending and re-arms a follow-up round).
    std::uint64_t nonce{0};

    friend bool operator==(const ConfigChangeMsg&, const ConfigChangeMsg&) = default;
};

/// Retransmission request: "resend your messages with these seqnos".
struct NackMsg {
    GroupId group;
    ViewEpoch epoch{0};
    EndpointId requester;
    std::vector<Seqno> missing;
};

/// Asymmetric-order record from the sequencer: refs[i] is the message with
/// global order number `first_order + i`.
struct OrderMsg {
    GroupId group;
    ViewEpoch epoch{0};
    std::uint64_t first_order{0};
    std::vector<MsgRef> refs;
};

/// Ask a current member to bring `joiner` into the group.
struct JoinReq {
    GroupId group;
    EndpointId joiner;
};

/// Ask the group to let `leaver` go.
struct LeaveReq {
    GroupId group;
    EndpointId leaver;
};

/// Gossip that `suspects` are believed failed (drives everyone's suspicion
/// state toward agreement so the same coordinator is chosen).
struct SuspectMsg {
    GroupId group;
    ViewEpoch epoch{0};
    EndpointId reporter;
    std::vector<EndpointId> suspects;
};

/// A view-change round is identified by (new_epoch, coordinator); higher
/// pairs supersede lower ones.
struct ProposeMsg {
    GroupId group;
    ViewEpoch old_epoch{0};
    ViewEpoch new_epoch{0};
    EndpointId coordinator;
    std::vector<EndpointId> proposed_members;
};

/// Flush reply: everything the member has received in the old epoch that
/// is not yet known stable, so the coordinator can compute a common cut.
/// `orders` reports the member's known sequencer assignments (asymmetric
/// groups) so the cut can be delivered in the agreed total order.
struct FlushMsg {
    GroupId group;
    ViewEpoch new_epoch{0};
    EndpointId coordinator;  // round this flush answers
    EndpointId sender;
    std::vector<DataMsg> unstable;
    std::vector<std::pair<std::uint64_t, MsgRef>> orders;
};

/// Install the new view.  `cut` is the union of unstable messages; members
/// of the old view deliver any of them not yet delivered — first those with
/// sequencer assignments in `orders` (in assignment order), then the rest
/// in (ts, sender) order — before switching to the new view.
struct InstallMsg {
    GroupId group;
    View view;
    EndpointId coordinator;
    std::vector<DataMsg> cut;
    std::vector<std::pair<std::uint64_t, MsgRef>> orders;
    /// The configuration every member of `view` runs from the instant the
    /// view is installed (pre-cut traffic is still delivered under the old
    /// one).  Carrying the full config in the install keeps joiners and
    /// recovering members correct even when their directory copy is stale.
    GroupConfig config;
    /// Monotonic configuration number matching `config`; bumps only when a
    /// pending ConfigChangeMsg is honoured by this install.
    ConfigEpoch config_epoch{0};
    /// Nonce of the ConfigChangeMsg this install applies (0 when the view
    /// change carried the old config forward unchanged).
    std::uint64_t applied_nonce{0};
};

using GcsMessage = std::variant<DataMsg, NackMsg, OrderMsg, JoinReq, LeaveReq, SuspectMsg,
                                ProposeMsg, FlushMsg, InstallMsg>;

Bytes encode_gcs_message(const GcsMessage& msg);
GcsMessage decode_gcs_message(BytesView wire);

void encode(Encoder& e, const obs::SpanContext& v);
void decode(Decoder& d, obs::SpanContext& v);
void encode(Encoder& e, const MsgRef& v);
void decode(Decoder& d, MsgRef& v);
void encode(Encoder& e, const KnowledgeEntry& v);
void decode(Decoder& d, KnowledgeEntry& v);
void encode(Encoder& e, const DataMsg& v);
void decode(Decoder& d, DataMsg& v);
void encode(Encoder& e, const GroupConfig& v);
void decode(Decoder& d, GroupConfig& v);
void encode(Encoder& e, const ConfigChangeMsg& v);
void decode(Decoder& d, ConfigChangeMsg& v);

}  // namespace newtop
