// Wire messages of the group communication protocol.
//
// Every message is serialized and shipped as a oneway ORB invocation to the
// peer endpoint's GCS servant, reproducing the paper's architecture where
// NewTop-internal traffic itself travels as CORBA invocations (fig. 2).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "gcs/types.hpp"
#include "gcs/view.hpp"
#include "obs/trace.hpp"
#include "serial/serial.hpp"

namespace newtop {

/// A (group, sender, seqno) coordinate naming one data message.
struct MsgRef {
    EndpointId sender;
    Seqno seq{0};

    friend auto operator<=>(const MsgRef&, const MsgRef&) = default;
};

/// One entry of a causal-knowledge vector: "I know (directly or
/// transitively) that in epoch `epoch` of `group`, `sender` has sent at
/// least `count` stream messages, the last of which was an application
/// message".  Receivers that are members of `group` must not deliver a
/// message carrying this entry before having delivered that prefix — this
/// is what preserves causality *across* overlapping groups (the fig. 7
/// guarantee).
struct KnowledgeEntry {
    GroupId group;
    ViewEpoch epoch{0};
    EndpointId sender;
    Seqno count{0};

    friend auto operator<=>(const KnowledgeEntry&, const KnowledgeEntry&) = default;
};

enum class DataKind : std::uint8_t {
    kApplication = 0,
    /// Time-silence "I am alive" null; carries the sender's stability
    /// vector instead of an application payload.  Nulls are ephemeral:
    /// they consume no stream seqno and are never retransmitted (their
    /// information is monotone, so losing one is harmless).
    kNull = 1,
    /// An asymmetric-order record from the sequencer (an encoded OrderMsg
    /// as payload).  Rides the sequencer's reliable stream so order records
    /// inherit FIFO delivery and NACK-based recovery.
    kOrder = 2,
};

/// An application multicast or a time-silence null.
struct DataMsg {
    GroupId group;
    ViewEpoch epoch{0};
    EndpointId sender;
    Seqno seq{0};
    Lamport ts{0};
    DataKind kind{DataKind::kApplication};
    /// Cross-group causal barriers (only entries for groups other than
    /// `group`; in-group causality is covered by FIFO channels + ts).
    std::vector<KnowledgeEntry> knowledge;
    /// Application payload (kApplication) — empty for nulls.
    Bytes payload;
    /// Additional application payloads coalesced under this message's one
    /// stream slot while the sender's flow-control window was full.  Each
    /// is delivered as its own application message, in order, immediately
    /// after `payload`; the batch shares the message's (sender, seq) ref,
    /// so ordering, stability and view-change cuts treat it atomically.
    std::vector<Bytes> batch;
    /// Stability piggyback: per member of the current view, how many of
    /// that member's stream messages this sender has received contiguously
    /// from 0.  Carried on nulls; empty on application data.
    std::vector<std::pair<EndpointId, Seqno>> received_counts;
    /// Causal dependency vector (kCausal groups only): per member, how many
    /// of that member's application messages the sender had delivered when
    /// it sent this one.
    std::vector<std::pair<EndpointId, Seqno>> causal_vc;
    /// Simulated send time, stamped by the sender; the receiver's delivery
    /// latency histogram (gcs.delivery_latency_us) is deliver-time minus
    /// this.  Sim time is global, so no clock-skew correction is needed.
    SimTime sent_at{0};
    /// Causal span of `payload` (zero trace outside any profiled chain).
    /// Riding the wire lets receivers tie arrival/delivery phase events to
    /// the originating invocation — the backbone of latency attribution.
    obs::SpanContext span;
    /// Span of each coalesced payload in `batch` (same length, or empty
    /// when no batch entry carries a span).
    std::vector<obs::SpanContext> batch_spans;
};

/// Retransmission request: "resend your messages with these seqnos".
struct NackMsg {
    GroupId group;
    ViewEpoch epoch{0};
    EndpointId requester;
    std::vector<Seqno> missing;
};

/// Asymmetric-order record from the sequencer: refs[i] is the message with
/// global order number `first_order + i`.
struct OrderMsg {
    GroupId group;
    ViewEpoch epoch{0};
    std::uint64_t first_order{0};
    std::vector<MsgRef> refs;
};

/// Ask a current member to bring `joiner` into the group.
struct JoinReq {
    GroupId group;
    EndpointId joiner;
};

/// Ask the group to let `leaver` go.
struct LeaveReq {
    GroupId group;
    EndpointId leaver;
};

/// Gossip that `suspects` are believed failed (drives everyone's suspicion
/// state toward agreement so the same coordinator is chosen).
struct SuspectMsg {
    GroupId group;
    ViewEpoch epoch{0};
    EndpointId reporter;
    std::vector<EndpointId> suspects;
};

/// A view-change round is identified by (new_epoch, coordinator); higher
/// pairs supersede lower ones.
struct ProposeMsg {
    GroupId group;
    ViewEpoch old_epoch{0};
    ViewEpoch new_epoch{0};
    EndpointId coordinator;
    std::vector<EndpointId> proposed_members;
};

/// Flush reply: everything the member has received in the old epoch that
/// is not yet known stable, so the coordinator can compute a common cut.
/// `orders` reports the member's known sequencer assignments (asymmetric
/// groups) so the cut can be delivered in the agreed total order.
struct FlushMsg {
    GroupId group;
    ViewEpoch new_epoch{0};
    EndpointId coordinator;  // round this flush answers
    EndpointId sender;
    std::vector<DataMsg> unstable;
    std::vector<std::pair<std::uint64_t, MsgRef>> orders;
};

/// Install the new view.  `cut` is the union of unstable messages; members
/// of the old view deliver any of them not yet delivered — first those with
/// sequencer assignments in `orders` (in assignment order), then the rest
/// in (ts, sender) order — before switching to the new view.
struct InstallMsg {
    GroupId group;
    View view;
    EndpointId coordinator;
    std::vector<DataMsg> cut;
    std::vector<std::pair<std::uint64_t, MsgRef>> orders;
};

using GcsMessage = std::variant<DataMsg, NackMsg, OrderMsg, JoinReq, LeaveReq, SuspectMsg,
                                ProposeMsg, FlushMsg, InstallMsg>;

Bytes encode_gcs_message(const GcsMessage& msg);
GcsMessage decode_gcs_message(BytesView wire);

void encode(Encoder& e, const obs::SpanContext& v);
void decode(Decoder& d, obs::SpanContext& v);
void encode(Encoder& e, const MsgRef& v);
void decode(Decoder& d, MsgRef& v);
void encode(Encoder& e, const KnowledgeEntry& v);
void decode(Decoder& d, KnowledgeEntry& v);
void encode(Encoder& e, const DataMsg& v);
void decode(Decoder& d, DataMsg& v);

}  // namespace newtop
