#include "gcs/directory.hpp"

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/check.hpp"

namespace newtop {

Directory::~Directory() {
    if (metrics_ != nullptr && size_gauge_ != 0) metrics_->unregister_gauge(size_gauge_);
}

void Directory::attach_metrics(obs::MetricsRegistry* metrics) {
    if (metrics == metrics_) return;
    if (metrics_ != nullptr && size_gauge_ != 0) {
        metrics_->unregister_gauge(size_gauge_);
        size_gauge_ = 0;
    }
    metrics_ = metrics;
    if (metrics_ != nullptr) {
        size_gauge_ = metrics_->register_gauge(obs::metric::kDirectorySize, [this](SimTime) {
            return static_cast<std::uint64_t>(nso_iors_.size());
        });
    }
}

EndpointId Directory::register_endpoint(Ior service_ior) {
    endpoint_iors_.push_back(std::move(service_ior));
    return EndpointId(endpoint_iors_.size() - 1);
}

const Ior& Directory::endpoint_ior(EndpointId id) const {
    NEWTOP_EXPECTS(id.value() < endpoint_iors_.size(), "unknown endpoint");
    return endpoint_iors_[id.value()];
}

void Directory::register_nso(EndpointId id, Ior nso_ior) {
    nso_iors_[id] = std::move(nso_ior);
    evicted_.erase(id);
}

const Ior& Directory::nso_ior(EndpointId id) const {
    const auto it = nso_iors_.find(id);
    NEWTOP_EXPECTS(it != nso_iors_.end(), "endpoint has no registered NSO");
    return it->second;
}

bool Directory::has_nso(EndpointId id) const { return nso_iors_.contains(id); }

void Directory::evict_endpoint(EndpointId id) {
    if (nso_iors_.erase(id) == 0) return;
    evicted_.insert(id);
    if (metrics_ != nullptr) metrics_->add(obs::metric::kDirectoryEvictions);
}

bool Directory::known_defunct(EndpointId id) const { return evicted_.contains(id); }

GroupId Directory::register_group(const std::string& name, const GroupConfig& config,
                                  EndpointId creator) {
    NEWTOP_EXPECTS(!groups_by_name_.contains(name), "group name already registered");
    const GroupId id(next_group_++);
    groups_by_name_.emplace(name, GroupInfo{id, name, config, {creator}});
    names_by_id_.emplace(id, name);
    return id;
}

const Directory::GroupInfo* Directory::find_group(const std::string& name) const {
    const auto it = groups_by_name_.find(name);
    return it == groups_by_name_.end() ? nullptr : &it->second;
}

const Directory::GroupInfo* Directory::find_group(GroupId id) const {
    const auto it = names_by_id_.find(id);
    return it == names_by_id_.end() ? nullptr : find_group(it->second);
}

void Directory::register_object(const std::string& name, Ior ior) {
    objects_[name] = std::move(ior);
}

const Ior* Directory::find_object(const std::string& name) const {
    const auto it = objects_.find(name);
    return it == objects_.end() ? nullptr : &it->second;
}

void Directory::update_contact_hint(GroupId id, std::vector<EndpointId> members) {
    const auto it = names_by_id_.find(id);
    if (it == names_by_id_.end()) return;
    groups_by_name_[it->second].contact_hint = std::move(members);
}

void Directory::update_group_config(GroupId id, const GroupConfig& config) {
    const auto it = names_by_id_.find(id);
    if (it == names_by_id_.end()) return;
    groups_by_name_[it->second].config = config;
}

}  // namespace newtop
