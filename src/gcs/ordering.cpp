#include "gcs/ordering.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace newtop {

// -- SymmetricOrder -----------------------------------------------------------

void SymmetricOrder::reset(std::vector<EndpointId> members) {
    holdback_.clear();
    latest_ts_.clear();
    for (EndpointId m : members) latest_ts_[m] = 0;
}

void SymmetricOrder::on_data(const DataMsg& msg) {
    auto it = latest_ts_.find(msg.sender);
    NEWTOP_EXPECTS(it != latest_ts_.end(), "data from non-member fed to symmetric order");
    it->second = std::max(it->second, msg.ts);
    if (orders_like_app(msg.kind)) {
        holdback_.emplace(Key{msg.ts, msg.sender}, msg);
    }
}

bool SymmetricOrder::deliverable(const Key& key) const {
    // `key` is always the lowest-ordered held-back message (the holdback
    // map is scanned in order).  It is safe to deliver once every other
    // member has been heard from at ts >= key.ts: successive sends from a
    // member carry strictly increasing timestamps, so q's future messages
    // order after key; and if q's message *at* key.ts orders before key it
    // would itself be the holdback head.
    for (const auto& [member, ts] : latest_ts_) {
        if (member == key.sender) continue;
        if (ts < key.ts) return false;
    }
    return true;
}

std::vector<DataMsg> SymmetricOrder::take_deliverable() {
    std::vector<DataMsg> out;
    while (!holdback_.empty() && deliverable(holdback_.begin()->first)) {
        // newtop-lint: allow(hot-path-alloc): delivery batch is bounded by the holdback queue; amortized across the batch
        out.push_back(std::move(holdback_.begin()->second));
        holdback_.erase(holdback_.begin());
    }
    return out;
}

std::optional<Lamport> SymmetricOrder::head_ts() const {
    if (holdback_.empty()) return std::nullopt;
    return holdback_.begin()->first.ts;
}

std::vector<DataMsg> SymmetricOrder::drain_pending() {
    std::vector<DataMsg> out;
    out.reserve(holdback_.size());
    for (auto& [key, msg] : holdback_) out.push_back(std::move(msg));
    holdback_.clear();
    return out;
}

// -- SequencerOrder -----------------------------------------------------------

void SequencerOrder::reset(std::vector<EndpointId> members, EndpointId self) {
    NEWTOP_EXPECTS(!members.empty(), "sequencer order needs at least one member");
    NEWTOP_EXPECTS(std::is_sorted(members.begin(), members.end()), "members must be sorted");
    self_ = self;
    sequencer_ = members.front();
    next_assign_ = 0;
    next_deliver_ = 0;
    fresh_assignments_.clear();
    assignment_.clear();
    log_.clear();
    data_store_.clear();
    seen_refs_.clear();
}

void SequencerOrder::on_data(const DataMsg& msg) {
    if (!orders_like_app(msg.kind)) return;  // nulls bypass ordering
    const MsgRef ref{msg.sender, msg.seq};
    // Dedupe on the ref, covering refs already assigned, already delivered
    // (erased from data_store_/assignment_), and still pending.  Without
    // this a retransmitted message earns a second order slot whose data can
    // never reappear, and take_deliverable() stalls there permanently.
    if (!seen_refs_.insert(ref).second) return;
    data_store_.emplace(ref, msg);
    if (is_sequencer()) {
        // The assignment enters log_ only once its order record is actually
        // handed out for broadcast (take_order_to_send).  Until then it is
        // private state no other member can have observed, and it must not
        // leak into a view-change flush: a fragment that never saw the
        // order record sorts the same messages by (ts, sender), and
        // honouring an unsent arrival order here would contradict it.
        assignment_.emplace(next_assign_, ref);
        ++next_assign_;
        // newtop-lint: allow(hot-path-alloc): bounded by the ordering window; drained and reused every step
        fresh_assignments_.push_back(ref);
    }
}

void SequencerOrder::on_order(const OrderMsg& msg) {
    if (is_sequencer()) return;  // we made the assignments ourselves
    for (std::size_t i = 0; i < msg.refs.size(); ++i) {
        assignment_.emplace(msg.first_order + i, msg.refs[i]);
        log_.emplace(msg.first_order + i, msg.refs[i]);
    }
}

std::optional<OrderMsg> SequencerOrder::take_order_to_send(std::size_t max_refs) {
    if (fresh_assignments_.empty()) return std::nullopt;
    const std::size_t take = (max_refs == 0)
                                 ? fresh_assignments_.size()
                                 : std::min(max_refs, fresh_assignments_.size());
    OrderMsg out;
    out.first_order = next_assign_ - fresh_assignments_.size();
    for (std::size_t i = 0; i < take; ++i) {
        log_.emplace(out.first_order + i, fresh_assignments_[i]);
    }
    out.refs.assign(fresh_assignments_.begin(),
                    fresh_assignments_.begin() + static_cast<std::ptrdiff_t>(take));
    fresh_assignments_.erase(fresh_assignments_.begin(),
                             fresh_assignments_.begin() + static_cast<std::ptrdiff_t>(take));
    return out;
}

std::vector<DataMsg> SequencerOrder::take_deliverable() {
    std::vector<DataMsg> out;
    while (true) {
        auto order_it = assignment_.find(next_deliver_);
        if (order_it == assignment_.end()) break;
        // The sequencer never delivers ahead of its own broadcast: an order
        // that has not been taken for sending is invisible to every flush,
        // so committing to it locally could not survive a view change.
        if (is_sequencer() && !log_.contains(next_deliver_)) break;
        auto data_it = data_store_.find(order_it->second);
        if (data_it == data_store_.end()) break;
        // newtop-lint: allow(hot-path-alloc): delivery batch bounded by contiguous assigned prefix; amortized
        out.push_back(std::move(data_it->second));
        data_store_.erase(data_it);
        assignment_.erase(order_it);
        ++next_deliver_;
    }
    return out;
}

std::vector<DataMsg> SequencerOrder::drain_pending() {
    std::vector<DataMsg> out;
    out.reserve(data_store_.size());
    for (auto& [ref, msg] : data_store_) out.push_back(std::move(msg));
    data_store_.clear();
    assignment_.clear();
    return out;
}

// -- CausalOrder --------------------------------------------------------------

void CausalOrder::reset(std::vector<EndpointId> members) {
    delivered_count_.clear();
    for (EndpointId m : members) delivered_count_[m] = 0;
    pending_.clear();
}

void CausalOrder::on_data(const DataMsg& msg) {
    if (!orders_like_app(msg.kind)) return;
    // newtop-lint: allow(hot-path-alloc): pending list is bounded by causal holdback; capacity persists across steps
    pending_.push_back(msg);
}

bool CausalOrder::satisfied(const DataMsg& msg) const {
    for (const auto& [member, needed] : msg.causal_vc) {
        const auto it = delivered_count_.find(member);
        // Dependencies on departed members were resolved by the view-change
        // flush before this engine was reset; ignore them.
        if (it == delivered_count_.end()) continue;
        if (it->second < needed) return false;
    }
    return true;
}

std::vector<DataMsg> CausalOrder::take_deliverable() {
    std::vector<DataMsg> out;
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (auto it = pending_.begin(); it != pending_.end();) {
            if (satisfied(*it)) {
                ++delivered_count_[it->sender];
                // newtop-lint: allow(hot-path-alloc): delivery batch bounded by satisfied pending set; amortized
                out.push_back(std::move(*it));
                it = pending_.erase(it);
                progressed = true;
            } else {
                ++it;
            }
        }
    }
    return out;
}

std::vector<DataMsg> CausalOrder::drain_pending() {
    std::vector<DataMsg> out = std::move(pending_);
    pending_.clear();
    return out;
}

std::vector<std::pair<EndpointId, Seqno>> CausalOrder::delivered_vector() const {
    std::vector<std::pair<EndpointId, Seqno>> out;
    out.reserve(delivered_count_.size());
    for (const auto& [member, count] : delivered_count_) out.emplace_back(member, count);
    return out;
}

}  // namespace newtop
