// GroupCommEndpoint: construction, wiring, and the message data path.
// Membership agreement lives in endpoint_membership.cpp; the time-silence /
// suspicion / stability machinery in endpoint_liveness.cpp.
#include "gcs/endpoint.hpp"

#include <algorithm>
#include <memory>

#include "net/calibration.hpp"
#include "obs/names.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace newtop {

using namespace sim_literals;

namespace {

/// Initial delay before NACKing a detected gap (lets slightly-reordered
/// traffic settle), and the retry period afterwards.
constexpr SimDuration kNackDelay = 2_ms;
constexpr SimDuration kNackRetry = 10_ms;

Bytes encode_order_payload(const OrderMsg& order) {
    Encoder e;
    encode(e, order.first_order);
    encode(e, order.refs);
    return std::move(e).take();
}

OrderMsg decode_order_payload(const DataMsg& msg) {
    Decoder d(msg.payload);
    OrderMsg order;
    order.group = msg.group;
    order.epoch = msg.epoch;
    decode(d, order.first_order);
    decode(d, order.refs);
    if (!d.exhausted()) throw DecodeError("trailing bytes in order payload");
    return order;
}

/// Creation- and proposal-time configuration sanity.  The one that bites in
/// practice: a view-change round must be allowed strictly more time than
/// the suspicion timeout, or the coordinator gets suspected by followers
/// while its round is still legitimately collecting flushes.
void validate_config(const GroupConfig& config) {
    NEWTOP_EXPECTS(config.suspicion_timeout > 0, "suspicion_timeout must be positive");
    NEWTOP_EXPECTS(config.view_change_timeout > config.suspicion_timeout,
                   "view_change_timeout must exceed suspicion_timeout");
    NEWTOP_EXPECTS(config.phi_floor >= 0, "phi_floor must be non-negative");
    NEWTOP_EXPECTS(config.phi_ceiling >= 0, "phi_ceiling must be non-negative");
}

}  // namespace

/// The endpoint's ORB-visible object; peers invoke its single "deliver"
/// method with an encoded GcsMessage.
class GroupCommEndpoint::GcsServant : public Servant {
public:
    explicit GcsServant(GroupCommEndpoint* owner) : owner_(owner) {}

    Bytes dispatch(std::uint32_t method, BytesView args) override {
        if (method != kGcsDeliverMethod) throw ServantError("unknown GCS method");
        owner_->on_wire(args);
        return {};
    }

    [[nodiscard]] SimDuration execution_cost(std::uint32_t) const override {
        return calibration::kProtocolCost;
    }

private:
    GroupCommEndpoint* owner_;
};

GroupCommEndpoint::GroupCommEndpoint(Orb& orb, Directory& directory)
    : orb_(&orb), directory_(&directory) {
    // Idempotent; gives the world-global directory somewhere to count
    // evictions (one registry per world, owned by the network).
    directory_->attach_metrics(&orb_->network().metrics());
    service_ior_ = orb_->adapter().activate(std::make_shared<GcsServant>(this), "NewTopGCS");
    id_ = directory_->register_endpoint(service_ior_);

    // Flow-control / ordering occupancy gauges, summed over this endpoint's
    // groups; sampled on the world's gauge ticks (enable_gauge_sampling).
    gauge_registry_ = &metrics();
    gauges_.push_back(gauge_registry_->register_gauge(obs::metric::kGcsHoldback, [this](SimTime) {
        std::uint64_t total = 0;
        for (const auto& [id, g] : groups_) {
            switch (g.config.order) {
                case OrderMode::kTotalSymmetric: total += g.symmetric.pending_count(); break;
                case OrderMode::kTotalAsymmetric: total += g.sequencer.pending_count(); break;
                case OrderMode::kCausal: total += g.causal.pending_count(); break;
            }
        }
        return total;
    }));
    gauges_.push_back(
        gauge_registry_->register_gauge(obs::metric::kGcsCreditsInFlight, [this](SimTime) {
            std::uint64_t total = 0;
            for (const auto& [id, g] : groups_) total += g.inflight_sends;
            return total;
        }));
    gauges_.push_back(
        gauge_registry_->register_gauge(obs::metric::kGcsBlockedSends, [this](SimTime) {
            std::uint64_t total = 0;
            for (const auto& [id, g] : groups_) {
                total += g.coalesce_queue.size() + g.blocked_sends.size();
            }
            return total;
        }));
    gauges_.push_back(
        gauge_registry_->register_gauge(obs::metric::kGcsConfigEpoch, [this](SimTime) {
            std::uint64_t total = 0;
            for (const auto& [id, g] : groups_) total += g.config_epoch;
            return total;
        }));
}

void GroupCommEndpoint::ensure_phi_gauge(EndpointId peer) {
    if (!phi_gauge_peers_.insert(peer).second) return;
    // Composed at runtime like the per-link counters; one gauge per peer
    // this endpoint has ever heard from, torn down with the other gauges.
    const std::string name =
        std::string(obs::metric::kGcsPhiPrefix) + std::to_string(peer.value());
    gauges_.push_back(gauge_registry_->register_gauge(
        name, [this, peer](SimTime at) { return sample_phi_milli(peer, at); }));
}

GroupCommEndpoint::~GroupCommEndpoint() {
    // The registry outlives every endpoint (it is owned by the network);
    // crash-recovery rebuilds endpoints, so a stale gauge here would read
    // freed group state on the next sampling tick.
    if (gauge_registry_ != nullptr) {
        for (const obs::GaugeHandle handle : gauges_) gauge_registry_->unregister_gauge(handle);
    }
}

// -- small accessors ----------------------------------------------------------

GroupCommEndpoint::Group* GroupCommEndpoint::find_group(GroupId id) {
    const auto it = groups_.find(id);
    return it == groups_.end() ? nullptr : &it->second;
}

const GroupCommEndpoint::Group* GroupCommEndpoint::find_group(GroupId id) const {
    const auto it = groups_.find(id);
    return it == groups_.end() ? nullptr : &it->second;
}

bool GroupCommEndpoint::is_member(GroupId group) const {
    const Group* g = find_group(group);
    return g != nullptr && g->installed && g->view.contains(id_);
}

const View* GroupCommEndpoint::current_view(GroupId group) const {
    const Group* g = find_group(group);
    return (g != nullptr && g->installed) ? &g->view : nullptr;
}

const GroupConfig* GroupCommEndpoint::group_config(GroupId group) const {
    const Group* g = find_group(group);
    return g == nullptr ? nullptr : &g->config;
}

ConfigEpoch GroupCommEndpoint::config_epoch(GroupId group) const {
    const Group* g = find_group(group);
    return g == nullptr ? 0 : g->config_epoch;
}

GroupCommEndpoint::GroupStats GroupCommEndpoint::group_stats(GroupId group) const {
    const Group* g = find_group(group);
    NEWTOP_EXPECTS(g != nullptr, "unknown group");
    GroupStats stats;
    stats.epoch = g->view.epoch;
    stats.in_view_change = g->state == Group::State::kViewChange;
    stats.unstable = g->unstable.size();
    stats.nulls_sent = g->nulls_sent;
    stats.delivered = g->delivered_count;
    switch (g->config.order) {
        case OrderMode::kTotalSymmetric: stats.holdback = g->symmetric.pending_count(); break;
        case OrderMode::kTotalAsymmetric: stats.holdback = g->sequencer.pending_count(); break;
        case OrderMode::kCausal: stats.holdback = g->causal.pending_count(); break;
    }
    return stats;
}

std::size_t GroupCommEndpoint::pending_load() const {
    std::size_t load = 0;
    for (const auto& [id, g] : groups_) {
        switch (g.config.order) {
            case OrderMode::kTotalSymmetric: load += g.symmetric.pending_count(); break;
            case OrderMode::kTotalAsymmetric: load += g.sequencer.pending_count(); break;
            case OrderMode::kCausal: load += g.causal.pending_count(); break;
        }
        load += g.blocked_sends.size();
        load += g.coalesce_queue.size();
        load += g.release_queue.size();
    }
    return load;
}

// -- wiring ---------------------------------------------------------------------

bool GroupCommEndpoint::process_crashed() const {
    // Incarnation-aware: after a node restart the old endpoint's timers are
    // still in the scheduler, but they belong to a process that no longer
    // exists and must stay dead even though the *node* is alive again.
    return orb_->process_defunct();
}

obs::MetricsRegistry& GroupCommEndpoint::metrics() const {
    return orb_->network().metrics();
}

void GroupCommEndpoint::on_wire(BytesView payload) {
    if (process_crashed()) return;
    GcsMessage msg;
    try {
        msg = decode_gcs_message(payload);
    } catch (const DecodeError& err) {
        NEWTOP_WARN("endpoint " << id_ << ": dropping malformed GCS message: " << err.what());
        return;
    }
    std::visit(
        [this](auto&& body) {
            using T = std::decay_t<decltype(body)>;
            if constexpr (std::is_same_v<T, DataMsg>) handle_data(std::move(body));
            else if constexpr (std::is_same_v<T, NackMsg>) handle_nack(body);
            else if constexpr (std::is_same_v<T, OrderMsg>) { /* order records ride DataMsg */ }
            else if constexpr (std::is_same_v<T, JoinReq>) handle_join(body);
            else if constexpr (std::is_same_v<T, LeaveReq>) handle_leave(body);
            else if constexpr (std::is_same_v<T, SuspectMsg>) handle_suspect(body);
            else if constexpr (std::is_same_v<T, ProposeMsg>) handle_propose(body);
            else if constexpr (std::is_same_v<T, FlushMsg>) handle_flush(body);
            else if constexpr (std::is_same_v<T, InstallMsg>) handle_install(body);
        },
        std::move(msg));
}

namespace {
/// GCS traffic travels as *synchronous* ORB invocations (§2.2: "multicasting
/// has been implemented by making synchronous invocations in turn to all the
/// members", with threads for parallelism) — so every protocol leg costs a
/// full ORB round trip, which is exactly why a NewTop call measures ~2.5x a
/// plain CORBA call in §5.1.1.  The reply is empty and ignored; the timeout
/// merely garbage-collects calls to crashed peers.
constexpr SimDuration kGcsCallTimeout = 60_s;
}  // namespace

void GroupCommEndpoint::send_wire(EndpointId to, const GcsMessage& msg) {
    if (to == id_) {
        // Local short-circuit (e.g. coordinator flushing to itself).
        on_wire(encode_gcs_message(msg));
        return;
    }
    orb_->invoke(directory_->endpoint_ior(to), kGcsDeliverMethod, encode_gcs_message(msg),
                 [](ReplyStatus, const Bytes&) {}, kGcsCallTimeout);
}

void GroupCommEndpoint::multicast_wire(const Group& g, const GcsMessage& msg) {
    // The paper-era ORB has no multicast: the endpoint issues one synchronous
    // invocation per member (threads give wire-parallelism; the CPU
    // serializes the marshalling) — §2.2.
    const Bytes wire = encode_gcs_message(msg);
    for (const EndpointId member : g.view.members) {
        if (member == id_) continue;
        orb_->invoke(directory_->endpoint_ior(member), kGcsDeliverMethod, wire,
                     [](ReplyStatus, const Bytes&) {}, kGcsCallTimeout);
    }
}

// -- group management entry points -------------------------------------------

GroupId GroupCommEndpoint::create_group(const std::string& name, const GroupConfig& config) {
    validate_config(config);
    const GroupId id = directory_->register_group(name, config, id_);
    Group& g = groups_[id];
    g.id = id;
    g.name = name;
    g.config = config;
    install_first_view(g);
    return id;
}

GroupId GroupCommEndpoint::join_group(const std::string& name) {
    const Directory::GroupInfo* info = directory_->find_group(name);
    NEWTOP_EXPECTS(info != nullptr, "no such group");
    if (is_member(info->id)) return info->id;
    if (!pending_joins_.contains(name)) {
        pending_joins_[name] = 0;
        on_join_retry(name);  // first attempt immediately
    }
    return info->id;
}

void GroupCommEndpoint::leave_group(GroupId group) {
    Group* g = find_group(group);
    NEWTOP_EXPECTS(g != nullptr && g->installed, "not a member of this group");
    if (g->view.members.size() == 1) {
        // Last member: the group simply disbands around us.
        const GroupId id = g->id;
        stop_liveness(*g);
        groups_.erase(id);
        if (removed_handler_) removed_handler_(id);
        return;
    }
    g->pending_leavers.insert(id_);
    multicast_wire(*g, LeaveReq{g->id, id_});
    maybe_start_view_change(*g);
}

void GroupCommEndpoint::multicast(GroupId group, Bytes payload, obs::SpanContext span) {
    Group* g = find_group(group);
    NEWTOP_EXPECTS(g != nullptr, "unknown group");
    NEWTOP_EXPECTS(g->installed || g->state == Group::State::kViewChange,
                   "group not yet joined");
    if (span.trace == 0) {
        // Bare GCS traffic (no invocation above it): synthesize a root so
        // the profiler can still chain submit → ship → arrive → deliver.
        span.trace = obs::multicast_trace_id(id_.value(), ++multicast_seq_);
        span.span = obs::span_id(span.trace, id_.value(), obs::SpanRole::kSender);
    }
    metrics().add(obs::metric::kGcsMulticasts);
    metrics().trace(obs::TraceKind::kMulticastSent, orb_->scheduler().now(), id_.value(), span,
                    0, group.value(), payload.size());
    if (g->state == Group::State::kViewChange || !g->installed) {
        metrics().trace(obs::TraceKind::kSendQueued, orb_->scheduler().now(), id_.value(), span,
                        0, group.value(), g->blocked_sends.size() + 1);
        g->blocked_sends.push_back(PendingSend{std::move(payload), span});
        return;
    }
    submit_send(*g, std::move(payload), span);
}

void GroupCommEndpoint::reconfigure(GroupId group, const GroupConfig& next) {
    validate_config(next);
    Group* g = find_group(group);
    NEWTOP_EXPECTS(g != nullptr, "unknown group");
    NEWTOP_EXPECTS(g->installed || g->state == Group::State::kViewChange,
                   "group not yet joined");
    ConfigChangeMsg change;
    change.group = group;
    change.next = next;
    // Proposer-unique: endpoint id in the high half, local counter in the
    // low one, so an install can name exactly which proposal it honoured.
    change.nonce = (static_cast<std::uint64_t>(id_.value()) << 32) | ++reconfig_seq_;
    Encoder e;
    encode(e, change);
    Bytes payload = std::move(e).take();
    // Synthetic root span, as for bare multicasts: the proposal is ordinary
    // ordered traffic as far as the trace is concerned.
    obs::SpanContext span;
    span.trace = obs::multicast_trace_id(id_.value(), ++multicast_seq_);
    span.span = obs::span_id(span.trace, id_.value(), obs::SpanRole::kSender);
    if (g->state == Group::State::kViewChange || !g->installed) {
        g->blocked_sends.push_back(PendingSend{std::move(payload), span, DataKind::kConfig});
        return;
    }
    submit_send(*g, std::move(payload), span, DataKind::kConfig);
}

// -- data path ------------------------------------------------------------------

void GroupCommEndpoint::submit_send(Group& g, Bytes payload, obs::SpanContext span,
                                    DataKind kind) {
    if (kind == DataKind::kConfig) {
        // Config proposals bypass both coalescing (they must not merge into
        // an application batch) and the credit window (a proposal submitted
        // at a full window would queue behind traffic whose delivery the
        // group may be throttling — the switch must not wait on it).
        send_data(g, DataKind::kConfig, std::move(payload), span);
        return;
    }
    const std::size_t window = g.config.order_window;
    // FIFO: once anything is queued, later sends queue behind it even if a
    // credit is momentarily free.
    if (window != 0 && (g.inflight_sends >= window || !g.coalesce_queue.empty())) {
        metrics().trace(obs::TraceKind::kSendQueued, orb_->scheduler().now(), id_.value(), span,
                        0, g.id.value(), g.coalesce_queue.size() + 1);
        g.coalesce_queue.push_back(PendingSend{std::move(payload), span});
        metrics().add(obs::metric::kGcsSendsCoalesced);
        drain_coalesced(g);  // a credit may be free when the queue is fresh
        return;
    }
    if (window != 0) ++g.inflight_sends;
    send_data(g, DataKind::kApplication, std::move(payload), span);
}

void GroupCommEndpoint::drain_coalesced(Group& g) {
    if (draining_coalesced_ || g.state != Group::State::kNormal || !g.installed) return;
    const std::size_t window = g.config.order_window;
    if (window == 0) return;
    draining_coalesced_ = true;
    while (!g.coalesce_queue.empty() && g.inflight_sends < window) {
        PendingSend head = std::move(g.coalesce_queue.front());
        g.coalesce_queue.pop_front();
        std::vector<Bytes> batch;
        std::vector<obs::SpanContext> batch_spans;
        const std::size_t max_batch = std::max<std::size_t>(g.config.order_max_batch, 1);
        while (!g.coalesce_queue.empty() && batch.size() + 1 < max_batch) {
            batch.push_back(std::move(g.coalesce_queue.front().payload));
            batch_spans.push_back(g.coalesce_queue.front().span);
            g.coalesce_queue.pop_front();
        }
        metrics().observe(obs::metric::kGcsSendBatchPayloads,
                          static_cast<SimDuration>(1 + batch.size()));
        ++g.inflight_sends;
        send_data(g, DataKind::kApplication, std::move(head.payload), head.span,
                  std::move(batch), std::move(batch_spans));
    }
    draining_coalesced_ = false;
}

void GroupCommEndpoint::park_coalesced(Group& g) {
    // A view change interrupts the window: queued payloads have no seqno
    // yet, so no flush covers them.  Move them (ahead of anything blocked
    // later during the change) so the install drain resubmits them in the
    // new view in their original order.
    if (g.coalesce_queue.empty()) return;
    g.blocked_sends.insert(g.blocked_sends.begin(),
                           std::make_move_iterator(g.coalesce_queue.begin()),
                           std::make_move_iterator(g.coalesce_queue.end()));
    g.coalesce_queue.clear();
}

void GroupCommEndpoint::send_data(Group& g, DataKind kind, Bytes payload, obs::SpanContext span,
                                  std::vector<Bytes> batch,
                                  std::vector<obs::SpanContext> batch_spans) {
    const SimTime now = orb_->scheduler().now();
    DataMsg msg;
    msg.group = g.id;
    msg.epoch = g.view.epoch;
    msg.sender = id_;
    msg.ts = ++clock_;
    msg.kind = kind;
    msg.sent_at = now;
    msg.payload = std::move(payload);
    msg.batch = std::move(batch);
    msg.span = span;
    msg.batch_spans = std::move(batch_spans);
    if (kind == DataKind::kNull) {
        msg.seq = 0;  // nulls are ephemeral: no stream seqno, no retransmit
        msg.received_counts = received_counts(g);
        ++g.nulls_sent;
        metrics().add(obs::metric::kGcsNullsSent);
        metrics().trace(obs::TraceKind::kNullOnWire, now, id_.value(), g.id.value());
    } else {
        msg.seq = g.next_send_seq++;
        g.unstable.emplace(MsgRef{id_, msg.seq}, msg);
        if (kind == DataKind::kOrder) {
            metrics().add(obs::metric::kGcsOrderSent);
            metrics().trace(obs::TraceKind::kOrderOnWire, now, id_.value(), g.id.value(),
                            msg.seq);
        } else if (kind == DataKind::kConfig) {
            // Rides the data stream (seqno, retransmission, ordering) but
            // carries no application payload, so no shipped/delivered
            // payload phases for the profiler to reconcile.
            metrics().add(obs::metric::kGcsDataSent);
            metrics().trace(obs::TraceKind::kDataOnWire, now, id_.value(), g.id.value(),
                            msg.seq);
        } else {
            metrics().add(obs::metric::kGcsDataSent);
            metrics().trace(obs::TraceKind::kDataOnWire, now, id_.value(), g.id.value(),
                            msg.seq);
            // Phase boundary: each payload (head + coalesced followers)
            // leaves the endpoint now.  The packed ref names the carrying
            // message so the profiler can pair ship ↔ arrival per member.
            const std::uint64_t ref =
                obs::pack_delivered_ref(msg.epoch, id_.value(), msg.seq);
            metrics().trace(obs::TraceKind::kPayloadShipped, now, id_.value(), msg.span, 0,
                            g.id.value(), ref);
            for (const obs::SpanContext& extra : msg.batch_spans) {
                metrics().trace(obs::TraceKind::kPayloadShipped, now, id_.value(), extra, 0,
                                g.id.value(), ref);
            }
        }
    }
    if (orders_like_app(kind)) {
        msg.knowledge = knowledge_snapshot(g.id);
        if (g.config.order == OrderMode::kCausal) {
            msg.causal_vc = g.causal.delivered_vector();
        }
        note_knowledge(g.id, msg.epoch, id_, msg.seq + 1);
    }

    g.last_send_time = orb_->scheduler().now();
    g.ever_sent = true;
    g.received_since_send = false;
    g.last_sent_ts = msg.ts;

    multicast_wire(g, msg);

    // Local self-ingest: feed our own message straight to the engine.
    if (kind == DataKind::kApplication) note_payload_arrival(msg);
    switch (g.config.order) {
        case OrderMode::kTotalSymmetric: g.symmetric.on_data(msg); break;
        case OrderMode::kTotalAsymmetric:
            if (msg.kind == DataKind::kOrder) {
                // Our own order record: assignments already in the engine.
            } else {
                g.sequencer.on_data(msg);
            }
            break;
        case OrderMode::kCausal: g.causal.on_data(msg); break;
    }
    pump(g);
    kick_liveness(g);
}

void GroupCommEndpoint::handle_data(DataMsg msg) {
    clock_ = std::max(clock_, msg.ts);
    Group* gp = find_group(msg.group);
    if (gp == nullptr) return;  // never knew this group (or already removed)
    Group& g = *gp;
    if (!g.installed) return;  // joiner skeleton: the install cut covers us

    if (msg.epoch != g.view.epoch) return;  // stale epoch, or a future one:
    // future-epoch senders keep it in their unstable store, and the NACK
    // triggered by their next message (or the install cut) recovers it.

    if (!g.view.contains(msg.sender)) return;  // ejected member's straggler

    auto& stream = g.inbound[msg.sender];
    const SimTime heard_at = orb_->scheduler().now();
    // Feed the φ-accrual history: one inter-arrival gap per arrival, but
    // only gaps at heartbeat scale.  Sub-heartbeat gaps (ack nulls, the
    // several messages of one protocol exchange) describe burst structure,
    // not the peer's *pauses* — and pauses are what the silence model must
    // predict.  Letting them in makes a healthy history bimodal (mean
    // halves, σ explodes), which pushes the φ deadline past the fixed
    // floor and delays crash detection for perfectly prompt peers.  The
    // accrual literature samples heartbeat inter-arrivals for the same
    // reason; time_silence is this group's heartbeat period.
    const SimDuration min_gap = g.config.time_silence / 4;
    if (stream.last_heard != 0 && heard_at > stream.last_heard + min_gap) {
        if (stream.intervals.size() < kPhiWindow) {
            stream.intervals.push_back(heard_at - stream.last_heard);
        } else {
            stream.intervals[stream.interval_next] = heard_at - stream.last_heard;
            stream.interval_next = (stream.interval_next + 1) % kPhiWindow;
        }
    }
    stream.last_heard = heard_at;
    g.received_since_send = true;
    ensure_phi_gauge(msg.sender);
    // A message from a peer we suspect refutes the suspicion: it was slow,
    // not dead.  Classification only — the membership protocol still runs
    // its course, so agreement never depends on this bookkeeping.
    if (const auto sit = g.suspected_at.find(msg.sender); sit != g.suspected_at.end()) {
        metrics().add(obs::metric::kGcsSuspicionFalse);
        g.suspected_at.erase(sit);
    }

    if (msg.kind == DataKind::kNull) {
        // The null advertises the sender's own send count; if we hold its
        // full stream we may let the null's timestamp advance the symmetric
        // order.  Otherwise a lost message with a lower timestamp could
        // still be in flight (retransmission), and advancing would break
        // the total order — so we NACK instead and wait.
        Seqno sender_count = 0;
        for (const auto& [member, count] : msg.received_counts) {
            if (member == msg.sender) sender_count = count;
        }
        const bool stream_complete = sender_count <= stream.next_expected;
        if (g.config.order == OrderMode::kTotalSymmetric && stream_complete) {
            g.symmetric.on_data(msg);
        }
        apply_stability_report(g, msg.sender, msg.received_counts);
        if (!stream_complete && stream.out_of_order.empty()) {
            schedule_nack(g, msg.sender);
        }
        if (g.state == Group::State::kNormal) pump(g);
        kick_liveness(g);
        return;
    }

    // Reliable stream path (application data and order records).
    if (msg.seq < stream.next_expected || stream.out_of_order.contains(msg.seq)) {
        return;  // duplicate (retransmission we no longer need)
    }
    if (msg.seq != stream.next_expected) {
        stream.out_of_order.emplace(msg.seq, std::move(msg));
        schedule_nack(g, stream.out_of_order.begin()->second.sender);
        kick_liveness(g);
        return;
    }

    const EndpointId sender = msg.sender;
    ingest_in_order(g, std::move(msg));
    ++stream.next_expected;
    // Drain any buffered continuation.
    auto it = stream.out_of_order.begin();
    while (it != stream.out_of_order.end() && it->first == stream.next_expected) {
        ingest_in_order(g, std::move(it->second));
        it = stream.out_of_order.erase(it);
        ++stream.next_expected;
    }
    if (stream.out_of_order.empty() && stream.nack_timer != 0) {
        orb_->scheduler().cancel(stream.nack_timer);
        stream.nack_timer = 0;
    } else if (!stream.out_of_order.empty()) {
        schedule_nack(g, sender);
    }

    if (g.state == Group::State::kNormal) pump(g);
    kick_liveness(g);
}

void GroupCommEndpoint::note_payload_arrival(const DataMsg& msg) {
    // Phase boundary: the payload has reached this member (self-ingest or
    // in-order wire arrival) and now waits in the ordering layer.  One event
    // per carried payload span so every invocation's chain sees its own.
    if (msg.kind != DataKind::kApplication) return;
    const SimTime now = orb_->scheduler().now();
    const std::uint64_t ref = obs::pack_delivered_ref(msg.epoch, msg.sender.value(), msg.seq);
    metrics().trace(obs::TraceKind::kDataArrived, now, id_.value(), msg.span, 0,
                    msg.group.value(), ref);
    for (const obs::SpanContext& extra : msg.batch_spans) {
        metrics().trace(obs::TraceKind::kDataArrived, now, id_.value(), extra, 0,
                        msg.group.value(), ref);
    }
}

void GroupCommEndpoint::ingest_in_order(Group& g, DataMsg msg) {
    note_payload_arrival(msg);
    g.unstable.emplace(MsgRef{msg.sender, msg.seq}, msg);
    switch (g.config.order) {
        case OrderMode::kTotalSymmetric:
            g.symmetric.on_data(msg);
            break;
        case OrderMode::kTotalAsymmetric:
            if (msg.kind == DataKind::kOrder) {
                try {
                    g.sequencer.on_order(decode_order_payload(msg));
                } catch (const DecodeError& err) {
                    NEWTOP_WARN("endpoint " << id_ << ": bad order payload: " << err.what());
                }
            } else {
                g.sequencer.on_data(msg);
            }
            break;
        case OrderMode::kCausal:
            g.causal.on_data(msg);
            break;
    }
}

void GroupCommEndpoint::pump(Group& g) {
    if (g.state != Group::State::kNormal) return;
    std::vector<DataMsg> ordered;
    switch (g.config.order) {
        case OrderMode::kTotalSymmetric:
            ordered = g.symmetric.take_deliverable();
            break;
        case OrderMode::kTotalAsymmetric: {
            // Sequencer: fresh assignments are not broadcast inline — the
            // flush runs at the end of the current event step, so every data
            // ref assigned at this instant shares one multi-assignment ORDER
            // broadcast instead of costing one broadcast each.
            schedule_order_flush(g);
            ordered = g.sequencer.take_deliverable();
            break;
        }
        case OrderMode::kCausal:
            ordered = g.causal.take_deliverable();
            break;
    }
    std::size_t holdback = 0;
    switch (g.config.order) {
        case OrderMode::kTotalSymmetric: holdback = g.symmetric.pending_count(); break;
        case OrderMode::kTotalAsymmetric: holdback = g.sequencer.pending_count(); break;
        case OrderMode::kCausal: holdback = g.causal.pending_count(); break;
    }
    metrics().observe(obs::metric::kGcsHoldbackDepth, static_cast<SimDuration>(holdback));
    for (auto& msg : ordered) g.release_queue.push_back(std::move(msg));
    try_release_all();
}

void GroupCommEndpoint::schedule_order_flush(Group& g) {
    if (!g.sequencer.is_sequencer() || g.sequencer.fresh_count() == 0) return;
    if (g.order_flush_timer != 0) return;
    const GroupId id = g.id;
    // Zero delay: the scheduler's FIFO tie-break at equal timestamps runs
    // this after every already-queued delivery at the current instant, so
    // the flush sees the whole event step's assignments.
    g.order_flush_timer = orb_->scheduler().schedule_after(0, [this, id] { on_order_flush(id); });
}

void GroupCommEndpoint::flush_order(Group& g) {
    const SimTime now = orb_->scheduler().now();
    while (auto order = g.sequencer.take_order_to_send()) {
        metrics().observe(obs::metric::kGcsOrderBatchRefs,
                          static_cast<SimDuration>(order->refs.size()));
        // Sequencer-turnaround boundary: each ref now has an agreed position
        // and the assignment goes on the wire.  The span is recovered from
        // the unstable store (the sequencer holds every unassigned message).
        for (const MsgRef& ref : order->refs) {
            const auto it = g.unstable.find(ref);
            const obs::SpanContext span = it == g.unstable.end() ? obs::SpanContext{}
                                                                 : it->second.span;
            metrics().trace(obs::TraceKind::kOrderAssigned, now, id_.value(), span, 0,
                            g.id.value(),
                            obs::pack_delivered_ref(g.view.epoch, ref.sender.value(), ref.seq));
        }
        send_data(g, DataKind::kOrder, encode_order_payload(*order));
    }
}

void GroupCommEndpoint::on_order_flush(GroupId id) {
    if (process_crashed()) return;
    Group* g = find_group(id);
    if (g == nullptr) return;
    g->order_flush_timer = 0;
    // During a view change order records are never sent; the unsent
    // assignments are deliberately invisible to the flush (assignment_log)
    // and the cut's (ts, sender) fallback orders those refs instead.
    if (g->state != Group::State::kNormal || !g->installed) return;
    flush_order(*g);
    pump(*g);
    kick_liveness(*g);
}

void GroupCommEndpoint::try_release(Group& g) {
    while (!g.release_queue.empty() && barrier_satisfied(g.release_queue.front())) {
        DataMsg msg = std::move(g.release_queue.front());
        g.release_queue.pop_front();
        deliver_to_app(g, std::move(msg));
    }
}

void GroupCommEndpoint::try_release_all() {
    // Delivering in one group can unblock barriers in another; iterate to a
    // fixpoint.  The barrier graph follows causality, so this terminates.
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (auto& [id, g] : groups_) {
            const std::uint64_t before = g.delivered_count;
            try_release(g);
            progressed |= g.delivered_count != before;
        }
    }
}

bool GroupCommEndpoint::barrier_satisfied(const DataMsg& msg) const {
    for (const KnowledgeEntry& entry : msg.knowledge) {
        if (entry.group == msg.group) continue;  // in-group order handles it
        if (entry.sender == id_) continue;       // our own sends
        const Group* g = find_group(entry.group);
        if (g == nullptr || !g->installed || !g->view.contains(id_)) continue;
        if (entry.epoch < g->view.epoch) continue;  // flushed by a view change
        if (entry.epoch > g->view.epoch) return false;  // our install is behind
        if (!g->view.contains(entry.sender)) continue;  // departed member
        const auto it = g->inbound.find(entry.sender);
        const Seqno delivered = it == g->inbound.end() ? 0 : it->second.delivered_app_count;
        if (delivered < entry.count) return false;
    }
    return true;
}

void GroupCommEndpoint::deliver_to_app(Group& g, DataMsg msg) {
    if (msg.kind == DataKind::kConfig) {
        // The agreed delivery slot of a reconfiguration proposal: it never
        // reaches the application, but it consumed a stream position, so it
        // goes through the same ordered-delivery accounting.
        apply_config_delivery(g, msg);
        return;
    }
    NEWTOP_ENSURES(msg.kind == DataKind::kApplication, "only application data is delivered");
    const std::uint64_t payloads = 1 + msg.batch.size();
    g.delivered_refs.insert(MsgRef{msg.sender, msg.seq});
    g.delivered_count += payloads;
    const SimTime now = orb_->scheduler().now();
    const std::uint64_t ref = obs::pack_delivered_ref(msg.epoch, msg.sender.value(), msg.seq);
    metrics().add(obs::metric::kGcsDelivered, payloads);
    metrics().observe(obs::metric::kGcsDeliveryLatencyUs, now - msg.sent_at);
    // subject = group, detail = the delivered {epoch, sender, seq} ref: the
    // raw material for the oracle's total-order / virtual-synchrony checks.
    // A coalesced batch shares one ref, so it stays one oracle event.
    metrics().trace(obs::TraceKind::kDataDelivered, now, id_.value(), msg.span, 0, g.id.value(),
                    ref);
    // Phase boundary: ordering (and any cross-group barrier) released the
    // payload(s); what follows is CPU-queue wait at the application object.
    metrics().trace(obs::TraceKind::kPayloadDelivered, now, id_.value(), msg.span, 0,
                    g.id.value(), ref);
    for (const obs::SpanContext& extra : msg.batch_spans) {
        metrics().trace(obs::TraceKind::kPayloadDelivered, now, id_.value(), extra, 0,
                        g.id.value(), ref);
    }
    if (msg.sender != id_) {
        auto& stream = g.inbound[msg.sender];
        stream.delivered_app_count = std::max(stream.delivered_app_count, msg.seq + 1);
    }
    note_knowledge(g.id, msg.epoch, msg.sender, msg.seq + 1);
    merge_knowledge(msg.knowledge);

    const bool own = msg.sender == id_;
    if (deliver_handler_) {
        // Hand each payload to the application object over the colocated ORB
        // boundary (message m3 of fig. 9): costs CPU but no wire traffic.
        // Coalesced payloads unpack here, in their submission order.
        auto hand_off = [&](Bytes payload) {
            Delivery delivery{g.id, msg.sender, msg.ts, std::move(payload)};
            orb_->network().node(orb_->node_id()).cpu().execute(
                calibration::kLocalHandoffCost,
                [handler = deliver_handler_, delivery = std::move(delivery)] {
                    handler(delivery);
                });
        };
        hand_off(std::move(msg.payload));
        for (Bytes& extra : msg.batch) hand_off(std::move(extra));
    }

    // Self-delivery returns a window credit; drain *after* the handler
    // hand-offs above are queued so a synchronously-delivered drained send
    // cannot jump ahead of this message at the application.
    if (own && g.config.order_window != 0) {
        if (g.inflight_sends > 0) --g.inflight_sends;
        drain_coalesced(g);
    }
}

void GroupCommEndpoint::apply_config_delivery(Group& g, const DataMsg& msg) {
    // Stream accounting first: the proposal occupied a seqno and an agreed
    // order slot, so it must count as delivered for the virtual-synchrony
    // cut (delivered_refs) and appear in the oracle's total-order event
    // stream (kDataDelivered) — the switch point is itself an ordered event
    // every member sees in the same position.
    g.delivered_refs.insert(MsgRef{msg.sender, msg.seq});
    ++g.delivered_count;
    const SimTime now = orb_->scheduler().now();
    const std::uint64_t ref = obs::pack_delivered_ref(msg.epoch, msg.sender.value(), msg.seq);
    metrics().trace(obs::TraceKind::kDataDelivered, now, id_.value(), msg.span, 0, g.id.value(),
                    ref);
    if (msg.sender != id_) {
        auto& stream = g.inbound[msg.sender];
        stream.delivered_app_count = std::max(stream.delivered_app_count, msg.seq + 1);
    }
    note_knowledge(g.id, msg.epoch, msg.sender, msg.seq + 1);
    merge_knowledge(msg.knowledge);

    ConfigChangeMsg change;
    try {
        Decoder d(msg.payload);
        decode(d, change);
        if (!d.exhausted()) throw DecodeError("trailing bytes in config payload");
    } catch (const DecodeError& err) {
        NEWTOP_WARN("endpoint " << id_ << ": bad config payload: " << err.what());
        return;
    }

    // Last-wins across concurrent proposals: total order delivers them in
    // the same sequence everywhere, so every member's pending value agrees.
    g.pending_config = Group::PendingConfig{change.next, change.nonce, now};
    metrics().trace(obs::TraceKind::kConfigProposed, now, id_.value(), msg.span, 0, g.id.value(),
                    obs::pack_config_detail(g.config_epoch + 1, g.view.epoch));

    // Arm the flush-delimited switch.  Deferred one event step: this runs
    // deep inside the delivery path (possibly inside a cut drain), and
    // starting a round here would re-enter the view-change machinery.
    const GroupId id = g.id;
    orb_->scheduler().schedule_after(0, [this, id] {
        if (process_crashed()) return;
        Group* gp = find_group(id);
        if (gp != nullptr) maybe_start_view_change(*gp);
    });
}

// -- causal knowledge ------------------------------------------------------------

void GroupCommEndpoint::note_knowledge(GroupId group, ViewEpoch epoch, EndpointId sender,
                                       Seqno count) {
    auto& slot = knowledge_[{group, sender}];
    if (epoch > slot.first) {
        slot = {epoch, count};
    } else if (epoch == slot.first) {
        slot.second = std::max(slot.second, count);
    }
}

void GroupCommEndpoint::merge_knowledge(const std::vector<KnowledgeEntry>& entries) {
    for (const KnowledgeEntry& entry : entries) {
        note_knowledge(entry.group, entry.epoch, entry.sender, entry.count);
    }
}

std::vector<KnowledgeEntry> GroupCommEndpoint::knowledge_snapshot(GroupId excluding) const {
    std::vector<KnowledgeEntry> out;
    for (const auto& [key, value] : knowledge_) {
        if (key.first == excluding) continue;
        out.push_back(KnowledgeEntry{key.first, value.first, key.second, value.second});
    }
    return out;
}

// -- NACK-based retransmission ------------------------------------------------------

void GroupCommEndpoint::schedule_nack(Group& g, EndpointId sender) {
    auto& stream = g.inbound[sender];
    if (stream.nack_timer != 0) return;
    const GroupId group_id = g.id;
    stream.nack_timer = orb_->scheduler().schedule_after(
        kNackDelay, [this, group_id, sender] { send_nack(group_id, sender); });
}

void GroupCommEndpoint::send_nack(GroupId group_id, EndpointId sender) {
    if (process_crashed()) return;
    Group* g = find_group(group_id);
    if (g == nullptr || g->state != Group::State::kNormal) return;
    auto& stream = g->inbound[sender];
    stream.nack_timer = 0;

    NackMsg nack{g->id, g->view.epoch, id_, {}};
    const Seqno gap_end = stream.out_of_order.empty()
                              ? stream.next_expected + 1
                              : stream.out_of_order.begin()->first;
    for (Seqno s = stream.next_expected; s < gap_end; ++s) nack.missing.push_back(s);
    if (nack.missing.empty()) return;
    metrics().add(obs::metric::kGcsNacksSent);
    send_wire(sender, nack);

    // Retry until the gap closes (or a view change supersedes everything).
    stream.nack_timer = orb_->scheduler().schedule_after(
        kNackRetry, [this, group_id, sender] { send_nack(group_id, sender); });
}

void GroupCommEndpoint::handle_nack(const NackMsg& msg) {
    Group* g = find_group(msg.group);
    if (g == nullptr || msg.epoch != g->view.epoch) return;
    for (const Seqno seq : msg.missing) {
        const auto it = g->unstable.find(MsgRef{id_, seq});
        if (it != g->unstable.end()) {
            metrics().add(obs::metric::kGcsRetransmits);
            send_wire(msg.requester, it->second);
        }
        // Absent => the message went stable, meaning the requester had
        // already received it; the NACK raced a delivery.
    }
}

}  // namespace newtop
