// Server-side object implementation interface.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "net/calibration.hpp"
#include "util/time.hpp"
#include "util/bytes.hpp"

namespace newtop {

/// Thrown by a servant to signal an application-level failure; the ORB
/// propagates it to the caller as an exception reply.
class ServantError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Base class for remotely invocable objects.
///
/// A servant receives the method id and encoded arguments and returns the
/// encoded result — the typed stub/skeleton layer that a CORBA IDL compiler
/// would generate is written by hand in this library (see the examples).
class Servant {
public:
    virtual ~Servant() = default;

    /// Execute `method` with `args`; returns the encoded result.  `args`
    /// is a borrowed view into the received wire buffer (zero-copy): it is
    /// valid only for the duration of the call, so a servant that needs
    /// the arguments later must copy them out.
    virtual Bytes dispatch(std::uint32_t method, BytesView args) = 0;

    /// Simulated CPU time the servant consumes executing `method`.  The
    /// default models a trivial service (the paper benchmarks a
    /// pseudo-random-number generator with negligible compute).
    [[nodiscard]] virtual SimDuration execution_cost(std::uint32_t method) const {
        (void)method;
        return calibration::kTrivialServantCost;
    }
};

}  // namespace newtop
