// Object adapter: the per-node registry mapping object keys to servants.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "net/ids.hpp"
#include "orb/ior.hpp"
#include "orb/servant.hpp"

namespace newtop {

class ObjectAdapter {
public:
    explicit ObjectAdapter(NodeId node) : node_(node) {}

    /// Activate a servant; returns the reference clients invoke it by.
    /// The adapter shares ownership so servants stay alive while exported.
    Ior activate(std::shared_ptr<Servant> servant, std::string type_name);

    /// Remove an object.  In-flight requests to it will get kNoObject.
    void deactivate(ObjectKey key);

    /// Look up a servant; nullptr when the key is unknown or deactivated.
    [[nodiscard]] Servant* find(ObjectKey key) const;

private:
    NodeId node_;
    ObjectKey::rep_type next_key_{1};
    // Keyed in activation order; deterministic should anyone ever enumerate
    // active servants (e.g. node-shutdown sweeps).
    std::map<ObjectKey, std::shared_ptr<Servant>> servants_;
};

}  // namespace newtop
