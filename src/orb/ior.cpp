#include "orb/ior.hpp"

#include "util/check.hpp"

namespace newtop {

void encode(Encoder& e, const Ior& ior) {
    encode(e, ior.node);
    encode(e, ior.key);
    encode(e, ior.type_name);
}

void decode(Decoder& d, Ior& ior) {
    decode(d, ior.node);
    decode(d, ior.key);
    decode(d, ior.type_name);
}

const Ior& Iogr::primary() const {
    NEWTOP_EXPECTS(!members.empty(), "empty object group reference");
    NEWTOP_EXPECTS(primary_index < members.size(), "primary index out of range");
    return members[primary_index];
}

void encode(Encoder& e, const Iogr& iogr) {
    encode(e, iogr.members);
    encode(e, iogr.primary_index);
}

void decode(Decoder& d, Iogr& iogr) {
    decode(d, iogr.members);
    decode(d, iogr.primary_index);
    if (!iogr.members.empty() && iogr.primary_index >= iogr.members.size()) {
        throw DecodeError("IOGR primary index out of range");
    }
}

}  // namespace newtop
