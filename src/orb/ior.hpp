// Object references.
//
// An Ior (Interoperable Object Reference) names one remote object: the node
// hosting it, the key its adapter knows it by, and a type name for sanity
// checking.  An Iogr (Interoperable Object *Group* Reference) embeds several
// member IORs with a designated primary — the forthcoming-at-the-time
// fault-tolerance extension the paper proposes exploiting (§2.2): the ORB
// can transparently fail over from the primary to another member.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ids.hpp"
#include "serial/serial.hpp"
#include "util/strong_id.hpp"

namespace newtop {

struct ObjectKeyTag {};
using ObjectKey = StrongId<ObjectKeyTag, std::uint64_t>;

struct Ior {
    NodeId node;
    ObjectKey key;
    std::string type_name;

    friend bool operator==(const Ior&, const Ior&) = default;
};

void encode(Encoder& e, const Ior& ior);
void decode(Decoder& d, Ior& ior);

struct Iogr {
    std::vector<Ior> members;
    std::uint32_t primary_index{0};

    [[nodiscard]] const Ior& primary() const;

    friend bool operator==(const Iogr&, const Iogr&) = default;
};

void encode(Encoder& e, const Iogr& iogr);
void decode(Decoder& d, Iogr& iogr);

}  // namespace newtop
