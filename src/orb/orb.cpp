#include "orb/orb.hpp"

#include <utility>

#include "net/calibration.hpp"
#include "obs/names.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace newtop {

namespace {

constexpr std::uint8_t kMsgRequest = 1;
constexpr std::uint8_t kMsgReply = 2;

void write_request(Encoder& e, std::uint64_t request_id, bool oneway, ObjectKey key,
                   std::uint32_t method, const Bytes& args) {
    e.put_u8(kMsgRequest);
    e.put_u64(request_id);
    e.put_bool(oneway);
    encode(e, key);
    e.put_u32(method);
    e.put_blob(args);
}

}  // namespace

Bytes Orb::encode_request(std::uint64_t request_id, bool oneway, ObjectKey key,
                          std::uint32_t method, const Bytes& args) {
    // Counting pass, then encode into a recycled buffer of exactly that
    // size: the framing path performs zero allocations at steady state.
    Encoder counter = Encoder::counter();
    write_request(counter, request_id, oneway, key, method, args);
    Encoder e(arena_.acquire(counter.size()));
    write_request(e, request_id, oneway, key, method, args);
    return std::move(e).take();
}

Orb::Orb(Network& network, NodeId node)
    : network_(&network), node_(node),
      incarnation_(network.node(node).incarnation()), adapter_(node) {
    network_->node(node_).set_receiver(
        [this](NodeId from, Bytes payload) { on_message(from, std::move(payload)); });
}

OrbCallId Orb::invoke(const Ior& target, std::uint32_t method, const Bytes& args,
                      ReplyHandler handler, SimDuration timeout) {
    NEWTOP_EXPECTS(handler != nullptr, "two-way invoke needs a reply handler");
    if (process_defunct()) return OrbCallId(0);
    metrics().add(obs::metric::kOrbInvocations);
    const std::uint64_t request_id = next_request_id_++;
    Pending pending{std::move(handler), 0};
    if (timeout > 0) {
        pending.timer = scheduler().schedule_after(timeout, [this, request_id] {
            if (pending_.contains(request_id)) metrics().add(obs::metric::kOrbCallTimeouts);
            complete(request_id, ReplyStatus::kTimeout, Bytes{});
        });
    }
    pending_.emplace(request_id, std::move(pending));

    Bytes wire = encode_request(request_id, /*oneway=*/false, target.key, method, args);
    Node& self = network_->node(node_);
    self.cpu().execute(calibration::marshal_cost(wire.size()),
                       [this, to = target.node, wire = std::move(wire)]() mutable {
                           network_->send(node_, to, std::move(wire));
                       });
    return OrbCallId(request_id);
}

void Orb::invoke_oneway(const Ior& target, std::uint32_t method, const Bytes& args) {
    if (process_defunct()) return;
    metrics().add(obs::metric::kOrbOneways);
    Bytes wire = encode_request(/*request_id=*/0, /*oneway=*/true, target.key, method, args);
    Node& self = network_->node(node_);
    self.cpu().execute(calibration::marshal_cost(wire.size()),
                       [this, to = target.node, wire = std::move(wire)]() mutable {
                           network_->send(node_, to, std::move(wire));
                       });
}

void Orb::cancel(OrbCallId id) {
    auto it = pending_.find(id.value());
    if (it == pending_.end()) return;
    scheduler().cancel(it->second.timer);
    pending_.erase(it);
}

void Orb::on_message(NodeId from, Bytes payload) {
    // Parse errors on wire input are dropped (a real ORB would log and
    // close the connection); the caller's timeout handles the fallout.
    try {
        // The decoder points into payload's heap storage, which a vector
        // move does not relocate — handle_request may safely take the
        // buffer while `d` is still live.
        Decoder d(payload);
        const std::uint8_t type = d.get_u8();
        switch (type) {
            case kMsgRequest: handle_request(from, d, std::move(payload)); return;
            case kMsgReply: handle_reply(d); break;
            default: throw DecodeError("unknown ORB message type");
        }
        // Reply wire consumed synchronously: its storage feeds the next
        // outgoing encode.
        arena_.recycle(std::move(payload));
    } catch (const DecodeError& err) {
        NEWTOP_WARN("node " << node_ << ": dropping malformed message from " << from << ": "
                            << err.what());
    }
}

void Orb::handle_request(NodeId from, Decoder& d, Bytes wire) {
    metrics().add(obs::metric::kOrbRequestsHandled);
    const std::uint64_t request_id = d.get_u64();
    const bool oneway = d.get_bool();
    ObjectKey key;
    decode(d, key);
    const std::uint32_t method = d.get_u32();
    // Zero-copy: the arguments stay in the received wire buffer; the
    // dispatch closure keeps the buffer alive and hands the servant a view.
    const BytesView args = d.get_blob_view();
    const std::size_t args_off = static_cast<std::size_t>(args.data() - wire.data());
    const std::size_t args_len = args.size();

    Node& self = network_->node(node_);
    Servant* servant = adapter_.find(key);
    if (servant == nullptr) {
        // Charge the unmarshal that located (or failed to locate) the key.
        self.cpu().execute(calibration::unmarshal_cost(args_len),
                           [this, from, request_id, oneway] {
            if (!oneway) send_reply(from, request_id, ReplyStatus::kNoObject, Bytes{});
        });
        return;
    }

    const SimDuration cost =
        calibration::unmarshal_cost(args_len) + servant->execution_cost(method);
    self.cpu().execute(cost, [this, from, request_id, oneway, key, method,
                              wire = std::move(wire), args_off, args_len]() mutable {
        // Re-resolve: the object may have been deactivated while queued.
        Servant* target = adapter_.find(key);
        if (target == nullptr) {
            if (!oneway) send_reply(from, request_id, ReplyStatus::kNoObject, Bytes{});
            return;
        }
        try {
            Bytes result = target->dispatch(method, BytesView{wire.data() + args_off, args_len});
            // Retire the request wire before framing the reply, so the
            // reply encode can reuse its storage.
            arena_.recycle(std::move(wire));
            if (!oneway) send_reply(from, request_id, ReplyStatus::kOk, std::move(result));
        } catch (const ServantError& err) {
            arena_.recycle(std::move(wire));
            if (!oneway) {
                send_reply(from, request_id, ReplyStatus::kException,
                           encode_to_bytes(std::string(err.what())));
            }
        }
    });
}

void Orb::send_reply(NodeId to, std::uint64_t request_id, ReplyStatus status, Bytes payload) {
    metrics().add(obs::metric::kOrbRepliesSent);
    // Fixed framing (type + id + status + blob length prefix) around the
    // payload: size it exactly and encode into a recycled buffer.
    const std::size_t frame_size = 1 + 8 + 1 + 4 + payload.size();
    Encoder e(arena_.acquire(frame_size));
    e.put_u8(kMsgReply);
    e.put_u64(request_id);
    e.put_u8(static_cast<std::uint8_t>(status));
    e.put_blob(payload);
    Bytes wire = std::move(e).take();

    Node& self = network_->node(node_);
    self.cpu().execute(calibration::marshal_cost(wire.size()),
                       [this, to, wire = std::move(wire)]() mutable {
        network_->send(node_, to, std::move(wire));
    });
}

void Orb::handle_reply(Decoder& d) {
    const std::uint64_t request_id = d.get_u64();
    const std::uint8_t raw_status = d.get_u8();
    if (raw_status > static_cast<std::uint8_t>(ReplyStatus::kTimeout)) {
        throw DecodeError("invalid reply status");
    }
    Bytes payload = d.get_blob();
    if (pending_.find(request_id) == pending_.end()) return;  // late or duplicate reply
    metrics().add(obs::metric::kOrbRepliesReceived);

    Node& self = network_->node(node_);
    self.cpu().execute(calibration::unmarshal_cost(payload.size()),
                       [this, request_id, status = static_cast<ReplyStatus>(raw_status),
                        payload = std::move(payload)] {
                           complete(request_id, status, payload);
                       });
}

void Orb::complete(std::uint64_t request_id, ReplyStatus status, const Bytes& payload) {
    auto it = pending_.find(request_id);
    if (it == pending_.end()) return;  // cancelled or already completed
    ReplyHandler handler = std::move(it->second.handler);
    scheduler().cancel(it->second.timer);
    pending_.erase(it);
    // A dead process runs no completion handlers; the entry is still
    // reaped above so a timeout timer from a previous life cannot leak it.
    if (process_defunct()) return;
    handler(status, payload);
}

void Orb::invoke_group(const Iogr& group, std::uint32_t method, Bytes args, ReplyHandler handler,
                       SimDuration per_member_timeout) {
    NEWTOP_EXPECTS(!group.members.empty(), "empty object group reference");
    NEWTOP_EXPECTS(per_member_timeout > 0, "IOGR failover requires a per-member timeout");
    // Rotate so the primary is attempted first, then the rest in order.
    Iogr rotated = group;
    try_group_member(std::move(rotated), 0, method, std::move(args), std::move(handler),
                     per_member_timeout);
}

void Orb::try_group_member(Iogr group, std::size_t attempt, std::uint32_t method, Bytes args,
                           ReplyHandler handler, SimDuration per_member_timeout) {
    const std::size_t index = (group.primary_index + attempt) % group.members.size();
    const Ior target = group.members[index];
    const bool last = attempt + 1 >= group.members.size();
    invoke(
        target, method, args,
        [this, group = std::move(group), attempt, method, args, handler,
         per_member_timeout, last](ReplyStatus status, const Bytes& payload) mutable {
            const bool retryable =
                status == ReplyStatus::kTimeout || status == ReplyStatus::kNoObject;
            if (retryable && !last) {
                metrics().add(obs::metric::kOrbGroupRetries);
                try_group_member(std::move(group), attempt + 1, method, std::move(args),
                                 std::move(handler), per_member_timeout);
            } else {
                handler(status, payload);
            }
        },
        per_member_timeout);
}

}  // namespace newtop
