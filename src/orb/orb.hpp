// The mini-ORB: one-to-one request/reply and oneway invocations between
// nodes, with call correlation, timeouts, and IOGR failover.
//
// This stands in for omniORB2 in the paper's architecture (fig. 2): the
// application, the NewTop service objects and the group-communication
// protocol all exchange messages through ORB invocations.  Costs are
// explicit — marshalling/unmarshalling consume node CPU, payloads consume
// link bandwidth — so the "NewTop call = 2.5x plain call" overhead
// measured in §5.1.1 emerges from the same mechanism as in the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/network.hpp"
#include "orb/ior.hpp"
#include "orb/object_adapter.hpp"
#include "serial/arena.hpp"

namespace newtop {

enum class ReplyStatus : std::uint8_t {
    kOk = 0,
    kNoObject = 1,   // target key not active at the node
    kException = 2,  // servant threw; payload carries the message
    kTimeout = 3,    // no reply within the caller's deadline
};

/// Completion callback for a two-way invocation.  Called exactly once.
using ReplyHandler = std::function<void(ReplyStatus, const Bytes& payload)>;

struct CallIdTag {};
using OrbCallId = StrongId<CallIdTag, std::uint64_t>;

class Orb {
public:
    /// Create the ORB runtime for `node` and attach it as the node's
    /// message receiver.  One ORB per node.
    Orb(Network& network, NodeId node);

    Orb(const Orb&) = delete;
    Orb& operator=(const Orb&) = delete;

    [[nodiscard]] NodeId node_id() const { return node_; }
    ObjectAdapter& adapter() { return adapter_; }
    Scheduler& scheduler() { return network_->scheduler(); }
    Network& network() { return *network_; }

    /// Which life of the node this ORB belongs to (captured at
    /// construction).
    [[nodiscard]] std::uint32_t incarnation() const { return incarnation_; }

    /// True when the process this ORB belongs to no longer exists: the node
    /// is crashed, or it restarted and a newer incarnation owns the host.
    /// Every layer's timer callbacks check this instead of Node::crashed()
    /// so that timers armed by a previous life stay dead after a restart
    /// (a restarted node must not resurrect its predecessor's protocol
    /// state).
    [[nodiscard]] bool process_defunct() const {
        const Node& n = network_->node(node_);
        return n.crashed() || n.incarnation() != incarnation_;
    }

    /// Two-way invocation.  `timeout` == 0 means wait forever (only safe
    /// when the target cannot fail).  The handler runs on this node's CPU.
    /// `args` is borrowed for the duration of the call (it is copied into
    /// the framed request), so one buffer can serve many invocations.
    OrbCallId invoke(const Ior& target, std::uint32_t method, const Bytes& args,
                     ReplyHandler handler, SimDuration timeout = 0);

    /// Oneway (fire-and-forget) invocation: no reply, no delivery guarantee
    /// beyond what the transport gives.
    void invoke_oneway(const Ior& target, std::uint32_t method, const Bytes& args);

    /// Abandon a pending call; its handler will not run.
    void cancel(OrbCallId id);

    /// Invoke through an object *group* reference: try the primary, and on
    /// timeout / missing object transparently retry the remaining members
    /// (§2.2's IOGR behaviour).  `per_member_timeout` must be positive.
    void invoke_group(const Iogr& group, std::uint32_t method, Bytes args,
                      ReplyHandler handler, SimDuration per_member_timeout);

private:
    struct Pending {
        ReplyHandler handler;
        TimerId timer{0};
    };

    void on_message(NodeId from, Bytes payload);
    void handle_request(NodeId from, Decoder& d, Bytes wire);
    void handle_reply(Decoder& d);
    void send_reply(NodeId to, std::uint64_t request_id, ReplyStatus status, Bytes payload);
    Bytes encode_request(std::uint64_t request_id, bool oneway, ObjectKey key,
                         std::uint32_t method, const Bytes& args);
    void complete(std::uint64_t request_id, ReplyStatus status, const Bytes& payload);
    void try_group_member(Iogr group, std::size_t attempt, std::uint32_t method, Bytes args,
                          ReplyHandler handler, SimDuration per_member_timeout);
    obs::MetricsRegistry& metrics() { return network_->metrics(); }

    Network* network_;
    NodeId node_;
    std::uint32_t incarnation_;
    ObjectAdapter adapter_;
    /// Recycled wire buffers: received messages retire here after dispatch
    /// and the next outgoing encode reuses their storage, so the steady-
    /// state request/reply path allocates nothing.
    EncodeArena arena_;
    std::uint64_t next_request_id_{1};
    // Ordered by request id so iteration (timeout sweeps, drain-on-shutdown)
    // can never leak hash-table layout into completion or trace order.
    std::map<std::uint64_t, Pending> pending_;
};

}  // namespace newtop
