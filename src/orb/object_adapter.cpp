#include "orb/object_adapter.hpp"

#include "util/check.hpp"

namespace newtop {

Ior ObjectAdapter::activate(std::shared_ptr<Servant> servant, std::string type_name) {
    NEWTOP_EXPECTS(servant != nullptr, "cannot activate a null servant");
    const ObjectKey key(next_key_++);
    servants_.emplace(key, std::move(servant));
    return Ior{node_, key, std::move(type_name)};
}

void ObjectAdapter::deactivate(ObjectKey key) { servants_.erase(key); }

Servant* ObjectAdapter::find(ObjectKey key) const {
    auto it = servants_.find(key);
    return it == servants_.end() ? nullptr : it->second.get();
}

}  // namespace newtop
