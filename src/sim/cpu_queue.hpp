// Single-server CPU model.
//
// Each simulated host has one CPU on which all local work — marshalling,
// protocol processing, servant execution — is serialized.  This queueing is
// what makes throughput saturate: on a low-latency LAN a single client can
// keep a server's CPU permanently busy, exactly the behaviour the paper
// reports (§5.1.1).
#pragma once

#include <functional>

#include "sim/scheduler.hpp"
#include "util/time.hpp"

namespace newtop {

namespace obs {
class MetricsRegistry;
}  // namespace obs

class CpuQueue {
public:
    explicit CpuQueue(Scheduler& scheduler) : scheduler_(&scheduler) {}

    /// Attach the world's metrics registry (done by Network::add_node).
    /// Each submitted task then counts toward cpu.tasks / cpu.busy_us and
    /// its queueing delay feeds the cpu.queue_wait_us histogram.
    void attach_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

    /// Run `fn` after `cost` microseconds of CPU time, queued FIFO behind
    /// any work already submitted.  Zero-cost work still round-trips
    /// through the scheduler so that handlers never run re-entrantly.
    void execute(SimDuration cost, std::function<void()> fn);

    /// Scale the cost of every subsequently submitted task by `factor`
    /// (gray-failure injection: a slow-but-alive host).  1.0 restores
    /// nominal speed; already-queued work keeps its original cost.
    void set_slowdown(double factor);
    [[nodiscard]] double slowdown() const { return slowdown_; }

    /// Time at which currently queued work completes.
    [[nodiscard]] SimTime busy_until() const { return busy_until_; }

    /// Microseconds of accepted-but-unfinished work as seen at time `at`
    /// (0 when idle or dead) — the instantaneous queue depth the
    /// cpu.backlog_us gauge samples.
    [[nodiscard]] SimDuration backlog(SimTime at) const {
        return (dead_ || busy_until_ <= at) ? 0 : busy_until_ - at;
    }

    /// Total CPU time consumed so far (for utilisation reporting).
    [[nodiscard]] SimDuration consumed() const { return consumed_; }

    /// Drop all queued work (used when a node crashes).  Already-scheduled
    /// completions are suppressed via the epoch counter.
    void reset();

    /// Permanently stop the CPU: queued work is dropped and all future
    /// execute() calls become no-ops.  Models crash-stop — a dead process
    /// runs nothing (until the host is explicitly restarted, see revive()).
    void kill();

    /// Bring a killed CPU back to life with an empty queue, as if the host
    /// had been power-cycled: the epoch bump from the embedded reset()
    /// suppresses any completion that was in flight when the CPU died, and
    /// new execute() calls run normally again.  Restores the accounting to
    /// a fresh-boot state.
    void revive();

private:
    Scheduler* scheduler_;
    obs::MetricsRegistry* metrics_{nullptr};
    SimTime busy_until_{0};
    SimDuration consumed_{0};
    double slowdown_{1.0};
    std::uint64_t epoch_{0};
    bool dead_{false};
};

}  // namespace newtop
