#include "sim/scheduler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace newtop {

TimerId Scheduler::schedule_at(SimTime at, std::function<void()> fn) {
    NEWTOP_EXPECTS(fn != nullptr, "scheduled function must be callable");
    const TimerId id = next_id_++;
    queue_.push(Event{std::max(at, now_), next_seq_++, id, std::move(fn)});
    return id;
}

TimerId Scheduler::schedule_after(SimDuration delay, std::function<void()> fn) {
    return schedule_at(now_ + std::max<SimDuration>(delay, 0), std::move(fn));
}

void Scheduler::cancel(TimerId id) {
    if (id != 0) cancelled_.insert(id);
}

bool Scheduler::pop_next(Event& out) {
    while (!queue_.empty()) {
        // priority_queue::top() is const; the handler is moved out after
        // the pop via a copy of the small Event shell.
        out = queue_.top();
        queue_.pop();
        if (auto it = cancelled_.find(out.id); it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        return true;
    }
    return false;
}

bool Scheduler::step() {
    Event ev;
    if (!pop_next(ev)) return false;
    now_ = ev.at;
    ev.fn();
    return true;
}

std::size_t Scheduler::run(std::size_t limit) {
    std::size_t n = 0;
    while (n < limit && step()) ++n;
    return n;
}

void Scheduler::run_until(SimTime deadline) {
    Event ev;
    while (true) {
        if (queue_.empty()) break;
        // Peek: if the earliest event is beyond the deadline, stop.
        if (queue_.top().at > deadline) break;
        if (!pop_next(ev)) break;
        if (ev.at > deadline) {
            // Lost the race against a cancelled prefix; put it back.
            queue_.push(ev);
            break;
        }
        now_ = ev.at;
        ev.fn();
    }
    now_ = std::max(now_, deadline);
}

}  // namespace newtop
