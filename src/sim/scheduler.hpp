// The discrete-event scheduler at the heart of the simulator.
//
// Every asynchronous activity in the system — wire propagation, CPU work,
// protocol timers — is an event on this queue.  Events at equal timestamps
// run in scheduling order, which (together with the seeded RNG) makes whole
// experiments deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <set>
#include <vector>

#include "util/time.hpp"

namespace newtop {

/// Handle for a scheduled event, usable to cancel it.
using TimerId = std::uint64_t;

class Scheduler {
public:
    Scheduler() = default;

    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /// Current simulated time.
    [[nodiscard]] SimTime now() const { return now_; }

    /// Schedule `fn` to run at absolute time `at` (clamped to now()).
    TimerId schedule_at(SimTime at, std::function<void()> fn);

    /// Schedule `fn` to run `delay` from now (negative delays run "now").
    TimerId schedule_after(SimDuration delay, std::function<void()> fn);

    /// Cancel a previously scheduled event.  Cancelling an event that has
    /// already fired (or was already cancelled) is a harmless no-op, which
    /// lets protocol code cancel timers unconditionally.
    void cancel(TimerId id);

    /// Run the single earliest pending event.  Returns false if none remain.
    bool step();

    /// Run events until the queue is empty or `limit` events have run.
    /// Returns the number of events executed.  The limit is a guard against
    /// livelocked protocols in tests (e.g. lively groups that heartbeat
    /// forever); production experiment drivers use run_until().
    std::size_t run(std::size_t limit = SIZE_MAX);

    /// Run all events with timestamp <= deadline; simulated time ends up at
    /// `deadline` even if the queue drains early.
    void run_until(SimTime deadline);

    /// Number of events currently pending (cancelled ones may be counted
    /// until they are popped).
    [[nodiscard]] std::size_t pending() const { return queue_.size() - cancelled_.size(); }

private:
    struct Event {
        SimTime at;
        std::uint64_t seq;  // FIFO tie-break for equal timestamps
        TimerId id;
        std::function<void()> fn;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    /// Pops and returns the next non-cancelled event, or nullopt.
    bool pop_next(Event& out);

    SimTime now_{0};
    std::uint64_t next_seq_{0};
    TimerId next_id_{1};
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    // Ordered (not hashed) so that any future iteration — e.g. draining or
    // introspecting cancelled timers — is deterministic by construction.
    std::set<TimerId> cancelled_;
};

}  // namespace newtop
