#include "sim/cpu_queue.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/check.hpp"

namespace newtop {

void CpuQueue::execute(SimDuration cost, std::function<void()> fn) {
    NEWTOP_EXPECTS(cost >= 0, "CPU cost must be non-negative");
    NEWTOP_EXPECTS(fn != nullptr, "CPU work must be callable");
    if (dead_) return;
    // The slowdown multiply only happens while a gray fault is active, so
    // unslowed hosts compute byte-identical schedules to a build without
    // the feature.
    if (slowdown_ != 1.0) {
        cost = static_cast<SimDuration>(static_cast<double>(cost) * slowdown_);
    }
    const SimTime start = std::max(scheduler_->now(), busy_until_);
    if (metrics_ != nullptr) {
        metrics_->add(obs::metric::kCpuTasks);
        metrics_->add(obs::metric::kCpuBusyUs, static_cast<std::uint64_t>(cost));
        metrics_->observe(obs::metric::kCpuQueueWaitUs, start - scheduler_->now());
    }
    busy_until_ = start + cost;
    consumed_ += cost;
    const std::uint64_t epoch = epoch_;
    scheduler_->schedule_at(busy_until_, [this, epoch, fn = std::move(fn)] {
        if (epoch == epoch_) fn();
    });
}

void CpuQueue::set_slowdown(double factor) {
    NEWTOP_EXPECTS(factor > 0.0, "CPU slowdown factor must be positive");
    slowdown_ = factor;
}

void CpuQueue::reset() {
    ++epoch_;
    busy_until_ = scheduler_->now();
    consumed_ = 0;
}

void CpuQueue::kill() {
    reset();
    dead_ = true;
}

void CpuQueue::revive() {
    reset();
    dead_ = false;
}

}  // namespace newtop
