#include "net/topology.hpp"

#include "util/check.hpp"

namespace newtop {

SiteId Topology::add_site(std::string name, LinkParams local) {
    sites_.push_back(Site{std::move(name), local});
    return SiteId(static_cast<SiteId::rep_type>(sites_.size() - 1));
}

std::pair<SiteId, SiteId> Topology::ordered(SiteId a, SiteId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
}

void Topology::set_link(SiteId a, SiteId b, LinkParams params) {
    NEWTOP_EXPECTS(a != b, "intra-site link is set at add_site time");
    NEWTOP_EXPECTS(a.value() < sites_.size() && b.value() < sites_.size(), "unknown site");
    wan_links_[ordered(a, b)] = params;
}

const LinkParams& Topology::link(SiteId a, SiteId b) const {
    NEWTOP_EXPECTS(a.value() < sites_.size() && b.value() < sites_.size(), "unknown site");
    if (a == b) return sites_[a.value()].local;
    auto it = wan_links_.find(ordered(a, b));
    NEWTOP_EXPECTS(it != wan_links_.end(), "no link configured between sites");
    return it->second;
}

const std::string& Topology::site_name(SiteId site) const {
    NEWTOP_EXPECTS(site.value() < sites_.size(), "unknown site");
    return sites_[site.value()].name;
}

}  // namespace newtop
