// The simulated network: creates nodes, moves bytes between them, and
// injects faults (message loss, crashes, partitions).
//
// Delivery of a message takes
//     latency + U(0, jitter) + size / bandwidth
// on the link between the two nodes' sites.  Per-(sender, receiver) FIFO
// order is preserved (like a TCP connection): a message never overtakes an
// earlier message between the same pair.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "net/node.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace newtop {

/// Degraded-mode overlay for one link (gray-failure injection): added
/// latency and jitter, an extra drop probability and a bandwidth throttle
/// stacked on top of the topology's configured LinkParams while installed.
/// A default-constructed overlay is a no-op and is never stored.
struct LinkDegrade {
    SimDuration extra_latency{0};
    SimDuration extra_jitter{0};
    double extra_loss{0.0};
    /// Fraction of the nominal bandwidth still usable, in (0, 1].
    double bandwidth_factor{1.0};

    friend bool operator==(const LinkDegrade&, const LinkDegrade&) = default;
};

/// Aggregate traffic statistics, useful for comparing protocol overheads
/// (e.g. symmetric-order null traffic vs. sequencer redirection).
struct NetworkStats {
    std::uint64_t messages_sent{0};
    std::uint64_t messages_delivered{0};
    std::uint64_t messages_lost{0};
    std::uint64_t bytes_sent{0};
    std::uint64_t wan_messages{0};  // messages that crossed a site boundary
};

class Network {
public:
    Network(Scheduler& scheduler, Topology topology, std::uint64_t seed);

    /// Create a node at `site`.
    NodeId add_node(SiteId site);

    Node& node(NodeId id);
    [[nodiscard]] const Node& node(NodeId id) const;
    [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

    /// Send bytes from one node to another.  The payload is copied; loss,
    /// partition and crash checks apply.  Sending from a crashed node is a
    /// silent no-op (the process no longer exists).
    void send(NodeId from, NodeId to, Bytes payload);

    /// Crash-stop a node.  Crashing an already-crashed node is a
    /// deterministic no-op, counted as net.crash_ignored (fault plans may
    /// legitimately hit the same node twice).
    void crash(NodeId id);

    /// Schedule a crashed node to restart after `delay`.  When the timer
    /// fires the node comes back with a bumped incarnation (see
    /// Node::restart()); restarting a node that is alive at that point is a
    /// deterministic no-op, counted as net.restart_ignored.
    void restart(NodeId id, SimDuration delay);

    // -- Partitions --------------------------------------------------------
    // Each node lives in a partition cell (default 0).  Messages are only
    // delivered between nodes that share a cell *at delivery time*.

    /// Move a single node to a partition cell.
    void set_partition(NodeId id, int cell);

    /// Move every node of a site to a partition cell.
    void partition_site(SiteId site, int cell);

    /// Merge all cells back into one connected network.
    void heal();

    // -- Loss bursts -------------------------------------------------------
    // Chaos-style fault injection: an extra drop probability applied on top
    // of every link's configured loss while non-zero.  Clamped to [0, 1].

    void set_extra_loss(double p);
    [[nodiscard]] double extra_loss() const { return extra_loss_; }

    /// Per-link convenience form: an extra drop probability for exactly the
    /// (a, b) link, independent of the global burst above.  Stored as a
    /// LinkDegrade overlay; 0 with no other degradation clears it.
    void set_extra_loss(SiteId a, SiteId b, double p);

    // -- Gray-failure injection --------------------------------------------
    // Degraded-but-alive faults: slow hosts, sick links and flapping
    // connectivity.  All deterministic — the only randomness is the world
    // Rng, and every degrade draw is gated on the fault being installed, so
    // runs without gray faults consume an unchanged random stream.

    /// Install (or replace) a degradation overlay on the (a, b) link; links
    /// are directionless, and a == b degrades the site's intra-site LAN.  A
    /// default-constructed (all no-op) overlay clears the entry.
    void set_link_degrade(SiteId a, SiteId b, const LinkDegrade& degrade);
    void clear_link_degrade(SiteId a, SiteId b);
    [[nodiscard]] const LinkDegrade* link_degrade(SiteId a, SiteId b) const;

    /// Scale the CPU cost of all work subsequently submitted on `id`'s host
    /// (1.0 = nominal).  The factor survives crash/restart: slowness is a
    /// property of the host, not the process.
    void set_cpu_slowdown(NodeId id, double factor);

    /// Deterministic flapping schedule: starting at `start`, move every
    /// node of `site` into partition cell `cell` for `isolated_for`, back
    /// into cell 0 for `joined_for`, repeated `cycles` times.  All
    /// transitions are scheduled up front from the arguments alone.
    void schedule_flap(SiteId site, SimTime start, int cycles, SimDuration isolated_for,
                       SimDuration joined_for, int cell);

    [[nodiscard]] const Topology& topology() const { return topology_; }
    [[nodiscard]] const NetworkStats& stats() const { return stats_; }
    [[nodiscard]] Scheduler& scheduler() { return *scheduler_; }

    /// The world's metrics registry.  The network owns it because every
    /// other layer (CPU queues, ORBs, endpoints, invocation services)
    /// already reaches the network; one registry per simulated world keeps
    /// concurrent worlds in one process isolated and runs reproducible.
    [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
    [[nodiscard]] const obs::MetricsRegistry& metrics() const { return metrics_; }

    /// Sample every registered gauge (holdback depth, send credits, CPU
    /// backlog, directory size, ...) every `interval`, for `horizon` of sim
    /// time starting now.  All ticks are scheduled up front so the event
    /// queue still drains — a self-rescheduling tick would keep an
    /// otherwise-finished simulation alive forever.
    void enable_gauge_sampling(SimDuration interval, SimDuration horizon);

private:
    struct LinkCounterNames {
        std::string messages;
        std::string bytes;
        std::string drops;
    };
    const LinkCounterNames& link_counters(SiteId from, SiteId to);

    static std::pair<SiteId, SiteId> ordered_sites(SiteId a, SiteId b) {
        return a < b ? std::pair{a, b} : std::pair{b, a};
    }

    Scheduler* scheduler_;
    Topology topology_;
    Rng rng_;
    double extra_loss_{0.0};
    // Installed degradation overlays, keyed by ordered site pair.  Empty in
    // a healthy world, so the hot send path pays one branch.
    std::map<std::pair<SiteId, SiteId>, LinkDegrade> degraded_links_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<int> partition_cell_;
    // Arrival time of the previous message per (from, to), for FIFO links.
    std::map<std::pair<NodeId, NodeId>, SimTime> last_arrival_;
    NetworkStats stats_;
    obs::MetricsRegistry metrics_;
    // Cached per-(site, site) counter names; site pairs are few and the
    // send path is hot, so names are built once.
    std::map<std::pair<SiteId, SiteId>, LinkCounterNames> link_counter_names_;
};

}  // namespace newtop
