#include "net/network.hpp"

#include <algorithm>

#include "obs/names.hpp"
#include "util/check.hpp"

namespace newtop {

Network::Network(Scheduler& scheduler, Topology topology, std::uint64_t seed)
    : scheduler_(&scheduler), topology_(std::move(topology)), rng_(seed) {}

NodeId Network::add_node(SiteId site) {
    NEWTOP_EXPECTS(site.value() < topology_.site_count(), "unknown site");
    const NodeId id(static_cast<NodeId::rep_type>(nodes_.size()));
    nodes_.push_back(std::make_unique<Node>(id, site, *scheduler_));
    nodes_.back()->cpu().attach_metrics(&metrics_);
    // Nodes live as long as the network, so the gauge never dangles.
    Node* raw = nodes_.back().get();
    metrics_.register_gauge(obs::metric::kCpuBacklogUs, [raw](SimTime at) {
        return static_cast<std::uint64_t>(raw->cpu().backlog(at));
    });
    partition_cell_.push_back(0);
    return id;
}

void Network::enable_gauge_sampling(SimDuration interval, SimDuration horizon) {
    NEWTOP_EXPECTS(interval > 0, "sampling interval must be positive");
    NEWTOP_EXPECTS(horizon >= 0, "sampling horizon must be non-negative");
    for (SimDuration offset = interval; offset <= horizon; offset += interval) {
        scheduler_->schedule_after(offset,
                                   [this] { metrics_.sample_gauges(scheduler_->now()); });
    }
}

const Network::LinkCounterNames& Network::link_counters(SiteId from, SiteId to) {
    const auto key = std::make_pair(from, to);
    auto it = link_counter_names_.find(key);
    if (it == link_counter_names_.end()) {
        const std::string prefix = std::string(obs::metric::kNetLinkPrefix) + std::to_string(from.value()) + "->" +
                                   std::to_string(to.value());
        it = link_counter_names_
                 .emplace(key, LinkCounterNames{prefix + ".messages", prefix + ".bytes",
                                                prefix + ".drops"})
                 .first;
    }
    return it->second;
}

Node& Network::node(NodeId id) {
    NEWTOP_EXPECTS(id.value() < nodes_.size(), "unknown node");
    return *nodes_[id.value()];
}

const Node& Network::node(NodeId id) const {
    NEWTOP_EXPECTS(id.value() < nodes_.size(), "unknown node");
    return *nodes_[id.value()];
}

void Network::send(NodeId from, NodeId to, Bytes payload) {
    Node& src = node(from);
    Node& dst = node(to);
    if (src.crashed()) return;

    ++stats_.messages_sent;
    stats_.bytes_sent += payload.size();
    metrics_.add(obs::metric::kNetMessagesSent);
    metrics_.add(obs::metric::kNetBytesSent, payload.size());
    const LinkCounterNames& counters = link_counters(src.site(), dst.site());
    metrics_.add(counters.messages);
    metrics_.add(counters.bytes, payload.size());

    const LinkParams& link = topology_.link(src.site(), dst.site());
    if (src.site() != dst.site()) {
        ++stats_.wan_messages;
        metrics_.add(obs::metric::kNetWanMessages);
    }

    // The extra-loss draw only happens while a burst is active, so runs
    // without bursts consume an unchanged random stream.
    if (rng_.next_bool(link.loss) || (extra_loss_ > 0.0 && rng_.next_bool(extra_loss_))) {
        ++stats_.messages_lost;
        metrics_.add(obs::metric::kNetMessagesLost);
        metrics_.add(counters.drops);
        return;
    }

    SimDuration delay = link.latency;
    if (link.jitter > 0) delay += rng_.next_in_signed(0, link.jitter);
    if (link.bytes_per_us > 0.0) {
        delay += static_cast<SimDuration>(static_cast<double>(payload.size()) / link.bytes_per_us);
    }

    // FIFO per (from, to): arrival may not precede the previous arrival.
    SimTime arrival = scheduler_->now() + delay;
    auto& last = last_arrival_[{from, to}];
    arrival = std::max(arrival, last);
    last = arrival;

    // Stamp the message with the destination's current life.  If the
    // destination crashes and restarts while the message is in flight, the
    // delivery is addressed to a process that no longer exists and must be
    // dropped — the reborn process is a fresh group member that never saw
    // the old connection.
    const std::uint32_t dst_incarnation = dst.incarnation();
    const SimTime sent_at = scheduler_->now();
    scheduler_->schedule_at(arrival, [this, from, to, sent_at, dst_incarnation,
                                      counters = &counters,
                                      payload = std::move(payload)]() mutable {
        if (partition_cell_[from.value()] != partition_cell_[to.value()]) {
            ++stats_.messages_lost;
            metrics_.add(obs::metric::kNetMessagesLost);
            metrics_.add(counters->drops);
            return;
        }
        Node& receiver = node(to);
        if (receiver.crashed()) {
            ++stats_.messages_lost;
            metrics_.add(obs::metric::kNetMessagesLost);
            metrics_.add(counters->drops);
            return;
        }
        if (receiver.incarnation() != dst_incarnation) {
            ++stats_.messages_lost;
            metrics_.add(obs::metric::kNetMessagesLost);
            metrics_.add(obs::metric::kNetStaleIncarnationDrops);
            metrics_.add(counters->drops);
            return;
        }
        ++stats_.messages_delivered;
        metrics_.add(obs::metric::kNetMessagesDelivered);
        metrics_.observe(obs::metric::kNetDeliveryLatencyUs, scheduler_->now() - sent_at);
        receiver.deliver(from, std::move(payload));
    });
}

void Network::crash(NodeId id) {
    Node& n = node(id);
    if (n.crashed()) {
        metrics_.add(obs::metric::kNetCrashIgnored);
        return;
    }
    n.crash();
    metrics_.add(obs::metric::kNetCrashes);
}

void Network::restart(NodeId id, SimDuration delay) {
    NEWTOP_EXPECTS(delay >= 0, "restart delay must be non-negative");
    NEWTOP_EXPECTS(id.value() < nodes_.size(), "unknown node");
    scheduler_->schedule_after(delay, [this, id] {
        if (node(id).restart()) {
            metrics_.add(obs::metric::kNetRestarts);
        } else {
            metrics_.add(obs::metric::kNetRestartIgnored);
        }
    });
}

void Network::set_partition(NodeId id, int cell) {
    NEWTOP_EXPECTS(id.value() < nodes_.size(), "unknown node");
    partition_cell_[id.value()] = cell;
}

void Network::partition_site(SiteId site, int cell) {
    for (const auto& n : nodes_) {
        if (n->site() == site) partition_cell_[n->id().value()] = cell;
    }
}

void Network::heal() { std::fill(partition_cell_.begin(), partition_cell_.end(), 0); }

void Network::set_extra_loss(double p) { extra_loss_ = std::clamp(p, 0.0, 1.0); }

}  // namespace newtop
