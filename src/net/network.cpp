#include "net/network.hpp"

#include <algorithm>

#include "obs/names.hpp"
#include "util/check.hpp"

namespace newtop {

Network::Network(Scheduler& scheduler, Topology topology, std::uint64_t seed)
    : scheduler_(&scheduler), topology_(std::move(topology)), rng_(seed) {}

NodeId Network::add_node(SiteId site) {
    NEWTOP_EXPECTS(site.value() < topology_.site_count(), "unknown site");
    const NodeId id(static_cast<NodeId::rep_type>(nodes_.size()));
    nodes_.push_back(std::make_unique<Node>(id, site, *scheduler_));
    nodes_.back()->cpu().attach_metrics(&metrics_);
    // Nodes live as long as the network, so the gauge never dangles.
    Node* raw = nodes_.back().get();
    metrics_.register_gauge(obs::metric::kCpuBacklogUs, [raw](SimTime at) {
        return static_cast<std::uint64_t>(raw->cpu().backlog(at));
    });
    partition_cell_.push_back(0);
    return id;
}

void Network::enable_gauge_sampling(SimDuration interval, SimDuration horizon) {
    NEWTOP_EXPECTS(interval > 0, "sampling interval must be positive");
    NEWTOP_EXPECTS(horizon >= 0, "sampling horizon must be non-negative");
    for (SimDuration offset = interval; offset <= horizon; offset += interval) {
        scheduler_->schedule_after(offset,
                                   [this] { metrics_.sample_gauges(scheduler_->now()); });
    }
}

const Network::LinkCounterNames& Network::link_counters(SiteId from, SiteId to) {
    const auto key = std::make_pair(from, to);
    auto it = link_counter_names_.find(key);
    if (it == link_counter_names_.end()) {
        const std::string prefix = std::string(obs::metric::kNetLinkPrefix) + std::to_string(from.value()) + "->" +
                                   std::to_string(to.value());
        it = link_counter_names_
                 .emplace(key, LinkCounterNames{prefix + ".messages", prefix + ".bytes",
                                                prefix + ".drops"})
                 .first;
    }
    return it->second;
}

Node& Network::node(NodeId id) {
    NEWTOP_EXPECTS(id.value() < nodes_.size(), "unknown node");
    return *nodes_[id.value()];
}

const Node& Network::node(NodeId id) const {
    NEWTOP_EXPECTS(id.value() < nodes_.size(), "unknown node");
    return *nodes_[id.value()];
}

void Network::send(NodeId from, NodeId to, Bytes payload) {
    Node& src = node(from);
    Node& dst = node(to);
    if (src.crashed()) return;

    ++stats_.messages_sent;
    stats_.bytes_sent += payload.size();
    metrics_.add(obs::metric::kNetMessagesSent);
    metrics_.add(obs::metric::kNetBytesSent, payload.size());
    const LinkCounterNames& counters = link_counters(src.site(), dst.site());
    metrics_.add(counters.messages);
    metrics_.add(counters.bytes, payload.size());

    const LinkParams& link = topology_.link(src.site(), dst.site());
    if (src.site() != dst.site()) {
        ++stats_.wan_messages;
        metrics_.add(obs::metric::kNetWanMessages);
    }

    const LinkDegrade* degrade = nullptr;
    if (!degraded_links_.empty()) {
        const auto it = degraded_links_.find(ordered_sites(src.site(), dst.site()));
        if (it != degraded_links_.end()) degrade = &it->second;
    }

    // The extra-loss and degrade draws only happen while a burst/overlay is
    // active, so runs without them consume an unchanged random stream.
    if (rng_.next_bool(link.loss) || (extra_loss_ > 0.0 && rng_.next_bool(extra_loss_)) ||
        (degrade != nullptr && degrade->extra_loss > 0.0 &&
         rng_.next_bool(degrade->extra_loss))) {
        ++stats_.messages_lost;
        metrics_.add(obs::metric::kNetMessagesLost);
        metrics_.add(counters.drops);
        return;
    }

    SimDuration delay = link.latency;
    if (degrade != nullptr) delay += degrade->extra_latency;
    if (link.jitter > 0) delay += rng_.next_in_signed(0, link.jitter);
    if (degrade != nullptr && degrade->extra_jitter > 0) {
        delay += rng_.next_in_signed(0, degrade->extra_jitter);
    }
    double bandwidth = link.bytes_per_us;
    if (degrade != nullptr) bandwidth *= degrade->bandwidth_factor;
    if (bandwidth > 0.0) {
        delay += static_cast<SimDuration>(static_cast<double>(payload.size()) / bandwidth);
    }

    // FIFO per (from, to): arrival may not precede the previous arrival.
    SimTime arrival = scheduler_->now() + delay;
    auto& last = last_arrival_[{from, to}];
    arrival = std::max(arrival, last);
    last = arrival;

    // Stamp the message with the destination's current life.  If the
    // destination crashes and restarts while the message is in flight, the
    // delivery is addressed to a process that no longer exists and must be
    // dropped — the reborn process is a fresh group member that never saw
    // the old connection.
    const std::uint32_t dst_incarnation = dst.incarnation();
    const SimTime sent_at = scheduler_->now();
    scheduler_->schedule_at(arrival, [this, from, to, sent_at, dst_incarnation,
                                      counters = &counters,
                                      payload = std::move(payload)]() mutable {
        if (partition_cell_[from.value()] != partition_cell_[to.value()]) {
            ++stats_.messages_lost;
            metrics_.add(obs::metric::kNetMessagesLost);
            metrics_.add(counters->drops);
            return;
        }
        Node& receiver = node(to);
        if (receiver.crashed()) {
            ++stats_.messages_lost;
            metrics_.add(obs::metric::kNetMessagesLost);
            metrics_.add(counters->drops);
            return;
        }
        if (receiver.incarnation() != dst_incarnation) {
            ++stats_.messages_lost;
            metrics_.add(obs::metric::kNetMessagesLost);
            metrics_.add(obs::metric::kNetStaleIncarnationDrops);
            metrics_.add(counters->drops);
            return;
        }
        ++stats_.messages_delivered;
        metrics_.add(obs::metric::kNetMessagesDelivered);
        metrics_.observe(obs::metric::kNetDeliveryLatencyUs, scheduler_->now() - sent_at);
        receiver.deliver(from, std::move(payload));
    });
}

void Network::crash(NodeId id) {
    Node& n = node(id);
    if (n.crashed()) {
        metrics_.add(obs::metric::kNetCrashIgnored);
        return;
    }
    n.crash();
    metrics_.add(obs::metric::kNetCrashes);
}

void Network::restart(NodeId id, SimDuration delay) {
    NEWTOP_EXPECTS(delay >= 0, "restart delay must be non-negative");
    NEWTOP_EXPECTS(id.value() < nodes_.size(), "unknown node");
    scheduler_->schedule_after(delay, [this, id] {
        if (node(id).restart()) {
            metrics_.add(obs::metric::kNetRestarts);
        } else {
            metrics_.add(obs::metric::kNetRestartIgnored);
        }
    });
}

void Network::set_partition(NodeId id, int cell) {
    NEWTOP_EXPECTS(id.value() < nodes_.size(), "unknown node");
    partition_cell_[id.value()] = cell;
}

void Network::partition_site(SiteId site, int cell) {
    for (const auto& n : nodes_) {
        if (n->site() == site) partition_cell_[n->id().value()] = cell;
    }
}

void Network::heal() { std::fill(partition_cell_.begin(), partition_cell_.end(), 0); }

void Network::set_extra_loss(double p) { extra_loss_ = std::clamp(p, 0.0, 1.0); }

void Network::set_extra_loss(SiteId a, SiteId b, double p) {
    LinkDegrade degrade;
    if (const LinkDegrade* existing = link_degrade(a, b); existing != nullptr) {
        degrade = *existing;
    }
    degrade.extra_loss = std::clamp(p, 0.0, 1.0);
    set_link_degrade(a, b, degrade);
}

void Network::set_link_degrade(SiteId a, SiteId b, const LinkDegrade& degrade) {
    NEWTOP_EXPECTS(a.value() < topology_.site_count() && b.value() < topology_.site_count(),
                   "unknown site");
    NEWTOP_EXPECTS(degrade.extra_latency >= 0 && degrade.extra_jitter >= 0,
                   "degrade latency/jitter must be non-negative");
    NEWTOP_EXPECTS(degrade.bandwidth_factor > 0.0 && degrade.bandwidth_factor <= 1.0,
                   "bandwidth factor must be in (0, 1]");
    NEWTOP_EXPECTS(degrade.extra_loss >= 0.0 && degrade.extra_loss <= 1.0,
                   "extra loss must be a probability");
    const auto key = ordered_sites(a, b);
    if (degrade == LinkDegrade{}) {
        degraded_links_.erase(key);
    } else {
        degraded_links_[key] = degrade;
    }
}

void Network::clear_link_degrade(SiteId a, SiteId b) {
    degraded_links_.erase(ordered_sites(a, b));
}

const LinkDegrade* Network::link_degrade(SiteId a, SiteId b) const {
    const auto it = degraded_links_.find(ordered_sites(a, b));
    return it == degraded_links_.end() ? nullptr : &it->second;
}

void Network::set_cpu_slowdown(NodeId id, double factor) {
    node(id).cpu().set_slowdown(factor);
}

void Network::schedule_flap(SiteId site, SimTime start, int cycles, SimDuration isolated_for,
                            SimDuration joined_for, int cell) {
    NEWTOP_EXPECTS(site.value() < topology_.site_count(), "unknown site");
    NEWTOP_EXPECTS(cycles >= 1, "flap schedule needs at least one cycle");
    NEWTOP_EXPECTS(isolated_for > 0 && joined_for > 0, "degenerate flap periods");
    NEWTOP_EXPECTS(cell != 0, "flap cell must differ from the connected cell");
    SimTime at = start;
    for (int c = 0; c < cycles; ++c) {
        scheduler_->schedule_at(at, [this, site, cell] { partition_site(site, cell); });
        scheduler_->schedule_at(at + isolated_for, [this, site] { partition_site(site, 0); });
        at += isolated_for + joined_for;
    }
}

}  // namespace newtop
