#include "net/node.hpp"

// Node is header-only today; this translation unit anchors the type for the
// library target and future out-of-line growth.
