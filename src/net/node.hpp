// A simulated host.
//
// A node bundles an identity, a location (site), a single-server CPU and a
// message receiver.  The network delivers raw bytes to the receiver; what
// runs on top (the ORB) decides how much CPU each message costs.
#pragma once

#include <functional>

#include "net/ids.hpp"
#include "sim/cpu_queue.hpp"
#include "util/bytes.hpp"

namespace newtop {

class Node {
public:
    using Receiver = std::function<void(NodeId from, const Bytes& payload)>;

    Node(NodeId id, SiteId site, Scheduler& scheduler)
        : id_(id), site_(site), cpu_(scheduler) {}

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    [[nodiscard]] NodeId id() const { return id_; }
    [[nodiscard]] SiteId site() const { return site_; }
    [[nodiscard]] bool crashed() const { return crashed_; }

    CpuQueue& cpu() { return cpu_; }

    /// Install the message handler.  A node without a receiver drops
    /// everything delivered to it.
    void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

    /// Called by the network at message-arrival time.
    void deliver(NodeId from, const Bytes& payload) {
        if (!crashed_ && receiver_) receiver_(from, payload);
    }

    /// Crash-stop the node: pending CPU work is dropped and all future
    /// deliveries are discarded.  There is no recovery — a restarted
    /// process would rejoin as a fresh group member, matching the paper's
    /// crash-stop failure model.
    void crash() {
        crashed_ = true;
        cpu_.kill();
    }

private:
    NodeId id_;
    SiteId site_;
    CpuQueue cpu_;
    Receiver receiver_;
    bool crashed_{false};
};

}  // namespace newtop
