// A simulated host.
//
// A node bundles an identity, a location (site), a single-server CPU and a
// message receiver.  The network delivers raw bytes to the receiver; what
// runs on top (the ORB) decides how much CPU each message costs.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "net/ids.hpp"
#include "sim/cpu_queue.hpp"
#include "util/bytes.hpp"

namespace newtop {

class Node {
public:
    /// The payload is handed over by value: the receiver owns the wire
    /// buffer and may keep, move, or recycle it (the ORB pools retired
    /// buffers for its next encode).
    using Receiver = std::function<void(NodeId from, Bytes payload)>;
    using RestartHook = std::function<void()>;

    Node(NodeId id, SiteId site, Scheduler& scheduler)
        : id_(id), site_(site), scheduler_(&scheduler), cpu_(scheduler) {}

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    [[nodiscard]] NodeId id() const { return id_; }
    [[nodiscard]] SiteId site() const { return site_; }
    [[nodiscard]] bool crashed() const { return crashed_; }

    /// Which life of this host is currently running.  Bumped by restart();
    /// the network stamps every message with the destination's incarnation
    /// at send time and drops deliveries addressed to an earlier life.
    [[nodiscard]] std::uint32_t incarnation() const { return incarnation_; }

    /// When the most recent crash happened, or -1 if the node never
    /// crashed.  Recovery code reads this to compute crash→recovered MTTR.
    [[nodiscard]] SimTime crashed_at() const { return crashed_at_; }

    CpuQueue& cpu() { return cpu_; }

    /// Install the message handler.  A node without a receiver drops
    /// everything delivered to it.
    void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

    /// Install a hook that runs after each successful restart(), once the
    /// node is live again with a bumped incarnation and an empty receiver.
    /// Recovery code uses it to build a fresh process image (a new ORB that
    /// re-wires the receiver, a new GCS endpoint, re-registered servants).
    void set_restart_hook(RestartHook hook) { restart_hook_ = std::move(hook); }

    /// Called by the network at message-arrival time.
    void deliver(NodeId from, Bytes payload) {
        if (!crashed_ && receiver_) receiver_(from, std::move(payload));
    }

    /// Crash-stop the node: pending CPU work is dropped and all future
    /// deliveries are discarded.  The process is gone for good — if the
    /// host restart()s, it comes back as a *fresh* process (new
    /// incarnation, no receiver) that must rejoin groups from scratch,
    /// matching the paper's crash-stop failure model.
    void crash() {
        crashed_ = true;
        crashed_at_ = scheduler_->now();
        cpu_.kill();
    }

    /// Bring a crashed host back: bump the incarnation, revive the CPU with
    /// an empty queue, and clear the receiver (the dead process's handler
    /// must not see new-life traffic).  Runs the restart hook so recovery
    /// code can stand up a new process image.  Returns false (and does
    /// nothing) if the node is not crashed.
    bool restart() {
        if (!crashed_) return false;
        crashed_ = false;
        ++incarnation_;
        receiver_ = nullptr;
        cpu_.revive();
        if (restart_hook_) restart_hook_();
        return true;
    }

private:
    NodeId id_;
    SiteId site_;
    Scheduler* scheduler_;
    CpuQueue cpu_;
    Receiver receiver_;
    RestartHook restart_hook_;
    bool crashed_{false};
    std::uint32_t incarnation_{0};
    SimTime crashed_at_{-1};
};

}  // namespace newtop
