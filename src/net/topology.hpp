// Network topology: sites and the link characteristics between them.
//
// The model is site-based: any two nodes within a site communicate over the
// site's local link (LAN); nodes at different sites use the inter-site link
// (WAN).  This mirrors the paper's setup — machines on the Newcastle LAN
// plus Internet paths Newcastle/London/Pisa.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/ids.hpp"
#include "util/time.hpp"

namespace newtop {

/// Characteristics of one directionless link.
struct LinkParams {
    /// One-way propagation latency.
    SimDuration latency{0};
    /// Maximum additional uniformly-distributed one-way jitter.
    SimDuration jitter{0};
    /// Probability that a message is silently lost in transit.
    double loss{0.0};
    /// Throughput in bytes per microsecond (e.g. 100 Mbit/s = 12.5).
    /// Zero means "infinite" (no serialization delay).
    double bytes_per_us{0.0};
};

class Topology {
public:
    /// Register a site.  Its intra-site (LAN) link defaults to `local`.
    SiteId add_site(std::string name, LinkParams local);

    /// Set the WAN link between two distinct sites (symmetric).
    void set_link(SiteId a, SiteId b, LinkParams params);

    /// Link parameters between two sites (either order); a == b gives the
    /// intra-site LAN link.  Throws if the pair was never configured.
    [[nodiscard]] const LinkParams& link(SiteId a, SiteId b) const;

    [[nodiscard]] const std::string& site_name(SiteId site) const;
    [[nodiscard]] std::size_t site_count() const { return sites_.size(); }

private:
    struct Site {
        std::string name;
        LinkParams local;
    };

    static std::pair<SiteId, SiteId> ordered(SiteId a, SiteId b);

    std::vector<Site> sites_;
    std::map<std::pair<SiteId, SiteId>, LinkParams> wan_links_;
};

}  // namespace newtop
