// Calibration constants anchoring the simulation to the paper's testbed.
//
// The paper's testbed was Pentium/Linux hosts with omniORB2 on a 100 Mbit
// LAN (Newcastle) and Internet paths to London and Pisa.  The surviving
// quantitative anchors in the text are:
//   * a plain CORBA call on the LAN takes about 1 ms round trip,
//   * a call through the NewTop service costs about 2.5x that (2.5 ms LAN,
//     29 ms Internet),
//   * on the LAN a single client saturates a server; over the Internet
//     throughput keeps rising as clients are added.
// The constants below are chosen so the simulated system reproduces those
// anchors; EXPERIMENTS.md records measured-vs-paper for each experiment.
#pragma once

#include "net/topology.hpp"
#include "util/time.hpp"

namespace newtop::calibration {

using namespace sim_literals;

// -- Link characteristics ---------------------------------------------------

/// Intra-site fast-Ethernet LAN: ~100 Mbit/s, sub-millisecond latency.
inline LinkParams lan_link() {
    return LinkParams{.latency = 250_us, .jitter = 30_us, .loss = 0.0, .bytes_per_us = 12.5};
}

/// Newcastle <-> London Internet path.
inline LinkParams newcastle_london_link() {
    return LinkParams{.latency = 3500_us, .jitter = 300_us, .loss = 0.0, .bytes_per_us = 1.0};
}

/// Newcastle <-> Pisa Internet path.
inline LinkParams newcastle_pisa_link() {
    return LinkParams{.latency = 5200_us, .jitter = 500_us, .loss = 0.0, .bytes_per_us = 1.0};
}

/// London <-> Pisa Internet path.
inline LinkParams london_pisa_link() {
    return LinkParams{.latency = 4600_us, .jitter = 450_us, .loss = 0.0, .bytes_per_us = 1.0};
}

// -- Host processing costs ----------------------------------------------------
// These model the omniORB2-era CPU costs per invocation leg: a fixed
// per-call cost (dispatch, demultiplexing, system calls) plus a per-byte
// cost, so small control messages (acks, nulls) are proportionally cheap.

/// Fixed CPU cost of marshalling/unmarshalling one message.
inline constexpr SimDuration kPerMessageCost = 75_us;

/// Additional CPU cost per payload byte.
inline constexpr double kPerByteCost = 0.15;

/// CPU cost of marshalling a message of `bytes` onto the wire.
inline SimDuration marshal_cost(std::size_t bytes) {
    return kPerMessageCost + static_cast<SimDuration>(static_cast<double>(bytes) * kPerByteCost);
}

/// CPU cost of unmarshalling + dispatching a received message.
inline SimDuration unmarshal_cost(std::size_t bytes) {
    return kPerMessageCost + static_cast<SimDuration>(static_cast<double>(bytes) * kPerByteCost);
}

/// Cost of a colocated hand-off between an application object and its NSO
/// (messages m1/m6 and m3/m4 in fig. 9 — still ORB invocations, but no
/// wire traffic).
inline constexpr SimDuration kLocalHandoffCost = 40_us;

/// CPU cost of the group-communication protocol logic per message
/// (ordering bookkeeping, stability tracking).
inline constexpr SimDuration kProtocolCost = 30_us;

/// Servant work for the paper's benchmark service (a pseudo-random-number
/// generator — "negligible computation time").
inline constexpr SimDuration kTrivialServantCost = 20_us;

// -- Topology builders --------------------------------------------------------

/// The three sites used throughout the paper's evaluation.
struct PaperSites {
    Topology topology;
    SiteId newcastle;
    SiteId london;
    SiteId pisa;
};

/// Build the Newcastle/London/Pisa topology with calibrated links.
inline PaperSites make_paper_topology() {
    PaperSites s{Topology{}, SiteId{}, SiteId{}, SiteId{}};
    s.newcastle = s.topology.add_site("Newcastle", lan_link());
    s.london = s.topology.add_site("London", lan_link());
    s.pisa = s.topology.add_site("Pisa", lan_link());
    s.topology.set_link(s.newcastle, s.london, newcastle_london_link());
    s.topology.set_link(s.newcastle, s.pisa, newcastle_pisa_link());
    s.topology.set_link(s.london, s.pisa, london_pisa_link());
    return s;
}

/// A single-LAN topology (all nodes in one site).
inline Topology make_lan_topology() {
    Topology t;
    t.add_site("LAN", lan_link());
    return t;
}

}  // namespace newtop::calibration
