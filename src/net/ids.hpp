// Identifier vocabulary for the network layer.
#pragma once

#include <cstdint>

#include "util/strong_id.hpp"

namespace newtop {

struct SiteIdTag {};
struct NodeIdTag {};

/// A geographic site (e.g. the Newcastle LAN, London, Pisa).  Links between
/// sites model WAN paths; links within a site model the local LAN.
using SiteId = StrongId<SiteIdTag, std::uint32_t>;

/// A single simulated host.
using NodeId = StrongId<NodeIdTag, std::uint32_t>;

}  // namespace newtop
