// Deterministic pseudo-random number generation.
//
// All randomness in the simulator (link jitter, message loss, workload
// think times) flows through one seeded generator so every experiment and
// every property test is exactly reproducible from its seed.
#pragma once

#include <cstdint>

namespace newtop {

/// xoshiro256** seeded via splitmix64.  Small, fast, and good enough for
/// simulation; deliberately not cryptographic.
class Rng {
public:
    explicit Rng(std::uint64_t seed);

    /// Uniform 64-bit value.
    std::uint64_t next_u64();

    /// Uniform double in [0, 1).
    double next_double();

    /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
    std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

    /// Uniform signed integer in [lo, hi] inclusive.  Requires lo <= hi.
    std::int64_t next_in_signed(std::int64_t lo, std::int64_t hi);

    /// True with probability `p` (clamped to [0, 1]).
    bool next_bool(double p);

    /// A fresh generator whose seed derives from this one's stream; useful
    /// for giving each simulated component an independent stream.
    Rng split();

private:
    std::uint64_t state_[4];
};

}  // namespace newtop
