#include "util/log.hpp"

#include <cstdlib>
#include <iostream>
#include <string>

namespace newtop {

namespace {

LogLevel level_from_env() {
    const char* env = std::getenv("NEWTOP_LOG_LEVEL");
    if (env == nullptr) return LogLevel::kOff;
    const std::string value(env);
    if (value == "trace") return LogLevel::kTrace;
    if (value == "debug") return LogLevel::kDebug;
    if (value == "info") return LogLevel::kInfo;
    if (value == "warn") return LogLevel::kWarn;
    if (value == "error") return LogLevel::kError;
    return LogLevel::kOff;
}

LogLevel g_level = level_from_env();
std::function<void(LogLevel, const std::string&)> g_sink;

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kTrace: return "TRACE";
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}

}  // namespace

LogLevel Log::level() { return g_level; }

void Log::set_level(LogLevel level) { g_level = level; }

void Log::set_sink(std::function<void(LogLevel, const std::string&)> sink) {
    g_sink = std::move(sink);
}

void Log::write(LogLevel level, const std::string& message) {
    if (g_sink) {
        g_sink(level, message);
    } else {
        std::cerr << "[" << level_name(level) << "] " << message << '\n';
    }
}

}  // namespace newtop
