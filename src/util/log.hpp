// Minimal leveled logging.
//
// The simulator is deterministic, so logs are primarily a debugging aid for
// protocol traces; they are off by default and routed through a single sink
// so tests can capture them.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace newtop {

enum class LogLevel : std::uint8_t { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log configuration.  Not thread-safe by design: the whole
/// library runs single-threaded inside the discrete-event simulation.
class Log {
public:
    static LogLevel level();
    static void set_level(LogLevel level);

    /// Replace the sink (default writes to stderr).  Pass nullptr to restore
    /// the default.
    static void set_sink(std::function<void(LogLevel, const std::string&)> sink);

    static void write(LogLevel level, const std::string& message);
};

}  // namespace newtop

#define NEWTOP_LOG(lvl, expr)                                            \
    do {                                                                 \
        if (static_cast<int>(lvl) >= static_cast<int>(::newtop::Log::level())) { \
            std::ostringstream newtop_log_os;                            \
            newtop_log_os << expr;                                       \
            ::newtop::Log::write(lvl, newtop_log_os.str());              \
        }                                                                \
    } while (false)

#define NEWTOP_TRACE(expr) NEWTOP_LOG(::newtop::LogLevel::kTrace, expr)
#define NEWTOP_DEBUG(expr) NEWTOP_LOG(::newtop::LogLevel::kDebug, expr)
#define NEWTOP_INFO(expr) NEWTOP_LOG(::newtop::LogLevel::kInfo, expr)
#define NEWTOP_WARN(expr) NEWTOP_LOG(::newtop::LogLevel::kWarn, expr)
