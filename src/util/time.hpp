// Simulated time.
//
// All timestamps and durations in the simulation are integral microseconds.
// Integral time keeps event ordering exact and results bit-reproducible
// across platforms (no floating-point accumulation drift).
//
// Lives in util/ (not sim/) because every layer — including obs, which sim
// itself depends on for metrics — needs the time vocabulary; keeping it here
// keeps the layer graph acyclic (see tools/lint_rules.hpp).
#pragma once

#include <cstdint>

namespace newtop {

/// A point in simulated time, in microseconds since simulation start.
using SimTime = std::int64_t;

/// A span of simulated time, in microseconds.
using SimDuration = std::int64_t;

namespace sim_literals {
constexpr SimDuration operator""_us(unsigned long long v) { return static_cast<SimDuration>(v); }
constexpr SimDuration operator""_ms(unsigned long long v) { return static_cast<SimDuration>(v) * 1000; }
constexpr SimDuration operator""_s(unsigned long long v) { return static_cast<SimDuration>(v) * 1000000; }
}  // namespace sim_literals

/// Convert a simulated duration to fractional milliseconds (for reporting).
constexpr double to_ms(SimDuration d) { return static_cast<double>(d) / 1000.0; }

/// Convert a simulated duration to fractional seconds (for reporting).
constexpr double to_seconds(SimDuration d) { return static_cast<double>(d) / 1e6; }

}  // namespace newtop
