#include "util/rng.hpp"

#include "util/check.hpp"

namespace newtop {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
    for (auto& s : state_) s = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::next_double() {
    // 53 high bits -> [0, 1) with full double precision.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
    NEWTOP_EXPECTS(lo <= hi, "empty range");
    const std::uint64_t span = hi - lo;
    if (span == ~0ULL) return next_u64();
    // Modulo is fine here: simulation randomness does not need to be
    // bias-free to the last ulp.
    return lo + next_u64() % (span + 1);
}

std::int64_t Rng::next_in_signed(std::int64_t lo, std::int64_t hi) {
    NEWTOP_EXPECTS(lo <= hi, "empty range");
    const auto span = static_cast<std::uint64_t>(hi - lo);
    return lo + static_cast<std::int64_t>(span == ~0ULL ? next_u64() : next_u64() % (span + 1));
}

bool Rng::next_bool(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace newtop
