// Precondition / invariant checking helpers.
//
// The library throws on contract violations rather than aborting: protocol
// state machines are exercised heavily by property tests that need to
// observe failures, and callers of the public API get a catchable,
// descriptive error instead of a core dump.
#pragma once

#include <stdexcept>
#include <string>

namespace newtop {

/// Thrown when a caller violates an API precondition.
class PreconditionError : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

/// Thrown when an internal invariant is found broken (a library bug or
/// corrupted input, e.g. a malformed message off the wire).
class InvariantError : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void fail_precondition(const char* expr, const char* what) {
    throw PreconditionError(std::string("precondition failed: ") + expr + ": " + what);
}
[[noreturn]] inline void fail_invariant(const char* expr, const char* what) {
    throw InvariantError(std::string("invariant failed: ") + expr + ": " + what);
}
}  // namespace detail

}  // namespace newtop

/// Check a caller-facing precondition; throws PreconditionError on failure.
#define NEWTOP_EXPECTS(expr, what)                                  \
    do {                                                            \
        if (!(expr)) ::newtop::detail::fail_precondition(#expr, what); \
    } while (false)

/// Check an internal invariant; throws InvariantError on failure.
#define NEWTOP_ENSURES(expr, what)                                \
    do {                                                          \
        if (!(expr)) ::newtop::detail::fail_invariant(#expr, what); \
    } while (false)
