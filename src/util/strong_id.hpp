// Strongly-typed integral identifiers.
//
// Distributed-systems code juggles many kinds of small integer ids (nodes,
// sites, groups, views, calls...).  Using a distinct C++ type per id kind
// makes interfaces self-describing and turns accidental mix-ups into
// compile errors (C++ Core Guidelines I.4: make interfaces precisely and
// strongly typed).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace newtop {

/// A strongly-typed wrapper over an unsigned integer.
///
/// `Tag` is a phantom type distinguishing id kinds; `Rep` is the underlying
/// representation.  Ids are regular (copyable, totally ordered, hashable)
/// so they can key standard containers.
template <typename Tag, typename Rep = std::uint64_t>
class StrongId {
public:
    using rep_type = Rep;

    constexpr StrongId() = default;
    constexpr explicit StrongId(Rep value) : value_(value) {}

    [[nodiscard]] constexpr Rep value() const { return value_; }

    friend constexpr auto operator<=>(StrongId, StrongId) = default;

    friend std::ostream& operator<<(std::ostream& os, StrongId id) {
        return os << id.value_;
    }

private:
    Rep value_{0};
};

}  // namespace newtop

template <typename Tag, typename Rep>
struct std::hash<newtop::StrongId<Tag, Rep>> {
    std::size_t operator()(newtop::StrongId<Tag, Rep> id) const noexcept {
        return std::hash<Rep>{}(id.value());
    }
};
