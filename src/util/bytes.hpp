// Byte-buffer alias used for everything that crosses the simulated wire.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace newtop {

using Bytes = std::vector<std::uint8_t>;

/// A borrowed, read-only window into a byte buffer (e.g. a received wire
/// message).  Views never own storage: whoever holds the underlying Bytes
/// keeps it alive for the view's lifetime.
using BytesView = std::span<const std::uint8_t>;

}  // namespace newtop
