// Byte-buffer alias used for everything that crosses the simulated wire.
#pragma once

#include <cstdint>
#include <vector>

namespace newtop {

using Bytes = std::vector<std::uint8_t>;

}  // namespace newtop
