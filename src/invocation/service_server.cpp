// Server and request-manager side of the invocation layer (fig. 4):
// executing delivered requests, multicasting replies inside the server
// group, gathering them per invocation mode, and the §4.2 optimisations.
#include "invocation/service.hpp"

#include "net/calibration.hpp"
#include "obs/names.hpp"
#include "util/check.hpp"

namespace newtop {

std::size_t InvocationService::reply_threshold(InvocationMode mode, std::size_t servers) const {
    switch (mode) {
        case InvocationMode::kOneWay: return 0;
        case InvocationMode::kWaitFirst: return servers == 0 ? 0 : 1;
        case InvocationMode::kWaitMajority: return servers / 2 + 1;
        case InvocationMode::kWaitAll: return servers;
    }
    return servers;
}

bool InvocationService::shed_expired(const CallId& call, SimTime deadline,
                                     const obs::SpanContext& span) {
    if (deadline <= 0) return false;
    const SimTime now = orb_->scheduler().now();
    if (now <= deadline) return false;
    metrics().add(obs::metric::kInvShed);
    metrics().trace(obs::TraceKind::kRequestShed, now, endpoint_->id().value(), span, 0,
                    call.origin, call.seq);
    return true;
}

void InvocationService::execute_and(Served& served, const CallId& call, std::uint32_t method,
                                    Bytes args, obs::SpanContext parent, SimTime deadline,
                                    std::function<void(ReplyEnv)> done) {
    // The delivered request crosses the colocated boundary into the
    // application object (fig. 9's m3/m4) and consumes servant CPU.
    const SimDuration cost =
        calibration::kLocalHandoffCost + served.servant->execution_cost(method);
    auto servant = served.servant;
    const EndpointId self = endpoint_->id();
    // The replica's execution span: child of whichever span shipped the
    // request here (client, manager forward, ...).  Rides back in the reply
    // so the collector can record which execution each reply came from.
    const obs::SpanContext exec{parent.trace,
                                obs::span_id(parent.trace, self.value(), obs::SpanRole::kServer)};
    // Emitted at *queue* time; the gap to kExecutionDone is CPU-queue wait
    // plus the execution itself, so the detail packs the pure execution cost
    // next to the call seq for the profiler to split the two.
    metrics().trace(obs::TraceKind::kExecutionBegun, orb_->scheduler().now(), self.value(), exec,
                    parent.span, call.origin,
                    obs::pack_execution_detail(static_cast<std::uint64_t>(cost), call.seq));
    orb_->network().node(orb_->node_id()).cpu().execute(
        cost, [this, servant, call, method, args = std::move(args), done = std::move(done), self,
               exec, parent, deadline] {
            // Second shed gate: the call may have expired while queued
            // behind other work on this (possibly slowed) node's CPU.
            if (shed_expired(call, deadline, exec)) return;
            ReplyEnv reply;
            reply.call = call;
            reply.span = exec;
            reply.replier = self;
            try {
                reply.value = servant->handle(method, args);
            } catch (const ServantError& err) {
                reply.ok = false;
                const std::string what = err.what();
                reply.value = Bytes(what.begin(), what.end());
            }
            metrics().trace(obs::TraceKind::kExecutionDone, orb_->scheduler().now(), self.value(),
                            exec, parent.span, call.origin, call.seq);
            done(std::move(reply));
        });
}

// -- closed mode ------------------------------------------------------------------
// Fig. 3(i): the client/server group contains the client and every server.
// Each server executes the totally-ordered request and multicasts its reply
// within the group — the client receives the replies directly from each
// server, and the group's ordering/liveness protocol now spans the client's
// (possibly high-latency) link, which is exactly the cost the paper's
// closed-vs-open comparison measures.

void InvocationService::handle_closed_request(Served& served, GroupId cs_group,
                                              const RequestEnv& request) {
    if (request.bind != BindMode::kClosed) return;

    // Retry suppression: answer repeated call numbers from the cache
    // without re-executing (§4.1).
    const auto cached = served.reply_cache.find(request.call.origin);
    if (cached != served.reply_cache.end()) {
        if (cached->second.call.seq == request.call.seq) {
            if (request.mode != InvocationMode::kOneWay &&
                endpoint_->is_member(cs_group)) {
                endpoint_->multicast(cs_group, encode_envelope(cached->second),
                                     cached->second.span);
            }
            return;
        }
        if (cached->second.call.seq > request.call.seq) return;  // stale duplicate
    }

    // First shed gate, at delivery: an expired request never even queues.
    if (shed_expired(request.call, request.deadline, request.span)) return;

    const InvocationMode mode = request.mode;
    execute_and(served, request.call, request.method, request.args, request.span,
                request.deadline, [this, &served, cs_group, mode](ReplyEnv reply) {
                    served.reply_cache[reply.call.origin] = reply;
                    if (mode == InvocationMode::kOneWay) return;
                    if (endpoint_->is_member(cs_group)) {
                        endpoint_->multicast(cs_group, encode_envelope(reply), reply.span);
                    }
                });
}

// -- open mode: the request-manager path -----------------------------------------

void InvocationService::handle_cs_request(Served& served, GroupId cs_group,
                                          const RequestEnv& request) {
    if (request.bind != BindMode::kOpen) return;

    if (request.call.group_origin) {
        // §4.3: the monitor group delivers one copy per client-group member;
        // forward only the first.
        if (!served.seen_group_calls.insert(request.call).second) return;
    } else {
        const auto cached = served.aggregate_cache.find(request.call.origin);
        if (cached != served.aggregate_cache.end()) {
            if (cached->second.call.seq == request.call.seq) {
                // A retry of a call we already answered (we may be a new
                // request manager after a rebind, with the aggregate arrived
                // via the server group's reply cache round).
                endpoint_->multicast(cs_group, encode_envelope(cached->second),
                                     cached->second.span);
                return;
            }
            if (cached->second.call.seq > request.call.seq) return;
        }
        if (served.collecting.contains(request.call)) return;  // duplicate in flight
    }

    // Expired before the manager even saw it (slow ordering, overload):
    // shed instead of fanning a doomed call out to the whole server group.
    if (shed_expired(request.call, request.deadline, request.span)) return;

    // This member becomes the call's request manager: open its manager span
    // as a child of the client span carried by the request.
    const obs::SpanContext manager_span{
        request.span.trace,
        obs::span_id(request.span.trace, endpoint_->id().value(), obs::SpanRole::kManager)};
    metrics().trace(obs::TraceKind::kRequestForwarded, orb_->scheduler().now(),
                    endpoint_->id().value(), manager_span, request.span.span,
                    request.call.origin, request.call.seq);

    ForwardEnv forward;
    forward.call = request.call;
    forward.span = manager_span;
    forward.mode = request.mode;
    forward.manager = endpoint_->id();
    forward.method = request.method;
    forward.args = request.args;
    forward.deadline = request.deadline;

    if (request.mode == InvocationMode::kOneWay) {
        endpoint_->multicast(served.server_group, encode_envelope(forward), manager_span);
        return;
    }

    if ((request.flags & kFlagAsyncForwarding) != 0 &&
        request.mode == InvocationMode::kWaitFirst) {
        // §4.2 "asynchronous message forwarding": execute here, reply to the
        // client at once, and push the request to the rest of the group
        // one-way.  With the restricted group this is the passive-
        // replication shape: manager = sequencer = primary.
        forward.flags = kFlagNoReply;
        endpoint_->multicast(served.server_group, encode_envelope(forward), manager_span);
        execute_and(served, request.call, request.method, request.args, manager_span,
                    request.deadline, [this, &served, cs_group, manager_span](ReplyEnv reply) {
                        served.reply_cache[reply.call.origin] = reply;
                        metrics().add(obs::metric::kInvRmRepliesCollected);
                        metrics().trace(obs::TraceKind::kReplyCollected,
                                        orb_->scheduler().now(), endpoint_->id().value(),
                                        manager_span, reply.span.span, reply.replier.value(),
                                        reply.call.seq);
                        AggregateEnv aggregate;
                        aggregate.call = reply.call;
                        aggregate.span = manager_span;
                        aggregate.complete = true;
                        aggregate.replies.push_back(
                            ReplyEntry{reply.replier, reply.ok, reply.value});
                        send_aggregate(served, reply.call, cs_group, std::move(aggregate));
                    });
        return;
    }

    Served::Collecting collecting;
    collecting.mode = request.mode;
    collecting.reply_group = cs_group;
    collecting.span = manager_span;
    served.collecting.emplace(request.call, std::move(collecting));
    endpoint_->multicast(served.server_group, encode_envelope(forward), manager_span);
}

void InvocationService::handle_forward(Served& served, const ForwardEnv& forward) {
    if ((forward.flags & kFlagNoReply) != 0) {
        // Passive-side forward: the manager already executed and replied.
        if (forward.manager == endpoint_->id()) return;
        const auto cached = served.reply_cache.find(forward.call.origin);
        if (cached != served.reply_cache.end() &&
            cached->second.call.seq >= forward.call.seq) {
            return;
        }
        if (shed_expired(forward.call, forward.deadline, forward.span)) return;
        execute_and(served, forward.call, forward.method, forward.args, forward.span,
                    forward.deadline, [&served](ReplyEnv reply) {
                        served.reply_cache[reply.call.origin] = reply;
                    });
        return;
    }

    // Replay from the cache without re-execution (rebind retries).
    if (!forward.call.group_origin) {
        const auto cached = served.reply_cache.find(forward.call.origin);
        if (cached != served.reply_cache.end()) {
            if (cached->second.call.seq == forward.call.seq) {
                endpoint_->multicast(served.server_group, encode_envelope(cached->second),
                                     cached->second.span);
                return;
            }
            if (cached->second.call.seq > forward.call.seq) return;
        }
    }

    if (shed_expired(forward.call, forward.deadline, forward.span)) return;

    const bool one_way = forward.mode == InvocationMode::kOneWay;
    execute_and(served, forward.call, forward.method, forward.args, forward.span,
                forward.deadline, [this, &served, one_way](ReplyEnv reply) {
                    served.reply_cache[reply.call.origin] = reply;
                    if (one_way) return;
                    // Fig. 4(iii): each member multicasts its reply within
                    // the server group; the request manager gathers them.
                    if (endpoint_->is_member(served.server_group)) {
                        endpoint_->multicast(served.server_group, encode_envelope(reply),
                                             reply.span);
                    }
                });
}

void InvocationService::handle_server_reply(Served& served, const ReplyEnv& reply) {
    const auto it = served.collecting.find(reply.call);
    if (it == served.collecting.end()) return;  // we are not this call's manager
    Served::Collecting& collecting = it->second;
    if (!collecting.repliers.insert(reply.replier).second) return;
    collecting.replies.push_back(ReplyEntry{reply.replier, reply.ok, reply.value});
    metrics().add(obs::metric::kInvRmRepliesCollected);
    metrics().trace(obs::TraceKind::kReplyCollected, orb_->scheduler().now(),
                    endpoint_->id().value(), collecting.span, reply.span.span,
                    reply.replier.value(), reply.call.seq);
    maybe_finish_collection(served, reply.call);
}

void InvocationService::maybe_finish_collection(Served& served, const CallId& call) {
    const auto it = served.collecting.find(call);
    if (it == served.collecting.end()) return;
    Served::Collecting& collecting = it->second;

    const View* view = endpoint_->current_view(served.server_group);
    const std::size_t servers = view == nullptr ? 0 : view->members.size();
    const std::size_t needed = reply_threshold(collecting.mode, servers);
    if (collecting.repliers.size() < needed || needed == 0) return;

    AggregateEnv aggregate;
    aggregate.call = call;
    aggregate.span = collecting.span;
    aggregate.complete = true;
    aggregate.replies = std::move(collecting.replies);
    const GroupId reply_group = collecting.reply_group;
    served.collecting.erase(it);
    send_aggregate(served, call, reply_group, std::move(aggregate));
}

void InvocationService::send_aggregate(Served& served, const CallId& call, GroupId reply_group,
                                       AggregateEnv aggregate) {
    if (!call.group_origin) served.aggregate_cache[call.origin] = aggregate;
    // End of the manager span: the gathered replies leave for the client.
    metrics().trace(obs::TraceKind::kAggregateSent, orb_->scheduler().now(),
                    endpoint_->id().value(), aggregate.span, 0, call.origin, call.seq);
    // The client (or the whole client group, §4.3) receives the replies as
    // one atomic multicast in the client/server (monitor) group.
    if (endpoint_->is_member(reply_group)) {
        endpoint_->multicast(reply_group, encode_envelope(aggregate), aggregate.span);
    }
}

}  // namespace newtop
