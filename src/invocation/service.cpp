// InvocationService: construction, serve(), and event routing.  The client
// side lives in service_client.cpp, the server/request-manager side in
// service_server.cpp.
#include "invocation/service.hpp"

#include "obs/names.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace newtop {

InvocationService::InvocationService(Orb& orb, GroupCommEndpoint& endpoint,
                                     Directory& directory)
    : orb_(&orb),
      endpoint_(&endpoint),
      directory_(&directory),
      // Seeded from the endpoint identity: deterministic per world, yet
      // distinct clients jitter their backoff retries differently.
      backoff_rng_(0x9e3779b97f4a7c15ULL ^ endpoint.id().value()) {}

obs::MetricsRegistry& InvocationService::metrics() const { return orb_->network().metrics(); }

// -- serve -----------------------------------------------------------------------

namespace {

std::string direct_object_name(const std::string& service, EndpointId member) {
    return "direct:" + service + ":" + std::to_string(member.value());
}

/// Exposes a GroupServant as a plain (non-replicated) ORB object, for
/// IOGR-style direct access to a single replica.
class DirectServant : public Servant {
public:
    explicit DirectServant(std::shared_ptr<GroupServant> app) : app_(std::move(app)) {}

    Bytes dispatch(std::uint32_t method, BytesView args) override {
        try {
            // GroupServant::handle owns its argument buffer (the ordered
            // path hands it an envelope copy); materialize the borrowed view.
            return app_->handle(method, Bytes(args.begin(), args.end()));
        } catch (const ServantError&) {
            throw;  // propagate as an ORB exception reply
        }
    }

    [[nodiscard]] SimDuration execution_cost(std::uint32_t method) const override {
        return app_->execution_cost(method);
    }

private:
    std::shared_ptr<GroupServant> app_;
};

}  // namespace

Iogr InvocationService::service_iogr(const Directory& directory, const std::string& service) {
    const Directory::GroupInfo* info = directory.find_group(service);
    NEWTOP_EXPECTS(info != nullptr, "unknown service");
    Iogr iogr;
    for (const EndpointId member : info->contact_hint) {
        const Ior* ior = directory.find_object(direct_object_name(service, member));
        if (ior != nullptr) iogr.members.push_back(*ior);
    }
    NEWTOP_EXPECTS(!iogr.members.empty(), "service has no directly invocable replicas");
    return iogr;
}

void InvocationService::serve(const std::string& service, const GroupConfig& config,
                              std::shared_ptr<GroupServant> servant) {
    NEWTOP_EXPECTS(servant != nullptr, "serve requires a servant");
    NEWTOP_EXPECTS(!served_.contains(service), "already serving this service");

    Served served;
    served.name = service;
    served.config = config;
    served.servant = std::move(servant);

    // Export the replica for IOGR-style direct invocation (§2.2).
    const Ior direct = orb_->adapter().activate(
        std::make_shared<DirectServant>(served.servant), service + ".direct");
    directory_->register_object(direct_object_name(service, endpoint_->id()), direct);

    // First server creates the group; later ones join.  A joiner adopts the
    // group's *current* config from the directory (kept fresh by runtime
    // reconfigurations), not its caller's creation-time copy — a replica
    // recovering after the group reconfigured must rejoin under the
    // policies the group actually runs (the install it receives is the
    // authority; this keeps the local record consistent with it).
    const Directory::GroupInfo* existing = directory_->find_group(service);
    if (existing == nullptr) {
        served.server_group = endpoint_->create_group(service, config);
    } else {
        served.config = existing->config;
        served.server_group = endpoint_->join_group(service);
    }

    served_index_[served.server_group] = service;
    served_.emplace(service, std::move(served));
}

bool InvocationService::serving(const std::string& service) const {
    const auto it = served_.find(service);
    return it != served_.end() && endpoint_->is_member(it->second.server_group);
}

InvocationService::Served* InvocationService::served_by_server_group(GroupId g) {
    const auto it = served_index_.find(g);
    if (it == served_index_.end()) return nullptr;
    return &served_.at(it->second);
}

// -- event routing ------------------------------------------------------------------

bool InvocationService::on_deliver(const GroupCommEndpoint::Delivery& delivery) {
    const bool known = served_index_.contains(delivery.group) ||
                       rm_index_.contains(delivery.group) ||
                       bindings_by_group_.contains(delivery.group);
    if (!known) return false;

    InvocationEnvelope env;
    try {
        env = decode_envelope(delivery.payload);
    } catch (const DecodeError& err) {
        NEWTOP_WARN("invocation: malformed envelope in group " << delivery.group << ": "
                                                               << err.what());
        return true;
    }

    std::visit(
        [&](auto&& body) {
            using T = std::decay_t<decltype(body)>;
            if constexpr (std::is_same_v<T, RequestEnv>) {
                if (const auto rm = rm_index_.find(delivery.group); rm != rm_index_.end()) {
                    Served& served = served_.at(rm->second.service);
                    if (body.bind == BindMode::kOpen) {
                        handle_cs_request(served, delivery.group, body);
                    } else {
                        handle_closed_request(served, delivery.group, body);
                    }
                }
                // The issuing client observes its own request echo: ignored.
            } else if constexpr (std::is_same_v<T, ForwardEnv>) {
                if (Served* served = served_by_server_group(delivery.group)) {
                    handle_forward(*served, body);
                }
            } else if constexpr (std::is_same_v<T, ReplyEnv>) {
                if (Served* served = served_by_server_group(delivery.group)) {
                    handle_server_reply(*served, body);
                } else if (Binding* b = binding_by_cs_group(delivery.group)) {
                    // Closed mode: each server's reply is multicast within
                    // the client/server group; the client gathers them.
                    collect_closed_reply(*b, body);
                }
                // Servers of a closed group also see each other's replies:
                // ignored (only the client collects).
            } else if constexpr (std::is_same_v<T, AggregateEnv>) {
                if (Binding* b = binding_by_cs_group(delivery.group)) {
                    handle_aggregate(*b, body);
                }
                // The request manager also hears its own aggregate: ignored.
            }
        },
        std::move(env));
    return true;
}

bool InvocationService::on_view_change(const GroupCommEndpoint::ViewChangeEvent& event) {
    const GroupId group = event.view.group;
    bool known = false;

    // A client/server group we serve: if the owning client vanished, the
    // group has no purpose — fold it up.
    if (const auto rm = rm_index_.find(group); rm != rm_index_.end()) {
        known = true;
        if (!event.view.contains(rm->second.owner)) {
            Served& served = served_.at(rm->second.service);
            std::erase_if(served.collecting,
                          [&](const auto& entry) { return entry.second.reply_group == group; });
            rm_index_.erase(group);
            if (endpoint_->is_member(group)) endpoint_->leave_group(group);
        }
    }

    if (served_index_.contains(group)) {
        known = true;
        // Server-group membership changed: reply thresholds may now be
        // reachable (a crashed member will never reply).
        Served& served = served_.at(served_index_.at(group));
        std::vector<CallId> calls;
        calls.reserve(served.collecting.size());
        for (const auto& [call, state] : served.collecting) calls.push_back(call);
        for (const CallId& call : calls) maybe_finish_collection(served, call);
    }

    // Client bindings watching this group.
    for (auto& [id, b] : bindings_) {
        if (b.cs_group != group) continue;
        known = true;
        if (b.options.mode == BindMode::kOpen) {
            if (b.state == Binding::State::kJoining && event.view.contains(b.manager) &&
                event.view.contains(endpoint_->id())) {
                binding_became_ready(b);
            } else if (b.state == Binding::State::kReady && !event.view.contains(b.manager)) {
                // The request manager failed or got disconnected: the
                // client/server group is disbanded and we rebind (§4.1).
                rebind(b);
            }
        } else {
            // Closed binding: the group *is* the replication boundary —
            // server failures shrink the view and are masked by adapting
            // the reply thresholds, no rebinding required.
            if (b.state == Binding::State::kJoining) check_closed_ready(b, event.view);
            reevaluate_closed_calls(b);
        }
        break;
    }
    return known;
}

bool InvocationService::on_removed(GroupId group) {
    if (rm_index_.erase(group) > 0) return true;

    for (auto& [id, b] : bindings_) {
        if (b.state == Binding::State::kDead || b.cs_group != group) continue;
        bindings_by_group_.erase(group);
        if (b.group_origin) {
            // The monitor group dissolved around us; the binding dies.
            b.state = Binding::State::kDead;
            fail_all_calls(b);
        } else {
            rebind(b);
        }
        return true;
    }
    return served_index_.contains(group);
}

namespace {
/// Bind-admission backpressure threshold: a server whose endpoint has this
/// much queued GCS work (ordering holdback + parked sends, summed over all
/// its groups) refuses new client/server-group invitations.  The refusal
/// surfaces as an invite failure at the client, whose existing
/// rebind/backoff machinery defers the bind — overload sheds the *new*
/// load, never the calls already in flight.  Far above anything a healthy
/// endpoint accumulates (order windows are tens of messages), so only a
/// genuinely swamped server ever trips it.
constexpr std::size_t kBindAdmissionLimit = 512;
}  // namespace

bool InvocationService::on_join_cs_request(const std::string& cs_name, GroupId server_group,
                                           EndpointId owner) {
    const auto it = served_index_.find(server_group);
    if (it == served_index_.end()) return false;  // we do not serve that group
    const std::size_t load = endpoint_->pending_load();
    if (load >= kBindAdmissionLimit) {
        metrics().add(obs::metric::kInvBindShed);
        metrics().trace(obs::TraceKind::kBindShed, orb_->scheduler().now(),
                        endpoint_->id().value(), owner.value(), load);
        NEWTOP_WARN("endpoint " << endpoint_->id() << ": overloaded (" << load
                                << " queued), refusing bind from " << owner);
        return false;
    }
    const Directory::GroupInfo* info = directory_->find_group(cs_name);
    if (info == nullptr) return false;
    rm_index_[info->id] = ServedCsGroup{it->second, owner};
    endpoint_->join_group(cs_name);
    return true;
}

}  // namespace newtop
