// InvocationService: the upper half of a NewTop service object (§4).
//
// It layers the paper's flexible invocation styles on the group
// communication endpoint:
//
//  * request-reply against a server group, in **closed** mode (the client
//    joins the servers' access group and multicasts requests directly —
//    failures masked automatically) or **open** mode (the client forms a
//    client/server group with a single *request manager* that forwards the
//    request inside the server group and gathers replies, fig. 4),
//  * the four primitives: one-way send / wait-first / wait-majority /
//    wait-all,
//  * the §4.2 optimisations: *restricted group* (RM = server-group leader =
//    sequencer) and *asynchronous message forwarding* (RM answers from its
//    own execution, forwarding one-way) — the passive-replication shape,
//  * **group-to-group** invocation via a client monitor group (§4.3),
//  * client rebinding with retry call-numbers and server-side reply caches
//    so retries never re-execute (§4.1),
//
// One InvocationService per NSO.  The NewTopService facade routes GCS
// deliveries/view events and NSO management traffic into it.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "gcs/endpoint.hpp"
#include "invocation/envelope.hpp"
#include "invocation/group_servant.hpp"
#include "invocation/types.hpp"
#include "util/rng.hpp"

namespace newtop {

/// Identifies a client-side binding created by bind()/bind_group().
using BindingId = std::uint64_t;

/// ORB method id of the NSO management servant's join-client/server-group
/// operation (see NewTopService).
inline constexpr std::uint32_t kNsoJoinCsMethod = 201;

class InvocationService {
public:
    InvocationService(Orb& orb, GroupCommEndpoint& endpoint, Directory& directory);

    InvocationService(const InvocationService&) = delete;
    InvocationService& operator=(const InvocationService&) = delete;

    // -- server side -----------------------------------------------------------

    /// Serve `service` with `servant`: creates the server group or joins it
    /// if it already exists.  All members of a service must pass equivalent
    /// configs.
    void serve(const std::string& service, const GroupConfig& config,
               std::shared_ptr<GroupServant> servant);

    /// True once this member is in the server group's installed view.
    [[nodiscard]] bool serving(const std::string& service) const;

    /// §2.2's IOGR story: each serve() also exports the servant as a plain
    /// ORB object, so a client can build an Interoperable Object *Group*
    /// Reference over the replicas and let the ORB fail over transparently
    /// (Orb::invoke_group) — no ordering, no reply gathering; the
    /// lightweight alternative to a full group binding.
    [[nodiscard]] static Iogr service_iogr(const Directory& directory,
                                           const std::string& service);

    // -- client side -----------------------------------------------------------

    /// Bind to a service.  Binding is asynchronous; calls made before the
    /// binding is ready are queued.
    BindingId bind(const std::string& service, const BindOptions& options);

    /// Bind a client *group* to a service (§4.3).  Every member of
    /// `client_group` must call this (and then make the same sequence of
    /// invocations); replies are multicast so all members receive them
    /// atomically.
    BindingId bind_group(GroupId client_group, const std::string& service,
                         const BindOptions& options);

    /// Invoke a method on the bound group.  `handler` runs exactly once
    /// (not at all for kOneWay when null).
    void invoke(BindingId binding, std::uint32_t method, Bytes args, InvocationMode mode,
                GroupReplyHandler handler);

    /// Fire-and-forget multicast invocation.
    void one_way(BindingId binding, std::uint32_t method, Bytes args);

    /// Tear down a binding (open mode: disbands the client/server group).
    void unbind(BindingId binding);

    [[nodiscard]] bool binding_ready(BindingId binding) const;
    /// Current request manager of an open binding (for tests/diagnostics).
    [[nodiscard]] std::optional<EndpointId> binding_manager(BindingId binding) const;
    /// How many times the binding has rebound after manager failures.
    [[nodiscard]] std::uint64_t binding_rebinds(BindingId binding) const;

    // -- hooks wired up by the NewTopService facade -------------------------------

    /// True when the delivery/view event belonged to (and was consumed by)
    /// one of this service's groups.
    bool on_deliver(const GroupCommEndpoint::Delivery& delivery);
    bool on_view_change(const GroupCommEndpoint::ViewChangeEvent& event);
    bool on_removed(GroupId group);

    /// Another NSO asks us (a server) to join a client/server group (as
    /// open-mode request manager, or as one of a closed group's members).
    /// Returns true if we are (now) joining.
    bool on_join_cs_request(const std::string& cs_name, GroupId server_group,
                            EndpointId owner);

private:
    // -- server-side state ------------------------------------------------------
    struct Served {
        std::string name;
        GroupId server_group;
        GroupConfig config;
        std::shared_ptr<GroupServant> servant;
        /// Per-origin reply cache: last executed call + our reply value, so
        /// a retried call is answered without re-execution.
        std::map<std::uint64_t, ReplyEnv> reply_cache;  // origin -> last reply
        /// Calls this member is currently collecting replies for (it is
        /// their request manager).
        struct Collecting {
            InvocationMode mode{InvocationMode::kWaitFirst};
            GroupId reply_group;  // client/server or monitor group
            obs::SpanContext span;  // this manager's span for the call
            std::vector<ReplyEntry> replies;
            std::set<EndpointId> repliers;
        };
        std::map<CallId, Collecting> collecting;
        /// Aggregates already sent, for answering client retries.
        std::map<std::uint64_t, AggregateEnv> aggregate_cache;  // origin -> last
        /// Group-to-group duplicate filter (§4.3: the RM expects the call
        /// from every member of the monitor group and forwards only one).
        std::set<CallId> seen_group_calls;
    };

    // -- client-side state ------------------------------------------------------
    struct PendingCall {
        std::uint64_t seq{0};
        std::uint32_t method{0};
        Bytes args;
        InvocationMode mode{InvocationMode::kWaitFirst};
        std::uint8_t flags{0};
        /// The client span for this call; trace id fixed at invoke() time so
        /// retries and rebinds stay inside one trace.
        obs::SpanContext span;
        GroupReplyHandler handler;
        TimerId timeout{0};
        /// Sim time of the first send (-1 until sent): feeds the per-mode
        /// reply-wait histograms and distinguishes retries from first sends.
        SimTime issued_at{-1};
        // closed mode: replies collected so far
        std::vector<ReplyEntry> replies;
        std::set<EndpointId> repliers;
    };

    struct Binding {
        BindingId id{0};
        std::string service;
        BindOptions options;
        GroupId server_group;
        /// kBackoff: every candidate server is gone (dead or evicted); the
        /// binding periodically re-resolves the service name with capped
        /// exponential backoff instead of failing permanently, so it heals
        /// when a recovered replica re-registers.  Calls made meanwhile
        /// fail immediately, like kDead.
        enum class State : std::uint8_t {
            kJoining,
            kReady,
            kBackoff,
            kDead
        } state{State::kJoining};

        // all modes
        GroupId cs_group;  // client/server group (open/closed) or monitor group gz
        std::uint64_t attempt{0};  // cs-group recreation counter
        std::uint64_t rebinds{0};
        TimerId invite_timer{0};
        std::uint64_t backoff_round{0};  // consecutive failed re-resolutions

        // open / group-to-group
        EndpointId manager;  // current request manager
        std::set<EndpointId> failed_managers;

        // group-to-group
        bool group_origin{false};
        GroupId client_group;

        // closed: the servers invited into this binding's group (fig. 3(i):
        // the client/server group contains the client and *all* members of
        // the server group)
        std::set<EndpointId> invited_servers;

        std::uint64_t next_seq{0};
        std::deque<PendingCall> queued;                // waiting for readiness
        std::map<std::uint64_t, PendingCall> inflight; // sent, awaiting replies
    };

    // -- server-side internals (service_server.cpp) -------------------------------
    Served* served_by_server_group(GroupId g);
    void handle_closed_request(Served& served, GroupId cs_group, const RequestEnv& request);
    void handle_cs_request(Served& served, GroupId cs_group, const RequestEnv& request);
    void handle_forward(Served& served, const ForwardEnv& forward);
    void handle_server_reply(Served& served, const ReplyEnv& reply);
    void execute_and(Served& served, const CallId& call, std::uint32_t method, Bytes args,
                     obs::SpanContext parent, SimTime deadline,
                     std::function<void(ReplyEnv)> done);
    /// True (and counted/traced) when the call's deadline has passed — the
    /// client gave up already, so executing it only burns servant CPU.
    bool shed_expired(const CallId& call, SimTime deadline, const obs::SpanContext& span);
    void send_aggregate(Served& served, const CallId& call, GroupId reply_group,
                        AggregateEnv aggregate);
    void maybe_finish_collection(Served& served, const CallId& call);
    [[nodiscard]] std::size_t reply_threshold(InvocationMode mode, std::size_t servers) const;

    // -- client-side internals (service_client.cpp) --------------------------------
    Binding* find_binding(BindingId id);
    const Binding* find_binding(BindingId id) const;
    Binding* binding_by_cs_group(GroupId g);
    /// Configuration for a binding's client/server group: the server
    /// group's *current* directory config (kept fresh by runtime
    /// reconfigurations) with the binding's requested c/s ordering on top.
    /// One lookup path for every c/s group creation site, so a stale local
    /// GroupConfig can never leak into a new binding.
    [[nodiscard]] GroupConfig cs_group_config(const Binding& b) const;
    void start_open_bind(Binding& b);
    void start_closed_bind(Binding& b);
    void invite_manager(Binding& b);
    void invite_server(Binding& b, EndpointId server);
    void on_invite_timeout(BindingId id, std::uint64_t attempt);
    void check_closed_ready(Binding& b, const View& view);
    void binding_became_ready(Binding& b);
    void send_call(Binding& b, PendingCall call);
    void complete_call(Binding& b, PendingCall call, bool complete);
    void handle_aggregate(Binding& b, const AggregateEnv& aggregate);
    void collect_closed_reply(Binding& b, const ReplyEnv& reply);
    void rebind(Binding& b);
    void enter_backoff(Binding& b);
    void on_backoff_retry(BindingId id, std::uint64_t round);
    [[nodiscard]] std::vector<EndpointId> manager_candidates(const Binding& b) const;
    void reevaluate_closed_calls(Binding& b);
    [[nodiscard]] std::size_t live_server_count(const Binding& b) const;
    void arm_call_timeout(Binding& b, PendingCall& call);
    void fail_all_calls(Binding& b);
    [[nodiscard]] obs::MetricsRegistry& metrics() const;

    Orb* orb_;
    GroupCommEndpoint* endpoint_;
    Directory* directory_;

    /// A client/server group this member serves (as open-mode request
    /// manager or as one of a closed group's servers).
    struct ServedCsGroup {
        std::string service;
        EndpointId owner;  // the client that formed the group
    };

    std::map<std::string, Served> served_;               // by service name
    std::map<GroupId, std::string> served_index_;        // server group -> name
    std::map<GroupId, ServedCsGroup> rm_index_;          // cs group -> role

    std::map<BindingId, Binding> bindings_;
    std::map<GroupId, BindingId> bindings_by_group_;     // cs/access group -> binding
    BindingId next_binding_{1};
    std::uint64_t next_cs_name_{1};
    /// Jitter for backoff retries; seeded per-endpoint so worlds stay
    /// deterministic and concurrent bindings do not retry in lockstep.
    Rng backoff_rng_;
};

}  // namespace newtop
