#include "invocation/envelope.hpp"

namespace newtop {

namespace {

enum class Tag : std::uint8_t { kRequest = 1, kForward = 2, kReply = 3, kAggregate = 4 };

// These validators take the already-read byte (rather than the Decoder) so
// the codec bodies keep every d.get_* visible in place — the codec-symmetry
// lint pass reads the op sequence straight out of the decode statements.
InvocationMode checked_mode(std::uint8_t raw) {
    if (raw > static_cast<std::uint8_t>(InvocationMode::kWaitAll)) {
        throw DecodeError("bad invocation mode");
    }
    return static_cast<InvocationMode>(raw);
}

BindMode checked_bind(std::uint8_t raw) {
    if (raw > static_cast<std::uint8_t>(BindMode::kOpen)) throw DecodeError("bad bind mode");
    return static_cast<BindMode>(raw);
}

}  // namespace

void encode(Encoder& e, const CallId& v) {
    encode(e, v.origin);
    encode(e, v.seq);
    encode(e, v.group_origin);
}
void decode(Decoder& d, CallId& v) {
    decode(d, v.origin);
    decode(d, v.seq);
    decode(d, v.group_origin);
}

// The obs::SpanContext codec lives with the GCS wire format
// (gcs/messages.cpp) — DATA messages carry spans too.

void encode(Encoder& e, const ReplyEntry& v) {
    encode(e, v.replier);
    encode(e, v.ok);
    encode(e, v.value);
}
void decode(Decoder& d, ReplyEntry& v) {
    decode(d, v.replier);
    decode(d, v.ok);
    decode(d, v.value);
}

namespace {

void encode_body(Encoder& e, const RequestEnv& v) {
    encode(e, v.call);
    encode(e, v.span);
    e.put_u8(static_cast<std::uint8_t>(v.mode));
    e.put_u8(v.flags);
    encode(e, v.server_group);
    e.put_u8(static_cast<std::uint8_t>(v.bind));
    e.put_u32(v.method);
    encode(e, v.args);
    e.put_i64(v.deadline);
}
void decode_body(Decoder& d, RequestEnv& v) {
    decode(d, v.call);
    decode(d, v.span);
    v.mode = checked_mode(d.get_u8());
    v.flags = d.get_u8();
    decode(d, v.server_group);
    v.bind = checked_bind(d.get_u8());
    v.method = d.get_u32();
    decode(d, v.args);
    v.deadline = d.get_i64();
}

void encode_body(Encoder& e, const ForwardEnv& v) {
    encode(e, v.call);
    encode(e, v.span);
    e.put_u8(static_cast<std::uint8_t>(v.mode));
    e.put_u8(v.flags);
    encode(e, v.manager);
    e.put_u32(v.method);
    encode(e, v.args);
    e.put_i64(v.deadline);
}
void decode_body(Decoder& d, ForwardEnv& v) {
    decode(d, v.call);
    decode(d, v.span);
    v.mode = checked_mode(d.get_u8());
    v.flags = d.get_u8();
    decode(d, v.manager);
    v.method = d.get_u32();
    decode(d, v.args);
    v.deadline = d.get_i64();
}

void encode_body(Encoder& e, const ReplyEnv& v) {
    encode(e, v.call);
    encode(e, v.span);
    encode(e, v.replier);
    encode(e, v.ok);
    encode(e, v.value);
}
void decode_body(Decoder& d, ReplyEnv& v) {
    decode(d, v.call);
    decode(d, v.span);
    decode(d, v.replier);
    decode(d, v.ok);
    decode(d, v.value);
}

void encode_body(Encoder& e, const AggregateEnv& v) {
    encode(e, v.call);
    encode(e, v.span);
    encode(e, v.complete);
    encode(e, v.replies);
}
void decode_body(Decoder& d, AggregateEnv& v) {
    decode(d, v.call);
    decode(d, v.span);
    decode(d, v.complete);
    decode(d, v.replies);
}

}  // namespace

namespace {

void write_envelope(Encoder& e, const InvocationEnvelope& env) {
    std::visit(
        [&e](const auto& body) {
            using T = std::decay_t<decltype(body)>;
            Tag tag{};
            if constexpr (std::is_same_v<T, RequestEnv>) tag = Tag::kRequest;
            else if constexpr (std::is_same_v<T, ForwardEnv>) tag = Tag::kForward;
            else if constexpr (std::is_same_v<T, ReplyEnv>) tag = Tag::kReply;
            else tag = Tag::kAggregate;
            e.put_u8(static_cast<std::uint8_t>(tag));
            encode_body(e, body);
        },
        env);
}

}  // namespace

Bytes encode_envelope(const InvocationEnvelope& env) {
    // Counting pass first so the real encode allocates exactly once.
    Encoder counter = Encoder::counter();
    write_envelope(counter, env);
    Encoder e;
    e.reserve(counter.size());
    write_envelope(e, env);
    return std::move(e).take();
}

InvocationEnvelope decode_envelope(const Bytes& wire) {
    Decoder d(wire);
    const auto tag = static_cast<Tag>(d.get_u8());
    auto finish = [&d](auto value) -> InvocationEnvelope {
        decode_body(d, value);
        if (!d.exhausted()) throw DecodeError("trailing bytes in invocation envelope");
        return value;
    };
    switch (tag) {
        case Tag::kRequest: return finish(RequestEnv{});
        case Tag::kForward: return finish(ForwardEnv{});
        case Tag::kReply: return finish(ReplyEnv{});
        case Tag::kAggregate: return finish(AggregateEnv{});
    }
    throw DecodeError("unknown invocation envelope tag");
}

}  // namespace newtop
