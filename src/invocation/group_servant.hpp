// The application-side interface for objects served by a group.
#pragma once

#include <cstdint>

#include "net/calibration.hpp"
#include "orb/servant.hpp"  // for ServantError
#include "util/time.hpp"
#include "util/bytes.hpp"

namespace newtop {

/// An object replicated across the members of a server group.  Each member
/// executes delivered requests in the agreed total order, so deterministic
/// implementations stay mutually consistent (active replication).
class GroupServant {
public:
    virtual ~GroupServant() = default;

    /// Execute `method` with encoded `args`; returns the encoded result.
    /// Throw ServantError to report an application-level failure to the
    /// caller (it arrives as a not-ok ReplyEntry).
    virtual Bytes handle(std::uint32_t method, const Bytes& args) = 0;

    /// Simulated CPU cost of executing `method`.
    [[nodiscard]] virtual SimDuration execution_cost(std::uint32_t method) const {
        (void)method;
        return calibration::kTrivialServantCost;
    }
};

}  // namespace newtop
