// Client side of the invocation layer: binding (open / closed / group-to-
// group), issuing calls with the four primitives, reply collection for
// closed mode, timeouts, and rebinding after request-manager failure.
#include "invocation/service.hpp"

#include <algorithm>

#include "net/calibration.hpp"
#include "obs/names.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace newtop {

using namespace sim_literals;

namespace {
/// Backoff schedule for bindings whose server group died entirely: retry
/// the name re-resolution at kBackoffBase, doubling up to kBackoffCap, each
/// round jittered by up to a quarter of the base so concurrent clients do
/// not thunder back in lockstep when the service recovers.
constexpr SimDuration kBackoffBase = 250_ms;
constexpr SimDuration kBackoffCap = 4_s;

/// Per-mode reply-wait histogram names (issue to handler completion).
std::string_view reply_wait_metric(InvocationMode mode) {
    switch (mode) {
        case InvocationMode::kOneWay: return obs::metric::kInvReplyWaitOneway;
        case InvocationMode::kWaitFirst: return obs::metric::kInvReplyWaitFirst;
        case InvocationMode::kWaitMajority: return obs::metric::kInvReplyWaitMajority;
        case InvocationMode::kWaitAll: return obs::metric::kInvReplyWaitAll;
    }
    return obs::metric::kInvReplyWaitOther;
}
}  // namespace

InvocationService::Binding* InvocationService::find_binding(BindingId id) {
    const auto it = bindings_.find(id);
    return it == bindings_.end() ? nullptr : &it->second;
}

const InvocationService::Binding* InvocationService::find_binding(BindingId id) const {
    const auto it = bindings_.find(id);
    return it == bindings_.end() ? nullptr : &it->second;
}

InvocationService::Binding* InvocationService::binding_by_cs_group(GroupId g) {
    const auto it = bindings_by_group_.find(g);
    return it == bindings_by_group_.end() ? nullptr : find_binding(it->second);
}

bool InvocationService::binding_ready(BindingId binding) const {
    const Binding* b = find_binding(binding);
    return b != nullptr && b->state == Binding::State::kReady;
}

std::optional<EndpointId> InvocationService::binding_manager(BindingId binding) const {
    const Binding* b = find_binding(binding);
    if (b == nullptr || b->options.mode != BindMode::kOpen) return std::nullopt;
    return b->manager;
}

std::uint64_t InvocationService::binding_rebinds(BindingId binding) const {
    const Binding* b = find_binding(binding);
    return b == nullptr ? 0 : b->rebinds;
}

// -- binding -----------------------------------------------------------------------

BindingId InvocationService::bind(const std::string& service, const BindOptions& options) {
    NEWTOP_EXPECTS(directory_->find_group(service) != nullptr,
                   "service has no server group yet");
    NEWTOP_EXPECTS(!options.async_forwarding || options.restricted,
                   "asynchronous forwarding requires the restricted-group optimisation");

    Binding b;
    b.id = next_binding_++;
    b.service = service;
    b.options = options;
    b.server_group = directory_->find_group(service)->id;

    const BindingId id = b.id;
    auto [it, inserted] = bindings_.emplace(id, std::move(b));
    if (options.mode == BindMode::kClosed) {
        start_closed_bind(it->second);
    } else {
        start_open_bind(it->second);
    }
    return id;
}

GroupConfig InvocationService::cs_group_config(const Binding& b) const {
    const Directory::GroupInfo* info = directory_->find_group(b.service);
    GroupConfig cfg = info == nullptr ? GroupConfig{} : info->config;
    cfg.order = b.options.cs_order;
    // The c/s group is a binding-lifetime side group, never reconfigured
    // adaptively; only the server group's policies (timeouts, windows)
    // carry over.
    cfg.adaptive_asym_threshold = 0;
    return cfg;
}

void InvocationService::start_closed_bind(Binding& b) {
    // Fig. 3(i): form a client/server group containing this client and
    // every member of the server group, and invite them all in.
    b.state = Binding::State::kJoining;
    ++b.attempt;
    const std::string cs_name = "cs:" + std::to_string(endpoint_->id().value()) + ":" +
                                std::to_string(b.id) + ":" + std::to_string(b.attempt);
    b.cs_group = endpoint_->create_group(cs_name, cs_group_config(b));
    bindings_by_group_[b.cs_group] = b.id;

    const Directory::GroupInfo* info = directory_->find_group(b.service);
    b.invited_servers.clear();
    if (info != nullptr) {
        for (const EndpointId server : info->contact_hint) {
            // Skip endpoints the directory knows are dead; inviting them
            // would only burn the invite timeout.
            if (!directory_->known_defunct(server)) b.invited_servers.insert(server);
        }
    }
    if (b.invited_servers.empty()) {
        // Every server is gone.  Back off and re-resolve instead of dying:
        // queued calls fail now (their handlers must not hang), but the
        // binding heals once a recovered replica re-registers.
        enter_backoff(b);
        return;
    }
    for (const EndpointId server : b.invited_servers) invite_server(b, server);

    orb_->scheduler().cancel(b.invite_timer);
    const BindingId id = b.id;
    const std::uint64_t attempt = b.attempt;
    b.invite_timer =
        orb_->scheduler().schedule_after(b.options.invite_timeout + 1_s, [this, id, attempt] {
            on_invite_timeout(id, attempt);
        });
}

void InvocationService::invite_server(Binding& b, EndpointId server) {
    Encoder e;
    encode(e, directory_->find_group(b.cs_group)->name);
    encode(e, b.server_group);
    encode(e, endpoint_->id());
    orb_->invoke(directory_->nso_ior(server), kNsoJoinCsMethod, std::move(e).take(),
                 [](ReplyStatus, const Bytes&) {}, b.options.invite_timeout);
}

void InvocationService::check_closed_ready(Binding& b, const View& view) {
    if (!view.contains(endpoint_->id())) return;
    // Ready once every invited server that is still considered live has
    // joined.  Servers that died before joining are written off by the
    // invite timeout.
    for (const EndpointId server : b.invited_servers) {
        if (!view.contains(server)) return;
    }
    binding_became_ready(b);
}

BindingId InvocationService::bind_group(GroupId client_group, const std::string& service,
                                        const BindOptions& options) {
    NEWTOP_EXPECTS(endpoint_->is_member(client_group),
                   "must be a member of the client group");
    NEWTOP_EXPECTS(options.mode == BindMode::kOpen, "group-to-group bindings are open");

    Binding b;
    b.id = next_binding_++;
    b.service = service;
    b.options = options;
    b.options.restricted = true;  // all members must agree on the manager
    b.server_group = directory_->find_group(service)->id;
    b.group_origin = true;
    b.client_group = client_group;

    // The client monitor group gz (fig. 6): the client group plus the
    // request manager.  Deterministic name so every member finds the same
    // group; the first to call creates it.
    const std::string gz_name =
        "g2g:" + std::to_string(client_group.value()) + ":" + service;
    if (directory_->find_group(gz_name) == nullptr) {
        b.cs_group = endpoint_->create_group(gz_name, cs_group_config(b));
    } else {
        b.cs_group = endpoint_->join_group(gz_name);
    }
    bindings_by_group_[b.cs_group] = b.id;

    const auto candidates = manager_candidates(b);
    NEWTOP_EXPECTS(!candidates.empty(), "service has no live members");
    b.manager = candidates.front();

    const BindingId id = b.id;
    auto [it, inserted] = bindings_.emplace(id, std::move(b));
    invite_manager(it->second);
    return id;
}

std::vector<EndpointId> InvocationService::manager_candidates(const Binding& b) const {
    const Directory::GroupInfo* info = directory_->find_group(b.service);
    std::vector<EndpointId> out;
    if (info == nullptr) return out;
    for (const EndpointId member : info->contact_hint) {
        if (b.failed_managers.contains(member)) continue;
        if (directory_->known_defunct(member)) continue;
        out.push_back(member);
    }
    return out;
}

void InvocationService::start_open_bind(Binding& b) {
    const auto candidates = manager_candidates(b);
    if (candidates.empty()) {
        enter_backoff(b);
        return;
    }
    // Restricted group (§4.2): always the leader, so request manager =
    // sequencer (= primary).  Otherwise spread clients across members.
    b.manager = b.options.restricted
                    ? candidates.front()
                    : candidates[endpoint_->id().value() % candidates.size()];
    b.state = Binding::State::kJoining;
    ++b.attempt;

    const std::string cs_name = "cs:" + std::to_string(endpoint_->id().value()) + ":" +
                                std::to_string(b.id) + ":" + std::to_string(b.attempt);
    b.cs_group = endpoint_->create_group(cs_name, cs_group_config(b));
    bindings_by_group_[b.cs_group] = b.id;
    invite_manager(b);
}

void InvocationService::invite_manager(Binding& b) {
    // Ask the chosen server's NSO (a plain ORB request) to join our
    // client/server group as request manager.
    Encoder e;
    encode(e, directory_->find_group(b.cs_group)->name);
    encode(e, b.server_group);
    encode(e, endpoint_->id());
    const BindingId id = b.id;
    const std::uint64_t attempt = b.attempt;
    orb_->invoke(directory_->nso_ior(b.manager), kNsoJoinCsMethod, std::move(e).take(),
                 [this, id, attempt](ReplyStatus status, const Bytes&) {
                     if (status == ReplyStatus::kOk) return;  // now wait for the view
                     on_invite_timeout(id, attempt);
                 },
                 b.options.invite_timeout);

    orb_->scheduler().cancel(b.invite_timer);
    b.invite_timer =
        orb_->scheduler().schedule_after(b.options.invite_timeout + 1_s, [this, id, attempt] {
            on_invite_timeout(id, attempt);
        });
}

void InvocationService::on_invite_timeout(BindingId id, std::uint64_t attempt) {
    if (orb_->process_defunct()) return;
    Binding* b = find_binding(id);
    if (b == nullptr || b->state != Binding::State::kJoining || b->attempt != attempt) return;

    if (b->options.mode == BindMode::kClosed) {
        // Servers that never made it into the group are written off; the
        // binding proceeds with whoever joined.
        const View* view = endpoint_->current_view(b->cs_group);
        if (view != nullptr) {
            std::erase_if(b->invited_servers,
                          [&](EndpointId server) { return !view->contains(server); });
        }
        if (!b->invited_servers.empty() && view != nullptr &&
            view->contains(endpoint_->id())) {
            binding_became_ready(*b);
            return;
        }
        NEWTOP_DEBUG("binding " << id << ": closed bind attempt " << attempt << " failed");
        rebind(*b);
        return;
    }

    NEWTOP_DEBUG("binding " << id << ": manager " << b->manager << " unresponsive, rebinding");
    rebind(*b);
}

void InvocationService::binding_became_ready(Binding& b) {
    b.state = Binding::State::kReady;
    orb_->scheduler().cancel(b.invite_timer);
    b.invite_timer = 0;
    while (!b.queued.empty() && b.state == Binding::State::kReady) {
        PendingCall call = std::move(b.queued.front());
        b.queued.pop_front();
        send_call(b, std::move(call));
    }
}

void InvocationService::rebind(Binding& b) {
    if (b.state == Binding::State::kDead) return;
    ++b.rebinds;
    metrics().add(obs::metric::kInvRebinds);
    metrics().trace(obs::TraceKind::kRebound, orb_->scheduler().now(),
                    endpoint_->id().value(), b.id, b.rebinds);
    b.failed_managers.insert(b.manager);

    // In-flight calls go back to the queue (same call numbers: servers'
    // reply caches make the retries idempotent, §4.1).
    std::vector<std::uint64_t> seqs;
    for (const auto& [seq, call] : b.inflight) seqs.push_back(seq);
    std::sort(seqs.begin(), seqs.end(), std::greater<>());
    for (const std::uint64_t seq : seqs) {
        auto node = b.inflight.extract(seq);
        orb_->scheduler().cancel(node.mapped().timeout);
        node.mapped().timeout = 0;
        b.queued.push_front(std::move(node.mapped()));
    }

    if (b.group_origin) {
        // The monitor group survives; just invite a replacement manager.
        const auto candidates = manager_candidates(b);
        if (candidates.empty()) {
            enter_backoff(b);
            return;
        }
        b.state = Binding::State::kJoining;
        b.manager = candidates.front();
        ++b.attempt;
        invite_manager(b);
        return;
    }

    // The old client/server group is disbanded and a fresh one is created.
    // Detach the binding from the old group *before* leaving it — leaving
    // as the last member fires on_removed, which must not re-enter this
    // rebind.
    const GroupId old_group = b.cs_group;
    b.cs_group = GroupId{};
    bindings_by_group_.erase(old_group);
    if (endpoint_->is_member(old_group)) endpoint_->leave_group(old_group);
    if (b.options.mode == BindMode::kClosed) {
        start_closed_bind(b);
    } else {
        start_open_bind(b);
    }
}

void InvocationService::enter_backoff(Binding& b) {
    if (b.state == Binding::State::kDead) return;
    NEWTOP_WARN("binding " << b.id << ": no live server for " << b.service
                           << "; backing off (round " << b.backoff_round << ")");
    b.state = Binding::State::kBackoff;
    orb_->scheduler().cancel(b.invite_timer);
    b.invite_timer = 0;
    // Calls can never complete while no server exists; their handlers must
    // not hang, so fail them now.  New calls fail fast until we re-bind.
    fail_all_calls(b);
    // Tear down this attempt's client/server group (the group-to-group
    // monitor group survives: its membership is shared with the other
    // clients).  Same re-entrancy dance as rebind(): detach first.
    if (!b.group_origin) {
        const GroupId old_group = b.cs_group;
        b.cs_group = GroupId{};
        bindings_by_group_.erase(old_group);
        if (endpoint_->is_member(old_group)) endpoint_->leave_group(old_group);
    }
    metrics().add(obs::metric::kInvBackoffs);
    const std::uint64_t shift = std::min<std::uint64_t>(b.backoff_round, 8);
    const SimDuration base = std::min(kBackoffCap, kBackoffBase << shift);
    const auto jitter = static_cast<SimDuration>(
        backoff_rng_.next_in(0, static_cast<std::uint64_t>(base / 4)));
    ++b.backoff_round;
    const BindingId id = b.id;
    const std::uint64_t round = b.backoff_round;
    orb_->scheduler().schedule_after(base + jitter,
                                     [this, id, round] { on_backoff_retry(id, round); });
}

void InvocationService::on_backoff_retry(BindingId id, std::uint64_t round) {
    if (orb_->process_defunct()) return;
    Binding* b = find_binding(id);
    if (b == nullptr || b->state != Binding::State::kBackoff || b->backoff_round != round) {
        return;  // unbound, healed, or superseded by a later round
    }
    // Written-off managers age out: one of them may be exactly the replica
    // that recovered.
    b->failed_managers.clear();
    const auto candidates = manager_candidates(*b);
    if (candidates.empty()) {
        enter_backoff(*b);  // schedules the next, longer retry
        return;
    }
    metrics().add(obs::metric::kInvBackoffRebinds);
    b->backoff_round = 0;
    if (b->group_origin) {
        // The monitor group is still intact; just invite a new manager.
        b->state = Binding::State::kJoining;
        b->manager = candidates.front();
        ++b->attempt;
        invite_manager(*b);
    } else if (b->options.mode == BindMode::kClosed) {
        start_closed_bind(*b);
    } else {
        start_open_bind(*b);
    }
}

void InvocationService::unbind(BindingId binding) {
    Binding* b = find_binding(binding);
    if (b == nullptr) return;
    orb_->scheduler().cancel(b->invite_timer);
    for (auto& [seq, call] : b->inflight) orb_->scheduler().cancel(call.timeout);
    const GroupId cs_group = b->cs_group;
    // Erase the binding first: leaving a group can fire on_removed, which
    // must not find (and try to revive) a binding being torn down.
    bindings_by_group_.erase(cs_group);
    bindings_.erase(binding);
    if (endpoint_->is_member(cs_group)) endpoint_->leave_group(cs_group);
}

// -- issuing calls ------------------------------------------------------------------

void InvocationService::invoke(BindingId binding, std::uint32_t method, Bytes args,
                               InvocationMode mode, GroupReplyHandler handler) {
    Binding* b = find_binding(binding);
    NEWTOP_EXPECTS(b != nullptr, "unknown binding");
    NEWTOP_EXPECTS(mode == InvocationMode::kOneWay || handler != nullptr,
                   "two-way invocation needs a handler");

    PendingCall call;
    call.seq = b->next_seq++;
    call.method = method;
    call.args = std::move(args);
    call.mode = mode;
    call.handler = std::move(handler);
    if (b->options.async_forwarding && mode == InvocationMode::kWaitFirst) {
        call.flags |= kFlagAsyncForwarding;
    }
    // Root of the call's span tree.  The trace id depends only on the
    // CallId, so retries, rebinds and every downstream principal land in
    // the same trace.
    const std::uint64_t origin =
        b->group_origin ? b->client_group.value() : endpoint_->id().value();
    call.span.trace = obs::invocation_trace_id(origin, call.seq, b->group_origin);
    call.span.span =
        obs::span_id(call.span.trace, endpoint_->id().value(), obs::SpanRole::kClient);

    if (b->state == Binding::State::kDead || b->state == Binding::State::kBackoff) {
        // Dead, or every server is gone and we are between re-resolution
        // attempts: fail fast rather than park the call indefinitely.
        complete_call(*b, std::move(call), false);
        return;
    }
    if (b->state != Binding::State::kReady) {
        metrics().add(obs::metric::kInvRequestsQueued);
        metrics().trace(obs::TraceKind::kRequestQueued, orb_->scheduler().now(),
                        endpoint_->id().value(), call.span, 0, b->id, call.seq);
        b->queued.push_back(std::move(call));
        return;
    }
    send_call(*b, std::move(call));
}

void InvocationService::one_way(BindingId binding, std::uint32_t method, Bytes args) {
    invoke(binding, method, std::move(args), InvocationMode::kOneWay, nullptr);
}

void InvocationService::send_call(Binding& b, PendingCall call) {
    RequestEnv request;
    request.call = CallId{b.group_origin ? b.client_group.value() : endpoint_->id().value(),
                          call.seq, b.group_origin};
    request.span = call.span;
    request.mode = call.mode;
    request.flags = call.flags;
    request.server_group = b.server_group;
    request.bind = b.options.mode;
    request.method = call.method;
    request.args = call.args;
    const SimTime now = orb_->scheduler().now();
    // Re-stamped on every send, so a retry after a rebind carries the fresh
    // attempt's give-up time, not the original one.
    request.deadline = b.options.call_timeout > 0 ? now + b.options.call_timeout : 0;
    const Bytes wire = encode_envelope(request);
    const GroupId target = b.cs_group;

    if (call.issued_at < 0) {
        call.issued_at = now;
        metrics().add(obs::metric::kInvCallsSent);
        metrics().trace(obs::TraceKind::kRequestSent, now, endpoint_->id().value(), call.span,
                        0, b.id, call.seq);
    } else {
        metrics().add(obs::metric::kInvCallsRetried);
        metrics().trace(obs::TraceKind::kRequestRetried, now, endpoint_->id().value(),
                        call.span, 0, b.id, call.seq);
    }

    const bool one_way = call.mode == InvocationMode::kOneWay;
    if (!one_way) {
        arm_call_timeout(b, call);
        b.inflight.emplace(call.seq, std::move(call));
    }

    // Crossing from the application into the NSO costs the colocated
    // hand-off (fig. 9's m1); the multicast itself then pays per-member
    // marshalling inside the endpoint.  The client span rides along so the
    // GCS phase events chain back to this invocation.
    const GroupId group = target;
    orb_->network().node(orb_->node_id()).cpu().execute(
        calibration::kLocalHandoffCost, [this, group, wire, span = request.span] {
            if (endpoint_->is_member(group)) endpoint_->multicast(group, wire, span);
        });

    if (one_way && call.handler) {
        complete_call(b, std::move(call), true);
    }
}

void InvocationService::arm_call_timeout(Binding& b, PendingCall& call) {
    if (b.options.call_timeout <= 0) return;
    const BindingId id = b.id;
    const std::uint64_t seq = call.seq;
    call.timeout =
        orb_->scheduler().schedule_after(b.options.call_timeout, [this, id, seq] {
            if (orb_->process_defunct()) return;
            Binding* bp = find_binding(id);
            if (bp == nullptr) return;
            const auto it = bp->inflight.find(seq);
            if (it == bp->inflight.end()) return;
            auto node = bp->inflight.extract(it);
            node.mapped().timeout = 0;
            metrics().add(obs::metric::kInvCallsTimedOut);
            metrics().trace(obs::TraceKind::kCallTimedOut, orb_->scheduler().now(),
                            endpoint_->id().value(), node.mapped().span, 0, id,
                            obs::pack_completion_detail(
                                static_cast<std::uint64_t>(node.mapped().mode), seq));
            complete_call(*bp, std::move(node.mapped()), false);
        });
}

void InvocationService::complete_call(Binding& b, PendingCall call, bool complete) {
    orb_->scheduler().cancel(call.timeout);
    const SimTime now = orb_->scheduler().now();
    metrics().add(complete ? obs::metric::kInvCallsCompleted : obs::metric::kInvCallsFailed);
    metrics().trace(complete ? obs::TraceKind::kCallCompleted : obs::TraceKind::kCallFailed,
                    now, endpoint_->id().value(), call.span, 0, b.id,
                    obs::pack_completion_detail(static_cast<std::uint64_t>(call.mode),
                                                call.seq));
    if (call.issued_at >= 0) {
        metrics().observe(reply_wait_metric(call.mode), now - call.issued_at);
    }
    if (!call.handler) return;
    GroupReply reply;
    reply.complete = complete;
    reply.replies = std::move(call.replies);
    // The reply crosses back into the application (fig. 9's m6).
    orb_->network().node(orb_->node_id()).cpu().execute(
        calibration::kLocalHandoffCost,
        [handler = std::move(call.handler), reply = std::move(reply)] { handler(reply); });
}

void InvocationService::handle_aggregate(Binding& b, const AggregateEnv& aggregate) {
    const auto it = b.inflight.find(aggregate.call.seq);
    if (it == b.inflight.end()) return;  // duplicate or timed out
    if (b.group_origin != aggregate.call.group_origin) return;
    auto node = b.inflight.extract(it);
    node.mapped().replies = aggregate.replies;
    complete_call(b, std::move(node.mapped()), aggregate.complete);
}

// -- closed-mode reply collection ------------------------------------------------------

void InvocationService::collect_closed_reply(Binding& b, const ReplyEnv& reply) {
    if (reply.call.group_origin || reply.call.origin != endpoint_->id().value()) return;
    const auto it = b.inflight.find(reply.call.seq);
    if (it == b.inflight.end()) return;  // duplicate / already satisfied
    PendingCall& call = it->second;
    if (!call.repliers.insert(reply.replier).second) return;
    call.replies.push_back(ReplyEntry{reply.replier, reply.ok, reply.value});
    metrics().add(obs::metric::kInvRepliesCollected);
    metrics().trace(obs::TraceKind::kReplyCollected, orb_->scheduler().now(),
                    endpoint_->id().value(), call.span, reply.span.span,
                    reply.replier.value(), reply.call.seq);
    const std::size_t needed = reply_threshold(call.mode, live_server_count(b));
    if (needed > 0 && call.repliers.size() >= needed) {
        auto node = b.inflight.extract(reply.call.seq);
        complete_call(b, std::move(node.mapped()), true);
    }
}

std::size_t InvocationService::live_server_count(const Binding& b) const {
    // The servers are simply the other members of the client/server group:
    // the view *is* the failure-masking boundary (fig. 3(i)).
    const View* view = endpoint_->current_view(b.cs_group);
    if (view == nullptr) return 0;
    std::size_t live = 0;
    for (const EndpointId member : view->members) {
        if (member != endpoint_->id()) ++live;
    }
    return live;
}

void InvocationService::reevaluate_closed_calls(Binding& b) {
    // Only a ready binding has calls keyed to the current view; while
    // joining, the cs group's first view contains just the client and must
    // not be read as "all servers failed".
    if (b.state != Binding::State::kReady) return;
    const std::size_t servers = live_server_count(b);
    if (servers == 0) {
        // Every server left the view.  No reply can ever arrive, and
        // reply_threshold() never returns 0 for two-way modes, so without
        // this the calls hang forever when no call timeout is configured.
        // Back off and re-resolve: the whole group may come back.
        NEWTOP_WARN("binding " << b.id << ": all servers left the closed view");
        enter_backoff(b);
        return;
    }
    std::vector<std::uint64_t> done;
    for (auto& [seq, call] : b.inflight) {
        const std::size_t needed = reply_threshold(call.mode, servers);
        if (needed > 0 && call.repliers.size() >= needed) done.push_back(seq);
    }
    for (const std::uint64_t seq : done) {
        auto node = b.inflight.extract(seq);
        complete_call(b, std::move(node.mapped()), true);
    }
}

void InvocationService::fail_all_calls(Binding& b) {
    std::vector<std::uint64_t> seqs;
    seqs.reserve(b.inflight.size());
    for (const auto& [seq, call] : b.inflight) seqs.push_back(seq);
    for (const std::uint64_t seq : seqs) {
        auto node = b.inflight.extract(seq);
        complete_call(b, std::move(node.mapped()), false);
    }
    while (!b.queued.empty()) {
        PendingCall call = std::move(b.queued.front());
        b.queued.pop_front();
        complete_call(b, std::move(call), false);
    }
}

}  // namespace newtop
