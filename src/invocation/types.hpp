// Vocabulary of the flexible object-group invocation layer (§4).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gcs/types.hpp"
#include "util/time.hpp"
#include "util/bytes.hpp"

namespace newtop {

/// The four invocation primitives of §2.1.
enum class InvocationMode : std::uint8_t {
    kOneWay = 0,        // no reply expected
    kWaitFirst = 1,     // reply from a single member suffices
    kWaitMajority = 2,  // replies from a majority of the server group
    kWaitAll = 3,       // replies from every member
};

/// How a client is attached to a server group (§2.1, fig. 3).
enum class BindMode : std::uint8_t {
    /// Client joins the servers' communication: its requests are multicast
    /// directly to all replicas, failures are masked automatically.  Best
    /// on low-latency paths.
    kClosed = 0,
    /// Client forms a client/server group with a single member (the
    /// request manager) which forwards requests and gathers replies.  Best
    /// over high-latency paths.
    kOpen = 1,
};

/// Identifies one logical call end-to-end (client retry uses the same id so
/// servers can suppress re-execution — §4.1's "call number").
struct CallId {
    /// Issuing endpoint id, or the client *group* id for group-to-group
    /// invocations (see `group_origin`).
    std::uint64_t origin{0};
    std::uint64_t seq{0};
    bool group_origin{false};

    friend auto operator<=>(const CallId&, const CallId&) = default;
};

/// One server's reply to a call.
struct ReplyEntry {
    EndpointId replier;
    bool ok{true};  // false: the servant raised an exception
    Bytes value;    // result, or the exception message
};

/// What the client's completion handler receives.
struct GroupReply {
    /// True when the invocation mode's threshold was met; false when the
    /// call completed exceptionally (timeout with partial replies).
    bool complete{false};
    std::vector<ReplyEntry> replies;

    /// Convenience: the first successful reply value, or nullptr.
    [[nodiscard]] const Bytes* first_value() const {
        for (const auto& r : replies) {
            if (r.ok) return &r.value;
        }
        return nullptr;
    }
};

using GroupReplyHandler = std::function<void(const GroupReply&)>;

/// Client-side binding knobs (§4.2's customisations).
struct BindOptions {
    BindMode mode{BindMode::kOpen};
    /// Open groups: bind to the server group's leader so the request
    /// manager, sequencer (and primary, for passive replication) coincide —
    /// the "restricted group" optimisation.  When false, the client picks a
    /// server by hashing its identity across the membership.
    bool restricted{false};
    /// Open groups + kWaitFirst: the request manager replies from its own
    /// execution and forwards to the rest asynchronously ("asynchronous
    /// message forwarding").  Requires `restricted`.
    bool async_forwarding{false};
    /// Ordering protocol for the client/server group (open mode).
    OrderMode cs_order{OrderMode::kTotalAsymmetric};
    /// Give up on a call after this long (0 = wait forever; rebinding on
    /// request-manager failure still applies).
    SimDuration call_timeout{0};
    /// How long an invited request manager / server has to bring the
    /// client into the client/server group before the binding gives up on
    /// it and tries the next candidate.  WAN scenarios and recovery tests
    /// tune this; the default matches the historical hardcoded value.
    SimDuration invite_timeout{3'000'000};  // 3 s
};

}  // namespace newtop
