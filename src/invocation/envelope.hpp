// Invocation-layer wire envelopes.
//
// These ride as payloads of GCS multicasts (requests, forwards, in-group
// replies, aggregates) or of direct ORB oneways (closed-mode replies sent
// "directly" to the client, §2.1).
#pragma once

#include <variant>
#include <vector>

#include "gcs/types.hpp"
#include "invocation/types.hpp"
#include "obs/trace.hpp"
#include "serial/serial.hpp"

namespace newtop {

/// Request flags (bit set).
inline constexpr std::uint8_t kFlagAsyncForwarding = 1 << 0;
/// The forward is informational only: execute but do not reply (used for
/// the passive side of asynchronous forwarding).
inline constexpr std::uint8_t kFlagNoReply = 1 << 1;

/// Client -> server(s).  In open mode, multicast in the client/server
/// group; in closed mode, multicast in the access group.
struct RequestEnv {
    CallId call;
    obs::SpanContext span;  // the client span issuing this call
    InvocationMode mode{InvocationMode::kWaitFirst};
    std::uint8_t flags{0};
    GroupId server_group;  // which service this call targets
    BindMode bind{BindMode::kOpen};
    std::uint32_t method{0};
    Bytes args;
    /// Absolute sim time after which the client has given up on this call
    /// (stamped from the binding's call_timeout at each send; 0 = none).
    /// Servers shed work for expired calls instead of burning CPU on
    /// replies nobody is waiting for.
    SimTime deadline{0};
};

/// Request manager -> server group (step (ii) of fig. 4).
struct ForwardEnv {
    CallId call;
    obs::SpanContext span;  // the request-manager span driving the forward
    InvocationMode mode{InvocationMode::kWaitFirst};
    std::uint8_t flags{0};
    EndpointId manager;  // who is collecting replies
    std::uint32_t method{0};
    Bytes args;
    /// Client deadline carried over from the RequestEnv (0 = none).
    SimTime deadline{0};
};

/// One server's reply.  Multicast within the server group (open mode,
/// fig. 4(iii)) or sent directly to the client (closed mode).
struct ReplyEnv {
    CallId call;
    obs::SpanContext span;  // the replier's execution span
    EndpointId replier;
    bool ok{true};
    Bytes value;
};

/// Request manager -> client(s): the gathered replies (fig. 4(iv)).
struct AggregateEnv {
    CallId call;
    obs::SpanContext span;  // the request-manager span that collected
    bool complete{true};
    std::vector<ReplyEntry> replies;
};

using InvocationEnvelope = std::variant<RequestEnv, ForwardEnv, ReplyEnv, AggregateEnv>;

Bytes encode_envelope(const InvocationEnvelope& env);
InvocationEnvelope decode_envelope(const Bytes& wire);

void encode(Encoder& e, const CallId& v);
void decode(Decoder& d, CallId& v);
void encode(Encoder& e, const ReplyEntry& v);
void decode(Decoder& d, ReplyEntry& v);
void encode(Encoder& e, const obs::SpanContext& v);
void decode(Decoder& d, obs::SpanContext& v);

}  // namespace newtop
