#include "obs/trace.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace newtop::obs {

const char* trace_kind_name(TraceKind kind) {
    switch (kind) {
        case TraceKind::kMulticastSent: return "multicast_sent";
        case TraceKind::kDataOnWire: return "data_on_wire";
        case TraceKind::kNullOnWire: return "null_on_wire";
        case TraceKind::kOrderOnWire: return "order_on_wire";
        case TraceKind::kViewInstalled: return "view_installed";
        case TraceKind::kFlushSent: return "flush_sent";
        case TraceKind::kRequestQueued: return "request_queued";
        case TraceKind::kRequestSent: return "request_sent";
        case TraceKind::kRequestRetried: return "request_retried";
        case TraceKind::kReplyCollected: return "reply_collected";
        case TraceKind::kCallCompleted: return "call_completed";
        case TraceKind::kCallFailed: return "call_failed";
        case TraceKind::kCallTimedOut: return "call_timed_out";
        case TraceKind::kRebound: return "rebound";
        case TraceKind::kDataDelivered: return "data_delivered";
        case TraceKind::kCutDelivered: return "cut_delivered";
        case TraceKind::kViewChangeBegun: return "view_change_begun";
        case TraceKind::kRequestForwarded: return "request_forwarded";
        case TraceKind::kAggregateSent: return "aggregate_sent";
        case TraceKind::kExecutionBegun: return "execution_begun";
        case TraceKind::kExecutionDone: return "execution_done";
        case TraceKind::kSendQueued: return "send_queued";
        case TraceKind::kPayloadShipped: return "payload_shipped";
        case TraceKind::kDataArrived: return "data_arrived";
        case TraceKind::kPayloadDelivered: return "payload_delivered";
        case TraceKind::kOrderAssigned: return "order_assigned";
        case TraceKind::kConfigProposed: return "config_proposed";
        case TraceKind::kConfigSwitched: return "config_switched";
        case TraceKind::kSuspected: return "suspected";
        case TraceKind::kRequestShed: return "request_shed";
        case TraceKind::kBindShed: return "bind_shed";
    }
    return "?";
}

std::size_t trace_kind_index_from_name(std::string_view name) {
    for (std::size_t i = 0; i < kTraceKindCount; ++i) {
        if (name == trace_kind_name(static_cast<TraceKind>(i))) return i;
    }
    return kTraceKindCount;
}

std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t invocation_trace_id(std::uint64_t origin, std::uint64_t seq, bool group_origin) {
    std::uint64_t id = mix64(mix64(origin ^ (group_origin ? 0x8000000000000000ULL : 0)) + seq);
    return id == 0 ? 1 : id;
}

std::uint64_t span_id(std::uint64_t trace, std::uint64_t actor, SpanRole role) {
    std::uint64_t id = mix64(mix64(trace + actor) + static_cast<std::uint64_t>(role));
    return id == 0 ? 1 : id;
}

std::uint64_t multicast_trace_id(std::uint64_t endpoint, std::uint64_t counter) {
    std::uint64_t id = mix64(mix64(endpoint ^ 0x4d43415354ULL) + counter);  // "MCAST"
    return id == 0 ? 1 : id;
}

std::size_t VectorTraceSink::count(TraceKind kind) const {
    return static_cast<std::size_t>(
        std::count_if(events_.begin(), events_.end(),
                      [kind](const TraceEvent& e) { return e.kind == kind; }));
}

namespace {

void append_event_json(std::string& out, const TraceEvent& e) {
    out += "{\"at\":" + std::to_string(e.at);
    out += ",\"kind\":\"";
    out += trace_kind_name(e.kind);
    out += "\",\"actor\":" + std::to_string(e.actor);
    out += ",\"subject\":" + std::to_string(e.subject);
    out += ",\"detail\":" + std::to_string(e.detail);
    if (e.trace != 0) {
        out += ",\"trace\":" + std::to_string(e.trace);
        out += ",\"span\":" + std::to_string(e.span);
        out += ",\"parent\":" + std::to_string(e.parent);
    }
    out += '}';
}

}  // namespace

std::string VectorTraceSink::to_json() const {
    std::string out = "[";
    bool first = true;
    for (const TraceEvent& e : events_) {
        if (!first) out += ',';
        first = false;
        append_event_json(out, e);
    }
    out += ']';
    return out;
}

std::string TraceDump::to_json() const {
    std::string out = "{\"dropped\":" + std::to_string(dropped);
    out += ",\"expectations\":[";
    bool first = true;
    for (const TraceExpectation& x : expectations) {
        if (!first) out += ',';
        first = false;
        out += "{\"metric\":\"";
        out += x.metric;
        out += "\",\"count\":" + std::to_string(x.count);
        out += ",\"sum_us\":" + std::to_string(x.sum_us) + "}";
    }
    out += "],\"events\":[";
    first = true;
    for (const TraceEvent& e : events) {
        if (!first) out += ',';
        first = false;
        append_event_json(out, e);
    }
    out += "]}";
    return out;
}

// -- TraceDump parsing --------------------------------------------------------
//
// A deliberately minimal recursive-descent parser for exactly the JSON that
// TraceDump::to_json() emits (plus arbitrary key order and whitespace).  No
// external JSON dependency exists in this tree and the profiler only ever
// reads its own dumps, so strictness beats generality here.

namespace {

struct DumpParser {
    std::string_view s;
    std::size_t i{0};
    std::string err;

    bool fail(std::string message) {
        if (err.empty()) err = std::move(message) + " at offset " + std::to_string(i);
        return false;
    }

    void skip_ws() {
        while (i < s.size() &&
               (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) {
            ++i;
        }
    }

    bool consume(char c) {
        skip_ws();
        if (i < s.size() && s[i] == c) {
            ++i;
            return true;
        }
        return fail(std::string("expected '") + c + "'");
    }

    bool peek(char c) {
        skip_ws();
        return i < s.size() && s[i] == c;
    }

    bool parse_string(std::string& out) {
        out.clear();
        if (!consume('"')) return false;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                ++i;
                if (i >= s.size()) return fail("unterminated escape");
                switch (s[i]) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 't': out += '\t'; break;
                    default: return fail("unsupported escape");
                }
                ++i;
            } else {
                out += s[i++];
            }
        }
        if (i >= s.size()) return fail("unterminated string");
        ++i;  // closing quote
        return true;
    }

    bool parse_int(std::int64_t& out) {
        skip_ws();
        const bool negative = i < s.size() && s[i] == '-';
        if (negative) ++i;
        if (i >= s.size() || s[i] < '0' || s[i] > '9') return fail("expected integer");
        std::uint64_t magnitude = 0;
        while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
            magnitude = magnitude * 10 + static_cast<std::uint64_t>(s[i] - '0');
            ++i;
        }
        out = negative ? -static_cast<std::int64_t>(magnitude)
                       : static_cast<std::int64_t>(magnitude);
        return true;
    }

    bool parse_uint(std::uint64_t& out) {
        skip_ws();
        if (i >= s.size() || s[i] < '0' || s[i] > '9') return fail("expected integer");
        out = 0;
        while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
            out = out * 10 + static_cast<std::uint64_t>(s[i] - '0');
            ++i;
        }
        return true;
    }

    bool parse_expectation(TraceExpectation& out) {
        if (!consume('{')) return false;
        bool first = true;
        while (!peek('}')) {
            if (!first && !consume(',')) return false;
            first = false;
            std::string key;
            if (!parse_string(key) || !consume(':')) return false;
            if (key == "metric") {
                if (!parse_string(out.metric)) return false;
            } else if (key == "count") {
                if (!parse_uint(out.count)) return false;
            } else if (key == "sum_us") {
                if (!parse_int(out.sum_us)) return false;
            } else {
                return fail("unknown expectation key '" + key + "'");
            }
        }
        return consume('}');
    }

    bool parse_event(TraceEvent& out) {
        if (!consume('{')) return false;
        bool first = true;
        while (!peek('}')) {
            if (!first && !consume(',')) return false;
            first = false;
            std::string key;
            if (!parse_string(key) || !consume(':')) return false;
            if (key == "at") {
                std::int64_t at = 0;
                if (!parse_int(at)) return false;
                out.at = at;
            } else if (key == "kind") {
                std::string name;
                if (!parse_string(name)) return false;
                const std::size_t index = trace_kind_index_from_name(name);
                if (index >= kTraceKindCount) return fail("unknown kind '" + name + "'");
                out.kind = static_cast<TraceKind>(index);
            } else if (key == "actor") {
                if (!parse_uint(out.actor)) return false;
            } else if (key == "subject") {
                if (!parse_uint(out.subject)) return false;
            } else if (key == "detail") {
                if (!parse_uint(out.detail)) return false;
            } else if (key == "trace") {
                if (!parse_uint(out.trace)) return false;
            } else if (key == "span") {
                if (!parse_uint(out.span)) return false;
            } else if (key == "parent") {
                if (!parse_uint(out.parent)) return false;
            } else {
                return fail("unknown event key '" + key + "'");
            }
        }
        return consume('}');
    }

    bool parse_dump(TraceDump& out) {
        if (!consume('{')) return false;
        bool first = true;
        while (!peek('}')) {
            if (!first && !consume(',')) return false;
            first = false;
            std::string key;
            if (!parse_string(key) || !consume(':')) return false;
            if (key == "dropped") {
                if (!parse_uint(out.dropped)) return false;
            } else if (key == "expectations") {
                if (!consume('[')) return false;
                while (!peek(']')) {
                    if (!out.expectations.empty() && !consume(',')) return false;
                    TraceExpectation x;
                    if (!parse_expectation(x)) return false;
                    out.expectations.push_back(std::move(x));
                }
                if (!consume(']')) return false;
            } else if (key == "events") {
                if (!consume('[')) return false;
                while (!peek(']')) {
                    if (!out.events.empty() && !consume(',')) return false;
                    TraceEvent e;
                    if (!parse_event(e)) return false;
                    out.events.push_back(e);
                }
                if (!consume(']')) return false;
            } else {
                return fail("unknown dump key '" + key + "'");
            }
        }
        if (!consume('}')) return false;
        skip_ws();
        if (i != s.size()) return fail("trailing data");
        return true;
    }
};

}  // namespace

bool parse_trace_dump(std::string_view json, TraceDump& out, std::string& error) {
    out = TraceDump{};
    DumpParser parser{json, 0, {}};
    if (parser.parse_dump(out)) return true;
    error = parser.err.empty() ? "malformed trace dump" : parser.err;
    return false;
}

RingTraceSink::RingTraceSink(std::size_t capacity) : buffer_(capacity == 0 ? 1 : capacity) {}

void RingTraceSink::record(const TraceEvent& event) {
    if (size_ == buffer_.size()) {
        ++dropped_;
        if (metrics_ != nullptr) metrics_->add(metric::kObsTraceDropped);
    }
    buffer_[head_] = event;
    head_ = (head_ + 1) % buffer_.size();
    size_ = std::min(size_ + 1, buffer_.size());
}

TraceDump RingTraceSink::dump() const {
    TraceDump out;
    out.dropped = dropped_;
    out.events = snapshot();
    return out;
}

std::vector<TraceEvent> RingTraceSink::snapshot() const {
    std::vector<TraceEvent> out;
    out.reserve(size_);
    const std::size_t start = (head_ + buffer_.size() - size_) % buffer_.size();
    for (std::size_t i = 0; i < size_; ++i) {
        out.push_back(buffer_[(start + i) % buffer_.size()]);
    }
    return out;
}

void RingTraceSink::clear() {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
}

}  // namespace newtop::obs
