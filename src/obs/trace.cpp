#include "obs/trace.hpp"

#include <algorithm>

namespace newtop::obs {

const char* trace_kind_name(TraceKind kind) {
    switch (kind) {
        case TraceKind::kMulticastSent: return "multicast_sent";
        case TraceKind::kDataOnWire: return "data_on_wire";
        case TraceKind::kNullOnWire: return "null_on_wire";
        case TraceKind::kOrderOnWire: return "order_on_wire";
        case TraceKind::kViewInstalled: return "view_installed";
        case TraceKind::kFlushSent: return "flush_sent";
        case TraceKind::kRequestQueued: return "request_queued";
        case TraceKind::kRequestSent: return "request_sent";
        case TraceKind::kRequestRetried: return "request_retried";
        case TraceKind::kReplyCollected: return "reply_collected";
        case TraceKind::kCallCompleted: return "call_completed";
        case TraceKind::kCallFailed: return "call_failed";
        case TraceKind::kCallTimedOut: return "call_timed_out";
        case TraceKind::kRebound: return "rebound";
    }
    return "?";
}

std::size_t VectorTraceSink::count(TraceKind kind) const {
    return static_cast<std::size_t>(
        std::count_if(events_.begin(), events_.end(),
                      [kind](const TraceEvent& e) { return e.kind == kind; }));
}

std::string VectorTraceSink::to_json() const {
    std::string out = "[";
    bool first = true;
    for (const TraceEvent& e : events_) {
        if (!first) out += ',';
        first = false;
        out += "{\"at\":" + std::to_string(e.at);
        out += ",\"kind\":\"";
        out += trace_kind_name(e.kind);
        out += "\",\"actor\":" + std::to_string(e.actor);
        out += ",\"subject\":" + std::to_string(e.subject);
        out += ",\"detail\":" + std::to_string(e.detail);
        out += '}';
    }
    out += ']';
    return out;
}

}  // namespace newtop::obs
