#include "obs/trace.hpp"

#include <algorithm>
#include <cassert>

namespace newtop::obs {

const char* trace_kind_name(TraceKind kind) {
    switch (kind) {
        case TraceKind::kMulticastSent: return "multicast_sent";
        case TraceKind::kDataOnWire: return "data_on_wire";
        case TraceKind::kNullOnWire: return "null_on_wire";
        case TraceKind::kOrderOnWire: return "order_on_wire";
        case TraceKind::kViewInstalled: return "view_installed";
        case TraceKind::kFlushSent: return "flush_sent";
        case TraceKind::kRequestQueued: return "request_queued";
        case TraceKind::kRequestSent: return "request_sent";
        case TraceKind::kRequestRetried: return "request_retried";
        case TraceKind::kReplyCollected: return "reply_collected";
        case TraceKind::kCallCompleted: return "call_completed";
        case TraceKind::kCallFailed: return "call_failed";
        case TraceKind::kCallTimedOut: return "call_timed_out";
        case TraceKind::kRebound: return "rebound";
        case TraceKind::kDataDelivered: return "data_delivered";
        case TraceKind::kCutDelivered: return "cut_delivered";
        case TraceKind::kViewChangeBegun: return "view_change_begun";
        case TraceKind::kRequestForwarded: return "request_forwarded";
        case TraceKind::kAggregateSent: return "aggregate_sent";
        case TraceKind::kExecutionBegun: return "execution_begun";
        case TraceKind::kExecutionDone: return "execution_done";
    }
    return "?";
}

std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t invocation_trace_id(std::uint64_t origin, std::uint64_t seq, bool group_origin) {
    std::uint64_t id = mix64(mix64(origin ^ (group_origin ? 0x8000000000000000ULL : 0)) + seq);
    return id == 0 ? 1 : id;
}

std::uint64_t span_id(std::uint64_t trace, std::uint64_t actor, SpanRole role) {
    std::uint64_t id = mix64(mix64(trace + actor) + static_cast<std::uint64_t>(role));
    return id == 0 ? 1 : id;
}

std::size_t VectorTraceSink::count(TraceKind kind) const {
    return static_cast<std::size_t>(
        std::count_if(events_.begin(), events_.end(),
                      [kind](const TraceEvent& e) { return e.kind == kind; }));
}

std::string VectorTraceSink::to_json() const {
    std::string out = "[";
    bool first = true;
    for (const TraceEvent& e : events_) {
        if (!first) out += ',';
        first = false;
        out += "{\"at\":" + std::to_string(e.at);
        out += ",\"kind\":\"";
        out += trace_kind_name(e.kind);
        out += "\",\"actor\":" + std::to_string(e.actor);
        out += ",\"subject\":" + std::to_string(e.subject);
        out += ",\"detail\":" + std::to_string(e.detail);
        if (e.trace != 0) {
            out += ",\"trace\":" + std::to_string(e.trace);
            out += ",\"span\":" + std::to_string(e.span);
            out += ",\"parent\":" + std::to_string(e.parent);
        }
        out += '}';
    }
    out += ']';
    return out;
}

RingTraceSink::RingTraceSink(std::size_t capacity) : buffer_(capacity == 0 ? 1 : capacity) {}

void RingTraceSink::record(const TraceEvent& event) {
    if (size_ == buffer_.size()) ++dropped_;
    buffer_[head_] = event;
    head_ = (head_ + 1) % buffer_.size();
    size_ = std::min(size_ + 1, buffer_.size());
}

std::vector<TraceEvent> RingTraceSink::snapshot() const {
    std::vector<TraceEvent> out;
    out.reserve(size_);
    const std::size_t start = (head_ + buffer_.size() - size_) % buffer_.size();
    for (std::size_t i = 0; i < size_; ++i) {
        out.push_back(buffer_[(start + i) % buffer_.size()]);
    }
    return out;
}

void RingTraceSink::clear() {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
}

}  // namespace newtop::obs
