// Central registry of metric, gauge and phase names.
//
// Every counter/histogram/gauge name and every profiler phase label lives
// here as a named constant.  Emission sites reference the constants instead
// of spelling string literals, so a typo becomes a compile error instead of
// a silently separate metric series — enforced by the newtop_lint
// "metric-name" rule, which flags metric-prefixed string literals anywhere
// in src/ outside this file.
#pragma once

#include <string_view>

namespace newtop::obs::metric {

// -- cpu ----------------------------------------------------------------------
inline constexpr std::string_view kCpuTasks = "cpu.tasks";
inline constexpr std::string_view kCpuBusyUs = "cpu.busy_us";
inline constexpr std::string_view kCpuQueueWaitUs = "cpu.queue_wait_us";
/// Gauge: microseconds of queued-but-unexecuted work, summed over nodes.
inline constexpr std::string_view kCpuBacklogUs = "cpu.backlog_us";

// -- net ----------------------------------------------------------------------
inline constexpr std::string_view kNetMessagesSent = "net.messages_sent";
inline constexpr std::string_view kNetBytesSent = "net.bytes_sent";
inline constexpr std::string_view kNetWanMessages = "net.wan_messages";
inline constexpr std::string_view kNetMessagesLost = "net.messages_lost";
inline constexpr std::string_view kNetStaleIncarnationDrops = "net.stale_incarnation_drops";
inline constexpr std::string_view kNetMessagesDelivered = "net.messages_delivered";
inline constexpr std::string_view kNetDeliveryLatencyUs = "net.delivery_latency_us";
inline constexpr std::string_view kNetCrashes = "net.crashes";
inline constexpr std::string_view kNetCrashIgnored = "net.crash_ignored";
inline constexpr std::string_view kNetRestarts = "net.restarts";
inline constexpr std::string_view kNetRestartIgnored = "net.restart_ignored";
/// Prefix for the per-(site,site) link counters ("net.link.A->B.messages",
/// ".bytes", ".drops"); the full names are composed at runtime.
inline constexpr std::string_view kNetLinkPrefix = "net.link.";

// -- orb ----------------------------------------------------------------------
inline constexpr std::string_view kOrbInvocations = "orb.invocations";
inline constexpr std::string_view kOrbCallTimeouts = "orb.call_timeouts";
inline constexpr std::string_view kOrbOneways = "orb.oneways";
inline constexpr std::string_view kOrbRequestsHandled = "orb.requests_handled";
inline constexpr std::string_view kOrbRepliesSent = "orb.replies_sent";
inline constexpr std::string_view kOrbRepliesReceived = "orb.replies_received";
inline constexpr std::string_view kOrbGroupRetries = "orb.group_retries";

// -- gcs ----------------------------------------------------------------------
inline constexpr std::string_view kGcsMulticasts = "gcs.multicasts";
inline constexpr std::string_view kGcsSendsCoalesced = "gcs.sends_coalesced";
inline constexpr std::string_view kGcsSendBatchPayloads = "gcs.send_batch_payloads";
inline constexpr std::string_view kGcsNullsSent = "gcs.nulls_sent";
inline constexpr std::string_view kGcsOrderSent = "gcs.order_sent";
inline constexpr std::string_view kGcsDataSent = "gcs.data_sent";
inline constexpr std::string_view kGcsHoldbackDepth = "gcs.holdback_depth";
inline constexpr std::string_view kGcsOrderBatchRefs = "gcs.order_batch_refs";
inline constexpr std::string_view kGcsDelivered = "gcs.delivered";
inline constexpr std::string_view kGcsDeliveryLatencyUs = "gcs.delivery_latency_us";
inline constexpr std::string_view kGcsNacksSent = "gcs.nacks_sent";
inline constexpr std::string_view kGcsRetransmits = "gcs.retransmits";
inline constexpr std::string_view kGcsGroupRefounds = "gcs.group_refounds";
inline constexpr std::string_view kGcsFlushesSent = "gcs.flushes_sent";
inline constexpr std::string_view kGcsViewsInstalled = "gcs.views_installed";
/// Gauge: messages parked in holdback queues, summed over endpoints.
inline constexpr std::string_view kGcsHoldback = "gcs.holdback";
/// Gauge: send credits in flight (unacknowledged own sends counted against
/// the order window), summed over endpoints.
inline constexpr std::string_view kGcsCreditsInFlight = "gcs.credits_in_flight";
/// Gauge: payloads queued waiting for a send credit, summed over endpoints
/// (includes sends blocked by a view change).
inline constexpr std::string_view kGcsBlockedSends = "gcs.blocked_sends";
/// View installs that applied a new configuration (runtime reconfigurations
/// honoured, counted once per member that switched).
inline constexpr std::string_view kGcsReconfigs = "gcs.reconfigs";
/// Gauge: highest config epoch installed, summed over endpoints (a stuck
/// member shows up as the sum lagging members x epoch).
inline constexpr std::string_view kGcsConfigEpoch = "gcs.config_epoch";
/// Histogram: proposal delivery -> reconfigured view install, per member —
/// the flush stall an in-flight reconfiguration imposes on the group.
inline constexpr std::string_view kGcsReconfigStallUs = "gcs.reconfig_stall_us";
/// Suspicions retroactively confirmed: the suspect was removed by a view
/// without ever being heard from again after the suspicion was raised.
inline constexpr std::string_view kGcsSuspicionTrue = "gcs.suspicion_true";
/// Suspicions retroactively refuted: a message from the suspect arrived
/// after the suspicion was raised — the peer was slow, not dead.
inline constexpr std::string_view kGcsSuspicionFalse = "gcs.suspicion_false";
/// Histogram: silence accrued when a suspicion was raised (last heard ->
/// suspected), the detector's detection latency per suspicion.
inline constexpr std::string_view kGcsDetectionLatencyUs = "gcs.detection_latency_us";
/// Prefix for the per-peer φ-accrual suspicion-level gauges
/// ("gcs.phi.<endpoint>", sampled in milli-φ); composed at runtime like the
/// per-link counters above.
inline constexpr std::string_view kGcsPhiPrefix = "gcs.phi.";

// -- invocation ---------------------------------------------------------------
inline constexpr std::string_view kInvRebinds = "invocation.rebinds";
inline constexpr std::string_view kInvBackoffs = "invocation.backoffs";
inline constexpr std::string_view kInvBackoffRebinds = "invocation.backoff_rebinds";
inline constexpr std::string_view kInvRequestsQueued = "invocation.requests_queued";
inline constexpr std::string_view kInvCallsSent = "invocation.calls_sent";
inline constexpr std::string_view kInvCallsRetried = "invocation.calls_retried";
inline constexpr std::string_view kInvCallsTimedOut = "invocation.calls_timed_out";
inline constexpr std::string_view kInvCallsCompleted = "invocation.calls_completed";
inline constexpr std::string_view kInvCallsFailed = "invocation.calls_failed";
inline constexpr std::string_view kInvRepliesCollected = "invocation.replies_collected";
inline constexpr std::string_view kInvRmRepliesCollected = "invocation.rm_replies_collected";
inline constexpr std::string_view kInvReplyWaitOneway = "invocation.reply_wait_us.oneway";
inline constexpr std::string_view kInvReplyWaitFirst = "invocation.reply_wait_us.first";
inline constexpr std::string_view kInvReplyWaitMajority = "invocation.reply_wait_us.majority";
inline constexpr std::string_view kInvReplyWaitAll = "invocation.reply_wait_us.all";
inline constexpr std::string_view kInvReplyWaitOther = "invocation.reply_wait_us.other";
/// Requests dropped at a server because their deadline had already passed
/// (graceful degradation: shed work nobody is waiting for).
inline constexpr std::string_view kInvShed = "invocation.shed";
/// Bind admissions refused because the server endpoint was overloaded; the
/// client's invite times out and its capped backoff defers the retry.
inline constexpr std::string_view kInvBindShed = "invocation.bind_shed";

// -- directory ----------------------------------------------------------------
inline constexpr std::string_view kDirectoryEvictions = "directory.evictions";
/// Gauge: live NSO registrations in the bootstrap directory.
inline constexpr std::string_view kDirectorySize = "directory.size";

// -- replication / recovery ---------------------------------------------------
inline constexpr std::string_view kReplicationStateRefounds = "replication.state_refounds";
inline constexpr std::string_view kRecoveryMttr = "recovery.mttr";

// -- obs (self-observation) ---------------------------------------------------
/// Events evicted from a bounded RingTraceSink; non-zero means the trace is
/// truncated and the profiler/oracle must refuse to attribute from it.
inline constexpr std::string_view kObsTraceDropped = "obs.trace_dropped";

}  // namespace newtop::obs::metric

namespace newtop::obs::phase {

// Profiler phase labels: every invocation's end-to-end latency decomposes
// into these buckets (see src/obs/profiler.hpp).  The segment→bucket
// mapping is defined in profiler.cpp; names here keep report producers and
// consumers (bench JSON, newtop_prof, tests) in agreement.
inline constexpr std::string_view kMarshal = "marshal";
inline constexpr std::string_view kCreditWait = "credit_wait";
inline constexpr std::string_view kWire = "wire";
inline constexpr std::string_view kOrderWait = "order_wait";
inline constexpr std::string_view kCpuWait = "cpu_wait";
inline constexpr std::string_view kExecution = "execution";
inline constexpr std::string_view kReplyCollection = "reply_collection";
/// Diagnostic only (overlaps order_wait; excluded from the phase sum):
/// sequencer DATA arrival → ORDER assignment broadcast.
inline constexpr std::string_view kSequencerTurnaround = "sequencer_turnaround";

inline constexpr std::string_view kAll[] = {kMarshal,  kCreditWait, kWire,           kOrderWait,
                                            kCpuWait,  kExecution,  kReplyCollection};

}  // namespace newtop::obs::phase
