// Structured protocol tracing.
//
// A TraceSink receives typed events from the instrumented protocol layers
// (multicasts, wire messages, view installs, request lifecycle, deliveries).
// Events carry simulated timestamps only, so a trace — like every metric —
// is a pure function of the run's seed.  Tracing is optional: the registry
// holds a nullable sink pointer and instrumentation sites pay one branch
// when no sink is installed.
//
// On top of the flat event stream sits a causal span model: every
// invocation owns a deterministic 64-bit trace id (derived from its
// CallId), and each principal that works on the call — the client, the
// request manager, each executing server replica — owns a span inside that
// trace.  Span ids ride inside the invocation envelopes, so the full
// client → manager → group → reply tree is reconstructable from one event
// stream (see src/obs/export.hpp for the Perfetto mapping and
// src/obs/oracle.hpp for the invariant checker that consumes it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace newtop::obs {

enum class TraceKind : std::uint8_t {
    // gcs data path
    kMulticastSent = 0,  // application multicast submitted to a group
    kDataOnWire = 1,     // application data message sent on the wire
    kNullOnWire = 2,     // time-silence null sent
    kOrderOnWire = 3,    // sequencer order record sent
    // gcs membership
    kViewInstalled = 4,  // a new view installed at this member
    kFlushSent = 5,      // flush answer sent to a view-change coordinator
    // invocation lifecycle
    kRequestQueued = 6,    // call queued awaiting binding readiness
    kRequestSent = 7,      // call multicast into the client/server group
    kRequestRetried = 8,   // call re-sent after a rebind
    kReplyCollected = 9,   // one server reply gathered (client or manager)
    kCallCompleted = 10,   // handler fired with complete=true
    kCallFailed = 11,      // handler fired with complete=false
    kCallTimedOut = 12,    // call_timeout expired before the threshold
    kRebound = 13,         // binding rebound to a new manager / fresh group
    // gcs delivery path
    kDataDelivered = 14,   // application message handed to the app layer
    kCutDelivered = 15,    // view-change cut flushed to the app layer
    kViewChangeBegun = 16, // membership round opened towards a new epoch
    // invocation span edges
    kRequestForwarded = 17, // request manager took charge of a call
    kAggregateSent = 18,    // request manager multicast the gathered replies
    kExecutionBegun = 19,   // a server replica started executing the servant
    kExecutionDone = 20,    // the servant finished and the reply went out
    // gcs data-path phase boundaries (latency attribution)
    kSendQueued = 21,        // payload parked waiting for a send credit
    kPayloadShipped = 22,    // payload left the endpoint on a DATA message
    kDataArrived = 23,       // DATA message ingested in FIFO order at a member
    kPayloadDelivered = 24,  // one payload handed to the app layer
    kOrderAssigned = 25,     // sequencer broadcast the order record for a ref
    // runtime reconfiguration
    kConfigProposed = 26,    // a ConfigChangeMsg delivered in total order
    kConfigSwitched = 27,    // a view install applied a new configuration
    // gray-failure resilience
    kSuspected = 28,         // the failure detector raised a suspicion
    kRequestShed = 29,       // a server shed a request past its deadline
    kBindShed = 30,          // an overloaded server refused a bind admission
};

/// Number of TraceKind values; keep in sync with the enum above (the
/// exhaustiveness test in tests/obs_test.cpp fails if a kind lacks a name).
inline constexpr std::size_t kTraceKindCount = 31;

[[nodiscard]] const char* trace_kind_name(TraceKind kind);

/// Inverse of trace_kind_name(); returns kTraceKindCount for an unknown
/// name (callers treat that as a parse error).
[[nodiscard]] std::size_t trace_kind_index_from_name(std::string_view name);

/// Identifies one span inside one trace.  A zero trace id means "not part
/// of any invocation" (pure GCS traffic, membership events, ...).
struct SpanContext {
    std::uint64_t trace{0};
    std::uint64_t span{0};

    friend bool operator==(const SpanContext&, const SpanContext&) = default;
};

/// The principal a span belongs to; folded into the span id so the same
/// endpoint can hold distinct client/manager/server spans of one trace.
/// kSender marks the synthesized root span of a bare GCS multicast (traffic
/// that is not part of any invocation but still profiled per payload).
enum class SpanRole : std::uint8_t { kClient = 1, kManager = 2, kServer = 3, kSender = 4 };

/// SplitMix64 finalizer: a cheap, deterministic 64-bit mixer.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x);

/// Deterministic trace id for an invocation, derived from its CallId
/// fields.  Never returns zero (zero is the "no trace" sentinel).
[[nodiscard]] std::uint64_t invocation_trace_id(std::uint64_t origin, std::uint64_t seq,
                                                bool group_origin);

/// Deterministic span id for `actor` playing `role` in `trace`.  Never
/// returns zero.
[[nodiscard]] std::uint64_t span_id(std::uint64_t trace, std::uint64_t actor, SpanRole role);

/// Deterministic trace id for the `counter`-th bare multicast submitted by
/// `endpoint` (GCS traffic outside any invocation).  Never returns zero and
/// never collides with invocation_trace_id for realistic inputs.
[[nodiscard]] std::uint64_t multicast_trace_id(std::uint64_t endpoint, std::uint64_t counter);

// -- detail-field packing -----------------------------------------------------
//
// Some kinds carry composite facts in the 64-bit `detail` field; the
// helpers below define the layouts so emitters and consumers (the oracle,
// the exporter) agree.

/// kDataDelivered detail: {epoch, sender, seq} of the delivered message.
/// Epochs and endpoint ids are truncated to 16 bits, seqs to 32 — far
/// above anything a simulated scenario reaches.
[[nodiscard]] constexpr std::uint64_t pack_delivered_ref(std::uint64_t epoch,
                                                         std::uint64_t sender,
                                                         std::uint64_t seq) {
    return ((epoch & 0xffffULL) << 48) | ((sender & 0xffffULL) << 32) | (seq & 0xffffffffULL);
}

/// kViewInstalled detail: low 32 bits the epoch, high 32 bits a digest of
/// the sorted membership.  Two partitions installing the same epoch number
/// therefore produce distinguishable view identities.
[[nodiscard]] constexpr std::uint64_t pack_view_detail(std::uint64_t epoch,
                                                       std::uint64_t members_digest) {
    return ((members_digest & 0xffffffffULL) << 32) | (epoch & 0xffffffffULL);
}

[[nodiscard]] constexpr std::uint64_t view_detail_epoch(std::uint64_t detail) {
    return detail & 0xffffffffULL;
}

/// kConfigSwitched detail: low 32 bits the view epoch the new configuration
/// took effect at (pre-cut deliveries for older epochs are traced *before*
/// this event), high 32 bits the config epoch.  kConfigProposed reuses the
/// same layout with the config epoch the proposal would create.
[[nodiscard]] constexpr std::uint64_t pack_config_detail(std::uint64_t config_epoch,
                                                         std::uint64_t view_epoch) {
    return (config_epoch << 32) | (view_epoch & 0xffffffffULL);
}

[[nodiscard]] constexpr std::uint64_t config_detail_view_epoch(std::uint64_t detail) {
    return detail & 0xffffffffULL;
}

[[nodiscard]] constexpr std::uint64_t config_detail_config_epoch(std::uint64_t detail) {
    return detail >> 32;
}

/// kCallCompleted / kCallFailed / kCallTimedOut detail: low 32 bits the
/// call seq, high bits the invocation mode (0 = one-way), so the oracle
/// can exempt one-way calls from reply-threshold accounting.
[[nodiscard]] constexpr std::uint64_t pack_completion_detail(std::uint64_t mode,
                                                             std::uint64_t seq) {
    return (mode << 32) | (seq & 0xffffffffULL);
}

[[nodiscard]] constexpr std::uint64_t completion_detail_mode(std::uint64_t detail) {
    return detail >> 32;
}

/// kExecutionBegun detail: low 32 bits the call seq, high 32 bits the
/// execution cost in microseconds (handoff + servant cost).  The profiler
/// splits the begun→done interval into cpu_wait (queueing) and execution
/// (the packed cost) with it.
[[nodiscard]] constexpr std::uint64_t pack_execution_detail(std::uint64_t cost_us,
                                                            std::uint64_t seq) {
    return (cost_us << 32) | (seq & 0xffffffffULL);
}

[[nodiscard]] constexpr std::uint64_t execution_detail_cost(std::uint64_t detail) {
    return detail >> 32;
}

/// FNV-1a over a sequence of 64-bit values (used for membership digests;
/// View.members is sorted, so the digest is order-independent by
/// construction).
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::uint64_t seed, std::uint64_t value) {
    std::uint64_t h = seed;
    for (int shift = 0; shift < 64; shift += 8) {
        h ^= (value >> shift) & 0xff;
        h *= 1099511628211ULL;
    }
    return h;
}

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ULL;

/// One protocol event.  `actor` is the endpoint (or node) that produced the
/// event; `subject` and `detail` are kind-specific (group id, binding id,
/// call seq, epoch, packed refs, ...), documented at the emission sites.
/// `trace`/`span`/`parent` tie the event into the causal span model; all
/// three are zero for events outside any invocation.
struct TraceEvent {
    SimTime at{0};
    TraceKind kind{TraceKind::kMulticastSent};
    std::uint64_t actor{0};
    std::uint64_t subject{0};
    std::uint64_t detail{0};
    std::uint64_t trace{0};
    std::uint64_t span{0};
    std::uint64_t parent{0};
};

class TraceSink {
public:
    virtual ~TraceSink() = default;
    virtual void record(const TraceEvent& event) = 0;
};

/// An independently measured latency total embedded in a trace dump: the
/// profiler cross-checks its trace-derived sums against these (the
/// self-validation that makes a >1% mismatch a tracing bug, not a report).
struct TraceExpectation {
    std::string metric;        // histogram the numbers came from
    std::uint64_t count{0};    // samples in the histogram
    std::int64_t sum_us{0};    // sum of the samples, microseconds

    friend bool operator==(const TraceExpectation&, const TraceExpectation&) = default;
};

/// A self-describing trace artifact: the event stream plus the metadata the
/// profiler needs to refuse truncated input and to reconcile its phase sums
/// against independently measured latencies.  Serialized as one JSON object
/// (see to_json/parse_trace_dump) so `tools/newtop_prof` can consume dumps
/// written by benches or tests.
struct TraceDump {
    std::uint64_t dropped{0};  // events evicted from a bounded sink
    std::vector<TraceExpectation> expectations;
    std::vector<TraceEvent> events;

    [[nodiscard]] std::string to_json() const;
};

/// Parse a dump produced by TraceDump::to_json().  On malformed input
/// returns false and sets `error`; `out` is left in an unspecified state.
[[nodiscard]] bool parse_trace_dump(std::string_view json, TraceDump& out, std::string& error);

/// Buffers every event in order — the workhorse for tests and offline
/// analysis.
class VectorTraceSink final : public TraceSink {
public:
    void record(const TraceEvent& event) override { events_.push_back(event); }

    [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
    void clear() { events_.clear(); }

    /// Count events of one kind (test convenience).
    [[nodiscard]] std::size_t count(TraceKind kind) const;

    /// Deterministic JSON array of the buffered events.
    [[nodiscard]] std::string to_json() const;

private:
    std::vector<TraceEvent> events_;
};

/// Bounded sink: keeps the most recent `capacity` events, overwriting the
/// oldest, so long bench runs trace without unbounded memory growth.
class RingTraceSink final : public TraceSink {
public:
    explicit RingTraceSink(std::size_t capacity);

    void record(const TraceEvent& event) override;

    [[nodiscard]] std::size_t capacity() const { return buffer_.size(); }
    [[nodiscard]] std::size_t size() const { return size_; }
    /// Events evicted to make room (0 until the ring wraps).
    [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

    /// Mirror evictions into the counter obs.trace_dropped so overflow is a
    /// first-class metric rather than a property one must remember to poll.
    /// Not owned; pass nullptr to detach.
    void attach_metrics(class MetricsRegistry* metrics) { metrics_ = metrics; }

    /// Buffered events, oldest first.
    [[nodiscard]] std::vector<TraceEvent> snapshot() const;

    /// Package the buffered events (oldest first) as a TraceDump carrying
    /// the eviction count; callers append expectations before serializing.
    [[nodiscard]] TraceDump dump() const;

    void clear();

private:
    std::vector<TraceEvent> buffer_;
    std::size_t head_{0};  // next write position
    std::size_t size_{0};
    std::uint64_t dropped_{0};
    class MetricsRegistry* metrics_{nullptr};
};

}  // namespace newtop::obs
