// Structured protocol tracing.
//
// A TraceSink receives typed events from the instrumented protocol layers
// (multicasts, wire messages, view installs, request lifecycle).  Events
// carry simulated timestamps only, so a trace — like every metric — is a
// pure function of the run's seed.  Tracing is optional: the registry holds
// a nullable sink pointer and instrumentation sites pay one branch when no
// sink is installed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace newtop::obs {

enum class TraceKind : std::uint8_t {
    // gcs data path
    kMulticastSent = 0,  // application multicast submitted to a group
    kDataOnWire = 1,     // application data message sent on the wire
    kNullOnWire = 2,     // time-silence null sent
    kOrderOnWire = 3,    // sequencer order record sent
    // gcs membership
    kViewInstalled = 4,  // a new view installed at this member
    kFlushSent = 5,      // flush answer sent to a view-change coordinator
    // invocation lifecycle
    kRequestQueued = 6,    // call queued awaiting binding readiness
    kRequestSent = 7,      // call multicast into the client/server group
    kRequestRetried = 8,   // call re-sent after a rebind
    kReplyCollected = 9,   // one server reply gathered (client or manager)
    kCallCompleted = 10,   // handler fired with complete=true
    kCallFailed = 11,      // handler fired with complete=false
    kCallTimedOut = 12,    // call_timeout expired before the threshold
    kRebound = 13,         // binding rebound to a new manager / fresh group
};

[[nodiscard]] const char* trace_kind_name(TraceKind kind);

/// One protocol event.  `actor` is the endpoint (or node) that produced the
/// event; `subject` and `detail` are kind-specific (group id, binding id,
/// call seq, epoch, payload size, ...), documented at the emission sites.
struct TraceEvent {
    SimTime at{0};
    TraceKind kind{TraceKind::kMulticastSent};
    std::uint64_t actor{0};
    std::uint64_t subject{0};
    std::uint64_t detail{0};
};

class TraceSink {
public:
    virtual ~TraceSink() = default;
    virtual void record(const TraceEvent& event) = 0;
};

/// Buffers every event in order — the workhorse for tests and offline
/// analysis.
class VectorTraceSink final : public TraceSink {
public:
    void record(const TraceEvent& event) override { events_.push_back(event); }

    [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
    void clear() { events_.clear(); }

    /// Count events of one kind (test convenience).
    [[nodiscard]] std::size_t count(TraceKind kind) const;

    /// Deterministic JSON array of the buffered events.
    [[nodiscard]] std::string to_json() const;

private:
    std::vector<TraceEvent> events_;
};

}  // namespace newtop::obs
