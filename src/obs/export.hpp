// Chrome trace-event / Perfetto export of a recorded event stream.
//
// Maps the simulated world onto the trace-event JSON model: nodes become
// processes, endpoints become threads, matched span begin/end pairs become
// "X" (complete) duration events and every other event an "i" instant.
// The output is a pure function of the input events (integer-only fields,
// sorted metadata), so two same-seed runs export byte-identical files —
// load the result at ui.perfetto.dev or chrome://tracing.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace newtop::obs {

struct ExportOptions {
    /// Maps an event's `actor` (endpoint id) to the node hosting it; actors
    /// absent from the map fall back to pid = actor (one process each).
    std::map<std::uint64_t, std::uint64_t> actor_to_node;
};

/// True for kinds that open a span (the matching end closes it).
[[nodiscard]] bool is_span_begin(TraceKind kind);
/// True for kinds that close a span.
[[nodiscard]] bool is_span_end(TraceKind kind);

/// Serialize `events` as a Chrome trace-event JSON object
/// (`{"traceEvents":[...]}`).  Timestamps are already microseconds — the
/// trace-event native unit — so sim times pass through unchanged.
[[nodiscard]] std::string export_chrome_trace(const std::vector<TraceEvent>& events,
                                              const ExportOptions& options = {});

}  // namespace newtop::obs
