#include "obs/profiler.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/names.hpp"

namespace newtop::obs {

namespace {

std::string_view reply_metric_for_mode(std::uint64_t mode) {
    switch (mode) {
        case 0: return metric::kInvReplyWaitOneway;
        case 1: return metric::kInvReplyWaitFirst;
        case 2: return metric::kInvReplyWaitMajority;
        case 3: return metric::kInvReplyWaitAll;
        default: return metric::kInvReplyWaitOther;
    }
}

/// Nearest-rank percentile over a sorted sample vector (integer µs).
std::int64_t percentile(const std::vector<std::int64_t>& sorted, std::uint64_t pct) {
    if (sorted.empty()) return 0;
    std::uint64_t rank = (pct * sorted.size() + 99) / 100;
    if (rank == 0) rank = 1;
    if (rank > sorted.size()) rank = sorted.size();
    return sorted[rank - 1];
}

/// One extracted chain: the per-phase durations of a single invocation.
struct Chain {
    std::uint64_t binding{0};
    std::uint64_t mode{0};
    std::int64_t total_us{0};
    std::map<std::string_view, std::int64_t> phase_us;
};

/// Backward critical-path walk from a kCallCompleted event.  `evs` is the
/// trace's events in stream order (stream order is causal order: sim time
/// is monotone and emission follows execution).  Returns false when a
/// boundary the chain needs is missing (e.g. the call was retried across a
/// rebind, or the delivery came out of a view-change cut).
bool walk_chain(const std::vector<const TraceEvent*>& evs, std::size_t completion,
                const std::map<std::uint64_t, TraceKind>& opener, Chain& out) {
    const auto latest = [&](std::size_t before, auto&& pred) -> std::ptrdiff_t {
        for (std::ptrdiff_t p = static_cast<std::ptrdiff_t>(before) - 1; p >= 0; --p) {
            if (pred(*evs[static_cast<std::size_t>(p)])) return p;
        }
        return -1;
    };

    std::size_t cur = completion;
    while (true) {
        const TraceEvent& e = *evs[cur];
        std::ptrdiff_t prev = -1;
        std::string_view bucket;
        switch (e.kind) {
            case TraceKind::kCallCompleted:
                // Closed mode gathers replies at the client itself; open
                // mode completes on the delivered aggregate; a one-way call
                // completes at issue time, directly on its kRequestSent.
                prev = latest(cur, [&](const TraceEvent& p) {
                    return p.kind == TraceKind::kReplyCollected && p.span == e.span &&
                           p.actor == e.actor;
                });
                if (prev < 0) {
                    prev = latest(cur, [&](const TraceEvent& p) {
                        return p.kind == TraceKind::kPayloadDelivered && p.actor == e.actor;
                    });
                }
                if (prev < 0) {
                    prev = latest(cur, [&](const TraceEvent& p) {
                        return p.kind == TraceKind::kRequestSent && p.span == e.span;
                    });
                }
                bucket = phase::kReplyCollection;
                break;
            case TraceKind::kReplyCollected:
                // parent = the execution span that produced the completing
                // reply; its payload either arrived by wire (delivered) or
                // was executed locally (async forwarding).
                prev = latest(cur, [&](const TraceEvent& p) {
                    return p.actor == e.actor && p.span == e.parent &&
                           (p.kind == TraceKind::kPayloadDelivered ||
                            p.kind == TraceKind::kExecutionDone);
                });
                bucket = phase::kReplyCollection;
                break;
            case TraceKind::kAggregateSent:
                prev = latest(cur, [&](const TraceEvent& p) {
                    return p.kind == TraceKind::kReplyCollected && p.span == e.span &&
                           p.actor == e.actor;
                });
                bucket = phase::kReplyCollection;
                break;
            case TraceKind::kPayloadDelivered:
                prev = latest(cur, [&](const TraceEvent& p) {
                    return p.kind == TraceKind::kDataArrived && p.span == e.span &&
                           p.actor == e.actor && p.detail == e.detail;
                });
                bucket = phase::kOrderWait;
                break;
            case TraceKind::kDataArrived:
                // The matching ship happened at the sender, so no actor
                // constraint; (span, packed ref) is unique per ship.
                prev = latest(cur, [&](const TraceEvent& p) {
                    return p.kind == TraceKind::kPayloadShipped && p.span == e.span &&
                           p.detail == e.detail;
                });
                bucket = phase::kWire;
                break;
            case TraceKind::kPayloadShipped:
                prev = latest(cur, [&](const TraceEvent& p) {
                    return p.kind == TraceKind::kMulticastSent && p.span == e.span &&
                           p.actor == e.actor;
                });
                bucket = phase::kCreditWait;
                break;
            case TraceKind::kMulticastSent: {
                // What precedes a multicast depends on whose span it rides:
                // the client's request, the manager's forward/aggregate, or
                // a replica's reply after execution.
                const auto role = opener.find(e.span);
                if (role == opener.end()) return false;  // synthetic sender root
                switch (role->second) {
                    case TraceKind::kRequestSent:
                        prev = latest(cur, [&](const TraceEvent& p) {
                            return p.kind == TraceKind::kRequestSent && p.span == e.span;
                        });
                        break;
                    case TraceKind::kRequestForwarded:
                        prev = latest(cur, [&](const TraceEvent& p) {
                            return (p.kind == TraceKind::kAggregateSent ||
                                    p.kind == TraceKind::kRequestForwarded) &&
                                   p.span == e.span && p.actor == e.actor;
                        });
                        break;
                    case TraceKind::kExecutionBegun:
                        prev = latest(cur, [&](const TraceEvent& p) {
                            return p.kind == TraceKind::kExecutionDone && p.span == e.span &&
                                   p.actor == e.actor;
                        });
                        break;
                    default: return false;
                }
                bucket = phase::kMarshal;
                break;
            }
            case TraceKind::kExecutionDone: {
                prev = latest(cur, [&](const TraceEvent& p) {
                    return p.kind == TraceKind::kExecutionBegun && p.span == e.span &&
                           p.actor == e.actor;
                });
                if (prev < 0) return false;
                // kExecutionBegun fires at CPU-queue time with the pure
                // execution cost packed into its detail; the rest of the
                // begun -> done interval is queueing.
                const TraceEvent& begun = *evs[static_cast<std::size_t>(prev)];
                const std::int64_t delta = e.at - begun.at;
                const auto cost =
                    static_cast<std::int64_t>(execution_detail_cost(begun.detail));
                const std::int64_t exec = std::min(cost, delta);
                out.phase_us[phase::kExecution] += exec;
                out.phase_us[phase::kCpuWait] += delta - exec;
                cur = static_cast<std::size_t>(prev);
                continue;
            }
            case TraceKind::kExecutionBegun:
                // parent = the span the request arrived under: a delivered
                // payload, or the manager's own forward when it executes
                // locally (async forwarding).
                prev = latest(cur, [&](const TraceEvent& p) {
                    return p.actor == e.actor && p.span == e.parent &&
                           (p.kind == TraceKind::kPayloadDelivered ||
                            p.kind == TraceKind::kRequestForwarded);
                });
                bucket = phase::kCpuWait;
                break;
            case TraceKind::kRequestForwarded:
                prev = latest(cur, [&](const TraceEvent& p) {
                    return p.kind == TraceKind::kPayloadDelivered && p.span == e.parent &&
                           p.actor == e.actor;
                });
                bucket = phase::kCpuWait;
                break;
            case TraceKind::kRequestSent:
                out.total_us = evs[completion]->at - e.at;
                return true;
            default:
                return false;
        }
        if (prev < 0) return false;
        out.phase_us[bucket] += e.at - evs[static_cast<std::size_t>(prev)]->at;
        cur = static_cast<std::size_t>(prev);
    }
}

/// Aggregate a set of chains into PhaseStats keyed by phase name.  Every
/// chain contributes one sample per phase (0 when the chain never touched
/// it), so percentiles are comparable across phases.
std::map<std::string, PhaseStats> aggregate_phases(const std::vector<const Chain*>& chains,
                                                   std::string& dominant) {
    std::map<std::string, PhaseStats> out;
    std::int64_t best_sum = -1;
    for (const std::string_view name : phase::kAll) {
        std::vector<std::int64_t> samples;
        samples.reserve(chains.size());
        PhaseStats stats;
        for (const Chain* chain : chains) {
            const auto it = chain->phase_us.find(name);
            const std::int64_t v = it == chain->phase_us.end() ? 0 : it->second;
            samples.push_back(v);
            stats.sum_us += v;
        }
        std::sort(samples.begin(), samples.end());
        stats.count = samples.size();
        stats.p50_us = percentile(samples, 50);
        stats.p90_us = percentile(samples, 90);
        stats.p99_us = percentile(samples, 99);
        stats.max_us = samples.empty() ? 0 : samples.back();
        if (stats.sum_us > best_sum) {
            best_sum = stats.sum_us;
            dominant = std::string(name);
        }
        out.emplace(std::string(name), stats);
    }
    return out;
}

void append_phase_json(std::string& out, const std::map<std::string, PhaseStats>& phases) {
    out += "{";
    bool first = true;
    for (const std::string_view name : phase::kAll) {
        const auto it = phases.find(std::string(name));
        if (it == phases.end()) continue;
        const PhaseStats& s = it->second;
        if (!first) out += ',';
        first = false;
        out += "\"";
        out += name;
        out += "\":{\"count\":" + std::to_string(s.count);
        out += ",\"sum_us\":" + std::to_string(s.sum_us);
        out += ",\"p50_us\":" + std::to_string(s.p50_us);
        out += ",\"p90_us\":" + std::to_string(s.p90_us);
        out += ",\"p99_us\":" + std::to_string(s.p99_us);
        out += ",\"max_us\":" + std::to_string(s.max_us) + "}";
    }
    out += "}";
}

void append_phase_text(std::string& out, const std::map<std::string, PhaseStats>& phases,
                       const std::string& indent) {
    std::int64_t total = 0;
    for (const std::string_view name : phase::kAll) {
        const auto it = phases.find(std::string(name));
        if (it != phases.end()) total += it->second.sum_us;
    }
    for (const std::string_view name : phase::kAll) {
        const auto it = phases.find(std::string(name));
        if (it == phases.end()) continue;
        const PhaseStats& s = it->second;
        const std::int64_t pct = total == 0 ? 0 : 100 * s.sum_us / total;
        std::string line = indent + std::string(name);
        while (line.size() < indent.size() + 18) line += ' ';
        line += "sum " + std::to_string(s.sum_us) + "us (" + std::to_string(pct) + "%)";
        while (line.size() < indent.size() + 48) line += ' ';
        line += "p50 " + std::to_string(s.p50_us) + "  p90 " + std::to_string(s.p90_us) +
                "  p99 " + std::to_string(s.p99_us) + "  max " + std::to_string(s.max_us);
        out += line + "\n";
    }
}

}  // namespace

bool ProfileReport::reconciled() const {
    if (!ok) return false;
    for (const Reconciliation& r : reconciliations) {
        if (!r.ok) return false;
    }
    return true;
}

ProfileReport LatencyProfiler::analyze(const TraceDump& dump) const {
    ProfileReport report;
    if (dump.dropped != 0) {
        report.error = "trace truncated: " + std::to_string(dump.dropped) +
                       " events were evicted from a bounded sink; latency attribution "
                       "over a partial stream would be silently wrong. Re-run with a "
                       "larger trace capacity.";
        return report;
    }
    report.ok = true;

    // Group events per trace (stream order preserved) and record which kind
    // opened each span — that is what disambiguates a manager's forward
    // multicast from its aggregate multicast on the backward walk.
    std::map<std::uint64_t, std::vector<const TraceEvent*>> by_trace;
    std::map<std::uint64_t, TraceKind> opener;
    for (const TraceEvent& e : dump.events) {
        if (e.trace == 0) continue;
        by_trace[e.trace].push_back(&e);
        if (e.kind == TraceKind::kRequestSent || e.kind == TraceKind::kRequestForwarded ||
            e.kind == TraceKind::kExecutionBegun) {
            opener.emplace(e.span, e.kind);
        }
    }

    std::vector<Chain> chains;
    for (const auto& [trace, evs] : by_trace) {
        for (std::size_t i = 0; i < evs.size(); ++i) {
            if (evs[i]->kind != TraceKind::kCallCompleted) continue;
            Chain chain;
            chain.binding = evs[i]->subject;
            chain.mode = completion_detail_mode(evs[i]->detail);
            if (walk_chain(evs, i, opener, chain)) {
                chains.push_back(std::move(chain));
            } else {
                ++report.unattributed;
            }
        }
    }
    report.invocations = chains.size();

    std::vector<const Chain*> all;
    all.reserve(chains.size());
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<const Chain*>> grouped;
    for (const Chain& chain : chains) {
        all.push_back(&chain);
        grouped[{chain.binding, chain.mode}].push_back(&chain);
    }
    report.phases = aggregate_phases(all, report.dominant);
    for (const auto& [key, members] : grouped) {
        ProfileGroup group;
        group.binding = key.first;
        group.mode = key.second;
        group.chains = members.size();
        for (const Chain* chain : members) group.total_us += chain->total_us;
        group.phases = aggregate_phases(members, group.dominant);
        report.groups.push_back(std::move(group));
    }

    // Sequencer turnaround (diagnostic): first FIFO arrival of a ref at the
    // sequencer -> its ORDER broadcast.
    {
        std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>, SimTime> arrivals;
        for (const TraceEvent& e : dump.events) {
            if (e.kind == TraceKind::kDataArrived) {
                arrivals.emplace(std::tuple{e.actor, e.subject, e.detail}, e.at);
            } else if (e.kind == TraceKind::kOrderAssigned) {
                const auto it = arrivals.find(std::tuple{e.actor, e.subject, e.detail});
                if (it == arrivals.end()) continue;
                ++report.sequencer_turnaround_count;
                report.sequencer_turnaround_sum_us += e.at - it->second;
            }
        }
    }

    // -- reconciliation -------------------------------------------------------
    // Trace-derived totals, to compare against the embedded histograms.
    std::map<std::string_view, std::pair<std::uint64_t, std::int64_t>> actual;
    for (const Chain& chain : chains) {
        auto& [count, sum] = actual[reply_metric_for_mode(chain.mode)];
        ++count;
        sum += chain.total_us;
    }
    {
        // Per-member delivery latency: ship time of the carrying DATA
        // message (keyed by group + packed ref) to each kDataDelivered.
        std::map<std::pair<std::uint64_t, std::uint64_t>, SimTime> shipped;
        auto& [count, sum] = actual[metric::kGcsDeliveryLatencyUs];
        for (const TraceEvent& e : dump.events) {
            if (e.kind == TraceKind::kPayloadShipped) {
                shipped.emplace(std::pair{e.subject, e.detail}, e.at);
            } else if (e.kind == TraceKind::kDataDelivered) {
                const auto it = shipped.find(std::pair{e.subject, e.detail});
                if (it == shipped.end()) continue;
                ++count;
                sum += e.at - it->second;
            }
        }
    }
    for (const TraceExpectation& expected : dump.expectations) {
        Reconciliation r;
        r.metric = expected.metric;
        r.expected_count = expected.count;
        r.expected_sum_us = expected.sum_us;
        const auto it = actual.find(expected.metric);
        if (it != actual.end()) {
            r.actual_count = it->second.first;
            r.actual_sum_us = it->second.second;
        }
        const std::int64_t diff = r.actual_sum_us > r.expected_sum_us
                                      ? r.actual_sum_us - r.expected_sum_us
                                      : r.expected_sum_us - r.actual_sum_us;
        // >1% relative mismatch (integer arithmetic; zero expected demands
        // zero actual) or any count difference fails the cross-check.
        r.ok = r.expected_count == r.actual_count &&
               (r.expected_sum_us == 0 ? diff == 0 : 100 * diff <= r.expected_sum_us);
        report.reconciliations.push_back(std::move(r));
    }
    return report;
}

std::string ProfileReport::to_json() const {
    if (!ok) {
        std::string out = "{\"ok\":false,\"error\":\"";
        for (const char c : error) {
            if (c == '"' || c == '\\') out += '\\';
            out += c;
        }
        out += "\"}";
        return out;
    }
    std::string out = "{\"ok\":true";
    out += ",\"invocations\":" + std::to_string(invocations);
    out += ",\"unattributed\":" + std::to_string(unattributed);
    out += ",\"dominant\":\"" + dominant + "\"";
    out += ",\"phases\":";
    append_phase_json(out, phases);
    out += ",\"groups\":[";
    bool first = true;
    for (const ProfileGroup& g : groups) {
        if (!first) out += ',';
        first = false;
        out += "{\"binding\":" + std::to_string(g.binding);
        out += ",\"mode\":" + std::to_string(g.mode);
        out += ",\"chains\":" + std::to_string(g.chains);
        out += ",\"total_us\":" + std::to_string(g.total_us);
        out += ",\"dominant\":\"" + g.dominant + "\"";
        out += ",\"phases\":";
        append_phase_json(out, g.phases);
        out += "}";
    }
    out += "],\"sequencer_turnaround\":{\"count\":" +
           std::to_string(sequencer_turnaround_count) +
           ",\"sum_us\":" + std::to_string(sequencer_turnaround_sum_us) + "}";
    out += ",\"reconciliations\":[";
    first = true;
    for (const Reconciliation& r : reconciliations) {
        if (!first) out += ',';
        first = false;
        out += "{\"metric\":\"" + r.metric + "\"";
        out += ",\"expected_count\":" + std::to_string(r.expected_count);
        out += ",\"actual_count\":" + std::to_string(r.actual_count);
        out += ",\"expected_sum_us\":" + std::to_string(r.expected_sum_us);
        out += ",\"actual_sum_us\":" + std::to_string(r.actual_sum_us);
        out += std::string(",\"ok\":") + (r.ok ? "true" : "false") + "}";
    }
    out += "]}";
    return out;
}

std::string ProfileReport::to_text() const {
    if (!ok) return "error: " + error + "\n";
    std::string out = "latency attribution: " + std::to_string(invocations) +
                      " invocations attributed";
    if (unattributed != 0) {
        out += " (" + std::to_string(unattributed) + " unattributed)";
    }
    out += "\ndominant phase: " + dominant + "\n";
    append_phase_text(out, phases, "  ");
    for (const ProfileGroup& g : groups) {
        out += "binding " + std::to_string(g.binding) + " mode " + std::to_string(g.mode) +
               ": " + std::to_string(g.chains) + " chains, total " +
               std::to_string(g.total_us) + "us, dominant " + g.dominant + "\n";
        append_phase_text(out, g.phases, "  ");
    }
    out += "sequencer turnaround: " + std::to_string(sequencer_turnaround_count) +
           " assignments, sum " + std::to_string(sequencer_turnaround_sum_us) + "us\n";
    for (const Reconciliation& r : reconciliations) {
        out += std::string("reconcile ") + r.metric + ": count " +
               std::to_string(r.actual_count) + "/" + std::to_string(r.expected_count) +
               ", sum " + std::to_string(r.actual_sum_us) + "/" +
               std::to_string(r.expected_sum_us) + "us " + (r.ok ? "OK" : "MISMATCH") + "\n";
    }
    return out;
}

}  // namespace newtop::obs
