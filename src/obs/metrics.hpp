// Deterministic observability: named counters and sim-time histograms.
//
// One MetricsRegistry exists per simulated world (owned by the Network) and
// is shared by every layer — CPU queues, the network, the ORB, the group
// communication endpoints and the invocation layer.  Everything is keyed by
// simulated time and stored in ordered maps, so two runs from the same seed
// produce byte-identical to_json() output; there is no wall clock anywhere.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "util/time.hpp"

namespace newtop::obs {

/// Log-scale histogram over non-negative sim durations (microseconds).
/// Bucket 0 holds the value 0; bucket i (i >= 1) holds values in
/// [2^(i-1), 2^i).  64 buckets cover the full SimDuration range, so the
/// layout never changes with the data — a requirement for reproducible
/// output.
class LatencyHistogram {
public:
    static constexpr std::size_t kBucketCount = 64;

    void record(SimDuration value);

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] SimDuration sum() const { return sum_; }
    [[nodiscard]] SimDuration min() const { return min_; }
    [[nodiscard]] SimDuration max() const { return max_; }
    [[nodiscard]] const std::array<std::uint64_t, kBucketCount>& buckets() const {
        return buckets_;
    }

    /// Inclusive lower bound of bucket `index`.
    [[nodiscard]] static SimDuration bucket_floor(std::size_t index);

    /// Quantile estimate from bucket floors: the floor of the bucket holding
    /// the ceil(q * count)-th smallest sample, clamped to [min, max] so the
    /// log-scale coarseness never reports a value outside the observed
    /// range.  Returns 0 when empty.
    [[nodiscard]] SimDuration quantile(double q) const;

    /// Append this histogram as a JSON object to `out` (sparse buckets:
    /// [[index, count], ...]).
    void append_json(std::string& out) const;

private:
    std::uint64_t count_{0};
    SimDuration sum_{0};
    SimDuration min_{0};
    SimDuration max_{0};
    std::array<std::uint64_t, kBucketCount> buckets_{};
};

/// Reads one instantaneous value (queue depth, credit occupancy, ...) at a
/// sampling tick; `at` is the tick's sim time for values derived from it
/// (e.g. CPU backlog = busy_until - now).
using GaugeFn = std::function<std::uint64_t(SimTime at)>;
using GaugeHandle = std::uint64_t;

class MetricsRegistry {
public:
    /// Increment counter `name` by `delta` (creating it at zero).
    void add(std::string_view name, std::uint64_t delta = 1);

    /// Current value of a counter; 0 if it was never incremented.
    [[nodiscard]] std::uint64_t counter(std::string_view name) const;

    /// Record `value` into histogram `name` (negative values clamp to 0).
    void observe(std::string_view name, SimDuration value);

    /// The named histogram, or nullptr if nothing was observed under it.
    [[nodiscard]] const LatencyHistogram* histogram(std::string_view name) const;

    /// Everything, as one deterministic JSON object:
    ///   {"counters":{...},"histograms":{...}}
    /// plus a "series" member when any time series has samples.
    /// Ordered-map iteration plus integer-only fields make the string a
    /// pure function of the recorded data.
    [[nodiscard]] std::string to_json() const;

    // -- time series ---------------------------------------------------------
    //
    // Sampled gauges: layers register a reader for an instantaneous value
    // (holdback depth, send credits, CPU backlog, directory size) and the
    // world drives sampling ticks (Network::enable_gauge_sampling).  Every
    // gauge registered under the same name is summed into one world-level
    // series per tick.  Registration order is irrelevant to the output
    // (samples are keyed by name), so runs stay byte-identical.

    /// Register a gauge under `name`; the handle unregisters it.  `fn` must
    /// outlive the registration — owners unregister in their destructor.
    GaugeHandle register_gauge(std::string_view name, GaugeFn fn);
    void unregister_gauge(GaugeHandle handle);

    /// Read every registered gauge, summing same-named gauges, and append
    /// one sample per name to its series.
    void sample_gauges(SimTime at);

    /// Append one sample directly (for values no gauge models).
    void sample(std::string_view name, SimTime at, std::uint64_t value);

    /// The sampled points of one series, oldest first; nullptr if none.
    [[nodiscard]] const std::vector<std::pair<SimTime, std::uint64_t>>* series(
        std::string_view name) const;

    // -- tracing -------------------------------------------------------------

    /// Install (or remove, with nullptr) the trace sink.  Not owned.
    void set_trace_sink(TraceSink* sink) { trace_sink_ = sink; }
    [[nodiscard]] TraceSink* trace_sink() const { return trace_sink_; }

    /// Record a protocol event if a sink is installed (no-op otherwise).
    void trace(TraceKind kind, SimTime at, std::uint64_t actor, std::uint64_t subject = 0,
               std::uint64_t detail = 0) {
        if (trace_sink_ != nullptr) {
            trace_sink_->record(TraceEvent{at, kind, actor, subject, detail});
        }
    }

    /// Span-aware variant: ties the event into an invocation's span tree.
    /// `parent` is the causally preceding span (0 for a root).
    void trace(TraceKind kind, SimTime at, std::uint64_t actor, SpanContext span,
               std::uint64_t parent, std::uint64_t subject = 0, std::uint64_t detail = 0) {
        if (trace_sink_ != nullptr) {
            trace_sink_->record(
                TraceEvent{at, kind, actor, subject, detail, span.trace, span.span, parent});
        }
    }

private:
    struct Gauge {
        std::string name;
        GaugeFn fn;
    };

    std::map<std::string, std::uint64_t, std::less<>> counters_;
    std::map<std::string, LatencyHistogram, std::less<>> histograms_;
    std::map<std::string, std::vector<std::pair<SimTime, std::uint64_t>>, std::less<>> series_;
    std::map<GaugeHandle, Gauge> gauges_;
    GaugeHandle next_gauge_{1};
    TraceSink* trace_sink_{nullptr};
};

}  // namespace newtop::obs
