// Trace-driven protocol oracle.
//
// Consumes a recorded event stream after a run and checks the guarantees
// the NewTop protocol claims, turning every traced scenario into a
// conformance test:
//
//  * total order   — members of one group deliver their common messages in
//                    the same relative order (causal-order groups exempt),
//  * virtual synchrony — members that share the same pair of consecutive
//                    views delivered the same message set between them,
//  * no duplicates — no member delivers one {epoch, sender, seq} ref twice
//                    within a view lineage (epochs restart after a rejoin),
//  * reply accounting — every completed two-way call saw at least the
//                    per-mode minimum of kReplyCollected events first,
//  * config integrity — every delivery is attributed to a configuration
//                    epoch; once a member installs a reconfigured view
//                    (kConfigSwitched) it must never deliver a message that
//                    was ordered under a pre-switch view, and installed
//                    config epochs only advance within a lineage.  Total
//                    order and virtual synchrony hold *across* the switch
//                    for free: the proposal's own delivery is an ordered
//                    event in the same stream the other checks read.
//
// The oracle only reads the stream; it holds no protocol state, so it can
// run over live captures, ring-buffer snapshots or hand-built (mutated)
// traces alike.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace newtop::obs {

struct OracleOptions {
    /// Groups configured for causal (not total) order: exempt from the
    /// identical-delivery-order check.
    std::set<std::uint64_t> causal_groups;
    /// Minimum kReplyCollected events a completed call of a given
    /// invocation mode must have seen (keyed by the mode value packed into
    /// the completion detail).  Mode 0 (one-way) is never checked.  The
    /// defaults are the sound lower bounds — view shrinkage can legally
    /// complete a wait-all call with fewer replies than servers, so
    /// anything tighter must come from a test that controls membership.
    std::map<std::uint64_t, std::size_t> min_replies_by_mode{{1, 1}, {2, 1}, {3, 1}};
};

struct Violation {
    enum class Kind : std::uint8_t {
        kTotalOrder,
        kVirtualSynchrony,
        kDuplicateDelivery,
        kReplyThreshold,
        kTruncatedTrace,
        /// A member delivered a message ordered under a pre-switch view
        /// after installing a newer configuration (or its installed config
        /// epochs regressed): the flush-delimited switch boundary tore.
        kConfigTornDelivery,
    };
    Kind kind{Kind::kTotalOrder};
    std::string message;
};

[[nodiscard]] const char* violation_kind_name(Violation::Kind kind);

class ProtocolOracle {
public:
    ProtocolOracle() = default;
    explicit ProtocolOracle(OracleOptions options) : options_(std::move(options)) {}

    /// Run every check over the stream; empty result = all invariants hold.
    [[nodiscard]] std::vector<Violation> check(const std::vector<TraceEvent>& events) const;

    /// Dump-aware overload: refuses a truncated dump (dropped > 0) with a
    /// single kTruncatedTrace violation instead of judging invariants over
    /// a stream with holes.
    [[nodiscard]] std::vector<Violation> check(const TraceDump& dump) const;

    /// One line per violation, for test failure messages.
    [[nodiscard]] static std::string report(const std::vector<Violation>& violations);

private:
    OracleOptions options_;
};

}  // namespace newtop::obs
