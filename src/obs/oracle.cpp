#include "obs/oracle.hpp"

#include <algorithm>
#include <utility>

namespace newtop::obs {

namespace {

std::string format_ref(std::uint64_t packed) {
    return "{epoch " + std::to_string((packed >> 48) & 0xffff) + ", sender " +
           std::to_string((packed >> 32) & 0xffff) + ", seq " +
           std::to_string(packed & 0xffffffff) + "}";
}

std::string format_view(std::uint64_t detail) {
    return "epoch " + std::to_string(view_detail_epoch(detail)) + "/digest " +
           std::to_string(detail >> 32);
}

}  // namespace

const char* violation_kind_name(Violation::Kind kind) {
    switch (kind) {
        case Violation::Kind::kTotalOrder: return "total_order";
        case Violation::Kind::kVirtualSynchrony: return "virtual_synchrony";
        case Violation::Kind::kDuplicateDelivery: return "duplicate_delivery";
        case Violation::Kind::kReplyThreshold: return "reply_threshold";
        case Violation::Kind::kTruncatedTrace: return "truncated_trace";
        case Violation::Kind::kConfigTornDelivery: return "config_torn_delivery";
    }
    return "?";
}

std::vector<Violation> ProtocolOracle::check(const TraceDump& dump) const {
    if (dump.dropped != 0) {
        return {{Violation::Kind::kTruncatedTrace,
                 std::to_string(dump.dropped) +
                     " events were evicted from a bounded sink; invariants cannot be "
                     "judged over a stream with holes. Re-run with a larger trace "
                     "capacity."}};
    }
    return check(dump.events);
}

std::vector<Violation> ProtocolOracle::check(const std::vector<TraceEvent>& events) const {
    std::vector<Violation> out;

    // One linear pass collects each member's interleaved install/delivery
    // timeline and runs the reply-threshold accounting in stream order (a
    // completion must be *preceded* by its replies).  Keeping installs and
    // deliveries interleaved matters: epoch numbers restart when a member
    // is ejected and rejoins a re-formed group, so a delivery can only be
    // attributed to a view by its *position* in the member's stream, never
    // by its epoch number alone.
    struct Entry {
        enum class Kind : std::uint8_t { kInstall, kDelivery, kConfigSwitch };
        Kind kind;
        std::uint64_t value;  // view detail, delivered ref, or config detail
    };
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<Entry>> timeline;
    std::map<std::uint64_t, std::size_t> replies_by_trace;
    for (const TraceEvent& e : events) {
        switch (e.kind) {
            case TraceKind::kDataDelivered:
                timeline[{e.subject, e.actor}].push_back({Entry::Kind::kDelivery, e.detail});
                break;
            case TraceKind::kViewInstalled:
                timeline[{e.subject, e.actor}].push_back({Entry::Kind::kInstall, e.detail});
                break;
            case TraceKind::kConfigSwitched:
                timeline[{e.subject, e.actor}].push_back(
                    {Entry::Kind::kConfigSwitch, e.detail});
                break;
            case TraceKind::kReplyCollected:
                ++replies_by_trace[e.trace];
                break;
            case TraceKind::kCallCompleted: {
                const std::uint64_t mode = completion_detail_mode(e.detail);
                const auto needed = options_.min_replies_by_mode.find(mode);
                if (mode == 0 || needed == options_.min_replies_by_mode.end()) break;
                const std::size_t seen = replies_by_trace[e.trace];
                if (seen < needed->second) {
                    out.push_back(
                        {Violation::Kind::kReplyThreshold,
                         "call completed at member " + std::to_string(e.actor) + " (trace " +
                             std::to_string(e.trace) + ", mode " + std::to_string(mode) +
                             ") after only " + std::to_string(seen) + " collected replies, " +
                             std::to_string(needed->second) + " required"});
                }
                break;
            }
            default: break;
        }
    }

    // -- per-member digestion of the timeline ---------------------------------
    // A "window" is the stretch of a member's stream from one view install
    // to the next.  Cut deliveries for the closing view are traced *before*
    // the successor install, so they land in the window they logically
    // belong to.  A "lineage" is a maximal run of strictly-increasing view
    // epochs: an ejected member rejoining a re-formed group starts a new
    // lineage whose epochs (and therefore seqnos) may collide with refs it
    // delivered before — legitimate, and disambiguated by occurrence index.
    struct Window {
        std::uint64_t view;             // install detail opening the window
        std::set<std::uint64_t> refs;   // deliveries whose epoch matches it
    };
    struct MemberLog {
        std::vector<Window> windows;
        // Every delivery in stream order, keyed {ref, occurrence}: the n-th
        // delivery of one raw ref compares against the n-th elsewhere.
        std::vector<std::pair<std::uint64_t, std::uint32_t>> deliveries;
    };
    std::map<std::pair<std::uint64_t, std::uint64_t>, MemberLog> logs;
    for (const auto& [key, entries] : timeline) {
        MemberLog& log = logs[key];
        std::map<std::uint64_t, std::uint32_t> occurrence;
        std::set<std::uint64_t> in_lineage;  // refs delivered this lineage
        std::uint64_t last_epoch = 0;
        // Config attribution: the view epoch at this lineage's latest
        // configuration switch (0 = still on the creation-time config) and
        // the config epoch it installed.  A lineage restart resets both —
        // a refounded group legitimately starts counting configs afresh.
        std::uint64_t switch_view_epoch = 0;
        std::uint64_t last_config_epoch = 0;
        for (const Entry& entry : entries) {
            if (entry.kind == Entry::Kind::kInstall) {
                const std::uint64_t epoch = view_detail_epoch(entry.value);
                if (epoch <= last_epoch) {  // rejoin lineage
                    in_lineage.clear();
                    switch_view_epoch = 0;
                    last_config_epoch = 0;
                }
                last_epoch = epoch;
                log.windows.push_back({entry.value, {}});
                continue;
            }
            if (entry.kind == Entry::Kind::kConfigSwitch) {
                const std::uint64_t cfg = config_detail_config_epoch(entry.value);
                if (cfg <= last_config_epoch) {
                    out.push_back({Violation::Kind::kConfigTornDelivery,
                                   "member " + std::to_string(key.second) + " in group " +
                                       std::to_string(key.first) +
                                       " installed config epoch " + std::to_string(cfg) +
                                       " after already running config epoch " +
                                       std::to_string(last_config_epoch)});
                }
                last_config_epoch = cfg;
                switch_view_epoch = config_detail_view_epoch(entry.value) & 0xffff;
                continue;
            }
            const std::uint64_t ref = entry.value;
            // Every delivery is attributed to the config regime in force:
            // after a switch at view v, a ref ordered under a view < v is a
            // pre-switch message leaking past the flush boundary.
            if (switch_view_epoch != 0 && ((ref >> 48) & 0xffff) < switch_view_epoch) {
                out.push_back({Violation::Kind::kConfigTornDelivery,
                               "member " + std::to_string(key.second) + " delivered " +
                                   format_ref(ref) + " in group " +
                                   std::to_string(key.first) +
                                   " after switching to config epoch " +
                                   std::to_string(last_config_epoch) + " at view epoch " +
                                   std::to_string(switch_view_epoch)});
            }
            log.deliveries.emplace_back(ref, occurrence[ref]++);
            if (!in_lineage.insert(ref).second) {
                out.push_back({Violation::Kind::kDuplicateDelivery,
                               "member " + std::to_string(key.second) + " delivered " +
                                   format_ref(ref) + " twice in group " +
                                   std::to_string(key.first)});
            }
            if (!log.windows.empty() &&
                ((ref >> 48) & 0xffff) ==
                    (view_detail_epoch(log.windows.back().view) & 0xffff)) {
                log.windows.back().refs.insert(ref);
            }
        }
    }

    // -- identical delivery order of common messages --------------------------
    // Pairwise: project member B's log onto the refs member A also
    // delivered and require A's positions to be strictly increasing.
    std::map<std::uint64_t, std::vector<std::uint64_t>> members_of;  // group -> actors
    for (const auto& [key, log] : logs) {
        if (!log.deliveries.empty()) members_of[key.first].push_back(key.second);
    }
    for (const auto& [group, members] : members_of) {
        if (options_.causal_groups.contains(group)) continue;
        for (std::size_t a = 0; a < members.size(); ++a) {
            std::map<std::pair<std::uint64_t, std::uint32_t>, std::size_t> position;
            const auto& log_a = logs.at({group, members[a]}).deliveries;
            for (std::size_t i = 0; i < log_a.size(); ++i) position.emplace(log_a[i], i);
            for (std::size_t b = a + 1; b < members.size(); ++b) {
                const auto& log_b = logs.at({group, members[b]}).deliveries;
                std::size_t last = 0;
                bool have_last = false;
                std::uint64_t last_ref = 0;
                for (const auto& ref : log_b) {
                    const auto it = position.find(ref);
                    if (it == position.end()) continue;
                    if (have_last && it->second <= last) {
                        out.push_back({Violation::Kind::kTotalOrder,
                                       "group " + std::to_string(group) + ": members " +
                                           std::to_string(members[a]) + " and " +
                                           std::to_string(members[b]) +
                                           " disagree on the order of " + format_ref(last_ref) +
                                           " vs " + format_ref(ref.first)});
                        break;
                    }
                    last = it->second;
                    last_ref = ref.first;
                    have_last = true;
                }
            }
        }
    }

    // -- virtual synchrony -----------------------------------------------------
    // A member's deliveries for view v are finalized when it installs v's
    // successor (the cut runs first), so every member sharing the same
    // (v, v') transition must have delivered the same epoch(v) set inside
    // that window.  A member's final view has no successor and is not
    // checked — that is exactly the crash/partition allowance.  The key
    // carries an occurrence index so a transition that repeats in one
    // member's stream (epoch reuse across lineages) matches instance-wise.
    struct TransitionKey {
        std::uint64_t group, from, to;
        std::uint32_t occurrence;
        auto operator<=>(const TransitionKey&) const = default;
    };
    std::map<TransitionKey, std::map<std::uint64_t, std::set<std::uint64_t>>> transitions;
    for (const auto& [key, log] : logs) {
        std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> seen_transition;
        for (std::size_t i = 0; i + 1 < log.windows.size(); ++i) {
            const std::uint64_t from = log.windows[i].view;
            const std::uint64_t to = log.windows[i + 1].view;
            const std::uint32_t occurrence = seen_transition[{from, to}]++;
            transitions[{key.first, from, to, occurrence}][key.second] =
                log.windows[i].refs;
        }
    }
    for (const auto& [key, by_member] : transitions) {
        const auto& reference = by_member.begin()->second;
        for (const auto& [member, set] : by_member) {
            if (set == reference) continue;
            std::vector<std::uint64_t> diff;
            std::set_symmetric_difference(set.begin(), set.end(), reference.begin(),
                                          reference.end(), std::back_inserter(diff));
            out.push_back({Violation::Kind::kVirtualSynchrony,
                           "group " + std::to_string(key.group) + ": members " +
                               std::to_string(by_member.begin()->first) + " and " +
                               std::to_string(member) +
                               " delivered different sets between views [" +
                               format_view(key.from) + " -> " + format_view(key.to) +
                               "], e.g. " + format_ref(diff.front())});
        }
    }

    return out;
}

std::string ProtocolOracle::report(const std::vector<Violation>& violations) {
    std::string out;
    for (const Violation& v : violations) {
        out += violation_kind_name(v.kind);
        out += ": ";
        out += v.message;
        out += '\n';
    }
    return out;
}

}  // namespace newtop::obs
