#include "obs/export.hpp"

#include <set>
#include <utility>

namespace newtop::obs {

namespace {

const char* span_name(TraceKind begin) {
    switch (begin) {
        case TraceKind::kRequestSent: return "invoke";
        case TraceKind::kRequestForwarded: return "manage";
        case TraceKind::kExecutionBegun: return "execute";
        default: return trace_kind_name(begin);
    }
}

std::uint64_t pid_of(const ExportOptions& options, std::uint64_t actor) {
    const auto it = options.actor_to_node.find(actor);
    return it == options.actor_to_node.end() ? actor : it->second;
}

void append_args(std::string& out, const TraceEvent& e) {
    out += "\"args\":{\"trace\":" + std::to_string(e.trace);
    out += ",\"span\":" + std::to_string(e.span);
    out += ",\"parent\":" + std::to_string(e.parent);
    out += ",\"subject\":" + std::to_string(e.subject);
    out += ",\"detail\":" + std::to_string(e.detail);
    out += '}';
}

}  // namespace

bool is_span_begin(TraceKind kind) {
    return kind == TraceKind::kRequestSent || kind == TraceKind::kRequestForwarded ||
           kind == TraceKind::kExecutionBegun;
}

bool is_span_end(TraceKind kind) {
    return kind == TraceKind::kCallCompleted || kind == TraceKind::kCallFailed ||
           kind == TraceKind::kCallTimedOut || kind == TraceKind::kAggregateSent ||
           kind == TraceKind::kExecutionDone;
}

std::string export_chrome_trace(const std::vector<TraceEvent>& events,
                                const ExportOptions& options) {
    // Pair span begins with their ends by {trace, span}.  Unmatched begins
    // (a manager that crashed before aggregating, ...) degrade to instants.
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<std::size_t>> open;
    std::map<std::size_t, std::size_t> end_of;  // begin index -> end index
    std::set<std::size_t> consumed;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent& e = events[i];
        if (e.span == 0) continue;
        const auto key = std::pair{e.trace, e.span};
        if (is_span_begin(e.kind)) {
            open[key].push_back(i);
        } else if (is_span_end(e.kind)) {
            auto it = open.find(key);
            if (it == open.end() || it->second.empty()) continue;
            end_of[it->second.back()] = i;
            consumed.insert(i);
            it->second.pop_back();
        }
    }

    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const std::string& event) {
        if (!first) out += ',';
        first = false;
        out += event;
    };

    // Metadata first: stable names for every process (node) and thread
    // (endpoint) that appears in the stream.
    std::set<std::uint64_t> pids;
    std::set<std::pair<std::uint64_t, std::uint64_t>> threads;
    for (const TraceEvent& e : events) {
        const std::uint64_t pid = pid_of(options, e.actor);
        pids.insert(pid);
        threads.insert({pid, e.actor});
    }
    for (const std::uint64_t pid : pids) {
        emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + std::to_string(pid) +
             ",\"args\":{\"name\":\"node " + std::to_string(pid) + "\"}}");
    }
    for (const auto& [pid, tid] : threads) {
        emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" + std::to_string(pid) +
             ",\"tid\":" + std::to_string(tid) + ",\"args\":{\"name\":\"endpoint " +
             std::to_string(tid) + "\"}}");
    }

    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent& e = events[i];
        if (consumed.contains(i)) continue;  // folded into its begin's "X"
        const std::uint64_t pid = pid_of(options, e.actor);
        std::string ev;
        if (const auto match = end_of.find(i); match != end_of.end()) {
            const TraceEvent& end = events[match->second];
            ev = "{\"ph\":\"X\",\"name\":\"";
            ev += span_name(e.kind);
            ev += "\",\"cat\":\"span\",\"ts\":" + std::to_string(e.at);
            ev += ",\"dur\":" + std::to_string(end.at - e.at);
            ev += ",\"pid\":" + std::to_string(pid);
            ev += ",\"tid\":" + std::to_string(e.actor);
            ev += ",\"args\":{\"trace\":" + std::to_string(e.trace);
            ev += ",\"span\":" + std::to_string(e.span);
            ev += ",\"parent\":" + std::to_string(e.parent);
            ev += ",\"subject\":" + std::to_string(e.subject);
            ev += ",\"detail\":" + std::to_string(e.detail);
            ev += ",\"end\":\"";
            ev += trace_kind_name(end.kind);
            ev += "\"}}";
        } else {
            ev = "{\"ph\":\"i\",\"name\":\"";
            ev += trace_kind_name(e.kind);
            ev += "\",\"cat\":\"event\",\"s\":\"t\",\"ts\":" + std::to_string(e.at);
            ev += ",\"pid\":" + std::to_string(pid);
            ev += ",\"tid\":" + std::to_string(e.actor);
            ev += ',';
            append_args(ev, e);
            ev += '}';
        }
        emit(ev);
    }

    out += "]}";
    return out;
}

}  // namespace newtop::obs
