#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace newtop::obs {

// -- LatencyHistogram ---------------------------------------------------------

void LatencyHistogram::record(SimDuration value) {
    if (value < 0) value = 0;
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    const std::size_t index = std::bit_width(static_cast<std::uint64_t>(value));
    ++buckets_[std::min(index, kBucketCount - 1)];
}

SimDuration LatencyHistogram::bucket_floor(std::size_t index) {
    if (index == 0) return 0;
    return static_cast<SimDuration>(std::uint64_t{1} << (index - 1));
}

SimDuration LatencyHistogram::quantile(double q) const {
    if (count_ == 0) return 0;
    const double clamped = std::clamp(q, 0.0, 1.0);
    auto rank = static_cast<std::uint64_t>(std::ceil(clamped * static_cast<double>(count_)));
    rank = std::clamp<std::uint64_t>(rank, 1, count_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        seen += buckets_[i];
        if (seen >= rank) return std::clamp(bucket_floor(i), min_, max_);
    }
    return max_;
}

void LatencyHistogram::append_json(std::string& out) const {
    out += "{\"count\":" + std::to_string(count_);
    out += ",\"sum\":" + std::to_string(sum_);
    out += ",\"min\":" + std::to_string(min_);
    out += ",\"max\":" + std::to_string(max_);
    out += ",\"p50\":" + std::to_string(quantile(0.50));
    out += ",\"p90\":" + std::to_string(quantile(0.90));
    out += ",\"p99\":" + std::to_string(quantile(0.99));
    out += ",\"buckets\":[";
    bool first = true;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        if (buckets_[i] == 0) continue;
        if (!first) out += ',';
        first = false;
        out += '[';
        out += std::to_string(i);
        out += ',';
        out += std::to_string(buckets_[i]);
        out += ']';
    }
    out += "]}";
}

// -- MetricsRegistry ----------------------------------------------------------

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
    const auto it = counters_.find(name);
    if (it != counters_.end()) {
        it->second += delta;
    } else {
        counters_.emplace(std::string(name), delta);
    }
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::observe(std::string_view name, SimDuration value) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(std::string(name), LatencyHistogram{}).first;
    }
    it->second.record(value);
}

const LatencyHistogram* MetricsRegistry::histogram(std::string_view name) const {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

GaugeHandle MetricsRegistry::register_gauge(std::string_view name, GaugeFn fn) {
    const GaugeHandle handle = next_gauge_++;
    gauges_.emplace(handle, Gauge{std::string(name), std::move(fn)});
    return handle;
}

void MetricsRegistry::unregister_gauge(GaugeHandle handle) { gauges_.erase(handle); }

void MetricsRegistry::sample_gauges(SimTime at) {
    // Sum same-named gauges first, then append one point per name; the
    // intermediate map keeps the result independent of registration order.
    std::map<std::string_view, std::uint64_t, std::less<>> totals;
    for (const auto& [handle, gauge] : gauges_) totals[gauge.name] += gauge.fn(at);
    for (const auto& [name, value] : totals) sample(name, at, value);
}

void MetricsRegistry::sample(std::string_view name, SimTime at, std::uint64_t value) {
    auto it = series_.find(name);
    if (it == series_.end()) {
        it = series_.emplace(std::string(name),
                             std::vector<std::pair<SimTime, std::uint64_t>>{})
                 .first;
    }
    it->second.emplace_back(at, value);
}

const std::vector<std::pair<SimTime, std::uint64_t>>* MetricsRegistry::series(
    std::string_view name) const {
    const auto it = series_.find(name);
    return it == series_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::to_json() const {
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : counters_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += name;
        out += "\":";
        out += std::to_string(value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, histogram] : histograms_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += name;
        out += "\":";
        histogram.append_json(out);
    }
    out += '}';
    // Emitted only when samples exist, so worlds without gauge sampling
    // produce the exact pre-series JSON (golden outputs stay stable).
    if (!series_.empty()) {
        out += ",\"series\":{";
        first = true;
        for (const auto& [name, points] : series_) {
            if (!first) out += ',';
            first = false;
            out += '"';
            out += name;
            out += "\":[";
            bool first_point = true;
            for (const auto& [at, value] : points) {
                if (!first_point) out += ',';
                first_point = false;
                out += '[';
                out += std::to_string(at);
                out += ',';
                out += std::to_string(value);
                out += ']';
            }
            out += ']';
        }
        out += '}';
    }
    out += '}';
    return out;
}

}  // namespace newtop::obs
