// Latency-attribution profiler.
//
// Consumes a TraceDump after a run and reconstructs, for every completed
// invocation, the critical path from kRequestSent to kCallCompleted as a
// gapless sequence of phase boundaries.  Consecutive boundaries telescope,
// so the per-phase durations of one chain sum *exactly* to that call's
// end-to-end latency; the report then aggregates chains into per-phase
// percentiles grouped by (binding, invocation mode) and flags the dominant
// phase.
//
// Phases (see obs::phase in names.hpp):
//   marshal          request/reply construction + colocated hand-off
//   credit_wait      flow-control: waiting for an order-window send credit
//   wire             DATA message network transit (ship -> FIFO ingest)
//   order_wait       holdback: ingest -> ordered release to the app layer
//   cpu_wait         CPU-queue time before forwarding / execution begins
//   execution        servant execution proper (packed into the trace)
//   reply_collection gathered-replies bookkeeping and final hand-off
//
// Self-validation: the dump embeds independently measured histogram totals
// (TraceExpectation); the profiler reconciles its trace-derived sums
// against them and reports a >1% relative mismatch as an error — a
// reconciliation failure means the tracing is wrong, not the protocol.
// Truncated dumps (dropped > 0) are refused outright.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace newtop::obs {

/// Aggregated durations of one phase over a set of chains.
struct PhaseStats {
    std::uint64_t count{0};  // chains with a non-absent sample of this phase
    std::int64_t sum_us{0};
    std::int64_t p50_us{0};
    std::int64_t p90_us{0};
    std::int64_t p99_us{0};
    std::int64_t max_us{0};
};

/// Chains aggregated per (binding id, invocation mode).
struct ProfileGroup {
    std::uint64_t binding{0};
    std::uint64_t mode{0};  // InvocationMode value from the completion detail
    std::uint64_t chains{0};
    std::int64_t total_us{0};  // sum of end-to-end latencies
    std::map<std::string, PhaseStats> phases;
    std::string dominant;  // phase with the largest sum_us
};

/// One cross-check of a trace-derived total against an embedded histogram.
struct Reconciliation {
    std::string metric;
    std::uint64_t expected_count{0};
    std::uint64_t actual_count{0};
    std::int64_t expected_sum_us{0};
    std::int64_t actual_sum_us{0};
    bool ok{true};  // counts equal and sums within 1%
};

struct ProfileReport {
    bool ok{false};      // false => `error` says why the dump was refused
    std::string error;

    std::uint64_t invocations{0};   // chains attributed
    std::uint64_t unattributed{0};  // completions whose chain had a gap
    std::map<std::string, PhaseStats> phases;  // across all chains
    std::string dominant;
    std::vector<ProfileGroup> groups;  // sorted by (binding, mode)

    /// Diagnostic: sequencer DATA-arrival -> ORDER broadcast.  Overlaps
    /// order_wait, so it is reported but never summed into the phases.
    std::uint64_t sequencer_turnaround_count{0};
    std::int64_t sequencer_turnaround_sum_us{0};

    std::vector<Reconciliation> reconciliations;

    /// True when every embedded expectation reconciled (and none failed).
    [[nodiscard]] bool reconciled() const;

    /// Deterministic JSON (integers only), the bench/CI artifact format.
    [[nodiscard]] std::string to_json() const;

    /// Human-readable table for the newtop_prof CLI.
    [[nodiscard]] std::string to_text() const;
};

class LatencyProfiler {
public:
    /// Attribute every completed invocation in the dump.  Refuses truncated
    /// input (report.ok = false); reconciliation failures leave ok = true
    /// but reconciled() = false so callers can distinguish "unusable dump"
    /// from "tracing bug".
    [[nodiscard]] ProfileReport analyze(const TraceDump& dump) const;
};

}  // namespace newtop::obs
