#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/calibration.hpp"
#include "orb/orb.hpp"
#include "util/check.hpp"

namespace newtop {
namespace {

using namespace sim_literals;

constexpr std::uint32_t kEcho = 1;
constexpr std::uint32_t kAdd = 2;
constexpr std::uint32_t kBoom = 3;

/// Test servant: echoes, adds, or throws.
class TestServant : public Servant {
public:
    Bytes dispatch(std::uint32_t method, BytesView args) override {
        ++calls;
        switch (method) {
            case kEcho: return Bytes(args.begin(), args.end());
            case kAdd: {
                Decoder d(args);
                const auto a = d.get_i64();
                const auto b = d.get_i64();
                return encode_to_bytes(a + b);
            }
            case kBoom: throw ServantError("kaboom");
            default: throw ServantError("no such method");
        }
    }
    int calls{0};
};

struct OrbFixture : ::testing::Test {
    OrbFixture()
        : net(scheduler, calibration::make_lan_topology(), 42),
          client_node(net.add_node(SiteId(0))),
          server_node(net.add_node(SiteId(0))),
          client(net, client_node),
          server(net, server_node),
          servant(std::make_shared<TestServant>()),
          target(server.adapter().activate(servant, "Test")) {}

    Scheduler scheduler;
    Network net;
    NodeId client_node;
    NodeId server_node;
    Orb client;
    Orb server;
    std::shared_ptr<TestServant> servant;
    Ior target;
};

TEST_F(OrbFixture, RoundTripEcho) {
    Bytes got;
    ReplyStatus status{};
    client.invoke(target, kEcho, encode_to_bytes(std::string("ping")),
                  [&](ReplyStatus s, const Bytes& payload) {
                      status = s;
                      got = payload;
                  });
    scheduler.run();
    EXPECT_EQ(status, ReplyStatus::kOk);
    EXPECT_EQ(decode_from_bytes<std::string>(got), "ping");
    EXPECT_EQ(servant->calls, 1);
}

TEST_F(OrbFixture, TypedAddCall) {
    Encoder e;
    e.put_i64(40);
    e.put_i64(2);
    std::int64_t result = 0;
    client.invoke(target, kAdd, std::move(e).take(), [&](ReplyStatus s, const Bytes& payload) {
        ASSERT_EQ(s, ReplyStatus::kOk);
        result = decode_from_bytes<std::int64_t>(payload);
    });
    scheduler.run();
    EXPECT_EQ(result, 42);
}

TEST_F(OrbFixture, LanRoundTripLatencyMatchesPaperAnchor) {
    // The paper's anchor: a plain CORBA call on the LAN is about 1 ms.
    SimTime completed = -1;
    client.invoke(target, kEcho, Bytes{}, [&](ReplyStatus, const Bytes&) {
        completed = scheduler.now();
    });
    scheduler.run();
    EXPECT_GT(completed, 800);    // > 0.8 ms
    EXPECT_LT(completed, 1500);   // < 1.5 ms
}

TEST_F(OrbFixture, ServantExceptionPropagates) {
    ReplyStatus status{};
    std::string message;
    client.invoke(target, kBoom, Bytes{}, [&](ReplyStatus s, const Bytes& payload) {
        status = s;
        message = decode_from_bytes<std::string>(payload);
    });
    scheduler.run();
    EXPECT_EQ(status, ReplyStatus::kException);
    EXPECT_EQ(message, "kaboom");
}

TEST_F(OrbFixture, UnknownObjectGivesNoObject) {
    Ior bogus{server_node, ObjectKey(9999), "Test"};
    ReplyStatus status{};
    client.invoke(bogus, kEcho, Bytes{}, [&](ReplyStatus s, const Bytes&) { status = s; });
    scheduler.run();
    EXPECT_EQ(status, ReplyStatus::kNoObject);
}

TEST_F(OrbFixture, DeactivatedObjectGivesNoObject) {
    server.adapter().deactivate(target.key);
    ReplyStatus status{};
    client.invoke(target, kEcho, Bytes{}, [&](ReplyStatus s, const Bytes&) { status = s; });
    scheduler.run();
    EXPECT_EQ(status, ReplyStatus::kNoObject);
}

TEST_F(OrbFixture, TimeoutFiresWhenServerCrashed) {
    net.crash(server_node);
    ReplyStatus status{};
    SimTime at = -1;
    client.invoke(target, kEcho, Bytes{}, [&](ReplyStatus s, const Bytes&) {
        status = s;
        at = scheduler.now();
    }, 10_ms);
    scheduler.run();
    EXPECT_EQ(status, ReplyStatus::kTimeout);
    EXPECT_EQ(at, 10_ms);
}

TEST_F(OrbFixture, HandlerRunsExactlyOnceWhenReplyBeatsTimeout) {
    int completions = 0;
    client.invoke(target, kEcho, Bytes{}, [&](ReplyStatus s, const Bytes&) {
        ++completions;
        EXPECT_EQ(s, ReplyStatus::kOk);
    }, 1_s);
    scheduler.run();
    EXPECT_EQ(completions, 1);
}

TEST_F(OrbFixture, CancelSuppressesHandler) {
    bool ran = false;
    const OrbCallId id =
        client.invoke(target, kEcho, Bytes{}, [&](ReplyStatus, const Bytes&) { ran = true; });
    client.cancel(id);
    scheduler.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(servant->calls, 1);  // server still executed the request
}

TEST_F(OrbFixture, OnewayExecutesWithoutReply) {
    client.invoke_oneway(target, kEcho, encode_to_bytes(std::string("fire")));
    scheduler.run();
    EXPECT_EQ(servant->calls, 1);
}

TEST_F(OrbFixture, OnewayServantExceptionIsSwallowed) {
    client.invoke_oneway(target, kBoom, Bytes{});
    EXPECT_NO_THROW(scheduler.run());
    EXPECT_EQ(servant->calls, 1);
}

TEST_F(OrbFixture, ConcurrentCallsCorrelateIndependently) {
    std::vector<std::int64_t> results(3, 0);
    for (int i = 0; i < 3; ++i) {
        Encoder e;
        e.put_i64(i);
        e.put_i64(100);
        client.invoke(target, kAdd, std::move(e).take(),
                      [&results, i](ReplyStatus s, const Bytes& payload) {
                          ASSERT_EQ(s, ReplyStatus::kOk);
                          results[static_cast<std::size_t>(i)] =
                              decode_from_bytes<std::int64_t>(payload);
                      });
    }
    scheduler.run();
    EXPECT_EQ(results, (std::vector<std::int64_t>{100, 101, 102}));
}

TEST_F(OrbFixture, ServerCpuSerializesRequests) {
    // Two concurrent clients: the second reply completes after the first
    // by at least the servant execution time (single-CPU server).
    const NodeId client2_node = net.add_node(SiteId(0));
    Orb client2(net, client2_node);
    SimTime done1 = -1, done2 = -1;
    client.invoke(target, kEcho, Bytes{}, [&](ReplyStatus, const Bytes&) {
        done1 = scheduler.now();
    });
    client2.invoke(target, kEcho, Bytes{}, [&](ReplyStatus, const Bytes&) {
        done2 = scheduler.now();
    });
    scheduler.run();
    ASSERT_GE(done1, 0);
    ASSERT_GE(done2, 0);
    EXPECT_NE(done1, done2);
}

TEST_F(OrbFixture, MalformedWireBytesAreDropped) {
    net.send(client_node, server_node, Bytes{0x07, 0x01});  // unknown type
    net.send(client_node, server_node, Bytes{});            // empty
    EXPECT_NO_THROW(scheduler.run());
}

TEST_F(OrbFixture, InvokeRequiresHandler) {
    EXPECT_THROW(client.invoke(target, kEcho, Bytes{}, nullptr), PreconditionError);
}

// -- IOGR (object group reference) failover ---------------------------------

struct IogrFixture : OrbFixture {
    IogrFixture()
        : backup_node(net.add_node(SiteId(0))),
          backup(net, backup_node),
          backup_servant(std::make_shared<TestServant>()),
          backup_ior(backup.adapter().activate(backup_servant, "Test")) {}

    NodeId backup_node;
    Orb backup;
    std::shared_ptr<TestServant> backup_servant;
    Ior backup_ior;
};

TEST_F(IogrFixture, PrimaryServesWhenHealthy) {
    Iogr group{{target, backup_ior}, 0};
    ReplyStatus status{};
    client.invoke_group(group, kEcho, Bytes{}, [&](ReplyStatus s, const Bytes&) { status = s; },
                        20_ms);
    scheduler.run();
    EXPECT_EQ(status, ReplyStatus::kOk);
    EXPECT_EQ(servant->calls, 1);
    EXPECT_EQ(backup_servant->calls, 0);
}

TEST_F(IogrFixture, FailsOverWhenPrimaryCrashed) {
    net.crash(server_node);
    Iogr group{{target, backup_ior}, 0};
    ReplyStatus status{};
    client.invoke_group(group, kEcho, Bytes{}, [&](ReplyStatus s, const Bytes&) { status = s; },
                        20_ms);
    scheduler.run();
    EXPECT_EQ(status, ReplyStatus::kOk);
    EXPECT_EQ(backup_servant->calls, 1);
}

TEST_F(IogrFixture, RespectsPrimaryIndex) {
    Iogr group{{target, backup_ior}, 1};  // backup designated primary
    client.invoke_group(group, kEcho, Bytes{}, [](ReplyStatus, const Bytes&) {}, 20_ms);
    scheduler.run();
    EXPECT_EQ(backup_servant->calls, 1);
    EXPECT_EQ(servant->calls, 0);
}

TEST_F(IogrFixture, AllMembersDownReportsTimeout) {
    net.crash(server_node);
    net.crash(backup_node);
    Iogr group{{target, backup_ior}, 0};
    ReplyStatus status{};
    client.invoke_group(group, kEcho, Bytes{}, [&](ReplyStatus s, const Bytes&) { status = s; },
                        20_ms);
    scheduler.run();
    EXPECT_EQ(status, ReplyStatus::kTimeout);
}

TEST_F(IogrFixture, FailsOverOnMissingObjectToo) {
    server.adapter().deactivate(target.key);
    Iogr group{{target, backup_ior}, 0};
    ReplyStatus status{};
    client.invoke_group(group, kEcho, Bytes{}, [&](ReplyStatus s, const Bytes&) { status = s; },
                        20_ms);
    scheduler.run();
    EXPECT_EQ(status, ReplyStatus::kOk);
    EXPECT_EQ(backup_servant->calls, 1);
}

TEST_F(IogrFixture, EmptyGroupRejected) {
    Iogr empty;
    EXPECT_THROW(
        client.invoke_group(empty, kEcho, Bytes{}, [](ReplyStatus, const Bytes&) {}, 20_ms),
        PreconditionError);
}

TEST_F(IogrFixture, IogrRoundTripsThroughSerialization) {
    Iogr group{{target, backup_ior}, 1};
    const Iogr out = decode_from_bytes<Iogr>(encode_to_bytes(group));
    EXPECT_EQ(out, group);
}

TEST_F(IogrFixture, MalformedIogrPrimaryIndexRejected) {
    Iogr group{{target}, 5};
    EXPECT_THROW(decode_from_bytes<Iogr>(encode_to_bytes(group)), DecodeError);
}

}  // namespace
}  // namespace newtop
