#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "invocation/envelope.hpp"
#include "serial/arena.hpp"
#include "serial/serial.hpp"
#include "util/rng.hpp"

namespace newtop {
namespace {

template <typename T>
T roundtrip(const T& value) {
    return decode_from_bytes<T>(encode_to_bytes(value));
}

TEST(Serial, PrimitiveRoundtrips) {
    EXPECT_EQ(roundtrip<std::uint8_t>(0xab), 0xab);
    EXPECT_EQ(roundtrip<std::uint16_t>(0x1234), 0x1234);
    EXPECT_EQ(roundtrip<std::uint32_t>(0xdeadbeef), 0xdeadbeefu);
    EXPECT_EQ(roundtrip<std::uint64_t>(0x0123456789abcdefULL), 0x0123456789abcdefULL);
    EXPECT_EQ(roundtrip<std::int32_t>(-42), -42);
    EXPECT_EQ(roundtrip<std::int64_t>(std::numeric_limits<std::int64_t>::min()),
              std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(roundtrip<bool>(true), true);
    EXPECT_EQ(roundtrip<bool>(false), false);
    EXPECT_DOUBLE_EQ(roundtrip<double>(3.14159), 3.14159);
    EXPECT_DOUBLE_EQ(roundtrip<double>(-0.0), -0.0);
}

TEST(Serial, StringRoundtrips) {
    EXPECT_EQ(roundtrip<std::string>(""), "");
    EXPECT_EQ(roundtrip<std::string>("hello"), "hello");
    const std::string with_nul("a\0b", 3);
    EXPECT_EQ(roundtrip<std::string>(with_nul), with_nul);
}

TEST(Serial, BlobRoundtrips) {
    EXPECT_EQ(roundtrip<Bytes>(Bytes{}), Bytes{});
    EXPECT_EQ(roundtrip<Bytes>(Bytes{0, 255, 1, 2}), (Bytes{0, 255, 1, 2}));
}

TEST(Serial, VectorRoundtrips) {
    const std::vector<std::uint32_t> v{1, 2, 3, 0xffffffff};
    EXPECT_EQ(roundtrip(v), v);
    EXPECT_EQ(roundtrip(std::vector<std::string>{"a", "", "bc"}),
              (std::vector<std::string>{"a", "", "bc"}));
}

TEST(Serial, NestedVectorRoundtrips) {
    const std::vector<std::vector<std::uint8_t>> v{{1}, {}, {2, 3}};
    EXPECT_EQ(roundtrip(v), v);
}

TEST(Serial, OptionalRoundtrips) {
    EXPECT_EQ(roundtrip(std::optional<std::uint32_t>{}), std::nullopt);
    EXPECT_EQ(roundtrip(std::optional<std::uint32_t>{7}), std::optional<std::uint32_t>{7});
}

TEST(Serial, PairAndMapRoundtrips) {
    const std::pair<std::uint32_t, std::string> p{9, "nine"};
    EXPECT_EQ(roundtrip(p), p);
    const std::map<std::string, std::uint64_t> m{{"a", 1}, {"b", 2}};
    EXPECT_EQ(roundtrip(m), m);
}

TEST(Serial, StrongIdRoundtrips) {
    struct Tag {};
    using Id = StrongId<Tag, std::uint64_t>;
    EXPECT_EQ(roundtrip(Id(12345)), Id(12345));
}

TEST(Serial, LittleEndianLayout) {
    Encoder e;
    e.put_u32(0x01020304);
    const Bytes b = std::move(e).take();
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(b[0], 0x04);
    EXPECT_EQ(b[3], 0x01);
}

TEST(Serial, TruncatedInputThrows) {
    Encoder e;
    e.put_u64(1);
    Bytes b = std::move(e).take();
    b.pop_back();
    Decoder d(b);
    EXPECT_THROW(d.get_u64(), DecodeError);
}

TEST(Serial, TruncatedStringThrows) {
    Encoder e;
    e.put_u32(100);  // claims 100 bytes follow
    const Bytes b = std::move(e).take();
    Decoder d(b);
    EXPECT_THROW(d.get_string(), DecodeError);
}

TEST(Serial, HostileSequenceLengthThrows) {
    Encoder e;
    e.put_u32(0xffffffff);  // sequence "length"
    const Bytes b = std::move(e).take();
    Decoder d(b);
    std::vector<std::uint8_t> v;
    EXPECT_THROW(decode(d, v), DecodeError);
}

TEST(Serial, InvalidBoolThrows) {
    const Bytes b{2};
    Decoder d(b);
    EXPECT_THROW(d.get_bool(), DecodeError);
}

TEST(Serial, TrailingBytesDetected) {
    Encoder e;
    e.put_u32(1);
    e.put_u8(0);  // extra byte
    const Bytes b = std::move(e).take();
    EXPECT_THROW(decode_from_bytes<std::uint32_t>(b), DecodeError);
}

TEST(Serial, ExhaustedAndRemaining) {
    Encoder e;
    e.put_u16(7);
    const Bytes b = std::move(e).take();
    Decoder d(b);
    EXPECT_FALSE(d.exhausted());
    EXPECT_EQ(d.remaining(), 2u);
    d.get_u16();
    EXPECT_TRUE(d.exhausted());
}

TEST(Serial, EmptyBufferDecodeThrows) {
    const Bytes b;
    Decoder d(b);
    EXPECT_THROW(d.get_u8(), DecodeError);
}

// Property test: random mixed-field records always round-trip.
TEST(Serial, RandomRecordRoundtripProperty) {
    Rng rng(0xfeed);
    for (int iter = 0; iter < 200; ++iter) {
        Encoder e;
        std::vector<std::uint64_t> u64s;
        std::vector<std::string> strings;
        const int fields = static_cast<int>(rng.next_in(0, 10));
        for (int f = 0; f < fields; ++f) u64s.push_back(rng.next_u64());
        const int nstr = static_cast<int>(rng.next_in(0, 5));
        for (int f = 0; f < nstr; ++f) {
            std::string s;
            const auto len = rng.next_in(0, 64);
            for (std::uint64_t i = 0; i < len; ++i) {
                s.push_back(static_cast<char>(rng.next_in(0, 255)));
            }
            strings.push_back(std::move(s));
        }
        encode(e, u64s);
        encode(e, strings);
        const Bytes b = std::move(e).take();

        Decoder d(b);
        std::vector<std::uint64_t> u64s_out;
        std::vector<std::string> strings_out;
        decode(d, u64s_out);
        decode(d, strings_out);
        EXPECT_EQ(u64s_out, u64s);
        EXPECT_EQ(strings_out, strings);
        EXPECT_TRUE(d.exhausted());
    }
}

// -- invocation envelope round-trips -----------------------------------------
// Property tests over every InvocationEnvelope variant: the envelopes have
// no operator==, so round-trip fidelity is asserted as encode/decode/encode
// byte stability (a lossy decode cannot re-encode to the same bytes).

Bytes random_payload(Rng& rng, std::uint64_t max_len) {
    Bytes out;
    const auto len = rng.next_in(0, max_len);
    out.reserve(len);
    for (std::uint64_t i = 0; i < len; ++i) {
        out.push_back(static_cast<std::uint8_t>(rng.next_in(0, 255)));
    }
    return out;
}

CallId random_call(Rng& rng) {
    return CallId{rng.next_u64(), rng.next_u64(), rng.next_bool(0.3)};
}

obs::SpanContext random_span(Rng& rng) {
    return obs::SpanContext{rng.next_u64(), rng.next_u64()};
}

InvocationMode random_mode(Rng& rng) {
    return static_cast<InvocationMode>(rng.next_in(0, 3));
}

void expect_stable_roundtrip(const InvocationEnvelope& env, int iter) {
    const Bytes once = encode_envelope(env);
    const InvocationEnvelope decoded = decode_envelope(once);
    EXPECT_EQ(decoded.index(), env.index()) << "variant changed, iter " << iter;
    const Bytes twice = encode_envelope(decoded);
    EXPECT_EQ(once, twice) << "lossy round-trip, iter " << iter;
}

TEST(Serial, RequestEnvelopeRoundtripsUnderRandomPayloads) {
    Rng rng(0xe1);
    for (int iter = 0; iter < 200; ++iter) {
        RequestEnv env;
        env.call = random_call(rng);
        env.span = random_span(rng);
        env.mode = random_mode(rng);
        env.flags = static_cast<std::uint8_t>(rng.next_in(0, 3));
        env.server_group = GroupId(static_cast<GroupId::rep_type>(rng.next_in(0, 1000)));
        env.bind = rng.next_bool(0.5) ? BindMode::kOpen : BindMode::kClosed;
        env.method = static_cast<std::uint32_t>(rng.next_u64());
        env.args = random_payload(rng, 512);
        expect_stable_roundtrip(env, iter);
    }
}

TEST(Serial, ForwardEnvelopeRoundtripsUnderRandomPayloads) {
    Rng rng(0xe2);
    for (int iter = 0; iter < 200; ++iter) {
        ForwardEnv env;
        env.call = random_call(rng);
        env.span = random_span(rng);
        env.mode = random_mode(rng);
        env.flags = static_cast<std::uint8_t>(rng.next_in(0, 3));
        env.manager = EndpointId(static_cast<EndpointId::rep_type>(rng.next_in(0, 1000)));
        env.method = static_cast<std::uint32_t>(rng.next_u64());
        env.args = random_payload(rng, 512);
        expect_stable_roundtrip(env, iter);
    }
}

TEST(Serial, ReplyEnvelopeRoundtripsUnderRandomPayloads) {
    Rng rng(0xe3);
    for (int iter = 0; iter < 200; ++iter) {
        ReplyEnv env;
        env.call = random_call(rng);
        env.span = random_span(rng);
        env.replier = EndpointId(static_cast<EndpointId::rep_type>(rng.next_in(0, 1000)));
        env.ok = rng.next_bool(0.8);
        env.value = random_payload(rng, 512);
        expect_stable_roundtrip(env, iter);
    }
}

TEST(Serial, AggregateEnvelopeRoundtripsUnderRandomPayloads) {
    Rng rng(0xe4);
    for (int iter = 0; iter < 200; ++iter) {
        AggregateEnv env;
        env.call = random_call(rng);
        env.span = random_span(rng);
        env.complete = rng.next_bool(0.7);
        const auto replies = rng.next_in(0, 6);
        for (std::uint64_t r = 0; r < replies; ++r) {
            ReplyEntry entry;
            entry.replier = EndpointId(static_cast<EndpointId::rep_type>(rng.next_in(0, 1000)));
            entry.ok = rng.next_bool(0.9);
            entry.value = random_payload(rng, 128);
            env.replies.push_back(std::move(entry));
        }
        expect_stable_roundtrip(env, iter);
    }
}

TEST(Serial, EnvelopeGarbageNeverCrashes) {
    Rng rng(0xe5);
    for (int iter = 0; iter < 500; ++iter) {
        Bytes garbage = random_payload(rng, 96);
        try {
            (void)decode_envelope(garbage);
        } catch (const DecodeError&) {
            // expected for most inputs
        }
    }
}

// Property test: decoding random garbage either throws DecodeError or
// produces a value, but never crashes or reads out of bounds.
TEST(Serial, RandomGarbageNeverCrashes) {
    Rng rng(0xdead);
    for (int iter = 0; iter < 500; ++iter) {
        Bytes garbage;
        const auto len = rng.next_in(0, 64);
        for (std::uint64_t i = 0; i < len; ++i) {
            garbage.push_back(static_cast<std::uint8_t>(rng.next_in(0, 255)));
        }
        Decoder d(garbage);
        try {
            std::vector<std::string> v;
            decode(d, v);
        } catch (const DecodeError&) {
            // expected for most inputs
        }
    }
}

// -- counting / arena encode path ------------------------------------------------

// Property: the counting encoder predicts the real encoding's size exactly,
// for arbitrary nested values.
TEST(Serial, CountingEncoderMatchesRealSize) {
    Rng rng(0xc0);
    for (int iter = 0; iter < 100; ++iter) {
        std::map<std::string, std::vector<Bytes>> value;
        const auto entries = rng.next_in(0, 5);
        for (std::uint64_t i = 0; i < entries; ++i) {
            std::vector<Bytes> blobs;
            const auto n = rng.next_in(0, 4);
            for (std::uint64_t j = 0; j < n; ++j) blobs.push_back(random_payload(rng, 64));
            value["key" + std::to_string(i)] = std::move(blobs);
        }
        Encoder counter = Encoder::counter();
        encode(counter, value);
        EXPECT_EQ(counter.size(), encode_to_bytes(value).size());
    }
}

// Regression: put_le used to grow the buffer one push_back at a time, and
// blob encodes never pre-sized.  Encoding a 64 KiB payload must perform
// O(1) allocations: after the exact reserve, the buffer never reallocates.
TEST(Serial, LargePayloadEncodesWithoutReallocation) {
    const Bytes payload(64 * 1024, 0x5a);
    Encoder e;
    e.reserve(encoded_size(payload));
    const std::uint8_t* before = e.data();
    const std::size_t reserved = e.capacity();
    e.put_blob(payload);
    EXPECT_EQ(e.data(), before);          // storage never moved
    EXPECT_EQ(e.capacity(), reserved);    // ... nor grew
    EXPECT_EQ(e.size(), encoded_size(payload));
    // encode_to_bytes pre-sizes the same way: zero growth slack.
    const Bytes wire = encode_to_bytes(payload);
    EXPECT_EQ(wire.capacity(), wire.size());
}

TEST(Serial, EncoderAdoptsAndArenaRecyclesStorage) {
    EncodeArena arena;
    Bytes retired;
    retired.reserve(4096);
    const std::uint8_t* storage = retired.data();
    arena.recycle(std::move(retired));
    EXPECT_EQ(arena.pooled(), 1u);

    // acquire() hands back the pooled storage, cleared.
    Bytes buf = arena.acquire(1024);
    EXPECT_EQ(arena.pooled(), 0u);
    EXPECT_EQ(buf.data(), storage);
    EXPECT_TRUE(buf.empty());
    EXPECT_GE(buf.capacity(), 4096u);

    // An adopting encoder writes into that same storage.
    Encoder e{std::move(buf)};
    e.put_u64(0x1122334455667788ULL);
    EXPECT_EQ(e.data(), storage);
    Bytes wire = std::move(e).take();
    EXPECT_EQ(wire.data(), storage);
    EXPECT_EQ(decode_from_bytes<std::uint64_t>(wire), 0x1122334455667788ULL);

    // Round and round: the wire buffer retires into the next encode.
    arena.recycle(std::move(wire));
    EXPECT_EQ(arena.acquire(16).data(), storage);
}

TEST(Serial, ArenaDropsOversizedAndSurplusBuffers) {
    EncodeArena arena;
    Bytes huge;
    huge.reserve((std::size_t{1} << 20) + 1);
    arena.recycle(std::move(huge));
    EXPECT_EQ(arena.pooled(), 0u);  // over the per-buffer cap: freed
    for (int i = 0; i < 40; ++i) arena.recycle(Bytes(8, 0));
    EXPECT_LE(arena.pooled(), 16u);  // pool count is bounded
}

TEST(Serial, BlobViewIsZeroCopy) {
    Encoder e;
    e.put_u32(7);
    e.put_blob(Bytes{1, 2, 3, 4});
    const Bytes wire = std::move(e).take();
    Decoder d(wire);
    EXPECT_EQ(d.get_u32(), 7u);
    const BytesView view = d.get_blob_view();
    ASSERT_EQ(view.size(), 4u);
    EXPECT_GE(view.data(), wire.data());
    EXPECT_LE(view.data() + view.size(), wire.data() + wire.size());
    EXPECT_EQ(view[3], 4u);
    EXPECT_TRUE(d.exhausted());
}

TEST(Serial, TruncatedBlobViewThrows) {
    Encoder e;
    e.put_blob(Bytes(16, 0xff));
    Bytes wire = std::move(e).take();
    wire.resize(wire.size() - 1);
    Decoder d(wire);
    EXPECT_THROW(d.get_blob_view(), DecodeError);
}

}  // namespace
}  // namespace newtop
