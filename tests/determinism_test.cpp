// Determinism and API-edge tests.
//
// The whole simulation is designed to be bit-reproducible from its seed —
// that is what makes the benchmark tables in EXPERIMENTS.md stable and
// failures replayable.  These tests run full scenarios twice and require
// identical histories, and pin down the public API's edge behaviour.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/calibration.hpp"
#include "newtop/newtop_service.hpp"
#include "orb/orb.hpp"
#include "util/check.hpp"

namespace newtop {
namespace {

using namespace sim_literals;

constexpr std::uint32_t kEcho = 1;

class EchoServant : public GroupServant {
public:
    Bytes handle(std::uint32_t, const Bytes& args) override { return args; }
};

/// Runs a small mixed scenario (request/reply + peer traffic + a crash) and
/// returns a full history fingerprint.
std::string run_scenario(std::uint64_t seed) {
    auto sites = calibration::make_paper_topology();
    Scheduler scheduler;
    Network net(scheduler, std::move(sites.topology), seed);
    Directory directory;

    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<NewTopService>> nsos;
    auto add = [&](SiteId site) -> NewTopService& {
        orbs.push_back(std::make_unique<Orb>(net, net.add_node(site)));
        nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
        return *nsos.back();
    };

    std::ostringstream history;

    // Three servers + a WAN client.
    GroupConfig cfg;
    cfg.order = OrderMode::kTotalAsymmetric;
    cfg.liveness = LivenessMode::kLively;
    for (int i = 0; i < 3; ++i) {
        add(sites.newcastle).serve("svc", cfg,
                                   std::make_shared<EchoServant>());
        scheduler.run_until(scheduler.now() + 300_ms);
    }
    NewTopService& client = add(sites.pisa);
    GroupProxy proxy = client.bind("svc", {.mode = BindMode::kOpen, .restricted = true});

    // A peer group alongside.
    GroupConfig peer_cfg;
    peer_cfg.order = OrderMode::kTotalSymmetric;
    peer_cfg.liveness = LivenessMode::kLively;
    NewTopService& peer1 = add(sites.london);
    NewTopService& peer2 = add(sites.pisa);
    PeerGroup room1 = peer1.join_peer_group(
        "room", peer_cfg, [&](const NewTopService::PeerMessage& m) {
            history << "p1@" << scheduler.now() << ":"
                    << std::string(m.payload.begin(), m.payload.end()) << "\n";
        });
    scheduler.run_until(scheduler.now() + 300_ms);
    PeerGroup room2 = peer2.join_peer_group(
        "room", peer_cfg, [&](const NewTopService::PeerMessage& m) {
            history << "p2@" << scheduler.now() << ":"
                    << std::string(m.payload.begin(), m.payload.end()) << "\n";
        });
    scheduler.run_until(scheduler.now() + 500_ms);

    for (int k = 0; k < 5; ++k) {
        const std::string text = "peer" + std::to_string(k);
        (k % 2 == 0 ? room1 : room2).publish(Bytes(text.begin(), text.end()));
        proxy.invoke(kEcho, encode_to_bytes(std::string("call" + std::to_string(k))),
                     InvocationMode::kWaitAll, [&, k](const GroupReply& reply) {
                         history << "call" << k << "@" << scheduler.now() << ":"
                                 << reply.replies.size() << "\n";
                     });
        scheduler.run_until(scheduler.now() + 200_ms);
    }
    // Crash one server mid-run.
    net.crash(orbs[1]->node_id());
    proxy.invoke(kEcho, encode_to_bytes(std::string("post-crash")), InvocationMode::kWaitAll,
                 [&](const GroupReply& reply) {
                     history << "post@" << scheduler.now() << ":" << reply.replies.size()
                             << "\n";
                 });
    scheduler.run_until(scheduler.now() + 10_s);

    history << "msgs=" << net.stats().messages_sent << " bytes=" << net.stats().bytes_sent
            << " t=" << scheduler.now();
    return history.str();
}

TEST(Determinism, IdenticalSeedsProduceIdenticalHistories) {
    const std::string a = run_scenario(2026);
    const std::string b = run_scenario(2026);
    EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDiverge) {
    // Jitter and loss draws differ, so message counts/timings should too.
    const std::string a = run_scenario(1);
    const std::string b = run_scenario(2);
    EXPECT_NE(a, b);
}

// -- container-order regression -------------------------------------------------------

/// Runtime companion to newtop_lint's `unordered-container` / `pointer-key`
/// rules.  Orb::pending_, ObjectAdapter::servants_ and Scheduler::cancelled_
/// used to be hash containers; any code iterating them could leak memory
/// layout into completion order.  This scenario churns all three — pending
/// calls with timeouts and cancellations, servant deactivate/re-activate,
/// IOGR failover — and runs twice in one process, so the second run sees a
/// different heap layout: an address-ordered sweep would diverge here.
/// (Hash iteration over *integral* keys repeats identically within a
/// process, which is exactly why that class is enforced by the lint rather
/// than sampled by this test.)
class ChurnServant : public Servant {
public:
    explicit ChurnServant(int id) : id_(id) {}
    Bytes dispatch(std::uint32_t, BytesView args) override {
        Bytes out(args.begin(), args.end());
        out.push_back(static_cast<std::uint8_t>(id_));
        return out;
    }

private:
    int id_;
};

std::string run_orb_churn(std::uint64_t seed) {
    Scheduler scheduler;
    Network net(scheduler, calibration::make_lan_topology(), seed);
    Orb client(net, net.add_node(SiteId(0)));
    std::vector<std::unique_ptr<Orb>> servers;
    std::vector<Ior> targets;
    for (int s = 0; s < 3; ++s) {
        servers.push_back(std::make_unique<Orb>(net, net.add_node(SiteId(0))));
        targets.push_back(
            servers.back()->adapter().activate(std::make_shared<ChurnServant>(s), "Churn"));
    }

    std::ostringstream history;
    auto record = [&](int call, ReplyStatus s, const Bytes& payload) {
        history << call << '@' << scheduler.now() << ':' << static_cast<int>(s) << ':'
                << payload.size() << '\n';
    };

    std::vector<OrbCallId> cancellable;
    for (int k = 0; k < 40; ++k) {
        const int which = k % 3;
        const OrbCallId id = client.invoke(
            targets[which], kEcho, encode_to_bytes(std::string("m") + std::to_string(k)),
            [&, k](ReplyStatus s, const Bytes& p) { record(k, s, p); },
            /*timeout=*/(k % 5 == 0) ? 2_ms : 80_ms);
        if (k % 7 == 0) cancellable.push_back(id);
        if (k % 11 == 3) {
            // Servant churn: kill and replace the target in place.
            servers[which]->adapter().deactivate(targets[which].key);
            targets[which] = servers[which]->adapter().activate(
                std::make_shared<ChurnServant>(which + 10), "Churn");
        }
        if (k % 9 == 4) scheduler.run_until(scheduler.now() + 1_ms);
    }
    for (OrbCallId id : cancellable) client.cancel(id);

    // IOGR failover sweeps across the (partially replaced) members.
    Iogr group;
    group.members = targets;
    group.primary_index = 1;
    for (int k = 0; k < 5; ++k) {
        client.invoke_group(
            group, kEcho, encode_to_bytes(std::string("g") + std::to_string(k)),
            [&, k](ReplyStatus s, const Bytes& p) { record(100 + k, s, p); }, 5_ms);
    }
    scheduler.run_until(scheduler.now() + 2_s);
    history << "msgs=" << net.stats().messages_sent << " t=" << scheduler.now();
    return history.str();
}

TEST(Determinism, OrbChurnReproducibleAcrossHeapLayouts) {
    const std::string a = run_orb_churn(77);
    // Perturb the heap between the runs so any address-dependent ordering
    // inside the ORB or scheduler would see a different layout.
    std::vector<std::unique_ptr<int>> ballast;
    for (int i = 0; i < 1024; ++i) ballast.push_back(std::make_unique<int>(i));
    const std::string b = run_orb_churn(77);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find('@'), std::string::npos);  // some completions actually ran
}

// -- reconfiguration determinism ------------------------------------------------------

/// A runtime protocol switch right in the middle of a call burst.  The
/// switch path allocates (pending configs, parked sends, rebuilt ordering
/// engines), so this scenario is the regression net for any
/// address-dependent ordering introduced by reconfiguration: the same seed
/// must reproduce the same history bit-for-bit across heap layouts.
std::string run_reconfig_burst(std::uint64_t seed) {
    Scheduler scheduler;
    Network net(scheduler, calibration::make_lan_topology(), seed);
    Directory directory;

    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<NewTopService>> nsos;
    auto add = [&]() -> NewTopService& {
        orbs.push_back(std::make_unique<Orb>(net, net.add_node(SiteId(0))));
        nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
        return *nsos.back();
    };

    GroupConfig cfg;
    cfg.order = OrderMode::kTotalSymmetric;
    cfg.liveness = LivenessMode::kLively;
    for (int i = 0; i < 3; ++i) {
        add().serve("svc", cfg, std::make_shared<EchoServant>());
        scheduler.run_until(scheduler.now() + 300_ms);
    }
    NewTopService& client = add();
    GroupProxy proxy = client.bind("svc", {.mode = BindMode::kOpen});
    scheduler.run_until(scheduler.now() + 2_s);

    std::ostringstream history;
    for (int k = 0; k < 10; ++k) {
        proxy.invoke(kEcho, encode_to_bytes(std::string("r") + std::to_string(k)),
                     InvocationMode::kWaitAll, [&, k](const GroupReply& reply) {
                         history << "r" << k << "@" << scheduler.now() << ":"
                                 << reply.replies.size() << "\n";
                     });
        if (k == 4) {
            // Mid-burst: a member proposes the switch to the sequencer.
            const auto* info = directory.find_group("svc");
            GroupConfig next = cfg;
            next.order = OrderMode::kTotalAsymmetric;
            nsos[0]->reconfigure(info->id, next);
        }
        scheduler.run_until(scheduler.now() + 150_ms);
    }
    scheduler.run_until(scheduler.now() + 10_s);

    const auto* info = directory.find_group("svc");
    for (int i = 0; i < 3; ++i) {
        history << "epoch" << i << "=" << nsos[static_cast<std::size_t>(i)]->config_epoch(info->id)
                << "\n";
    }
    history << "msgs=" << net.stats().messages_sent << " bytes=" << net.stats().bytes_sent
            << " t=" << scheduler.now();
    return history.str();
}

TEST(Determinism, ReconfigMidBurstReproducibleAcrossHeapLayouts) {
    const std::string a = run_reconfig_burst(99);
    // Perturb the heap so address-dependent ordering would diverge.
    std::vector<std::unique_ptr<int>> ballast;
    for (int i = 0; i < 2048; ++i) ballast.push_back(std::make_unique<int>(i));
    const std::string b = run_reconfig_burst(99);
    EXPECT_EQ(a, b);
    // The switch really happened in both runs.
    EXPECT_NE(a.find("epoch0=1"), std::string::npos) << a;
}

// -- public API edges -----------------------------------------------------------------

struct ApiEdges : ::testing::Test {
    ApiEdges() : net(scheduler, calibration::make_lan_topology(), 3) {}

    NewTopService& add() {
        orbs.push_back(std::make_unique<Orb>(net, net.add_node(SiteId(0))));
        nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
        return *nsos.back();
    }

    Scheduler scheduler;
    Network net;
    Directory directory;
    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<NewTopService>> nsos;
};

TEST_F(ApiEdges, EmptyProxyRejectsCalls) {
    GroupProxy empty;
    EXPECT_THROW(empty.invoke(1, {}, InvocationMode::kWaitFirst, [](const GroupReply&) {}),
                 PreconditionError);
    EXPECT_THROW(empty.one_way(1, {}), PreconditionError);
    EXPECT_FALSE(empty.ready());
    EXPECT_EQ(empty.manager(), std::nullopt);
}

TEST_F(ApiEdges, TwoWayInvokeRequiresHandler) {
    NewTopService& server = add();
    server.serve("svc", GroupConfig{}, std::make_shared<EchoServant>());
    NewTopService& client = add();
    GroupProxy proxy = client.bind("svc", {});
    EXPECT_THROW(proxy.invoke(1, {}, InvocationMode::kWaitAll, nullptr), PreconditionError);
}

TEST_F(ApiEdges, ServeTwiceRejected) {
    NewTopService& server = add();
    server.serve("svc", GroupConfig{}, std::make_shared<EchoServant>());
    EXPECT_THROW(server.serve("svc", GroupConfig{}, std::make_shared<EchoServant>()),
                 PreconditionError);
}

TEST_F(ApiEdges, ServeNullServantRejected) {
    NewTopService& server = add();
    EXPECT_THROW(server.serve("svc", GroupConfig{}, nullptr), PreconditionError);
}

TEST_F(ApiEdges, AsyncForwardingRequiresRestricted) {
    NewTopService& server = add();
    server.serve("svc", GroupConfig{}, std::make_shared<EchoServant>());
    NewTopService& client = add();
    EXPECT_THROW(client.bind("svc", {.restricted = false, .async_forwarding = true}),
                 PreconditionError);
}

TEST_F(ApiEdges, BindGroupRequiresMembership) {
    NewTopService& server = add();
    server.serve("svc", GroupConfig{}, std::make_shared<EchoServant>());
    NewTopService& outsider = add();
    EXPECT_THROW(outsider.bind_group(GroupId(999), "svc"), PreconditionError);
}

TEST_F(ApiEdges, PeerGroupRequiresHandler) {
    NewTopService& peer = add();
    EXPECT_THROW(peer.join_peer_group("room", GroupConfig{}, nullptr), PreconditionError);
}

TEST_F(ApiEdges, UnbindIsIdempotentAndStopsFurtherCalls) {
    NewTopService& server = add();
    server.serve("svc", GroupConfig{}, std::make_shared<EchoServant>());
    NewTopService& client = add();
    GroupProxy proxy = client.bind("svc", {});
    scheduler.run_until(scheduler.now() + 2'000'000);
    ASSERT_TRUE(proxy.ready());
    proxy.unbind();
    proxy.unbind();  // harmless
    EXPECT_FALSE(proxy.ready());
}

TEST_F(ApiEdges, InvokeAfterAllServersGoneCompletesIncomplete) {
    NewTopService& server = add();
    server.serve("svc", GroupConfig{}, std::make_shared<EchoServant>());
    NewTopService& client = add();
    GroupProxy proxy = client.bind("svc", {.call_timeout = 500'000});
    net.crash(orbs[0]->node_id());
    bool done = false;
    GroupReply result;
    proxy.invoke(1, {}, InvocationMode::kWaitAll, [&](const GroupReply& reply) {
        result = reply;
        done = true;
    });
    scheduler.run_until(scheduler.now() + 30'000'000);
    ASSERT_TRUE(done);
    EXPECT_FALSE(result.complete);
}

}  // namespace
}  // namespace newtop
