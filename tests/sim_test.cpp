#include <gtest/gtest.h>

#include <vector>

#include "sim/cpu_queue.hpp"
#include "sim/scheduler.hpp"
#include "util/check.hpp"

namespace newtop {
namespace {

using namespace sim_literals;

TEST(Scheduler, StartsAtTimeZero) {
    Scheduler s;
    EXPECT_EQ(s.now(), 0);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
    Scheduler s;
    std::vector<int> order;
    s.schedule_at(30, [&] { order.push_back(3); });
    s.schedule_at(10, [&] { order.push_back(1); });
    s.schedule_at(20, [&] { order.push_back(2); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, EqualTimestampsRunInSchedulingOrder) {
    Scheduler s;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) s.schedule_at(10, [&order, i] { order.push_back(i); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleAfterIsRelative) {
    Scheduler s;
    SimTime fired_at = -1;
    s.schedule_at(100, [&] {
        s.schedule_after(50, [&] { fired_at = s.now(); });
    });
    s.run();
    EXPECT_EQ(fired_at, 150);
}

TEST(Scheduler, PastTimesClampToNow) {
    Scheduler s;
    SimTime fired_at = -1;
    s.schedule_at(100, [&] {
        s.schedule_at(10, [&] { fired_at = s.now(); });
    });
    s.run();
    EXPECT_EQ(fired_at, 100);
}

TEST(Scheduler, NegativeDelayClampsToNow) {
    Scheduler s;
    SimTime fired_at = -1;
    s.schedule_at(100, [&] {
        s.schedule_after(-5, [&] { fired_at = s.now(); });
    });
    s.run();
    EXPECT_EQ(fired_at, 100);
}

TEST(Scheduler, CancelPreventsExecution) {
    Scheduler s;
    bool ran = false;
    const TimerId id = s.schedule_at(10, [&] { ran = true; });
    s.cancel(id);
    s.run();
    EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelAfterFiringIsHarmless) {
    Scheduler s;
    const TimerId id = s.schedule_at(10, [] {});
    s.run();
    EXPECT_NO_THROW(s.cancel(id));
}

TEST(Scheduler, CancelZeroIdIsNoop) {
    Scheduler s;
    EXPECT_NO_THROW(s.cancel(0));
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
    Scheduler s;
    EXPECT_FALSE(s.step());
    s.schedule_at(1, [] {});
    EXPECT_TRUE(s.step());
    EXPECT_FALSE(s.step());
}

TEST(Scheduler, RunRespectsLimit) {
    Scheduler s;
    int count = 0;
    for (int i = 0; i < 10; ++i) s.schedule_at(i, [&] { ++count; });
    EXPECT_EQ(s.run(4), 4u);
    EXPECT_EQ(count, 4);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
    Scheduler s;
    std::vector<SimTime> fired;
    for (SimTime t : {10, 20, 30, 40}) s.schedule_at(t, [&, t] { fired.push_back(t); });
    s.run_until(25);
    EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
    EXPECT_EQ(s.now(), 25);
    s.run_until(100);
    EXPECT_EQ(fired, (std::vector<SimTime>{10, 20, 30, 40}));
    EXPECT_EQ(s.now(), 100);
}

TEST(Scheduler, RunUntilAdvancesTimeEvenWhenIdle) {
    Scheduler s;
    s.run_until(500);
    EXPECT_EQ(s.now(), 500);
}

TEST(Scheduler, RunUntilWithCancelledHeadBeyondDeadline) {
    Scheduler s;
    bool late_ran = false;
    const TimerId head = s.schedule_at(10, [] {});
    s.schedule_at(50, [&] { late_ran = true; });
    s.cancel(head);
    s.run_until(20);
    EXPECT_FALSE(late_ran);
    s.run_until(60);
    EXPECT_TRUE(late_ran);
}

TEST(Scheduler, EventsScheduledDuringRunAreExecuted) {
    Scheduler s;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5) s.schedule_after(1, recurse);
    };
    s.schedule_at(0, recurse);
    s.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(s.now(), 4);
}

TEST(Scheduler, NullFunctionRejected) {
    Scheduler s;
    EXPECT_THROW(s.schedule_at(1, nullptr), PreconditionError);
}

TEST(Scheduler, PendingCountExcludesCancelled) {
    Scheduler s;
    const TimerId a = s.schedule_at(1, [] {});
    s.schedule_at(2, [] {});
    EXPECT_EQ(s.pending(), 2u);
    s.cancel(a);
    EXPECT_EQ(s.pending(), 1u);
}

// -- CpuQueue ---------------------------------------------------------------

TEST(CpuQueue, SerializesWork) {
    Scheduler s;
    CpuQueue cpu(s);
    std::vector<SimTime> completions;
    cpu.execute(100, [&] { completions.push_back(s.now()); });
    cpu.execute(50, [&] { completions.push_back(s.now()); });
    s.run();
    EXPECT_EQ(completions, (std::vector<SimTime>{100, 150}));
}

TEST(CpuQueue, IdleCpuStartsWorkImmediately) {
    Scheduler s;
    CpuQueue cpu(s);
    SimTime done = -1;
    s.schedule_at(1000, [&] { cpu.execute(10, [&] { done = s.now(); }); });
    s.run();
    EXPECT_EQ(done, 1010);
}

TEST(CpuQueue, QueueingCreatesBacklog) {
    Scheduler s;
    CpuQueue cpu(s);
    // Two submissions at t=0 and t=10; the second waits for the first.
    SimTime second_done = -1;
    cpu.execute(100, [] {});
    s.schedule_at(10, [&] { cpu.execute(20, [&] { second_done = s.now(); }); });
    s.run();
    EXPECT_EQ(second_done, 120);
}

TEST(CpuQueue, ZeroCostWorkStillDefers) {
    Scheduler s;
    CpuQueue cpu(s);
    bool ran_inline = true;
    cpu.execute(0, [&] { ran_inline = false; });
    EXPECT_TRUE(ran_inline);  // not yet run: handlers never run re-entrantly
    s.run();
    EXPECT_FALSE(ran_inline);
}

TEST(CpuQueue, TracksConsumedTime) {
    Scheduler s;
    CpuQueue cpu(s);
    cpu.execute(30, [] {});
    cpu.execute(70, [] {});
    s.run();
    EXPECT_EQ(cpu.consumed(), 100);
}

TEST(CpuQueue, ResetDropsQueuedWork) {
    Scheduler s;
    CpuQueue cpu(s);
    bool ran = false;
    cpu.execute(100, [&] { ran = true; });
    cpu.reset();
    s.run();
    EXPECT_FALSE(ran);
}

TEST(CpuQueue, WorkAfterResetRuns) {
    Scheduler s;
    CpuQueue cpu(s);
    cpu.execute(100, [] { FAIL() << "dropped work must not run"; });
    cpu.reset();
    bool ran = false;
    cpu.execute(10, [&] { ran = true; });
    s.run();
    EXPECT_TRUE(ran);
}

TEST(CpuQueue, NegativeCostRejected) {
    Scheduler s;
    CpuQueue cpu(s);
    EXPECT_THROW(cpu.execute(-1, [] {}), PreconditionError);
}

}  // namespace
}  // namespace newtop
