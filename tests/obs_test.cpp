// Observability layer: histogram bucketing, the metrics registry, trace
// sinks, end-to-end counter values for a small deterministic world, and
// bit-reproducibility of the metrics JSON across identical runs.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/calibration.hpp"
#include "newtop/newtop_service.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace newtop {
namespace {

using namespace sim_literals;

// -- LatencyHistogram ---------------------------------------------------------

TEST(LatencyHistogram, BucketsAreLogScale) {
    obs::LatencyHistogram h;
    h.record(0);   // bucket 0
    h.record(1);   // bucket 1: [1, 2)
    h.record(2);   // bucket 2: [2, 4)
    h.record(3);   // bucket 2
    h.record(4);   // bucket 3: [4, 8)
    h.record(1023);  // bucket 10: [512, 1024)
    h.record(1024);  // bucket 11: [1024, 2048)
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 2u);
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_EQ(h.buckets()[10], 1u);
    EXPECT_EQ(h.buckets()[11], 1u);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.sum(), 0 + 1 + 2 + 3 + 4 + 1023 + 1024);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 1024);
}

TEST(LatencyHistogram, NegativeValuesClampToZero) {
    obs::LatencyHistogram h;
    h.record(-5);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.sum(), 0);
}

TEST(LatencyHistogram, QuantilesComeFromBucketFloorsClampedToTheRange) {
    obs::LatencyHistogram h;
    EXPECT_EQ(h.quantile(0.5), 0);  // empty
    for (int i = 0; i < 50; ++i) h.record(0);
    for (int i = 0; i < 50; ++i) h.record(1000);  // bucket [512, 1024)
    EXPECT_EQ(h.quantile(0.5), 0);
    EXPECT_EQ(h.quantile(0.9), 512);
    EXPECT_EQ(h.quantile(0.99), 512);
}

TEST(LatencyHistogram, SingleSampleQuantilesAreExact) {
    // One sample lands in bucket [4, 8); the clamp to [min, max] recovers
    // the exact value.
    obs::LatencyHistogram h;
    h.record(7);
    EXPECT_EQ(h.quantile(0.5), 7);
    EXPECT_EQ(h.quantile(0.99), 7);
}

TEST(LatencyHistogram, JsonCarriesTheQuantiles) {
    obs::LatencyHistogram h;
    h.record(100);
    std::string out;
    h.append_json(out);
    EXPECT_NE(out.find("\"p50\":"), std::string::npos);
    EXPECT_NE(out.find("\"p90\":"), std::string::npos);
    EXPECT_NE(out.find("\"p99\":"), std::string::npos);
}

TEST(LatencyHistogram, BucketFloors) {
    EXPECT_EQ(obs::LatencyHistogram::bucket_floor(0), 0);
    EXPECT_EQ(obs::LatencyHistogram::bucket_floor(1), 1);
    EXPECT_EQ(obs::LatencyHistogram::bucket_floor(2), 2);
    EXPECT_EQ(obs::LatencyHistogram::bucket_floor(3), 4);
    EXPECT_EQ(obs::LatencyHistogram::bucket_floor(11), 1024);
}

// -- MetricsRegistry ----------------------------------------------------------

TEST(MetricsRegistry, CountersAccumulate) {
    obs::MetricsRegistry m;
    EXPECT_EQ(m.counter("x"), 0u);
    m.add("x");
    m.add("x", 4);
    EXPECT_EQ(m.counter("x"), 5u);
}

TEST(MetricsRegistry, HistogramsCreatedOnFirstObserve) {
    obs::MetricsRegistry m;
    EXPECT_EQ(m.histogram("lat"), nullptr);
    m.observe("lat", 100);
    ASSERT_NE(m.histogram("lat"), nullptr);
    EXPECT_EQ(m.histogram("lat")->count(), 1u);
}

TEST(MetricsRegistry, JsonIsAPureFunctionOfTheData) {
    const auto build = [] {
        obs::MetricsRegistry m;
        m.add("b", 2);
        m.add("a");
        m.observe("lat", 7);
        m.observe("lat", 900);
        return m.to_json();
    };
    const std::string a = build();
    const std::string b = build();
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"counters\""), std::string::npos);
    EXPECT_NE(a.find("\"histograms\""), std::string::npos);
    EXPECT_NE(a.find("\"a\":1"), std::string::npos);
    EXPECT_NE(a.find("\"b\":2"), std::string::npos);
}

TEST(MetricsRegistry, TraceIsANoOpWithoutASink) {
    obs::MetricsRegistry m;
    m.trace(obs::TraceKind::kMulticastSent, 10, 1);  // must not crash
    obs::VectorTraceSink sink;
    m.set_trace_sink(&sink);
    m.trace(obs::TraceKind::kMulticastSent, 10, 1, 2, 3);
    m.trace(obs::TraceKind::kViewInstalled, 20, 1);
    ASSERT_EQ(sink.events().size(), 2u);
    EXPECT_EQ(sink.count(obs::TraceKind::kMulticastSent), 1u);
    EXPECT_EQ(sink.events()[0].at, 10);
    EXPECT_EQ(sink.events()[0].subject, 2u);
    EXPECT_EQ(sink.events()[0].detail, 3u);
    m.set_trace_sink(nullptr);
    m.trace(obs::TraceKind::kFlushSent, 30, 1);
    EXPECT_EQ(sink.events().size(), 2u);
}

// -- trace kinds & sinks ------------------------------------------------------

TEST(TraceKinds, EveryKindHasAUniqueName) {
    std::set<std::string> names;
    for (std::size_t i = 0; i < obs::kTraceKindCount; ++i) {
        const char* name = obs::trace_kind_name(static_cast<obs::TraceKind>(i));
        ASSERT_NE(name, nullptr) << "kind " << i;
        EXPECT_STRNE(name, "?") << "kind " << i;
        EXPECT_TRUE(names.insert(name).second) << "duplicate name for kind " << i;
    }
    // One past the end is the sentinel, proving kTraceKindCount is in sync.
    EXPECT_STREQ(obs::trace_kind_name(static_cast<obs::TraceKind>(obs::kTraceKindCount)), "?");
}

TEST(RingTraceSink, KeepsTheMostRecentEvents) {
    obs::RingTraceSink ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    for (int i = 0; i < 6; ++i) {
        obs::TraceEvent e;
        e.at = i;
        ring.record(e);
    }
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.dropped(), 2u);
    const auto events = ring.snapshot();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].at, static_cast<SimTime>(i + 2));  // oldest first
    }
    ring.clear();
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.dropped(), 0u);
    EXPECT_TRUE(ring.snapshot().empty());
}

TEST(SpanIds, AreDeterministicAndNeverZero) {
    const std::uint64_t t = obs::invocation_trace_id(3, 9, false);
    EXPECT_NE(t, 0u);
    EXPECT_EQ(t, obs::invocation_trace_id(3, 9, false));
    EXPECT_NE(t, obs::invocation_trace_id(3, 9, true));   // closed-mode origin
    EXPECT_NE(t, obs::invocation_trace_id(3, 10, false));  // next call
    const std::uint64_t s = obs::span_id(t, 5, obs::SpanRole::kServer);
    EXPECT_NE(s, 0u);
    EXPECT_NE(s, obs::span_id(t, 5, obs::SpanRole::kManager));
    EXPECT_NE(s, obs::span_id(t, 6, obs::SpanRole::kServer));
}

// -- end-to-end metrics -------------------------------------------------------

constexpr std::uint32_t kEcho = 1;

class EchoServant : public GroupServant {
public:
    Bytes handle(std::uint32_t, const Bytes& args) override { return args; }
};

/// Two servers + one open-mode client on a LAN; `calls` kWaitAll requests.
struct MetricsWorld {
    explicit MetricsWorld(std::uint64_t seed)
        : net(scheduler, calibration::make_lan_topology(), seed) {
        for (int i = 0; i < 2; ++i) {
            orbs.push_back(std::make_unique<Orb>(net, net.add_node(SiteId(0))));
            nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
            nsos.back()->serve("svc", GroupConfig{}, std::make_shared<EchoServant>());
            run_for(300_ms);
        }
        orbs.push_back(std::make_unique<Orb>(net, net.add_node(SiteId(0))));
        nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
        proxy = nsos.back()->bind("svc", {.mode = BindMode::kOpen});
        run_for(2_s);
    }

    void run_for(SimDuration d) { scheduler.run_until(scheduler.now() + d); }

    int run_calls(int calls) {
        int completed = 0;
        for (int i = 0; i < calls; ++i) {
            proxy.invoke(kEcho, encode_to_bytes(std::uint64_t(i)), InvocationMode::kWaitAll,
                         [&](const GroupReply& r) { completed += r.complete ? 1 : 0; });
            run_for(1_s);
        }
        return completed;
    }

    Scheduler scheduler;
    Network net;
    Directory directory;
    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<NewTopService>> nsos;
    GroupProxy proxy;
};

TEST(WorldMetrics, CountersReflectASmallScenario) {
    MetricsWorld world(17);
    ASSERT_EQ(world.run_calls(3), 3);
    const obs::MetricsRegistry& m = world.nsos.back()->metrics();

    // Invocation layer: exactly the client's three calls.
    EXPECT_EQ(m.counter("invocation.calls_sent"), 3u);
    EXPECT_EQ(m.counter("invocation.calls_completed"), 3u);
    EXPECT_EQ(m.counter("invocation.calls_failed"), 0u);
    EXPECT_EQ(m.counter("invocation.calls_retried"), 0u);
    // The manager gathers one reply per server per call.
    EXPECT_EQ(m.counter("invocation.rm_replies_collected"), 6u);

    // The lower layers saw traffic.
    EXPECT_GT(m.counter("gcs.multicasts"), 0u);
    EXPECT_GT(m.counter("gcs.delivered"), 0u);
    EXPECT_GT(m.counter("gcs.views_installed"), 0u);
    EXPECT_GT(m.counter("net.messages_sent"), 0u);
    EXPECT_GT(m.counter("net.messages_delivered"), 0u);
    EXPECT_GT(m.counter("net.bytes_sent"), 0u);
    EXPECT_GT(m.counter("cpu.tasks"), 0u);
    EXPECT_GT(m.counter("orb.invocations"), 0u);

    // Per-mode reply-wait histogram: one sample per completed call.
    const obs::LatencyHistogram* wait = m.histogram("invocation.reply_wait_us.all");
    ASSERT_NE(wait, nullptr);
    EXPECT_EQ(wait->count(), 3u);
    EXPECT_GT(wait->sum(), 0);
    ASSERT_NE(m.histogram("gcs.delivery_latency_us"), nullptr);
    ASSERT_NE(m.histogram("net.delivery_latency_us"), nullptr);
}

TEST(WorldMetrics, TraceSinkSeesTheRequestLifecycle) {
    MetricsWorld world(17);
    obs::VectorTraceSink sink;
    world.net.metrics().set_trace_sink(&sink);
    ASSERT_EQ(world.run_calls(2), 2);
    world.net.metrics().set_trace_sink(nullptr);

    EXPECT_EQ(sink.count(obs::TraceKind::kRequestSent), 2u);
    EXPECT_EQ(sink.count(obs::TraceKind::kCallCompleted), 2u);
    EXPECT_GT(sink.count(obs::TraceKind::kMulticastSent), 0u);
    EXPECT_GT(sink.count(obs::TraceKind::kDataOnWire), 0u);
    // Timestamps never decrease (single scheduler, in-order recording).
    for (std::size_t i = 1; i < sink.events().size(); ++i) {
        EXPECT_LE(sink.events()[i - 1].at, sink.events()[i].at);
    }
}

TEST(WorldMetrics, IdenticalSeedsProduceByteIdenticalJson) {
    const auto run_scenario = [](std::uint64_t seed) {
        MetricsWorld world(seed);
        world.run_calls(3);
        return world.net.metrics().to_json();
    };
    const std::string a = run_scenario(23);
    const std::string b = run_scenario(23);
    EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace newtop
