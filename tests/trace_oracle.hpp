// Shared test fixture: record a world's full trace and oracle-check it.
//
// Instantiating an OracleScope as a member of a test world installs a
// VectorTraceSink into the world's MetricsRegistry; when the world is torn
// down, the protocol oracle (src/obs/oracle.hpp) sweeps the recorded
// stream and the test fails on any total-order / virtual-synchrony /
// duplicate-delivery / reply-threshold violation.  Every scenario that
// builds such a world is conformance-checked for free.
#pragma once

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/oracle.hpp"
#include "obs/trace.hpp"

namespace newtop::test {

class OracleScope {
public:
    explicit OracleScope(obs::MetricsRegistry& registry) : registry_(&registry) {
        registry_->set_trace_sink(&sink_);
    }

    OracleScope(const OracleScope&) = delete;
    OracleScope& operator=(const OracleScope&) = delete;

    ~OracleScope() {
        if (registry_->trace_sink() == &sink_) registry_->set_trace_sink(nullptr);
        if (!armed_) return;
        const auto violations = obs::ProtocolOracle(options_).check(sink_.events());
        EXPECT_TRUE(violations.empty())
            << "protocol oracle:\n"
            << obs::ProtocolOracle::report(violations);
    }

    /// Tweak before the scenario runs (e.g. exempt causal-order groups).
    [[nodiscard]] obs::OracleOptions& options() { return options_; }

    /// Skip the end-of-test check (for scenarios that intentionally break
    /// the protocol's assumptions).
    void disarm() { armed_ = false; }

    [[nodiscard]] const obs::VectorTraceSink& sink() const { return sink_; }

private:
    obs::MetricsRegistry* registry_;
    obs::VectorTraceSink sink_;
    obs::OracleOptions options_;
    bool armed_{true};
};

}  // namespace newtop::test
