// The trace-driven protocol oracle, tested in both directions: green over
// healthy synthetic and captured streams, and red — via targeted mutations
// of a real capture — on seeded violations of total order, virtual
// synchrony, duplicate suppression and reply-threshold accounting.  Also
// covers the span-tree reconstruction and the Perfetto exporter over the
// same captures.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/calibration.hpp"
#include "newtop/newtop_service.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/oracle.hpp"
#include "obs/trace.hpp"

namespace newtop {
namespace {

using namespace sim_literals;
using obs::TraceEvent;
using obs::TraceKind;
using obs::Violation;

bool has_violation(const std::vector<Violation>& violations, Violation::Kind kind) {
    return std::any_of(violations.begin(), violations.end(),
                       [kind](const Violation& v) { return v.kind == kind; });
}

// -- synthetic streams: precise unit coverage ---------------------------------

TraceEvent delivered(SimTime at, std::uint64_t actor, std::uint64_t group,
                     std::uint64_t epoch, std::uint64_t sender, std::uint64_t seq) {
    TraceEvent e;
    e.at = at;
    e.kind = TraceKind::kDataDelivered;
    e.actor = actor;
    e.subject = group;
    e.detail = obs::pack_delivered_ref(epoch, sender, seq);
    return e;
}

TraceEvent installed(SimTime at, std::uint64_t actor, std::uint64_t group,
                     std::uint64_t epoch, std::uint64_t digest) {
    TraceEvent e;
    e.at = at;
    e.kind = TraceKind::kViewInstalled;
    e.actor = actor;
    e.subject = group;
    e.detail = obs::pack_view_detail(epoch, digest);
    return e;
}

TEST(ProtocolOracle, EmptyStreamIsClean) {
    EXPECT_TRUE(obs::ProtocolOracle().check(std::vector<TraceEvent>{}).empty());
}

TEST(ProtocolOracle, AgreeingMembersAreClean) {
    const std::vector<TraceEvent> events = {
        delivered(10, 1, 5, 1, 1, 0),
        delivered(11, 2, 5, 1, 1, 0),
        delivered(20, 1, 5, 1, 2, 0),
        delivered(21, 2, 5, 1, 2, 0),
    };
    EXPECT_TRUE(obs::ProtocolOracle().check(events).empty());
}

TEST(ProtocolOracle, ReportsTotalOrderDisagreement) {
    const std::vector<TraceEvent> events = {
        delivered(10, 1, 5, 1, 1, 0),
        delivered(20, 1, 5, 1, 2, 0),
        delivered(11, 2, 5, 1, 2, 0),  // member 2 sees them the other way round
        delivered(21, 2, 5, 1, 1, 0),
    };
    const auto violations = obs::ProtocolOracle().check(events);
    EXPECT_TRUE(has_violation(violations, Violation::Kind::kTotalOrder));
}

TEST(ProtocolOracle, CausalGroupsAreExemptFromTotalOrder) {
    const std::vector<TraceEvent> events = {
        delivered(10, 1, 5, 1, 1, 0),
        delivered(20, 1, 5, 1, 2, 0),
        delivered(11, 2, 5, 1, 2, 0),
        delivered(21, 2, 5, 1, 1, 0),
    };
    obs::OracleOptions options;
    options.causal_groups.insert(5);
    EXPECT_TRUE(obs::ProtocolOracle(options).check(events).empty());
}

TEST(ProtocolOracle, ReportsDuplicateDelivery) {
    const std::vector<TraceEvent> events = {
        delivered(10, 1, 5, 1, 1, 0),
        delivered(20, 1, 5, 1, 1, 0),
    };
    const auto violations = obs::ProtocolOracle().check(events);
    EXPECT_TRUE(has_violation(violations, Violation::Kind::kDuplicateDelivery));
}

TEST(ProtocolOracle, ReportsVirtualSynchronyGapBetweenSharedViews) {
    // Members 1 and 2 share the v1 -> v2 transition, but only member 1
    // delivered the epoch-1 message before the cut.
    const std::vector<TraceEvent> events = {
        installed(0, 1, 5, 1, 77), installed(0, 2, 5, 1, 77),
        delivered(10, 1, 5, 1, 1, 0),
        installed(20, 1, 5, 2, 88), installed(20, 2, 5, 2, 88),
    };
    const auto violations = obs::ProtocolOracle().check(events);
    EXPECT_TRUE(has_violation(violations, Violation::Kind::kVirtualSynchrony));
}

TEST(ProtocolOracle, FinalViewIsExemptFromVirtualSynchrony) {
    // Same gap, but there is no successor view: a crashed or partitioned
    // member's last view is legitimately incomplete.
    const std::vector<TraceEvent> events = {
        installed(0, 1, 5, 1, 77), installed(0, 2, 5, 1, 77),
        delivered(10, 1, 5, 1, 1, 0),
    };
    EXPECT_TRUE(obs::ProtocolOracle().check(events).empty());
}

TEST(ProtocolOracle, PartitionedViewsAreComparedPerTransition) {
    // Epoch numbers collide across a split, but the membership digests
    // differ: the two sides must not be compared against each other.
    const std::vector<TraceEvent> events = {
        installed(0, 1, 5, 1, 77), installed(0, 2, 5, 1, 77),
        delivered(10, 1, 5, 1, 1, 0),  // side A delivered, side B did not
        installed(20, 1, 5, 2, 11),    // side A's epoch 2
        installed(20, 2, 5, 2, 22),    // side B's epoch 2, different digest
        installed(30, 1, 5, 3, 11),
        installed(30, 2, 5, 3, 22),
    };
    EXPECT_TRUE(obs::ProtocolOracle().check(events).empty());
}

TEST(ProtocolOracle, ReplyThresholdHonoursInvocationMode) {
    TraceEvent collected;
    collected.at = 10;
    collected.kind = TraceKind::kReplyCollected;
    collected.actor = 1;
    collected.trace = 42;

    TraceEvent completed;
    completed.at = 20;
    completed.kind = TraceKind::kCallCompleted;
    completed.actor = 1;
    completed.trace = 42;
    completed.detail = obs::pack_completion_detail(3, 0);  // wait-all

    obs::OracleOptions options;
    options.min_replies_by_mode[3] = 2;
    EXPECT_TRUE(has_violation(obs::ProtocolOracle(options).check({collected, completed}),
                              Violation::Kind::kReplyThreshold));

    // One-way completions are never reply-checked.
    completed.detail = obs::pack_completion_detail(0, 0);
    EXPECT_TRUE(obs::ProtocolOracle(options).check({completed}).empty());
}

TEST(ProtocolOracle, RepliesMustPrecedeTheCompletion) {
    TraceEvent collected;
    collected.kind = TraceKind::kReplyCollected;
    collected.trace = 42;
    TraceEvent completed;
    completed.kind = TraceKind::kCallCompleted;
    completed.trace = 42;
    completed.detail = obs::pack_completion_detail(1, 0);

    EXPECT_TRUE(obs::ProtocolOracle().check({collected, completed}).empty());
    EXPECT_TRUE(has_violation(obs::ProtocolOracle().check({completed, collected}),
                              Violation::Kind::kReplyThreshold));
}

// -- config-epoch attribution -------------------------------------------------

TraceEvent switched(SimTime at, std::uint64_t actor, std::uint64_t group,
                    std::uint64_t config_epoch, std::uint64_t view_epoch) {
    TraceEvent e;
    e.at = at;
    e.kind = TraceKind::kConfigSwitched;
    e.actor = actor;
    e.subject = group;
    e.detail = obs::pack_config_detail(config_epoch, view_epoch);
    return e;
}

TEST(ProtocolOracle, CleanConfigSwitchIsClean) {
    // Pre-switch deliveries under view 1, the switch at view 2's install,
    // post-switch deliveries ordered under view 2: the textbook timeline.
    const std::vector<TraceEvent> events = {
        installed(0, 1, 5, 1, 77),  delivered(10, 1, 5, 1, 1, 0),
        installed(20, 1, 5, 2, 88), switched(20, 1, 5, 1, 2),
        delivered(30, 1, 5, 2, 1, 0),
    };
    const auto violations = obs::ProtocolOracle().check(events);
    EXPECT_TRUE(violations.empty()) << obs::ProtocolOracle::report(violations);
}

TEST(ProtocolOracle, ReportsPreSwitchDeliveryAfterConfigSwitch) {
    // A message ordered under view 1 delivered after the member switched
    // configs at view 2: the flush boundary tore.
    const std::vector<TraceEvent> events = {
        installed(0, 1, 5, 1, 77),
        installed(20, 1, 5, 2, 88),
        switched(20, 1, 5, 1, 2),
        delivered(30, 1, 5, 1, 1, 0),
    };
    EXPECT_TRUE(has_violation(obs::ProtocolOracle().check(events),
                              Violation::Kind::kConfigTornDelivery));
}

TEST(ProtocolOracle, ReportsConfigEpochRegression) {
    const std::vector<TraceEvent> events = {
        installed(0, 1, 5, 1, 77),
        switched(10, 1, 5, 2, 1),
        switched(20, 1, 5, 1, 1),  // epochs must only advance in a lineage
    };
    EXPECT_TRUE(has_violation(obs::ProtocolOracle().check(events),
                              Violation::Kind::kConfigTornDelivery));
}

TEST(ProtocolOracle, LineageRestartResetsConfigAttribution) {
    // An ejected member rejoins a re-formed group: view epochs restart, and
    // so does config attribution — a fresh epoch-1 delivery and an epoch-1
    // config are both legitimate again.
    const std::vector<TraceEvent> events = {
        installed(0, 1, 5, 3, 77),
        switched(0, 1, 5, 2, 3),
        delivered(10, 1, 5, 3, 1, 0),
        installed(20, 1, 5, 1, 99),  // epoch regressed: new lineage
        switched(20, 1, 5, 1, 1),
        delivered(30, 1, 5, 1, 1, 0),
    };
    const auto violations = obs::ProtocolOracle().check(events);
    EXPECT_TRUE(violations.empty()) << obs::ProtocolOracle::report(violations);
}

// -- captured streams: a real world, then seeded mutations --------------------

constexpr std::uint32_t kEcho = 1;

class EchoServant : public GroupServant {
public:
    Bytes handle(std::uint32_t, const Bytes& args) override { return args; }
};

/// N echo servers + one open-mode client on a LAN, full trace captured.
struct CaptureWorld {
    explicit CaptureWorld(int servers, std::uint64_t seed = 17)
        : net(scheduler, calibration::make_lan_topology(), seed) {
        net.metrics().set_trace_sink(&sink);
        for (int i = 0; i < servers; ++i) add_server();
        orbs.push_back(std::make_unique<Orb>(net, net.add_node(SiteId(0))));
        nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
        proxy = nsos.back()->bind("svc", {.mode = BindMode::kOpen});
        run_for(2_s);
    }

    ~CaptureWorld() { net.metrics().set_trace_sink(nullptr); }

    void add_server() {
        orbs.push_back(std::make_unique<Orb>(net, net.add_node(SiteId(0))));
        nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
        nsos.back()->serve("svc", GroupConfig{}, std::make_shared<EchoServant>());
        run_for(500_ms);
    }

    void run_for(SimDuration d) { scheduler.run_until(scheduler.now() + d); }

    int run_calls(int calls) {
        int completed = 0;
        for (int i = 0; i < calls; ++i) {
            proxy.invoke(kEcho, encode_to_bytes(std::uint64_t(i)), InvocationMode::kWaitAll,
                         [&](const GroupReply& r) { completed += r.complete ? 1 : 0; });
            run_for(1_s);
        }
        return completed;
    }

    Scheduler scheduler;
    Network net;
    Directory directory;
    obs::VectorTraceSink sink;
    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<NewTopService>> nsos;
    GroupProxy proxy;
};

TEST(CapturedTrace, HealthyScenarioPassesTheOracle) {
    CaptureWorld world(2);
    ASSERT_EQ(world.run_calls(3), 3);
    obs::OracleOptions options;
    options.min_replies_by_mode[3] = 2;  // wait-all over two stable servers
    const auto violations = obs::ProtocolOracle(options).check(world.sink.events());
    EXPECT_TRUE(violations.empty()) << obs::ProtocolOracle::report(violations);
}

TEST(CapturedTrace, SpanTreeReconstructsClientManagerAndServers) {
    CaptureWorld world(2);
    ASSERT_EQ(world.run_calls(1), 1);
    const auto& events = world.sink.events();

    const auto completed =
        std::find_if(events.begin(), events.end(),
                     [](const TraceEvent& e) { return e.kind == TraceKind::kCallCompleted; });
    ASSERT_NE(completed, events.end());
    const std::uint64_t trace = completed->trace;
    ASSERT_NE(trace, 0u);

    std::uint64_t client_span = 0, manager_span = 0;
    std::set<std::uint64_t> exec_spans;
    for (const TraceEvent& e : events) {
        if (e.trace != trace) continue;
        if (e.kind == TraceKind::kRequestSent) client_span = e.span;
        if (e.kind == TraceKind::kRequestForwarded) manager_span = e.span;
        if (e.kind == TraceKind::kExecutionBegun) exec_spans.insert(e.span);
    }
    ASSERT_NE(client_span, 0u);
    ASSERT_NE(manager_span, 0u);
    EXPECT_EQ(completed->span, client_span);
    EXPECT_GE(exec_spans.size(), 2u);  // both replicas executed

    // Parent edges: client -> manager -> executions; replies point back at
    // the execution spans that produced them.
    for (const TraceEvent& e : events) {
        if (e.trace != trace) continue;
        if (e.kind == TraceKind::kRequestForwarded) {
            EXPECT_EQ(e.parent, client_span);
        }
        if (e.kind == TraceKind::kExecutionBegun) {
            EXPECT_EQ(e.parent, manager_span);
        }
        if (e.kind == TraceKind::kReplyCollected) {
            EXPECT_EQ(e.span, manager_span);
            EXPECT_TRUE(exec_spans.contains(e.parent));
        }
        if (e.kind == TraceKind::kAggregateSent) {
            EXPECT_EQ(e.span, manager_span);
        }
    }
}

TEST(CapturedTrace, ExporterIsDeterministicAndSpanPaired) {
    CaptureWorld world(2);
    ASSERT_EQ(world.run_calls(2), 2);
    const std::string a = obs::export_chrome_trace(world.sink.events());
    const std::string b = obs::export_chrome_trace(world.sink.events());
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(a.find("\"ph\":\"X\",\"name\":\"invoke\""), std::string::npos);
    EXPECT_NE(a.find("\"ph\":\"X\",\"name\":\"manage\""), std::string::npos);
    EXPECT_NE(a.find("\"ph\":\"X\",\"name\":\"execute\""), std::string::npos);
    EXPECT_NE(a.find("\"ph\":\"M\",\"name\":\"process_name\""), std::string::npos);
    EXPECT_NE(a.find("\"ph\":\"i\",\"name\":\"data_delivered\""), std::string::npos);
}

TEST(CapturedTrace, MutationSwappedDeliveriesAreReported) {
    CaptureWorld world(2);
    ASSERT_EQ(world.run_calls(3), 3);
    std::vector<TraceEvent> events = world.sink.events();

    // Find one member's first two deliveries whose refs another member of
    // the same group also delivered, and swap them.
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<std::size_t>> by_member;
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i].kind == TraceKind::kDataDelivered) {
            by_member[{events[i].subject, events[i].actor}].push_back(i);
        }
    }
    bool swapped = false;
    for (const auto& [key_a, log_a] : by_member) {
        for (const auto& [key_b, log_b] : by_member) {
            if (key_a.first != key_b.first || key_a.second == key_b.second) continue;
            std::set<std::uint64_t> refs_b;
            for (const std::size_t i : log_b) refs_b.insert(events[i].detail);
            std::vector<std::size_t> common;
            for (const std::size_t i : log_a) {
                if (refs_b.contains(events[i].detail)) common.push_back(i);
            }
            if (common.size() < 2) continue;
            std::swap(events[common[0]].detail, events[common[1]].detail);
            swapped = true;
            break;
        }
        if (swapped) break;
    }
    ASSERT_TRUE(swapped) << "capture held no two common deliveries to swap";

    EXPECT_TRUE(has_violation(obs::ProtocolOracle().check(events),
                              Violation::Kind::kTotalOrder));
}

TEST(CapturedTrace, MutationDuplicatedDeliveryIsReported) {
    CaptureWorld world(2);
    ASSERT_EQ(world.run_calls(2), 2);
    std::vector<TraceEvent> events = world.sink.events();
    const auto it =
        std::find_if(events.begin(), events.end(),
                     [](const TraceEvent& e) { return e.kind == TraceKind::kDataDelivered; });
    ASSERT_NE(it, events.end());
    events.push_back(*it);  // the same member delivers the same ref again

    EXPECT_TRUE(has_violation(obs::ProtocolOracle().check(events),
                              Violation::Kind::kDuplicateDelivery));
}

TEST(CapturedTrace, MutationDroppedReplyIsReported) {
    CaptureWorld world(2);
    ASSERT_EQ(world.run_calls(3), 3);
    std::vector<TraceEvent> events = world.sink.events();

    obs::OracleOptions options;
    options.min_replies_by_mode[3] = 2;
    ASSERT_TRUE(obs::ProtocolOracle(options).check(events).empty());

    // Drop the last gathered reply: its call now completed under threshold.
    const auto last =
        std::find_if(events.rbegin(), events.rend(),
                     [](const TraceEvent& e) { return e.kind == TraceKind::kReplyCollected; });
    ASSERT_NE(last, events.rend());
    events.erase(std::next(last).base());

    EXPECT_TRUE(has_violation(obs::ProtocolOracle(options).check(events),
                              Violation::Kind::kReplyThreshold));
}

TEST(CapturedTrace, MutationDroppedDeliveryBreaksVirtualSynchrony) {
    CaptureWorld world(2);
    ASSERT_EQ(world.run_calls(2), 2);
    // A third replica joins afterwards: the traffic epoch is finalized by
    // the resulting view change, arming the virtual-synchrony check.
    world.add_server();
    world.run_for(1_s);
    std::vector<TraceEvent> events = world.sink.events();
    ASSERT_TRUE(obs::ProtocolOracle().check(events).empty());

    // Erase one delivery that sits in a finalized (non-final) view of its
    // member: every peer of that transition still has it.
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<std::uint64_t>> installs;
    for (const TraceEvent& e : events) {
        if (e.kind == TraceKind::kViewInstalled) {
            installs[{e.subject, e.actor}].push_back(e.detail);
        }
    }
    bool erased = false;
    for (const auto& [key, views] : installs) {
        for (std::size_t v = 0; v + 1 < views.size() && !erased; ++v) {
            const std::uint64_t epoch16 = obs::view_detail_epoch(views[v]) & 0xffff;
            for (std::size_t i = 0; i < events.size(); ++i) {
                const TraceEvent& e = events[i];
                if (e.kind == TraceKind::kDataDelivered && e.actor == key.second &&
                    e.subject == key.first && ((e.detail >> 48) & 0xffff) == epoch16) {
                    events.erase(events.begin() + static_cast<std::ptrdiff_t>(i));
                    erased = true;
                    break;
                }
            }
        }
        if (erased) break;
    }
    ASSERT_TRUE(erased) << "capture held no delivery inside a finalized view";

    EXPECT_TRUE(has_violation(obs::ProtocolOracle().check(events),
                              Violation::Kind::kVirtualSynchrony));
}

TEST(CapturedTrace, MutationTornConfigSwitchIsReported) {
    // A real runtime reconfiguration mid-workload passes the oracle; then
    // rewriting one post-switch delivery's ref to a pre-switch view epoch
    // must trip the config-torn check.
    CaptureWorld world(2);
    ASSERT_EQ(world.run_calls(2), 2);
    const auto* info = world.directory.find_group("svc");
    ASSERT_NE(info, nullptr);
    const GroupConfig* current = world.nsos[0]->group_comm().group_config(info->id);
    ASSERT_NE(current, nullptr);
    GroupConfig next = *current;
    next.order = current->order == OrderMode::kTotalSymmetric ? OrderMode::kTotalAsymmetric
                                                              : OrderMode::kTotalSymmetric;
    world.nsos[0]->reconfigure(info->id, next);
    world.run_for(5_s);
    ASSERT_EQ(world.run_calls(2), 2);
    std::vector<TraceEvent> events = world.sink.events();
    {
        const auto violations = obs::ProtocolOracle().check(events);
        ASSERT_TRUE(violations.empty()) << obs::ProtocolOracle::report(violations);
    }

    const auto marker =
        std::find_if(events.begin(), events.end(),
                     [](const TraceEvent& e) { return e.kind == TraceKind::kConfigSwitched; });
    ASSERT_NE(marker, events.end()) << "the reconfiguration never switched";
    const std::uint64_t switch_epoch = obs::config_detail_view_epoch(marker->detail) & 0xffff;
    ASSERT_GE(switch_epoch, 2u);
    const auto torn = std::find_if(marker, events.end(), [&](const TraceEvent& e) {
        return e.kind == TraceKind::kDataDelivered && e.subject == marker->subject &&
               e.actor == marker->actor;
    });
    ASSERT_NE(torn, events.end()) << "no post-switch delivery to mutate";
    torn->detail = (torn->detail & 0x0000ffffffffffffULL) | ((switch_epoch - 1) << 48);

    EXPECT_TRUE(has_violation(obs::ProtocolOracle().check(events),
                              Violation::Kind::kConfigTornDelivery));
}

}  // namespace
}  // namespace newtop
