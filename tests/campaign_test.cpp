// Long-mode chaos campaign, built as its own test binary so it can carry
// the "campaign"/"slow" ctest labels.  Seed count comes from the
// NEWTOP_CAMPAIGN_SEEDS environment variable (default 200, the acceptance
// bar); scripts/check.sh --campaign [N] drives it.
#include <gtest/gtest.h>

#include <cstdlib>

#include "fuzz/campaign.hpp"

namespace newtop::fuzz {
namespace {

int seeds_from_env() {
    // newtop-lint: allow(getenv): seed-budget knob read once at startup, outside any scenario
    const char* env = std::getenv("NEWTOP_CAMPAIGN_SEEDS");
    if (env == nullptr || *env == '\0') return 200;
    const int n = std::atoi(env);
    return n > 0 ? n : 200;
}

TEST(ChaosCampaign, LongCampaignClean) {
    CampaignOptions options;
    options.base_seed = 1;
    options.runs = seeds_from_env();
    const CampaignResult result = CampaignRunner(options).run();
    if (!result.ok()) {
        // Make the failing seed impossible to miss in CI output.
        ADD_FAILURE() << "\n=====================================================\n"
                      << "FAILING SEED: " << result.first_failure->seed << "\n"
                      << "replay with: NEWTOP_FUZZ_SEED=" << result.first_failure->seed
                      << " newtop_fuzz\n"
                      << "=====================================================\n"
                      << result.report();
    }
    EXPECT_EQ(result.runs, seeds_from_env());
}

// Same acceptance bar with mid-run reconfigurations sprinkled in: every
// scenario may now carry 0-3 kReconfigure faults switching a live server
// group between the symmetric and asymmetric total-order protocols while
// crashes, restarts, partitions and loss bursts fire around it.  The
// extended oracle (config-epoch attribution, kConfigTornDelivery) judges
// every run.  A disjoint seed block keeps the two campaigns from re-running
// identical fault plans.
TEST(ChaosCampaign, ReconfigCampaignClean) {
    CampaignOptions options;
    options.base_seed = 1'000'000;
    options.runs = seeds_from_env();
    options.limits.allow_reconfigs = true;
    const CampaignResult result = CampaignRunner(options).run();
    if (!result.ok()) {
        ADD_FAILURE() << "\n=====================================================\n"
                      << "FAILING SEED: " << result.first_failure->seed << "\n"
                      << "replay with: NEWTOP_FUZZ_SEED=" << result.first_failure->seed
                      << " NEWTOP_FUZZ_RECONFIG=1 newtop_fuzz\n"
                      << "=====================================================\n"
                      << result.report();
    }
    EXPECT_EQ(result.runs, seeds_from_env());
}

}  // namespace
}  // namespace newtop::fuzz
