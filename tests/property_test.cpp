// Randomised property tests over the whole stack.
//
// Each case builds a world from a (protocol, group size, network, seed)
// tuple, drives a randomised workload, and checks protocol invariants:
//
//   * total order: all members deliver identical sequences,
//   * completeness: every message multicast by a member that stays up is
//     delivered everywhere,
//   * virtual synchrony under random crashes: survivors' delivery
//     sequences are identical (same set, same order),
//   * causal legality in kCausal groups: a message is never delivered
//     before one of its causal predecessors.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "gcs/endpoint.hpp"
#include "gcs/messages.hpp"
#include "net/calibration.hpp"
#include "serial/decoder.hpp"
#include "serial/encoder.hpp"
#include "util/rng.hpp"

namespace newtop {
namespace {

using namespace sim_literals;

struct PropWorld {
    PropWorld(Topology t, std::uint64_t seed) : net(scheduler, std::move(t), seed) {}

    std::size_t add_endpoint(SiteId site) {
        const NodeId node = net.add_node(site);
        orbs.push_back(std::make_unique<Orb>(net, node));
        auto ep = std::make_unique<GroupCommEndpoint>(*orbs.back(), directory);
        const std::size_t index = endpoints.size();
        delivered.emplace_back();
        ep->set_deliver_handler([this, index](const GroupCommEndpoint::Delivery& d) {
            delivered[index].push_back(std::string(d.payload.begin(), d.payload.end()));
        });
        endpoints.push_back(std::move(ep));
        return index;
    }

    void run_for(SimDuration d) { scheduler.run_until(scheduler.now() + d); }

    Scheduler scheduler;
    Network net;
    Directory directory;
    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<GroupCommEndpoint>> endpoints;
    std::vector<std::vector<std::string>> delivered;
};

enum class Net : std::uint8_t { kLan, kLossyLan, kWan };

Topology topology_for(Net net) {
    switch (net) {
        case Net::kLan: return calibration::make_lan_topology();
        case Net::kLossyLan: {
            Topology t;
            t.add_site("LAN", LinkParams{.latency = 250, .jitter = 100, .loss = 0.05,
                                         .bytes_per_us = 12.5});
            return t;
        }
        case Net::kWan: return calibration::make_paper_topology().topology;
    }
    return calibration::make_lan_topology();
}

SiteId site_for(Net net, std::size_t index) {
    if (net == Net::kWan) return SiteId(static_cast<SiteId::rep_type>(index % 3));
    return SiteId(0);
}

using TotalOrderParam = std::tuple<OrderMode, int /*members*/, Net, int /*seed*/>;

struct TotalOrderProperty : ::testing::TestWithParam<TotalOrderParam> {};

TEST_P(TotalOrderProperty, AgreementAndCompleteness) {
    const auto [order, members, netkind, seed] = GetParam();
    PropWorld world(topology_for(netkind), static_cast<std::uint64_t>(seed) * 7919 + 13);
    Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);

    GroupConfig cfg;
    cfg.order = order;
    cfg.liveness = LivenessMode::kLively;

    GroupId g;
    for (int i = 0; i < members; ++i) {
        const auto idx = world.add_endpoint(site_for(netkind, static_cast<std::size_t>(i)));
        if (i == 0) {
            g = world.endpoints[idx]->create_group("g", cfg);
        } else {
            world.endpoints[idx]->join_group("g");
        }
        world.run_for(500_ms);
    }
    for (int i = 0; i < members; ++i) {
        ASSERT_TRUE(world.endpoints[static_cast<std::size_t>(i)]->is_member(g));
    }

    // Random multicast schedule: each member sends 3..8 messages at random
    // times across half a second.
    std::set<std::string> sent;
    for (int i = 0; i < members; ++i) {
        const int n = static_cast<int>(rng.next_in(3, 8));
        for (int k = 0; k < n; ++k) {
            const std::string text = std::to_string(i) + "/" + std::to_string(k);
            sent.insert(text);
            const SimTime at = world.scheduler.now() +
                               static_cast<SimTime>(rng.next_in(0, 500'000));
            world.scheduler.schedule_at(at, [&world, g, i, text] {
                world.endpoints[static_cast<std::size_t>(i)]->multicast(
                    g, Bytes(text.begin(), text.end()));
            });
        }
    }
    world.run_for(10_s);

    const auto& reference = world.delivered[0];
    EXPECT_EQ(reference.size(), sent.size()) << "missing deliveries";
    for (int i = 1; i < members; ++i) {
        EXPECT_EQ(world.delivered[static_cast<std::size_t>(i)], reference)
            << "member " << i << " disagrees on delivery order";
    }
    const std::set<std::string> got(reference.begin(), reference.end());
    EXPECT_EQ(got, sent);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TotalOrderProperty,
    ::testing::Combine(::testing::Values(OrderMode::kTotalSymmetric,
                                         OrderMode::kTotalAsymmetric),
                       ::testing::Values(2, 4, 6), ::testing::Values(Net::kLan, Net::kWan),
                       ::testing::Values(1, 2)),
    [](const auto& info) {
        std::string name =
            std::get<0>(info.param) == OrderMode::kTotalSymmetric ? "Sym" : "Asym";
        name += std::to_string(std::get<1>(info.param)) + "m";
        const Net netkind = std::get<2>(info.param);
        name += netkind == Net::kLan ? "Lan" : netkind == Net::kWan ? "Wan" : "Lossy";
        name += "S" + std::to_string(std::get<3>(info.param));
        return name;
    });

using LossParam = std::tuple<OrderMode, int /*seed*/>;

struct LossRecoveryProperty : ::testing::TestWithParam<LossParam> {};

TEST_P(LossRecoveryProperty, AgreementUnderLoss) {
    const auto [order, seed] = GetParam();
    PropWorld world(topology_for(Net::kLossyLan), static_cast<std::uint64_t>(seed) * 101 + 3);
    GroupConfig cfg;
    cfg.order = order;
    cfg.liveness = LivenessMode::kLively;

    GroupId g;
    for (int i = 0; i < 3; ++i) {
        const auto idx = world.add_endpoint(SiteId(0));
        if (i == 0) {
            g = world.endpoints[idx]->create_group("g", cfg);
        } else {
            world.endpoints[idx]->join_group("g");
        }
        world.run_for(3_s);
    }
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(world.endpoints[static_cast<std::size_t>(i)]->is_member(g));

    for (int k = 0; k < 12; ++k) {
        const std::string text = "m" + std::to_string(k);
        world.endpoints[static_cast<std::size_t>(k % 3)]->multicast(
            g, Bytes(text.begin(), text.end()));
        world.run_for(40_ms);
    }
    world.run_for(10_s);

    EXPECT_EQ(world.delivered[0].size(), 12u);
    EXPECT_EQ(world.delivered[1], world.delivered[0]);
    EXPECT_EQ(world.delivered[2], world.delivered[0]);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LossRecoveryProperty,
                         ::testing::Combine(::testing::Values(OrderMode::kTotalSymmetric,
                                                              OrderMode::kTotalAsymmetric),
                                            ::testing::Values(1, 2, 3)),
                         [](const auto& info) {
                             std::string name = std::get<0>(info.param) ==
                                                        OrderMode::kTotalSymmetric
                                                    ? "Sym"
                                                    : "Asym";
                             return name + "S" + std::to_string(std::get<1>(info.param));
                         });

using CrashParam = std::tuple<OrderMode, int /*seed*/>;

struct CrashSynchronyProperty : ::testing::TestWithParam<CrashParam> {};

TEST_P(CrashSynchronyProperty, SurvivorsAgreeAfterRandomCrash) {
    const auto [order, seed] = GetParam();
    PropWorld world(topology_for(Net::kLan), static_cast<std::uint64_t>(seed) * 53 + 1);
    Rng rng(static_cast<std::uint64_t>(seed) * 17 + 5);
    GroupConfig cfg;
    cfg.order = order;
    cfg.liveness = LivenessMode::kLively;

    constexpr int kMembers = 4;
    GroupId g;
    for (int i = 0; i < kMembers; ++i) {
        const auto idx = world.add_endpoint(SiteId(0));
        if (i == 0) {
            g = world.endpoints[idx]->create_group("g", cfg);
        } else {
            world.endpoints[idx]->join_group("g");
        }
        world.run_for(300_ms);
    }

    // Pick a victim (never member 0 so the assertion target survives) and a
    // random crash time inside the traffic burst.
    const auto victim = 1 + rng.next_in(0, kMembers - 2);
    const SimTime crash_at =
        world.scheduler.now() + static_cast<SimTime>(rng.next_in(1'000, 200'000));
    world.scheduler.schedule_at(crash_at, [&world, victim] {
        world.net.crash(world.orbs[victim]->node_id());
    });

    for (int k = 0; k < 10; ++k) {
        for (int i = 0; i < kMembers; ++i) {
            const std::string text = std::to_string(i) + "#" + std::to_string(k);
            const SimTime at = world.scheduler.now() +
                               static_cast<SimTime>(rng.next_in(0, 300'000));
            world.scheduler.schedule_at(at, [&world, g, i, text] {
                auto& ep = *world.endpoints[static_cast<std::size_t>(i)];
                if (ep.is_member(g)) ep.multicast(g, Bytes(text.begin(), text.end()));
            });
        }
    }
    world.run_for(15_s);

    // Virtual synchrony: all survivors delivered identical sequences.
    std::vector<std::size_t> survivors;
    for (std::size_t i = 0; i < kMembers; ++i) {
        if (i != victim) survivors.push_back(i);
    }
    const auto& reference = world.delivered[survivors[0]];
    for (const auto s : survivors) {
        EXPECT_EQ(world.delivered[s], reference) << "survivor " << s << " diverged";
    }
    // Completeness for survivors' own messages.
    for (const auto s : survivors) {
        for (int k = 0; k < 10; ++k) {
            const std::string want = std::to_string(s) + "#" + std::to_string(k);
            EXPECT_NE(std::find(reference.begin(), reference.end(), want), reference.end())
                << "missing " << want;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrashSynchronyProperty,
                         ::testing::Combine(::testing::Values(OrderMode::kTotalSymmetric,
                                                              OrderMode::kTotalAsymmetric),
                                            ::testing::Values(1, 2, 3, 4)),
                         [](const auto& info) {
                             std::string name = std::get<0>(info.param) ==
                                                        OrderMode::kTotalSymmetric
                                                    ? "Sym"
                                                    : "Asym";
                             return name + "S" + std::to_string(std::get<1>(info.param));
                         });

// -- causal legality -----------------------------------------------------------------

TEST(CausalLegalityProperty, DeliveriesNeverPrecedeTheirCauses) {
    // Members react to every delivery with probability 1/2 by multicasting
    // a response naming its cause; every member's log must show the cause
    // before the response.
    for (int seed = 1; seed <= 4; ++seed) {
        PropWorld world(topology_for(Net::kWan), static_cast<std::uint64_t>(seed));
        auto rng = std::make_shared<Rng>(static_cast<std::uint64_t>(seed) * 97);
        GroupConfig cfg;
        cfg.order = OrderMode::kCausal;
        cfg.liveness = LivenessMode::kLively;

        GroupId g;
        for (int i = 0; i < 3; ++i) {
            const auto idx = world.add_endpoint(site_for(Net::kWan, static_cast<std::size_t>(i)));
            if (i == 0) {
                g = world.endpoints[idx]->create_group("g", cfg);
            } else {
                world.endpoints[idx]->join_group("g");
            }
            world.run_for(500_ms);
        }

        int responses = 0;
        for (int i = 0; i < 3; ++i) {
            auto& ep = *world.endpoints[static_cast<std::size_t>(i)];
            const std::size_t index = static_cast<std::size_t>(i);
            ep.set_deliver_handler([&world, &ep, index, g, rng,
                                    &responses](const GroupCommEndpoint::Delivery& d) {
                const std::string text(d.payload.begin(), d.payload.end());
                world.delivered[index].push_back(text);
                if (responses < 30 && text.find("re:") == std::string::npos &&
                    rng->next_bool(0.5)) {
                    ++responses;
                    const std::string reply = "re:" + text + ":" + std::to_string(index);
                    ep.multicast(d.group, Bytes(reply.begin(), reply.end()));
                }
            });
        }

        for (int k = 0; k < 6; ++k) {
            const std::string text = "seed" + std::to_string(k);
            world.endpoints[static_cast<std::size_t>(k % 3)]->multicast(
                g, Bytes(text.begin(), text.end()));
            world.run_for(100_ms);
        }
        world.run_for(10_s);

        for (int i = 0; i < 3; ++i) {
            const auto& log = world.delivered[static_cast<std::size_t>(i)];
            std::map<std::string, std::size_t> position;
            for (std::size_t p = 0; p < log.size(); ++p) position[log[p]] = p;
            for (const auto& [text, pos] : position) {
                if (text.rfind("re:", 0) != 0) continue;
                // "re:<cause>:<responder>"
                const std::string cause = text.substr(3, text.rfind(':') - 3);
                ASSERT_TRUE(position.contains(cause))
                    << "response delivered without its cause at member " << i;
                EXPECT_LT(position[cause], pos)
                    << "causal violation at member " << i << " for " << text;
            }
        }
    }
}

// -- ConfigChangeMsg CDR ------------------------------------------------------
// The reconfiguration proposal rides the ordered data stream as an encoded
// payload, so its codec is on the protocol's critical path: random
// configurations must survive a round trip exactly, and any truncation
// must throw DecodeError rather than mis-decode or crash.

GroupConfig random_config(Rng& rng) {
    GroupConfig cfg;
    const std::uint64_t roll = rng.next_in(0, 2);
    cfg.order = roll == 0   ? OrderMode::kTotalSymmetric
                : roll == 1 ? OrderMode::kTotalAsymmetric
                            : OrderMode::kCausal;
    cfg.liveness = rng.next_bool(0.5) ? LivenessMode::kLively : LivenessMode::kEventDriven;
    cfg.time_silence = static_cast<SimDuration>(rng.next_in(1, 1'000'000));
    cfg.ack_delay = static_cast<SimDuration>(rng.next_in(1, 10'000));
    cfg.suspicion_timeout = static_cast<SimDuration>(rng.next_in(1, 2'000'000));
    cfg.view_change_timeout = static_cast<SimDuration>(rng.next_in(1, 4'000'000));
    cfg.stability_period = static_cast<SimDuration>(rng.next_in(1, 1'000'000));
    cfg.order_window = static_cast<std::size_t>(rng.next_in(0, 128));
    cfg.order_max_batch = static_cast<std::size_t>(rng.next_in(1, 256));
    cfg.adaptive_asym_threshold = static_cast<std::size_t>(rng.next_in(0, 16));
    return cfg;
}

TEST(ConfigChangeCdr, RoundTripsRandomProposals) {
    Rng rng(2026);
    for (int i = 0; i < 200; ++i) {
        ConfigChangeMsg msg;
        msg.group = GroupId(rng.next_in(1, 1u << 20));
        msg.next = random_config(rng);
        msg.nonce = rng.next_u64();
        Encoder e;
        encode(e, msg);
        const Bytes bytes = std::move(e).take();
        Decoder d(bytes);
        ConfigChangeMsg out;
        decode(d, out);
        EXPECT_TRUE(d.exhausted()) << "iteration " << i;
        EXPECT_EQ(out.group, msg.group) << "iteration " << i;
        EXPECT_TRUE(out.next == msg.next) << "iteration " << i;
        EXPECT_EQ(out.nonce, msg.nonce) << "iteration " << i;
    }
}

TEST(ConfigChangeCdr, EveryTruncationThrowsDecodeError) {
    Rng rng(7);
    ConfigChangeMsg msg;
    msg.group = GroupId(42);
    msg.next = random_config(rng);
    msg.nonce = 0x1234'5678'9abc'def0ULL;
    Encoder e;
    encode(e, msg);
    const Bytes bytes = std::move(e).take();
    ASSERT_GT(bytes.size(), 0u);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        const Bytes prefix(bytes.begin(),
                           bytes.begin() + static_cast<std::ptrdiff_t>(cut));
        Decoder d(prefix);
        ConfigChangeMsg out;
        EXPECT_THROW(decode(d, out), DecodeError) << "prefix length " << cut;
    }
}

}  // namespace
}  // namespace newtop
