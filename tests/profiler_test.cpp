// Latency-attribution profiler: a synthetic open-mode invocation with known
// injected constants per phase boundary (link delay -> wire, packed CPU
// service time -> execution, holdback stall -> order_wait, ...), real
// traced worlds whose phase sums must reconcile exactly with the reply-wait
// histograms, the truncated-dump refusal (profiler and oracle), dump JSON
// round-trips, gauge time-series summation and edge-case dumps.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/calibration.hpp"
#include "newtop/newtop_service.hpp"
#include "obs/names.hpp"
#include "obs/oracle.hpp"
#include "obs/profiler.hpp"

namespace newtop {
namespace {

using namespace sim_literals;

// -- synthetic chain with injected constants ----------------------------------

constexpr std::uint64_t kTrace = 77;
constexpr std::uint64_t kClient = 1, kManager = 2, kServer = 3;
constexpr std::uint64_t kClientSpan = 11, kManagerSpan = 22, kExecSpan = 33;
constexpr std::uint64_t kBinding = 7, kGroup = 9, kSeq = 5;

obs::TraceEvent ev(obs::TraceKind kind, SimTime at, std::uint64_t actor, std::uint64_t span,
                   std::uint64_t parent = 0, std::uint64_t subject = 0,
                   std::uint64_t detail = 0) {
    obs::TraceEvent e;
    e.at = at;
    e.kind = kind;
    e.actor = actor;
    e.subject = subject;
    e.detail = detail;
    e.trace = kTrace;
    e.span = span;
    e.parent = parent;
    return e;
}

/// One open-mode invocation, client -> manager -> server -> manager ->
/// client, with hand-picked boundary gaps:
///   marshal 40+20+20+10, credit_wait 10+5+5+5, wire 250 per hop (the
///   injected link delay), order_wait 30 per delivery (the holdback stall),
///   cpu_wait 20+10+20, execution 60 (packed into kExecutionBegun).
obs::TraceDump synthetic_open_mode_dump() {
    using K = obs::TraceKind;
    obs::TraceDump dump;
    auto& e = dump.events;
    // Request: client multicast into the cs group.
    e.push_back(ev(K::kRequestSent, 1000, kClient, kClientSpan, 0, kBinding, kSeq));
    e.push_back(ev(K::kMulticastSent, 1040, kClient, kClientSpan, 0, kGroup));
    e.push_back(ev(K::kPayloadShipped, 1050, kClient, kClientSpan, 0, kGroup, 101));
    e.push_back(ev(K::kDataArrived, 1050, kClient, kClientSpan, 0, kGroup, 101));  // self
    e.push_back(ev(K::kDataDelivered, 1060, kClient, kClientSpan, 0, kGroup, 101));
    e.push_back(ev(K::kPayloadDelivered, 1060, kClient, kClientSpan, 0, kGroup, 101));
    e.push_back(ev(K::kDataArrived, 1300, kManager, kClientSpan, 0, kGroup, 101));
    e.push_back(ev(K::kDataDelivered, 1330, kManager, kClientSpan, 0, kGroup, 101));
    e.push_back(ev(K::kPayloadDelivered, 1330, kManager, kClientSpan, 0, kGroup, 101));
    // Manager becomes the request manager and forwards to the server group.
    e.push_back(ev(K::kRequestForwarded, 1350, kManager, kManagerSpan, kClientSpan, kClient,
                   kSeq));
    e.push_back(ev(K::kMulticastSent, 1370, kManager, kManagerSpan, 0, kGroup));
    e.push_back(ev(K::kPayloadShipped, 1375, kManager, kManagerSpan, 0, kGroup, 102));
    e.push_back(ev(K::kDataArrived, 1625, kServer, kManagerSpan, 0, kGroup, 102));
    e.push_back(ev(K::kPayloadDelivered, 1655, kServer, kManagerSpan, 0, kGroup, 102));
    // Execution: 10us queue wait before the begun event, then the packed
    // 60us service time inside an 80us begun->done interval (20us queued).
    e.push_back(ev(K::kExecutionBegun, 1665, kServer, kExecSpan, kManagerSpan, kClient,
                   obs::pack_execution_detail(60, kSeq)));
    e.push_back(ev(K::kExecutionDone, 1745, kServer, kExecSpan, kManagerSpan, kClient, kSeq));
    // Reply multicast back inside the server group.
    e.push_back(ev(K::kMulticastSent, 1765, kServer, kExecSpan, 0, kGroup));
    e.push_back(ev(K::kPayloadShipped, 1770, kServer, kExecSpan, 0, kGroup, 103));
    e.push_back(ev(K::kDataArrived, 2020, kManager, kExecSpan, 0, kGroup, 103));
    e.push_back(ev(K::kPayloadDelivered, 2050, kManager, kExecSpan, 0, kGroup, 103));
    e.push_back(ev(K::kReplyCollected, 2060, kManager, kManagerSpan, kExecSpan, kServer, kSeq));
    // Aggregate back to the client.
    e.push_back(ev(K::kAggregateSent, 2070, kManager, kManagerSpan, 0, kClient, kSeq));
    e.push_back(ev(K::kMulticastSent, 2080, kManager, kManagerSpan, 0, kGroup));
    e.push_back(ev(K::kPayloadShipped, 2085, kManager, kManagerSpan, 0, kGroup, 104));
    e.push_back(ev(K::kDataArrived, 2335, kClient, kManagerSpan, 0, kGroup, 104));
    e.push_back(ev(K::kPayloadDelivered, 2365, kClient, kManagerSpan, 0, kGroup, 104));
    e.push_back(ev(K::kCallCompleted, 2375, kClient, kClientSpan, 0, kBinding,
                   obs::pack_completion_detail(1, kSeq)));
    dump.expectations.push_back(
        obs::TraceExpectation{std::string(obs::metric::kInvReplyWaitFirst), 1, 1375});
    // Two kDataDelivered for message 101: self at +10, manager at +280.
    dump.expectations.push_back(
        obs::TraceExpectation{std::string(obs::metric::kGcsDeliveryLatencyUs), 2, 290});
    return dump;
}

TEST(Profiler, SyntheticChainAttributesEveryInjectedConstant) {
    const obs::ProfileReport report =
        obs::LatencyProfiler{}.analyze(synthetic_open_mode_dump());
    ASSERT_TRUE(report.ok) << report.error;
    EXPECT_EQ(report.invocations, 1u);
    EXPECT_EQ(report.unattributed, 0u);

    const auto sum = [&](std::string_view phase) {
        return report.phases.at(std::string(phase)).sum_us;
    };
    EXPECT_EQ(sum(obs::phase::kMarshal), 90);
    EXPECT_EQ(sum(obs::phase::kCreditWait), 25);
    EXPECT_EQ(sum(obs::phase::kWire), 1000);      // 4 hops x injected 250us
    EXPECT_EQ(sum(obs::phase::kOrderWait), 120);  // 4 deliveries x 30us stall
    EXPECT_EQ(sum(obs::phase::kCpuWait), 50);
    EXPECT_EQ(sum(obs::phase::kExecution), 60);  // the packed service time
    EXPECT_EQ(sum(obs::phase::kReplyCollection), 30);
    // Telescoping: phases sum exactly to the end-to-end latency.
    EXPECT_EQ(sum(obs::phase::kMarshal) + sum(obs::phase::kCreditWait) +
                  sum(obs::phase::kWire) + sum(obs::phase::kOrderWait) +
                  sum(obs::phase::kCpuWait) + sum(obs::phase::kExecution) +
                  sum(obs::phase::kReplyCollection),
              1375);
    EXPECT_EQ(report.dominant, obs::phase::kWire);

    ASSERT_EQ(report.groups.size(), 1u);
    EXPECT_EQ(report.groups[0].binding, kBinding);
    EXPECT_EQ(report.groups[0].mode, 1u);
    EXPECT_EQ(report.groups[0].chains, 1u);
    EXPECT_EQ(report.groups[0].total_us, 1375);

    ASSERT_EQ(report.reconciliations.size(), 2u);
    EXPECT_TRUE(report.reconciliations[0].ok);
    EXPECT_EQ(report.reconciliations[0].actual_sum_us, 1375);
    EXPECT_TRUE(report.reconciliations[1].ok);
    EXPECT_EQ(report.reconciliations[1].actual_sum_us, 290);
    EXPECT_TRUE(report.reconciled());
}

TEST(Profiler, ReconciliationFailsBeyondOnePercent) {
    obs::TraceDump dump = synthetic_open_mode_dump();
    dump.expectations[0].sum_us = 1420;  // ~3% away from the traced 1375
    const obs::ProfileReport report = obs::LatencyProfiler{}.analyze(dump);
    ASSERT_TRUE(report.ok);
    EXPECT_FALSE(report.reconciliations[0].ok);
    EXPECT_FALSE(report.reconciled());
    // Within 1% is fine (integer tolerance: 100 * |diff| <= expected).
    dump.expectations[0].sum_us = 1375 + 13;
    EXPECT_TRUE(obs::LatencyProfiler{}.analyze(dump).reconciliations[0].ok);
}

// -- edge cases ---------------------------------------------------------------

TEST(Profiler, EmptyDumpProducesAnEmptyHealthyReport) {
    const obs::ProfileReport report = obs::LatencyProfiler{}.analyze(obs::TraceDump{});
    EXPECT_TRUE(report.ok);
    EXPECT_TRUE(report.reconciled());
    EXPECT_EQ(report.invocations, 0u);
    EXPECT_EQ(report.unattributed, 0u);
    EXPECT_TRUE(report.groups.empty());
}

TEST(Profiler, SingleEventDumpIsUnattributedAndFailsItsExpectation) {
    obs::TraceDump dump;
    dump.events.push_back(ev(obs::TraceKind::kCallCompleted, 100, kClient, kClientSpan, 0,
                             kBinding, obs::pack_completion_detail(1, kSeq)));
    dump.expectations.push_back(
        obs::TraceExpectation{std::string(obs::metric::kInvReplyWaitFirst), 1, 100});
    const obs::ProfileReport report = obs::LatencyProfiler{}.analyze(dump);
    ASSERT_TRUE(report.ok);
    EXPECT_EQ(report.invocations, 0u);
    EXPECT_EQ(report.unattributed, 1u);
    EXPECT_FALSE(report.reconciled());  // chain missing => count mismatch
}

TEST(Profiler, RefusesTruncatedDump) {
    obs::TraceDump dump = synthetic_open_mode_dump();
    dump.dropped = 3;
    const obs::ProfileReport report = obs::LatencyProfiler{}.analyze(dump);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.error.find("truncated"), std::string::npos);
    EXPECT_FALSE(report.reconciled());
    EXPECT_NE(report.to_json().find("\"ok\":false"), std::string::npos);
}

TEST(Oracle, RefusesTruncatedDumpWithASingleViolation) {
    obs::TraceDump dump = synthetic_open_mode_dump();
    dump.dropped = 2;
    const auto violations = obs::ProtocolOracle{}.check(dump);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].kind, obs::Violation::Kind::kTruncatedTrace);
    EXPECT_STREQ(obs::violation_kind_name(violations[0].kind), "truncated_trace");
    // A complete dump delegates to the stream checks.
    dump.dropped = 0;
    EXPECT_TRUE(obs::ProtocolOracle{}.check(dump).empty());
}

TEST(RingTraceSinkOverflow, MirrorsEvictionsIntoTheMetric) {
    obs::MetricsRegistry metrics;
    obs::RingTraceSink ring(2);
    ring.attach_metrics(&metrics);
    for (int i = 0; i < 5; ++i) ring.record(obs::TraceEvent{});
    EXPECT_EQ(ring.dropped(), 3u);
    EXPECT_EQ(metrics.counter(obs::metric::kObsTraceDropped), 3u);
    EXPECT_NE(obs::LatencyProfiler{}.analyze(ring.dump()).error.find("truncated"),
              std::string::npos);
}

TEST(TraceDump, JsonRoundTrips) {
    const obs::TraceDump dump = synthetic_open_mode_dump();
    const std::string json = dump.to_json();
    obs::TraceDump parsed;
    std::string error;
    ASSERT_TRUE(obs::parse_trace_dump(json, parsed, error)) << error;
    EXPECT_EQ(parsed.dropped, dump.dropped);
    EXPECT_EQ(parsed.expectations, dump.expectations);
    ASSERT_EQ(parsed.events.size(), dump.events.size());
    EXPECT_EQ(parsed.to_json(), json);
}

// -- gauge time series --------------------------------------------------------

TEST(Gauges, SameNamedGaugesSumPerTickAndAppearInJson) {
    obs::MetricsRegistry metrics;
    std::uint64_t a = 3, b = 4;
    const auto h1 = metrics.register_gauge(obs::metric::kGcsHoldback, [&](SimTime) { return a; });
    const auto h2 = metrics.register_gauge(obs::metric::kGcsHoldback, [&](SimTime) { return b; });
    metrics.sample_gauges(10);
    a = 10;
    b = 0;
    metrics.sample_gauges(20);
    metrics.unregister_gauge(h2);
    metrics.sample_gauges(30);
    const auto* series = metrics.series(obs::metric::kGcsHoldback);
    ASSERT_NE(series, nullptr);
    ASSERT_EQ(series->size(), 3u);
    EXPECT_EQ((*series)[0], (std::pair<SimTime, std::uint64_t>{10, 7}));
    EXPECT_EQ((*series)[1], (std::pair<SimTime, std::uint64_t>{20, 10}));
    EXPECT_EQ((*series)[2], (std::pair<SimTime, std::uint64_t>{30, 10}));
    EXPECT_NE(metrics.to_json().find("\"series\""), std::string::npos);
    metrics.unregister_gauge(h1);
}

// -- real traced worlds: phase sums must reconcile exactly --------------------

constexpr std::uint32_t kEcho = 1;

class EchoServant : public GroupServant {
public:
    Bytes handle(std::uint32_t, const Bytes& args) override { return args; }
};

/// Two servers + one client on a LAN, traced from the very first join so
/// the dump covers every histogram sample the expectations embed.
struct ProfiledWorld {
    ProfiledWorld(std::uint64_t seed, BindMode bind, OrderMode order)
        : net(scheduler, calibration::make_lan_topology(), seed) {
        net.metrics().set_trace_sink(&sink);
        GroupConfig config;
        config.order = order;
        for (int i = 0; i < 2; ++i) {
            orbs.push_back(std::make_unique<Orb>(net, net.add_node(SiteId(0))));
            nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
            nsos.back()->serve("svc", config, std::make_shared<EchoServant>());
            run_for(300_ms);
        }
        orbs.push_back(std::make_unique<Orb>(net, net.add_node(SiteId(0))));
        nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
        proxy = nsos.back()->bind("svc", {.mode = bind});
        run_for(2_s);
    }

    ~ProfiledWorld() { net.metrics().set_trace_sink(nullptr); }

    void run_for(SimDuration d) { scheduler.run_until(scheduler.now() + d); }

    int run_calls(int calls, InvocationMode mode) {
        int completed = 0;
        for (int i = 0; i < calls; ++i) {
            proxy.invoke(kEcho, encode_to_bytes(std::uint64_t(i)), mode,
                         [&](const GroupReply& r) { completed += r.complete ? 1 : 0; });
            run_for(1_s);
        }
        return completed;
    }

    obs::ProfileReport analyze() {
        obs::TraceDump dump;
        dump.events = sink.events();
        const auto expect = [&](std::string_view metric) {
            if (const obs::LatencyHistogram* h = net.metrics().histogram(metric)) {
                dump.expectations.push_back(
                    obs::TraceExpectation{std::string(metric), h->count(), h->sum()});
            }
        };
        expect(obs::metric::kInvReplyWaitOneway);
        expect(obs::metric::kInvReplyWaitFirst);
        expect(obs::metric::kInvReplyWaitMajority);
        expect(obs::metric::kInvReplyWaitAll);
        expect(obs::metric::kGcsDeliveryLatencyUs);
        return obs::LatencyProfiler{}.analyze(dump);
    }

    Scheduler scheduler;
    Network net;
    Directory directory;
    obs::VectorTraceSink sink;
    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<NewTopService>> nsos;
    GroupProxy proxy;
};

TEST(ProfiledWorlds, OpenModeWaitAllReconcilesExactly) {
    ProfiledWorld world(17, BindMode::kOpen, OrderMode::kTotalAsymmetric);
    ASSERT_EQ(world.run_calls(3, InvocationMode::kWaitAll), 3);
    const obs::ProfileReport report = world.analyze();
    ASSERT_TRUE(report.ok) << report.error;
    EXPECT_EQ(report.invocations, 3u);
    EXPECT_EQ(report.unattributed, 0u);
    EXPECT_TRUE(report.reconciled()) << report.to_text();
}

TEST(ProfiledWorlds, ClosedModeReconcilesExactly) {
    ProfiledWorld world(23, BindMode::kClosed, OrderMode::kTotalAsymmetric);
    ASSERT_EQ(world.run_calls(3, InvocationMode::kWaitAll), 3);
    const obs::ProfileReport report = world.analyze();
    ASSERT_TRUE(report.ok) << report.error;
    EXPECT_EQ(report.invocations, 3u);
    EXPECT_EQ(report.unattributed, 0u);
    EXPECT_TRUE(report.reconciled()) << report.to_text();
}

TEST(ProfiledWorlds, SymmetricOrderReconcilesExactly) {
    ProfiledWorld world(29, BindMode::kOpen, OrderMode::kTotalSymmetric);
    ASSERT_EQ(world.run_calls(2, InvocationMode::kWaitMajority), 2);
    const obs::ProfileReport report = world.analyze();
    ASSERT_TRUE(report.ok) << report.error;
    EXPECT_EQ(report.invocations, 2u);
    EXPECT_EQ(report.unattributed, 0u);
    EXPECT_TRUE(report.reconciled()) << report.to_text();
}

TEST(ProfiledWorlds, ReportJsonIsAPureFunctionOfTheSeed) {
    const auto run = [] {
        ProfiledWorld world(31, BindMode::kOpen, OrderMode::kTotalAsymmetric);
        world.run_calls(2, InvocationMode::kWaitFirst);
        return world.analyze().to_json();
    };
    EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace newtop
