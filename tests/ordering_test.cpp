#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gcs/ordering.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace newtop {
namespace {

DataMsg data(EndpointId sender, Seqno seq, Lamport ts,
             DataKind kind = DataKind::kApplication) {
    DataMsg m;
    m.group = GroupId(1);
    m.epoch = 1;
    m.sender = sender;
    m.seq = seq;
    m.ts = ts;
    m.kind = kind;
    m.payload = Bytes{static_cast<std::uint8_t>(ts)};
    return m;
}

std::vector<std::pair<Lamport, EndpointId>> keys(const std::vector<DataMsg>& msgs) {
    std::vector<std::pair<Lamport, EndpointId>> out;
    for (const auto& m : msgs) out.emplace_back(m.ts, m.sender);
    return out;
}

const EndpointId kA{1}, kB{2}, kC{3};

// -- SymmetricOrder ------------------------------------------------------------

TEST(SymmetricOrder, HoldsUntilAllMembersHeardFrom) {
    SymmetricOrder order;
    order.reset({kA, kB, kC});
    order.on_data(data(kA, 0, 5));
    EXPECT_TRUE(order.take_deliverable().empty());  // B and C silent
    order.on_data(data(kB, 0, 7));
    EXPECT_TRUE(order.take_deliverable().empty());  // C still silent
    order.on_data(data(kC, 0, 6, DataKind::kNull));
    // Now everyone has spoken past ts 5: A's message releases; B's (ts 7)
    // still waits on C (only heard ts 6) and A.
    const auto batch = order.take_deliverable();
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].sender, kA);
}

TEST(SymmetricOrder, DeliversInTimestampOrderRegardlessOfArrival) {
    SymmetricOrder order;
    order.reset({kA, kB, kC});
    order.on_data(data(kB, 0, 9));
    order.on_data(data(kA, 0, 3));
    order.on_data(data(kC, 0, 12));
    order.on_data(data(kA, 1, 13, DataKind::kNull));
    order.on_data(data(kB, 1, 14, DataKind::kNull));
    const auto batch = order.take_deliverable();
    EXPECT_EQ(keys(batch), (std::vector<std::pair<Lamport, EndpointId>>{{3, kA}, {9, kB}, {12, kC}}));
}

TEST(SymmetricOrder, TimestampTieBrokenBySenderId) {
    SymmetricOrder order;
    order.reset({kA, kB});
    order.on_data(data(kB, 0, 5));
    order.on_data(data(kA, 0, 5));
    const auto batch = order.take_deliverable();
    EXPECT_EQ(keys(batch), (std::vector<std::pair<Lamport, EndpointId>>{{5, kA}, {5, kB}}));
}

TEST(SymmetricOrder, NullsAdvanceOrderButAreNotDelivered) {
    SymmetricOrder order;
    order.reset({kA, kB});
    order.on_data(data(kA, 0, 1));
    order.on_data(data(kB, 0, 2, DataKind::kNull));
    const auto batch = order.take_deliverable();
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].sender, kA);
    EXPECT_FALSE(order.has_pending());
}

TEST(SymmetricOrder, SingleMemberDeliversImmediately) {
    SymmetricOrder order;
    order.reset({kA});
    order.on_data(data(kA, 0, 1));
    EXPECT_EQ(order.take_deliverable().size(), 1u);
}

TEST(SymmetricOrder, RejectsNonMember) {
    SymmetricOrder order;
    order.reset({kA, kB});
    EXPECT_THROW(order.on_data(data(kC, 0, 1)), PreconditionError);
}

TEST(SymmetricOrder, DrainPendingEmptiesHoldback) {
    SymmetricOrder order;
    order.reset({kA, kB});
    order.on_data(data(kA, 0, 5));
    const auto drained = order.drain_pending();
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_FALSE(order.has_pending());
}

TEST(SymmetricOrder, AgreementProperty) {
    // Two replicas of the engine fed the same messages in different arrival
    // orders deliver identical sequences.
    Rng rng(77);
    for (int iter = 0; iter < 50; ++iter) {
        std::vector<DataMsg> msgs;
        Lamport ts = 1;
        for (EndpointId m : {kA, kB, kC}) {
            const Seqno n = rng.next_in(1, 4);
            for (Seqno s = 0; s < n; ++s) msgs.push_back(data(m, s, ts++));
        }
        // Close the round so everything can deliver.
        msgs.push_back(data(kA, 99, ts + 1, DataKind::kNull));
        msgs.push_back(data(kB, 99, ts + 2, DataKind::kNull));
        msgs.push_back(data(kC, 99, ts + 3, DataKind::kNull));

        auto run = [&](std::uint64_t seed) {
            // Shuffle preserving per-sender FIFO order (the engine contract).
            std::vector<std::vector<DataMsg>> by_sender(4);
            for (const auto& m : msgs) by_sender[m.sender.value()].push_back(m);
            SymmetricOrder order;
            order.reset({kA, kB, kC});
            Rng pick(seed);
            std::vector<std::size_t> cursor(4, 0);
            std::vector<std::pair<Lamport, EndpointId>> delivered;
            while (true) {
                std::vector<std::size_t> ready;
                for (std::size_t i = 1; i <= 3; ++i) {
                    if (cursor[i] < by_sender[i].size()) ready.push_back(i);
                }
                if (ready.empty()) break;
                const auto i = ready[pick.next_in(0, ready.size() - 1)];
                order.on_data(by_sender[i][cursor[i]++]);
                for (const auto& d : order.take_deliverable()) {
                    delivered.emplace_back(d.ts, d.sender);
                }
            }
            return delivered;
        };
        const auto a = run(iter * 2 + 1);
        const auto b = run(iter * 2 + 2);
        EXPECT_EQ(a, b);
        EXPECT_EQ(a.size(), msgs.size() - 3);  // all app messages delivered
        EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    }
}

// -- SequencerOrder ------------------------------------------------------------

TEST(SequencerOrder, LowestMemberIsSequencer) {
    SequencerOrder order;
    order.reset({kA, kB, kC}, kB);
    EXPECT_EQ(order.sequencer(), kA);
    EXPECT_FALSE(order.is_sequencer());
    order.reset({kA, kB, kC}, kA);
    EXPECT_TRUE(order.is_sequencer());
}

TEST(SequencerOrder, SequencerAssignsAndDeliversImmediately) {
    SequencerOrder order;
    order.reset({kA, kB}, kA);
    order.on_data(data(kB, 0, 1));
    const auto to_send = order.take_order_to_send();
    ASSERT_TRUE(to_send.has_value());
    EXPECT_EQ(to_send->first_order, 0u);
    ASSERT_EQ(to_send->refs.size(), 1u);
    EXPECT_EQ(to_send->refs[0], (MsgRef{kB, 0}));
    EXPECT_EQ(order.take_deliverable().size(), 1u);
}

TEST(SequencerOrder, NonSequencerWaitsForOrderRecord) {
    SequencerOrder order;
    order.reset({kA, kB}, kB);
    order.on_data(data(kB, 0, 1));
    EXPECT_TRUE(order.take_deliverable().empty());
    EXPECT_FALSE(order.take_order_to_send().has_value());
    OrderMsg om;
    om.first_order = 0;
    om.refs = {MsgRef{kB, 0}};
    order.on_order(om);
    EXPECT_EQ(order.take_deliverable().size(), 1u);
}

TEST(SequencerOrder, DeliveryFollowsAssignmentNotArrival) {
    SequencerOrder order;
    order.reset({kA, kB, kC}, kC);
    order.on_data(data(kC, 0, 10));  // arrives first locally
    order.on_data(data(kB, 0, 5));
    OrderMsg om;
    om.first_order = 0;
    om.refs = {MsgRef{kB, 0}, MsgRef{kC, 0}};  // sequencer saw B first
    order.on_order(om);
    const auto batch = order.take_deliverable();
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].sender, kB);
    EXPECT_EQ(batch[1].sender, kC);
}

TEST(SequencerOrder, OrderRecordBeforeDataHolds) {
    SequencerOrder order;
    order.reset({kA, kB}, kB);
    OrderMsg om;
    om.first_order = 0;
    om.refs = {MsgRef{kA, 0}};
    order.on_order(om);
    EXPECT_TRUE(order.take_deliverable().empty());
    order.on_data(data(kA, 0, 3));
    EXPECT_EQ(order.take_deliverable().size(), 1u);
}

TEST(SequencerOrder, NullsBypassOrdering) {
    SequencerOrder order;
    order.reset({kA, kB}, kA);
    order.on_data(data(kB, 0, 1, DataKind::kNull));
    EXPECT_FALSE(order.take_order_to_send().has_value());
    EXPECT_TRUE(order.take_deliverable().empty());
    EXPECT_FALSE(order.has_pending());
}

TEST(SequencerOrder, RetransmittedDataDoesNotGetASecondOrderSlot) {
    // Regression: a retransmitted data message (NACK recovery re-delivers
    // the same {sender, seq}) used to be assigned a *second* order slot by
    // the sequencer.  take_deliverable() erases the data at the first slot,
    // so the duplicate slot could never be satisfied and delivery stalled
    // permanently for the whole group.
    SequencerOrder order;
    order.reset({kA, kB}, kA);  // self = kA = sequencer
    order.on_data(data(kB, 0, 1));
    order.on_data(data(kB, 0, 1));  // retransmission of the same message
    const auto first = order.take_order_to_send();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->refs.size(), 1u);
    EXPECT_EQ(order.take_deliverable().size(), 1u);

    // The next message must deliver; with the duplicate slot it stalls.
    order.on_data(data(kB, 1, 2));
    EXPECT_TRUE(order.take_order_to_send().has_value());
    ASSERT_EQ(order.take_deliverable().size(), 1u);
    EXPECT_FALSE(order.has_pending());
}

TEST(SequencerOrder, DuplicateOfDeliveredDataIsIgnored) {
    SequencerOrder order;
    order.reset({kA, kB}, kA);
    order.on_data(data(kB, 0, 1));
    order.take_order_to_send();
    EXPECT_EQ(order.take_deliverable().size(), 1u);
    // The duplicate arrives after delivery (late retransmission).
    order.on_data(data(kB, 0, 1));
    EXPECT_FALSE(order.take_order_to_send().has_value());
    EXPECT_TRUE(order.take_deliverable().empty());
    EXPECT_FALSE(order.has_pending());
}

TEST(SequencerOrder, AssignmentLogKeepsDeliveredEntries) {
    SequencerOrder order;
    order.reset({kA, kB}, kA);
    order.on_data(data(kB, 0, 1));
    order.take_order_to_send();
    EXPECT_EQ(order.take_deliverable().size(), 1u);
    EXPECT_EQ(order.assignment_log().size(), 1u);
}

// The sequencer must not deliver — nor expose through the flushed
// assignment log — an order it has not yet handed out for broadcast.  A
// private arrival order influenced nobody; if a view change strikes first,
// every fragment's cut must fall back to the same (ts, sender) rule.
// Regression for a divergence found by the chaos campaign: the sequencer
// assigned orders mid-view-change (when order records are never sent),
// flushed them, and delivered a cut contradicting the other fragment's.
TEST(SequencerOrder, UnsentAssignmentsNeitherDeliverNorReachTheLog) {
    SequencerOrder order;
    order.reset({kA, kB}, kA);
    order.on_data(data(kB, 0, 1));
    EXPECT_TRUE(order.take_deliverable().empty());
    EXPECT_TRUE(order.assignment_log().empty());
    order.take_order_to_send();
    EXPECT_EQ(order.take_deliverable().size(), 1u);
    EXPECT_EQ(order.assignment_log().size(), 1u);
}

TEST(SequencerOrder, BatchedOrderRecord) {
    SequencerOrder order;
    order.reset({kA, kB}, kA);
    order.on_data(data(kB, 0, 1));
    order.on_data(data(kB, 1, 2));
    const auto to_send = order.take_order_to_send();
    ASSERT_TRUE(to_send.has_value());
    EXPECT_EQ(to_send->refs.size(), 2u);
    EXPECT_FALSE(order.take_order_to_send().has_value());  // drained
}

TEST(SequencerOrder, PartialDrainRespectsMaxRefs) {
    SequencerOrder order;
    order.reset({kA, kB}, kA);
    order.on_data(data(kB, 0, 1));
    order.on_data(data(kB, 1, 2));
    order.on_data(data(kB, 2, 3));
    EXPECT_EQ(order.fresh_count(), 3u);
    const auto first = order.take_order_to_send(2);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->first_order, 0u);
    EXPECT_EQ(first->refs.size(), 2u);
    EXPECT_EQ(order.fresh_count(), 1u);
    const auto second = order.take_order_to_send(2);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->first_order, 2u);
    EXPECT_EQ(second->refs.size(), 1u);
    EXPECT_FALSE(order.take_order_to_send(2).has_value());
}

// Regression: pending_count() used to report max(|data|, |assignments|),
// undercounting when the two sets are disjoint (data held without an order
// record *and* order records held without their data are both pending).
TEST(SequencerOrder, PendingCountCoversDisjointSets) {
    SequencerOrder order;
    order.reset({kA, kB, kC}, kB);  // kA is the sequencer; we are kB
    // Data with no assignment yet.
    order.on_data(data(kC, 0, 1));
    EXPECT_EQ(order.pending_count(), 1u);
    // Assignment for a *different* message whose data has not arrived.
    OrderMsg om;
    om.first_order = 0;
    om.refs = {MsgRef{kB, 7}};
    order.on_order(om);
    EXPECT_EQ(order.pending_count(), 2u);  // disjoint: 1 data + 1 assignment
    // Once the assignment's data arrives and delivers, only the unordered
    // data message remains pending.
    order.on_data(data(kB, 7, 2));
    EXPECT_EQ(order.take_deliverable().size(), 1u);
    EXPECT_EQ(order.pending_count(), 1u);
}

// -- CausalOrder ---------------------------------------------------------------

DataMsg causal_data(EndpointId sender, Seqno seq,
                    std::vector<std::pair<EndpointId, Seqno>> vc) {
    DataMsg m = data(sender, seq, 1);
    m.causal_vc = std::move(vc);
    return m;
}

TEST(CausalOrder, IndependentMessagesDeliverOnArrival) {
    CausalOrder order;
    order.reset({kA, kB});
    order.on_data(causal_data(kA, 0, {{kA, 0}, {kB, 0}}));
    EXPECT_EQ(order.take_deliverable().size(), 1u);
    order.on_data(causal_data(kB, 0, {{kA, 0}, {kB, 0}}));
    EXPECT_EQ(order.take_deliverable().size(), 1u);
}

TEST(CausalOrder, DependentMessageWaitsForItsCause) {
    CausalOrder order;
    order.reset({kA, kB, kC});
    // B's message depends on having delivered one message from A.
    order.on_data(causal_data(kB, 0, {{kA, 1}, {kB, 0}, {kC, 0}}));
    EXPECT_TRUE(order.take_deliverable().empty());
    order.on_data(causal_data(kA, 0, {{kA, 0}, {kB, 0}, {kC, 0}}));
    const auto batch = order.take_deliverable();
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].sender, kA);
    EXPECT_EQ(batch[1].sender, kB);
}

TEST(CausalOrder, ChainUnblocksTransitively) {
    CausalOrder order;
    order.reset({kA, kB, kC});
    order.on_data(causal_data(kC, 0, {{kA, 1}, {kB, 1}, {kC, 0}}));
    order.on_data(causal_data(kB, 0, {{kA, 1}, {kB, 0}, {kC, 0}}));
    EXPECT_TRUE(order.take_deliverable().empty());
    order.on_data(causal_data(kA, 0, {{kA, 0}, {kB, 0}, {kC, 0}}));
    EXPECT_EQ(order.take_deliverable().size(), 3u);
}

TEST(CausalOrder, DeliveredVectorTracksCounts) {
    CausalOrder order;
    order.reset({kA, kB});
    order.on_data(causal_data(kA, 0, {{kA, 0}, {kB, 0}}));
    order.take_deliverable();
    const auto vc = order.delivered_vector();
    ASSERT_EQ(vc.size(), 2u);
    EXPECT_EQ(vc[0], (std::pair{kA, Seqno{1}}));
    EXPECT_EQ(vc[1], (std::pair{kB, Seqno{0}}));
}

TEST(CausalOrder, DependencyOnDepartedMemberIgnored) {
    CausalOrder order;
    order.reset({kA, kB});  // kC not a member
    order.on_data(causal_data(kA, 0, {{kA, 0}, {kC, 5}}));
    EXPECT_EQ(order.take_deliverable().size(), 1u);
}

}  // namespace
}  // namespace newtop
