#include <gtest/gtest.h>

#include <vector>

#include "net/calibration.hpp"
#include "net/network.hpp"
#include "util/check.hpp"

namespace newtop {
namespace {

using namespace sim_literals;

Topology two_site_topology(LinkParams local, LinkParams wan) {
    Topology t;
    const SiteId a = t.add_site("A", local);
    const SiteId b = t.add_site("B", local);
    t.set_link(a, b, wan);
    return t;
}

struct NetFixture : ::testing::Test {
    Scheduler scheduler;
};

TEST_F(NetFixture, TopologyLinkLookup) {
    Topology t;
    const SiteId a = t.add_site("A", LinkParams{.latency = 10});
    const SiteId b = t.add_site("B", LinkParams{.latency = 20});
    t.set_link(a, b, LinkParams{.latency = 99});
    EXPECT_EQ(t.link(a, a).latency, 10);
    EXPECT_EQ(t.link(b, b).latency, 20);
    EXPECT_EQ(t.link(a, b).latency, 99);
    EXPECT_EQ(t.link(b, a).latency, 99);  // symmetric
    EXPECT_EQ(t.site_name(a), "A");
}

TEST_F(NetFixture, UnconfiguredLinkThrows) {
    Topology t;
    const SiteId a = t.add_site("A", LinkParams{});
    const SiteId b = t.add_site("B", LinkParams{});
    EXPECT_THROW((void)t.link(a, b), PreconditionError);
}

TEST_F(NetFixture, SelfLinkCannotBeSetAsWan) {
    Topology t;
    const SiteId a = t.add_site("A", LinkParams{});
    EXPECT_THROW(t.set_link(a, a, LinkParams{}), PreconditionError);
}

TEST_F(NetFixture, DeliveryAfterLatency) {
    Network net(scheduler, two_site_topology({.latency = 100}, {.latency = 5000}), 1);
    const NodeId a = net.add_node(SiteId(0));
    const NodeId b = net.add_node(SiteId(0));
    SimTime arrived = -1;
    net.node(b).set_receiver([&](NodeId, const Bytes&) { arrived = scheduler.now(); });
    net.send(a, b, Bytes{1, 2, 3});
    scheduler.run();
    EXPECT_EQ(arrived, 100);
}

TEST_F(NetFixture, WanLatencyAppliesAcrossSites) {
    Network net(scheduler, two_site_topology({.latency = 100}, {.latency = 5000}), 1);
    const NodeId a = net.add_node(SiteId(0));
    const NodeId b = net.add_node(SiteId(1));
    SimTime arrived = -1;
    net.node(b).set_receiver([&](NodeId, const Bytes&) { arrived = scheduler.now(); });
    net.send(a, b, Bytes{1});
    scheduler.run();
    EXPECT_EQ(arrived, 5000);
    EXPECT_EQ(net.stats().wan_messages, 1u);
}

TEST_F(NetFixture, BandwidthAddsSerializationDelay) {
    // 2 bytes/us; 1000-byte payload => +500us.
    Network net(scheduler,
                two_site_topology({.latency = 100, .bytes_per_us = 2.0}, {.latency = 1}), 1);
    const NodeId a = net.add_node(SiteId(0));
    const NodeId b = net.add_node(SiteId(0));
    SimTime arrived = -1;
    net.node(b).set_receiver([&](NodeId, const Bytes&) { arrived = scheduler.now(); });
    net.send(a, b, Bytes(1000, 0));
    scheduler.run();
    EXPECT_EQ(arrived, 600);
}

TEST_F(NetFixture, JitterStaysWithinBound) {
    Network net(scheduler,
                two_site_topology({.latency = 100, .jitter = 50}, {.latency = 1}), 7);
    const NodeId a = net.add_node(SiteId(0));
    const NodeId b = net.add_node(SiteId(0));
    std::vector<SimTime> arrivals;
    net.node(b).set_receiver([&](NodeId, const Bytes&) { arrivals.push_back(scheduler.now()); });
    SimTime send_at = 0;
    for (int i = 0; i < 100; ++i) {
        scheduler.schedule_at(send_at, [&net, a, b] { net.send(a, b, Bytes{1}); });
        send_at += 1000;
    }
    scheduler.run();
    ASSERT_EQ(arrivals.size(), 100u);
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        const SimTime delay = arrivals[i] - static_cast<SimTime>(i) * 1000;
        EXPECT_GE(delay, 100);
        EXPECT_LE(delay, 150);
    }
}

TEST_F(NetFixture, PerPairFifoOrderPreserved) {
    Network net(scheduler,
                two_site_topology({.latency = 100, .jitter = 90}, {.latency = 1}), 99);
    const NodeId a = net.add_node(SiteId(0));
    const NodeId b = net.add_node(SiteId(0));
    std::vector<std::uint8_t> received;
    net.node(b).set_receiver(
        [&](NodeId, const Bytes& payload) { received.push_back(payload.at(0)); });
    // Back-to-back sends with heavy jitter: FIFO must still hold.
    for (std::uint8_t i = 0; i < 50; ++i) net.send(a, b, Bytes{i});
    scheduler.run();
    ASSERT_EQ(received.size(), 50u);
    for (std::uint8_t i = 0; i < 50; ++i) EXPECT_EQ(received[i], i);
}

TEST_F(NetFixture, LossDropsApproximatelyTheConfiguredFraction) {
    Network net(scheduler,
                two_site_topology({.latency = 10, .loss = 0.25}, {.latency = 1}), 5);
    const NodeId a = net.add_node(SiteId(0));
    const NodeId b = net.add_node(SiteId(0));
    int received = 0;
    net.node(b).set_receiver([&](NodeId, const Bytes&) { ++received; });
    for (int i = 0; i < 2000; ++i) net.send(a, b, Bytes{1});
    scheduler.run();
    EXPECT_NEAR(received, 1500, 120);
    EXPECT_EQ(net.stats().messages_lost + net.stats().messages_delivered, 2000u);
}

TEST_F(NetFixture, CrashedReceiverDropsMessages) {
    Network net(scheduler, two_site_topology({.latency = 10}, {.latency = 1}), 1);
    const NodeId a = net.add_node(SiteId(0));
    const NodeId b = net.add_node(SiteId(0));
    bool got = false;
    net.node(b).set_receiver([&](NodeId, const Bytes&) { got = true; });
    net.crash(b);
    net.send(a, b, Bytes{1});
    scheduler.run();
    EXPECT_FALSE(got);
}

TEST_F(NetFixture, CrashedSenderCannotSend) {
    Network net(scheduler, two_site_topology({.latency = 10}, {.latency = 1}), 1);
    const NodeId a = net.add_node(SiteId(0));
    const NodeId b = net.add_node(SiteId(0));
    bool got = false;
    net.node(b).set_receiver([&](NodeId, const Bytes&) { got = true; });
    net.crash(a);
    net.send(a, b, Bytes{1});
    scheduler.run();
    EXPECT_FALSE(got);
}

TEST_F(NetFixture, CrashMidFlightDropsAtArrival) {
    Network net(scheduler, two_site_topology({.latency = 100}, {.latency = 1}), 1);
    const NodeId a = net.add_node(SiteId(0));
    const NodeId b = net.add_node(SiteId(0));
    bool got = false;
    net.node(b).set_receiver([&](NodeId, const Bytes&) { got = true; });
    net.send(a, b, Bytes{1});
    scheduler.schedule_at(50, [&] { net.crash(b); });
    scheduler.run();
    EXPECT_FALSE(got);
}

TEST_F(NetFixture, PartitionBlocksCrossCellTraffic) {
    Network net(scheduler, two_site_topology({.latency = 10}, {.latency = 1}), 1);
    const NodeId a = net.add_node(SiteId(0));
    const NodeId b = net.add_node(SiteId(0));
    int got = 0;
    net.node(b).set_receiver([&](NodeId, const Bytes&) { ++got; });
    net.set_partition(b, 1);
    net.send(a, b, Bytes{1});
    scheduler.run();
    EXPECT_EQ(got, 0);
    net.heal();
    net.send(a, b, Bytes{1});
    scheduler.run();
    EXPECT_EQ(got, 1);
}

TEST_F(NetFixture, PartitionAppliesAtDeliveryTime) {
    // A message in flight when the partition forms is lost (the simulated
    // path went down before arrival).
    Network net(scheduler, two_site_topology({.latency = 100}, {.latency = 1}), 1);
    const NodeId a = net.add_node(SiteId(0));
    const NodeId b = net.add_node(SiteId(0));
    int got = 0;
    net.node(b).set_receiver([&](NodeId, const Bytes&) { ++got; });
    net.send(a, b, Bytes{1});
    scheduler.schedule_at(50, [&] { net.set_partition(b, 2); });
    scheduler.run();
    EXPECT_EQ(got, 0);
}

TEST_F(NetFixture, PartitionSiteMovesAllItsNodes) {
    Network net(scheduler, two_site_topology({.latency = 10}, {.latency = 100}), 1);
    const NodeId a0 = net.add_node(SiteId(0));
    const NodeId a1 = net.add_node(SiteId(0));
    const NodeId b0 = net.add_node(SiteId(1));
    int intra = 0, inter = 0;
    net.node(a1).set_receiver([&](NodeId, const Bytes&) { ++intra; });
    net.node(b0).set_receiver([&](NodeId, const Bytes&) { ++inter; });
    net.partition_site(SiteId(1), 3);
    net.send(a0, a1, Bytes{1});
    net.send(a0, b0, Bytes{1});
    scheduler.run();
    EXPECT_EQ(intra, 1);  // same-site traffic unaffected
    EXPECT_EQ(inter, 0);  // cross-partition traffic dropped
}

TEST_F(NetFixture, StatsCountMessagesAndBytes) {
    Network net(scheduler, two_site_topology({.latency = 10}, {.latency = 1}), 1);
    const NodeId a = net.add_node(SiteId(0));
    const NodeId b = net.add_node(SiteId(0));
    net.node(b).set_receiver([](NodeId, const Bytes&) {});
    net.send(a, b, Bytes(10, 0));
    net.send(a, b, Bytes(20, 0));
    scheduler.run();
    EXPECT_EQ(net.stats().messages_sent, 2u);
    EXPECT_EQ(net.stats().messages_delivered, 2u);
    EXPECT_EQ(net.stats().bytes_sent, 30u);
}

TEST_F(NetFixture, PaperTopologyHasThreeSitesAndAllLinks) {
    auto sites = calibration::make_paper_topology();
    EXPECT_EQ(sites.topology.site_count(), 3u);
    EXPECT_GT(sites.topology.link(sites.newcastle, sites.london).latency, 0);
    EXPECT_GT(sites.topology.link(sites.newcastle, sites.pisa).latency, 0);
    EXPECT_GT(sites.topology.link(sites.london, sites.pisa).latency, 0);
    // WAN paths are at least an order of magnitude slower than the LAN.
    EXPECT_GT(sites.topology.link(sites.newcastle, sites.pisa).latency,
              10 * sites.topology.link(sites.newcastle, sites.newcastle).latency);
}

TEST_F(NetFixture, UnknownNodeRejected) {
    Network net(scheduler, calibration::make_lan_topology(), 1);
    EXPECT_THROW(net.node(NodeId(5)), PreconditionError);
    EXPECT_THROW(net.add_node(SiteId(9)), PreconditionError);
}

}  // namespace
}  // namespace newtop
