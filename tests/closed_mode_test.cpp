// Closed-group binding (fig. 3(i)): the client joins a client/server group
// containing every server; requests and replies are ordered multicasts in
// that group; server failures are masked by view shrinkage, not rebinding.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/calibration.hpp"
#include "newtop/newtop_service.hpp"
#include "trace_oracle.hpp"
#include "util/check.hpp"

namespace newtop {
namespace {

using namespace sim_literals;

constexpr std::uint32_t kGet = 1;
constexpr std::uint32_t kIncrement = 2;

class CounterServant : public GroupServant {
public:
    Bytes handle(std::uint32_t method, const Bytes& args) override {
        switch (method) {
            case kGet: return encode_to_bytes(value_);
            case kIncrement:
                ++executions;
                value_ += decode_from_bytes<std::int64_t>(args);
                return encode_to_bytes(value_);
            default: throw ServantError("no such method");
        }
    }
    [[nodiscard]] std::int64_t value() const { return value_; }
    int executions{0};

private:
    std::int64_t value_{0};
};

struct ClosedWorld : ::testing::Test {
    ClosedWorld() : net(scheduler, calibration::make_lan_topology(), 31) {
        for (int i = 0; i < 3; ++i) {
            const NodeId node = net.add_node(SiteId(0));
            orbs.push_back(std::make_unique<Orb>(net, node));
            nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
            servants.push_back(std::make_shared<CounterServant>());
            GroupConfig cfg;
            cfg.order = OrderMode::kTotalAsymmetric;
            nsos.back()->serve("svc", cfg, servants.back());
            run_for(200_ms);
        }
    }

    std::size_t add_client() {
        const NodeId node = net.add_node(SiteId(0));
        orbs.push_back(std::make_unique<Orb>(net, node));
        nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
        return nsos.size() - 1;
    }

    void run_for(SimDuration d) { scheduler.run_until(scheduler.now() + d); }

    GroupReply call(GroupProxy& proxy, std::uint32_t method, Bytes args, InvocationMode mode,
                    SimDuration budget = 5_s) {
        GroupReply out;
        bool done = false;
        proxy.invoke(method, std::move(args), mode, [&](const GroupReply& r) {
            out = r;
            done = true;
        });
        run_for(budget);
        EXPECT_TRUE(done) << "call did not complete";
        return out;
    }

    Scheduler scheduler;
    Network net;
    test::OracleScope oracle{net.metrics()};
    Directory directory;
    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<NewTopService>> nsos;
    std::vector<std::shared_ptr<CounterServant>> servants;
};

TEST_F(ClosedWorld, BindingBecomesReadyWithAllServersInTheGroup) {
    const auto c = add_client();
    GroupProxy proxy = nsos[c]->bind("svc", {.mode = BindMode::kClosed});
    EXPECT_FALSE(proxy.ready());
    run_for(2_s);
    EXPECT_TRUE(proxy.ready());
}

TEST_F(ClosedWorld, CallsQueuedBeforeReadyAreDelivered) {
    const auto c = add_client();
    GroupProxy proxy = nsos[c]->bind("svc", {.mode = BindMode::kClosed});
    // Invoke immediately, before the group has formed.
    const GroupReply reply =
        call(proxy, kIncrement, encode_to_bytes(std::int64_t{5}), InvocationMode::kWaitAll);
    ASSERT_TRUE(reply.complete);
    EXPECT_EQ(reply.replies.size(), 3u);
    for (const auto& servant : servants) EXPECT_EQ(servant->value(), 5);
}

TEST_F(ClosedWorld, RepliesComeFromEachServerIndividually) {
    const auto c = add_client();
    GroupProxy proxy = nsos[c]->bind("svc", {.mode = BindMode::kClosed});
    run_for(2_s);
    const GroupReply reply = call(proxy, kGet, Bytes{}, InvocationMode::kWaitAll);
    ASSERT_TRUE(reply.complete);
    std::set<EndpointId> repliers;
    for (const auto& entry : reply.replies) repliers.insert(entry.replier);
    EXPECT_EQ(repliers.size(), 3u);
}

TEST_F(ClosedWorld, ServerCrashMaskedWithoutRebind) {
    const auto c = add_client();
    GroupProxy proxy = nsos[c]->bind("svc", {.mode = BindMode::kClosed});
    run_for(2_s);
    ASSERT_TRUE(proxy.ready());
    net.crash(orbs[1]->node_id());
    const GroupReply reply = call(proxy, kIncrement, encode_to_bytes(std::int64_t{3}),
                                  InvocationMode::kWaitAll, 10_s);
    ASSERT_TRUE(reply.complete);
    EXPECT_EQ(reply.replies.size(), 2u);
    EXPECT_EQ(proxy.rebinds(), 0u);
    EXPECT_EQ(servants[0]->value(), 3);
    EXPECT_EQ(servants[2]->value(), 3);
}

TEST_F(ClosedWorld, TwoServerCrashesStillAnswerWaitFirst) {
    const auto c = add_client();
    GroupProxy proxy = nsos[c]->bind("svc", {.mode = BindMode::kClosed});
    run_for(2_s);
    net.crash(orbs[1]->node_id());
    net.crash(orbs[2]->node_id());
    const GroupReply reply =
        call(proxy, kGet, Bytes{}, InvocationMode::kWaitFirst, 10_s);
    ASSERT_TRUE(reply.complete);
    EXPECT_GE(reply.replies.size(), 1u);
}

TEST_F(ClosedWorld, DeadServerAtBindTimeIsWrittenOff) {
    net.crash(orbs[2]->node_id());
    const auto c = add_client();
    GroupProxy proxy = nsos[c]->bind("svc", {.mode = BindMode::kClosed});
    run_for(15_s);  // invite timeout writes the dead server off
    ASSERT_TRUE(proxy.ready());
    const GroupReply reply = call(proxy, kGet, Bytes{}, InvocationMode::kWaitAll, 10_s);
    ASSERT_TRUE(reply.complete);
    EXPECT_EQ(reply.replies.size(), 2u);
}

TEST_F(ClosedWorld, QueuedCallsFailWhenClosedBindingDies) {
    // Regression: calls queued while the binding was joining were silently
    // dropped when a rebind found no live server (the binding went kDead
    // without draining its queue), so their handlers never fired.
    for (int i = 0; i < 3; ++i) net.crash(orbs[i]->node_id());
    const auto c = add_client();
    GroupProxy proxy = nsos[c]->bind("svc", {.mode = BindMode::kClosed});
    bool done = false;
    GroupReply reply;
    proxy.invoke(kGet, Bytes{}, InvocationMode::kWaitAll, [&](const GroupReply& r) {
        reply = r;
        done = true;
    });
    EXPECT_FALSE(done);  // queued: the binding is still joining
    // The directory writes off the dead servers; the next bind attempt
    // finds nobody to invite.
    directory.update_contact_hint(directory.find_group("svc")->id, {});
    run_for(30_s);  // invite timeout -> rebind -> empty hint -> binding dies
    ASSERT_TRUE(done) << "queued call was dropped without completion";
    EXPECT_FALSE(reply.complete);
    EXPECT_FALSE(proxy.ready());
    EXPECT_GE(nsos[c]->metrics().counter("invocation.calls_failed"), 1u);
}

TEST_F(ClosedWorld, AllServersCrashingFailsInFlightCalls) {
    // Regression: when every server left the view, reply_threshold() could
    // never be met but never signalled failure either, so in-flight calls
    // hung forever when no call timeout was configured (the default).
    const auto c = add_client();
    GroupProxy proxy = nsos[c]->bind("svc", {.mode = BindMode::kClosed});
    run_for(2_s);
    ASSERT_TRUE(proxy.ready());
    bool done = false;
    GroupReply reply;
    proxy.invoke(kIncrement, encode_to_bytes(std::int64_t{1}), InvocationMode::kWaitAll,
                 [&](const GroupReply& r) {
                     reply = r;
                     done = true;
                 });
    for (int i = 0; i < 3; ++i) net.crash(orbs[i]->node_id());
    run_for(30_s);  // suspicion shrinks the view to {client}
    ASSERT_TRUE(done) << "call hung after all servers crashed";
    EXPECT_FALSE(reply.complete);
    EXPECT_GE(nsos[c]->metrics().counter("invocation.calls_failed"), 1u);
}

TEST_F(ClosedWorld, EachClientFormsItsOwnGroup) {
    const auto c1 = add_client();
    const auto c2 = add_client();
    GroupProxy p1 = nsos[c1]->bind("svc", {.mode = BindMode::kClosed});
    GroupProxy p2 = nsos[c2]->bind("svc", {.mode = BindMode::kClosed});
    run_for(2_s);
    ASSERT_TRUE(p1.ready());
    ASSERT_TRUE(p2.ready());
    // Requests from both clients execute at every replica exactly once.
    int completions = 0;
    for (int k = 0; k < 5; ++k) {
        p1.invoke(kIncrement, encode_to_bytes(std::int64_t{1}), InvocationMode::kWaitAll,
                  [&](const GroupReply&) { ++completions; });
        p2.invoke(kIncrement, encode_to_bytes(std::int64_t{1}), InvocationMode::kWaitAll,
                  [&](const GroupReply&) { ++completions; });
    }
    run_for(5_s);
    EXPECT_EQ(completions, 10);
    for (const auto& servant : servants) {
        EXPECT_EQ(servant->value(), 10);
        EXPECT_EQ(servant->executions, 10);
    }
}

TEST_F(ClosedWorld, OneWayExecutesEverywhereWithoutReplies) {
    const auto c = add_client();
    GroupProxy proxy = nsos[c]->bind("svc", {.mode = BindMode::kClosed});
    run_for(2_s);
    proxy.one_way(kIncrement, encode_to_bytes(std::int64_t{7}));
    run_for(2_s);
    for (const auto& servant : servants) EXPECT_EQ(servant->value(), 7);
}

TEST_F(ClosedWorld, UnbindLeavesTheGroupAndServersFollow) {
    const auto c = add_client();
    GroupProxy proxy = nsos[c]->bind("svc", {.mode = BindMode::kClosed});
    run_for(2_s);
    ASSERT_TRUE(proxy.ready());
    proxy.unbind();
    run_for(2_s);
    // The servers notice the owner left and fold the group up; subsequent
    // service traffic still works for a new client.
    const auto c2 = add_client();
    GroupProxy p2 = nsos[c2]->bind("svc", {.mode = BindMode::kClosed});
    const GroupReply reply = call(p2, kGet, Bytes{}, InvocationMode::kWaitAll);
    EXPECT_TRUE(reply.complete);
}

TEST_F(ClosedWorld, ClientCrashFoldsUpItsGroupAtTheServers) {
    const auto c = add_client();
    GroupProxy proxy = nsos[c]->bind("svc", {.mode = BindMode::kClosed});
    run_for(2_s);
    ASSERT_TRUE(proxy.ready());
    // Put traffic through so the group's liveness machinery is armed, then
    // kill the client mid-stream.
    proxy.invoke(kIncrement, encode_to_bytes(std::int64_t{1}), InvocationMode::kWaitAll,
                 [](const GroupReply&) {});
    run_for(50_ms);
    net.crash(orbs[3]->node_id());
    run_for(10_s);
    // Servers keep answering other clients.
    const auto c2 = add_client();
    GroupProxy p2 = nsos[c2]->bind("svc", {.mode = BindMode::kClosed});
    const GroupReply reply = call(p2, kGet, Bytes{}, InvocationMode::kWaitAll, 10_s);
    EXPECT_TRUE(reply.complete);
}

TEST_F(ClosedWorld, RetriedCallNumberAnsweredFromCacheWithoutReexecution) {
    // Drive the retry path directly through a second binding reusing the
    // same origin/seq is not possible via the public API, so exercise it
    // via crash-free duplicate suppression: the same call id arriving
    // twice at a server executes once.  (The rebinding path is covered in
    // the open-mode tests; here we check cache behaviour survives closed
    // rebinds after a full group loss.)
    const auto c = add_client();
    GroupProxy proxy = nsos[c]->bind("svc", {.mode = BindMode::kClosed});
    run_for(2_s);
    const GroupReply r1 =
        call(proxy, kIncrement, encode_to_bytes(std::int64_t{2}), InvocationMode::kWaitAll);
    ASSERT_TRUE(r1.complete);
    for (const auto& servant : servants) EXPECT_EQ(servant->executions, 1);
}

TEST_F(ClosedWorld, WaitMajorityCompletesWithTwoReplies) {
    const auto c = add_client();
    GroupProxy proxy = nsos[c]->bind("svc", {.mode = BindMode::kClosed});
    run_for(2_s);
    const GroupReply reply = call(proxy, kGet, Bytes{}, InvocationMode::kWaitMajority);
    ASSERT_TRUE(reply.complete);
    EXPECT_GE(reply.replies.size(), 2u);
}

TEST_F(ClosedWorld, SymmetricOrderingWorksForClosedGroups) {
    const auto c = add_client();
    GroupProxy proxy = nsos[c]->bind(
        "svc", {.mode = BindMode::kClosed, .cs_order = OrderMode::kTotalSymmetric});
    run_for(2_s);
    ASSERT_TRUE(proxy.ready());
    const GroupReply reply =
        call(proxy, kIncrement, encode_to_bytes(std::int64_t{4}), InvocationMode::kWaitAll);
    ASSERT_TRUE(reply.complete);
    EXPECT_EQ(reply.replies.size(), 3u);
    for (const auto& servant : servants) EXPECT_EQ(servant->value(), 4);
}

TEST_F(ClosedWorld, BindToUnknownServiceThrows) {
    const auto c = add_client();
    EXPECT_THROW(nsos[c]->bind("nope", {.mode = BindMode::kClosed}), PreconditionError);
}

}  // namespace
}  // namespace newtop
