// Tests for newtop_lint itself (tools/lint_scanner.*, tools/lint_rules.hpp).
//
// Each rule gets a fixture that must trigger it exactly once plus clean /
// suppressed counterparts, so a rule that silently stops firing — or starts
// over-firing — fails tier-1 immediately.  The fixtures live in
// tests/lint_fixtures/ and are excluded from the whole-tree scan; here they
// are scanned under *synthetic* repo paths so the path-scoped rules see them
// where they would matter.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint_passes.hpp"
#include "tools/lint_rules.hpp"
#include "tools/lint_scanner.hpp"

namespace newtop::lint {
namespace {

std::string read_fixture(const std::string& name) {
    const std::string path = std::string(NEWTOP_LINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/// Scan a fixture as if it lived at `rel_path` inside the repo.
std::vector<Finding> scan_fixture(const std::string& name, const std::string& rel_path) {
    return scan_source(rel_path, read_fixture(name));
}

TEST(LintRules, LayerTableIsValidDag) {
    std::string error;
    EXPECT_TRUE(layer_table_is_valid(&error)) << error;
}

// --- one triggering fixture per rule -------------------------------------

TEST(LintFixtures, WallClockTriggersOnce) {
    const auto findings = scan_fixture("wall_clock.cpp", "src/sim/fixture.cpp");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, kRuleWallClock);
    EXPECT_EQ(findings[0].line, 7);
}

TEST(LintFixtures, RawRandomTriggersOnce) {
    const auto findings = scan_fixture("raw_random.cpp", "src/gcs/fixture.cpp");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, kRuleRawRandom);
}

TEST(LintFixtures, GetenvTriggersOnce) {
    const auto findings = scan_fixture("env_read.cpp", "src/net/fixture.cpp");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, kRuleGetenv);
}

TEST(LintFixtures, UnorderedContainerTriggersOnce) {
    const auto findings = scan_fixture("unordered_iter.cpp", "src/orb/fixture.cpp");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, kRuleUnordered);
}

TEST(LintFixtures, PointerKeyTriggersOnce) {
    const auto findings = scan_fixture("pointer_key.cpp", "src/invocation/fixture.cpp");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, kRulePointerKey);
}

TEST(LintFixtures, FloatTriggersOnce) {
    const auto findings = scan_fixture("float_math.cpp", "src/obs/fixture.cpp");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, kRuleFloatSim);
}

TEST(LintFixtures, LayeringTriggersOnce) {
    const auto findings = scan_fixture("layering.cpp", "src/sim/fixture.cpp");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, kRuleLayerDag);
    EXPECT_EQ(findings[0].line, 3);  // the orb include, not the util one
}

TEST(LintFixtures, MetricNameTriggersOnce) {
    const auto findings = scan_fixture("metric_literal.cpp", "src/gcs/fixture.cpp");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, kRuleMetricName);
    EXPECT_EQ(findings[0].line, 9);
}

TEST(LintFixtures, MetricNameScopedToSrcAndExemptsNameTable) {
    const std::string content = read_fixture("metric_literal.cpp");
    // The central table itself may (must) spell the literals.
    EXPECT_TRUE(scan_source("src/obs/names.hpp", content).empty());
    // Tests / tools / benches may assert on literal names freely.
    EXPECT_TRUE(scan_source("tests/fixture.cpp", content).empty());
    EXPECT_TRUE(scan_source("tools/fixture.cpp", content).empty());
    EXPECT_TRUE(scan_source("bench/fixture.cpp", content).empty());
}

// --- clean and suppression fixtures --------------------------------------

TEST(LintFixtures, CleanFixturePasses) {
    EXPECT_TRUE(scan_fixture("clean.cpp", "src/sim/fixture.cpp").empty());
}

TEST(LintFixtures, WellFormedSuppressionSilencesFinding) {
    EXPECT_TRUE(scan_fixture("suppressed.cpp", "src/gcs/fixture.cpp").empty());
}

TEST(LintFixtures, SuppressionWithoutReasonIsRejectedAndDoesNotSuppress) {
    const auto findings = scan_fixture("bad_suppression.cpp", "src/gcs/fixture.cpp");
    ASSERT_EQ(findings.size(), 2u);  // sorted by line: the marker, then the map
    EXPECT_EQ(findings[0].rule, kRuleBadSuppression);
    EXPECT_EQ(findings[1].rule, kRuleUnordered);
}

// --- scoping: the same source is fine where the rule is out of scope ------

TEST(LintScoping, UnorderedContainerAllowedOutsideProtocolDirs) {
    const std::string content = read_fixture("unordered_iter.cpp");
    EXPECT_TRUE(scan_source("src/util/fixture.cpp", content).empty());
    EXPECT_TRUE(scan_source("tests/fixture.cpp", content).empty());
}

TEST(LintScoping, RawRandomSanctionedInUtil) {
    const std::string content = read_fixture("raw_random.cpp");
    EXPECT_TRUE(scan_source("src/util/fixture.cpp", content).empty());
}

TEST(LintScoping, WallClockBannedEvenInTestsAndBench) {
    const std::string content = read_fixture("wall_clock.cpp");
    EXPECT_EQ(scan_source("tests/fixture.cpp", content).size(), 1u);
    EXPECT_EQ(scan_source("bench/fixture.cpp", content).size(), 1u);
}

// --- seeded mutations: the exact edits a future PR might make ------------

/// Reintroducing a hash-ordered sweep in gcs/ must be caught *statically*,
/// whether or not any runtime determinism test happens to sample a diverging
/// layout.  (libstdc++'s unordered_map iterates identically for identical
/// insertion sequences, so runtime same-seed tests can miss this class.)
TEST(LintMutations, UnorderedSweepInGcsIsCaught) {
    const std::string mutated =
        "#include \"gcs/ordering.hpp\"\n"
        "namespace newtop {\n"
        "void Sequencer::sweep() {\n"
        "    std::unordered_map<MemberId, PendingRef> stale;\n"
        "    for (const auto& [member, ref] : stale) retransmit(member, ref);\n"
        "}\n"
        "}  // namespace newtop\n";
    const auto findings = scan_source("src/gcs/ordering.cpp", mutated);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, kRuleUnordered);
    EXPECT_EQ(findings[0].line, 4);
}

TEST(LintMutations, WallClockSeedInFuzzIsCaught) {
    const std::string mutated =
        "std::uint64_t default_seed() {\n"
        "    return static_cast<std::uint64_t>(std::time(nullptr));\n"
        "}\n";
    const auto findings = scan_source("src/fuzz/scenario.cpp", mutated);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, kRuleWallClock);
}

TEST(LintMutations, UpwardIncludeFromOrbIsCaught) {
    const auto findings =
        scan_source("src/orb/orb.cpp", "#include \"gcs/view.hpp\"\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, kRuleLayerDag);
}

TEST(LintMutations, DeclaredDependencyEdgesAreAllowed) {
    EXPECT_TRUE(scan_source("src/orb/orb.cpp", "#include \"net/network.hpp\"\n").empty());
    EXPECT_TRUE(scan_source("src/sim/cpu_queue.cpp", "#include \"obs/metrics.hpp\"\n").empty());
    EXPECT_TRUE(scan_source("src/gcs/endpoint.cpp", "#include \"orb/orb.hpp\"\n").empty());
}

// --- semantic passes: codec-symmetry + struct-coverage --------------------

/// Run the cross-file passes on one fixture as if it lived at `rel_path`.
std::vector<Finding> run_codec_fixture(const std::string& name, const std::string& rel_path) {
    return run_semantic_passes({{rel_path, read_fixture(name)}});
}

int count_rule(const std::vector<Finding>& findings, std::string_view rule) {
    int n = 0;
    for (const auto& f : findings) n += f.rule == rule ? 1 : 0;
    return n;
}

TEST(LintCodec, SymmetricPairIsClean) {
    EXPECT_TRUE(run_codec_fixture("codec_clean.cpp", "src/gcs/fixture.cpp").empty());
}

TEST(LintCodec, SwappedFieldsAreCaught) {
    const auto findings = run_codec_fixture("codec_swapped.cpp", "src/gcs/fixture.cpp");
    // The first divergent op desynchronizes the streams (codec-symmetry) and
    // the decode touches fields out of declaration order (struct-coverage).
    EXPECT_EQ(count_rule(findings, kRuleCodecSymmetry), 1);
    EXPECT_EQ(count_rule(findings, kRuleStructCoverage), 1);
    ASSERT_EQ(findings.size(), 2u);
    for (const auto& f : findings) {
        if (f.rule == kRuleCodecSymmetry) {
            EXPECT_NE(f.message.find("op #1"), std::string::npos) << f.message;
        }
    }
}

TEST(LintCodec, WidthChangeIsCaught) {
    const auto findings = run_codec_fixture("codec_width.cpp", "src/gcs/fixture.cpp");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, kRuleCodecSymmetry);
    EXPECT_NE(findings[0].message.find("u32"), std::string::npos);
    EXPECT_NE(findings[0].message.find("u16"), std::string::npos);
}

TEST(LintCodec, DroppedFieldIsCaught) {
    const auto findings = run_codec_fixture("codec_dropped.cpp", "src/gcs/fixture.cpp");
    EXPECT_EQ(count_rule(findings, kRuleCodecSymmetry), 1);  // op-count mismatch
    EXPECT_EQ(count_rule(findings, kRuleStructCoverage), 1);  // 'tag' never decoded
    ASSERT_EQ(findings.size(), 2u);
    bool mentions_tag = false;
    for (const auto& f : findings) {
        mentions_tag = mentions_tag || f.message.find("'tag'") != std::string::npos;
    }
    EXPECT_TRUE(mentions_tag);
}

TEST(LintCodec, ReasonedSuppressionSilencesAsymmetry) {
    EXPECT_TRUE(run_codec_fixture("codec_suppressed.cpp", "src/gcs/fixture.cpp").empty());
}

TEST(LintCodec, OutOfScopePathContributesNothing) {
    // The same mutated codec outside kCodecScopeDirs is not a wire codec.
    EXPECT_TRUE(run_codec_fixture("codec_swapped.cpp", "src/util/fixture.cpp").empty());
}

TEST(LintCodec, UnpairedCodecIsCaught) {
    const std::string lone =
        "struct WireLone { std::uint64_t id; };\n"
        "void encode(Encoder& e, const WireLone& v) { e.put_u64(v.id); }\n";
    const auto findings = run_semantic_passes({{"src/gcs/lone.cpp", lone}});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, kRuleCodecSymmetry);
    EXPECT_NE(findings[0].message.find("no matching decode"), std::string::npos);
}

TEST(LintCodec, PairSplitAcrossFilesIsMatched) {
    // encode in one file, decode in another: the pass is cross-file.
    const auto findings = run_semantic_passes({
        {"src/gcs/a.cpp",
         "struct WireXf { std::uint32_t x; };\n"
         "void encode(Encoder& e, const WireXf& v) { e.put_u32(v.x); }\n"},
        {"src/serial/b.cpp", "void decode(Decoder& d, WireXf& v) { v.x = d.get_u32(); }\n"},
    });
    EXPECT_TRUE(findings.empty());
}

// --- hot-path allocation discipline ---------------------------------------

TEST(LintHotAlloc, EveryBannedConstructFires) {
    const auto findings = scan_fixture("hot_alloc.cpp", "src/serial/fixture.cpp");
    ASSERT_EQ(findings.size(), 5u);
    for (const auto& f : findings) EXPECT_EQ(f.rule, kRuleHotAlloc);
}

TEST(LintHotAlloc, ReservedGrowthAndBorrowedStringsAreClean) {
    EXPECT_TRUE(scan_fixture("hot_alloc_clean.cpp", "src/serial/fixture.cpp").empty());
}

TEST(LintHotAlloc, ReasonedSuppressionSilences) {
    EXPECT_TRUE(scan_fixture("hot_alloc_suppressed.cpp", "src/serial/fixture.cpp").empty());
}

TEST(LintHotAlloc, ScopedToHotPathRegionsOnly) {
    const std::string content = read_fixture("hot_alloc.cpp");
    // gcs/ at large is not a hot path; the ordering window is.
    EXPECT_TRUE(scan_source("src/gcs/endpoint.cpp", content).empty());
    EXPECT_EQ(scan_source("src/gcs/ordering.cpp", content).size(), 5u);
    EXPECT_TRUE(scan_source("src/orb/orb.cpp", content).empty());
}

// --- tokenizer edge cases -------------------------------------------------

TEST(LintTokenizer, CommentsAndStringsDoNotTrigger) {
    const std::string content =
        "// system_clock in a comment\n"
        "/* std::mt19937 in a block comment */\n"
        "const char* s = \"getenv(\\\"HOME\\\") unordered_map\";\n"
        "const char* r = R\"(std::system_clock float)\";\n";
    EXPECT_TRUE(scan_source("src/gcs/strings.cpp", content).empty());
}

TEST(LintTokenizer, MemberNamedLikeBannedFunctionIsFine) {
    // `sched.time(...)` / `obj->clock(...)` are method calls, not libc.
    const std::string content =
        "SimTime t = sched.time();\n"
        "SimTime u = obj->clock(3);\n"
        "SimTime v = Budget::time(7);\n";
    EXPECT_TRUE(scan_source("src/sim/methods.cpp", content).empty());
}

TEST(LintTokenizer, QualifiedLibcTimeIsCaught) {
    EXPECT_EQ(scan_source("src/sim/t.cpp", "auto t = std::time(nullptr);\n").size(), 1u);
    EXPECT_EQ(scan_source("src/sim/t.cpp", "auto t = ::time(nullptr);\n").size(), 1u);
}

TEST(LintTokenizer, SameLineSuppressionWorks) {
    const std::string content =
        "std::unordered_map<int, int> m;  // newtop-lint: allow(unordered-container): never iterated\n";
    EXPECT_TRUE(scan_source("src/gcs/s.cpp", content).empty());
}

TEST(LintTokenizer, SuppressionForWrongRuleDoesNotSilence) {
    const std::string content =
        "// newtop-lint: allow(wall-clock): wrong rule id for the line below\n"
        "std::unordered_map<int, int> m;\n";
    const auto findings = scan_source("src/gcs/s.cpp", content);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, kRuleUnordered);
}

TEST(LintTokenizer, FindingsAreSortedAndFormatted) {
    const std::string content =
        "std::unordered_map<int, int> b;\n"
        "std::unordered_set<int> a;\n";
    const auto findings = scan_source("src/gcs/two.cpp", content);
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_LT(findings[0].line, findings[1].line);
    EXPECT_EQ(to_string(findings[0]).rfind("src/gcs/two.cpp:1: unordered-container:", 0), 0u);
}

}  // namespace
}  // namespace newtop::lint
