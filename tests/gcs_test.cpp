#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gcs/endpoint.hpp"
#include "net/calibration.hpp"
#include "trace_oracle.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace newtop {
namespace {

using namespace sim_literals;

Bytes payload_of(const std::string& s) { return Bytes(s.begin(), s.end()); }
std::string to_string(const Bytes& b) { return std::string(b.begin(), b.end()); }

/// A small simulated world of endpoints for GCS integration tests.
struct GcsWorld {
    struct Logged {
        GroupId group;
        EndpointId sender;
        std::string payload;
    };

    explicit GcsWorld(Topology topology, std::uint64_t seed = 7)
        : net(scheduler, std::move(topology), seed) {}

    std::size_t add_endpoint(SiteId site) {
        const NodeId node = net.add_node(site);
        orbs.push_back(std::make_unique<Orb>(net, node));
        auto ep = std::make_unique<GroupCommEndpoint>(*orbs.back(), directory);
        const std::size_t index = endpoints.size();
        delivered.emplace_back();
        views.emplace_back();
        removed.emplace_back();
        ep->set_deliver_handler([this, index](const GroupCommEndpoint::Delivery& d) {
            delivered[index].push_back(Logged{d.group, d.sender, to_string(d.payload)});
        });
        ep->set_view_handler([this, index](const GroupCommEndpoint::ViewChangeEvent& event) {
            views[index].push_back(event.view);
        });
        ep->set_removed_handler([this, index](GroupId g) { removed[index].push_back(g); });
        endpoints.push_back(std::move(ep));
        return index;
    }

    GroupCommEndpoint& ep(std::size_t i) { return *endpoints[i]; }

    void run_for(SimDuration d) { scheduler.run_until(scheduler.now() + d); }

    /// Payload strings delivered at endpoint i for a group, in order.
    std::vector<std::string> log_of(std::size_t i, GroupId g) const {
        std::vector<std::string> out;
        for (const auto& entry : delivered[i]) {
            if (entry.group == g) out.push_back(entry.payload);
        }
        return out;
    }

    Scheduler scheduler;
    Network net;
    test::OracleScope oracle{net.metrics()};
    Directory directory;
    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<GroupCommEndpoint>> endpoints;
    std::vector<std::vector<Logged>> delivered;
    std::vector<std::vector<View>> views;
    std::vector<std::vector<GroupId>> removed;
};

GroupConfig config_for(OrderMode order, LivenessMode liveness = LivenessMode::kEventDriven) {
    GroupConfig cfg;
    cfg.order = order;
    cfg.liveness = liveness;
    return cfg;
}

struct LanGcs : ::testing::Test {
    LanGcs() : world(calibration::make_lan_topology()) {}
    GcsWorld world;
};

// -- group lifecycle -----------------------------------------------------------

TEST_F(LanGcs, CreateInstallsSingletonView) {
    const auto a = world.add_endpoint(SiteId(0));
    const GroupId g = world.ep(a).create_group("g", config_for(OrderMode::kTotalSymmetric));
    ASSERT_TRUE(world.ep(a).is_member(g));
    const View* view = world.ep(a).current_view(g);
    ASSERT_NE(view, nullptr);
    EXPECT_EQ(view->epoch, 1u);
    EXPECT_EQ(view->members, std::vector<EndpointId>{world.ep(a).id()});
    ASSERT_EQ(world.views[a].size(), 1u);
}

TEST_F(LanGcs, DuplicateGroupNameRejected) {
    const auto a = world.add_endpoint(SiteId(0));
    world.ep(a).create_group("g", config_for(OrderMode::kTotalSymmetric));
    EXPECT_THROW(world.ep(a).create_group("g", config_for(OrderMode::kTotalSymmetric)),
                 PreconditionError);
}

TEST_F(LanGcs, JoinYieldsCommonView) {
    const auto a = world.add_endpoint(SiteId(0));
    const auto b = world.add_endpoint(SiteId(0));
    const GroupId g = world.ep(a).create_group("g", config_for(OrderMode::kTotalSymmetric));
    world.ep(b).join_group("g");
    world.run_for(100_ms);
    ASSERT_TRUE(world.ep(b).is_member(g));
    const View* va = world.ep(a).current_view(g);
    const View* vb = world.ep(b).current_view(g);
    ASSERT_NE(va, nullptr);
    ASSERT_NE(vb, nullptr);
    EXPECT_EQ(*va, *vb);
    EXPECT_EQ(va->members.size(), 2u);
}

TEST_F(LanGcs, ThreeMembersJoinSequentially) {
    const auto a = world.add_endpoint(SiteId(0));
    const auto b = world.add_endpoint(SiteId(0));
    const auto c = world.add_endpoint(SiteId(0));
    const GroupId g = world.ep(a).create_group("g", config_for(OrderMode::kTotalSymmetric));
    world.ep(b).join_group("g");
    world.run_for(100_ms);
    world.ep(c).join_group("g");
    world.run_for(100_ms);
    for (auto i : {a, b, c}) {
        ASSERT_TRUE(world.ep(i).is_member(g)) << "endpoint " << i;
        EXPECT_EQ(world.ep(i).current_view(g)->members.size(), 3u);
    }
}

TEST_F(LanGcs, ConcurrentJoinsConverge) {
    const auto a = world.add_endpoint(SiteId(0));
    const auto b = world.add_endpoint(SiteId(0));
    const auto c = world.add_endpoint(SiteId(0));
    const GroupId g = world.ep(a).create_group("g", config_for(OrderMode::kTotalSymmetric));
    world.ep(b).join_group("g");
    world.ep(c).join_group("g");
    world.run_for(2_s);
    for (auto i : {a, b, c}) {
        ASSERT_TRUE(world.ep(i).is_member(g));
        EXPECT_EQ(world.ep(i).current_view(g)->members.size(), 3u);
    }
}

TEST_F(LanGcs, LeaveRemovesMemberAndNotifies) {
    const auto a = world.add_endpoint(SiteId(0));
    const auto b = world.add_endpoint(SiteId(0));
    const GroupId g = world.ep(a).create_group("g", config_for(OrderMode::kTotalSymmetric));
    world.ep(b).join_group("g");
    world.run_for(100_ms);
    world.ep(b).leave_group(g);
    world.run_for(500_ms);
    EXPECT_FALSE(world.ep(b).knows_group(g));
    EXPECT_EQ(world.removed[b], std::vector<GroupId>{g});
    ASSERT_TRUE(world.ep(a).is_member(g));
    EXPECT_EQ(world.ep(a).current_view(g)->members.size(), 1u);
}

TEST_F(LanGcs, LastMemberLeavingDisbands) {
    const auto a = world.add_endpoint(SiteId(0));
    const GroupId g = world.ep(a).create_group("g", config_for(OrderMode::kTotalSymmetric));
    world.ep(a).leave_group(g);
    EXPECT_FALSE(world.ep(a).knows_group(g));
    EXPECT_EQ(world.removed[a], std::vector<GroupId>{g});
}

TEST_F(LanGcs, JoinUnknownGroupThrows) {
    const auto a = world.add_endpoint(SiteId(0));
    EXPECT_THROW(world.ep(a).join_group("nope"), PreconditionError);
}

// -- ordered multicast ----------------------------------------------------------

struct OrderedGroup : LanGcs, ::testing::WithParamInterface<OrderMode> {
    GroupId make_group(std::size_t n_members) {
        indices.clear();
        for (std::size_t i = 0; i < n_members; ++i) indices.push_back(world.add_endpoint(SiteId(0)));
        group = world.ep(indices[0]).create_group("g", config_for(GetParam()));
        for (std::size_t i = 1; i < n_members; ++i) {
            world.ep(indices[i]).join_group("g");
            world.run_for(100_ms);
        }
        return group;
    }

    std::vector<std::size_t> indices;
    GroupId group;
};

TEST_P(OrderedGroup, SingleMulticastReachesAll) {
    make_group(3);
    world.ep(indices[0]).multicast(group, payload_of("hello"));
    world.run_for(200_ms);
    for (auto i : indices) {
        EXPECT_EQ(world.log_of(i, group), std::vector<std::string>{"hello"})
            << "at endpoint " << i;
    }
}

TEST_P(OrderedGroup, ConcurrentMulticastsDeliverInIdenticalOrder) {
    make_group(4);
    for (std::size_t round = 0; round < 5; ++round) {
        for (auto i : indices) {
            world.ep(i).multicast(group,
                                  payload_of("m" + std::to_string(i) + "." + std::to_string(round)));
        }
    }
    world.run_for(2_s);
    const auto reference = world.log_of(indices[0], group);
    EXPECT_EQ(reference.size(), 20u);
    for (auto i : indices) {
        EXPECT_EQ(world.log_of(i, group), reference) << "at endpoint " << i;
    }
}

TEST_P(OrderedGroup, SenderFifoPreserved) {
    make_group(3);
    for (int k = 0; k < 10; ++k) {
        world.ep(indices[1]).multicast(group, payload_of("s" + std::to_string(k)));
    }
    world.run_for(1_s);
    const auto log = world.log_of(indices[2], group);
    ASSERT_EQ(log.size(), 10u);
    for (int k = 0; k < 10; ++k) EXPECT_EQ(log[static_cast<std::size_t>(k)], "s" + std::to_string(k));
}

TEST_P(OrderedGroup, SurvivesMessageLoss) {
    // 10% loss: NACK-based retransmission must still deliver everything,
    // in the same order everywhere.
    Topology lossy;
    lossy.add_site("LAN", LinkParams{.latency = 250, .jitter = 30, .loss = 0.10,
                                     .bytes_per_us = 12.5});
    GcsWorld w(std::move(lossy), 21);
    std::vector<std::size_t> members;
    for (int i = 0; i < 3; ++i) members.push_back(w.add_endpoint(SiteId(0)));
    const GroupId g = w.ep(members[0]).create_group("g", config_for(GetParam()));
    for (std::size_t i = 1; i < members.size(); ++i) {
        w.ep(members[i]).join_group("g");
        // Lost join/propose/install messages are healed by retries and
        // view-change timeouts; give them room.
        w.run_for(3_s);
    }
    for (auto i : members) ASSERT_TRUE(w.ep(i).is_member(g));
    for (int k = 0; k < 10; ++k) {
        for (auto i : members) w.ep(i).multicast(g, payload_of(std::to_string(i) + ":" + std::to_string(k)));
        w.run_for(50_ms);
    }
    w.run_for(3_s);
    const auto reference = w.log_of(members[0], g);
    EXPECT_EQ(reference.size(), 30u);
    for (auto i : members) EXPECT_EQ(w.log_of(i, g), reference) << "at endpoint " << i;
}

TEST_P(OrderedGroup, CrashedMemberIsEjectedAndTrafficContinues) {
    make_group(3);
    world.ep(indices[0]).multicast(group, payload_of("before"));
    world.run_for(200_ms);
    // Crash the last-ranked member (not the sequencer).
    world.net.crash(world.orbs[indices[2]]->node_id());
    world.ep(indices[0]).multicast(group, payload_of("during"));
    world.run_for(2_s);
    for (auto i : {indices[0], indices[1]}) {
        ASSERT_TRUE(world.ep(i).is_member(group));
        EXPECT_EQ(world.ep(i).current_view(group)->members.size(), 2u) << "at " << i;
    }
    world.ep(indices[1]).multicast(group, payload_of("after"));
    world.run_for(1_s);
    for (auto i : {indices[0], indices[1]}) {
        EXPECT_EQ(world.log_of(i, group),
                  (std::vector<std::string>{"before", "during", "after"}))
            << "at " << i;
    }
}

TEST_P(OrderedGroup, LeaderCrashIsRecovered) {
    // Crashing the first-ranked member kills both the membership coordinator
    // and (in asymmetric mode) the sequencer; the survivors must agree on a
    // new view and keep ordering.
    make_group(3);
    world.run_for(100_ms);
    // Lowest endpoint id belongs to the creator (registered first).
    world.net.crash(world.orbs[indices[0]]->node_id());
    world.ep(indices[1]).multicast(group, payload_of("x"));
    world.ep(indices[2]).multicast(group, payload_of("y"));
    world.run_for(3_s);
    for (auto i : {indices[1], indices[2]}) {
        ASSERT_TRUE(world.ep(i).is_member(group)) << "at " << i;
        EXPECT_EQ(world.ep(i).current_view(group)->members.size(), 2u);
    }
    const auto reference = world.log_of(indices[1], group);
    EXPECT_EQ(reference.size(), 2u);
    EXPECT_EQ(world.log_of(indices[2], group), reference);
}

TEST_P(OrderedGroup, VirtualSynchronySameDeliveriesAcrossViewChange) {
    make_group(4);
    // Fire a burst and crash a member mid-burst.
    for (int k = 0; k < 8; ++k) {
        for (auto i : indices) world.ep(i).multicast(group, payload_of(std::to_string(i) + "#" + std::to_string(k)));
    }
    world.scheduler.schedule_after(1_ms, [&] {
        world.net.crash(world.orbs[indices[3]]->node_id());
    });
    world.run_for(4_s);
    const auto reference = world.log_of(indices[0], group);
    for (auto i : {indices[1], indices[2]}) {
        EXPECT_EQ(world.log_of(i, group), reference) << "at " << i;
    }
    // Survivors' own messages must all have been delivered (atomicity +
    // resubmission); the crashed member's messages may or may not appear,
    // but identically everywhere.
    for (auto sender : {indices[0], indices[1], indices[2]}) {
        for (int k = 0; k < 8; ++k) {
            const std::string want = std::to_string(sender) + "#" + std::to_string(k);
            EXPECT_NE(std::find(reference.begin(), reference.end(), want), reference.end())
                << "missing " << want;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Protocols, OrderedGroup,
                         ::testing::Values(OrderMode::kTotalSymmetric,
                                           OrderMode::kTotalAsymmetric),
                         [](const auto& info) {
                             return info.param == OrderMode::kTotalSymmetric ? "Symmetric"
                                                                             : "Asymmetric";
                         });

// -- causal mode -------------------------------------------------------------------

TEST_F(LanGcs, CausalModeDeliversCausallyRelatedInOrder) {
    const auto a = world.add_endpoint(SiteId(0));
    const auto b = world.add_endpoint(SiteId(0));
    const auto c = world.add_endpoint(SiteId(0));
    const GroupId g = world.ep(a).create_group("g", config_for(OrderMode::kCausal));
    world.oracle.options().causal_groups.insert(g.value());
    world.ep(b).join_group("g");
    world.run_for(100_ms);
    world.ep(c).join_group("g");
    world.run_for(100_ms);

    // b replies to a's message: everyone must see "ask" before "answer".
    world.ep(b).set_deliver_handler([&](const GroupCommEndpoint::Delivery& d) {
        world.delivered[b].push_back({d.group, d.sender, to_string(d.payload)});
        if (to_string(d.payload) == "ask") world.ep(b).multicast(g, payload_of("answer"));
    });
    world.ep(a).multicast(g, payload_of("ask"));
    world.run_for(1_s);
    for (auto i : {a, b, c}) {
        EXPECT_EQ(world.log_of(i, g), (std::vector<std::string>{"ask", "answer"})) << "at " << i;
    }
}

// -- overlapping groups (the fig. 7 property) -----------------------------------------

TEST_F(LanGcs, MemberCanBelongToManyGroupsSimultaneously) {
    const auto a = world.add_endpoint(SiteId(0));
    const auto b = world.add_endpoint(SiteId(0));
    const GroupId g1 = world.ep(a).create_group("g1", config_for(OrderMode::kTotalSymmetric));
    const GroupId g2 = world.ep(a).create_group("g2", config_for(OrderMode::kTotalAsymmetric));
    world.ep(b).join_group("g1");
    world.ep(b).join_group("g2");
    world.run_for(200_ms);
    ASSERT_TRUE(world.ep(b).is_member(g1));
    ASSERT_TRUE(world.ep(b).is_member(g2));
    world.ep(a).multicast(g1, payload_of("one"));
    world.ep(a).multicast(g2, payload_of("two"));
    world.run_for(500_ms);
    EXPECT_EQ(world.log_of(b, g1), std::vector<std::string>{"one"});
    EXPECT_EQ(world.log_of(b, g2), std::vector<std::string>{"two"});
}

TEST(GcsOverlap, CrossGroupCausalityPreserved) {
    // Fig. 7 of the paper: gx = {A, B}; B also in gw with RM; A also in gz
    // with RM.  B sends m1 in gw, then m2 in gx; A, on delivering m2, sends
    // m3 in gz.  RM must deliver m1 before m3 even though the direct path
    // B->RM is far slower than B->A->RM.
    Topology t;
    const SiteId sa = t.add_site("A", LinkParams{.latency = 300});
    const SiteId sb = t.add_site("B", LinkParams{.latency = 300});
    const SiteId sr = t.add_site("RM", LinkParams{.latency = 300});
    t.set_link(sa, sb, LinkParams{.latency = 500});
    t.set_link(sa, sr, LinkParams{.latency = 500});
    t.set_link(sb, sr, LinkParams{.latency = 40'000});  // B -> RM is slow
    GcsWorld world(std::move(t));

    const auto a = world.add_endpoint(sa);
    const auto b = world.add_endpoint(sb);
    const auto rm = world.add_endpoint(sr);

    const GroupId gx = world.ep(a).create_group("gx", config_for(OrderMode::kTotalSymmetric));
    const GroupId gw = world.ep(b).create_group("gw", config_for(OrderMode::kTotalSymmetric));
    const GroupId gz = world.ep(a).create_group("gz", config_for(OrderMode::kTotalSymmetric));
    world.ep(b).join_group("gx");
    world.ep(rm).join_group("gw");
    world.ep(rm).join_group("gz");
    world.run_for(500_ms);
    ASSERT_TRUE(world.ep(b).is_member(gx));
    ASSERT_TRUE(world.ep(rm).is_member(gw));
    ASSERT_TRUE(world.ep(rm).is_member(gz));

    // A reacts to m2 by issuing m3.
    world.ep(a).set_deliver_handler([&](const GroupCommEndpoint::Delivery& d) {
        world.delivered[a].push_back({d.group, d.sender, to_string(d.payload)});
        if (to_string(d.payload) == "m2") world.ep(a).multicast(gz, payload_of("m3"));
    });

    world.ep(b).multicast(gw, payload_of("m1"));
    world.ep(b).multicast(gx, payload_of("m2"));
    world.run_for(2_s);

    // RM got both calls; causality says m1 first.
    std::vector<std::string> rm_order;
    for (const auto& entry : world.delivered[rm]) rm_order.push_back(entry.payload);
    ASSERT_EQ(rm_order.size(), 2u);
    EXPECT_EQ(rm_order[0], "m1");
    EXPECT_EQ(rm_order[1], "m3");
}

// -- partitions -------------------------------------------------------------------

TEST(GcsPartition, PartitionedSidesFormDisjointViews) {
    auto sites = calibration::make_paper_topology();
    GcsWorld world(std::move(sites.topology));
    const auto a0 = world.add_endpoint(sites.newcastle);
    const auto a1 = world.add_endpoint(sites.newcastle);
    const auto b0 = world.add_endpoint(sites.london);
    const auto b1 = world.add_endpoint(sites.london);

    GroupConfig cfg = config_for(OrderMode::kTotalSymmetric, LivenessMode::kLively);
    const GroupId g = world.ep(a0).create_group("g", cfg);
    for (auto i : {a1, b0, b1}) {
        world.ep(i).join_group("g");
        world.run_for(300_ms);
    }
    for (auto i : {a0, a1, b0, b1}) ASSERT_TRUE(world.ep(i).is_member(g));

    world.net.partition_site(sites.london, 1);
    world.run_for(5_s);

    // Each side keeps going with its own view (partitionable model).
    for (auto i : {a0, a1}) {
        ASSERT_TRUE(world.ep(i).is_member(g)) << "at " << i;
        EXPECT_EQ(world.ep(i).current_view(g)->members,
                  (std::vector<EndpointId>{world.ep(a0).id(), world.ep(a1).id()}));
    }
    for (auto i : {b0, b1}) {
        ASSERT_TRUE(world.ep(i).is_member(g)) << "at " << i;
        EXPECT_EQ(world.ep(i).current_view(g)->members,
                  (std::vector<EndpointId>{world.ep(b0).id(), world.ep(b1).id()}));
    }

    // Both partitions can still multicast internally.
    world.ep(a0).multicast(g, payload_of("north"));
    world.ep(b0).multicast(g, payload_of("south"));
    world.run_for(1_s);
    EXPECT_EQ(world.log_of(a1, g).back(), "north");
    EXPECT_EQ(world.log_of(b1, g).back(), "south");
}

// -- liveness ---------------------------------------------------------------------

TEST_F(LanGcs, LivelyGroupHeartbeatsWhenIdle) {
    const auto a = world.add_endpoint(SiteId(0));
    const auto b = world.add_endpoint(SiteId(0));
    world.ep(a).create_group("g", config_for(OrderMode::kTotalSymmetric, LivenessMode::kLively));
    world.ep(b).join_group("g");
    world.run_for(100_ms);
    const GroupId g = world.ep(a).create_group("marker", config_for(OrderMode::kTotalSymmetric));
    (void)g;
    const auto before = world.net.stats().messages_sent;
    world.run_for(1_s);
    // Idle but lively: nulls keep flowing.
    EXPECT_GT(world.net.stats().messages_sent, before + 10);
}

TEST_F(LanGcs, EventDrivenGroupGoesQuietAfterDelivery) {
    const auto a = world.add_endpoint(SiteId(0));
    const auto b = world.add_endpoint(SiteId(0));
    const GroupId g =
        world.ep(a).create_group("g", config_for(OrderMode::kTotalSymmetric));
    world.ep(b).join_group("g");
    world.run_for(100_ms);
    world.ep(a).multicast(g, payload_of("x"));
    world.run_for(2_s);  // delivery + stability tail
    const auto quiet_start = world.net.stats().messages_sent;
    world.run_for(2_s);
    EXPECT_EQ(world.net.stats().messages_sent, quiet_start);
    EXPECT_EQ(world.log_of(b, g), std::vector<std::string>{"x"});
}

// -- send flow control / batching ----------------------------------------------------

TEST_F(LanGcs, BurstCoalescesUnderSendWindow) {
    const auto a = world.add_endpoint(SiteId(0));
    const auto b = world.add_endpoint(SiteId(0));
    GroupConfig cfg = config_for(OrderMode::kTotalAsymmetric);
    cfg.order_window = 2;
    const GroupId g = world.ep(a).create_group("g", cfg);
    world.ep(b).join_group("g");
    world.run_for(100_ms);
    std::vector<std::string> expected;
    for (int k = 0; k < 40; ++k) {
        expected.push_back("m" + std::to_string(k));
        world.ep(b).multicast(g, payload_of(expected.back()));
    }
    world.run_for(3_s);
    EXPECT_EQ(world.log_of(a, g), expected);
    EXPECT_EQ(world.log_of(b, g), expected);
    // With a window of 2, a 40-send burst must have coalesced...
    EXPECT_GT(world.net.metrics().counter("gcs.sends_coalesced"), 0u);
    // ...into multi-payload batches.
    const auto* batches = world.net.metrics().histogram("gcs.send_batch_payloads");
    ASSERT_NE(batches, nullptr);
    EXPECT_GT(batches->max(), SimDuration{1});
}

TEST_F(LanGcs, ZeroWindowDisablesCoalescing) {
    const auto a = world.add_endpoint(SiteId(0));
    const auto b = world.add_endpoint(SiteId(0));
    GroupConfig cfg = config_for(OrderMode::kTotalAsymmetric);
    cfg.order_window = 0;
    const GroupId g = world.ep(a).create_group("g", cfg);
    world.ep(b).join_group("g");
    world.run_for(100_ms);
    std::vector<std::string> expected;
    for (int k = 0; k < 10; ++k) {
        expected.push_back("m" + std::to_string(k));
        world.ep(b).multicast(g, payload_of(expected.back()));
    }
    world.run_for(2_s);
    EXPECT_EQ(world.log_of(a, g), expected);
    EXPECT_EQ(world.net.metrics().counter("gcs.sends_coalesced"), 0u);
}

// Oracle test: a view change landing while a burst is still coalesced in
// the sender's queue must neither drop nor reorder the unflushed tail.
// The OracleScope on the world checks the protocol invariants throughout.
TEST_F(LanGcs, ViewChangeMidBatchKeepsUnflushedTail) {
    const auto a = world.add_endpoint(SiteId(0));
    const auto b = world.add_endpoint(SiteId(0));
    GroupConfig cfg = config_for(OrderMode::kTotalAsymmetric);
    cfg.order_window = 1;  // everything past the first send queues
    const GroupId g = world.ep(a).create_group("g", cfg);
    world.ep(b).join_group("g");
    world.run_for(100_ms);
    std::vector<std::string> expected;
    for (int k = 0; k < 25; ++k) {
        expected.push_back("m" + std::to_string(k));
        world.ep(b).multicast(g, payload_of(expected.back()));
    }
    // Join lands while the tail of the burst is still queued at b.
    const auto c = world.add_endpoint(SiteId(0));
    world.ep(c).join_group("g");
    world.run_for(5_s);
    EXPECT_EQ(world.log_of(a, g), expected);
    EXPECT_EQ(world.log_of(b, g), expected);
    ASSERT_TRUE(world.ep(c).is_member(g));
    // b's full sequence survives at every original member, in order; c
    // (which joined mid-burst) sees a gap-free suffix of it.
    const auto at_c = world.log_of(c, g);
    EXPECT_TRUE(std::search(expected.begin(), expected.end(), at_c.begin(), at_c.end()) !=
                expected.end());
}

TEST_F(LanGcs, SymmetricModeAlsoCoalesces) {
    const auto a = world.add_endpoint(SiteId(0));
    const auto b = world.add_endpoint(SiteId(0));
    GroupConfig cfg = config_for(OrderMode::kTotalSymmetric);
    cfg.order_window = 2;
    const GroupId g = world.ep(a).create_group("g", cfg);
    world.ep(b).join_group("g");
    world.run_for(100_ms);
    std::vector<std::string> expected;
    for (int k = 0; k < 30; ++k) {
        expected.push_back("s" + std::to_string(k));
        world.ep(a).multicast(g, payload_of(expected.back()));
    }
    world.run_for(3_s);
    EXPECT_EQ(world.log_of(a, g), expected);
    EXPECT_EQ(world.log_of(b, g), expected);
    EXPECT_GT(world.net.metrics().counter("gcs.sends_coalesced"), 0u);
}

TEST_F(LanGcs, StabilityPrunesUnstableStore) {
    const auto a = world.add_endpoint(SiteId(0));
    const auto b = world.add_endpoint(SiteId(0));
    const GroupId g = world.ep(a).create_group("g", config_for(OrderMode::kTotalSymmetric));
    world.ep(b).join_group("g");
    world.run_for(100_ms);
    for (int k = 0; k < 20; ++k) world.ep(a).multicast(g, payload_of(std::to_string(k)));
    world.run_for(3_s);
    EXPECT_EQ(world.ep(a).group_stats(g).unstable, 0u);
    EXPECT_EQ(world.ep(b).group_stats(g).unstable, 0u);
}

// -- wire format ---------------------------------------------------------------------

TEST(GcsMessages, DataMsgRoundTrips) {
    DataMsg m;
    m.group = GroupId(3);
    m.epoch = 7;
    m.sender = EndpointId(9);
    m.seq = 42;
    m.ts = 1234;
    m.kind = DataKind::kApplication;
    m.knowledge = {{GroupId(1), 2, EndpointId(4), 5}};
    m.payload = payload_of("payload");
    m.received_counts = {{EndpointId(9), 43}};
    m.causal_vc = {{EndpointId(1), 2}};
    const GcsMessage out = decode_gcs_message(encode_gcs_message(m));
    const auto* decoded = std::get_if<DataMsg>(&out);
    ASSERT_NE(decoded, nullptr);
    EXPECT_EQ(decoded->seq, 42u);
    EXPECT_EQ(decoded->knowledge.size(), 1u);
    EXPECT_EQ(decoded->knowledge[0].count, 5u);
    EXPECT_EQ(to_string(decoded->payload), "payload");
}

TEST(GcsMessages, AllVariantsRoundTrip) {
    const View view{GroupId(1), 3, {EndpointId(1), EndpointId(2)}};
    const std::vector<GcsMessage> msgs{
        NackMsg{GroupId(1), 2, EndpointId(3), {4, 5}},
        OrderMsg{GroupId(1), 2, 7, {MsgRef{EndpointId(1), 0}}},
        JoinReq{GroupId(1), EndpointId(5)},
        LeaveReq{GroupId(1), EndpointId(6)},
        SuspectMsg{GroupId(1), 2, EndpointId(1), {EndpointId(9)}},
        ProposeMsg{GroupId(1), 2, 3, EndpointId(1), {EndpointId(1), EndpointId(2)}},
        FlushMsg{GroupId(1), 3, EndpointId(1), EndpointId(2), {}, {}},
        InstallMsg{GroupId(1), view, EndpointId(1), {}, {}, GroupConfig{}, 2, 7},
    };
    for (const auto& msg : msgs) {
        const GcsMessage out = decode_gcs_message(encode_gcs_message(msg));
        EXPECT_EQ(out.index(), msg.index());
    }
}

TEST(GcsMessages, GarbageRejected) {
    EXPECT_THROW(decode_gcs_message(Bytes{99}), DecodeError);
    EXPECT_THROW(decode_gcs_message(Bytes{}), DecodeError);
}

TEST(GcsMessages, DataMsgBatchRoundTrips) {
    DataMsg m;
    m.group = GroupId(3);
    m.epoch = 7;
    m.sender = EndpointId(9);
    m.seq = 42;
    m.ts = 1234;
    m.payload = payload_of("head");
    m.batch = {payload_of("second"), payload_of("third"), Bytes{}};
    const GcsMessage out = decode_gcs_message(encode_gcs_message(m));
    const auto* decoded = std::get_if<DataMsg>(&out);
    ASSERT_NE(decoded, nullptr);
    EXPECT_EQ(to_string(decoded->payload), "head");
    ASSERT_EQ(decoded->batch.size(), 3u);
    EXPECT_EQ(to_string(decoded->batch[0]), "second");
    EXPECT_EQ(to_string(decoded->batch[1]), "third");
    EXPECT_TRUE(decoded->batch[2].empty());
}

// Property: multi-assignment ORDER records round-trip for arbitrary batch
// sizes, and every strict prefix of the encoding is rejected (no partial
// ORDER record can silently decode to fewer assignments).
TEST(GcsMessages, MultiAssignmentOrderRoundTripAndTruncationFuzz) {
    Rng rng(2026);
    for (int iter = 0; iter < 50; ++iter) {
        OrderMsg m;
        m.group = GroupId(rng.next_in(1, 9));
        m.epoch = rng.next_in(0, 5);
        m.first_order = rng.next_in(0, 1000);
        const std::size_t refs = rng.next_in(1, 65);
        for (std::size_t i = 0; i < refs; ++i) {
            m.refs.push_back(MsgRef{EndpointId(rng.next_in(1, 8)),
                                    static_cast<Seqno>(rng.next_in(0, 500))});
        }
        const Bytes wire = encode_gcs_message(m);
        const GcsMessage out = decode_gcs_message(wire);
        const auto* decoded = std::get_if<OrderMsg>(&out);
        ASSERT_NE(decoded, nullptr);
        EXPECT_EQ(decoded->first_order, m.first_order);
        ASSERT_EQ(decoded->refs.size(), m.refs.size());
        EXPECT_TRUE(std::equal(m.refs.begin(), m.refs.end(), decoded->refs.begin()));
        // Truncation fuzz: sample strict prefixes (all for short wires).
        for (std::size_t cut = 0; cut < wire.size();
             cut += 1 + rng.next_in(0, wire.size() / 16)) {
            EXPECT_THROW(decode_gcs_message(BytesView{wire.data(), cut}), DecodeError);
        }
    }
}

TEST(GcsMessages, EncodeReservesExactly) {
    DataMsg m;
    m.group = GroupId(3);
    m.sender = EndpointId(9);
    m.payload = Bytes(1024, 0xab);
    m.batch = {Bytes(512, 0xcd), Bytes(256, 0xef)};
    const Bytes wire = encode_gcs_message(m);
    // The counting pass pre-sizes the buffer: no growth slack remains.
    EXPECT_EQ(wire.capacity(), wire.size());
}

TEST(GcsView, RankAndLeader) {
    View v{GroupId(1), 1, {EndpointId(3), EndpointId(5), EndpointId(9)}};
    EXPECT_EQ(v.leader(), EndpointId(3));
    EXPECT_EQ(v.rank_of(EndpointId(5)), 1u);
    EXPECT_EQ(v.rank_of(EndpointId(4)), std::nullopt);
    EXPECT_TRUE(v.contains(EndpointId(9)));
    EXPECT_FALSE(v.contains(EndpointId(2)));
}

TEST(GcsView, UnsortedWireViewRejected) {
    View v{GroupId(1), 1, {EndpointId(5), EndpointId(3)}};
    EXPECT_THROW(decode_from_bytes<View>(encode_to_bytes(v)), DecodeError);
}

}  // namespace
}  // namespace newtop
