// Tier-1 tests for the chaos-campaign subsystem: a smoke campaign over the
// default generator, deterministic replay, cross-run isolation, and a
// mutation run proving the oracle + shrinker actually catch and minimise
// an injected ordering bug.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "fuzz/campaign.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/scenario.hpp"

namespace newtop::fuzz {
namespace {

bool same_stream(const std::vector<obs::TraceEvent>& a, const std::vector<obs::TraceEvent>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].at != b[i].at || a[i].kind != b[i].kind || a[i].actor != b[i].actor ||
            a[i].subject != b[i].subject || a[i].detail != b[i].detail ||
            a[i].trace != b[i].trace || a[i].span != b[i].span || a[i].parent != b[i].parent) {
            return false;
        }
    }
    return true;
}

TEST(ScenarioGenerator, DeterministicForSameSeed) {
    const ScenarioGenerator gen{ScenarioLimits{}};
    EXPECT_EQ(to_json(gen.generate(42)), to_json(gen.generate(42)));
    EXPECT_NE(to_json(gen.generate(42)), to_json(gen.generate(43)));
}

TEST(ScenarioGenerator, RespectsLimits) {
    ScenarioLimits limits;
    limits.max_sites = 2;
    limits.max_services = 1;
    limits.max_servers = 2;
    limits.max_clients = 2;
    limits.max_calls = 3;
    limits.max_faults = 1;
    const ScenarioGenerator gen{limits};
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        const Scenario s = gen.generate(seed);
        EXPECT_LE(s.sites, 2);
        EXPECT_LE(s.services.size(), 1u);
        for (const ServiceSpec& svc : s.services) EXPECT_LE(svc.server_sites.size(), 2u);
        EXPECT_GE(s.clients.size(), 1u);
        EXPECT_LE(s.clients.size(), 2u);
        for (const ClientSpec& c : s.clients) {
            EXPECT_GE(c.calls, 1);
            EXPECT_LE(c.calls, 3);
            EXPECT_GT(c.call_timeout_us, 0);
        }
        // Paired heals and restarts may exceed the raw fault budget;
        // crash/partition/loss events themselves may not.
        int primary = 0;
        for (const FaultSpec& f : s.faults) {
            primary += f.kind != FaultSpec::Kind::kHeal &&
                       f.kind != FaultSpec::Kind::kRestart;
        }
        EXPECT_LE(primary, 1);
        EXPECT_TRUE(std::is_sorted(s.faults.begin(), s.faults.end(),
                                   [](const FaultSpec& a, const FaultSpec& b) {
                                       return a.at_us < b.at_us;
                                   }));
    }
}

TEST(ScenarioGenerator, NeverCrashesEveryReplicaOfAService) {
    const ScenarioGenerator gen{ScenarioLimits{}};
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        const Scenario s = gen.generate(seed);
        std::map<int, int> crashes;
        for (const FaultSpec& f : s.faults) {
            if (f.kind == FaultSpec::Kind::kCrashServer) ++crashes[f.a];
        }
        for (const auto& [service, count] : crashes) {
            EXPECT_LT(static_cast<std::size_t>(count),
                      s.services[static_cast<std::size_t>(service)].server_sites.size())
                << "seed " << seed << " crashes every replica of service " << service;
        }
    }
}

// The headline tier-1 gate: a 50-seed smoke campaign over the default
// generator must come back clean.  Every seed is a full random world —
// topology, faults, mixed invocation modes — checked by the oracle plus
// the call-liveness scan.
TEST(Campaign, SmokeFiftySeedsClean) {
    CampaignOptions options;
    options.base_seed = 1;
    options.runs = 50;
    const CampaignResult result = CampaignRunner(options).run();
    EXPECT_TRUE(result.ok()) << result.report();
    EXPECT_EQ(result.runs, 50);
}

// Acceptance: NEWTOP_FUZZ_SEED=<seed> alone reproduces a run bit-for-bit.
// Two executions of the same seed must yield identical trace streams.
TEST(Campaign, SameSeedReplaysIdenticalTraceStream) {
    RunOptions options;
    options.keep_trace = true;
    const ScenarioGenerator gen{ScenarioLimits{}};
    for (const std::uint64_t seed : {3u, 17u}) {
        const RunResult first = run_scenario(gen.generate(seed), options);
        const RunResult second = run_scenario(gen.generate(seed), options);
        EXPECT_GT(first.trace.size(), 0u);
        EXPECT_TRUE(same_stream(first.trace, second.trace)) << "seed " << seed;
        EXPECT_EQ(first.ok(), second.ok());
    }
}

// Regression for cross-run bleed: running seed A before seed B must not
// change seed B's trace or verdict (fresh scheduler / metrics registry /
// trace sink / directory per run).
TEST(Campaign, ConsecutiveRunsDoNotBleed) {
    RunOptions options;
    options.keep_trace = true;
    const ScenarioGenerator gen{ScenarioLimits{}};
    const RunResult standalone = run_scenario(gen.generate(5), options);

    const RunResult warmup = run_scenario(gen.generate(4), options);
    const RunResult after = run_scenario(gen.generate(5), options);
    EXPECT_GT(warmup.trace.size(), 0u);
    EXPECT_TRUE(same_stream(standalone.trace, after.trace))
        << "running seed 4 first changed seed 5's trace";
    EXPECT_EQ(standalone.ok(), after.ok());
}

/// Mutation used by the tests below: swap the payloads of the first two
/// deliveries at one member that some *other* member also delivered in the
/// same order — a genuine total-order violation.  Falls back to duplicating
/// a delivery when no such pair exists (tiny shrunk scenarios).
void inject_ordering_bug(std::vector<obs::TraceEvent>& events) {
    using obs::TraceKind;
    // Collect delivery event indices per (group, actor).
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<std::size_t>> per_member;
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i].kind == TraceKind::kDataDelivered) {
            per_member[{events[i].subject, events[i].actor}].push_back(i);
        }
    }
    for (const auto& [key, indices] : per_member) {
        if (indices.size() < 2) continue;
        const std::uint64_t ref_a = events[indices[0]].detail;
        const std::uint64_t ref_b = events[indices[1]].detail;
        if (ref_a == ref_b) continue;
        for (const auto& [other, other_indices] : per_member) {
            if (other.first != key.first || other.second == key.second) continue;
            bool sees_both = false;
            for (const std::size_t i : other_indices) {
                sees_both |= events[i].detail == ref_b;
            }
            bool sees_first = false;
            for (const std::size_t i : other_indices) {
                sees_first |= events[i].detail == ref_a;
            }
            if (sees_both && sees_first) {
                std::swap(events[indices[0]].detail, events[indices[1]].detail);
                return;
            }
        }
    }
    // Fallback: duplicate the first delivery (a duplicate-delivery bug).
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i].kind == TraceKind::kDataDelivered) {
            events.insert(events.begin() + static_cast<std::ptrdiff_t>(i) + 1, events[i]);
            return;
        }
    }
}

// Acceptance: an intentionally injected ordering bug is caught by the
// campaign and shrunk to a minimal scenario (<= 3 clients, <= 1 fault).
TEST(Campaign, MutationIsCaughtAndShrunk) {
    CampaignOptions options;
    options.base_seed = 1;
    options.runs = 10;
    options.run.mutator = inject_ordering_bug;
    const CampaignResult result = CampaignRunner(options).run();
    ASSERT_FALSE(result.ok()) << "the injected ordering bug went unnoticed";
    ASSERT_TRUE(result.first_failure.has_value());
    EXPECT_FALSE(result.first_failure->violations.empty());
    ASSERT_TRUE(result.shrunk.has_value());
    EXPECT_LE(result.shrunk->clients.size(), 3u);
    EXPECT_LE(result.shrunk->faults.size(), 1u);
    // The shrunk scenario still reproduces under the same mutator.
    const RunResult replay = run_scenario(*result.shrunk, options.run);
    EXPECT_FALSE(replay.ok());
}

TEST(Runner, LivenessCheckFlagsOpenCalls) {
    std::vector<obs::TraceEvent> events;
    obs::TraceEvent queued;
    queued.kind = obs::TraceKind::kRequestQueued;
    queued.actor = 9;
    queued.trace = 1234;
    events.push_back(queued);
    EXPECT_EQ(check_call_liveness(events, {}).size(), 1u);
    // A terminal event closes it.
    obs::TraceEvent done = queued;
    done.kind = obs::TraceKind::kCallCompleted;
    events.push_back(done);
    EXPECT_TRUE(check_call_liveness(events, {}).empty());
    // Exempt actors (crashed clients) are not reported.
    events.pop_back();
    EXPECT_TRUE(check_call_liveness(events, {9}).empty());
}

TEST(Runner, TraceOverflowFailsTheRun) {
    const ScenarioGenerator gen{ScenarioLimits{}};
    RunOptions options;
    options.trace_capacity = 64;  // absurdly small: guaranteed overflow
    const RunResult result = run_scenario(gen.generate(1), options);
    EXPECT_GT(result.trace_dropped, 0u);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.report().find("trace_overflow"), std::string::npos);
}

}  // namespace
}  // namespace newtop::fuzz
