#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/calibration.hpp"
#include "replication/active_replica.hpp"
#include "replication/passive_replica.hpp"
#include "util/check.hpp"

namespace newtop {
namespace {

using namespace sim_literals;

constexpr std::uint32_t kGet = 1;
constexpr std::uint32_t kAppend = 2;

/// A stateful register: an append-only string, snapshot = contents.
class RegisterServant : public StatefulServant {
public:
    Bytes handle(std::uint32_t method, const Bytes& args) override {
        switch (method) {
            case kGet: return encode_to_bytes(contents_);
            case kAppend:
                ++executions;
                contents_ += decode_from_bytes<std::string>(args);
                return encode_to_bytes(contents_);
            default: throw ServantError("no such method");
        }
    }

    [[nodiscard]] Bytes snapshot() const override { return encode_to_bytes(contents_); }
    void restore(const Bytes& snapshot) override {
        contents_ = decode_from_bytes<std::string>(snapshot);
    }

    [[nodiscard]] const std::string& contents() const { return contents_; }
    int executions{0};

private:
    std::string contents_;
};

struct ReplWorld {
    ReplWorld() : net(scheduler, calibration::make_lan_topology(), 17) {}

    std::size_t add_nso() {
        const NodeId node = net.add_node(SiteId(0));
        orbs.push_back(std::make_unique<Orb>(net, node));
        nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
        return nsos.size() - 1;
    }

    NewTopService& nso(std::size_t i) { return *nsos[i]; }
    void run_for(SimDuration d) { scheduler.run_until(scheduler.now() + d); }

    GroupReply call(GroupProxy& proxy, std::uint32_t method, Bytes args, InvocationMode mode,
                    SimDuration budget = 5_s) {
        GroupReply out;
        bool done = false;
        proxy.invoke(method, std::move(args), mode, [&](const GroupReply& r) {
            out = r;
            done = true;
        });
        run_for(budget);
        EXPECT_TRUE(done) << "call did not complete";
        return out;
    }

    Scheduler scheduler;
    Network net;
    Directory directory;
    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<NewTopService>> nsos;
};

GroupConfig active_config() {
    GroupConfig cfg;
    cfg.order = OrderMode::kTotalAsymmetric;
    return cfg;
}

// -- active replication ----------------------------------------------------------------

TEST(ActiveReplication, FoundingMembersAreSyncedImmediately) {
    ReplWorld world;
    const auto s0 = world.add_nso();
    auto app = std::make_shared<RegisterServant>();
    ActiveReplica replica(world.nso(s0), "reg", active_config(), app);
    EXPECT_TRUE(replica.synced());
}

TEST(ActiveReplication, JoinerReceivesStateBeforeServing) {
    ReplWorld world;
    const auto s0 = world.add_nso();
    auto app0 = std::make_shared<RegisterServant>();
    ActiveReplica r0(world.nso(s0), "reg", active_config(), app0);

    // Put some state in before anyone else joins.
    const auto c = world.add_nso();
    GroupProxy proxy = world.nso(c).bind("reg", {.mode = BindMode::kOpen});
    world.call(proxy, kAppend, encode_to_bytes(std::string("abc")), InvocationMode::kWaitAll);
    ASSERT_EQ(app0->contents(), "abc");

    // A second replica joins mid-life and must catch up.
    const auto s1 = world.add_nso();
    auto app1 = std::make_shared<RegisterServant>();
    ActiveReplica r1(world.nso(s1), "reg", active_config(), app1);
    EXPECT_FALSE(r1.synced());
    world.run_for(2_s);
    ASSERT_TRUE(r1.synced());
    EXPECT_EQ(app1->contents(), "abc");
    EXPECT_EQ(app1->executions, 0);  // state came as a snapshot, not re-execution
}

TEST(ActiveReplication, JoinerAppliesRequestsOrderedAfterTheMarkerExactlyOnce) {
    ReplWorld world;
    const auto s0 = world.add_nso();
    auto app0 = std::make_shared<RegisterServant>();
    ActiveReplica r0(world.nso(s0), "reg", active_config(), app0);

    const auto c = world.add_nso();
    GroupProxy proxy = world.nso(c).bind("reg", {.mode = BindMode::kOpen});
    world.call(proxy, kAppend, encode_to_bytes(std::string("a")), InvocationMode::kWaitAll);

    const auto s1 = world.add_nso();
    auto app1 = std::make_shared<RegisterServant>();
    ActiveReplica r1(world.nso(s1), "reg", active_config(), app1);

    // Keep writing while the joiner synchronises.
    for (const char* piece : {"b", "c", "d"}) {
        proxy.invoke(kAppend, encode_to_bytes(std::string(piece)), InvocationMode::kWaitFirst,
                     [](const GroupReply&) {});
    }
    world.run_for(5_s);
    ASSERT_TRUE(r1.synced());
    EXPECT_EQ(app1->contents(), "abcd");
    EXPECT_EQ(app0->contents(), "abcd");
    // The joiner executed only what the snapshot did not cover.
    EXPECT_LE(app1->executions, 3);
}

TEST(ActiveReplication, GrownGroupServesWaitAllFromAllReplicas) {
    ReplWorld world;
    const auto s0 = world.add_nso();
    auto app0 = std::make_shared<RegisterServant>();
    ActiveReplica r0(world.nso(s0), "reg", active_config(), app0);

    const auto s1 = world.add_nso();
    auto app1 = std::make_shared<RegisterServant>();
    ActiveReplica r1(world.nso(s1), "reg", active_config(), app1);
    world.run_for(2_s);
    ASSERT_TRUE(r1.synced());

    const auto c = world.add_nso();
    GroupProxy proxy = world.nso(c).bind("reg", {.mode = BindMode::kOpen});
    const GroupReply reply = world.call(proxy, kAppend, encode_to_bytes(std::string("x")),
                                        InvocationMode::kWaitAll);
    ASSERT_TRUE(reply.complete);
    EXPECT_EQ(reply.replies.size(), 2u);
    EXPECT_EQ(app0->contents(), "x");
    EXPECT_EQ(app1->contents(), "x");
}

// -- passive replication ---------------------------------------------------------------

struct PassiveFixture : ::testing::Test {
    PassiveFixture() {
        // Lively server group: replicas heartbeat each other so a dead
        // primary is noticed even when no client traffic is flowing.
        GroupConfig cfg = active_config();
        cfg.liveness = LivenessMode::kLively;
        for (int i = 0; i < 3; ++i) {
            const auto idx = world.add_nso();
            apps.push_back(std::make_shared<RegisterServant>());
            replicas.push_back(std::make_unique<PassiveReplica>(
                world.nso(idx), "preg", cfg, apps.back(),
                PassiveOptions{.checkpoint_every = 2}));
            world.run_for(300_ms);
            servers.push_back(idx);
        }
        client = world.add_nso();
        proxy = world.nso(client).bind(
            "preg",
            {.mode = BindMode::kOpen, .restricted = true, .async_forwarding = true});
        world.run_for(500_ms);
    }

    ReplWorld world;
    std::vector<std::size_t> servers;
    std::vector<std::shared_ptr<RegisterServant>> apps;
    std::vector<std::unique_ptr<PassiveReplica>> replicas;
    std::size_t client{};
    GroupProxy proxy;
};

TEST_F(PassiveFixture, OnlyThePrimaryExecutes) {
    const GroupReply reply = world.call(proxy, kAppend, encode_to_bytes(std::string("p")),
                                        InvocationMode::kWaitFirst);
    ASSERT_TRUE(reply.complete);
    EXPECT_TRUE(replicas[0]->is_primary());
    EXPECT_FALSE(replicas[1]->is_primary());
    EXPECT_EQ(apps[0]->executions, 1);
    EXPECT_EQ(apps[1]->executions, 0);
    EXPECT_EQ(apps[2]->executions, 0);
}

TEST_F(PassiveFixture, CheckpointsPropagateStateToBackups) {
    for (const char* piece : {"a", "b", "c", "d"}) {
        const GroupReply reply = world.call(proxy, kAppend, encode_to_bytes(std::string(piece)),
                                            InvocationMode::kWaitFirst);
        ASSERT_TRUE(reply.complete);
    }
    world.run_for(2_s);
    // checkpoint_every = 2: after 4 requests both backups hold "abcd" via
    // snapshots, without executing anything.
    EXPECT_EQ(apps[1]->contents(), "abcd");
    EXPECT_EQ(apps[2]->contents(), "abcd");
    EXPECT_EQ(apps[1]->executions, 0);
    EXPECT_EQ(apps[0]->contents(), "abcd");
    EXPECT_LE(replicas[1]->log_size(), 1u);
}

TEST_F(PassiveFixture, FailoverReplaysTheLoggedSuffix) {
    // Three writes: checkpoint after 2, the third lives only in the logs.
    for (const char* piece : {"a", "b", "c"}) {
        const GroupReply reply = world.call(proxy, kAppend, encode_to_bytes(std::string(piece)),
                                            InvocationMode::kWaitFirst);
        ASSERT_TRUE(reply.complete);
    }
    world.run_for(1_s);
    ASSERT_EQ(apps[0]->contents(), "abc");

    world.net.crash(world.orbs[servers[0]]->node_id());
    world.run_for(5_s);
    ASSERT_TRUE(replicas[1]->is_primary());
    // The new primary replayed "c" on top of its "ab" checkpoint.
    EXPECT_EQ(apps[1]->contents(), "abc");

    // And it keeps serving: the proxy rebinds to it.
    const GroupReply reply = world.call(proxy, kAppend, encode_to_bytes(std::string("d")),
                                        InvocationMode::kWaitFirst, 10_s);
    ASSERT_TRUE(reply.complete);
    EXPECT_EQ(apps[1]->contents(), "abcd");
    world.run_for(2_s);
    EXPECT_EQ(apps[2]->contents(), "abcd");
}

TEST_F(PassiveFixture, BackupsRemainConsistentAfterManyWrites) {
    std::string expected;
    for (int k = 0; k < 10; ++k) {
        const std::string piece(1, static_cast<char>('a' + k));
        expected += piece;
        const GroupReply reply =
            world.call(proxy, kAppend, encode_to_bytes(piece), InvocationMode::kWaitFirst);
        ASSERT_TRUE(reply.complete);
    }
    world.run_for(2_s);
    EXPECT_EQ(apps[0]->contents(), expected);
    EXPECT_EQ(apps[1]->contents(), expected);
    EXPECT_EQ(apps[2]->contents(), expected);
    EXPECT_EQ(apps[0]->executions, 10);
    EXPECT_EQ(apps[1]->executions, 0);
}

}  // namespace
}  // namespace newtop
