// Gray-failure resilience: degraded-mode fault injection (slow hosts, sick
// links, flapping sites), the φ-accrual failure detector's behaviour under
// slow-but-alive members, deadline shedding, and the client rebind backoff.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "gcs/endpoint.hpp"
#include "net/calibration.hpp"
#include "net/network.hpp"
#include "newtop/newtop_service.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace newtop {
namespace {

using namespace sim_literals;

Topology two_site_topology() {
    Topology t;
    const SiteId a = t.add_site("A", LinkParams{.latency = 100});
    const SiteId b = t.add_site("B", LinkParams{.latency = 100});
    t.set_link(a, b, LinkParams{.latency = 1000});
    return t;
}

// -- fault injection at the network layer --------------------------------------

struct GrayNet : ::testing::Test {
    Scheduler scheduler;
};

TEST_F(GrayNet, CpuSlowdownScalesSubsequentWork) {
    Network net(scheduler, two_site_topology(), 1);
    const NodeId n = net.add_node(SiteId(0));
    net.set_cpu_slowdown(n, 4.0);
    SimTime done = -1;
    scheduler.schedule_at(1000, [&] {
        net.node(n).cpu().execute(10'000, [&] { done = scheduler.now(); });
    });
    scheduler.run();
    EXPECT_EQ(done, 1000 + 40'000);
}

TEST_F(GrayNet, CpuSlowdownSurvivesRestart) {
    Network net(scheduler, two_site_topology(), 1);
    const NodeId n = net.add_node(SiteId(0));
    net.set_cpu_slowdown(n, 4.0);
    scheduler.schedule_at(10'000, [&] { net.crash(n); });
    scheduler.schedule_at(20'000, [&] { net.restart(n, 80'000); });
    SimTime done = -1;
    scheduler.schedule_at(200'000, [&] {
        net.node(n).cpu().execute(10'000, [&] { done = scheduler.now(); });
    });
    scheduler.run();
    // Slowness is a property of the host, not the process: the restarted
    // node still runs 4x slow.
    EXPECT_EQ(done, 200'000 + 40'000);
}

TEST_F(GrayNet, LinkDegradeAddsLatencyAndClears) {
    Network net(scheduler, two_site_topology(), 1);
    const NodeId a = net.add_node(SiteId(0));
    const NodeId b = net.add_node(SiteId(1));
    std::vector<SimTime> arrivals;
    net.node(b).set_receiver([&](NodeId, const Bytes&) { arrivals.push_back(scheduler.now()); });

    net.set_link_degrade(SiteId(0), SiteId(1), LinkDegrade{.extra_latency = 2000});
    scheduler.schedule_at(0, [&] { net.send(a, b, Bytes{1}); });
    scheduler.schedule_at(10'000, [&] { net.clear_link_degrade(SiteId(0), SiteId(1)); });
    scheduler.schedule_at(10'000, [&] { net.send(a, b, Bytes{2}); });
    scheduler.run();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[0], 3000);    // 1000 wan + 2000 degrade
    EXPECT_EQ(arrivals[1], 11'000);  // back to nominal
}

TEST_F(GrayNet, LinkDegradeExtraLossDropsTraffic) {
    Network net(scheduler, two_site_topology(), 1);
    const NodeId a = net.add_node(SiteId(0));
    const NodeId b = net.add_node(SiteId(1));
    int delivered = 0;
    net.node(b).set_receiver([&](NodeId, const Bytes&) { ++delivered; });
    net.set_link_degrade(SiteId(0), SiteId(1), LinkDegrade{.extra_loss = 1.0});
    for (int i = 0; i < 10; ++i) net.send(a, b, Bytes{1});
    scheduler.run();
    EXPECT_EQ(delivered, 0);
}

TEST_F(GrayNet, LinkDegradeBandwidthFactorStretchesSerialization) {
    Topology t;
    t.add_site("A", LinkParams{.latency = 100, .bytes_per_us = 2.0});
    Network net(scheduler, std::move(t), 1);
    const NodeId a = net.add_node(SiteId(0));
    const NodeId b = net.add_node(SiteId(0));
    SimTime arrived = -1;
    net.node(b).set_receiver([&](NodeId, const Bytes&) { arrived = scheduler.now(); });
    // a == b degrades the intra-site LAN; half bandwidth doubles the
    // 1000-byte serialization delay from 500us to 1000us.
    net.set_link_degrade(SiteId(0), SiteId(0), LinkDegrade{.bandwidth_factor = 0.5});
    net.send(a, b, Bytes(1000, 0));
    scheduler.run();
    EXPECT_EQ(arrived, 100 + 1000);
}

TEST_F(GrayNet, PerLinkExtraLossIsScopedToTheLink) {
    Network net(scheduler, two_site_topology(), 1);
    const NodeId a = net.add_node(SiteId(0));
    const NodeId b = net.add_node(SiteId(1));
    const NodeId c = net.add_node(SiteId(0));
    int cross = 0;
    int local = 0;
    net.node(b).set_receiver([&](NodeId, const Bytes&) { ++cross; });
    net.node(c).set_receiver([&](NodeId, const Bytes&) { ++local; });
    net.set_extra_loss(SiteId(0), SiteId(1), 1.0);
    for (int i = 0; i < 5; ++i) {
        net.send(a, b, Bytes{1});
        net.send(a, c, Bytes{1});
    }
    scheduler.run();
    EXPECT_EQ(cross, 0);  // degraded link drops everything
    EXPECT_EQ(local, 5);  // intra-site link untouched
    net.set_extra_loss(SiteId(0), SiteId(1), 0.0);
    net.send(a, b, Bytes{1});
    scheduler.run();
    EXPECT_EQ(cross, 1);  // zero loss clears the overlay
}

TEST_F(GrayNet, FlapScheduleTogglesAndEndsConnected) {
    Network net(scheduler, two_site_topology(), 1);
    const NodeId a = net.add_node(SiteId(0));
    const NodeId b = net.add_node(SiteId(1));
    std::vector<SimTime> arrivals;
    net.node(b).set_receiver([&](NodeId, const Bytes&) { arrivals.push_back(scheduler.now()); });
    // Isolated [1s, 1.5s) and [2s, 2.5s); joined in between and after.
    net.schedule_flap(SiteId(1), 1'000'000, /*cycles=*/2, /*isolated_for=*/500'000,
                      /*joined_for=*/500'000, /*cell=*/3);
    for (const SimTime at : {1'200'000, 1'700'000, 2'200'000, 2'700'000, 3'500'000}) {
        scheduler.schedule_at(at, [&net, a, b] { net.send(a, b, Bytes{1}); });
    }
    scheduler.run();
    ASSERT_EQ(arrivals.size(), 3u);
    EXPECT_EQ(arrivals[0], 1'701'000);
    EXPECT_EQ(arrivals[1], 2'701'000);
    EXPECT_EQ(arrivals[2], 3'501'000);
}

// -- the φ-accrual detector under gray conditions ------------------------------

/// A small GCS world with a trace sink, for detector observations.
struct DetectorWorld {
    explicit DetectorWorld(std::uint64_t seed = 7)
        : net(scheduler, calibration::make_lan_topology(), seed) {
        net.metrics().set_trace_sink(&sink);
    }

    std::size_t add() {
        nodes.push_back(net.add_node(SiteId(0)));
        orbs.push_back(std::make_unique<Orb>(net, nodes.back()));
        endpoints.push_back(std::make_unique<GroupCommEndpoint>(*orbs.back(), directory));
        return endpoints.size() - 1;
    }

    GroupCommEndpoint& ep(std::size_t i) { return *endpoints[i]; }
    void run_for(SimDuration d) { scheduler.run_until(scheduler.now() + d); }

    [[nodiscard]] std::size_t suspicions_of(EndpointId suspect) const {
        std::size_t n = 0;
        for (const obs::TraceEvent& e : sink.events()) {
            if (e.kind == obs::TraceKind::kSuspected && e.detail == suspect.value()) ++n;
        }
        return n;
    }

    Scheduler scheduler;
    Network net;
    obs::VectorTraceSink sink;
    Directory directory;
    std::vector<NodeId> nodes;
    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<GroupCommEndpoint>> endpoints;
};

GroupConfig lively_config(std::uint64_t phi_threshold_milli) {
    GroupConfig cfg;
    cfg.order = OrderMode::kTotalSymmetric;
    cfg.liveness = LivenessMode::kLively;
    cfg.phi_threshold_milli = phi_threshold_milli;
    return cfg;
}

/// Build a settled 3-member lively group, then run a ramp of CPU bursts on
/// member c's host with the host slowed 2x, so single busy periods grow
/// from 80ms to 480ms — past the 200ms fixed suspicion timeout but along a
/// history an accrual detector tracks.  Returns suspicions of c.
std::size_t slow_member_suspicions(std::uint64_t phi_threshold_milli, bool* c_in_view) {
    DetectorWorld world;
    const auto a = world.add();
    const auto b = world.add();
    const auto c = world.add();
    const GroupId g = world.ep(a).create_group("g", lively_config(phi_threshold_milli));
    world.ep(b).join_group("g");
    world.ep(c).join_group("g");
    world.run_for(1_s);

    world.net.set_cpu_slowdown(world.nodes[c], 2.0);
    const SimTime base = world.scheduler.now();
    for (int k = 0; k < 11; ++k) {
        const SimDuration nominal = 40_ms + static_cast<SimDuration>(k) * 20_ms;
        world.scheduler.schedule_at(base + static_cast<SimTime>(k) * 600_ms, [&world, c,
                                                                              nominal] {
            world.net.node(world.nodes[c]).cpu().execute(nominal, [] {});
        });
    }
    world.run_for(11 * 600_ms + 2_s);

    const View* view = world.ep(a).current_view(g);
    *c_in_view = view != nullptr && view->contains(world.ep(c).id());
    return world.suspicions_of(world.ep(c).id());
}

TEST(GrayDetector, SlowButAliveMemberNotSuspectedUnderPhi) {
    bool c_in_view = false;
    EXPECT_EQ(slow_member_suspicions(8000, &c_in_view), 0u);
    EXPECT_TRUE(c_in_view);
}

TEST(GrayDetector, FixedTimeoutFalselySuspectsTheSameSlowMember) {
    // The identical workload under the paper's fixed-timeout detector
    // (phi_threshold_milli = 0): the 2x-slowed bursts exceed the 200ms
    // suspicion timeout and the alive member is suspected.
    bool c_in_view = false;
    EXPECT_GT(slow_member_suspicions(0, &c_in_view), 0u);
}

/// Crash a healthy member of a settled group and measure the silence until
/// the first survivor suspicion.
SimDuration crash_detection_latency(std::uint64_t phi_threshold_milli) {
    DetectorWorld world;
    const auto a = world.add();
    const auto b = world.add();
    const auto c = world.add();
    world.ep(a).create_group("g", lively_config(phi_threshold_milli));
    world.ep(b).join_group("g");
    world.ep(c).join_group("g");
    world.run_for(2500_ms);

    const SimTime crash_at = world.scheduler.now();
    world.net.crash(world.nodes[c]);
    world.run_for(3_s);

    for (const obs::TraceEvent& e : world.sink.events()) {
        if (e.kind == obs::TraceKind::kSuspected && e.detail == world.ep(c).id().value() &&
            e.at >= crash_at) {
            return e.at - crash_at;
        }
    }
    return -1;
}

TEST(GrayDetector, CrashDetectionNoSlowerThanFixedTimeout) {
    // The fixed suspicion_timeout is the accrual detector's *floor*: a
    // genuinely crashed member must not be detected any later than the
    // paper's original detector would.
    const SimDuration with_phi = crash_detection_latency(8000);
    const SimDuration fixed = crash_detection_latency(0);
    ASSERT_GE(with_phi, 0);
    ASSERT_GE(fixed, 0);
    EXPECT_LE(with_phi, fixed);
}

TEST(GrayDetector, ConfigValidationRejectsTimeoutInversion) {
    DetectorWorld world;
    const auto a = world.add();
    GroupConfig bad;
    bad.view_change_timeout = bad.suspicion_timeout;  // must be strictly greater
    EXPECT_THROW(world.ep(a).create_group("bad", bad), PreconditionError);

    const GroupId g = world.ep(a).create_group("good", lively_config(8000));
    world.run_for(100_ms);
    EXPECT_THROW(world.ep(a).reconfigure(g, bad), PreconditionError);
}

// -- deadline shedding ---------------------------------------------------------

/// Servant with a fixed, large execution cost so a slowed host turns one
/// call into seconds of CPU.
class CostlyServant : public GroupServant {
public:
    Bytes handle(std::uint32_t, const Bytes&) override { return Bytes{1}; }
    [[nodiscard]] SimDuration execution_cost(std::uint32_t) const override { return 100_ms; }
};

TEST(GrayShedding, ExpiredCallsAreShedOnASlowedServer) {
    Scheduler scheduler;
    Network net(scheduler, calibration::make_lan_topology(), 3);
    Directory directory;
    obs::VectorTraceSink sink;
    net.metrics().set_trace_sink(&sink);

    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<NewTopService>> nsos;
    auto add = [&]() -> NewTopService& {
        orbs.push_back(std::make_unique<Orb>(net, net.add_node(SiteId(0))));
        nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
        return *nsos.back();
    };

    NewTopService& server = add();
    server.serve("svc", GroupConfig{.order = OrderMode::kTotalAsymmetric},
                 std::make_shared<CostlyServant>());
    scheduler.run_until(scheduler.now() + 1_s);
    NewTopService& client = add();
    GroupProxy proxy = client.bind("svc", {.mode = BindMode::kOpen, .call_timeout = 500_ms});
    scheduler.run_until(scheduler.now() + 2_s);

    // 50x slowdown turns the 100ms servant cost into 5s — far past the
    // client's 500ms deadline, so the execution-time shed gate fires.
    net.set_cpu_slowdown(orbs[0]->node_id(), 50.0);
    bool completed = true;
    proxy.invoke(1, Bytes{}, InvocationMode::kWaitFirst,
                 [&](const GroupReply& reply) { completed = reply.complete; });
    scheduler.run_until(scheduler.now() + 10_s);

    EXPECT_FALSE(completed);  // the client gave up at its call_timeout
    EXPECT_GE(net.metrics().counter(obs::metric::kInvShed), 1u);
    EXPECT_GE(sink.count(obs::TraceKind::kRequestShed), 1u);
}

// -- client rebind backoff (PR 5) ----------------------------------------------

/// Run a client whose only server crashes and is evicted from the
/// directory, then sample the invocation.backoffs counter every 10ms and
/// return the sim time of each backoff round.
std::vector<SimTime> backoff_round_times(std::uint64_t seed) {
    Scheduler scheduler;
    Network net(scheduler, calibration::make_lan_topology(), seed);
    Directory directory;

    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<NewTopService>> nsos;
    auto add = [&]() -> NewTopService& {
        orbs.push_back(std::make_unique<Orb>(net, net.add_node(SiteId(0))));
        nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
        return *nsos.back();
    };

    NewTopService& server = add();
    server.serve("svc", GroupConfig{.order = OrderMode::kTotalAsymmetric},
                 std::make_shared<CostlyServant>());
    scheduler.run_until(scheduler.now() + 1_s);
    NewTopService& client = add();
    GroupProxy proxy = client.bind("svc", {.mode = BindMode::kOpen, .call_timeout = 500_ms});
    scheduler.run_until(scheduler.now() + 2_s);

    net.crash(orbs[0]->node_id());
    directory.evict_endpoint(server.id());
    // One failing call kicks the binding into the rebind path; with every
    // candidate defunct it then backs off autonomously.
    proxy.invoke(1, Bytes{}, InvocationMode::kWaitFirst, [](const GroupReply&) {});

    std::vector<SimTime> rounds;
    std::uint64_t seen = 0;
    const SimTime base = scheduler.now();
    for (SimTime t = base; t <= base + 40_s; t += 10_ms) {
        scheduler.schedule_at(t, [&net, &rounds, &seen, &scheduler] {
            const std::uint64_t now_count = net.metrics().counter(obs::metric::kInvBackoffs);
            while (seen < now_count) {
                rounds.push_back(scheduler.now());
                ++seen;
            }
        });
    }
    scheduler.run_until(base + 41_s);
    return rounds;
}

TEST(GrayBackoff, RebindBackoffDoublesAndCapsAtFourSeconds) {
    const std::vector<SimTime> rounds = backoff_round_times(11);
    ASSERT_GE(rounds.size(), 7u);
    // Expected delay of round i: min(4s, 250ms << i) plus jitter of at
    // most a quarter of the base; the 10ms sampling adds slack on top.
    const SimDuration bases[] = {250_ms, 500_ms, 1_s, 2_s};
    for (std::size_t i = 0; i + 1 < rounds.size(); ++i) {
        const SimDuration gap = rounds[i + 1] - rounds[i];
        const SimDuration base = i < 4 ? bases[i] : 4_s;
        EXPECT_GE(gap, base) << "round " << i;
        EXPECT_LE(gap, base + base / 4 + 20_ms) << "round " << i;
    }
}

TEST(GrayBackoff, BackoffScheduleIsDeterministic) {
    EXPECT_EQ(backoff_round_times(11), backoff_round_times(11));
}

}  // namespace
}  // namespace newtop
