// Fixture: the same width asymmetry as codec_width.cpp, but with a reasoned
// suppression on the diverging decode op.  Must produce no findings.
namespace newtop {

struct WireSupp {
    std::uint64_t id;
    std::uint32_t x;
};

void encode(Encoder& e, const WireSupp& v) {
    e.put_u64(v.id);
    e.put_u32(v.x);
}
void decode(Decoder& d, WireSupp& v) {
    v.id = d.get_u64();
    // newtop-lint: allow(codec-symmetry): upper half of x reserved since v0; peers always send zeros
    v.x = d.get_u16();
}

}  // namespace newtop
