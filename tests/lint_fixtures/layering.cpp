// Lint fixture: must trigger `layer-dag` exactly once when scanned as a
// src/sim/ path (sim may not reach up into the ORB).  Never compiled.
#include "orb/orb.hpp"
#include "util/check.hpp"

namespace fixture {

void poke_orb() {}

}  // namespace fixture
