// Lint fixture: must trigger `raw-random` exactly once.  Never compiled.
#include <random>

namespace fixture {

int roll() {
    std::mt19937 gen(42);
    return static_cast<int>(gen() % 6U) + 1;
}

}  // namespace fixture
