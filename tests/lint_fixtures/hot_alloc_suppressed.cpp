// Fixture: un-reserved growth with a reasoned bound.  Must produce no
// findings: the suppression names the rule and carries a reason.
namespace newtop {

void recycle(std::vector<int>& pool, int v) {
    if (pool.size() >= 16) return;
    // newtop-lint: allow(hot-path-alloc): pool bounded at 16 entries; growth stops after warm-up
    pool.push_back(v);
}

}  // namespace newtop
