// Lint fixture: must pass every rule when scanned as a src/sim/ path.
// Deterministic containers, seeded randomness, sim time only.  Never compiled.
#include <map>
#include <set>
#include <vector>

#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace fixture {

struct Ledger {
    std::map<unsigned long long, double> totals;
    std::set<unsigned long long> seen;
};

double jittered(double base, unsigned long long seed) {
    newtop::Rng rng(seed);
    return base * (0.9 + 0.2 * rng.next_double());
}

}  // namespace fixture
