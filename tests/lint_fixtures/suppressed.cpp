// Lint fixture: a violation silenced by a well-formed suppression comment;
// must produce zero findings.  Never compiled.
namespace fixture {

struct LookupCache {
    // newtop-lint: allow(unordered-container): lookup-only table, never iterated; order cannot escape
    std::unordered_map<unsigned long long, int> by_id;

    int find(unsigned long long id) const {
        const auto it = by_id.find(id);
        return it == by_id.end() ? -1 : it->second;
    }
};

}  // namespace fixture
