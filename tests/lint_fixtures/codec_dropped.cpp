// Fixture: seeded mutation — decode silently drops the trailing field.
// Must fire codec-symmetry (op-count mismatch) and struct-coverage (decode
// never touches the declared field 'tag').
namespace newtop {

struct WireDrop {
    std::uint64_t id;
    std::uint32_t x;
    std::uint8_t tag;
};

void encode(Encoder& e, const WireDrop& v) {
    e.put_u64(v.id);
    e.put_u32(v.x);
    e.put_u8(v.tag);
}
void decode(Decoder& d, WireDrop& v) {
    v.id = d.get_u64();
    v.x = d.get_u32();
}

}  // namespace newtop
