// Lint fixture: must trigger `float-sim` exactly once when scanned as a
// src/ path.  Never compiled.
namespace fixture {

double utilisation(long long busy_us, long long total_us) {
    const float ratio = static_cast<double>(busy_us) / static_cast<double>(total_us);
    return ratio;  // silent double -> float -> double round trip
}

}  // namespace fixture
