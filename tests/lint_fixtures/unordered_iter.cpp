// Lint fixture: must trigger `unordered-container` exactly once when scanned
// as a protocol/trace-visible path.  Never compiled.
namespace fixture {

struct Registry {
    std::unordered_map<int, int> by_hash;  // the violation: layout-ordered
};

int sum_all(const Registry& reg) {
    int total = 0;
    // The iteration below is what actually leaks hash layout into whatever
    // the caller does with `total`-adjacent side effects; the declaration
    // above is where the rule anchors.
    for (const auto& [key, value] : reg.by_hash) total += value;
    return total;
}

}  // namespace fixture
