// Lint fixture: must trigger `pointer-key` exactly once.  Never compiled.
#include <map>

namespace fixture {

struct Session {};

struct Tracker {
    // Ordered by allocation address, i.e. not ordered at all across runs.
    std::map<const Session*, int> refcounts;
};

}  // namespace fixture
