// Fixture: seeded mutation — decode narrows a field's wire width (u32 write,
// u16 read).  Must fire codec-symmetry exactly once; struct-coverage stays
// quiet because the field names and order still match.
namespace newtop {

struct WireWidth {
    std::uint64_t id;
    std::uint32_t x;
};

void encode(Encoder& e, const WireWidth& v) {
    e.put_u64(v.id);
    e.put_u32(v.x);
}
void decode(Decoder& d, WireWidth& v) {
    v.id = d.get_u64();
    v.x = d.get_u16();
}

}  // namespace newtop
