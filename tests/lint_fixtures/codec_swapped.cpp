// Fixture: seeded mutation — decode reads the first two fields in swapped
// order.  Must fire codec-symmetry (op #1 diverges) and struct-coverage
// (decode touches fields out of declaration order).
namespace newtop {

struct WireSwap {
    std::uint64_t id;
    std::uint32_t x;
    std::uint8_t tag;
};

void encode(Encoder& e, const WireSwap& v) {
    e.put_u64(v.id);
    e.put_u32(v.x);
    e.put_u8(v.tag);
}
void decode(Decoder& d, WireSwap& v) {
    v.x = d.get_u32();
    v.id = d.get_u64();
    v.tag = d.get_u8();
}

}  // namespace newtop
