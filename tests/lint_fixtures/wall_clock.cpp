// Lint fixture: must trigger `wall-clock` exactly once.  Never compiled.
#include <chrono>

namespace fixture {

long long now_us() {
    const auto t = std::chrono::system_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::microseconds>(t).count();
}

}  // namespace fixture
