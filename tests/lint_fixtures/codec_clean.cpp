// Fixture: a symmetric wire codec pair, exercising the nested-struct op and
// the validated-cast decode idiom.  Must produce no findings.
namespace newtop {

struct SpanStub {
    std::uint64_t trace;
};

struct WirePoint {
    std::uint64_t id;
    std::uint8_t kind;
    SpanStub span;
    std::uint32_t x;
};

void encode(Encoder& e, const SpanStub& v) { e.put_u64(v.trace); }
void decode(Decoder& d, SpanStub& v) { v.trace = d.get_u64(); }

void encode(Encoder& e, const WirePoint& v) {
    e.put_u64(v.id);
    e.put_u8(static_cast<std::uint8_t>(v.kind));
    encode(e, v.span);
    e.put_u32(v.x);
}
void decode(Decoder& d, WirePoint& v) {
    v.id = d.get_u64();
    const std::uint8_t kind = d.get_u8();
    v.kind = validate(kind);
    decode(d, v.span);
    v.x = d.get_u32();
}

}  // namespace newtop
