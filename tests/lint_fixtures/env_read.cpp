// Lint fixture: must trigger `getenv` exactly once.  Never compiled.
#include <cstdlib>

namespace fixture {

const char* home_dir() { return std::getenv("HOME"); }

}  // namespace fixture
