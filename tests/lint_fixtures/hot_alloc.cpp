// Fixture: every allocating construct hot-path-alloc bans, one per line.
// Scanned as a hot-path file this must yield exactly five findings.
namespace newtop {

void hot(std::vector<int>& out, const char* s) {
    int* p = new int(7);
    auto u = std::make_unique<int>(9);
    std::function<void()> cb;
    std::string copy = s;
    out.push_back(*p);
}

}  // namespace newtop
