// Lint fixture: must trigger `metric-name` exactly once.  Never compiled.

namespace fixture {

struct FakeRegistry {
    void add(const char*) {}
};

void bump(FakeRegistry& metrics) { metrics.add("gcs.delivered"); }

// Non-metric literals with dots must not fire.
const char* version() { return "release.notes"; }

}  // namespace fixture
