// Lint fixture: a suppression without the mandatory reason string; must
// produce a `bad-suppression` finding AND leave the original violation
// unsuppressed.  Never compiled.
namespace fixture {

struct LookupCache {
    // newtop-lint: allow(unordered-container)
    std::unordered_map<unsigned long long, int> by_id;
};

}  // namespace fixture
