// Fixture: hot-path-friendly code — pre-sized growth, borrowed strings.
// Must produce no findings even inside a hot-path region.
namespace newtop {

void warm(std::vector<int>& out, std::string_view s, const std::string& name) {
    out.reserve(out.size() + 4);
    for (int i = 0; i < 4; ++i) {
        out.push_back(i);
    }
}

}  // namespace newtop
