#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/strong_id.hpp"

namespace newtop {
namespace {

struct FooTag {};
struct BarTag {};
using FooId = StrongId<FooTag, std::uint32_t>;
using BarId = StrongId<BarTag, std::uint32_t>;

TEST(StrongId, DefaultsToZero) {
    FooId id;
    EXPECT_EQ(id.value(), 0u);
}

TEST(StrongId, OrderingFollowsValue) {
    EXPECT_LT(FooId(1), FooId(2));
    EXPECT_EQ(FooId(7), FooId(7));
    EXPECT_NE(FooId(7), FooId(8));
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
    static_assert(!std::is_same_v<FooId, BarId>);
    static_assert(!std::is_convertible_v<FooId, BarId>);
}

TEST(StrongId, HashableInUnorderedContainers) {
    std::unordered_set<FooId> ids{FooId(1), FooId(2), FooId(1)};
    EXPECT_EQ(ids.size(), 2u);
}

TEST(StrongId, UsableInOrderedContainers) {
    std::set<FooId> ids{FooId(3), FooId(1), FooId(2)};
    EXPECT_EQ(ids.begin()->value(), 1u);
}

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    bool diverged = false;
    for (int i = 0; i < 10 && !diverged; ++i) diverged = a.next_u64() != b.next_u64();
    EXPECT_TRUE(diverged);
}

TEST(Rng, DoubleIsInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, NextInRespectsBounds) {
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.next_in(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, NextInSingletonRange) {
    Rng rng(3);
    EXPECT_EQ(rng.next_in(4, 4), 4u);
}

TEST(Rng, NextInSignedCoversNegatives) {
    Rng rng(5);
    bool saw_negative = false;
    for (int i = 0; i < 200; ++i) {
        const auto v = rng.next_in_signed(-10, 10);
        EXPECT_GE(v, -10);
        EXPECT_LE(v, 10);
        saw_negative |= v < 0;
    }
    EXPECT_TRUE(saw_negative);
}

TEST(Rng, EmptyRangeThrows) {
    Rng rng(1);
    EXPECT_THROW(rng.next_in(5, 4), PreconditionError);
}

TEST(Rng, BoolProbabilityExtremes) {
    Rng rng(9);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.next_bool(0.0));
        EXPECT_TRUE(rng.next_bool(1.0));
    }
}

TEST(Rng, BoolProbabilityRoughlyCalibrated) {
    Rng rng(13);
    int hits = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, SplitProducesIndependentStream) {
    Rng parent(21);
    Rng child = parent.split();
    // The child stream should not replay the parent stream.
    Rng parent_copy(21);
    parent_copy.next_u64();  // advance past the split draw
    EXPECT_NE(child.next_u64(), parent_copy.next_u64());
}

// -- statistical checks (the fuzzer's generator leans on these) -------------

TEST(Rng, NextInCoversTheWholeRangeRoughlyUniformly) {
    Rng rng(101);
    constexpr std::uint64_t kBuckets = 10;
    constexpr int kDraws = 20000;
    int counts[kBuckets] = {};
    for (int i = 0; i < kDraws; ++i) ++counts[rng.next_in(0, kBuckets - 1)];
    const double expected = static_cast<double>(kDraws) / kBuckets;
    for (std::uint64_t b = 0; b < kBuckets; ++b) {
        EXPECT_GT(counts[b], 0) << "bucket " << b << " never hit";
        // 5 sigma of a binomial(kDraws, 1/kBuckets) is ~212 here; a correct
        // generator essentially never trips a +/-15% band at n=20000.
        EXPECT_NEAR(static_cast<double>(counts[b]), expected, expected * 0.15)
            << "bucket " << b;
    }
}

TEST(Rng, NextBoolFrequencyTracksProbability) {
    for (const double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
        Rng rng(static_cast<std::uint64_t>(p * 1000) + 7);
        const int n = 20000;
        int hits = 0;
        for (int i = 0; i < n; ++i) hits += rng.next_bool(p) ? 1 : 0;
        // 5 sigma of binomial(n, p) at n=20000 stays under 0.018 for all p.
        EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.02) << "p=" << p;
    }
}

TEST(Rng, SplitStreamsAreStatisticallyIndependent) {
    // Sibling streams split from one parent must neither collide nor
    // correlate: pairwise-equal draws at the same index would show the
    // split just cloned or lock-stepped the state.
    Rng parent(77);
    Rng a = parent.split();
    Rng b = parent.split();
    int equal = 0;
    int bit_agreements = 0;
    const int n = 4096;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t x = a.next_u64();
        const std::uint64_t y = b.next_u64();
        equal += x == y ? 1 : 0;
        bit_agreements += (x & 1) == (y & 1) ? 1 : 0;
    }
    EXPECT_EQ(equal, 0);
    // Low bits of independent streams agree about half the time.
    EXPECT_NEAR(static_cast<double>(bit_agreements) / n, 0.5, 0.05);
}

TEST(Rng, SplitChildDoesNotPerturbParentDeterminism) {
    // Two parents from one seed, one of which splits a child mid-stream:
    // the split consumes exactly one parent draw, nothing else.
    Rng plain(55);
    Rng splitting(55);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(plain.next_u64(), splitting.next_u64());
    (void)splitting.split();
    (void)plain.next_u64();  // account for the split's single draw
    for (int i = 0; i < 10; ++i) EXPECT_EQ(plain.next_u64(), splitting.next_u64());
}

TEST(Check, ExpectsThrowsPreconditionError) {
    EXPECT_THROW(NEWTOP_EXPECTS(false, "must hold"), PreconditionError);
    EXPECT_NO_THROW(NEWTOP_EXPECTS(true, "must hold"));
}

TEST(Check, EnsuresThrowsInvariantError) {
    EXPECT_THROW(NEWTOP_ENSURES(false, "broken"), InvariantError);
    EXPECT_NO_THROW(NEWTOP_ENSURES(true, "fine"));
}

TEST(Check, MessagesMentionExpressionAndReason) {
    try {
        NEWTOP_EXPECTS(1 == 2, "numbers disagree");
        FAIL() << "should have thrown";
    } catch (const PreconditionError& err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("1 == 2"), std::string::npos);
        EXPECT_NE(what.find("numbers disagree"), std::string::npos);
    }
}

}  // namespace
}  // namespace newtop
