// Tier-1 tests for the crash-recovery subsystem: restartable nodes with
// incarnation-stamped delivery, double-fault guards, directory eviction of
// suspected endpoints, tunable invite timeouts, the RecoveryManager's
// end-to-end restart -> re-register -> rejoin -> resync pipeline, and
// client bindings healing through backoff after whole-group death.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/calibration.hpp"
#include "newtop/recovery_manager.hpp"
#include "replication/recoverable.hpp"
#include "util/check.hpp"

namespace newtop {
namespace {

using namespace sim_literals;

constexpr std::uint32_t kGet = 1;
constexpr std::uint32_t kAppend = 2;

class RegisterServant : public StatefulServant {
public:
    Bytes handle(std::uint32_t method, const Bytes& args) override {
        switch (method) {
            case kGet: return encode_to_bytes(contents_);
            case kAppend:
                ++executions;
                contents_ += decode_from_bytes<std::string>(args);
                return encode_to_bytes(contents_);
            default: throw ServantError("no such method");
        }
    }

    [[nodiscard]] Bytes snapshot() const override { return encode_to_bytes(contents_); }
    void restore(const Bytes& snapshot) override {
        contents_ = decode_from_bytes<std::string>(snapshot);
    }

    [[nodiscard]] const std::string& contents() const { return contents_; }
    int executions{0};

private:
    std::string contents_;
};

class EchoGroupServant : public GroupServant {
public:
    Bytes handle(std::uint32_t, const Bytes& args) override { return args; }
};

struct RecWorld {
    RecWorld() : net(scheduler, calibration::make_lan_topology(), 99) {}

    std::size_t add_nso(int site = 0) {
        const NodeId node = net.add_node(SiteId(static_cast<SiteId::rep_type>(site)));
        orbs.push_back(std::make_unique<Orb>(net, node));
        nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
        return nsos.size() - 1;
    }

    NewTopService& nso(std::size_t i) { return *nsos[i]; }
    void run_for(SimDuration d) { scheduler.run_until(scheduler.now() + d); }

    GroupReply call(GroupProxy& proxy, std::uint32_t method, Bytes args, InvocationMode mode,
                    SimDuration budget = 5_s) {
        GroupReply out;
        bool done = false;
        proxy.invoke(method, std::move(args), mode, [&](const GroupReply& r) {
            out = r;
            done = true;
        });
        run_for(budget);
        EXPECT_TRUE(done) << "call did not complete";
        return out;
    }

    Scheduler scheduler;
    Network net;
    Directory directory;
    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<NewTopService>> nsos;
};

GroupConfig lively_config(OrderMode order = OrderMode::kTotalAsymmetric) {
    GroupConfig cfg;
    cfg.order = order;
    cfg.liveness = LivenessMode::kLively;
    return cfg;
}

/// A RecoveryManager generation factory for an actively-replicated register
/// that records every servant it creates (one per life of the process).
RecoveryManager::GenerationFactory recorded_active_factory(
    std::string service, GroupConfig config,
    std::shared_ptr<std::vector<std::shared_ptr<RegisterServant>>> lives) {
    return make_active_generation(std::move(service), config, [lives] {
        auto servant = std::make_shared<RegisterServant>();
        lives->push_back(servant);
        return servant;
    });
}

// -- node restart / incarnations -----------------------------------------------------

TEST(NodeRestart, BumpsIncarnationAndRevivesTheCpu) {
    RecWorld world;
    const NodeId n = world.net.add_node(SiteId(0));
    Node& node = world.net.node(n);

    int ran = 0;
    node.cpu().execute(10, [&] { ++ran; });
    world.run_for(1_ms);
    ASSERT_EQ(ran, 1);
    EXPECT_EQ(node.incarnation(), 0u);

    // Work queued at crash time is suppressed; a dead CPU runs nothing.
    node.cpu().execute(10, [&] { ++ran; });
    world.net.crash(n);
    EXPECT_TRUE(node.crashed());
    node.cpu().execute(10, [&] { ++ran; });
    world.run_for(1_ms);
    EXPECT_EQ(ran, 1);

    world.net.restart(n, 100_ms);
    world.run_for(200_ms);
    EXPECT_FALSE(node.crashed());
    EXPECT_EQ(node.incarnation(), 1u);
    node.cpu().execute(10, [&] { ++ran; });
    world.run_for(1_ms);
    EXPECT_EQ(ran, 2);
}

TEST(NodeRestart, InFlightDeliveryToTheOldIncarnationIsDropped) {
    RecWorld world;
    const NodeId a = world.net.add_node(SiteId(0));
    const NodeId b = world.net.add_node(SiteId(0));
    int delivered = 0;
    world.net.node(b).set_receiver([&](NodeId, const Bytes&) { ++delivered; });

    // The message is stamped with b's incarnation at send time.  b dies and
    // is reborn before it arrives; the delivery addressed to the old life
    // must be dropped, not handed to the new process.
    world.net.send(a, b, Bytes{1, 2, 3});
    world.net.crash(b);
    world.net.restart(b, 0);
    world.run_for(10_ms);

    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(world.net.metrics().counter("net.stale_incarnation_drops"), 1u);
    EXPECT_EQ(world.net.node(b).incarnation(), 1u);
}

TEST(NodeRestart, DoubleFaultsAreDeterministicNoOps) {
    RecWorld world;
    const NodeId n = world.net.add_node(SiteId(0));

    // Restarting a live node: the timer fires, finds the node up, no-ops.
    world.net.restart(n, 1_ms);
    world.run_for(10_ms);
    EXPECT_FALSE(world.net.node(n).crashed());
    EXPECT_EQ(world.net.metrics().counter("net.restart_ignored"), 1u);
    EXPECT_EQ(world.net.node(n).incarnation(), 0u);

    // Crashing a crashed node.
    world.net.crash(n);
    world.net.crash(n);
    EXPECT_EQ(world.net.metrics().counter("net.crash_ignored"), 1u);

    world.net.restart(n, 1_ms);
    world.run_for(10_ms);
    EXPECT_EQ(world.net.node(n).incarnation(), 1u);
}

// -- directory eviction (regression: stale registrations on suspicion) -----------------

TEST(Directory, ViewChangeEvictsSuspectedMembersRegistrations) {
    RecWorld world;
    const auto s0 = world.add_nso();
    const auto s1 = world.add_nso();
    world.nso(s0).serve("reg", lively_config(), std::make_shared<EchoGroupServant>());
    world.nso(s1).serve("reg", lively_config(), std::make_shared<EchoGroupServant>());
    world.run_for(1_s);
    const EndpointId dead = world.nso(s1).id();
    ASSERT_FALSE(world.directory.known_defunct(dead));

    // s1 dies; the survivor's failure detector must remove it from the view
    // AND tombstone its directory registrations, so rebinding clients stop
    // selecting a dead request manager.
    world.net.crash(world.orbs[s1]->node_id());
    world.run_for(3_s);
    EXPECT_TRUE(world.directory.known_defunct(dead));
    EXPECT_GE(world.net.metrics().counter("directory.evictions"), 1u);
}

// -- invite timeout is tunable (was a hardcoded 3 s constant) --------------------------

TEST(BindOptions, InviteTimeoutControlsDeadManagerFailover) {
    // The server group is event-driven and quiet, so nobody suspects the
    // dead leader and the directory keeps listing it: the client's invite
    // timeout is the only thing that unsticks the bind.  A short timeout
    // must fail over to the live replica much sooner than the 3 s default.
    // Completion beats the respective invite timeout budget: with 400 ms the
    // failover happens inside 2 s; with the 3 s default it cannot.
    auto completes_within = [](SimDuration invite_timeout, SimDuration budget) {
        RecWorld world;
        const auto s0 = world.add_nso();
        const auto s1 = world.add_nso();
        GroupConfig cfg;
        cfg.order = OrderMode::kTotalAsymmetric;
        world.nso(s0).serve("svc", cfg, std::make_shared<EchoGroupServant>());
        world.nso(s1).serve("svc", cfg, std::make_shared<EchoGroupServant>());
        world.run_for(1_s);
        world.net.crash(world.orbs[s0]->node_id());
        world.run_for(10_ms);

        const auto c = world.add_nso();
        BindOptions options;
        options.mode = BindMode::kOpen;
        options.invite_timeout = invite_timeout;
        GroupProxy proxy = world.nso(c).bind("svc", options);
        bool done = false;
        proxy.invoke(kGet, {}, InvocationMode::kWaitFirst,
                     [&](const GroupReply& r) { done = r.complete; });
        world.run_for(budget);
        return done;
    };
    EXPECT_TRUE(completes_within(400_ms, 2_s));
    EXPECT_FALSE(completes_within(BindOptions{}.invite_timeout, 2_s));
    EXPECT_TRUE(completes_within(BindOptions{}.invite_timeout, 10_s));
}

// -- RecoveryManager end-to-end --------------------------------------------------------

TEST(RecoveryManager, RestartedReplicaResyncsAndServesAgain) {
    RecWorld world;
    auto lives0 = std::make_shared<std::vector<std::shared_ptr<RegisterServant>>>();
    auto lives1 = std::make_shared<std::vector<std::shared_ptr<RegisterServant>>>();
    RecoveryManager mgr0(world.net, world.directory, SiteId(0),
                         recorded_active_factory("reg", lively_config(), lives0));
    RecoveryManager mgr1(world.net, world.directory, SiteId(0),
                         recorded_active_factory("reg", lively_config(), lives1));
    world.run_for(1_s);
    ASSERT_TRUE(mgr0.recovered());
    ASSERT_TRUE(mgr1.recovered());

    const auto c = world.add_nso();
    GroupProxy proxy = world.nso(c).bind("reg", {.mode = BindMode::kOpen});
    auto r = world.call(proxy, kAppend, encode_to_bytes(std::string("a")),
                        InvocationMode::kWaitAll);
    ASSERT_TRUE(r.complete);
    ASSERT_EQ(lives0->back()->contents(), "a");
    ASSERT_EQ(lives1->back()->contents(), "a");

    const EndpointId old_endpoint = mgr0.endpoint();
    mgr0.crash();
    EXPECT_FALSE(mgr0.recovered());
    mgr0.restart_after(200_ms);
    world.run_for(5_s);

    // The new life: fresh endpoint, stale one evicted, replica resynced.
    EXPECT_EQ(mgr0.generation(), 1u);
    EXPECT_NE(mgr0.endpoint(), old_endpoint);
    EXPECT_TRUE(world.directory.known_defunct(old_endpoint));
    EXPECT_GE(world.net.metrics().counter("directory.evictions"), 1u);
    ASSERT_TRUE(mgr0.recovered());
    ASSERT_EQ(lives0->size(), 2u);
    EXPECT_EQ(lives0->back()->contents(), "a");   // state came from the survivor
    EXPECT_EQ(lives0->back()->executions, 0);     // ... as a snapshot

    // First post-recovery execution fires the MTTR probe, once.
    ASSERT_EQ(world.net.metrics().histogram("recovery.mttr"), nullptr);
    r = world.call(proxy, kAppend, encode_to_bytes(std::string("b")),
                   InvocationMode::kWaitAll);
    ASSERT_TRUE(r.complete);
    EXPECT_EQ(lives0->back()->contents(), "ab");
    EXPECT_EQ(lives0->back()->executions, 1);
    EXPECT_EQ(lives1->back()->contents(), "ab");
    const auto* mttr = world.net.metrics().histogram("recovery.mttr");
    ASSERT_NE(mttr, nullptr);
    EXPECT_EQ(mttr->count(), 1u);
}

TEST(RecoveryManager, ClientBindingHealsThroughBackoffAfterWholeGroupDeath) {
    RecWorld world;
    auto lives = std::make_shared<std::vector<std::shared_ptr<RegisterServant>>>();
    RecoveryManager mgr(world.net, world.directory, SiteId(0),
                        recorded_active_factory("solo", lively_config(), lives));
    world.run_for(500_ms);

    const auto c = world.add_nso();
    GroupProxy proxy = world.nso(c).bind("solo", {.mode = BindMode::kOpen});
    auto r = world.call(proxy, kAppend, encode_to_bytes(std::string("a")),
                        InvocationMode::kWaitFirst);
    ASSERT_TRUE(r.complete);

    // The only replica dies.  The next call makes the client/server group
    // notice (suspicion needs traffic): the manager is removed from the
    // view, the rebind finds no live candidate, and the binding backs off —
    // failing the call fast instead of hanging it.
    mgr.crash();
    bool failed = false;
    proxy.invoke(kGet, {}, InvocationMode::kWaitFirst,
                 [&](const GroupReply& reply) { failed = !reply.complete; });
    world.run_for(8_s);
    EXPECT_TRUE(failed);
    EXPECT_GE(world.net.metrics().counter("invocation.backoffs"), 1u);

    // The replica comes back (fresh endpoint, re-registered under the same
    // name); a backoff retry re-resolves the name and the binding heals.
    mgr.restart_after(0);
    world.run_for(15_s);
    ASSERT_TRUE(mgr.recovered());
    r = world.call(proxy, kAppend, encode_to_bytes(std::string("b")),
                   InvocationMode::kWaitFirst, 10_s);
    EXPECT_TRUE(r.complete);
    EXPECT_GE(world.net.metrics().counter("invocation.backoff_rebinds"), 1u);
    // Whole-group death loses the state (there is no durable store): the
    // re-founded lineage serves from fresh state.
    EXPECT_EQ(world.net.metrics().counter("replication.state_refounds"), 1u);
    EXPECT_EQ(lives->back()->contents(), "b");
}

TEST(RecoveryManager, BindingSurvivesConsecutiveRebindsWithExactlyOnceCalls) {
    RecWorld world;
    auto lives0 = std::make_shared<std::vector<std::shared_ptr<RegisterServant>>>();
    auto lives1 = std::make_shared<std::vector<std::shared_ptr<RegisterServant>>>();
    RecoveryManager mgr0(world.net, world.directory, SiteId(0),
                         recorded_active_factory("reg", lively_config(), lives0));
    RecoveryManager mgr1(world.net, world.directory, SiteId(0),
                         recorded_active_factory("reg", lively_config(), lives1));
    world.run_for(1_s);

    const auto c = world.add_nso();
    GroupProxy proxy = world.nso(c).bind("reg", {.mode = BindMode::kOpen});

    // Each round: fire a call and kill one replica in the same instant —
    // alternating, so the bound request manager keeps dying under in-flight
    // traffic and the binding must rebind to the survivor.  The restarted
    // replica rejoins (new endpoint) before the next round.
    const std::string expected = "abcdef";
    int completions = 0;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        proxy.invoke(kAppend, encode_to_bytes(std::string(1, expected[i])),
                     InvocationMode::kWaitFirst, [&](const GroupReply& reply) {
                         EXPECT_TRUE(reply.complete) << "call " << i << " failed";
                         completions += reply.complete;
                     });
        RecoveryManager& victim = (i % 2 == 0) ? mgr0 : mgr1;
        victim.crash();
        victim.restart_after(300_ms);
        world.run_for(6_s);
        ASSERT_TRUE(victim.recovered()) << "round " << i;
    }
    world.run_for(5_s);

    // Every call completed back to the client exactly once, the binding
    // really did rebind along the way, and the servers' retry caches kept
    // the re-sent calls idempotent: each append executed exactly once.
    EXPECT_EQ(completions, static_cast<int>(expected.size()));
    EXPECT_GE(world.net.metrics().counter("invocation.rebinds"), 2u);
    EXPECT_EQ(lives0->back()->contents(), expected);
    EXPECT_EQ(lives1->back()->contents(), expected);
}

}  // namespace
}  // namespace newtop
