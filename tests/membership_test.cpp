// Adversarial membership tests: coordinator failure mid-round, cascading
// crashes, joins racing failures, partitions during traffic, and the
// virtual-synchrony guarantees under all of it.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gcs/endpoint.hpp"
#include "net/calibration.hpp"
#include "trace_oracle.hpp"
#include "util/check.hpp"

namespace newtop {
namespace {

using namespace sim_literals;

Bytes payload_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

struct MemberWorld {
    explicit MemberWorld(Topology t, std::uint64_t seed = 5)
        : net(scheduler, std::move(t), seed) {}

    std::size_t add_endpoint(SiteId site = SiteId(0)) {
        const NodeId node = net.add_node(site);
        orbs.push_back(std::make_unique<Orb>(net, node));
        auto ep = std::make_unique<GroupCommEndpoint>(*orbs.back(), directory);
        const std::size_t index = endpoints.size();
        delivered.emplace_back();
        ep->set_deliver_handler([this, index](const GroupCommEndpoint::Delivery& d) {
            delivered[index].push_back(std::string(d.payload.begin(), d.payload.end()));
        });
        endpoints.push_back(std::move(ep));
        return index;
    }

    GroupCommEndpoint& ep(std::size_t i) { return *endpoints[i]; }
    NodeId node_of(std::size_t i) { return orbs[i]->node_id(); }
    void run_for(SimDuration d) { scheduler.run_until(scheduler.now() + d); }

    Scheduler scheduler;
    Network net;
    test::OracleScope oracle{net.metrics()};
    Directory directory;
    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<GroupCommEndpoint>> endpoints;
    std::vector<std::vector<std::string>> delivered;
};

GroupConfig lively(OrderMode order) {
    GroupConfig cfg;
    cfg.order = order;
    cfg.liveness = LivenessMode::kLively;
    return cfg;
}

struct MembershipFixture : ::testing::TestWithParam<OrderMode> {
    MembershipFixture() : world(calibration::make_lan_topology()) {}

    GroupId make_group(std::size_t n) {
        GroupId g;
        for (std::size_t i = 0; i < n; ++i) {
            const auto idx = world.add_endpoint();
            if (i == 0) {
                g = world.ep(idx).create_group("g", lively(GetParam()));
            } else {
                world.ep(idx).join_group("g");
            }
            world.run_for(300_ms);
        }
        return g;
    }

    MemberWorld world;
};

TEST_P(MembershipFixture, CoordinatorCrashDuringViewChangeIsRecovered) {
    // 4 members; crash the last member to trigger a view change, and crash
    // the coordinator (lowest id) the moment it would be collecting flushes.
    const GroupId g = make_group(4);
    world.net.crash(world.node_of(3));
    // Give suspicion a moment to fire, then kill the coordinator mid-round.
    world.scheduler.schedule_after(250_ms, [&] { world.net.crash(world.node_of(0)); });
    world.run_for(10_s);
    for (std::size_t i : {1ul, 2ul}) {
        ASSERT_TRUE(world.ep(i).is_member(g)) << "endpoint " << i;
        EXPECT_EQ(world.ep(i).current_view(g)->members.size(), 2u) << "endpoint " << i;
    }
    // The survivors can still multicast and agree on order.
    world.ep(1).multicast(g, payload_of("a"));
    world.ep(2).multicast(g, payload_of("b"));
    world.run_for(2_s);
    EXPECT_EQ(world.delivered[1], world.delivered[2]);
    EXPECT_EQ(world.delivered[1].size(), 2u);
}

TEST_P(MembershipFixture, CascadingCrashesLeaveASingleton) {
    const GroupId g = make_group(4);
    world.net.crash(world.node_of(1));
    world.run_for(3_s);
    world.net.crash(world.node_of(2));
    world.run_for(3_s);
    world.net.crash(world.node_of(3));
    world.run_for(5_s);
    ASSERT_TRUE(world.ep(0).is_member(g));
    EXPECT_EQ(world.ep(0).current_view(g)->members.size(), 1u);
    // A singleton group still delivers its own multicasts.
    world.ep(0).multicast(g, payload_of("alone"));
    world.run_for(1_s);
    EXPECT_EQ(world.delivered[0].back(), "alone");
}

TEST_P(MembershipFixture, JoinDuringFailureRecoveryConverges) {
    const GroupId g = make_group(3);
    world.net.crash(world.node_of(2));
    const auto joiner = world.add_endpoint();
    world.ep(joiner).join_group("g");
    world.run_for(15_s);
    ASSERT_TRUE(world.ep(joiner).is_member(g));
    const View* v0 = world.ep(0).current_view(g);
    const View* vj = world.ep(joiner).current_view(g);
    ASSERT_NE(v0, nullptr);
    ASSERT_NE(vj, nullptr);
    EXPECT_EQ(*v0, *vj);
    EXPECT_EQ(v0->members.size(), 3u);  // 0, 1 and the joiner
}

TEST_P(MembershipFixture, TrafficDuringJoinIsNotLost) {
    const GroupId g = make_group(2);
    const auto joiner = world.add_endpoint();
    world.ep(joiner).join_group("g");
    // Blast messages while the join round runs.
    for (int k = 0; k < 10; ++k) {
        world.ep(0).multicast(g, payload_of("m" + std::to_string(k)));
    }
    world.run_for(5_s);
    ASSERT_TRUE(world.ep(joiner).is_member(g));
    // The original members delivered everything, in identical order.
    EXPECT_EQ(world.delivered[0].size(), 10u);
    EXPECT_EQ(world.delivered[0], world.delivered[1]);
    // The joiner's deliveries (if any) are a suffix of the members' order.
    const auto& full = world.delivered[0];
    const auto& tail = world.delivered[joiner];
    ASSERT_LE(tail.size(), full.size());
    EXPECT_TRUE(std::equal(tail.rbegin(), tail.rend(), full.rbegin()));
}

TEST_P(MembershipFixture, SimultaneousLeaveAndCrashResolve) {
    const GroupId g = make_group(4);
    world.ep(3).leave_group(g);
    world.net.crash(world.node_of(2));
    world.run_for(10_s);
    for (std::size_t i : {0ul, 1ul}) {
        ASSERT_TRUE(world.ep(i).is_member(g)) << "endpoint " << i;
        EXPECT_EQ(world.ep(i).current_view(g)->members.size(), 2u);
    }
    EXPECT_FALSE(world.ep(3).knows_group(g));
}

TEST_P(MembershipFixture, EpochsStrictlyIncrease) {
    const GroupId g = make_group(3);
    const ViewEpoch before = world.ep(0).current_view(g)->epoch;
    world.net.crash(world.node_of(2));
    world.run_for(5_s);
    const ViewEpoch after = world.ep(0).current_view(g)->epoch;
    EXPECT_GT(after, before);
}

TEST_P(MembershipFixture, MessagesSentDuringViewChangeArriveInTheNextView) {
    const GroupId g = make_group(3);
    world.net.crash(world.node_of(2));
    // Send during the (not yet detected) failure window and during the
    // change itself; atomicity + resubmission must deliver them.
    world.ep(0).multicast(g, payload_of("x"));
    world.scheduler.schedule_after(300_ms, [&] { world.ep(1).multicast(g, payload_of("y")); });
    world.run_for(10_s);
    EXPECT_EQ(world.delivered[0], world.delivered[1]);
    ASSERT_EQ(world.delivered[0].size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Protocols, MembershipFixture,
                         ::testing::Values(OrderMode::kTotalSymmetric,
                                           OrderMode::kTotalAsymmetric),
                         [](const auto& info) {
                             return info.param == OrderMode::kTotalSymmetric ? "Symmetric"
                                                                             : "Asymmetric";
                         });

// -- partitions ---------------------------------------------------------------------

TEST(MembershipPartition, PartitionDuringTrafficPreservesPrefixAgreement) {
    auto sites = calibration::make_paper_topology();
    MemberWorld world(std::move(sites.topology), 9);
    const auto a0 = world.add_endpoint(sites.newcastle);
    const auto a1 = world.add_endpoint(sites.newcastle);
    const auto b0 = world.add_endpoint(sites.london);
    GroupId g;
    g = world.ep(a0).create_group("g", lively(OrderMode::kTotalSymmetric));
    world.ep(a1).join_group("g");
    world.run_for(300_ms);
    world.ep(b0).join_group("g");
    world.run_for(300_ms);

    for (int k = 0; k < 5; ++k) {
        world.ep(a0).multicast(g, payload_of("pre" + std::to_string(k)));
    }
    world.run_for(1_s);
    world.net.partition_site(sites.london, 1);
    world.run_for(5_s);

    // Majority side continues; each side's deliveries share the pre-split
    // prefix.
    ASSERT_TRUE(world.ep(a0).is_member(g));
    EXPECT_EQ(world.ep(a0).current_view(g)->members.size(), 2u);
    ASSERT_TRUE(world.ep(b0).is_member(g));
    EXPECT_EQ(world.ep(b0).current_view(g)->members.size(), 1u);
    ASSERT_GE(world.delivered[a0].size(), 5u);
    for (int k = 0; k < 5; ++k) {
        EXPECT_EQ(world.delivered[a0][static_cast<std::size_t>(k)], "pre" + std::to_string(k));
        EXPECT_EQ(world.delivered[b0][static_cast<std::size_t>(k)], "pre" + std::to_string(k));
    }
}

TEST(MembershipPartition, MinoritySideKeepsItsOwnOrder) {
    auto sites = calibration::make_paper_topology();
    MemberWorld world(std::move(sites.topology), 11);
    const auto a0 = world.add_endpoint(sites.newcastle);
    const auto b0 = world.add_endpoint(sites.london);
    const auto b1 = world.add_endpoint(sites.london);
    const GroupId g = world.ep(a0).create_group("g", lively(OrderMode::kTotalAsymmetric));
    world.ep(b0).join_group("g");
    world.run_for(300_ms);
    world.ep(b1).join_group("g");
    world.run_for(300_ms);

    world.net.partition_site(sites.london, 1);
    world.run_for(5_s);
    // London pair reforms with a new sequencer and keeps total order.
    ASSERT_TRUE(world.ep(b0).is_member(g));
    ASSERT_TRUE(world.ep(b1).is_member(g));
    EXPECT_EQ(world.ep(b0).current_view(g)->members.size(), 2u);
    world.ep(b0).multicast(g, payload_of("p"));
    world.ep(b1).multicast(g, payload_of("q"));
    world.run_for(2_s);
    EXPECT_EQ(world.delivered[b0], world.delivered[b1]);
    EXPECT_EQ(world.delivered[b0].size(), 2u);
}

}  // namespace
}  // namespace newtop
