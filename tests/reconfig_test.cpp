// View-synchronous runtime reconfiguration: a ConfigChangeMsg proposed
// through the group's own total order, applied at a flush-delimited view
// install.  These tests drive switches under load, across membership
// churn, through the adaptive-policy hook and through the fuzz runner,
// and lean on the OracleScope so every scenario is also checked for
// total order, virtual synchrony, duplicates and config-torn deliveries.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "fuzz/runner.hpp"
#include "fuzz/scenario.hpp"
#include "gcs/endpoint.hpp"
#include "net/calibration.hpp"
#include "obs/names.hpp"
#include "trace_oracle.hpp"
#include "util/check.hpp"

namespace newtop {
namespace {

using namespace sim_literals;

Bytes payload_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

struct ReconfigWorld {
    explicit ReconfigWorld(std::uint64_t seed = 11)
        : net(scheduler, calibration::make_lan_topology(), seed) {}

    std::size_t add_endpoint(SiteId site = SiteId(0)) {
        const NodeId node = net.add_node(site);
        orbs.push_back(std::make_unique<Orb>(net, node));
        auto ep = std::make_unique<GroupCommEndpoint>(*orbs.back(), directory);
        const std::size_t index = endpoints.size();
        delivered.emplace_back();
        ep->set_deliver_handler([this, index](const GroupCommEndpoint::Delivery& d) {
            delivered[index].push_back(std::string(d.payload.begin(), d.payload.end()));
        });
        endpoints.push_back(std::move(ep));
        return index;
    }

    GroupCommEndpoint& ep(std::size_t i) { return *endpoints[i]; }
    NodeId node_of(std::size_t i) { return orbs[i]->node_id(); }
    void run_for(SimDuration d) { scheduler.run_until(scheduler.now() + d); }

    Scheduler scheduler;
    Network net;
    test::OracleScope oracle{net.metrics()};
    Directory directory;
    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<GroupCommEndpoint>> endpoints;
    std::vector<std::vector<std::string>> delivered;
};

GroupConfig lively(OrderMode order) {
    GroupConfig cfg;
    cfg.order = order;
    cfg.liveness = LivenessMode::kLively;
    return cfg;
}

GroupId make_group(ReconfigWorld& world, std::size_t n, const GroupConfig& config) {
    GroupId g;
    for (std::size_t i = 0; i < n; ++i) {
        const auto idx = world.add_endpoint();
        if (i == 0) {
            g = world.ep(idx).create_group("g", config);
        } else {
            world.ep(idx).join_group("g");
        }
        world.run_for(300_ms);
    }
    return g;
}

std::size_t count_switched(const test::OracleScope& oracle) {
    std::size_t n = 0;
    for (const obs::TraceEvent& e : oracle.sink().events()) {
        n += e.kind == obs::TraceKind::kConfigSwitched;
    }
    return n;
}

struct SwitchCase {
    OrderMode from;
    OrderMode to;
};

struct SwitchUnderLoad : ::testing::TestWithParam<SwitchCase> {};

// The headline property: a protocol switch right in the middle of a
// multicast burst loses, duplicates and reorders nothing.  Pre-switch
// messages are ordered by the old engine, the cut delivers them before the
// install, and post-switch traffic (including sends parked while the view
// change ran) flows under the new engine.
TEST_P(SwitchUnderLoad, LosesNoMessagesAndKeepsTotalOrder) {
    ReconfigWorld world;
    const GroupId g = make_group(world, 3, lively(GetParam().from));

    constexpr int kPerMember = 12;
    for (int k = 0; k < kPerMember; ++k) {
        const SimDuration at = static_cast<SimDuration>(k) * 120'000;
        for (std::size_t i = 0; i < 3; ++i) {
            world.scheduler.schedule_after(at, [&world, i, k, g] {
                world.ep(i).multicast(g, payload_of("m" + std::to_string(i) + "." +
                                                    std::to_string(k)));
            });
        }
    }
    // Fire the reconfiguration from a non-creator member mid-burst.
    const OrderMode target = GetParam().to;
    world.scheduler.schedule_after(500_ms, [&world, g, target] {
        GroupConfig next = *world.ep(1).group_config(g);
        next.order = target;
        world.ep(1).reconfigure(g, next);
    });
    world.run_for(20_s);

    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(world.ep(i).config_epoch(g), 1u) << "endpoint " << i;
        EXPECT_EQ(world.ep(i).group_config(g)->order, GetParam().to) << "endpoint " << i;
        EXPECT_EQ(world.delivered[i].size(), 3u * kPerMember) << "endpoint " << i;
        EXPECT_EQ(world.delivered[i], world.delivered[0]) << "endpoint " << i;
    }
    // Exactly one switch per member, visible in the trace and the counter.
    EXPECT_EQ(count_switched(world.oracle), 3u);
    EXPECT_EQ(world.net.metrics().counter(obs::metric::kGcsReconfigs), 3u);
}

INSTANTIATE_TEST_SUITE_P(
    Directions, SwitchUnderLoad,
    ::testing::Values(SwitchCase{OrderMode::kTotalSymmetric, OrderMode::kTotalAsymmetric},
                      SwitchCase{OrderMode::kTotalAsymmetric, OrderMode::kTotalSymmetric}));

// Round trip sym -> asym -> sym with traffic in every regime: the
// sequencer must be torn down and rebuilt cleanly both ways, and config
// epochs advance monotonically through 2.
TEST(Reconfigure, SequencerSurvivesRoundTripToggle) {
    ReconfigWorld world;
    const GroupId g = make_group(world, 3, lively(OrderMode::kTotalSymmetric));

    auto burst = [&](const std::string& tag) {
        for (std::size_t i = 0; i < 3; ++i) {
            world.ep(i).multicast(g, payload_of(tag + std::to_string(i)));
        }
        world.run_for(3_s);
    };
    auto switch_to = [&](OrderMode order) {
        GroupConfig next = *world.ep(0).group_config(g);
        next.order = order;
        world.ep(0).reconfigure(g, next);
        world.run_for(5_s);
    };

    burst("a");
    switch_to(OrderMode::kTotalAsymmetric);
    burst("b");
    switch_to(OrderMode::kTotalSymmetric);
    burst("c");

    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(world.ep(i).config_epoch(g), 2u) << "endpoint " << i;
        EXPECT_EQ(world.ep(i).group_config(g)->order, OrderMode::kTotalSymmetric);
        EXPECT_EQ(world.delivered[i].size(), 9u) << "endpoint " << i;
        EXPECT_EQ(world.delivered[i], world.delivered[0]) << "endpoint " << i;
    }
}

// A switch proposed while a member crash is being handled: the proposal
// either rides the cut (staying pending, re-arming a follow-up round) or
// lands after the crash view — both ways the survivors converge on the new
// configuration with no torn deliveries (the OracleScope checks that).
TEST(Reconfigure, SwitchRacingMemberCrashConverges) {
    ReconfigWorld world;
    const GroupId g = make_group(world, 4, lively(OrderMode::kTotalSymmetric));
    for (int k = 0; k < 6; ++k) {
        for (std::size_t i = 0; i < 4; ++i) {
            world.scheduler.schedule_after(static_cast<SimDuration>(k) * 200'000,
                                           [&world, i, k, g] {
                                               world.ep(i).multicast(
                                                   g, payload_of("x" + std::to_string(i) +
                                                                 std::to_string(k)));
                                           });
        }
    }
    world.scheduler.schedule_after(300_ms, [&world, g] {
        GroupConfig next = *world.ep(1).group_config(g);
        next.order = OrderMode::kTotalAsymmetric;
        world.ep(1).reconfigure(g, next);
    });
    world.scheduler.schedule_after(320_ms, [&world] { world.net.crash(world.node_of(3)); });
    world.run_for(25_s);

    for (std::size_t i = 0; i < 3; ++i) {
        ASSERT_TRUE(world.ep(i).is_member(g)) << "endpoint " << i;
        EXPECT_EQ(world.ep(i).config_epoch(g), 1u) << "endpoint " << i;
        EXPECT_EQ(world.ep(i).group_config(g)->order, OrderMode::kTotalAsymmetric);
    }
    // Survivors agree on their common delivery stream.
    EXPECT_EQ(world.delivered[0], world.delivered[1]);
    EXPECT_EQ(world.delivered[0], world.delivered[2]);
}

// Concurrent proposals from two members: both ride the same total order,
// last-delivered wins, and every member settles on the same final
// configuration (epochs may advance once or twice, but identically
// everywhere).
TEST(Reconfigure, ConcurrentProposalsConvergeLastWins) {
    ReconfigWorld world;
    const GroupId g = make_group(world, 3, lively(OrderMode::kTotalSymmetric));
    world.scheduler.schedule_after(100_ms, [&world, g] {
        GroupConfig next = *world.ep(1).group_config(g);
        next.order = OrderMode::kTotalAsymmetric;
        world.ep(1).reconfigure(g, next);
    });
    world.scheduler.schedule_after(100_ms, [&world, g] {
        GroupConfig next = *world.ep(2).group_config(g);
        next.order = OrderMode::kTotalAsymmetric;
        next.liveness = LivenessMode::kEventDriven;
        world.ep(2).reconfigure(g, next);
    });
    world.run_for(15_s);

    const ConfigEpoch epoch = world.ep(0).config_epoch(g);
    EXPECT_GE(epoch, 1u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(world.ep(i).config_epoch(g), epoch) << "endpoint " << i;
        EXPECT_EQ(world.ep(i).group_config(g)->order,
                  world.ep(0).group_config(g)->order)
            << "endpoint " << i;
        EXPECT_EQ(world.ep(i).group_config(g)->liveness,
                  world.ep(0).group_config(g)->liveness)
            << "endpoint " << i;
    }
}

// A joiner arriving after a switch must come up under the *current*
// configuration and epoch, not the creation-time one: the authoritative
// config travels in the install, and the directory copy is refreshed.
TEST(Reconfigure, LateJoinerInheritsCurrentConfig) {
    ReconfigWorld world;
    const GroupId g = make_group(world, 2, lively(OrderMode::kTotalSymmetric));
    GroupConfig next = *world.ep(0).group_config(g);
    next.order = OrderMode::kTotalAsymmetric;
    world.ep(0).reconfigure(g, next);
    world.run_for(5_s);
    ASSERT_EQ(world.ep(0).config_epoch(g), 1u);

    const auto joiner = world.add_endpoint();
    world.ep(joiner).join_group("g");
    world.run_for(10_s);

    ASSERT_TRUE(world.ep(joiner).is_member(g));
    EXPECT_EQ(world.ep(joiner).config_epoch(g), 1u);
    EXPECT_EQ(world.ep(joiner).group_config(g)->order, OrderMode::kTotalAsymmetric);
    // And the directory's advisory copy tracked the switch too.
    const auto* info = world.directory.find_group("g");
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->config.order, OrderMode::kTotalAsymmetric);
    // The group keeps working with the joiner under the new protocol.
    world.ep(joiner).multicast(g, payload_of("post-join"));
    world.run_for(3_s);
    for (std::size_t i = 0; i < 3; ++i) {
        ASSERT_FALSE(world.delivered[i].empty()) << "endpoint " << i;
        EXPECT_EQ(world.delivered[i].back(), "post-join") << "endpoint " << i;
    }
}

// The adaptive-policy hook: with adaptive_asym_threshold set, the leader
// switches the group to the asymmetric (sequencer) protocol when
// membership reaches the threshold, and back to symmetric when it shrinks
// below — no operator in the loop.
TEST(Reconfigure, AdaptiveThresholdTogglesProtocolWithGroupSize) {
    ReconfigWorld world;
    GroupConfig config = lively(OrderMode::kTotalSymmetric);
    config.adaptive_asym_threshold = 3;
    const GroupId g = make_group(world, 2, config);
    world.run_for(2_s);
    // Two members: below threshold, still symmetric.
    EXPECT_EQ(world.ep(0).group_config(g)->order, OrderMode::kTotalSymmetric);

    const auto third = world.add_endpoint();
    world.ep(third).join_group("g");
    world.run_for(10_s);
    for (std::size_t i = 0; i < 3; ++i) {
        ASSERT_TRUE(world.ep(i).is_member(g)) << "endpoint " << i;
        EXPECT_EQ(world.ep(i).group_config(g)->order, OrderMode::kTotalAsymmetric)
            << "endpoint " << i;
    }
    const ConfigEpoch grown = world.ep(0).config_epoch(g);
    EXPECT_GE(grown, 1u);

    // Shrink below the threshold: the leader adapts back to symmetric.
    world.net.crash(world.node_of(third));
    world.run_for(15_s);
    for (std::size_t i = 0; i < 2; ++i) {
        ASSERT_TRUE(world.ep(i).is_member(g)) << "endpoint " << i;
        EXPECT_EQ(world.ep(i).group_config(g)->order, OrderMode::kTotalSymmetric)
            << "endpoint " << i;
        EXPECT_GT(world.ep(i).config_epoch(g), grown) << "endpoint " << i;
    }
    // Traffic still flows and agrees after both adaptive switches.
    world.ep(0).multicast(g, payload_of("adapted"));
    world.run_for(2_s);
    EXPECT_EQ(world.delivered[0].back(), "adapted");
    EXPECT_EQ(world.delivered[1].back(), "adapted");
}

// The fuzz-runner integration: a handcrafted scenario with a kReconfigure
// fault runs clean end-to-end (clients invoking through the switch) and
// the trace proves the switch actually happened on every replica.
TEST(Reconfigure, FuzzRunnerScenarioSwitchesUnderClientLoad) {
    fuzz::Scenario s;
    s.seed = 424242;
    s.sites = 1;
    fuzz::ServiceSpec svc;
    svc.order = OrderMode::kTotalSymmetric;
    svc.liveness = LivenessMode::kLively;
    svc.server_sites = {0, 0, 0};
    s.services.push_back(svc);
    fuzz::ClientSpec client;
    client.site = 0;
    client.service = 0;
    client.mode = InvocationMode::kWaitAll;
    client.calls = 8;
    s.clients.push_back(client);
    fuzz::FaultSpec fault;
    fault.kind = fuzz::FaultSpec::Kind::kReconfigure;
    fault.at_us = 1'500'000;
    fault.a = 0;
    fault.b = 0;  // -> kTotalAsymmetric
    s.faults.push_back(fault);
    s.run_us = 6'000'000;

    fuzz::RunOptions options;
    options.keep_trace = true;
    const fuzz::RunResult result = fuzz::run_scenario(s, options);
    EXPECT_TRUE(result.ok()) << result.report();
    std::size_t switched = 0;
    for (const obs::TraceEvent& e : result.trace) {
        switched += e.kind == obs::TraceKind::kConfigSwitched;
    }
    EXPECT_EQ(switched, 3u) << "every replica should trace exactly one switch";
}

}  // namespace
}  // namespace newtop
