#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/calibration.hpp"
#include "newtop/newtop_service.hpp"
#include "trace_oracle.hpp"
#include "util/check.hpp"

namespace newtop {
namespace {

using namespace sim_literals;

constexpr std::uint32_t kGet = 1;
constexpr std::uint32_t kIncrement = 2;
constexpr std::uint32_t kFail = 3;
constexpr std::uint32_t kWhoAmI = 4;

/// Deterministic counter servant: lets tests observe execution counts and
/// replica state convergence.
class CounterServant : public GroupServant {
public:
    explicit CounterServant(std::string tag) : tag_(std::move(tag)) {}

    Bytes handle(std::uint32_t method, const Bytes& args) override {
        switch (method) {
            case kGet: return encode_to_bytes(value_);
            case kIncrement: {
                ++executions;
                value_ += decode_from_bytes<std::int64_t>(args);
                return encode_to_bytes(value_);
            }
            case kFail: throw ServantError("deliberate failure");
            case kWhoAmI: return encode_to_bytes(tag_);
            default: throw ServantError("no such method");
        }
    }

    [[nodiscard]] std::int64_t value() const { return value_; }
    int executions{0};

private:
    std::string tag_;
    std::int64_t value_{0};
};

struct InvWorld {
    explicit InvWorld(Topology topology, std::uint64_t seed = 11)
        : net(scheduler, std::move(topology), seed) {}

    std::size_t add_nso(SiteId site) {
        const NodeId node = net.add_node(site);
        orbs.push_back(std::make_unique<Orb>(net, node));
        nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
        return nsos.size() - 1;
    }

    NewTopService& nso(std::size_t i) { return *nsos[i]; }
    void run_for(SimDuration d) { scheduler.run_until(scheduler.now() + d); }

    Scheduler scheduler;
    Network net;
    test::OracleScope oracle{net.metrics()};
    Directory directory;
    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<NewTopService>> nsos;
};

/// Standard scenario: three servers on a LAN plus clients.
struct ThreeServerLan : ::testing::Test {
    ThreeServerLan() : world(calibration::make_lan_topology()) {
        for (int i = 0; i < 3; ++i) {
            const auto idx = world.add_nso(SiteId(0));
            auto servant = std::make_shared<CounterServant>("s" + std::to_string(i));
            servants.push_back(servant);
            world.nso(idx).serve("svc", server_config(), servant);
            world.run_for(200_ms);
            servers.push_back(idx);
        }
        client = world.add_nso(SiteId(0));
    }

    static GroupConfig server_config() {
        GroupConfig cfg;
        cfg.order = OrderMode::kTotalAsymmetric;
        return cfg;
    }

    /// Run a synchronous-style invocation to completion.
    GroupReply call(GroupProxy& proxy, std::uint32_t method, Bytes args, InvocationMode mode,
                    SimDuration budget = 3_s) {
        GroupReply out;
        bool done = false;
        proxy.invoke(method, std::move(args), mode, [&](const GroupReply& r) {
            out = r;
            done = true;
        });
        world.run_for(budget);
        EXPECT_TRUE(done) << "call did not complete";
        return out;
    }

    InvWorld world;
    std::vector<std::size_t> servers;
    std::vector<std::shared_ptr<CounterServant>> servants;
    std::size_t client{};
};

// -- open groups ---------------------------------------------------------------------

// Regression for the stale-config hazard: client bindings used to build
// their client/server group's GroupConfig locally (defaults + cs_order),
// so a runtime reconfiguration of the server group never reached new
// bindings.  All construction sites now share one directory-backed lookup
// — a binding created *after* a switch must inherit the server group's
// current policies, with only cs_order layered on top.
TEST_F(ThreeServerLan, NewBindingInheritsReconfiguredServerPolicies) {
    const auto* svc_info = world.directory.find_group("svc");
    ASSERT_NE(svc_info, nullptr);
    GroupConfig next = svc_info->config;
    next.order = OrderMode::kTotalSymmetric;
    next.liveness = LivenessMode::kLively;
    next.order_window = 5;
    world.nso(servers[0]).reconfigure(svc_info->id, next);
    world.run_for(5_s);
    ASSERT_EQ(world.nso(servers[0]).config_epoch(svc_info->id), 1u);

    const std::size_t late = world.add_nso(SiteId(0));
    GroupProxy proxy = world.nso(late).bind(
        "svc", {.mode = BindMode::kOpen, .cs_order = OrderMode::kTotalAsymmetric});
    world.run_for(2_s);
    ASSERT_TRUE(proxy.ready());

    // First binding of a fresh client: id 1, attempt 1.
    const std::string cs_name =
        "cs:" + std::to_string(world.nso(late).id().value()) + ":1:1";
    const auto* cs_info = world.directory.find_group(cs_name);
    ASSERT_NE(cs_info, nullptr) << "client/server group not registered as " << cs_name;
    EXPECT_EQ(cs_info->config.order_window, 5u) << "switched window did not carry over";
    EXPECT_EQ(cs_info->config.liveness, LivenessMode::kLively);
    EXPECT_EQ(cs_info->config.order, OrderMode::kTotalAsymmetric) << "cs_order must win";
    EXPECT_EQ(cs_info->config.adaptive_asym_threshold, 0u)
        << "cs groups must never adapt on their own";

    // The new binding works against the reconfigured server group.
    const GroupReply reply = call(proxy, kIncrement, encode_to_bytes(std::int64_t{2}),
                                  InvocationMode::kWaitAll);
    EXPECT_TRUE(reply.complete);
    EXPECT_EQ(reply.replies.size(), 3u);
}

TEST_F(ThreeServerLan, OpenWaitFirstReturnsOneReply) {
    GroupProxy proxy = world.nso(client).bind("svc", {.mode = BindMode::kOpen});
    const GroupReply reply = call(proxy, kGet, Bytes{}, InvocationMode::kWaitFirst);
    ASSERT_TRUE(reply.complete);
    ASSERT_GE(reply.replies.size(), 1u);
    EXPECT_TRUE(reply.replies[0].ok);
    EXPECT_EQ(decode_from_bytes<std::int64_t>(reply.replies[0].value), 0);
}

TEST_F(ThreeServerLan, OpenWaitAllGathersEveryMember) {
    GroupProxy proxy = world.nso(client).bind("svc", {.mode = BindMode::kOpen});
    const GroupReply reply = call(proxy, kGet, Bytes{}, InvocationMode::kWaitAll);
    ASSERT_TRUE(reply.complete);
    EXPECT_EQ(reply.replies.size(), 3u);
}

TEST_F(ThreeServerLan, OpenWaitMajorityNeedsTwoOfThree) {
    GroupProxy proxy = world.nso(client).bind("svc", {.mode = BindMode::kOpen});
    const GroupReply reply = call(proxy, kGet, Bytes{}, InvocationMode::kWaitMajority);
    ASSERT_TRUE(reply.complete);
    EXPECT_GE(reply.replies.size(), 2u);
}

TEST_F(ThreeServerLan, OpenOneWayExecutesEverywhereWithoutReplies) {
    GroupProxy proxy = world.nso(client).bind("svc", {.mode = BindMode::kOpen});
    proxy.one_way(kIncrement, encode_to_bytes(std::int64_t{5}));
    world.run_for(2_s);
    for (const auto& servant : servants) EXPECT_EQ(servant->value(), 5);
}

TEST_F(ThreeServerLan, ActiveReplicationExecutesOnAllReplicas) {
    GroupProxy proxy = world.nso(client).bind("svc", {.mode = BindMode::kOpen});
    const GroupReply reply =
        call(proxy, kIncrement, encode_to_bytes(std::int64_t{7}), InvocationMode::kWaitAll);
    ASSERT_TRUE(reply.complete);
    for (const auto& entry : reply.replies) {
        EXPECT_TRUE(entry.ok);
        EXPECT_EQ(decode_from_bytes<std::int64_t>(entry.value), 7);
    }
    for (const auto& servant : servants) {
        EXPECT_EQ(servant->value(), 7);
        EXPECT_EQ(servant->executions, 1);
    }
}

TEST_F(ThreeServerLan, ServantExceptionReportedPerReplica) {
    GroupProxy proxy = world.nso(client).bind("svc", {.mode = BindMode::kOpen});
    const GroupReply reply = call(proxy, kFail, Bytes{}, InvocationMode::kWaitAll);
    ASSERT_TRUE(reply.complete);
    ASSERT_EQ(reply.replies.size(), 3u);
    for (const auto& entry : reply.replies) {
        EXPECT_FALSE(entry.ok);
        EXPECT_EQ(std::string(entry.value.begin(), entry.value.end()), "deliberate failure");
    }
    EXPECT_EQ(reply.first_value(), nullptr);
}

TEST_F(ThreeServerLan, RestrictedBindingPicksTheLeader) {
    GroupProxy proxy = world.nso(client).bind("svc", {.mode = BindMode::kOpen,
                                                      .restricted = true});
    world.run_for(500_ms);
    ASSERT_TRUE(proxy.ready());
    EXPECT_EQ(proxy.manager(), world.nso(servers[0]).id());
}

TEST_F(ThreeServerLan, AsyncForwardingAnswersFromTheManager) {
    GroupProxy proxy = world.nso(client).bind(
        "svc",
        {.mode = BindMode::kOpen, .restricted = true, .async_forwarding = true});
    const GroupReply reply =
        call(proxy, kIncrement, encode_to_bytes(std::int64_t{3}), InvocationMode::kWaitFirst);
    ASSERT_TRUE(reply.complete);
    ASSERT_EQ(reply.replies.size(), 1u);
    EXPECT_EQ(reply.replies[0].replier, world.nso(servers[0]).id());
    world.run_for(2_s);
    // The one-way forward still updated every replica exactly once.
    for (const auto& servant : servants) {
        EXPECT_EQ(servant->value(), 3);
        EXPECT_EQ(servant->executions, 1);
    }
}

TEST_F(ThreeServerLan, SequentialCallsKeepReplicasConsistent) {
    GroupProxy proxy = world.nso(client).bind("svc", {.mode = BindMode::kOpen});
    std::int64_t expected = 0;
    for (int k = 1; k <= 5; ++k) {
        expected += k;
        const GroupReply reply =
            call(proxy, kIncrement, encode_to_bytes(std::int64_t{k}), InvocationMode::kWaitAll);
        ASSERT_TRUE(reply.complete);
    }
    for (const auto& servant : servants) EXPECT_EQ(servant->value(), expected);
}

TEST_F(ThreeServerLan, TwoClientsInterleavedStayConsistent) {
    const auto client2 = world.add_nso(SiteId(0));
    GroupProxy p1 = world.nso(client).bind("svc", {.mode = BindMode::kOpen});
    GroupProxy p2 = world.nso(client2).bind("svc", {.mode = BindMode::kOpen});
    int completions = 0;
    for (int k = 0; k < 10; ++k) {
        p1.invoke(kIncrement, encode_to_bytes(std::int64_t{1}), InvocationMode::kWaitAll,
                  [&](const GroupReply&) { ++completions; });
        p2.invoke(kIncrement, encode_to_bytes(std::int64_t{1}), InvocationMode::kWaitAll,
                  [&](const GroupReply&) { ++completions; });
    }
    world.run_for(5_s);
    EXPECT_EQ(completions, 20);
    for (const auto& servant : servants) {
        EXPECT_EQ(servant->value(), 20);
        EXPECT_EQ(servant->executions, 20);
    }
}

TEST_F(ThreeServerLan, OpenLanLatencyMatchesPaperAnchor) {
    // §5.1.1: a call through the NewTop service on a LAN takes ~2.5 ms
    // (about 2.5x a plain CORBA call).
    GroupProxy proxy = world.nso(client).bind(
        "svc", {.mode = BindMode::kOpen, .restricted = true, .async_forwarding = true});
    world.run_for(500_ms);
    ASSERT_TRUE(proxy.ready());
    const SimTime start = world.scheduler.now();
    SimTime end = 0;
    proxy.invoke(kGet, Bytes{}, InvocationMode::kWaitFirst,
                 [&](const GroupReply&) { end = world.scheduler.now(); });
    world.run_for(1_s);
    ASSERT_GT(end, start);
    const double ms = to_ms(end - start);
    EXPECT_GT(ms, 1.0);
    EXPECT_LT(ms, 5.0);
}

// -- rebinding / fault tolerance -----------------------------------------------------

TEST_F(ThreeServerLan, ManagerCrashTriggersRebindAndCallCompletes) {
    GroupProxy proxy = world.nso(client).bind("svc", {.mode = BindMode::kOpen,
                                                      .restricted = true});
    world.run_for(500_ms);
    ASSERT_TRUE(proxy.ready());
    const EndpointId first_manager = *proxy.manager();

    // Crash the manager, then call: suspicion ejects it from the
    // client/server group, the smart proxy rebinds, the retry completes.
    world.net.crash(world.orbs[servers[0]]->node_id());
    GroupReply reply;
    bool done = false;
    proxy.invoke(kIncrement, encode_to_bytes(std::int64_t{4}), InvocationMode::kWaitAll,
                 [&](const GroupReply& r) {
                     reply = r;
                     done = true;
                 });
    world.run_for(10_s);
    ASSERT_TRUE(done);
    ASSERT_TRUE(reply.complete);
    EXPECT_EQ(reply.replies.size(), 2u);  // two survivors
    EXPECT_GE(proxy.rebinds(), 1u);
    EXPECT_NE(*proxy.manager(), first_manager);
    // Survivors executed exactly once despite the retry.
    EXPECT_EQ(servants[1]->executions, 1);
    EXPECT_EQ(servants[2]->executions, 1);
}

TEST_F(ThreeServerLan, RetryAfterManagerCrashDoesNotReexecute) {
    GroupProxy proxy = world.nso(client).bind("svc", {.mode = BindMode::kOpen,
                                                      .restricted = true});
    world.run_for(500_ms);
    // Let one call fully complete, then crash the manager mid-next-call.
    const GroupReply first =
        call(proxy, kIncrement, encode_to_bytes(std::int64_t{1}), InvocationMode::kWaitAll);
    ASSERT_TRUE(first.complete);
    world.net.crash(world.orbs[servers[0]]->node_id());
    const GroupReply second = call(
        proxy, kIncrement, encode_to_bytes(std::int64_t{1}), InvocationMode::kWaitAll, 10_s);
    ASSERT_TRUE(second.complete);
    EXPECT_EQ(servants[1]->value(), 2);
    EXPECT_EQ(servants[1]->executions, 2);
    EXPECT_EQ(servants[2]->value(), 2);
}

TEST_F(ThreeServerLan, NonRestrictedClientsSpreadAcrossManagers) {
    std::map<EndpointId, int> managers;
    std::vector<GroupProxy> proxies;
    for (int i = 0; i < 6; ++i) {
        const auto c = world.add_nso(SiteId(0));
        proxies.push_back(world.nso(c).bind("svc", {.mode = BindMode::kOpen}));
    }
    world.run_for(1_s);
    for (auto& proxy : proxies) {
        ASSERT_TRUE(proxy.ready());
        ++managers[*proxy.manager()];
    }
    EXPECT_GT(managers.size(), 1u);  // not everyone on the same server
}

// -- closed groups --------------------------------------------------------------------

TEST_F(ThreeServerLan, ClosedWaitAllGathersDirectReplies) {
    GroupProxy proxy = world.nso(client).bind("svc", {.mode = BindMode::kClosed});
    world.run_for(500_ms);
    ASSERT_TRUE(proxy.ready());
    const GroupReply reply =
        call(proxy, kIncrement, encode_to_bytes(std::int64_t{2}), InvocationMode::kWaitAll);
    ASSERT_TRUE(reply.complete);
    EXPECT_EQ(reply.replies.size(), 3u);
    for (const auto& servant : servants) EXPECT_EQ(servant->value(), 2);
}

TEST_F(ThreeServerLan, ClosedWaitFirstAndMajority) {
    GroupProxy proxy = world.nso(client).bind("svc", {.mode = BindMode::kClosed});
    world.run_for(500_ms);
    const GroupReply first = call(proxy, kGet, Bytes{}, InvocationMode::kWaitFirst);
    ASSERT_TRUE(first.complete);
    EXPECT_GE(first.replies.size(), 1u);
    const GroupReply majority = call(proxy, kGet, Bytes{}, InvocationMode::kWaitMajority);
    ASSERT_TRUE(majority.complete);
    EXPECT_GE(majority.replies.size(), 2u);
}

TEST_F(ThreeServerLan, ClosedServerCrashIsMaskedWithoutRebinding) {
    GroupProxy proxy = world.nso(client).bind("svc", {.mode = BindMode::kClosed});
    world.run_for(500_ms);
    ASSERT_TRUE(proxy.ready());
    world.net.crash(world.orbs[servers[2]]->node_id());
    // wait-for-all adapts to the surviving membership; no rebind needed.
    const GroupReply reply = call(proxy, kIncrement, encode_to_bytes(std::int64_t{9}),
                                  InvocationMode::kWaitAll, 10_s);
    ASSERT_TRUE(reply.complete);
    EXPECT_EQ(reply.replies.size(), 2u);
    EXPECT_EQ(proxy.rebinds(), 0u);
    EXPECT_EQ(servants[0]->value(), 9);
    EXPECT_EQ(servants[1]->value(), 9);
}

TEST_F(ThreeServerLan, ClosedClientsShareTotalOrder) {
    const auto client2 = world.add_nso(SiteId(0));
    GroupProxy p1 = world.nso(client).bind("svc", {.mode = BindMode::kClosed});
    GroupProxy p2 = world.nso(client2).bind("svc", {.mode = BindMode::kClosed});
    world.run_for(500_ms);
    int completions = 0;
    for (int k = 0; k < 8; ++k) {
        p1.invoke(kIncrement, encode_to_bytes(std::int64_t{1}), InvocationMode::kWaitAll,
                  [&](const GroupReply&) { ++completions; });
        p2.invoke(kIncrement, encode_to_bytes(std::int64_t{1}), InvocationMode::kWaitAll,
                  [&](const GroupReply&) { ++completions; });
    }
    world.run_for(5_s);
    EXPECT_EQ(completions, 16);
    for (const auto& servant : servants) {
        EXPECT_EQ(servant->value(), 16);
        EXPECT_EQ(servant->executions, 16);
    }
}

// -- call timeout ---------------------------------------------------------------------

TEST_F(ThreeServerLan, CallTimeoutDeliversIncompleteReply) {
    // Crash all servers; a timed call must fail cleanly.
    for (const auto s : servers) world.net.crash(world.orbs[s]->node_id());
    GroupProxy proxy = world.nso(client).bind(
        "svc", {.mode = BindMode::kOpen, .call_timeout = 500_ms});
    GroupReply reply;
    bool done = false;
    proxy.invoke(kGet, Bytes{}, InvocationMode::kWaitAll, [&](const GroupReply& r) {
        reply = r;
        done = true;
    });
    world.run_for(20_s);
    ASSERT_TRUE(done);
    EXPECT_FALSE(reply.complete);
}

// -- group-to-group (§4.3) --------------------------------------------------------------

TEST_F(ThreeServerLan, GroupToGroupDeliversRepliesToAllClientMembers) {
    const auto cx1 = world.add_nso(SiteId(0));
    const auto cx2 = world.add_nso(SiteId(0));

    // Build the client group gx = {cx1, cx2}.
    GroupConfig gx_cfg;
    gx_cfg.order = OrderMode::kTotalSymmetric;
    const GroupId gx = world.nso(cx1).group_comm().create_group("gx", gx_cfg);
    world.nso(cx2).group_comm().join_group("gx");
    world.run_for(300_ms);
    ASSERT_TRUE(world.nso(cx2).group_comm().is_member(gx));

    GroupProxy px1 = world.nso(cx1).bind_group(gx, "svc");
    GroupProxy px2 = world.nso(cx2).bind_group(gx, "svc");
    world.run_for(1_s);
    ASSERT_TRUE(px1.ready());
    ASSERT_TRUE(px2.ready());

    GroupReply r1, r2;
    bool done1 = false, done2 = false;
    px1.invoke(kIncrement, encode_to_bytes(std::int64_t{6}), InvocationMode::kWaitAll,
               [&](const GroupReply& r) {
                   r1 = r;
                   done1 = true;
               });
    px2.invoke(kIncrement, encode_to_bytes(std::int64_t{6}), InvocationMode::kWaitAll,
               [&](const GroupReply& r) {
                   r2 = r;
                   done2 = true;
               });
    world.run_for(5_s);
    ASSERT_TRUE(done1);
    ASSERT_TRUE(done2);
    EXPECT_TRUE(r1.complete);
    EXPECT_TRUE(r2.complete);
    EXPECT_EQ(r1.replies.size(), 3u);
    EXPECT_EQ(r2.replies.size(), 3u);
    // The duplicate-filtered request executed exactly once per replica.
    for (const auto& servant : servants) {
        EXPECT_EQ(servant->value(), 6);
        EXPECT_EQ(servant->executions, 1);
    }
}

// -- peer participation -----------------------------------------------------------------

TEST(PeerParticipation, AllMembersSeeAllMessagesInAgreedOrder) {
    InvWorld world(calibration::make_lan_topology());
    GroupConfig cfg;
    cfg.order = OrderMode::kTotalSymmetric;
    cfg.liveness = LivenessMode::kLively;

    std::vector<std::size_t> members;
    std::vector<std::vector<std::string>> logs(3);
    std::vector<PeerGroup> handles;
    for (int i = 0; i < 3; ++i) {
        members.push_back(world.add_nso(SiteId(0)));
        handles.push_back(world.nso(members.back())
                              .join_peer_group("room", cfg,
                                               [&logs, i](const NewTopService::PeerMessage& m) {
                                                   logs[static_cast<std::size_t>(i)].push_back(
                                                       std::string(m.payload.begin(),
                                                                   m.payload.end()));
                                               }));
        world.run_for(300_ms);
    }
    for (auto& handle : handles) ASSERT_TRUE(handle.joined());

    for (int round = 0; round < 4; ++round) {
        for (std::size_t i = 0; i < handles.size(); ++i) {
            const std::string text = std::to_string(i) + "@" + std::to_string(round);
            handles[i].publish(Bytes(text.begin(), text.end()));
        }
    }
    world.run_for(3_s);
    EXPECT_EQ(logs[0].size(), 12u);
    EXPECT_EQ(logs[1], logs[0]);
    EXPECT_EQ(logs[2], logs[0]);
}

TEST(PeerParticipation, ViewHandlerSeesMembershipGrow) {
    InvWorld world(calibration::make_lan_topology());
    GroupConfig cfg;
    cfg.liveness = LivenessMode::kLively;
    std::vector<std::size_t> view_sizes;
    const auto a = world.add_nso(SiteId(0));
    world.nso(a).join_peer_group(
        "room", cfg, [](const NewTopService::PeerMessage&) {},
        [&](const View& v) { view_sizes.push_back(v.members.size()); });
    const auto b = world.add_nso(SiteId(0));
    world.nso(b).join_peer_group("room", cfg, [](const NewTopService::PeerMessage&) {});
    world.run_for(500_ms);
    ASSERT_FALSE(view_sizes.empty());
    EXPECT_EQ(view_sizes.back(), 2u);
}

// -- envelope wire format ----------------------------------------------------------------

TEST(Envelope, AllVariantsRoundTrip) {
    RequestEnv request;
    request.call = CallId{42, 7, false};
    request.mode = InvocationMode::kWaitMajority;
    request.flags = kFlagAsyncForwarding;
    request.server_group = GroupId(3);
    request.bind = BindMode::kOpen;
    request.method = 9;
    request.args = Bytes{1, 2, 3};
    const auto request_out = decode_envelope(encode_envelope(request));
    const auto* r = std::get_if<RequestEnv>(&request_out);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->call, request.call);
    EXPECT_EQ(r->flags, kFlagAsyncForwarding);
    EXPECT_EQ(r->args, request.args);

    AggregateEnv aggregate;
    aggregate.call = CallId{1, 2, true};
    aggregate.replies = {ReplyEntry{EndpointId(5), false, Bytes{9}}};
    const auto aggregate_out = decode_envelope(encode_envelope(aggregate));
    const auto* a = std::get_if<AggregateEnv>(&aggregate_out);
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->replies.size(), 1u);
    EXPECT_FALSE(a->replies[0].ok);
}

TEST(Envelope, GarbageRejected) {
    EXPECT_THROW(decode_envelope(Bytes{}), DecodeError);
    EXPECT_THROW(decode_envelope(Bytes{0xff, 0x01}), DecodeError);
}

}  // namespace
}  // namespace newtop
