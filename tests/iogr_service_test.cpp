// §2.2's IOGR integration: each replica of a served group is also exported
// as a plain ORB object; a client can build an Interoperable Object Group
// Reference over them and let the ORB fail over transparently.
#include <gtest/gtest.h>

#include <memory>

#include "net/calibration.hpp"
#include "newtop/newtop_service.hpp"
#include "util/check.hpp"

namespace newtop {
namespace {

using namespace sim_literals;

constexpr std::uint32_t kWhoAmI = 1;
constexpr std::uint32_t kBoom = 2;

class TaggedServant : public GroupServant {
public:
    explicit TaggedServant(std::string tag) : tag_(std::move(tag)) {}

    Bytes handle(std::uint32_t method, const Bytes&) override {
        if (method == kBoom) throw ServantError("boom");
        return encode_to_bytes(tag_);
    }

private:
    std::string tag_;
};

struct IogrServiceFixture : ::testing::Test {
    IogrServiceFixture() : net(scheduler, calibration::make_lan_topology(), 5) {
        for (int i = 0; i < 3; ++i) {
            orbs.push_back(std::make_unique<Orb>(net, net.add_node(SiteId(0))));
            nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
            nsos.back()->serve("svc", GroupConfig{},
                               std::make_shared<TaggedServant>("replica" + std::to_string(i)));
            scheduler.run_until(scheduler.now() + 300_ms);
        }
        orbs.push_back(std::make_unique<Orb>(net, net.add_node(SiteId(0))));
        client_orb = orbs.back().get();
    }

    void run_for(SimDuration d) { scheduler.run_until(scheduler.now() + d); }

    Scheduler scheduler;
    Network net;
    Directory directory;
    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<NewTopService>> nsos;
    Orb* client_orb{};
};

TEST_F(IogrServiceFixture, IogrCoversEveryReplica) {
    const Iogr iogr = nsos[0]->service_iogr("svc");
    EXPECT_EQ(iogr.members.size(), 3u);
}

TEST_F(IogrServiceFixture, DirectInvocationHitsThePrimaryReplica) {
    const Iogr iogr = nsos[0]->service_iogr("svc");
    std::string who;
    client_orb->invoke_group(iogr, kWhoAmI, Bytes{},
                             [&](ReplyStatus status, const Bytes& payload) {
                                 ASSERT_EQ(status, ReplyStatus::kOk);
                                 who = decode_from_bytes<std::string>(payload);
                             },
                             1_s);
    run_for(2_s);
    EXPECT_EQ(who, "replica0");
}

TEST_F(IogrServiceFixture, OrbFailsOverWhenPrimaryCrashes) {
    const Iogr iogr = nsos[0]->service_iogr("svc");
    net.crash(orbs[0]->node_id());
    std::string who;
    client_orb->invoke_group(iogr, kWhoAmI, Bytes{},
                             [&](ReplyStatus status, const Bytes& payload) {
                                 ASSERT_EQ(status, ReplyStatus::kOk);
                                 who = decode_from_bytes<std::string>(payload);
                             },
                             500_ms);
    run_for(5_s);
    EXPECT_EQ(who, "replica1");
}

TEST_F(IogrServiceFixture, ApplicationExceptionIsNotRetried) {
    // A servant exception is a definitive answer, not a failure to reach
    // the object: the ORB must report it rather than try another member.
    const Iogr iogr = nsos[0]->service_iogr("svc");
    ReplyStatus status{};
    client_orb->invoke_group(iogr, kBoom, Bytes{},
                             [&](ReplyStatus s, const Bytes&) { status = s; }, 500_ms);
    run_for(3_s);
    EXPECT_EQ(status, ReplyStatus::kException);
}

TEST_F(IogrServiceFixture, UnknownServiceRejected) {
    EXPECT_THROW((void)nsos[0]->service_iogr("nope"), PreconditionError);
}

}  // namespace
}  // namespace newtop
