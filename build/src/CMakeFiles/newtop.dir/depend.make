# Empty dependencies file for newtop.
# This may be replaced when dependencies are built.
