file(REMOVE_RECURSE
  "libnewtop.a"
)
