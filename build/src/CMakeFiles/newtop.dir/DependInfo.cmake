
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gcs/directory.cpp" "src/CMakeFiles/newtop.dir/gcs/directory.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/gcs/directory.cpp.o.d"
  "/root/repo/src/gcs/endpoint.cpp" "src/CMakeFiles/newtop.dir/gcs/endpoint.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/gcs/endpoint.cpp.o.d"
  "/root/repo/src/gcs/endpoint_liveness.cpp" "src/CMakeFiles/newtop.dir/gcs/endpoint_liveness.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/gcs/endpoint_liveness.cpp.o.d"
  "/root/repo/src/gcs/endpoint_membership.cpp" "src/CMakeFiles/newtop.dir/gcs/endpoint_membership.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/gcs/endpoint_membership.cpp.o.d"
  "/root/repo/src/gcs/messages.cpp" "src/CMakeFiles/newtop.dir/gcs/messages.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/gcs/messages.cpp.o.d"
  "/root/repo/src/gcs/ordering.cpp" "src/CMakeFiles/newtop.dir/gcs/ordering.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/gcs/ordering.cpp.o.d"
  "/root/repo/src/gcs/view.cpp" "src/CMakeFiles/newtop.dir/gcs/view.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/gcs/view.cpp.o.d"
  "/root/repo/src/invocation/envelope.cpp" "src/CMakeFiles/newtop.dir/invocation/envelope.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/invocation/envelope.cpp.o.d"
  "/root/repo/src/invocation/service.cpp" "src/CMakeFiles/newtop.dir/invocation/service.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/invocation/service.cpp.o.d"
  "/root/repo/src/invocation/service_client.cpp" "src/CMakeFiles/newtop.dir/invocation/service_client.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/invocation/service_client.cpp.o.d"
  "/root/repo/src/invocation/service_server.cpp" "src/CMakeFiles/newtop.dir/invocation/service_server.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/invocation/service_server.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/newtop.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/net/network.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/CMakeFiles/newtop.dir/net/node.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/net/node.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/newtop.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/net/topology.cpp.o.d"
  "/root/repo/src/newtop/newtop_service.cpp" "src/CMakeFiles/newtop.dir/newtop/newtop_service.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/newtop/newtop_service.cpp.o.d"
  "/root/repo/src/orb/ior.cpp" "src/CMakeFiles/newtop.dir/orb/ior.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/orb/ior.cpp.o.d"
  "/root/repo/src/orb/object_adapter.cpp" "src/CMakeFiles/newtop.dir/orb/object_adapter.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/orb/object_adapter.cpp.o.d"
  "/root/repo/src/orb/orb.cpp" "src/CMakeFiles/newtop.dir/orb/orb.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/orb/orb.cpp.o.d"
  "/root/repo/src/replication/active_replica.cpp" "src/CMakeFiles/newtop.dir/replication/active_replica.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/replication/active_replica.cpp.o.d"
  "/root/repo/src/replication/passive_replica.cpp" "src/CMakeFiles/newtop.dir/replication/passive_replica.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/replication/passive_replica.cpp.o.d"
  "/root/repo/src/serial/decoder.cpp" "src/CMakeFiles/newtop.dir/serial/decoder.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/serial/decoder.cpp.o.d"
  "/root/repo/src/serial/encoder.cpp" "src/CMakeFiles/newtop.dir/serial/encoder.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/serial/encoder.cpp.o.d"
  "/root/repo/src/sim/cpu_queue.cpp" "src/CMakeFiles/newtop.dir/sim/cpu_queue.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/sim/cpu_queue.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/newtop.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/newtop.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/newtop.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/newtop.dir/util/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
