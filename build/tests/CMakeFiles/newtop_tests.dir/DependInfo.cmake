
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/closed_mode_test.cpp" "tests/CMakeFiles/newtop_tests.dir/closed_mode_test.cpp.o" "gcc" "tests/CMakeFiles/newtop_tests.dir/closed_mode_test.cpp.o.d"
  "/root/repo/tests/determinism_test.cpp" "tests/CMakeFiles/newtop_tests.dir/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/newtop_tests.dir/determinism_test.cpp.o.d"
  "/root/repo/tests/gcs_test.cpp" "tests/CMakeFiles/newtop_tests.dir/gcs_test.cpp.o" "gcc" "tests/CMakeFiles/newtop_tests.dir/gcs_test.cpp.o.d"
  "/root/repo/tests/invocation_test.cpp" "tests/CMakeFiles/newtop_tests.dir/invocation_test.cpp.o" "gcc" "tests/CMakeFiles/newtop_tests.dir/invocation_test.cpp.o.d"
  "/root/repo/tests/iogr_service_test.cpp" "tests/CMakeFiles/newtop_tests.dir/iogr_service_test.cpp.o" "gcc" "tests/CMakeFiles/newtop_tests.dir/iogr_service_test.cpp.o.d"
  "/root/repo/tests/membership_test.cpp" "tests/CMakeFiles/newtop_tests.dir/membership_test.cpp.o" "gcc" "tests/CMakeFiles/newtop_tests.dir/membership_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/newtop_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/newtop_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/orb_test.cpp" "tests/CMakeFiles/newtop_tests.dir/orb_test.cpp.o" "gcc" "tests/CMakeFiles/newtop_tests.dir/orb_test.cpp.o.d"
  "/root/repo/tests/ordering_test.cpp" "tests/CMakeFiles/newtop_tests.dir/ordering_test.cpp.o" "gcc" "tests/CMakeFiles/newtop_tests.dir/ordering_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/newtop_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/newtop_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/replication_test.cpp" "tests/CMakeFiles/newtop_tests.dir/replication_test.cpp.o" "gcc" "tests/CMakeFiles/newtop_tests.dir/replication_test.cpp.o.d"
  "/root/repo/tests/serial_test.cpp" "tests/CMakeFiles/newtop_tests.dir/serial_test.cpp.o" "gcc" "tests/CMakeFiles/newtop_tests.dir/serial_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/newtop_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/newtop_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/newtop_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/newtop_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/newtop.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
