file(REMOVE_RECURSE
  "CMakeFiles/newtop_tests.dir/closed_mode_test.cpp.o"
  "CMakeFiles/newtop_tests.dir/closed_mode_test.cpp.o.d"
  "CMakeFiles/newtop_tests.dir/determinism_test.cpp.o"
  "CMakeFiles/newtop_tests.dir/determinism_test.cpp.o.d"
  "CMakeFiles/newtop_tests.dir/gcs_test.cpp.o"
  "CMakeFiles/newtop_tests.dir/gcs_test.cpp.o.d"
  "CMakeFiles/newtop_tests.dir/invocation_test.cpp.o"
  "CMakeFiles/newtop_tests.dir/invocation_test.cpp.o.d"
  "CMakeFiles/newtop_tests.dir/iogr_service_test.cpp.o"
  "CMakeFiles/newtop_tests.dir/iogr_service_test.cpp.o.d"
  "CMakeFiles/newtop_tests.dir/membership_test.cpp.o"
  "CMakeFiles/newtop_tests.dir/membership_test.cpp.o.d"
  "CMakeFiles/newtop_tests.dir/net_test.cpp.o"
  "CMakeFiles/newtop_tests.dir/net_test.cpp.o.d"
  "CMakeFiles/newtop_tests.dir/orb_test.cpp.o"
  "CMakeFiles/newtop_tests.dir/orb_test.cpp.o.d"
  "CMakeFiles/newtop_tests.dir/ordering_test.cpp.o"
  "CMakeFiles/newtop_tests.dir/ordering_test.cpp.o.d"
  "CMakeFiles/newtop_tests.dir/property_test.cpp.o"
  "CMakeFiles/newtop_tests.dir/property_test.cpp.o.d"
  "CMakeFiles/newtop_tests.dir/replication_test.cpp.o"
  "CMakeFiles/newtop_tests.dir/replication_test.cpp.o.d"
  "CMakeFiles/newtop_tests.dir/serial_test.cpp.o"
  "CMakeFiles/newtop_tests.dir/serial_test.cpp.o.d"
  "CMakeFiles/newtop_tests.dir/sim_test.cpp.o"
  "CMakeFiles/newtop_tests.dir/sim_test.cpp.o.d"
  "CMakeFiles/newtop_tests.dir/util_test.cpp.o"
  "CMakeFiles/newtop_tests.dir/util_test.cpp.o.d"
  "newtop_tests"
  "newtop_tests.pdb"
  "newtop_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newtop_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
