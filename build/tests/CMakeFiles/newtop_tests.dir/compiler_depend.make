# Empty compiler generated dependencies file for newtop_tests.
# This may be replaced when dependencies are built.
