file(REMOVE_RECURSE
  "CMakeFiles/bench_nonreplicated.dir/bench_nonreplicated.cpp.o"
  "CMakeFiles/bench_nonreplicated.dir/bench_nonreplicated.cpp.o.d"
  "bench_nonreplicated"
  "bench_nonreplicated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nonreplicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
