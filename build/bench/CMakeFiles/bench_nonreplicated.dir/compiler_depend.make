# Empty compiler generated dependencies file for bench_nonreplicated.
# This may be replaced when dependencies are built.
