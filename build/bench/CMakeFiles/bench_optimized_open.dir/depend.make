# Empty dependencies file for bench_optimized_open.
# This may be replaced when dependencies are built.
