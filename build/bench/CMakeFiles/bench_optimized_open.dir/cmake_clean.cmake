file(REMOVE_RECURSE
  "CMakeFiles/bench_optimized_open.dir/bench_optimized_open.cpp.o"
  "CMakeFiles/bench_optimized_open.dir/bench_optimized_open.cpp.o.d"
  "bench_optimized_open"
  "bench_optimized_open.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimized_open.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
