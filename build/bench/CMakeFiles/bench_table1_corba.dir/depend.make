# Empty dependencies file for bench_table1_corba.
# This may be replaced when dependencies are built.
