file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_corba.dir/bench_table1_corba.cpp.o"
  "CMakeFiles/bench_table1_corba.dir/bench_table1_corba.cpp.o.d"
  "bench_table1_corba"
  "bench_table1_corba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_corba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
