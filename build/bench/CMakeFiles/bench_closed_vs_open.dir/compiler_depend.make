# Empty compiler generated dependencies file for bench_closed_vs_open.
# This may be replaced when dependencies are built.
