file(REMOVE_RECURSE
  "CMakeFiles/bench_closed_vs_open.dir/bench_closed_vs_open.cpp.o"
  "CMakeFiles/bench_closed_vs_open.dir/bench_closed_vs_open.cpp.o.d"
  "bench_closed_vs_open"
  "bench_closed_vs_open.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_closed_vs_open.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
