# Empty compiler generated dependencies file for bench_peer_participation.
# This may be replaced when dependencies are built.
