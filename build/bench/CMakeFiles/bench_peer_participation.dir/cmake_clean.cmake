file(REMOVE_RECURSE
  "CMakeFiles/bench_peer_participation.dir/bench_peer_participation.cpp.o"
  "CMakeFiles/bench_peer_participation.dir/bench_peer_participation.cpp.o.d"
  "bench_peer_participation"
  "bench_peer_participation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_peer_participation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
