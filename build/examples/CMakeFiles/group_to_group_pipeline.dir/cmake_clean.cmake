file(REMOVE_RECURSE
  "CMakeFiles/group_to_group_pipeline.dir/group_to_group_pipeline.cpp.o"
  "CMakeFiles/group_to_group_pipeline.dir/group_to_group_pipeline.cpp.o.d"
  "group_to_group_pipeline"
  "group_to_group_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_to_group_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
