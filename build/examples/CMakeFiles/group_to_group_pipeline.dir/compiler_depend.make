# Empty compiler generated dependencies file for group_to_group_pipeline.
# This may be replaced when dependencies are built.
