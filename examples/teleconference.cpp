// Peer participation (§2.1(iii)): a teleconference-style application where
// every member multicasts to the full group — the motivating example the
// paper gives for the symmetric ordering protocol.
//
// Three participants spread over Newcastle, London and Pisa share a
// "minutes" document: each one-way send is an edit, and causality-
// preserving total order guarantees every participant sees the same
// transcript even though edits are issued concurrently over high-latency
// Internet paths.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "net/calibration.hpp"
#include "newtop/newtop_service.hpp"

using namespace newtop;
using namespace newtop::sim_literals;

namespace {

struct Participant {
    std::string name;
    std::unique_ptr<Orb> orb;
    std::unique_ptr<NewTopService> nso;
    PeerGroup room;
    std::vector<std::string> transcript;
};

}  // namespace

int main() {
    auto sites = calibration::make_paper_topology();
    Scheduler scheduler;
    Network network(scheduler, std::move(sites.topology), /*seed=*/7);
    Directory directory;

    // Lively group with the symmetric protocol: everyone is multicasting
    // regularly, so distributing the ordering duty beats funnelling
    // through a sequencer (§5.2).
    GroupConfig config;
    config.order = OrderMode::kTotalSymmetric;
    config.liveness = LivenessMode::kLively;

    const std::vector<std::pair<std::string, SiteId>> seats = {
        {"alice@newcastle", sites.newcastle},
        {"bob@london", sites.london},
        {"carla@pisa", sites.pisa},
    };

    std::vector<std::unique_ptr<Participant>> people;
    for (const auto& [name, site] : seats) {
        auto p = std::make_unique<Participant>();
        p->name = name;
        p->orb = std::make_unique<Orb>(network, network.add_node(site));
        p->nso = std::make_unique<NewTopService>(*p->orb, directory);
        Participant* raw = p.get();
        p->room = p->nso->join_peer_group(
            "conference", config,
            [raw](const NewTopService::PeerMessage& m) {
                raw->transcript.emplace_back(m.payload.begin(), m.payload.end());
            },
            [raw](const View& view) {
                std::printf("[%s] view %llu with %zu participants\n", raw->name.c_str(),
                            static_cast<unsigned long long>(view.epoch),
                            view.members.size());
            });
        scheduler.run_until(scheduler.now() + 500_ms);
        people.push_back(std::move(p));
    }

    // Everyone talks at once; total order sorts it out.
    auto say = [&](std::size_t who, const std::string& text) {
        const std::string line = people[who]->name + ": " + text;
        people[who]->room.publish(Bytes(line.begin(), line.end()));
    };
    say(0, "shall we start?");
    say(1, "the latency from London is fine");
    say(2, "Pisa checking in");
    scheduler.run_until(scheduler.now() + 1_s);
    say(2, "agenda item one");
    say(0, "agreed");
    say(1, "agreed");
    scheduler.run_until(scheduler.now() + 2_s);

    std::printf("\n--- transcript as seen from each site ---\n");
    for (const auto& p : people) {
        std::printf("[%s] %zu lines\n", p->name.c_str(), p->transcript.size());
    }
    const bool identical = people[0]->transcript == people[1]->transcript &&
                           people[1]->transcript == people[2]->transcript;
    std::printf("transcripts identical at all sites: %s\n", identical ? "yes" : "NO");
    for (const auto& line : people[0]->transcript) std::printf("  %s\n", line.c_str());
    return identical ? 0 : 1;
}
