// A replicated key-value store: the classic "management of replicated data
// for high availability" application of object groups (§1 of the paper).
//
// Three stateful replicas (active replication + state transfer), a WAN
// client bound with the open-group approach, a replica joining mid-life,
// and a crash that the group absorbs.
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "net/calibration.hpp"
#include "newtop/newtop_service.hpp"
#include "replication/active_replica.hpp"

using namespace newtop;
using namespace newtop::sim_literals;

namespace {

constexpr std::uint32_t kPut = 1;
constexpr std::uint32_t kGet = 2;
constexpr std::uint32_t kSize = 3;

class KvServant : public StatefulServant {
public:
    Bytes handle(std::uint32_t method, const Bytes& args) override {
        Decoder d(args);
        switch (method) {
            case kPut: {
                std::string key, value;
                decode(d, key);
                decode(d, value);
                data_[key] = value;
                return encode_to_bytes(true);
            }
            case kGet: {
                std::string key;
                decode(d, key);
                const auto it = data_.find(key);
                if (it == data_.end()) throw ServantError("no such key: " + key);
                return encode_to_bytes(it->second);
            }
            case kSize:
                return encode_to_bytes(static_cast<std::uint64_t>(data_.size()));
            default:
                throw ServantError("unknown method");
        }
    }

    [[nodiscard]] Bytes snapshot() const override { return encode_to_bytes(data_); }
    void restore(const Bytes& snapshot) override {
        data_ = decode_from_bytes<std::map<std::string, std::string>>(snapshot);
    }

private:
    std::map<std::string, std::string> data_;
};

Bytes put_args(const std::string& key, const std::string& value) {
    Encoder e;
    encode(e, key);
    encode(e, value);
    return std::move(e).take();
}

}  // namespace

int main() {
    auto sites = calibration::make_paper_topology();
    Scheduler scheduler;
    Network network(scheduler, std::move(sites.topology), /*seed=*/99);
    Directory directory;

    GroupConfig config;
    config.order = OrderMode::kTotalAsymmetric;
    config.liveness = LivenessMode::kLively;  // replicas watch each other

    // Three replicas on the Newcastle LAN.
    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<NewTopService>> nsos;
    std::vector<std::shared_ptr<KvServant>> stores;
    std::vector<std::unique_ptr<ActiveReplica>> replicas;
    auto add_replica = [&] {
        orbs.push_back(std::make_unique<Orb>(network, network.add_node(sites.newcastle)));
        nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
        stores.push_back(std::make_shared<KvServant>());
        replicas.push_back(
            std::make_unique<ActiveReplica>(*nsos.back(), "kv", config, stores.back()));
        scheduler.run_until(scheduler.now() + 500_ms);
    };
    add_replica();
    add_replica();
    add_replica();
    std::printf("kv store up: 3 replicas in Newcastle\n");

    // A client in Pisa: high-latency path, so the open-group approach.
    orbs.push_back(std::make_unique<Orb>(network, network.add_node(sites.pisa)));
    auto& client = *nsos.emplace_back(std::make_unique<NewTopService>(*orbs.back(), directory));
    GroupProxy kv = client.bind("kv", {.mode = BindMode::kOpen, .restricted = true});

    int pending = 0;
    auto wait_done = [&] {
        scheduler.run_until(scheduler.now() + 2_s);
    };
    auto put = [&](const std::string& key, const std::string& value) {
        ++pending;
        kv.invoke(kPut, put_args(key, value), InvocationMode::kWaitMajority,
                  [&pending, key](const GroupReply& reply) {
                      --pending;
                      std::printf("put %-8s -> %s\n", key.c_str(),
                                  reply.complete ? "committed (majority acked)" : "FAILED");
                  });
        wait_done();
    };
    auto get = [&](const std::string& key) {
        kv.invoke(kGet, encode_to_bytes(key), InvocationMode::kWaitFirst,
                  [key](const GroupReply& reply) {
                      if (const Bytes* value = reply.first_value()) {
                          std::printf("get %-8s -> %s\n", key.c_str(),
                                      decode_from_bytes<std::string>(*value).c_str());
                      } else {
                          std::printf("get %-8s -> <error>\n", key.c_str());
                      }
                  });
        wait_done();
    };

    put("city", "Newcastle");
    put("venue", "DSN 2000");
    get("city");

    // Grow the group: the new replica state-transfers before serving.
    std::printf("adding a fourth replica...\n");
    add_replica();
    scheduler.run_until(scheduler.now() + 3_s);
    std::printf("replica 4 synced: %s\n", replicas[3]->synced() ? "yes" : "no");

    // Kill one replica; the group masks it.
    network.crash(orbs[1]->node_id());
    std::printf("crashed replica 2; writing through the fault...\n");
    put("status", "still-up");
    scheduler.run_until(scheduler.now() + 5_s);
    get("status");

    std::printf("replica sizes: ");
    for (std::size_t i = 0; i < stores.size(); ++i) {
        if (i == 1) continue;  // crashed
        const std::uint64_t n =
            decode_from_bytes<std::uint64_t>(stores[i]->handle(kSize, {}));
        std::printf("r%zu=%llu ", i + 1, static_cast<unsigned long long>(n));
    }
    std::printf("\n");
    return 0;
}
