// Group-to-group invocation (§4.3, fig. 6): a replicated front-end group gx
// calls a replicated back-end group gy through a client monitor group gz.
//
// The front-end replicas each issue the *same* call; the request manager
// filters the duplicates, forwards one copy into the back-end group, and
// multicasts the gathered replies in gz so every front-end member receives
// them atomically — the whole pipeline stays replica-consistent.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "net/calibration.hpp"
#include "newtop/newtop_service.hpp"

using namespace newtop;
using namespace newtop::sim_literals;

namespace {

constexpr std::uint32_t kAudit = 1;

/// Back-end: an audit log that counts entries.
class AuditServant : public GroupServant {
public:
    Bytes handle(std::uint32_t method, const Bytes& args) override {
        if (method != kAudit) throw ServantError("unknown method");
        ++entries;
        const auto line = decode_from_bytes<std::string>(args);
        return encode_to_bytes("logged#" + std::to_string(entries) + ": " + line);
    }
    int entries{0};
};

struct Host {
    std::unique_ptr<Orb> orb;
    std::unique_ptr<NewTopService> nso;
};

}  // namespace

int main() {
    Scheduler scheduler;
    Network network(scheduler, calibration::make_lan_topology(), /*seed=*/5);
    Directory directory;

    auto add_host = [&] {
        Host h;
        h.orb = std::make_unique<Orb>(network, network.add_node(SiteId(0)));
        h.nso = std::make_unique<NewTopService>(*h.orb, directory);
        return h;
    };

    // Back-end group gy: two audit servers.
    GroupConfig config;
    config.order = OrderMode::kTotalAsymmetric;
    std::vector<Host> backends;
    std::vector<std::shared_ptr<AuditServant>> audits;
    for (int i = 0; i < 2; ++i) {
        backends.push_back(add_host());
        audits.push_back(std::make_shared<AuditServant>());
        backends.back().nso->serve("audit", config, audits.back());
        scheduler.run_until(scheduler.now() + 300_ms);
    }
    std::printf("back-end group 'audit' up with 2 members\n");

    // Front-end group gx: two members that process the same inputs.
    std::vector<Host> frontends;
    GroupConfig gx_config;
    gx_config.order = OrderMode::kTotalSymmetric;
    frontends.push_back(add_host());
    const GroupId gx = frontends[0].nso->group_comm().create_group("frontend", gx_config);
    frontends.push_back(add_host());
    frontends[1].nso->group_comm().join_group("frontend");
    scheduler.run_until(scheduler.now() + 500_ms);
    std::printf("front-end group 'frontend' up with 2 members\n");

    // Each front-end member binds the *group* to the back-end.
    std::vector<GroupProxy> proxies;
    for (auto& fe : frontends) proxies.push_back(fe.nso->bind_group(gx, "audit"));
    scheduler.run_until(scheduler.now() + 1_s);

    // Both members issue the same logical call; the replies come back to
    // both, and the back-end executed it once per replica (not per caller).
    int deliveries = 0;
    for (std::size_t i = 0; i < proxies.size(); ++i) {
        proxies[i].invoke(kAudit, encode_to_bytes(std::string("order #1001 shipped")),
                          InvocationMode::kWaitAll, [&deliveries, i](const GroupReply& reply) {
                              ++deliveries;
                              std::printf("front-end %zu received %zu replies: %s\n", i,
                                          reply.replies.size(),
                                          reply.first_value()
                                              ? decode_from_bytes<std::string>(
                                                    *reply.first_value())
                                                    .c_str()
                                              : "<none>");
                          });
    }
    scheduler.run_until(scheduler.now() + 3_s);

    std::printf("replies delivered to %d front-end members\n", deliveries);
    std::printf("back-end executions: replica1=%d replica2=%d (each exactly once)\n",
                audits[0]->entries, audits[1]->entries);
    const bool ok = deliveries == 2 && audits[0]->entries == 1 && audits[1]->entries == 1;
    std::printf("pipeline invariant holds: %s\n", ok ? "yes" : "NO");
    return ok ? 0 : 1;
}
