// Quickstart: a replicated random-number service — the same service the
// paper benchmarks (§5.1) — served by three active replicas and invoked by
// a client through the NewTop object group service.
//
//   $ ./quickstart
//
// Walks through: building a simulated LAN, starting servers, binding a
// client with the open-group approach, and the four invocation primitives.
#include <cstdio>
#include <memory>

#include "net/calibration.hpp"
#include "newtop/newtop_service.hpp"

using namespace newtop;
using namespace newtop::sim_literals;

namespace {

constexpr std::uint32_t kDraw = 1;  // draw a pseudo-random number

/// The paper's benchmark servant: returns a pseudo-random number.
class RandomServant : public GroupServant {
public:
    explicit RandomServant(std::uint64_t seed) : rng_(seed) {}

    Bytes handle(std::uint32_t method, const Bytes&) override {
        if (method != kDraw) throw ServantError("unknown method");
        return encode_to_bytes(rng_.next_u64() % 1000);
    }

private:
    Rng rng_;
};

}  // namespace

int main() {
    // 1. A simulated fast-Ethernet LAN (see DESIGN.md for the calibration).
    Scheduler scheduler;
    Network network(scheduler, calibration::make_lan_topology(), /*seed=*/2026);
    Directory directory;

    // 2. Three server hosts, each running an ORB, a NewTop service object
    //    and a replica of the random-number servant.  All replicas draw
    //    from the same seed, so active replication keeps them identical.
    GroupConfig server_config;
    server_config.order = OrderMode::kTotalAsymmetric;  // best for request-reply (§5)

    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<NewTopService>> nsos;
    for (int i = 0; i < 3; ++i) {
        orbs.push_back(std::make_unique<Orb>(network, network.add_node(SiteId(0))));
        nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
        nsos.back()->serve("random", server_config, std::make_shared<RandomServant>(42));
        scheduler.run_until(scheduler.now() + 200_ms);  // let the member join
    }
    std::printf("server group 'random' is up with 3 members\n");

    // 3. A client host binds with the open-group approach: it forms a
    //    client/server group with one member (the request manager).
    orbs.push_back(std::make_unique<Orb>(network, network.add_node(SiteId(0))));
    auto& client = *nsos.emplace_back(std::make_unique<NewTopService>(*orbs.back(), directory));
    GroupProxy proxy = client.bind("random", {.mode = BindMode::kOpen});

    // 4. The four invocation primitives (§2.1).
    auto print_reply = [](const char* label) {
        return [label](const GroupReply& reply) {
            std::printf("%-14s -> %zu replies (complete=%d)", label, reply.replies.size(),
                        reply.complete ? 1 : 0);
            if (const Bytes* value = reply.first_value()) {
                std::printf(", first value = %llu",
                            static_cast<unsigned long long>(
                                decode_from_bytes<std::uint64_t>(*value)));
            }
            std::printf("\n");
        };
    };

    proxy.invoke(kDraw, {}, InvocationMode::kWaitFirst, print_reply("wait-first"));
    scheduler.run_until(scheduler.now() + 1_s);
    proxy.invoke(kDraw, {}, InvocationMode::kWaitMajority, print_reply("wait-majority"));
    scheduler.run_until(scheduler.now() + 1_s);
    proxy.invoke(kDraw, {}, InvocationMode::kWaitAll, print_reply("wait-all"));
    scheduler.run_until(scheduler.now() + 1_s);
    proxy.one_way(kDraw, {});
    std::printf("one-way        -> fire and forget\n");
    scheduler.run_until(scheduler.now() + 1_s);

    // 5. Fault tolerance: kill the request manager mid-flight; the smart
    //    proxy rebinds to another member and the retry is answered from the
    //    servers' reply caches without re-execution.
    const EndpointId manager = *proxy.manager();
    for (std::size_t i = 0; i < nsos.size(); ++i) {
        if (nsos[i]->id() == manager) {
            network.crash(orbs[i]->node_id());
            std::printf("crashed the request manager (endpoint %llu)\n",
                        static_cast<unsigned long long>(manager.value()));
        }
    }
    proxy.invoke(kDraw, {}, InvocationMode::kWaitAll, print_reply("after crash"));
    scheduler.run_until(scheduler.now() + 10_s);
    std::printf("rebinds performed: %llu\n",
                static_cast<unsigned long long>(proxy.rebinds()));
    return 0;
}
