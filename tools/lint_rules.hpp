// Rule tables for newtop_lint (see lint_scanner.hpp for the engine).
//
// This header *is* the determinism and layering contract of the repo, in
// machine-checked form.  The simulator's guarantee — same seed, same trace
// stream, bit for bit — only holds while no code on a simulation path reads
// wall clocks, consults process-global randomness, or lets hash-table /
// pointer layout decide an order that protocol or trace code can observe.
// The chaos campaign (tools/newtop_fuzz) *samples* that guarantee; these
// tables *enforce* it statically on every build.
//
// Suppression syntax: a comment of the form
//     newtop-lint: allow(getenv): replay knob read once before simulation starts
// (rule id in parentheses, mandatory reason after the colon) on the
// offending line, or alone on the line directly above it.
#pragma once

#include <array>
#include <string_view>

namespace newtop::lint {

// ---------------------------------------------------------------------------
// Rule identifiers.
// ---------------------------------------------------------------------------
inline constexpr std::string_view kRuleWallClock = "wall-clock";
inline constexpr std::string_view kRuleRawRandom = "raw-random";
inline constexpr std::string_view kRuleGetenv = "getenv";
inline constexpr std::string_view kRuleUnordered = "unordered-container";
inline constexpr std::string_view kRulePointerKey = "pointer-key";
inline constexpr std::string_view kRuleFloatSim = "float-sim";
inline constexpr std::string_view kRuleLayerDag = "layer-dag";
inline constexpr std::string_view kRuleMetricName = "metric-name";
inline constexpr std::string_view kRuleBadSuppression = "bad-suppression";
inline constexpr std::string_view kRuleCodecSymmetry = "codec-symmetry";
inline constexpr std::string_view kRuleStructCoverage = "struct-coverage";
inline constexpr std::string_view kRuleHotAlloc = "hot-path-alloc";

inline constexpr std::array<std::string_view, 12> kAllRules = {
    kRuleWallClock,     kRuleRawRandom,     kRuleGetenv,   kRuleUnordered,
    kRulePointerKey,    kRuleFloatSim,      kRuleLayerDag, kRuleMetricName,
    kRuleBadSuppression, kRuleCodecSymmetry, kRuleStructCoverage, kRuleHotAlloc,
};

// ---------------------------------------------------------------------------
// Banned identifier sets.
// ---------------------------------------------------------------------------

/// Wall-clock and real-time sources.  Simulated time comes from
/// Scheduler::now() (util/time.hpp vocabulary) and nowhere else, so these
/// are banned in *all* scanned code, including tests and benches: a bench
/// that timed itself with the host clock would print unreproducible numbers.
inline constexpr std::array<std::string_view, 10> kWallClockIds = {
    "system_clock",  "steady_clock", "high_resolution_clock", "gettimeofday",
    "clock_gettime", "timespec_get", "localtime",             "gmtime",
    "strftime",      "ftime",
};

/// `time` / `clock` are too short to ban as bare identifiers (methods and
/// members legitimately use those names); they are flagged only as direct
/// calls — identifier immediately followed by `(` and not reached through
/// `.` / `->` / a non-std `::` qualifier.
inline constexpr std::array<std::string_view, 2> kWallClockCallIds = {"time", "clock"};

/// Process-global / non-seeded randomness.  All randomness flows through
/// util/rng.hpp (xoshiro256** seeded per scenario); src/util/ itself is
/// sanctioned so the engine can be implemented or swapped there.
inline constexpr std::array<std::string_view, 13> kRawRandomIds = {
    "rand",         "srand",         "rand_r",       "drand48",     "lrand48",
    "random_device", "mt19937",      "mt19937_64",   "minstd_rand", "minstd_rand0",
    "default_random_engine", "random_shuffle", "ranlux48",
};

/// Environment access.  The environment is host state: a scenario whose
/// behaviour depends on it is not reproducible from its seed.  Sanctioned
/// in src/util/ (the log-level knob); entry points that read replay /
/// export knobs *before* any simulation starts carry explicit suppressions.
inline constexpr std::array<std::string_view, 5> kEnvIds = {
    "getenv", "secure_getenv", "setenv", "putenv", "unsetenv",
};

/// Hash containers whose iteration order is implementation/layout defined.
inline constexpr std::array<std::string_view, 4> kUnorderedIds = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset",
};

/// Ordered associative containers checked for pointer-typed keys (pointer
/// comparison order is allocation order — nondeterministic across runs).
inline constexpr std::array<std::string_view, 4> kOrderedAssocIds = {
    "map", "set", "multimap", "multiset",
};

// ---------------------------------------------------------------------------
// Path scoping.
// ---------------------------------------------------------------------------

/// Directories whose contents are protocol- or trace-visible: any container
/// iteration order here can leak into delivery order, view composition or
/// the trace stream.  unordered-container / pointer-key apply under these
/// prefixes.  src/util/ is exempt (it may host a deterministic-map wrapper
/// one day); src/fuzz/ is included because the scenario generator's output
/// must also be a pure function of its seed.
inline constexpr std::array<std::string_view, 9> kProtocolVisibleDirs = {
    "src/sim/", "src/net/",    "src/orb/",        "src/gcs/",  "src/invocation/",
    "src/obs/", "src/newtop/", "src/replication/", "src/fuzz/",
};

/// raw-random and getenv are sanctioned under these prefixes.
inline constexpr std::array<std::string_view, 1> kRandomSanctionedDirs = {"src/util/"};
inline constexpr std::array<std::string_view, 1> kEnvSanctionedDirs = {"src/util/"};

/// Metric / phase name prefixes that must come from the central table
/// (src/obs/names.hpp).  A typo'd literal would silently fork a new counter
/// or time series and break the profiler's reconciliation, so string
/// literals with these prefixes are banned in src/ outside that header —
/// call sites spell obs::metric::k... / obs::phase::k... instead.
inline constexpr std::array<std::string_view, 10> kMetricPrefixes = {
    "gcs.",      "invocation.",  "cpu.", "net.",  "orb.",
    "recovery.", "replication.", "obs.", "prof.", "directory.",
};
inline constexpr std::string_view kMetricScopeDir = "src/";
inline constexpr std::string_view kMetricTableFile = "src/obs/names.hpp";

// ---------------------------------------------------------------------------
// Semantic passes (lint_passes.hpp): wire-codec symmetry, struct coverage,
// hot-path allocation discipline.
// ---------------------------------------------------------------------------

/// Directories holding wire codecs — free functions
/// `encode(Encoder&, const T&)` / `decode(Decoder&, T&)` (and the
/// `*_body` variant-member forms).  codec-symmetry pairs every encode with
/// its decode across these files and compares the ordered op sequences;
/// struct-coverage additionally checks each codec against T's declared
/// field list.
inline constexpr std::array<std::string_view, 4> kCodecScopeDirs = {
    "src/serial/", "src/gcs/", "src/orb/", "src/invocation/",
};

/// Files outside kCodecScopeDirs whose struct declarations are still wire
/// structs (their codecs live inside the scope dirs).
inline constexpr std::array<std::string_view, 1> kCodecExtraStructFiles = {
    "src/obs/trace.hpp",
};

/// Hot-path regions where the arena-CDR zero-allocation property is
/// enforced statically: the serialization library and the ordering engines'
/// per-message data path.  hot-path-alloc bans `new`, make_unique /
/// make_shared, by-value std::string, std::function, and push_back /
/// emplace_back growth in functions with no visible reserve().
inline constexpr std::array<std::string_view, 2> kHotPathPrefixes = {
    "src/serial/",
    "src/gcs/ordering.",
};

/// Allocating factory calls banned on hot paths.
inline constexpr std::array<std::string_view, 2> kAllocMakeIds = {"make_unique", "make_shared"};

/// Amortised-growth calls banned on hot paths unless the enclosing function
/// visibly pre-sizes with reserve() (or carries a reasoned suppression).
inline constexpr std::array<std::string_view, 2> kAllocGrowthIds = {"push_back", "emplace_back"};

/// float-sim applies under src/: sim-time math is integral-microsecond plus
/// `double` for derived ratios (util/time.hpp); introducing `float` anywhere
/// near it invites silent mixed-precision truncation.
inline constexpr std::string_view kFloatScopeDir = "src/";

/// Scanned roots (relative to the repo root) and excluded subtrees.  The
/// lint fixtures intentionally violate every rule, so they are skipped.
inline constexpr std::array<std::string_view, 5> kScanRoots = {
    "src", "tests", "tools", "bench", "examples",
};
inline constexpr std::array<std::string_view, 1> kExcludedDirs = {"tests/lint_fixtures/"};

// ---------------------------------------------------------------------------
// Layer DAG.
// ---------------------------------------------------------------------------
//
//   util ──────────────┬──────────────────────────────┐
//     │                │                              │
//    obs    serial     │   (obs and serial both sit   │
//     │        │       │    directly on util)         │
//    sim ──────┼───────┘                              │
//     │        │                                      │
//    net ──────┤                                      │
//     │        │                                      │
//    orb ──────┘                                      │
//     │                                               │
//    gcs                                              │
//     │                                               │
//  invocation                                         │
//     │                                               │
//   newtop ◄── replication          fuzz ◄────────────┘
//
// Each entry lists the layers a layer's files may `#include "..."` from,
// in addition to the layer itself.  The table must be acyclic; the scanner
// verifies that at startup (layer_table_is_acyclic).

struct LayerDeps {
    std::string_view layer;
    std::array<std::string_view, 8> deps;  // empty entries are ""
};

inline constexpr std::array<LayerDeps, 11> kLayerTable = {{
    {"util", {}},
    {"obs", {"util"}},
    {"serial", {"util"}},
    {"sim", {"util", "obs"}},
    {"net", {"util", "obs", "sim"}},
    {"orb", {"util", "obs", "serial", "sim", "net"}},
    {"gcs", {"util", "obs", "serial", "sim", "net", "orb"}},
    {"invocation", {"util", "obs", "serial", "sim", "net", "orb", "gcs"}},
    {"newtop", {"util", "obs", "serial", "sim", "net", "orb", "gcs", "invocation"}},
    {"replication", {"util", "obs", "invocation", "newtop"}},
    {"fuzz", {"util", "obs", "gcs", "invocation", "newtop"}},
}};

}  // namespace newtop::lint
