#include "tools/lint_scanner.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "tools/lint_lex.hpp"
#include "tools/lint_passes.hpp"
#include "tools/lint_rules.hpp"

namespace newtop::lint {

namespace {

// ---------------------------------------------------------------------------
// Small helpers over the token stream and rule tables.
// ---------------------------------------------------------------------------

template <typename Table>
bool in_table(const Table& table, std::string_view s) {
    for (std::string_view entry : table) {
        if (!entry.empty() && entry == s) return true;
    }
    return false;
}

bool has_prefix_in(std::string_view path, const auto& prefixes) {
    for (std::string_view p : prefixes) {
        if (path.substr(0, p.size()) == p) return true;
    }
    return false;
}

/// Layer of a src/ file ("" when the file is outside src/).
std::string_view layer_of(std::string_view rel_path) {
    constexpr std::string_view kSrc = "src/";
    if (rel_path.substr(0, kSrc.size()) != kSrc) return {};
    const std::string_view rest = rel_path.substr(kSrc.size());
    const std::size_t slash = rest.find('/');
    return slash == std::string_view::npos ? std::string_view{} : rest.substr(0, slash);
}

const LayerDeps* find_layer(std::string_view layer) {
    for (const LayerDeps& entry : kLayerTable) {
        if (entry.layer == layer) return &entry;
    }
    return nullptr;
}

struct Include {
    int line;
    std::string path;
    bool quoted;
};

/// Recognise `# include <...>` / `# include "..."` token runs.
std::vector<Include> find_includes(const Lexed& lx) {
    std::vector<Include> out;
    const auto& t = lx.tokens;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].kind != TokKind::kPunct || t[i].text != "#") continue;
        if (t[i + 1].kind != TokKind::kIdentifier || t[i + 1].text != "include") continue;
        if (t[i + 1].line != t[i].line) continue;
        const Token& arg = t[i + 2];
        if (arg.kind == TokKind::kString && arg.line == t[i].line) {
            out.push_back({arg.line, arg.text, /*quoted=*/true});
            continue;
        }
        if (arg.kind == TokKind::kPunct && arg.text == "<") {
            std::string path;
            for (std::size_t j = i + 3; j < t.size() && t[j].line == t[i].line; ++j) {
                if (t[j].kind == TokKind::kPunct && t[j].text == ">") break;
                path += t[j].text;
            }
            out.push_back({arg.line, std::move(path), /*quoted=*/false});
        }
    }
    return out;
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

void add(std::vector<Finding>& out, int line, std::string_view rule, std::string message) {
    out.push_back({"", line, std::string(rule), std::move(message)});
}

/// wall-clock / raw-random / getenv: banned identifiers, with the short
/// names (`time`, `clock`) restricted to direct call syntax.
void check_banned_identifiers(std::string_view rel_path, const std::vector<Token>& t,
                              std::vector<Finding>& out) {
    const bool random_sanctioned = has_prefix_in(rel_path, kRandomSanctionedDirs);
    const bool env_sanctioned = has_prefix_in(rel_path, kEnvSanctionedDirs);
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::kIdentifier) continue;
        const std::string& id = t[i].text;
        const Token* prev = i > 0 ? &t[i - 1] : nullptr;
        const Token* prev2 = i > 1 ? &t[i - 2] : nullptr;
        const Token* next = i + 1 < t.size() ? &t[i + 1] : nullptr;
        const bool member_access =
            prev != nullptr && prev->kind == TokKind::kPunct &&
            (prev->text == "." || prev->text == "->");

        if (in_table(kWallClockIds, id)) {
            add(out, t[i].line, kRuleWallClock,
                "'" + id + "' reads host time; use Scheduler::now() / util/time.hpp");
            continue;
        }
        if (in_table(kWallClockCallIds, id) && next != nullptr &&
            next->kind == TokKind::kPunct && next->text == "(" && !member_access) {
            // Qualified calls: std::time(...) and ::time(...) are the libc
            // clock; Foo::time(...) is somebody's method and is fine.
            bool flagged = true;
            if (prev != nullptr && prev->kind == TokKind::kPunct && prev->text == "::") {
                flagged = prev2 == nullptr || prev2->kind != TokKind::kIdentifier ||
                          prev2->text == "std";
            }
            if (flagged) {
                add(out, t[i].line, kRuleWallClock,
                    "'" + id + "(...)' reads host time; use Scheduler::now()");
            }
            continue;
        }
        if (!random_sanctioned && in_table(kRawRandomIds, id) && !member_access) {
            add(out, t[i].line, kRuleRawRandom,
                "'" + id + "' is non-seeded/global randomness; use util/rng.hpp (Rng)");
            continue;
        }
        if (!env_sanctioned && in_table(kEnvIds, id) && !member_access) {
            add(out, t[i].line, kRuleGetenv,
                "'" + id + "' makes behaviour depend on host environment; plumb "
                "configuration through Scenario/options instead");
        }
    }
}

/// unordered-container + pointer-key, in protocol/trace-visible directories.
void check_containers(std::string_view rel_path, const std::vector<Token>& t,
                      std::vector<Finding>& out) {
    if (!has_prefix_in(rel_path, kProtocolVisibleDirs)) return;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::kIdentifier) continue;
        const std::string& id = t[i].text;
        const bool unordered = in_table(kUnorderedIds, id);
        if (unordered) {
            add(out, t[i].line, kRuleUnordered,
                "'" + id + "' iteration order is hash/layout defined and this directory is "
                "protocol/trace-visible; use std::map/std::set or a sorted vector");
        }
        if (!unordered && !in_table(kOrderedAssocIds, id)) continue;

        // pointer-key: std::map<Key, ...> / std::set<Key> whose key type
        // contains a raw or smart pointer orders by address — nondeterministic
        // across runs.  Only the std-qualified form is checked, which is the
        // only form this codebase uses.
        const bool std_qualified = i >= 2 && t[i - 1].kind == TokKind::kPunct &&
                                   t[i - 1].text == "::" &&
                                   t[i - 2].kind == TokKind::kIdentifier && t[i - 2].text == "std";
        if (!std_qualified) continue;
        if (i + 1 >= t.size() || t[i + 1].kind != TokKind::kPunct || t[i + 1].text != "<") continue;
        const bool keyed = id == "map" || id == "multimap" || id == "unordered_map" ||
                           id == "unordered_multimap";
        int depth = 1;
        for (std::size_t j = i + 2; j < t.size() && depth > 0; ++j) {
            const Token& tok = t[j];
            if (tok.kind == TokKind::kPunct) {
                if (tok.text == "<") ++depth;
                if (tok.text == ">") --depth;
                if (tok.text == ";" || tok.text == "{") break;  // lost the plot; bail out
                if (keyed && depth == 1 && tok.text == ",") break;  // end of key type
                if (tok.text == "*") {
                    add(out, t[i].line, kRulePointerKey,
                        "std::" + id + " keyed by a pointer orders by address; key by a "
                        "StrongId or stable value instead");
                    break;
                }
            } else if (tok.kind == TokKind::kIdentifier &&
                       (tok.text == "shared_ptr" || tok.text == "unique_ptr" ||
                        tok.text == "weak_ptr")) {
                add(out, t[i].line, kRulePointerKey,
                    "std::" + id + " keyed by a smart pointer compares addresses; key by a "
                    "StrongId or stable value instead");
                break;
            }
        }
    }
}

/// float-sim: `float` anywhere under src/ — sim-time math is integral
/// microseconds plus double-only derived ratios; float invites silent
/// mixed-precision truncation.
void check_float(std::string_view rel_path, const std::vector<Token>& t,
                 std::vector<Finding>& out) {
    if (rel_path.substr(0, kFloatScopeDir.size()) != kFloatScopeDir) return;
    for (const Token& tok : t) {
        if (tok.kind == TokKind::kIdentifier && tok.text == "float") {
            add(out, tok.line, kRuleFloatSim,
                "'float' in simulation code mixes precisions with double sim-time math; "
                "use double (or integral SimTime/SimDuration)");
        }
    }
}

/// metric-name: metric/phase name literals under src/ must come from the
/// central table (src/obs/names.hpp); a typo'd literal would silently fork
/// a new counter or series and break profiler reconciliation.
void check_metric_names(std::string_view rel_path, const std::vector<Token>& t,
                        std::vector<Finding>& out) {
    if (rel_path.substr(0, kMetricScopeDir.size()) != kMetricScopeDir) return;
    if (rel_path == kMetricTableFile) return;
    for (const Token& tok : t) {
        if (tok.kind != TokKind::kString) continue;
        for (const std::string_view prefix : kMetricPrefixes) {
            if (std::string_view(tok.text).substr(0, prefix.size()) == prefix) {
                add(out, tok.line, kRuleMetricName,
                    "metric/phase name literal \"" + tok.text +
                        "\" bypasses the central name table; use the obs::metric / "
                        "obs::phase constant from obs/names.hpp");
                break;
            }
        }
    }
}

/// layer-dag: quoted includes from src/<layer>/ must stay within the
/// declared dependency set.
void check_layering(std::string_view rel_path, const std::vector<Include>& includes,
                    std::vector<Finding>& out) {
    const std::string_view layer = layer_of(rel_path);
    if (layer.empty()) return;
    const LayerDeps* deps = find_layer(layer);
    if (deps == nullptr) {
        add(out, 1, kRuleLayerDag,
            "directory src/" + std::string(layer) + "/ is not declared in "
            "tools/lint_rules.hpp kLayerTable; add it with its allowed dependencies");
        return;
    }
    for (const Include& inc : includes) {
        if (!inc.quoted) continue;  // system headers are not layer edges
        const std::size_t slash = inc.path.find('/');
        if (slash == std::string::npos) continue;  // same-directory include
        const std::string target = inc.path.substr(0, slash);
        if (target == layer) continue;
        if (find_layer(target) == nullptr) {
            add(out, inc.line, kRuleLayerDag,
                "include \"" + inc.path + "\" targets '" + target +
                    "', which is not a declared layer (tools/lint_rules.hpp)");
            continue;
        }
        if (!in_table(deps->deps, target)) {
            add(out, inc.line, kRuleLayerDag,
                "layer '" + std::string(layer) + "' may not include from '" + target +
                    "' (allowed per tools/lint_rules.hpp: own layer + declared deps)");
        }
    }
}

/// Collect the scannable files under `repo_root`, sorted.
std::vector<SourceFile> gather_sources(const std::filesystem::path& repo_root) {
    namespace fs = std::filesystem;
    std::vector<std::string> paths;
    for (std::string_view root : kScanRoots) {
        const fs::path dir = repo_root / root;
        if (!fs::is_directory(dir)) continue;
        for (const auto& entry : fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file()) continue;
            const std::string ext = entry.path().extension().string();
            if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") continue;
            std::string rel = fs::relative(entry.path(), repo_root).generic_string();
            if (has_prefix_in(rel, kExcludedDirs)) continue;
            paths.push_back(std::move(rel));
        }
    }
    // Directory iteration order is filesystem-defined; the lint practises
    // what it preaches and sorts.
    std::sort(paths.begin(), paths.end());

    std::vector<SourceFile> out;
    out.reserve(paths.size());
    for (std::string& rel : paths) {
        std::ifstream in(repo_root / rel, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        out.push_back({std::move(rel), buf.str()});
    }
    return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points.
// ---------------------------------------------------------------------------

std::string to_string(const Finding& f) {
    std::ostringstream os;
    os << f.file << ':' << f.line << ": " << f.rule << ": " << f.message;
    return os.str();
}

std::vector<Finding> scan_source(std::string_view rel_path, std::string_view content) {
    const Lexed lx = lex(content);
    const Suppressions sup = parse_suppressions(lx);

    std::vector<Finding> raw;
    check_banned_identifiers(rel_path, lx.tokens, raw);
    check_containers(rel_path, lx.tokens, raw);
    check_float(rel_path, lx.tokens, raw);
    check_metric_names(rel_path, lx.tokens, raw);
    check_layering(rel_path, find_includes(lx), raw);
    for (Finding& f : check_hot_alloc(rel_path, content)) raw.push_back(std::move(f));

    std::vector<Finding> out;
    for (Finding& f : raw) {
        const auto it = sup.by_line.find(f.line);
        if (it != sup.by_line.end() && it->second.count(f.rule) != 0) continue;
        out.push_back(std::move(f));
    }
    for (const Finding& f : sup.malformed) out.push_back(f);
    for (Finding& f : out) f.file = std::string(rel_path);
    std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
        return std::tie(a.line, a.rule, a.message) < std::tie(b.line, b.rule, b.message);
    });
    return out;
}

std::vector<Finding> scan_tree(const std::filesystem::path& repo_root) {
    return scan_tree_report(repo_root).findings;
}

TreeReport scan_tree_report(const std::filesystem::path& repo_root) {
    TreeReport report;
    for (const std::string_view rule : kAllRules) report.suppressions[std::string(rule)] = 0;

    std::string table_error;
    if (!layer_table_is_valid(&table_error)) {
        report.findings.push_back(
            {"tools/lint_rules.hpp", 1, std::string(kRuleLayerDag), table_error});
        return report;
    }

    const std::vector<SourceFile> files = gather_sources(repo_root);
    for (const SourceFile& f : files) {
        std::vector<Finding> file_findings = scan_source(f.rel_path, f.content);
        report.findings.insert(report.findings.end(),
                               std::make_move_iterator(file_findings.begin()),
                               std::make_move_iterator(file_findings.end()));
        const Suppressions sup = parse_suppressions(lex(f.content));
        for (const auto& [line, rules] : sup.by_line) {
            for (const std::string& rule : rules) ++report.suppressions[rule];
        }
    }

    std::vector<Finding> semantic = run_semantic_passes(files);
    report.findings.insert(report.findings.end(), std::make_move_iterator(semantic.begin()),
                           std::make_move_iterator(semantic.end()));
    std::sort(report.findings.begin(), report.findings.end(),
              [](const Finding& a, const Finding& b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });
    return report;
}

bool layer_table_is_valid(std::string* error) {
    auto fail = [error](std::string msg) {
        if (error != nullptr) *error = std::move(msg);
        return false;
    };
    // Every named dependency must be a declared layer, and no layer may be
    // declared twice.
    for (std::size_t i = 0; i < kLayerTable.size(); ++i) {
        for (std::size_t j = i + 1; j < kLayerTable.size(); ++j) {
            if (kLayerTable[i].layer == kLayerTable[j].layer) {
                return fail("layer '" + std::string(kLayerTable[i].layer) + "' declared twice");
            }
        }
        for (std::string_view dep : kLayerTable[i].deps) {
            if (dep.empty()) continue;
            if (dep == kLayerTable[i].layer) {
                return fail("layer '" + std::string(dep) + "' lists itself as a dependency");
            }
            if (find_layer(dep) == nullptr) {
                return fail("layer '" + std::string(kLayerTable[i].layer) +
                            "' depends on undeclared layer '" + std::string(dep) + "'");
            }
        }
    }
    // Acyclicity via iterative removal of zero-dependency layers (Kahn).
    std::set<std::string_view> remaining;
    for (const LayerDeps& entry : kLayerTable) remaining.insert(entry.layer);
    bool progress = true;
    while (progress && !remaining.empty()) {
        progress = false;
        for (auto it = remaining.begin(); it != remaining.end();) {
            const LayerDeps* deps = find_layer(*it);
            bool ready = true;
            for (std::string_view dep : deps->deps) {
                if (!dep.empty() && remaining.count(dep) != 0) ready = false;
            }
            if (ready) {
                it = remaining.erase(it);
                progress = true;
            } else {
                ++it;
            }
        }
    }
    if (!remaining.empty()) {
        std::string cycle;
        for (std::string_view layer : remaining) {
            if (!cycle.empty()) cycle += ", ";
            cycle += layer;
        }
        return fail("layer dependency table contains a cycle among: " + cycle);
    }
    return true;
}

}  // namespace newtop::lint
