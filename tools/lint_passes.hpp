// Semantic analysis passes of newtop_lint.
//
// Where lint_scanner.cpp checks one token stream at a time against banned
// patterns, the passes here understand just enough structure to check
// *relationships*: that every wire codec's decode mirrors its encode op for
// op (codec-symmetry), that both touch every declared struct field exactly
// once in declaration order (struct-coverage), and that designated hot-path
// regions stay free of allocating constructs (hot-path-alloc).
//
// The extraction is deliberately syntactic — no types, no overload
// resolution — which is enough because the codecs follow a rigid idiom
// (one field per statement, widths spelled in the put_*/get_* name) and the
// idiom itself is what the passes enforce.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "tools/lint_scanner.hpp"

namespace newtop::lint {

struct SourceFile {
    std::string rel_path;  // repo-relative, '/'-separated
    std::string content;
};

/// Run the cross-file passes (codec-symmetry + struct-coverage) over a set
/// of sources.  Only files under lint_rules.hpp:kCodecScopeDirs contribute
/// codecs; those plus kCodecExtraStructFiles contribute struct field lists.
/// Findings are already suppression-filtered against each file's own
/// allow(rule) comments and carry their file path.
std::vector<Finding> run_semantic_passes(const std::vector<SourceFile>& files);

/// Per-file hot-path-alloc check (no cross-file state); no-op outside
/// kHotPathPrefixes.  Returned findings are NOT suppression-filtered (the
/// caller, scan_source, applies the shared filter).
std::vector<Finding> check_hot_alloc(std::string_view rel_path, std::string_view content);

}  // namespace newtop::lint
