// newtop_prof — trace-to-report latency-attribution CLI.
//
//   newtop_prof trace.json               # human-readable phase breakdown
//   newtop_prof --json trace.json        # deterministic JSON report
//   newtop_prof -o report.json trace.json
//
// Input is a TraceDump artifact (TraceDump::to_json()) as written by the
// bench harness (--profile) or a test.  The tool reconstructs every
// invocation's critical path, prints per-phase percentiles grouped by
// (binding, mode), and cross-checks the trace-derived sums against the
// histogram totals embedded in the dump.
//
// Exit status: 0 = report produced and every expectation reconciled within
// 1%; 1 = truncated/unparseable dump or a reconciliation mismatch; 2 = bad
// usage.  CI gates on this.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/oracle.hpp"
#include "obs/profiler.hpp"

namespace {

int usage() {
    std::cerr << "usage: newtop_prof [--json] [--text] [-o FILE] TRACE_DUMP.json\n"
                 "  --json     emit the report as deterministic JSON (default: text)\n"
                 "  --text     emit the human-readable table\n"
                 "  -o FILE    write the report to FILE instead of stdout\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    bool json = false;
    std::string out_path;
    std::string in_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--text") {
            json = false;
        } else if (arg == "-o") {
            if (i + 1 >= argc) return usage();
            out_path = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown argument: " << arg << "\n";
            return usage();
        } else if (in_path.empty()) {
            in_path = arg;
        } else {
            return usage();
        }
    }
    if (in_path.empty()) return usage();

    std::ifstream in(in_path);
    if (!in) {
        std::cerr << "newtop_prof: cannot open " << in_path << "\n";
        return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();

    newtop::obs::TraceDump dump;
    std::string error;
    if (!newtop::obs::parse_trace_dump(buffer.str(), dump, error)) {
        std::cerr << "newtop_prof: " << in_path << " is not a trace dump: " << error << "\n";
        return 1;
    }

    const newtop::obs::ProfileReport report = newtop::obs::LatencyProfiler{}.analyze(dump);
    const std::string rendered = json ? report.to_json() : report.to_text();
    if (out_path.empty()) {
        std::cout << rendered;
        if (json) std::cout << "\n";
    } else {
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "newtop_prof: cannot write " << out_path << "\n";
            return 1;
        }
        out << rendered;
        if (json) out << "\n";
    }

    if (!report.ok) {
        std::cerr << "newtop_prof: refused: " << report.error << "\n";
        return 1;
    }
    if (!report.reconciled()) {
        std::cerr << "newtop_prof: reconciliation failed — trace-derived phase sums "
                     "disagree with the embedded histogram totals by more than 1%. "
                     "This indicates a tracing bug, not a slow run.\n";
        for (const auto& r : report.reconciliations) {
            if (r.ok) continue;
            std::cerr << "  " << r.metric << ": count " << r.actual_count << "/"
                      << r.expected_count << ", sum " << r.actual_sum_us << "/"
                      << r.expected_sum_us << "us\n";
        }
        return 1;
    }
    return 0;
}
