#include "tools/lint_lex.hpp"

#include <algorithm>
#include <cctype>

#include "tools/lint_rules.hpp"

namespace newtop::lint {

namespace {

bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Raw-string-literal prefixes: R, u8R, uR, UR, LR.
bool is_raw_prefix(std::string_view id) {
    return id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR";
}

template <typename Table>
bool in_table(const Table& table, std::string_view s) {
    for (std::string_view entry : table) {
        if (!entry.empty() && entry == s) return true;
    }
    return false;
}

}  // namespace

Lexed lex(std::string_view src) {
    Lexed out;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = src.size();

    auto append_comment = [&out](int at, std::string_view text) {
        auto& slot = out.comments[at];
        if (!slot.empty()) slot += ' ';
        slot.append(text);
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            const std::size_t start = i + 2;
            std::size_t end = src.find('\n', start);
            if (end == std::string_view::npos) end = n;
            append_comment(line, src.substr(start, end - start));
            i = end;
            continue;
        }
        // Block comment (credited to its opening line; suppressions must not
        // span blocks, so only that line's text matters).
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            const int start_line = line;
            std::size_t end = src.find("*/", i + 2);
            if (end == std::string_view::npos) end = n;
            const std::string_view body = src.substr(i + 2, end - (i + 2));
            append_comment(start_line, body);
            line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
            i = (end == n) ? n : end + 2;
            continue;
        }
        // String literal.
        if (c == '"') {
            const int start_line = line;
            std::string text;
            ++i;
            while (i < n && src[i] != '"' && src[i] != '\n') {
                if (src[i] == '\\' && i + 1 < n) {
                    text += src[i];
                    text += src[i + 1];
                    i += 2;
                    continue;
                }
                text += src[i++];
            }
            if (i < n && src[i] == '"') ++i;
            out.tokens.push_back({TokKind::kString, std::move(text), start_line});
            out.code_lines.insert(start_line);
            continue;
        }
        // Character literal.
        if (c == '\'') {
            ++i;
            while (i < n && src[i] != '\'' && src[i] != '\n') {
                i += (src[i] == '\\' && i + 1 < n) ? 2 : 1;
            }
            if (i < n && src[i] == '\'') ++i;
            out.code_lines.insert(line);
            continue;
        }
        // Identifier / keyword (and raw-string detection).
        if (is_ident_start(c)) {
            std::size_t j = i + 1;
            while (j < n && is_ident_char(src[j])) ++j;
            std::string id(src.substr(i, j - i));
            if (is_raw_prefix(id) && j < n && src[j] == '"') {
                // R"delim( ... )delim"
                std::size_t p = j + 1;
                std::string delim;
                while (p < n && src[p] != '(') delim += src[p++];
                const std::string closer = ")" + delim + "\"";
                std::size_t end = src.find(closer, p);
                if (end == std::string_view::npos) end = n;
                const std::string_view body = src.substr(i, std::min(end + closer.size(), n) - i);
                out.tokens.push_back({TokKind::kString, std::string(body), line});
                out.code_lines.insert(line);
                line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
                i = std::min(end + closer.size(), n);
                continue;
            }
            out.tokens.push_back({TokKind::kIdentifier, std::move(id), line});
            out.code_lines.insert(line);
            i = j;
            continue;
        }
        // Number (loose: suffixes, hex, separators, exponents).
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i + 1;
            while (j < n && (is_ident_char(src[j]) || src[j] == '.' || src[j] == '\'')) ++j;
            out.tokens.push_back({TokKind::kNumber, std::string(src.substr(i, j - i)), line});
            out.code_lines.insert(line);
            i = j;
            continue;
        }
        // Punctuation; `::` and `->` kept whole, everything else single-char.
        if (c == ':' && i + 1 < n && src[i + 1] == ':') {
            out.tokens.push_back({TokKind::kPunct, "::", line});
            out.code_lines.insert(line);
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && src[i + 1] == '>') {
            out.tokens.push_back({TokKind::kPunct, "->", line});
            out.code_lines.insert(line);
            i += 2;
            continue;
        }
        out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
        out.code_lines.insert(line);
        ++i;
    }
    return out;
}

Suppressions parse_suppressions(const Lexed& lx) {
    Suppressions out;
    constexpr std::string_view kMarker = "newtop-lint:";
    constexpr std::string_view kAllow = "allow(";
    for (const auto& [line, text] : lx.comments) {
        std::size_t pos = text.find(kMarker);
        if (pos == std::string::npos) continue;
        // A comment sharing a line with code guards that line; a standalone
        // comment guards the line below it.
        const int target = lx.code_lines.count(line) != 0 ? line : line + 1;
        bool any_wellformed = false;
        const std::size_t malformed_before = out.malformed.size();
        pos += kMarker.size();
        while ((pos = text.find(kAllow, pos)) != std::string::npos) {
            pos += kAllow.size();
            const std::size_t close = text.find(')', pos);
            if (close == std::string::npos) break;
            const std::string rule = text.substr(pos, close - pos);
            pos = close + 1;
            // Mandatory reason: a colon followed by non-blank text.
            std::size_t after = text.find_first_not_of(" \t", pos);
            const bool has_reason = after != std::string::npos && text[after] == ':' &&
                                    text.find_first_not_of(" \t", after + 1) != std::string::npos;
            if (!in_table(kAllRules, rule)) {
                out.malformed.push_back({"", line, std::string(kRuleBadSuppression),
                                         "allow(" + rule + ") names no known rule"});
                continue;
            }
            if (!has_reason) {
                out.malformed.push_back(
                    {"", line, std::string(kRuleBadSuppression),
                     "allow(" + rule + ") needs a reason: // newtop-lint: allow(" + rule +
                         "): <why this is safe>"});
                continue;
            }
            out.by_line[target].insert(rule);
            any_wellformed = true;
        }
        if (!any_wellformed && out.malformed.size() == malformed_before) {
            out.malformed.push_back({"", line, std::string(kRuleBadSuppression),
                                     "newtop-lint marker without a well-formed allow(<rule>)"});
        }
    }
    return out;
}

}  // namespace newtop::lint
