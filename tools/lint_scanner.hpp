// newtop_lint: the scanning engine behind the determinism & layering lint.
//
// A deliberately small, libclang-free analyzer: a comment- and string-aware
// tokenizer plus a handful of token-pattern rules driven by the tables in
// lint_rules.hpp.  It trades type-level precision for zero dependencies and
// sub-second whole-tree runs, which is what lets it sit in tier-1 ctest and
// every check.sh invocation.
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace newtop::lint {

struct Finding {
    std::string file;  // repo-relative path, '/'-separated
    int line = 0;      // 1-based
    std::string rule;  // rule id from lint_rules.hpp
    std::string message;

    friend bool operator==(const Finding&, const Finding&) = default;
};

/// Render as "file:line: rule: message" (the clickable compiler format).
std::string to_string(const Finding& f);

/// Scan one translation unit's text.  `rel_path` decides which rules are in
/// scope (layer membership, sanctioned directories); it must be repo-relative
/// with '/' separators.  Findings come back sorted by (line, rule).
std::vector<Finding> scan_source(std::string_view rel_path, std::string_view content);

/// Scan every .hpp/.cpp under the standard roots (lint_rules.hpp:kScanRoots)
/// of `repo_root`, excluding kExcludedDirs.  File order — and therefore
/// finding order — is sorted, so output is stable across filesystems.
std::vector<Finding> scan_tree(const std::filesystem::path& repo_root);

/// Whole-tree scan result: the per-file token rules *and* the cross-file
/// semantic passes (lint_passes.hpp), plus a census of every well-formed
/// allow(rule) suppression comment in scanned files.  The
/// census backs the tracked baseline (tools/lint_suppressions.baseline):
/// CI fails when a rule's suppression count grows without the baseline
/// being regenerated in the same diff.
struct TreeReport {
    std::vector<Finding> findings;               // sorted by (file, line, rule)
    std::map<std::string, int> suppressions;     // rule id -> active suppression count
};

TreeReport scan_tree_report(const std::filesystem::path& repo_root);

/// Self-check: the declared layer dependency table must be a DAG and every
/// named dependency must itself be a declared layer.
bool layer_table_is_valid(std::string* error = nullptr);

}  // namespace newtop::lint
