#include "tools/lint_passes.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <tuple>

#include "tools/lint_lex.hpp"
#include "tools/lint_rules.hpp"

namespace newtop::lint {

namespace {

bool has_prefix_in(std::string_view path, const auto& prefixes) {
    for (std::string_view p : prefixes) {
        if (path.substr(0, p.size()) == p) return true;
    }
    return false;
}

template <typename Table>
bool in_table(const Table& table, std::string_view s) {
    for (std::string_view entry : table) {
        if (!entry.empty() && entry == s) return true;
    }
    return false;
}

bool is_ident(const Token& t, std::string_view text) {
    return t.kind == TokKind::kIdentifier && t.text == text;
}
bool is_punct(const Token& t, std::string_view text) {
    return t.kind == TokKind::kPunct && t.text == text;
}

// ---------------------------------------------------------------------------
// Codec extraction.
//
// A codec is a non-template definition
//     void encode[_body](Encoder& e, const T& v) { <one op per statement> }
//     void decode[_body](Decoder& d, T& v)       { ... }
// Ops are primitive writes/reads (e.put_u64(v.f) / v.f = d.get_u64()) or
// nested recursion (encode(e, v.f) / decode(d, v.f)).  The decode side also
// understands the validated-cast idiom, where the raw value lands in a
// local named after the field:
//     const std::uint8_t kind = d.get_u8();  ...  v.kind = cast(kind);
// ---------------------------------------------------------------------------

struct CodecOp {
    std::string width;  // "u8".."i64", "bool", "double", "string", "blob", "nested"
    std::string field;  // "" for whole-parameter primitive codecs
    int line;
};

struct CodecDef {
    std::string file;
    int line = 0;
    std::string type;  // last identifier of the value parameter's type
    bool is_encode = false;
    std::vector<CodecOp> ops;
};

constexpr std::array<std::string_view, 10> kOpWidths = {
    "u8", "u16", "u32", "u64", "i32", "i64", "bool", "double", "string", "blob",
};

/// "put_u64" / "get_blob_view" -> the normalized width, or "" if not an op.
std::string op_width(std::string_view name, bool is_encode) {
    const std::string_view want = is_encode ? "put_" : "get_";
    if (name.substr(0, want.size()) != want) return {};
    std::string_view w = name.substr(want.size());
    if (w == "blob_view") w = "blob";
    return in_table(kOpWidths, w) ? std::string(w) : std::string{};
}

/// One parameter's tokens, split from a parameter list.
struct Param {
    std::vector<std::string> idents;  // identifiers in order, "const" skipped
};

/// Extract one op from a statement's tokens, if it contains one.
std::optional<CodecOp> stmt_op(const std::vector<Token>& stmt, bool is_encode,
                               const std::string& coder, const std::string& param) {
    // Primitive op: coder . put_X/get_X ( ... )
    for (std::size_t k = 0; k + 2 < stmt.size(); ++k) {
        if (!is_ident(stmt[k], coder) || !is_punct(stmt[k + 1], ".")) continue;
        const std::string width = op_width(stmt[k + 2].text, is_encode);
        if (width.empty()) continue;
        CodecOp op{width, "", stmt[k].line};
        if (is_encode) {
            // Field = first `param . ident` inside the call's arguments.
            for (std::size_t a = k + 3; a + 2 < stmt.size(); ++a) {
                if (is_ident(stmt[a], param) && is_punct(stmt[a + 1], ".") &&
                    stmt[a + 2].kind == TokKind::kIdentifier) {
                    op.field = stmt[a + 2].text;
                    break;
                }
            }
        } else {
            // Field = the identifier assigned to: `v.f = ...` or the local in
            // the alias idiom `const std::uint8_t f = d.get_u8();`.  A bare
            // `v = d.get_X()` is the whole-parameter primitive codec.
            for (std::size_t a = k; a-- > 0;) {
                if (!is_punct(stmt[a], "=")) continue;
                if (a > 0 && stmt[a - 1].kind == TokKind::kIdentifier &&
                    stmt[a - 1].text != param) {
                    op.field = stmt[a - 1].text;
                }
                break;
            }
        }
        return op;
    }
    // Nested recursion: encode(e, v.f) / decode(d, v.f) as a full statement.
    const std::string_view callee = is_encode ? "encode" : "decode";
    if (stmt.size() >= 4 && is_ident(stmt[0], std::string(callee)) && is_punct(stmt[1], "(")) {
        CodecOp op{"nested", "", stmt[0].line};
        for (std::size_t a = 2; a + 2 < stmt.size(); ++a) {
            if (is_ident(stmt[a], param) && is_punct(stmt[a + 1], ".") &&
                stmt[a + 2].kind == TokKind::kIdentifier) {
                op.field = stmt[a + 2].text;
                break;
            }
        }
        return op;
    }
    return std::nullopt;
}

void extract_codecs(const std::string& file, const std::vector<Token>& t,
                    std::vector<CodecDef>& out) {
    constexpr std::array<std::string_view, 4> kCodecNames = {"encode", "decode", "encode_body",
                                                             "decode_body"};
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != TokKind::kIdentifier || !in_table(kCodecNames, t[i].text)) continue;
        if (!is_punct(t[i + 1], "(")) continue;
        // Definitions only, returning void; `template <...>` overloads (the
        // generic container/StrongId codecs) are out of scope.
        if (i == 0 || !is_ident(t[i - 1], "void")) continue;
        {
            std::size_t j = i - 1;
            while (j > 0 && t[j - 1].kind == TokKind::kIdentifier &&
                   (t[j - 1].text == "inline" || t[j - 1].text == "static" ||
                    t[j - 1].text == "constexpr" || t[j - 1].text == "friend")) {
                --j;
            }
            if (j > 0 && is_punct(t[j - 1], ">")) continue;  // template
        }
        const bool is_encode = t[i].text.substr(0, 6) == "encode";

        // Parameter list: split at top-level commas up to the matching ')'.
        std::vector<Param> params(1);
        int depth = 1;
        std::size_t p = i + 2;
        for (; p < t.size() && depth > 0; ++p) {
            if (is_punct(t[p], "(")) ++depth;
            if (is_punct(t[p], ")") && --depth == 0) break;
            if (is_punct(t[p], ",") && depth == 1) {
                params.emplace_back();
                continue;
            }
            if (t[p].kind == TokKind::kIdentifier && t[p].text != "const") {
                params.back().idents.push_back(t[p].text);
            }
        }
        if (p >= t.size() || params.size() != 2) continue;
        const Param& coder_p = params[0];
        const Param& value_p = params[1];
        const std::string_view want_coder = is_encode ? "Encoder" : "Decoder";
        if (std::find(coder_p.idents.begin(), coder_p.idents.end(), want_coder) ==
            coder_p.idents.end()) {
            continue;
        }
        if (coder_p.idents.empty() || value_p.idents.size() < 2) continue;
        const std::string coder = coder_p.idents.back();
        const std::string param = value_p.idents.back();
        const std::string type = value_p.idents[value_p.idents.size() - 2];
        if (p + 1 >= t.size() || !is_punct(t[p + 1], "{")) continue;  // declaration

        CodecDef def{file, t[i].line, type, is_encode, {}};
        int body_depth = 1;
        std::vector<Token> stmt;
        for (std::size_t b = p + 2; b < t.size() && body_depth > 0; ++b) {
            if (is_punct(t[b], "{")) {
                ++body_depth;
                stmt.clear();
                continue;
            }
            if (is_punct(t[b], "}")) {
                --body_depth;
                stmt.clear();
                continue;
            }
            if (is_punct(t[b], ";")) {
                if (auto op = stmt_op(stmt, is_encode, coder, param)) def.ops.push_back(*op);
                stmt.clear();
                continue;
            }
            stmt.push_back(t[b]);
        }
        out.push_back(std::move(def));
    }
}

// ---------------------------------------------------------------------------
// Struct extraction: declared field names, in order.
// ---------------------------------------------------------------------------

struct StructDef {
    std::string file;
    int line = 0;
    std::string name;
    std::vector<std::string> fields;
};

void extract_structs(const std::string& file, const std::vector<Token>& t,
                     std::vector<StructDef>& out) {
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (!is_ident(t[i], "struct") || t[i + 1].kind != TokKind::kIdentifier) continue;
        std::size_t b = i + 2;
        if (is_punct(t[b], ":")) {  // base clause
            while (b < t.size() && !is_punct(t[b], "{") && !is_punct(t[b], ";")) ++b;
        }
        if (b >= t.size() || !is_punct(t[b], "{")) continue;  // forward decl / elaborated use

        StructDef def{file, t[i].line, t[i + 1].text, {}};
        std::vector<Token> stmt;
        bool stmt_braced = false;     // statement carried a {...} (default init / fn body)
        std::size_t brace_field = 0;  // index of last identifier before that brace
        auto flush = [&] {
            // A field declaration: no parens, not starting with a structural
            // keyword, ends in the field name (or `name{init}`).
            bool ok = !stmt.empty();
            for (const Token& tok : stmt) {
                if (is_punct(tok, "(") || is_punct(tok, ")")) ok = false;
            }
            constexpr std::array<std::string_view, 12> kNotField = {
                "friend", "using",  "static",  "typedef",   "template", "struct",
                "class",  "enum",   "public",  "private",   "protected", "operator",
            };
            if (ok && stmt[0].kind == TokKind::kIdentifier && in_table(kNotField, stmt[0].text)) {
                ok = false;
            }
            if (ok) {
                if (stmt_braced) {
                    if (brace_field < stmt.size() &&
                        stmt[brace_field].kind == TokKind::kIdentifier) {
                        def.fields.push_back(stmt[brace_field].text);
                    }
                } else {
                    for (std::size_t k = stmt.size(); k-- > 0;) {
                        if (stmt[k].kind == TokKind::kIdentifier) {
                            def.fields.push_back(stmt[k].text);
                            break;
                        }
                    }
                }
            }
            stmt.clear();
            stmt_braced = false;
        };
        int skip_depth = 0;
        std::size_t j = b + 1;
        for (; j < t.size(); ++j) {
            if (skip_depth > 0) {  // inside a nested {...}: fn body, init, nested type
                if (is_punct(t[j], "{")) ++skip_depth;
                if (is_punct(t[j], "}")) --skip_depth;
                continue;
            }
            if (is_punct(t[j], "{")) {
                if (!stmt_braced) {
                    stmt_braced = true;
                    brace_field = stmt.empty() ? 0 : stmt.size() - 1;
                }
                skip_depth = 1;
                continue;
            }
            if (is_punct(t[j], "}")) break;  // end of struct body
            if (is_punct(t[j], ";")) {
                flush();
                continue;
            }
            stmt.push_back(t[j]);
        }
        out.push_back(std::move(def));
    }
}

// ---------------------------------------------------------------------------
// The two cross-file checks.
// ---------------------------------------------------------------------------

std::string op_desc(const CodecOp& op) {
    std::string d = op.width;
    d += op.field.empty() ? " <whole value>" : " '" + op.field + "'";
    return d;
}

void check_symmetry(const std::vector<CodecDef>& codecs, std::vector<Finding>& out) {
    std::map<std::string, std::pair<const CodecDef*, const CodecDef*>> by_type;
    for (const CodecDef& def : codecs) {
        auto& slot = by_type[def.type];
        const CodecDef*& side = def.is_encode ? slot.first : slot.second;
        if (side != nullptr) {
            out.push_back({def.file, def.line, std::string(kRuleCodecSymmetry),
                           "duplicate " + std::string(def.is_encode ? "encode" : "decode") +
                               " definition for '" + def.type + "' (first at " + side->file + ":" +
                               std::to_string(side->line) + ")"});
            continue;
        }
        side = &def;
    }
    for (const auto& [type, pair] : by_type) {
        const CodecDef* enc = pair.first;
        const CodecDef* dec = pair.second;
        if (enc == nullptr || dec == nullptr) {
            const CodecDef* have = enc != nullptr ? enc : dec;
            out.push_back({have->file, have->line, std::string(kRuleCodecSymmetry),
                           std::string(have->is_encode ? "encode" : "decode") + "('" + type +
                               "') has no matching " + (have->is_encode ? "decode" : "encode") +
                               " anywhere in the codec scope"});
            continue;
        }
        const std::size_t n = std::min(enc->ops.size(), dec->ops.size());
        bool mismatched = false;
        for (std::size_t i = 0; i < n; ++i) {
            const CodecOp& a = enc->ops[i];
            const CodecOp& b = dec->ops[i];
            if (a.width == b.width && a.field == b.field) continue;
            out.push_back({dec->file, b.line, std::string(kRuleCodecSymmetry),
                           "'" + type + "' op #" + std::to_string(i + 1) + ": encode writes " +
                               op_desc(a) + " (" + enc->file + ":" + std::to_string(a.line) +
                               ") but decode reads " + op_desc(b)});
            mismatched = true;
            break;  // one divergence desynchronizes everything after it
        }
        if (!mismatched && enc->ops.size() != dec->ops.size()) {
            out.push_back({dec->file, dec->line, std::string(kRuleCodecSymmetry),
                           "'" + type + "': encode performs " + std::to_string(enc->ops.size()) +
                               " ops (" + enc->file + ":" + std::to_string(enc->line) +
                               ") but decode performs " + std::to_string(dec->ops.size())});
        }
    }
}

void check_coverage(const std::vector<CodecDef>& codecs, const std::vector<StructDef>& structs,
                    std::vector<Finding>& out) {
    std::map<std::string, std::vector<const StructDef*>> by_name;
    for (const StructDef& s : structs) by_name[s.name].push_back(&s);

    for (const CodecDef& def : codecs) {
        const auto it = by_name.find(def.type);
        if (it == by_name.end() || it->second.size() != 1) continue;  // no/ambiguous struct
        const StructDef& s = *it->second.front();
        const char* side = def.is_encode ? "encode" : "decode";

        std::vector<std::string> touched;
        bool attributable = true;
        for (const CodecOp& op : def.ops) {
            if (op.field.empty()) {
                out.push_back({def.file, op.line, std::string(kRuleStructCoverage),
                               std::string(side) + "('" + def.type + "') op (" + op.width +
                                   ") is not attributable to a declared field"});
                attributable = false;
                continue;
            }
            touched.push_back(op.field);
        }
        bool name_problem = !attributable;
        std::vector<std::string> unknown_reported;
        for (const std::string& f : touched) {
            if (std::find(s.fields.begin(), s.fields.end(), f) != s.fields.end()) continue;
            if (std::count(unknown_reported.begin(), unknown_reported.end(), f) != 0) continue;
            unknown_reported.push_back(f);
            out.push_back({def.file, def.line, std::string(kRuleStructCoverage),
                           std::string(side) + "('" + def.type + "') touches '" + f +
                               "', which is not a declared field (" + s.file + ":" +
                               std::to_string(s.line) + ")"});
            name_problem = true;
        }
        std::vector<std::string> seen;
        for (const std::string& f : touched) {
            if (std::count(seen.begin(), seen.end(), f) == 0 &&
                std::count(touched.begin(), touched.end(), f) > 1) {
                out.push_back({def.file, def.line, std::string(kRuleStructCoverage),
                               std::string(side) + "('" + def.type + "') touches field '" + f +
                                   "' more than once"});
                name_problem = true;
            }
            seen.push_back(f);
        }
        for (const std::string& f : s.fields) {
            if (std::find(touched.begin(), touched.end(), f) == touched.end()) {
                out.push_back({def.file, def.line, std::string(kRuleStructCoverage),
                               std::string(side) + "('" + def.type + "') never touches declared "
                                   "field '" + f + "' (" + s.file + ":" +
                                   std::to_string(s.line) + ")"});
                name_problem = true;
            }
        }
        // Same multiset, each exactly once: any residual difference is order.
        if (!name_problem && touched != s.fields) {
            for (std::size_t i = 0; i < touched.size(); ++i) {
                if (touched[i] != s.fields[i]) {
                    out.push_back(
                        {def.file, def.line, std::string(kRuleStructCoverage),
                         std::string(side) + "('" + def.type + "') touches fields out of "
                             "declaration order: position " + std::to_string(i + 1) + " is '" +
                             touched[i] + "' but the struct declares '" + s.fields[i] + "' (" +
                             s.file + ":" + std::to_string(s.line) + ")"});
                    break;
                }
            }
        }
    }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points.
// ---------------------------------------------------------------------------

std::vector<Finding> run_semantic_passes(const std::vector<SourceFile>& files) {
    std::vector<CodecDef> codecs;
    std::vector<StructDef> structs;
    std::map<std::string, Suppressions> sup_by_file;
    for (const SourceFile& f : files) {
        const bool codec_scope = has_prefix_in(f.rel_path, kCodecScopeDirs);
        const bool struct_scope = codec_scope || in_table(kCodecExtraStructFiles, f.rel_path);
        if (!struct_scope) continue;
        const Lexed lx = lex(f.content);
        sup_by_file.emplace(f.rel_path, parse_suppressions(lx));
        if (codec_scope) extract_codecs(f.rel_path, lx.tokens, codecs);
        extract_structs(f.rel_path, lx.tokens, structs);
    }

    std::vector<Finding> raw;
    check_symmetry(codecs, raw);
    check_coverage(codecs, structs, raw);

    std::vector<Finding> out;
    for (Finding& f : raw) {
        const auto file_it = sup_by_file.find(f.file);
        if (file_it != sup_by_file.end()) {
            const auto line_it = file_it->second.by_line.find(f.line);
            if (line_it != file_it->second.by_line.end() &&
                line_it->second.count(f.rule) != 0) {
                continue;
            }
        }
        out.push_back(std::move(f));
    }
    std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
        return std::tie(a.file, a.line, a.rule, a.message) <
               std::tie(b.file, b.line, b.rule, b.message);
    });
    return out;
}

std::vector<Finding> check_hot_alloc(std::string_view rel_path, std::string_view content) {
    std::vector<Finding> out;
    if (!has_prefix_in(rel_path, kHotPathPrefixes)) return out;
    const Lexed lx = lex(content);
    const auto& t = lx.tokens;

    auto add = [&out](int line, std::string message) {
        out.push_back({"", line, std::string(kRuleHotAlloc), std::move(message)});
    };

    // Brace frames: each `{` is either a function body (allocation scope for
    // the reserve() heuristic) or a plain block (control flow, class,
    // namespace, init list) that growth checks look *through*.
    struct Frame {
        bool is_function;
        bool saw_reserve;
    };
    std::vector<Frame> frames;
    std::vector<std::size_t> open_parens;          // indices of unmatched '('
    std::map<std::size_t, std::size_t> partner_of;  // ')' index -> '(' index

    for (std::size_t i = 0; i < t.size(); ++i) {
        const Token& tok = t[i];
        if (is_punct(tok, "(")) {
            open_parens.push_back(i);
            continue;
        }
        if (is_punct(tok, ")")) {
            if (!open_parens.empty()) {
                partner_of[i] = open_parens.back();
                open_parens.pop_back();
            }
            continue;
        }
        if (is_punct(tok, "{")) {
            // Function body iff the brace follows a `)` (allowing const /
            // noexcept / override / final between) whose `(` is not a
            // control-flow head.
            bool is_function = false;
            std::size_t j = i;
            int skipped = 0;
            while (j > 0 && skipped < 4 && t[j - 1].kind == TokKind::kIdentifier &&
                   (t[j - 1].text == "const" || t[j - 1].text == "noexcept" ||
                    t[j - 1].text == "override" || t[j - 1].text == "final")) {
                --j;
                ++skipped;
            }
            if (j > 0 && is_punct(t[j - 1], ")")) {
                const auto p = partner_of.find(j - 1);
                if (p != partner_of.end()) {
                    const std::size_t open = p->second;
                    const bool control =
                        open > 0 && t[open - 1].kind == TokKind::kIdentifier &&
                        (t[open - 1].text == "if" || t[open - 1].text == "for" ||
                         t[open - 1].text == "while" || t[open - 1].text == "switch" ||
                         t[open - 1].text == "catch");
                    is_function = !control;
                }
            }
            frames.push_back({is_function, false});
            continue;
        }
        if (is_punct(tok, "}")) {
            if (!frames.empty()) frames.pop_back();
            continue;
        }
        if (tok.kind != TokKind::kIdentifier) continue;

        const Token* prev = i > 0 ? &t[i - 1] : nullptr;
        const Token* prev2 = i > 1 ? &t[i - 2] : nullptr;
        const Token* next = i + 1 < t.size() ? &t[i + 1] : nullptr;
        const bool std_qualified = prev != nullptr && is_punct(*prev, "::") && prev2 != nullptr &&
                                   is_ident(*prev2, "std");

        if (tok.text == "reserve" && !frames.empty()) {
            frames.back().saw_reserve = true;
            continue;
        }
        if (tok.text == "new" && (prev == nullptr || !is_ident(*prev, "operator"))) {
            add(tok.line, "'new' allocates on a hot path; use the arena / preallocated storage");
            continue;
        }
        if (in_table(kAllocMakeIds, tok.text)) {
            add(tok.line, "'" + tok.text + "' allocates on a hot path; use the arena / "
                          "preallocated storage");
            continue;
        }
        if (tok.text == "function" && std_qualified) {
            add(tok.line,
                "std::function type-erases with heap allocation on a hot path; use a template "
                "parameter or function pointer");
            continue;
        }
        if (tok.text == "string" && std_qualified &&
            (next == nullptr || (!is_punct(*next, "&") && !is_punct(*next, "*")))) {
            add(tok.line,
                "by-value std::string allocates on a hot path; use std::string_view or a "
                "borrowed buffer");
            continue;
        }
        if (in_table(kAllocGrowthIds, tok.text) && prev != nullptr &&
            (is_punct(*prev, ".") || is_punct(*prev, "->"))) {
            bool reserved = false;
            for (std::size_t f = frames.size(); f-- > 0;) {
                if (frames[f].saw_reserve) {
                    reserved = true;
                    break;
                }
                if (frames[f].is_function) break;
            }
            if (!reserved) {
                add(tok.line, "'" + tok.text + "' may grow (reallocate) on a hot path and the "
                              "enclosing function never calls reserve(); pre-size the container "
                              "or suppress with a bound");
            }
        }
    }
    return out;
}

}  // namespace newtop::lint
