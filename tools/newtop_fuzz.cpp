// newtop_fuzz — the deterministic chaos-campaign driver.
//
//   newtop_fuzz --seeds 200              # campaign over seeds [1, 201)
//   newtop_fuzz --seeds 200 --base 1000  # different seed block
//   newtop_fuzz --seed 1234              # replay one seed (prints scenario)
//   NEWTOP_FUZZ_SEED=1234 newtop_fuzz    # same, the one-command CI replay
//
// Every scenario is a pure function of its seed, so a failing seed printed
// by CI reproduces locally with the env-var form alone.  On failure the
// driver replays and shrinks the scenario (drop faults / clients / groups
// while the violation persists) and prints the minimal reproducer as JSON.
// Exit status: 0 = all runs clean, 1 = violation found, 2 = bad usage.
#include <cstdlib>
#include <iostream>
#include <string>

#include "fuzz/campaign.hpp"

namespace {

int usage() {
    std::cerr << "usage: newtop_fuzz [--seeds N] [--base B] [--seed S] [--no-shrink]\n"
                 "                   [--print] [--reconfig] [--gray]\n"
                 "  --seeds N     run a campaign over N consecutive seeds (default 50)\n"
                 "  --base B      first seed of the campaign block (default 1)\n"
                 "  --seed S      run exactly one seed (also: NEWTOP_FUZZ_SEED env)\n"
                 "  --no-shrink   report the raw failing scenario without minimising\n"
                 "  --print       print each generated scenario as JSON before running\n"
                 "  --dump        on failure, print the failing run's full trace stream\n"
                 "  --reconfig    enable mid-run reconfiguration faults (also:\n"
                 "                NEWTOP_FUZZ_RECONFIG=1 env); a seed generates a\n"
                 "                different scenario with this on, so replays must\n"
                 "                match the campaign's flag\n"
                 "  --gray        enable gray failures (slow nodes, sick links,\n"
                 "                flapping sites; also: NEWTOP_FUZZ_GRAY=1 env);\n"
                 "                same replay-flag caveat as --reconfig\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    using newtop::fuzz::CampaignOptions;
    using newtop::fuzz::CampaignRunner;
    using newtop::fuzz::Scenario;
    using newtop::fuzz::ScenarioGenerator;

    CampaignOptions options;
    options.runs = 50;
    bool print_scenarios = false;
    std::optional<std::uint64_t> single_seed;
    // newtop-lint: allow(getenv): replay knob read once at startup, before any simulation runs
    if (const char* env = std::getenv("NEWTOP_FUZZ_SEED"); env != nullptr && *env != '\0') {
        single_seed = std::strtoull(env, nullptr, 10);
    }
    // newtop-lint: allow(getenv): replay knob read once at startup, before any simulation runs
    if (const char* env = std::getenv("NEWTOP_FUZZ_RECONFIG"); env != nullptr && *env == '1') {
        options.limits.allow_reconfigs = true;
    }
    // newtop-lint: allow(getenv): replay knob read once at startup, before any simulation runs
    if (const char* env = std::getenv("NEWTOP_FUZZ_GRAY"); env != nullptr && *env == '1') {
        options.limits.allow_gray = true;
    }

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--seeds") {
            const char* v = next_value();
            if (v == nullptr) return usage();
            options.runs = std::atoi(v);
        } else if (arg == "--base") {
            const char* v = next_value();
            if (v == nullptr) return usage();
            options.base_seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--seed") {
            const char* v = next_value();
            if (v == nullptr) return usage();
            single_seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--no-shrink") {
            options.shrink = false;
        } else if (arg == "--print") {
            print_scenarios = true;
        } else if (arg == "--dump") {
            options.run.keep_trace = true;
        } else if (arg == "--reconfig") {
            options.limits.allow_reconfigs = true;
        } else if (arg == "--gray") {
            options.limits.allow_gray = true;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return usage();
        }
    }
    if (options.runs <= 0) return usage();

    if (single_seed.has_value()) {
        options.base_seed = *single_seed;
        options.runs = 1;
    }

    const ScenarioGenerator generator(options.limits);
    int completed = 0;
    options.on_run = [&](const newtop::fuzz::RunResult& run) {
        ++completed;
        if (print_scenarios) {
            std::cout << "# scenario " << to_json(generator.generate(run.seed)) << "\n";
        }
        if (completed % 25 == 0 || completed == options.runs) {
            std::cout << "[" << completed << "/" << options.runs << "] seed " << run.seed
                      << (run.ok() ? " ok" : " FAILED") << " (" << run.trace_events
                      << " events)\n";
        }
    };

    const CampaignRunner runner(options);
    const newtop::fuzz::CampaignResult result = runner.run();
    std::cout << result.report();
    if (options.run.keep_trace && result.first_failure.has_value()) {
        for (const auto& e : result.first_failure->trace) {
            std::cout << e.at << " " << newtop::obs::trace_kind_name(e.kind) << " actor="
                      << e.actor << " subject=" << e.subject << " detail=" << e.detail
                      << " trace=" << e.trace << "\n";
        }
    }
    if (!result.ok()) {
        const char* reconfig_env =
            options.limits.allow_reconfigs ? " NEWTOP_FUZZ_RECONFIG=1" : "";
        const char* gray_env = options.limits.allow_gray ? " NEWTOP_FUZZ_GRAY=1" : "";
        std::cout << "=====================================================\n"
                  << "FAILING SEED: " << result.first_failure->seed << "\n"
                  << "replay with: NEWTOP_FUZZ_SEED=" << result.first_failure->seed
                  << reconfig_env << gray_env << " newtop_fuzz\n"
                  << "=====================================================\n";
        return 1;
    }
    return 0;
}
