// newtop_lint CLI: determinism, layering & wire-codec lint over the tree.
//
// Usage:
//     newtop_lint [--root <repo-root>] [--list-rules]
//                 [--json] [-o <file>]
//                 [--baseline <file>] [--write-baseline <file>]
//
// Exit status 0 when the tree is clean, 1 when there are findings (or the
// suppression census exceeds the baseline), 2 on usage errors.  Findings
// print in compiler format (file:line: rule: msg) so editors and CI
// annotate them directly.
//
// --json emits a machine-readable report {findings, suppressions, clean}.
// With -o the JSON goes to the file and the human-readable findings still
// print to stdout (the check.sh/CI mode: artifact + annotations from one
// run).  Without -o, the JSON replaces the human output on stdout.
//
// --baseline compares the per-rule suppression counts against a tracked
// census file (`<rule> <count>` lines); a rule with *more* suppressions
// than the baseline fails the run, so new suppressions must be justified
// by regenerating the baseline (--write-baseline) in the same diff.
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "tools/lint_rules.hpp"
#include "tools/lint_scanner.hpp"

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string to_json(const newtop::lint::TreeReport& report) {
    std::ostringstream os;
    os << "{\n  \"findings\": [";
    bool first = true;
    for (const auto& f : report.findings) {
        os << (first ? "" : ",") << "\n    {\"file\": \"" << json_escape(f.file)
           << "\", \"line\": " << f.line << ", \"rule\": \"" << json_escape(f.rule)
           << "\", \"message\": \"" << json_escape(f.message) << "\"}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "],\n  \"suppressions\": {";
    first = true;
    for (const auto& [rule, count] : report.suppressions) {
        os << (first ? "" : ",") << "\n    \"" << json_escape(rule) << "\": " << count;
        first = false;
    }
    os << "\n  },\n  \"clean\": " << (report.findings.empty() ? "true" : "false") << "\n}\n";
    return os.str();
}

/// Baseline format: one `<rule> <count>` per line; '#' comments allowed.
std::map<std::string, int> read_baseline(const std::string& path, bool& ok) {
    std::map<std::string, int> out;
    std::ifstream in(path);
    ok = in.good();
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        std::string rule;
        int count = 0;
        if (ls >> rule >> count) out[rule] = count;
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    std::string root = ".";
    std::string out_path;
    std::string baseline_path;
    std::string write_baseline_path;
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "-o" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (arg == "--write-baseline" && i + 1 < argc) {
            write_baseline_path = argv[++i];
        } else if (arg == "--list-rules") {
            for (const auto rule : newtop::lint::kAllRules) std::cout << rule << '\n';
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: newtop_lint [--root <repo-root>] [--list-rules] [--json]\n"
                         "                   [-o <file>] [--baseline <file>]\n"
                         "                   [--write-baseline <file>]\n"
                         "Scans src/, tests/, tools/, bench/ and examples/ for determinism,\n"
                         "layering and wire-codec violations (rules: tools/lint_rules.hpp).\n"
                         "Suppress with: // newtop-lint: allow(<rule>): <reason>\n";
            return 0;
        } else {
            std::cerr << "newtop_lint: unknown argument '" << arg << "' (try --help)\n";
            return 2;
        }
    }

    const newtop::lint::TreeReport report = newtop::lint::scan_tree_report(root);

    if (json && out_path.empty()) {
        std::cout << to_json(report);
    } else {
        if (json) {
            std::ofstream out(out_path);
            if (!out) {
                std::cerr << "newtop_lint: cannot write '" << out_path << "'\n";
                return 2;
            }
            out << to_json(report);
        }
        for (const auto& f : report.findings) std::cout << newtop::lint::to_string(f) << '\n';
    }

    if (!write_baseline_path.empty()) {
        std::ofstream out(write_baseline_path);
        if (!out) {
            std::cerr << "newtop_lint: cannot write '" << write_baseline_path << "'\n";
            return 2;
        }
        out << "# Per-rule count of active `newtop-lint: allow(...)` suppressions.\n"
               "# Regenerate with: newtop_lint --root . --write-baseline "
               "tools/lint_suppressions.baseline\n"
               "# CI fails when a rule's live count exceeds its entry here, so growing\n"
               "# the suppression set requires updating this file in the same change.\n";
        for (const auto& [rule, count] : report.suppressions) {
            out << rule << ' ' << count << '\n';
        }
    }

    bool over_baseline = false;
    if (!baseline_path.empty()) {
        bool ok = false;
        const std::map<std::string, int> baseline = read_baseline(baseline_path, ok);
        if (!ok) {
            std::cerr << "newtop_lint: cannot read baseline '" << baseline_path << "'\n";
            return 2;
        }
        for (const auto& [rule, count] : report.suppressions) {
            const auto it = baseline.find(rule);
            const int allowed = it == baseline.end() ? 0 : it->second;
            if (count > allowed) {
                std::cerr << "newtop_lint: suppression count for '" << rule << "' grew to "
                          << count << " (baseline " << allowed
                          << "); justify it and regenerate with --write-baseline\n";
                over_baseline = true;
            }
        }
    }

    if (report.findings.empty() && !over_baseline) {
        std::cerr << "newtop_lint: clean\n";
        return 0;
    }
    if (!report.findings.empty()) {
        std::cerr << "newtop_lint: " << report.findings.size() << " finding"
                  << (report.findings.size() == 1 ? "" : "s") << '\n';
    }
    return 1;
}
