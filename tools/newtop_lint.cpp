// newtop_lint CLI: determinism & layering lint over the whole tree.
//
// Usage:
//     newtop_lint [--root <repo-root>] [--list-rules]
//
// Exit status 0 when the tree is clean, 1 when there are findings, 2 on
// usage errors.  Findings print in compiler format (file:line: rule: msg)
// so editors and CI annotate them directly.
#include <cstring>
#include <iostream>
#include <string>

#include "tools/lint_rules.hpp"
#include "tools/lint_scanner.hpp"

int main(int argc, char** argv) {
    std::string root = ".";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--list-rules") {
            for (const auto rule : newtop::lint::kAllRules) std::cout << rule << '\n';
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: newtop_lint [--root <repo-root>] [--list-rules]\n"
                         "Scans src/, tests/, tools/, bench/ and examples/ for determinism\n"
                         "and layering violations (rules: tools/lint_rules.hpp).\n"
                         "Suppress with: // newtop-lint: allow(<rule>): <reason>\n";
            return 0;
        } else {
            std::cerr << "newtop_lint: unknown argument '" << arg << "' (try --help)\n";
            return 2;
        }
    }

    const std::vector<newtop::lint::Finding> findings = newtop::lint::scan_tree(root);
    for (const auto& f : findings) std::cout << newtop::lint::to_string(f) << '\n';
    if (findings.empty()) {
        std::cerr << "newtop_lint: clean\n";
        return 0;
    }
    std::cerr << "newtop_lint: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << '\n';
    return 1;
}
