// Shared lexing layer of newtop_lint: a comment- and string-aware C++
// tokenizer plus the suppression-comment parser.  Both the per-file token
// rules (lint_scanner.cpp) and the cross-file semantic passes
// (lint_passes.cpp) run over this one token stream, so every pass agrees on
// what is code, what is comment, and which lines carry suppressions.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint_scanner.hpp"

namespace newtop::lint {

enum class TokKind : std::uint8_t { kIdentifier, kNumber, kString, kPunct };

struct Token {
    TokKind kind;
    std::string text;
    int line;
};

struct Lexed {
    std::vector<Token> tokens;
    std::map<int, std::string> comments;  // line -> concatenated comment text
    std::set<int> code_lines;             // lines that carry at least one token
};

/// Tokenize one translation unit.  String/character literals become single
/// tokens (their contents never trigger identifier rules); comments are
/// collected per line for suppression parsing.
Lexed lex(std::string_view src);

/// Parsed suppression comments: the allow(rule) marker with its mandatory
/// trailing reason (see lint_rules.hpp for the exact spelling).
struct Suppressions {
    std::map<int, std::set<std::string>> by_line;
    std::vector<Finding> malformed;  // bad-suppression findings (never suppressible)
};

Suppressions parse_suppressions(const Lexed& lx);

}  // namespace newtop::lint
